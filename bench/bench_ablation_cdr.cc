// Ablation: CDR design choices — oversampling factor and the paper's
// glitch/jitter correction scan knobs, measured as link error rate under a
// stressed channel.
#include <cstdio>
#include <memory>

#include "channel/channel.h"
#include "core/link.h"
#include "util/table.h"

namespace {

serdes::core::LinkResult run_with(const serdes::core::LinkConfig& cfg,
                                  double loss_db, std::size_t bits) {
  using namespace serdes;
  core::SerDesLink link(cfg, std::make_unique<channel::FlatChannel>(
                                 util::decibels(loss_db)));
  return link.run_prbs(bits);
}

}  // namespace

int main() {
  using namespace serdes;
  constexpr std::size_t kBits = 6000;
  constexpr double kLoss = 40.0;  // stressed operating point

  // Stress: extra noise + fast sinusoidal jitter.
  core::LinkConfig stressed = core::LinkConfig::paper_default();
  stressed.channel_noise_rms = 0.003;
  stressed.rx_sinusoidal_jitter =
      util::seconds(0.08 * stressed.unit_interval().value());

  util::TextTable os_table("Ablation A1 - CDR oversampling factor");
  os_table.set_header({"oversampling", "aligned", "bit_errors", "ber"});
  for (int os : {2, 3, 4, 5, 7}) {
    core::LinkConfig cfg = stressed;
    cfg.cdr.oversampling = os;
    cfg.cdr.glitch_filter_radius = os >= 3 ? 1 : 0;
    const auto r = run_with(cfg, kLoss, kBits);
    os_table.add_row({std::to_string(os), r.aligned ? "yes" : "no",
                      std::to_string(r.bit_errors), util::num(r.ber)});
  }
  os_table.print();

  util::TextTable scan_table(
      "Ablation A2 - glitch/jitter correction scan bits");
  scan_table.set_header(
      {"glitch_radius", "jitter_hysteresis", "aligned", "bit_errors"});
  for (int g : {0, 1, 2}) {
    for (int j : {1, 2, 4}) {
      core::LinkConfig cfg = stressed;
      cfg.cdr.glitch_filter_radius = g;
      cfg.cdr.jitter_hysteresis = j;
      const auto r = run_with(cfg, kLoss, kBits);
      scan_table.add_row({std::to_string(g), std::to_string(j),
                          r.aligned ? "yes" : "no",
                          std::to_string(r.bit_errors)});
    }
  }
  scan_table.print();

  util::TextTable win_table("Ablation A3 - boundary vote window");
  win_table.set_header({"window_uis", "aligned", "bit_errors"});
  for (int w : {4, 8, 16, 32, 64}) {
    core::LinkConfig cfg = stressed;
    cfg.cdr.window_uis = w;
    const auto r = run_with(cfg, kLoss, kBits);
    win_table.add_row({std::to_string(w), r.aligned ? "yes" : "no",
                       std::to_string(r.bit_errors)});
  }
  win_table.print();

  std::printf(
      "\nexpected: higher oversampling and enabled glitch filtering reduce\n"
      "errors under stress; very short vote windows track jitter but lose\n"
      "averaging, very long windows lag.\n");
  return 0;
}
