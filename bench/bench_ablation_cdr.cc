// Ablation: CDR design choices — oversampling factor and the paper's
// glitch/jitter correction scan knobs, measured as link error rate under a
// stressed channel.  All scenarios are declared as LinkSpecs and fanned
// out through the multi-lane batch runner.
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.h"
#include "util/table.h"

namespace {

using namespace serdes;

/// The stressed operating point every ablation lane starts from: 40 dB
/// loss, extra noise, fast sinusoidal jitter, 6000 bits per lane.
api::LinkBuilder stressed_lane() {
  api::LinkBuilder lane;
  const double ui_s = 1.0 / lane.spec().bit_rate_hz;
  return lane.flat_channel(util::decibels(40.0))
      .noise_rms(0.003)
      .sinusoidal_jitter(util::seconds(0.08 * ui_s))
      .payload_bits(6000)
      .chunk_bits(6000);
}

/// Ablation tables compare knobs, so every lane must face the identical
/// noise realization: per-lane seed derivation stays off.
api::Simulator paired_simulator() {
  api::Simulator::Options opts;
  opts.derive_lane_seeds = false;
  return api::Simulator(opts);
}

}  // namespace

int main() {
  using namespace serdes;
  const api::Simulator sim = paired_simulator();

  // A1: oversampling factor.
  const std::vector<int> os_values = {2, 3, 4, 5, 7};
  std::vector<api::LinkSpec> os_specs;
  for (int os : os_values) {
    os_specs.push_back(stressed_lane()
                           .name("os_" + std::to_string(os))
                           .cdr_oversampling(os)
                           .cdr_glitch_filter(os >= 3 ? 1 : 0)
                           .build_spec());
  }
  const auto os_reports = sim.run_batch(os_specs);

  util::TextTable os_table("Ablation A1 - CDR oversampling factor");
  os_table.set_header({"oversampling", "aligned", "bit_errors", "ber"});
  for (std::size_t i = 0; i < os_reports.size(); ++i) {
    os_table.add_row({std::to_string(os_values[i]),
                      os_reports[i].aligned ? "yes" : "no",
                      std::to_string(os_reports[i].errors),
                      util::num(os_reports[i].ber)});
  }
  os_table.print();

  // A2: glitch/jitter correction scan bits.
  struct ScanPoint {
    int glitch;
    int hysteresis;
  };
  std::vector<ScanPoint> scan_points;
  std::vector<api::LinkSpec> scan_specs;
  for (int g : {0, 1, 2}) {
    for (int j : {1, 2, 4}) {
      scan_points.push_back({g, j});
      scan_specs.push_back(stressed_lane()
                               .name("scan_g" + std::to_string(g) + "_j" +
                                     std::to_string(j))
                               .cdr_glitch_filter(g)
                               .cdr_jitter_hysteresis(j)
                               .build_spec());
    }
  }
  const auto scan_reports = sim.run_batch(scan_specs);

  util::TextTable scan_table(
      "Ablation A2 - glitch/jitter correction scan bits");
  scan_table.set_header(
      {"glitch_radius", "jitter_hysteresis", "aligned", "bit_errors"});
  for (std::size_t i = 0; i < scan_reports.size(); ++i) {
    scan_table.add_row({std::to_string(scan_points[i].glitch),
                        std::to_string(scan_points[i].hysteresis),
                        scan_reports[i].aligned ? "yes" : "no",
                        std::to_string(scan_reports[i].errors)});
  }
  scan_table.print();

  // A3: boundary vote window.
  const std::vector<int> windows = {4, 8, 16, 32, 64};
  std::vector<api::LinkSpec> win_specs;
  for (int w : windows) {
    win_specs.push_back(stressed_lane()
                            .name("window_" + std::to_string(w))
                            .cdr_window(w)
                            .build_spec());
  }
  const auto win_reports = sim.run_batch(win_specs);

  util::TextTable win_table("Ablation A3 - boundary vote window");
  win_table.set_header({"window_uis", "aligned", "bit_errors"});
  for (std::size_t i = 0; i < win_reports.size(); ++i) {
    win_table.add_row({std::to_string(windows[i]),
                       win_reports[i].aligned ? "yes" : "no",
                       std::to_string(win_reports[i].errors)});
  }
  win_table.print();

  std::printf(
      "\nexpected: higher oversampling and enabled glitch filtering reduce\n"
      "errors under stress; very short vote windows track jitter but lose\n"
      "averaging, very long windows lag.\n");
  return 0;
}
