// Ablation: transmit-driver design space — stage count and taper vs edge
// rate, delay and power into the 2 pF termination (the paper's "sized
// appropriately to obtain area and power optimal design").
#include <cstdio>

#include "analog/driver.h"
#include "api/api.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  // Operating rate from the declarative paper spec.
  const util::Hertz rate{api::LinkSpec::paper_default().bit_rate_hz};

  util::TextTable stages("Ablation B1 - driver stage count (taper 3.4)");
  stages.set_header({"stages", "rise_20_80_ps", "delay_ps", "power_mW",
                     "width_um"});
  for (int s : {1, 2, 3, 4, 5}) {
    analog::DriverDesign d;
    d.stages = s;
    d.taper = 3.4;
    const analog::InverterChainDriver driver(d);
    stages.add_row_numeric({static_cast<double>(s),
                            driver.output_rise_time().value() * 1e12,
                            driver.total_delay().value() * 1e12,
                            driver.dynamic_power(rate, 0.25).value() * 1e3,
                            driver.total_width_um()});
  }
  stages.print();

  util::TextTable taper("Ablation B2 - taper factor (3 stages)");
  taper.set_header({"taper", "rise_20_80_ps", "delay_ps", "power_mW",
                    "width_um"});
  for (double t : {2.0, 3.0, 3.4, 4.0, 5.0, 6.0}) {
    analog::DriverDesign d;
    d.taper = t;
    const analog::InverterChainDriver driver(d);
    taper.add_row_numeric({t, driver.output_rise_time().value() * 1e12,
                           driver.total_delay().value() * 1e12,
                           driver.dynamic_power(rate, 0.25).value() * 1e3,
                           driver.total_width_um()});
  }
  taper.print();

  util::TextTable load("Ablation B3 - termination load (3 stages, taper 3.4)");
  load.set_header({"load_pF", "rise_20_80_ps", "power_mW"});
  for (double c_pf : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    analog::DriverDesign d;
    d.taper = 3.4;
    d.load = util::picofarads(c_pf);
    const analog::InverterChainDriver driver(d);
    load.add_row_numeric({c_pf, driver.output_rise_time().value() * 1e12,
                          driver.dynamic_power(rate, 0.25).value() * 1e3});
  }
  load.print();

  std::printf(
      "\nexpected: more stages / stronger taper buy edge rate at the cost of\n"
      "power and area; the 2 pF termination dominates the power budget.\n");
  return 0;
}
