// Extension bench: equalization ablation — how much dispersive-channel
// reach TX FFE de-emphasis and an RX CTLE buy back for the all-digital
// link (the blocks the paper's generic architecture lists but its
// implementation omits).
#include <cstdio>

#include "channel/channel.h"
#include "channel/equalizer.h"
#include "core/link.h"
#include "util/prbs.h"
#include "util/table.h"

namespace {

using namespace serdes;

/// Runs the receive chain on a pre-shaped line waveform and counts errors.
std::uint64_t run_errors(const core::LinkConfig& cfg,
                         const std::vector<std::uint8_t>& payload,
                         const analog::Waveform& rx_wave, bool use_ctle,
                         double ctle_boost_db) {
  analog::Waveform wave = rx_wave;
  if (use_ctle) {
    const channel::RxCtle ctle(util::decibels(ctle_boost_db),
                               util::megahertz(700.0), cfg.sample_period());
    wave = ctle.equalize(wave);
  }
  core::Receiver rx(cfg);
  const auto res = rx.receive(wave);
  if (!res.aligned) return payload.size();
  std::uint64_t errors = 0;
  const std::size_t n = std::min(payload.size(), res.payload.size());
  // The CDR pipeline truncates a few tail bits; only count real shortfalls.
  if (payload.size() - n > 8) errors += payload.size() - n - 8;
  for (std::size_t i = 0; i < n; ++i) {
    if ((payload[i] != 0) != (res.payload[i] != 0)) ++errors;
  }
  return errors;
}

}  // namespace

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = core::LinkConfig::paper_default();

  util::PrbsGenerator prbs(util::PrbsOrder::kPrbs31);
  const auto payload = prbs.next_bits(4000);
  core::Transmitter tx(cfg);
  const auto wire = tx.wire_bits(payload);

  const channel::TxFfe flat({1.0}, cfg.driver.vdd);
  const channel::TxFfe ffe = channel::TxFfe::de_emphasis(0.33, cfg.driver.vdd);

  util::TextTable table(
      "Equalization ablation: errors/4000 bits over a dispersive line");
  table.set_header({"line_loss_dB_at_1GHz", "raw", "tx_ffe", "rx_ctle",
                    "ffe+ctle"});
  for (double hf_loss : {12.0, 18.0, 24.0, 30.0}) {
    channel::LossyLineChannel::Params line_params;
    line_params.dc_loss_db = 4.0;
    line_params.skin_loss_db_at_1ghz = hf_loss * 0.6;
    line_params.dielectric_loss_db_at_1ghz = hf_loss * 0.4;
    const channel::LossyLineChannel line(line_params, cfg.sample_period());

    const auto raw_wave = line.transmit(flat.shape(
        wire, cfg.bit_rate, cfg.samples_per_ui, util::picoseconds(100.0)));
    const auto ffe_wave = line.transmit(ffe.shape(
        wire, cfg.bit_rate, cfg.samples_per_ui, util::picoseconds(100.0)));

    table.add_row(
        {util::num(4.0 + hf_loss),
         std::to_string(run_errors(cfg, payload, raw_wave, false, 0.0)),
         std::to_string(run_errors(cfg, payload, ffe_wave, false, 0.0)),
         std::to_string(run_errors(cfg, payload, raw_wave, true, 6.0)),
         std::to_string(run_errors(cfg, payload, ffe_wave, true, 6.0))});
  }
  table.print();

  std::printf(
      "\nexpected: the unequalized all-digital link (the paper's design)\n"
      "fails first as dispersion grows; TX de-emphasis and/or an RX CTLE\n"
      "push the failure point out — the cost being exactly the analog\n"
      "complexity the paper traded away for synthesizability.\n");
  return 0;
}
