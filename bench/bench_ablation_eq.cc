// Extension bench: equalization ablation — how much dispersive-channel
// reach TX FFE de-emphasis and an RX CTLE buy back for the all-digital
// link (the blocks the paper's generic architecture lists but its
// implementation omits).  Each (line loss, EQ combination) cell is one
// declarative lane in a single batch run.
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.h"
#include "util/table.h"

int main() {
  using namespace serdes;

  const std::vector<double> hf_losses = {12.0, 18.0, 24.0, 30.0};
  struct EqCombo {
    const char* label;
    double ffe_alpha;
    double ctle_db;
  };
  const std::vector<EqCombo> combos = {
      {"raw", 0.0, 0.0},
      {"tx_ffe", 0.33, 0.0},
      {"rx_ctle", 0.0, 6.0},
      {"ffe+ctle", 0.33, 6.0},
  };

  // One lane per (line, combo) cell, all fanned out together.
  std::vector<api::LinkSpec> specs;
  for (double hf_loss : hf_losses) {
    for (const auto& combo : combos) {
      api::LinkBuilder lane;
      lane.name(std::string(combo.label) + "@" + util::num(hf_loss))
          .channel(api::ChannelSpec::lossy_line(4.0, hf_loss * 0.6,
                                                hf_loss * 0.4))
          .payload_bits(4000)
          .chunk_bits(4000);
      if (combo.ffe_alpha > 0.0) lane.tx_ffe_deemphasis(combo.ffe_alpha);
      if (combo.ctle_db > 0.0) {
        lane.rx_ctle(util::decibels(combo.ctle_db), util::megahertz(700.0));
      }
      specs.push_back(lane.build_spec());
    }
  }
  // Paired comparison: every EQ cell must face the identical noise
  // realization, so per-lane seed derivation stays off.
  api::Simulator::Options opts;
  opts.derive_lane_seeds = false;
  const auto reports = api::Simulator(opts).run_batch(specs);

  util::TextTable table(
      "Equalization ablation: errors/4000 bits over a dispersive line");
  table.set_header({"line_loss_dB_at_1GHz", "raw", "tx_ffe", "rx_ctle",
                    "ffe+ctle"});
  for (std::size_t row = 0; row < hf_losses.size(); ++row) {
    const auto* cells = &reports[row * combos.size()];
    table.add_row({util::num(4.0 + hf_losses[row]),
                   std::to_string(cells[0].errors),
                   std::to_string(cells[1].errors),
                   std::to_string(cells[2].errors),
                   std::to_string(cells[3].errors)});
  }
  table.print();

  std::printf(
      "\nexpected: the unequalized all-digital link (the paper's design)\n"
      "fails first as dispersion grows; TX de-emphasis and/or an RX CTLE\n"
      "push the failure point out — the cost being exactly the analog\n"
      "complexity the paper traded away for synthesizability.\n");
  return 0;
}
