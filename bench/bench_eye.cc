// Extension bench: eye diagram metrics vs channel loss, and a BER waterfall
// vs received swing — the signal-integrity view behind Figs 8/9.
#include <cstdio>
#include <memory>

#include "channel/channel.h"
#include "core/ber.h"
#include "core/eye.h"
#include "core/link.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = core::LinkConfig::paper_default();

  util::TextTable eye_table("Eye metrics vs channel loss @ 2 Gbps");
  eye_table.set_header({"loss_dB", "rx_swing_mV", "eye_height_V",
                        "eye_width_UI", "bit_errors"});
  for (double loss : {10.0, 20.0, 30.0, 34.0, 40.0, 46.0, 52.0, 58.0}) {
    core::SerDesLink link(
        cfg, std::make_unique<channel::FlatChannel>(util::decibels(loss)));
    const auto r = link.run_prbs(4000);
    core::EyeAnalyzer eye(cfg.bit_rate);
    const auto m =
        eye.analyze(r.rx.restored, 0.9);
    eye_table.add_row_numeric({loss, r.channel_out.peak_to_peak() * 1e3,
                               m.eye_height, m.eye_width_ui,
                               static_cast<double>(
                                   r.aligned ? r.bit_errors : 4000)});
  }
  eye_table.print();

  util::TextTable waterfall("BER waterfall vs received swing @ 2 Gbps");
  waterfall.set_header({"swing_mV", "bits", "errors", "ber", "ber_95_bound"});
  for (double swing_mv : {6.0, 8.0, 10.0, 14.0, 20.0, 30.0, 45.0}) {
    const double loss_db = 20.0 * std::log10(1.8 / (swing_mv * 1e-3));
    core::SerDesLink link(
        cfg, std::make_unique<channel::FlatChannel>(util::decibels(loss_db)));
    const auto m = core::measure_ber(link, 20000, 4000);
    waterfall.add_row({util::num(swing_mv), std::to_string(m.bits),
                       std::to_string(m.errors), util::num(m.ber),
                       util::num(m.ber_upper_bound)});
  }
  waterfall.print();

  std::printf(
      "\nexpected: the eye closes monotonically with loss; the waterfall\n"
      "turns error-free in the tens-of-mV swing region (the paper's 32 mV\n"
      "sensitivity regime).\n");
  return 0;
}
