// Extension bench: eye diagram metrics vs channel loss, and a BER waterfall
// vs received swing — the signal-integrity view behind Figs 8/9.  Both
// sweeps run as declarative lanes through the batch runner; eye metrics
// come straight out of the RunReport.
#include <cmath>
#include <cstdio>
#include <vector>

#include "api/api.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const api::Simulator sim;

  const std::vector<double> losses = {10.0, 20.0, 30.0, 34.0,
                                      40.0, 46.0, 52.0, 58.0};
  std::vector<api::LinkSpec> eye_specs;
  for (double loss : losses) {
    eye_specs.push_back(api::LinkBuilder()
                            .name("eye_" + util::num(loss))
                            .flat_channel(util::decibels(loss))
                            .payload_bits(4000)
                            .chunk_bits(4000)
                            .build_spec());
  }
  const auto eye_reports = sim.run_batch(eye_specs);

  util::TextTable eye_table("Eye metrics vs channel loss @ 2 Gbps");
  eye_table.set_header({"loss_dB", "rx_swing_mV", "eye_height_V",
                        "eye_width_UI", "bit_errors"});
  for (std::size_t i = 0; i < eye_reports.size(); ++i) {
    const auto& r = eye_reports[i];
    eye_table.add_row_numeric(
        {losses[i], r.rx_swing_pp * 1e3, r.eye.eye_height, r.eye.eye_width_ui,
         static_cast<double>(r.aligned ? r.errors : 4000)});
  }
  eye_table.print();

  const std::vector<double> swings_mv = {6.0, 8.0, 10.0, 14.0,
                                         20.0, 30.0, 45.0};
  std::vector<api::LinkSpec> waterfall_specs;
  for (double swing_mv : swings_mv) {
    const double loss_db = 20.0 * std::log10(1.8 / (swing_mv * 1e-3));
    waterfall_specs.push_back(api::LinkBuilder()
                                  .name("swing_" + util::num(swing_mv))
                                  .flat_channel(util::decibels(loss_db))
                                  .payload_bits(20000)
                                  .chunk_bits(4000)
                                  .build_spec());
  }
  const auto waterfall_reports = sim.run_batch(waterfall_specs);

  util::TextTable waterfall("BER waterfall vs received swing @ 2 Gbps");
  waterfall.set_header({"swing_mV", "bits", "errors", "ber", "ber_95_bound"});
  for (std::size_t i = 0; i < waterfall_reports.size(); ++i) {
    const auto& m = waterfall_reports[i];
    waterfall.add_row({util::num(swings_mv[i]), std::to_string(m.bits),
                       std::to_string(m.errors), util::num(m.ber),
                       util::num(m.ber_upper_bound)});
  }
  waterfall.print();

  std::printf(
      "\nexpected: the eye closes monotonically with loss; the waterfall\n"
      "turns error-free in the tens-of-mV swing region (the paper's 32 mV\n"
      "sensitivity regime).\n");
  return 0;
}
