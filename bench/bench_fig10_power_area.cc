// Fig 10: power budget and per-cell area breakdown of the serial link,
// regenerated through the analog models plus the netlist flow.
#include <cstdio>

#include "api/api.h"
#include "core/power_model.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = api::LinkBuilder().build_config();
  const auto budget = core::compute_link_budget(cfg);

  util::TextTable power("Fig 10a - Power budget @ 2 Gbps, 1.8 V");
  power.set_header({"block", "measured_mW", "paper_mW"});
  power.add_row({"cmos_driver", util::num(budget.driver_power.value() * 1e3),
                 "4.5"});
  power.add_row({"rx_frontend_rfi",
                 util::num(budget.rfi_power.value() * 1e3), "6.7"});
  power.add_row({"static_inverter",
                 util::num(budget.restoring_power.value() * 1e3), "1.4"});
  power.add_row({"sampling_dff",
                 util::num(budget.sampler_dff_power.value() * 1e3), "3.1"});
  power.add_row({"serializer",
                 util::num(budget.serializer_power.value() * 1e3), "235"});
  power.add_row({"deserializer",
                 util::num(budget.deserializer_power.value() * 1e3), "128"});
  power.add_row({"cdr", util::num(budget.cdr_power.value() * 1e3), "59"});
  power.add_row({"TOTAL", util::num(budget.total_power().value() * 1e3),
                 "437.7"});
  power.print();

  std::printf("\nTX power        : %s (paper 4.5 mW)\n",
              util::to_string(budget.tx_power()).c_str());
  std::printf("RX front end    : %s (paper 11.2 mW)\n",
              util::to_string(budget.rx_frontend_power()).c_str());
  std::printf("energy per bit  : %s (paper 219 pJ/bit)\n",
              util::to_string(budget.energy_per_bit(cfg.bit_rate)).c_str());

  util::TextTable area("Fig 10b - Area breakdown (log-scale bars in paper)");
  area.set_header({"block", "area_um2"});
  area.add_row({"cmos_driver", util::num(budget.driver_area.value())});
  area.add_row({"resistive_feedback_inverter",
                util::num(budget.rfi_area.value())});
  area.add_row({"static_cmos_inverter",
                util::num(budget.restoring_area.value())});
  area.add_row({"d_flipflop", util::num(budget.dff_area.value())});
  area.add_row({"serializer", util::num(budget.serializer_area.value())});
  area.add_row({"deserializer", util::num(budget.deserializer_area.value())});
  area.add_row({"cdr", util::num(budget.cdr_area.value())});
  area.print();
  return 0;
}
