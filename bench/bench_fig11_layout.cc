// Fig 11: the generated SerDes layout — floorplan the five blocks, report
// area percentages, and export GDSII + SVG like the paper's flow does.
#include <cstdio>

#include "api/api.h"
#include "core/power_model.h"
#include "flow/gds.h"
#include "flow/place.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = api::LinkBuilder().build_config();
  const auto budget = core::compute_link_budget(cfg);

  std::vector<flow::FloorplanBlock> blocks(5);
  blocks[0] = {"deserializer", budget.deserializer_area};
  blocks[1] = {"serializer", budget.serializer_area};
  blocks[2] = {"cdr", budget.cdr_area};
  blocks[3] = {"rx_front_end", budget.rfi_area + budget.restoring_area +
                                   budget.dff_area};
  blocks[4] = {"cmos_driver", budget.driver_area};
  const auto plan = flow::floorplan(blocks, 0.12);

  util::TextTable table("Fig 11 - SerDes layout (die plan)");
  table.set_header({"block", "x_um", "y_um", "w_um", "h_um", "area_um2",
                    "share_%"});
  const double die = plan.die_area().value();
  for (const auto& b : plan.blocks) {
    table.add_row({b.name, util::num(b.x_um), util::num(b.y_um),
                   util::num(b.width_um), util::num(b.height_um),
                   util::num(b.area.value()),
                   util::num(100.0 * b.area.value() / die)});
  }
  table.print();

  std::printf("\ndie: %.0f x %.0f um = %.3f mm^2  (paper: 0.24 mm^2)\n",
              plan.die_width_um, plan.die_height_um, die * 1e-6);
  std::printf("paper shares: deserializer 60%%, driver 0.2%%, RX FE 1.1%%\n");

  flow::GdsWriter::write("serdes_layout.gds", "openserdes",
                         flow::rects_from_floorplan(plan));
  flow::SvgWriter::write("serdes_layout.svg",
                         flow::rects_from_floorplan(plan));
  std::printf("wrote serdes_layout.gds (GDSII stream) and serdes_layout.svg\n");
  return 0;
}
