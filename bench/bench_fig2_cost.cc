// Fig 2: relative ASIC cost vs process node, open vs conventional PDK.
#include <cstdio>

#include "core/cost_model.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  util::TextTable table(
      "Fig 2 - Relative chip cost: conventional PDK vs OpenPDK");
  table.set_header({"node_nm", "fab_cost", "pdk_license", "conventional_total",
                    "open_total", "saving_%"});
  for (const auto& p : core::asic_cost_curve()) {
    table.add_row({std::to_string(p.node_nm), util::num(p.fab_cost),
                   util::num(p.pdk_license_cost),
                   util::num(p.conventional_total), util::num(p.open_total),
                   util::num(100.0 * (p.conventional_total - p.open_total) /
                             p.conventional_total)});
  }
  table.print();
  std::printf(
      "\npaper shape: license fee is a growing share of cost toward advanced\n"
      "nodes; the open PDK removes it entirely (zero licensing fee).\n");
  return 0;
}
