// Fig 4b: transistor-level transient of the 3-stage CMOS driver into the
// 2 pF termination at 2 Gbps (input and output waveform samples).
#include <cstdio>

#include "analog/driver.h"
#include "api/api.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = api::LinkBuilder().build_config();
  const analog::InverterChainDriver driver(cfg.driver);

  // The paper's Fig 4b window: 20 ns of alternating data at 2 Gbps.
  const std::vector<std::uint8_t> bits = {0, 1, 0, 1, 1, 0, 0, 1,
                                          0, 1, 0, 1, 0, 1, 1, 0,
                                          1, 0, 1, 0, 0, 1, 0, 1,
                                          1, 0, 1, 0, 1, 0, 0, 1,
                                          0, 1, 1, 0, 1, 0, 1, 0};
  auto input = analog::Waveform::nrz(bits, cfg.unit_interval(), 32, 0.0,
                                     cfg.driver.vdd.value(),
                                     util::picoseconds(40.0));
  const auto output = driver.transient(input, util::picoseconds(4.0));

  util::TextTable table("Fig 4b - CMOS driver input/output @ 2 Gbps, 2 pF");
  table.set_header({"time_ns", "vin_V", "vout_V"});
  for (double t_ns = 0.0; t_ns <= 20.0; t_ns += 0.25) {
    const auto t = util::nanoseconds(t_ns);
    table.add_row_numeric({t_ns, input.value_at(t), output.value_at(t)});
  }
  table.print();

  std::printf("\noutput 20-80%% rise time : %s (RC model %s)\n",
              util::to_string(output.rise_time_20_80(util::nanoseconds(2.0)))
                  .c_str(),
              util::to_string(driver.output_rise_time()).c_str());
  std::printf("output swing            : %.3f V (rail-to-rail = 1.8 V)\n",
              output.peak_to_peak());
  std::printf("chain delay             : %s\n",
              util::to_string(driver.total_delay()).c_str());
  std::printf("driver power @ 2 Gbps   : %s (paper: 4.5 mW)\n",
              util::to_string(driver.dynamic_power(cfg.bit_rate, 0.25) * 1.15)
                  .c_str());
  return 0;
}
