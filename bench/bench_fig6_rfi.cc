// Fig 6: resistive-feedback inverter — (a) DC transfer with the self-bias
// operating point, (b) transient with a 32 mV AC-coupled input riding on
// the bias and the amplified output.
#include <cstdio>

#include "analog/rfi.h"
#include "api/api.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = api::LinkBuilder().build_config();
  const analog::RfiCircuit rfi(cfg.rfi);

  util::TextTable dc("Fig 6a - RFI DC characteristics (1.8 V supply)");
  dc.set_header({"vin_V", "vout_V"});
  for (double vin = 0.0; vin <= 1.8001; vin += 0.06) {
    dc.add_row_numeric({vin, rfi.dc_transfer(vin)});
  }
  dc.print();
  std::printf("\nself-bias (DC operating point): %.3f V  (paper: 0.83 V)\n",
              rfi.self_bias());
  std::printf("small-signal gain at bias     : %.1f\n", rfi.gain_at_bias());
  std::printf("bandwidth                     : %s\n",
              util::to_string(rfi.bandwidth()).c_str());
  std::printf("pseudo-resistor               : %s ohms-scale %.3g\n",
              "PMOS vgs=0", rfi.pseudo_resistance().value());

  // Fig 6b: 32 mV input from the channel (paper's sensitivity point),
  // transistor-level transient through the AC coupling.
  const std::vector<std::uint8_t> bits = {0, 1, 0, 1, 1, 0, 1, 0, 0, 1,
                                          0, 1, 0, 1, 1, 0, 1, 0, 0, 1,
                                          0, 1, 0, 1, 1, 0, 1, 0, 0, 1,
                                          0, 1, 0, 1, 1, 0, 1, 0, 0, 1};
  auto input = analog::Waveform::nrz(bits, cfg.unit_interval(), 32, -0.016,
                                     0.016, util::picoseconds(60.0));
  const auto waves = rfi.transient(input, util::picoseconds(8.0));

  util::TextTable tr("Fig 6b - RFI transient with 32 mV input @ 2 Gbps");
  tr.set_header({"time_ns", "vin_channel_V", "vin_biased_V", "vout_V"});
  for (double t_ns = 10.0; t_ns <= 20.0; t_ns += 0.125) {
    const auto t = util::nanoseconds(t_ns);
    tr.add_row_numeric({t_ns, input.value_at(t), waves.biased_input.value_at(t),
                        waves.output.value_at(t)});
  }
  tr.print();

  // Measure the settled biased-input window like the paper's annotations.
  double bmin = 2.0;
  double bmax = 0.0;
  double omin = 2.0;
  double omax = 0.0;
  for (std::size_t i = waves.biased_input.size() / 2;
       i < waves.biased_input.size(); ++i) {
    bmin = std::min(bmin, waves.biased_input[i]);
    bmax = std::max(bmax, waves.biased_input[i]);
    omin = std::min(omin, waves.output[i]);
    omax = std::max(omax, waves.output[i]);
  }
  std::printf("\nbiased input: %.0f mV swing around %.0f mV"
              "  (paper: 32 mV around 835 mV)\n",
              (bmax - bmin) * 1e3, 0.5 * (bmax + bmin) * 1e3);
  std::printf("output      : %.0f mV swing  (paper: ~300 mV)\n",
              (omax - omin) * 1e3);
  return 0;
}
