// Fig 8: end-to-end link waveforms at 2 Gbps with PRBS-31 through 34 dB of
// channel loss — transmitted, received (channel output) and decoded.
#include <cstdio>
#include <memory>

#include "channel/channel.h"
#include "core/ber.h"
#include "core/link.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = core::LinkConfig::paper_default();
  core::SerDesLink link(cfg, std::make_unique<channel::FlatChannel>(
                                 util::decibels(34.0)));

  util::PrbsGenerator prbs(util::PrbsOrder::kPrbs31);
  const auto payload = prbs.next_bits(4096);
  const auto r = link.run(payload);

  util::TextTable table(
      "Fig 8 - Link waveforms @ 2 Gbps, PRBS-31, 34 dB channel loss");
  table.set_header({"time_ns", "transmitted_V", "received_V", "restored_V"});
  for (double t_ns = 30.0; t_ns <= 100.0; t_ns += 0.5) {
    const auto t = util::nanoseconds(t_ns);
    table.add_row_numeric({t_ns, r.tx_out.value_at(t),
                           r.channel_out.value_at(t),
                           r.rx.restored.value_at(t)});
  }
  table.print();

  std::printf("\nreceived swing      : %.1f mV  (paper: 32 mV sensitivity"
              " at 34 dB -> ~36 mV)\n",
              r.channel_out.peak_to_peak() * 1e3);
  std::printf("aligned             : %s\n", r.aligned ? "yes" : "NO");
  std::printf("payload bits checked: %llu\n",
              static_cast<unsigned long long>(r.payload_bits_compared));
  std::printf("bit errors          : %llu  (paper: error-free decode)\n",
              static_cast<unsigned long long>(r.bit_errors));
  std::printf("CDR decision phase  : %d/%d, %llu phase updates\n",
              r.rx.cdr_decision_phase, cfg.cdr.oversampling,
              static_cast<unsigned long long>(r.rx.cdr_phase_updates));

  core::SerDesLink link2(cfg, std::make_unique<channel::FlatChannel>(
                                  util::decibels(34.0)));
  const auto ber = core::measure_ber(link2, 100000);
  std::printf("BER over %llu bits  : %g (95%% upper bound %.2e)\n",
              static_cast<unsigned long long>(ber.bits), ber.ber,
              ber.ber_upper_bound);
  return ber.error_free() ? 0 : 1;
}
