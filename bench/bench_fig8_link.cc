// Fig 8: end-to-end link waveforms at 2 Gbps with PRBS-31 through 34 dB of
// channel loss — transmitted, received (channel output) and decoded.
#include <cstdio>

#include "api/api.h"
#include "util/table.h"

int main() {
  using namespace serdes;

  // Waveform view: one 4096-bit chunk with capture enabled.
  const api::LinkSpec wave_spec = api::LinkBuilder()
                                      .name("fig8_waveforms")
                                      .flat_channel(util::decibels(34.0))
                                      .payload_bits(4096)
                                      .chunk_bits(4096)
                                      .capture_waveforms()
                                      .build_spec();
  const api::Simulator sim;
  const auto r = sim.run(wave_spec);

  util::TextTable table(
      "Fig 8 - Link waveforms @ 2 Gbps, PRBS-31, 34 dB channel loss");
  table.set_header({"time_ns", "transmitted_V", "received_V", "restored_V"});
  for (double t_ns = 30.0; t_ns <= 100.0; t_ns += 0.5) {
    const auto t = util::nanoseconds(t_ns);
    table.add_row_numeric({t_ns, r.tx_out.value_at(t),
                           r.channel_out.value_at(t),
                           r.restored.value_at(t)});
  }
  table.print();

  std::printf("\nreceived swing      : %.1f mV  (paper: 32 mV sensitivity"
              " at 34 dB -> ~36 mV)\n",
              r.rx_swing_pp * 1e3);
  std::printf("aligned             : %s\n", r.aligned ? "yes" : "NO");
  std::printf("payload bits checked: %llu\n",
              static_cast<unsigned long long>(r.bits));
  std::printf("bit errors          : %llu  (paper: error-free decode)\n",
              static_cast<unsigned long long>(r.errors));
  std::printf("CDR decision phase  : %d/%d, %llu phase updates\n",
              r.cdr_decision_phase, wave_spec.cdr_oversampling,
              static_cast<unsigned long long>(r.cdr_phase_updates));

  // BER view: 100k bits through the same operating point, no capture.
  const auto ber = sim.run(api::LinkBuilder()
                               .name("fig8_ber")
                               .flat_channel(util::decibels(34.0))
                               .payload_bits(100000)
                               .build_spec());
  std::printf("BER over %llu bits  : %g (95%% upper bound %.2e)\n",
              static_cast<unsigned long long>(ber.bits), ber.ber,
              ber.ber_upper_bound);
  return ber.error_free() ? 0 : 1;
}
