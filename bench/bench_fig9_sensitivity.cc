// Fig 9: receiver sensitivity and maximum channel loss vs operating
// frequency (1 MHz .. 2 GHz sweep).
#include <cstdio>

#include "api/api.h"
#include "core/sensitivity.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig cfg = api::LinkBuilder().build_config();
  core::SensitivitySweepConfig sweep;
  sweep.bits_per_trial = 2000;

  const std::vector<util::Hertz> rates = {
      util::megahertz(1.0),   util::megahertz(3.0),  util::megahertz(10.0),
      util::megahertz(30.0),  util::megahertz(100.0), util::megahertz(300.0),
      util::gigahertz(1.0),   util::gigahertz(1.5),  util::gigahertz(2.0)};

  const auto points = core::sensitivity_sweep(cfg, rates, sweep);

  util::TextTable table(
      "Fig 9 - Sensitivity & max channel loss vs frequency");
  table.set_header(
      {"freq_Hz", "sensitivity_mV", "max_channel_loss_dB"});
  for (const auto& p : points) {
    table.add_row({util::num(p.bit_rate.value()),
                   util::num(p.sensitivity_v * 1e3),
                   util::num(-p.max_channel_loss_db)});
  }
  table.print();

  std::printf(
      "\npaper shape: sensitivity worsens (15 -> ~35 mV) toward GHz rates;\n"
      "max tolerable loss shrinks (-50 -> -35 dB).  Criteria: sensitivity =\n"
      "min error-free swing under jitter+noise stress; max loss = largest\n"
      "dispersive-line + attenuator budget with zero observed errors\n"
      "(loss quoted at the data's Nyquist frequency).\n");
  return 0;
}
