// Extension bench: sinusoidal jitter tolerance mask of the oversampling
// CDR — the acceptance view of the paper's jitter-correction scan logic.
#include <cstdio>

#include "api/api.h"
#include "core/jitter_tolerance.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const core::LinkConfig base = api::LinkBuilder().build_config();
  core::JitterToleranceConfig cfg;
  cfg.bits_per_trial = 2500;

  const std::vector<double> ratios = {0.0002, 0.001, 0.005, 0.02,
                                      0.05,   0.1,   0.2};

  util::TextTable table("Jitter tolerance mask @ 2 Gbps, 20 dB loss");
  table.set_header({"sj_freq/bit_rate", "sj_freq_MHz", "tolerance_UI"});
  for (const auto& p : core::jitter_tolerance_sweep(base, ratios, cfg)) {
    table.add_row({util::num(p.sj_freq_ratio),
                   util::num(p.sj_freq_ratio * base.bit_rate.value() * 1e-6),
                   util::num(p.tolerance_ui)});
  }
  table.print();

  // The jitter-correction scan knob's effect on the mask's fast corner.
  util::TextTable scan("Fast-jitter tolerance vs jitter-correction setting");
  scan.set_header({"jitter_hysteresis", "tolerance_UI_at_0.05"});
  for (int j : {1, 2, 4}) {
    core::LinkConfig c = base;
    c.cdr.jitter_hysteresis = j;
    scan.add_row({std::to_string(j),
                  util::num(core::measure_jitter_tolerance(c, 0.05, cfg))});
  }
  scan.print();

  std::printf(
      "\nexpected: slow jitter is tracked by CDR phase updates (high\n"
      "tolerance); jitter faster than the vote window rides on raw eye\n"
      "margin (floor around a tenth of a UI).\n");
  return 0;
}
