// google-benchmark microbenchmarks of the simulation kernels: how fast the
// library itself runs (not a paper figure — engineering data for users).
#include <benchmark/benchmark.h>

#include <memory>

#include "analog/rfi.h"
#include "analog/transient.h"
#include "api/api.h"
#include "core/link.h"
#include "digital/cdr.h"
#include "flow/place.h"
#include "flow/power.h"
#include "flow/rtlgen.h"
#include "flow/sta.h"
#include "util/prbs.h"

namespace {

using namespace serdes;

void BM_PrbsGeneration(benchmark::State& state) {
  util::PrbsGenerator prbs(util::PrbsOrder::kPrbs31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prbs.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrbsGeneration);

void BM_CdrRecovery(benchmark::State& state) {
  util::PrbsGenerator prbs(util::PrbsOrder::kPrbs15);
  const auto bits = prbs.next_bits(4096);
  std::vector<std::uint8_t> samples;
  samples.reserve(bits.size() * 5);
  for (auto b : bits) {
    for (int p = 0; p < 5; ++p) samples.push_back(b);
  }
  for (auto _ : state) {
    digital::OversamplingCdr cdr(digital::CdrConfig{});
    benchmark::DoNotOptimize(cdr.recover(samples));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_CdrRecovery);

void BM_TransientRfiStep(benchmark::State& state) {
  const analog::RfiCircuit rfi;
  const std::vector<std::uint8_t> bits = {0, 1, 1, 0, 1, 0, 0, 1};
  auto input = analog::Waveform::nrz(bits, util::nanoseconds(0.5), 16,
                                     -0.016, 0.016, util::picoseconds(60.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfi.transient(input, util::picoseconds(20.0)));
  }
}
BENCHMARK(BM_TransientRfiStep);

void BM_FullLinkRun(benchmark::State& state) {
  const api::LinkBuilder builder;
  for (auto _ : state) {
    core::SerDesLink link = builder.build_link();
    benchmark::DoNotOptimize(link.run_prbs(1024));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FullLinkRun);

void BM_SimulatorRunNoCapture(benchmark::State& state) {
  // The façade path benches / sweeps use: spec -> report, waveforms dropped.
  const api::LinkSpec spec = api::LinkBuilder()
                                 .payload_bits(1024)
                                 .chunk_bits(1024)
                                 .build_spec();
  const api::Simulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(spec));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorRunNoCapture);

void BM_SimulatorRunBatch(benchmark::State& state) {
  // Multi-lane fan-out: lanes per batch on the x axis.
  const auto lanes = static_cast<std::size_t>(state.range(0));
  std::vector<api::LinkSpec> specs(lanes, api::LinkBuilder()
                                              .payload_bits(1024)
                                              .chunk_bits(1024)
                                              .build_spec());
  const api::Simulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_batch(specs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes) * 1024);
}
BENCHMARK(BM_SimulatorRunBatch)->Arg(1)->Arg(4)->Arg(16);

void BM_NetlistGeneration(benchmark::State& state) {
  flow::SerdesRtlConfig rtl;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::generate_serializer(rtl));
  }
}
BENCHMARK(BM_NetlistGeneration);

void BM_StaAnalysis(benchmark::State& state) {
  flow::SerdesRtlConfig rtl;
  flow::Netlist n = flow::generate_serializer(rtl);
  flow::place(n);
  for (auto _ : state) {
    flow::StaEngine sta(n);
    benchmark::DoNotOptimize(sta.analyze(util::picoseconds(500.0)));
  }
}
BENCHMARK(BM_StaAnalysis);

void BM_PowerAnalysis(benchmark::State& state) {
  flow::SerdesRtlConfig rtl;
  flow::Netlist n = flow::generate_deserializer(rtl);
  flow::place(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::analyze_power(n, {}));
  }
}
BENCHMARK(BM_PowerAnalysis);

}  // namespace

BENCHMARK_MAIN();
