// Microbenchmarks of the simulation kernels: how fast the library itself
// runs (not a paper figure — engineering data for users).
//
// Self-contained timing harness (no external benchmark dependency, so this
// always builds) that prints a table and writes machine-readable
// BENCH_perf.json — {name, items_per_s, ns_per_item, ...} per kernel — so
// the performance trajectory is tracked across PRs.
//
// The headline entries are the batch-vs-streaming comparison on the deep
// BER kernel: one Simulator::run over a single 2^20-bit chunk in each
// execution mode, with the process peak-RSS sampled around each so the
// O(payload) vs O(block) memory behaviour is visible in the JSON.  The
// stage_* entries time each streaming-datapath kernel in isolation
// (items = waveform samples) so a regression localizes to the stage that
// caused it, and the fir513 direct-vs-fft pair tracks the overlap-save
// crossover the dsp engine's BlockFir::use_fft constants encode.
//
// Usage: bench_perf_kernels [output.json] [--deep-bits=N]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analog/rfi.h"
#include "api/api.h"
#include "channel/channel.h"
#include "core/link.h"
#include "core/receiver.h"
#include "digital/cdr.h"
#include "dsp/convolution.h"
#include "dsp/fft.h"
#include "flow/place.h"
#include "flow/power.h"
#include "flow/rtlgen.h"
#include "flow/sta.h"
#include "api/bus_spec.h"
#include "opt/optimizer.h"
#include "pipe/lane_block.h"
#include "pipe/lane_stages.h"
#include "pipe/pam_stages.h"
#include "pipe/stages.h"
#include "util/fs.h"
#include "util/prbs.h"
#include "util/random.h"

namespace {

using namespace serdes;

struct BenchResult {
  std::string name;
  std::uint64_t items = 0;     // per iteration
  std::uint64_t iterations = 0;
  double seconds = 0.0;
  double peak_rss_kb = 0.0;    // VmHWM after the run (0 if unavailable)

  [[nodiscard]] double items_per_s() const {
    return seconds > 0.0
               ? static_cast<double>(items * iterations) / seconds
               : 0.0;
  }
  [[nodiscard]] double ns_per_item() const {
    const double total = static_cast<double>(items * iterations);
    return total > 0.0 ? seconds * 1e9 / total : 0.0;
  }
};

double read_peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr);
    }
  }
  return 0.0;
}

/// Runs `fn` repeatedly until `min_seconds` of wall time accumulates
/// (at least once), then records throughput.
template <class F>
BenchResult run_bench(std::vector<BenchResult>& results, std::string name,
                      std::uint64_t items_per_iter, F&& fn,
                      double min_seconds = 0.25) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup (excluded)
  BenchResult r;
  r.name = std::move(name);
  r.items = items_per_iter;
  const auto start = clock::now();
  do {
    fn();
    ++r.iterations;
    r.seconds =
        std::chrono::duration<double>(clock::now() - start).count();
  } while (r.seconds < min_seconds);
  r.peak_rss_kb = read_peak_rss_kb();
  std::printf("%-34s %12.0f items/s %12.1f ns/item  (%llu x %llu items)\n",
              r.name.c_str(), r.items_per_s(), r.ns_per_item(),
              static_cast<unsigned long long>(r.iterations),
              static_cast<unsigned long long>(r.items));
  std::fflush(stdout);
  results.push_back(r);
  return r;
}

void write_json(const std::vector<BenchResult>& results,
                const std::string& path) {
  // Atomic replace: the perf-floor gate parses this artifact, so a bench
  // killed mid-write must not leave truncated JSON behind.
  std::string text = "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"items_per_s\": %.1f, "
                  "\"ns_per_item\": %.3f, \"items\": %llu, "
                  "\"iterations\": %llu, \"seconds\": %.6f, "
                  "\"peak_rss_kb\": %.0f}%s\n",
                  r.name.c_str(), r.items_per_s(), r.ns_per_item(),
                  static_cast<unsigned long long>(r.items),
                  static_cast<unsigned long long>(r.iterations), r.seconds,
                  r.peak_rss_kb, i + 1 < results.size() ? "," : "");
    text += buf;
  }
  text += "  ]\n}\n";
  serdes::util::atomic_write_file(path, text);
  std::printf("wrote %s\n", path.c_str());
}

api::LinkSpec deep_ber_spec(std::uint64_t bits, bool streaming) {
  api::LinkSpec spec;
  spec.name = streaming ? "deep_ber_streaming" : "deep_ber_batch";
  spec.payload_bits = bits;
  spec.chunk_bits = bits;  // one chunk: the memory-behaviour stress case
  spec.prbs_order = util::PrbsOrder::kPrbs15;
  spec.streaming = streaming;
  return spec;
}

// ---- Per-stage kernels ------------------------------------------------------
// One entry per streaming-datapath stage (items = waveform samples), so a
// regression in BENCH_perf.json localizes to the kernel that caused it.

void bench_stage_kernels(std::vector<BenchResult>& results) {
  const auto cfg = core::LinkConfig::paper_default();
  const std::size_t block = 16384;
  const std::size_t nblocks = 8;
  const std::size_t nsamp = block * nblocks;
  const int spu = cfg.samples_per_ui;

  {
    util::Rng rng(42);
    run_bench(results, "rng_gaussian", 65536, [&] {
      double acc = 0.0;
      for (int i = 0; i < 65536; ++i) acc += rng.gaussian();
      volatile double sink = acc;
      (void)sink;
    });
  }

  {
    util::PrbsGenerator prbs(util::PrbsOrder::kPrbs15);
    const auto bits = prbs.next_bits(nsamp / spu);
    std::vector<double> levels(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      levels[i] = bits[i] ? 1.8 : 0.0;
    }
    pipe::LevelPulseSource src(levels, cfg.unit_interval(), spu,
                               util::picoseconds(100.0), util::seconds(0.0));
    pipe::Block blk;
    run_bench(results, "stage_source_sample", nsamp, [&] {
      src.reset();
      while (src.produce(blk, block) > 0) {
      }
    });
  }

  const auto channel_bench = [&](const char* name,
                                 const channel::Channel& ch) {
    const auto stream = ch.open_stream();
    // Separate in/out buffers: transmitting in place would decay the
    // signal through denormals to zeros across iterations and time an
    // unrepresentative data regime.
    const std::vector<double> buf(nsamp, 0.5);
    std::vector<double> out(nsamp, 0.0);
    run_bench(results, name, nsamp, [&] {
      for (std::size_t i = 0; i < nsamp; i += block) {
        stream->transmit_block(buf.data() + i, out.data() + i, block);
      }
    });
  };
  channel_bench("stage_channel_flat_sample",
                channel::FlatChannel(util::decibels(34.0)));
  {
    // The paper-default FIR configuration: UI-spaced taps left strided
    // (samples_per_tap = samples_per_ui), so 4 MACs/sample instead of 64.
    std::vector<double> ui_taps = {0.1, 0.7, 0.25, -0.1};
    channel_bench("stage_channel_fir_ui4x16_sample",
                  channel::FirChannel(ui_taps, 16, /*dsp=*/false));
    std::vector<double> taps64(64, 0.01);
    channel_bench("stage_channel_fir64_direct_sample",
                  channel::FirChannel(taps64, 1, /*dsp=*/false));
    std::vector<double> taps513(513, 0.002);
    channel_bench("stage_channel_fir513_direct_sample",
                  channel::FirChannel(taps513, 1, /*dsp=*/false));
    channel_bench("stage_channel_fir513_fft_sample",
                  channel::FirChannel(taps513, 1, /*dsp=*/true));
  }
  {
    channel::LossyLineChannel::Params p;
    p.dc_loss_db = 2.0;
    p.skin_loss_db_at_1ghz = 10.0;
    p.dielectric_loss_db_at_1ghz = 8.0;
    channel_bench("stage_channel_lossy_sample",
                  channel::LossyLineChannel(p, cfg.sample_period()));
  }

  const auto stage_bench = [&](const char* name, pipe::Stage& stage,
                               double fill) {
    pipe::Block in;
    in.samples().assign(block, fill);
    pipe::Block out;
    run_bench(results, name, nsamp, [&] {
      for (std::size_t i = 0; i < nsamp; i += block) {
        stage.process(in.view(), out);
      }
    });
  };
  {
    pipe::AwgnStage awgn(0.001, 1234);
    stage_bench("stage_awgn_sample", awgn, 0.5);
  }
  {
    pipe::CtleStage ctle(util::decibels(4.0), util::megahertz(700.0),
                         cfg.sample_period());
    stage_bench("stage_ctle_sample", ctle, 0.5);
  }
  core::Receiver rx(cfg);
  {
    pipe::RfiFrontEndStage rfi(rx.rfi_stage(), cfg.sample_period());
    rfi.set_mean(0.0005);
    stage_bench("stage_rfi_sample", rfi, 0.0005);
  }
  {
    pipe::RestoringStage restore(rx.restoring(), cfg.sample_period());
    stage_bench("stage_restore_sample", restore, 0.9);
  }

  {
    pipe::SamplerCdrSink::Config sc;
    sc.bit_rate = cfg.bit_rate;
    sc.oversampling = cfg.cdr.oversampling;
    sc.jitter.random_rms = cfg.rx_random_jitter;
    sc.total_samples = nsamp;
    sc.dt = cfg.sample_period();
    sc.block_samples = block;
    run_bench(results, "stage_sampler_cdr_sample", nsamp, [&] {
      pipe::SamplerCdrSink sink(sc);
      pipe::Block in;
      in.samples().assign(block, 0.9);
      for (std::size_t i = 0; i < nsamp; i += block) {
        in.set_start_index(i);
        sink.consume(in.view());
      }
      sink.finish();
    });
  }

  {
    // The PAM4 terminal sink: three slicers + gray decode + dual-rail CDR
    // per sampling instant, against the symbol clock (bit_rate / 2).  The
    // constant input sits inside the upper sub-eye so all three slicers
    // run their comparison path.
    pipe::PamSamplerCdrSink::Config pc;
    pc.symbol_rate = util::hertz(cfg.bit_rate.value() / 2.0);
    pc.oversampling = cfg.cdr.oversampling;
    pc.jitter.random_rms = cfg.rx_random_jitter;
    pc.threshold_low = 0.6;
    pc.threshold_mid = 0.9;
    pc.threshold_high = 1.2;
    pc.total_samples = nsamp;
    pc.dt = cfg.sample_period();
    pc.block_samples = block;
    run_bench(results, "stage_pam4_slicer_sample", nsamp, [&] {
      pipe::PamSamplerCdrSink sink(pc);
      pipe::Block in;
      in.samples().assign(block, 1.1);
      for (std::size_t i = 0; i < nsamp; i += block) {
        in.set_start_index(i);
        sink.consume(in.view());
      }
      sink.finish();
    });
  }

  // ---- Lane-batched (SoA) kernels: 8 lanes, items = lane-samples ----------
  // Each is the stage_* kernel above across an 8-lane tile; the floors pin
  // the vectorization win (per-lane throughput must beat 1/8 of a wide
  // margin over the scalar kernel, not merely match it).
  {
    constexpr std::size_t kLanes = 8;
    std::vector<std::uint64_t> lane_seeds;
    for (std::size_t l = 0; l < kLanes; ++l) lane_seeds.push_back(1000 + l);

    pipe::LaneBlock tile;
    tile.shape(block, kLanes, 0, util::seconds(0.0), cfg.sample_period(),
               false);
    const auto fill_tile = [&](double v) {
      double* d = tile.data();
      for (std::size_t i = 0; i < block * kLanes; ++i) d[i] = v;
    };
    pipe::LaneBlock out_tile;

    {
      pipe::Block shared;
      shared.samples().assign(block, 0.5);
      pipe::LaneAwgnStage awgn(0.001, lane_seeds);
      run_bench(results, "stage_awgn_lanes8_sample", nsamp * kLanes, [&] {
        for (std::size_t i = 0; i < nsamp; i += block) {
          awgn.process(shared.view(), out_tile);
        }
      });
    }
    {
      pipe::LaneCtleStage ctle(util::decibels(4.0), util::megahertz(700.0),
                               cfg.sample_period(), kLanes);
      fill_tile(0.5);
      run_bench(results, "stage_ctle_lanes8_sample", nsamp * kLanes, [&] {
        for (std::size_t i = 0; i < nsamp; i += block) {
          ctle.process(tile.view(), out_tile);
        }
      });
    }
    {
      pipe::LaneRfiStage rfi(rx.rfi_stage(), cfg.sample_period(), kLanes);
      for (std::size_t l = 0; l < kLanes; ++l) rfi.set_mean(l, 0.0005);
      fill_tile(0.0005);
      run_bench(results, "stage_rfi_lanes8_sample", nsamp * kLanes, [&] {
        for (std::size_t i = 0; i < nsamp; i += block) {
          rfi.process(tile.view(), out_tile);
        }
      });
    }
    {
      pipe::LaneRestoreStage restore(rx.restoring(), cfg.sample_period(),
                                     kLanes);
      fill_tile(0.9);
      run_bench(results, "stage_restore_lanes8_sample", nsamp * kLanes, [&] {
        for (std::size_t i = 0; i < nsamp; i += block) {
          restore.process(tile.view(), out_tile);
        }
      });
    }
    {
      // Interleaved-history lane FIR: the lane counterpart of
      // stage_channel_fir64_direct_sample (64 dense MACs per lane-sample).
      std::vector<double> taps64(64, 0.01);
      dsp::BlockFir fir(taps64, 1);
      std::vector<double> history((taps64.size() - 1) * kLanes, 0.0);
      std::vector<double> out(block * kLanes, 0.0);
      fill_tile(0.5);
      run_bench(results, "stage_channel_fir64_lanes8_sample", nsamp * kLanes,
                [&] {
                  for (std::size_t i = 0; i < nsamp; i += block) {
                    fir.process_lanes(history.data(), tile.data(), out.data(),
                                      block, kLanes);
                  }
                });
    }
    {
      pipe::LaneSamplerCdrSink::Config sc;
      sc.bit_rate = cfg.bit_rate;
      sc.oversampling = cfg.cdr.oversampling;
      sc.jitter.random_rms = cfg.rx_random_jitter;
      sc.jitter_seeds = lane_seeds;
      sc.sampler_seeds = lane_seeds;
      sc.total_samples = nsamp;
      sc.dt = cfg.sample_period();
      sc.block_samples = block;
      fill_tile(0.9);
      run_bench(results, "stage_sampler_cdr_lanes8_sample", nsamp * kLanes,
                [&] {
                  pipe::LaneSamplerCdrSink sink(sc);
                  for (std::size_t i = 0; i < nsamp; i += block) {
                    tile.shape(block, kLanes, i, util::seconds(0.0),
                               cfg.sample_period(), false);
                    sink.consume(tile.view());
                  }
                  sink.finish();
                });
    }
  }

  {
    dsp::RealFft fft(4096);
    std::vector<double> x(4096, 0.25);
    std::vector<std::complex<double>> spec(fft.bins());
    run_bench(results, "dsp_rfft4096_roundtrip_sample", 4096, [&] {
      fft.forward(x.data(), spec.data());
      fft.inverse(spec.data(), x.data());
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_perf.json";
  std::uint64_t deep_bits = std::uint64_t{1} << 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--deep-bits=", 12) == 0) {
      deep_bits = std::strtoull(argv[i] + 12, nullptr, 10);
      if (deep_bits == 0) {
        std::fprintf(stderr, "invalid --deep-bits value: %s\n", argv[i]);
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "unknown option: %s\n"
                   "usage: bench_perf_kernels [output.json] [--deep-bits=N]\n",
                   argv[i]);
      return 2;
    } else {
      json_path = argv[i];
    }
  }

  std::vector<BenchResult> results;

  run_bench(results, "prbs_generation_bit", 65536, [] {
    static util::PrbsGenerator prbs(util::PrbsOrder::kPrbs31);
    for (int i = 0; i < 65536; ++i) {
      volatile bool b = prbs.next();
      (void)b;
    }
  });

  {
    util::PrbsGenerator prbs(util::PrbsOrder::kPrbs15);
    const auto bits = prbs.next_bits(4096);
    std::vector<std::uint8_t> samples;
    samples.reserve(bits.size() * 5);
    for (auto b : bits) {
      for (int p = 0; p < 5; ++p) samples.push_back(b);
    }
    run_bench(results, "cdr_recovery_bit", bits.size(), [&] {
      digital::OversamplingCdr cdr(digital::CdrConfig{});
      volatile std::size_t n = cdr.recover(samples).size();
      (void)n;
    });
  }

  {
    const analog::RfiCircuit rfi;
    const std::vector<std::uint8_t> bits = {0, 1, 1, 0, 1, 0, 0, 1};
    const auto input = analog::Waveform::nrz(
        bits, util::nanoseconds(0.5), 16, -0.016, 0.016,
        util::picoseconds(60.0));
    run_bench(results, "transient_rfi_8bit", bits.size(), [&] {
      volatile std::size_t n =
          rfi.transient(input, util::picoseconds(20.0)).output.size();
      (void)n;
    });
  }

  {
    const api::LinkBuilder builder;
    run_bench(results, "full_link_run_bit", 1024, [&] {
      core::SerDesLink link = builder.build_link();
      volatile std::uint64_t e = link.run_prbs(1024).bit_errors;
      (void)e;
    });
  }

  {
    const api::LinkSpec spec = api::LinkBuilder()
                                   .payload_bits(1024)
                                   .chunk_bits(1024)
                                   .build_spec();
    const api::Simulator sim;
    run_bench(results, "simulator_run_nocapture_bit", 1024, [&] {
      volatile std::uint64_t b = sim.run(spec).bits;
      (void)b;
    });
  }

  {
    std::vector<api::LinkSpec> specs(4, api::LinkBuilder()
                                            .payload_bits(1024)
                                            .chunk_bits(1024)
                                            .build_spec());
    const api::Simulator sim;
    run_bench(results, "simulator_run_batch4_bit",
              specs.size() * 1024, [&] {
                volatile std::size_t n = sim.run_batch(specs).size();
                (void)n;
              });
  }

  {
    // The SoA lane-tiling headline: 8 lanes sharing one instruction
    // stream (lane_batch = 8 groups them into a single LaneLink tile).
    std::vector<api::LinkSpec> specs(8, api::LinkBuilder()
                                            .payload_bits(1024)
                                            .chunk_bits(1024)
                                            .lane_batch(8)
                                            .build_spec());
    const api::Simulator sim;
    run_bench(results, "simulator_run_batch8_lanes_bit",
              specs.size() * 1024, [&] {
                volatile std::size_t n = sim.run_batch(specs).size();
                (void)n;
              });
  }

  // ---- Statistical engine ---------------------------------------------------
  // One full analytical scenario (pulse extraction + 64-phase bathtub +
  // contours at 1e-15) on the paper operating point; items = scenarios.
  // This is the kernel behind `serdes_cli stat` and the sweep engine's
  // "stat"/"both" scenarios, so it gets a CI floor like the MC kernels.
  {
    api::LinkSpec spec = api::LinkBuilder().analysis("stat").build_spec();
    const api::Simulator sim;
    run_bench(results, "stat_engine_paper_default", 1, [&] {
      volatile double ber = sim.run(spec).stat->min_ber;
      (void)ber;
    });
  }

  // Same engine with a 3-tap DFE on an ISI channel: the residual
  // post-cursor cancellation and the error-propagation burst factor run
  // per phase bin on top of the plain bathtub.  Items = scenarios.
  // Backs the trained/DFE stat scenarios (examples/specs/trained_ci.json).
  {
    api::LinkSpec spec = api::LinkBuilder()
                             .channel(api::ChannelSpec::fir({0.8, 0.15, 0.05}))
                             .noise_rms(0.002)
                             .dfe({0.01, 0.005, 0.002})
                             .analysis("stat")
                             .build_spec();
    const api::Simulator sim;
    run_bench(results, "stat_engine_dfe_sample", 1, [&] {
      volatile double ber = sim.run(spec).stat->min_ber;
      (void)ber;
    });
  }

  // The full `serdes_cli optimize` path on the paper operating point:
  // baseline stat evaluation (which already meets the 1e-15 target, so
  // the descent short-circuits) plus the winner's 2^16-bit Monte Carlo
  // cross-check.  Items = optimize calls.
  {
    const api::LinkSpec spec = api::LinkSpec::paper_default();
    run_bench(results, "optimize_paper_default", 1, [&] {
      volatile bool met = opt::optimize(spec).met;
      (void)met;
    });
  }

  // Four PAM4 lanes with tri-diagonal FEXT/NEXT, stat analysis only:
  // per-lane composite-channel pulse extraction plus crosstalk folded in
  // as bounded interference PDFs, per-eye PAM4 margins and bathtubs.
  // Items = lane scenarios.  Backs the bus rows of the CI scenario
  // matrix ("analysis": "stat" / "both" bus specs).
  {
    api::BusSpec bus;
    bus.name = "bench_bus";
    bus.lanes = 4;
    bus.base = api::LinkBuilder()
                   .channel(api::ChannelSpec::flat(4.0))
                   .modulation("pam4")
                   .noise_rms(0.005)
                   .analysis("stat")
                   .build_spec();
    bus.coupling.assign(4, std::vector<double>(4, 0.0));
    bus.next_coupling.assign(4, std::vector<double>(4, 0.0));
    for (int v = 0; v < 4; ++v) {
      for (int a : {v - 1, v + 1}) {
        if (a < 0 || a >= 4) continue;
        bus.coupling[v][a] = 0.03;
        bus.next_coupling[v][a] = 0.01;
      }
    }
    const api::Simulator sim;
    run_bench(results, "stat_engine_bus4_pam4", 4, [&] {
      volatile double ber = sim.run_bus(bus, 1).lanes[0].stat->min_ber;
      (void)ber;
    });
  }

  // ---- Batch vs streaming on the deep BER kernel ---------------------------
  // One Simulator::run per mode over a single deep chunk.  Streaming runs
  // first so its peak-RSS sample is not polluted by the batch path's
  // full-payload waveforms (VmHWM is monotone).
  {
    const api::Simulator sim;
    std::printf("deep BER kernel: %llu bits per run\n",
                static_cast<unsigned long long>(deep_bits));
    const BenchResult streaming =
        run_bench(results, "deep_ber_streaming_bit", deep_bits,
                  [&] {
                    volatile std::uint64_t b =
                        sim.run(deep_ber_spec(deep_bits, true)).bits;
                    (void)b;
                  },
                  0.0);
    const BenchResult batch =
        run_bench(results, "deep_ber_batch_bit", deep_bits,
                  [&] {
                    volatile std::uint64_t b =
                        sim.run(deep_ber_spec(deep_bits, false)).bits;
                    (void)b;
                  },
                  0.0);
    std::printf(
        "streaming/batch throughput: %.2fx, peak RSS %0.f MB vs %0.f MB\n",
        streaming.items_per_s() / batch.items_per_s(),
        streaming.peak_rss_kb / 1024.0, batch.peak_rss_kb / 1024.0);
  }

  bench_stage_kernels(results);

  {
    flow::SerdesRtlConfig rtl;
    run_bench(results, "netlist_generation", 1, [&] {
      volatile std::size_t n = flow::generate_serializer(rtl).cells().size();
      (void)n;
    });
  }

  {
    flow::SerdesRtlConfig rtl;
    flow::Netlist n = flow::generate_serializer(rtl);
    flow::place(n);
    run_bench(results, "sta_analysis", 1, [&] {
      flow::StaEngine sta(n);
      volatile double t = sta.analyze(util::picoseconds(500.0))
                              .worst_slack.value();
      (void)t;
    });
  }

  {
    flow::SerdesRtlConfig rtl;
    flow::Netlist n = flow::generate_deserializer(rtl);
    flow::place(n);
    run_bench(results, "power_analysis", 1, [&] {
      volatile double p = flow::analyze_power(n, {}).total().value();
      (void)p;
    });
  }

  write_json(results, json_path);
  return 0;
}
