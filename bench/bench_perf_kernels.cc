// google-benchmark microbenchmarks of the simulation kernels: how fast the
// library itself runs (not a paper figure — engineering data for users).
#include <benchmark/benchmark.h>

#include <memory>

#include "analog/rfi.h"
#include "analog/transient.h"
#include "channel/channel.h"
#include "core/link.h"
#include "digital/cdr.h"
#include "flow/place.h"
#include "flow/power.h"
#include "flow/rtlgen.h"
#include "flow/sta.h"
#include "util/prbs.h"

namespace {

using namespace serdes;

void BM_PrbsGeneration(benchmark::State& state) {
  util::PrbsGenerator prbs(util::PrbsOrder::kPrbs31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prbs.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrbsGeneration);

void BM_CdrRecovery(benchmark::State& state) {
  util::PrbsGenerator prbs(util::PrbsOrder::kPrbs15);
  const auto bits = prbs.next_bits(4096);
  std::vector<std::uint8_t> samples;
  samples.reserve(bits.size() * 5);
  for (auto b : bits) {
    for (int p = 0; p < 5; ++p) samples.push_back(b);
  }
  for (auto _ : state) {
    digital::OversamplingCdr cdr(digital::CdrConfig{});
    benchmark::DoNotOptimize(cdr.recover(samples));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_CdrRecovery);

void BM_TransientRfiStep(benchmark::State& state) {
  const analog::RfiCircuit rfi;
  const std::vector<std::uint8_t> bits = {0, 1, 1, 0, 1, 0, 0, 1};
  auto input = analog::Waveform::nrz(bits, util::nanoseconds(0.5), 16,
                                     -0.016, 0.016, util::picoseconds(60.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfi.transient(input, util::picoseconds(20.0)));
  }
}
BENCHMARK(BM_TransientRfiStep);

void BM_FullLinkRun(benchmark::State& state) {
  const core::LinkConfig cfg = core::LinkConfig::paper_default();
  for (auto _ : state) {
    core::SerDesLink link(cfg, std::make_unique<channel::FlatChannel>(
                                   util::decibels(34.0)));
    benchmark::DoNotOptimize(link.run_prbs(1024));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FullLinkRun);

void BM_NetlistGeneration(benchmark::State& state) {
  flow::SerdesRtlConfig rtl;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::generate_serializer(rtl));
  }
}
BENCHMARK(BM_NetlistGeneration);

void BM_StaAnalysis(benchmark::State& state) {
  flow::SerdesRtlConfig rtl;
  flow::Netlist n = flow::generate_serializer(rtl);
  flow::place(n);
  for (auto _ : state) {
    flow::StaEngine sta(n);
    benchmark::DoNotOptimize(sta.analyze(util::picoseconds(500.0)));
  }
}
BENCHMARK(BM_StaAnalysis);

void BM_PowerAnalysis(benchmark::State& state) {
  flow::SerdesRtlConfig rtl;
  flow::Netlist n = flow::generate_deserializer(rtl);
  flow::place(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::analyze_power(n, {}));
  }
}
BENCHMARK(BM_PowerAnalysis);

}  // namespace

BENCHMARK_MAIN();
