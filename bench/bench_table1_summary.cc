// Headline summary ("Table 1"): the paper's Results-section numbers in one
// table — operating point, sensitivity, power, efficiency, area.
#include <cstdio>

#include "api/api.h"
#include "core/power_model.h"
#include "core/sensitivity.h"
#include "util/table.h"

int main() {
  using namespace serdes;
  const api::LinkSpec spec = api::LinkSpec::paper_default();
  const core::LinkConfig cfg = spec.to_link_config();

  // Operating point check: 60k bits through 34 dB of loss.
  const auto ber = api::Simulator().run(api::LinkBuilder(spec)
                                            .name("table1_operating_point")
                                            .payload_bits(60000)
                                            .build_spec());

  // Sensitivity at the operating rate.
  core::SensitivitySweepConfig sweep;
  sweep.bits_per_trial = 2000;
  const double sens = core::measure_sensitivity(cfg, cfg.bit_rate, sweep);

  // Power/area budget.
  const auto budget = core::compute_link_budget(cfg);

  util::TextTable table("Headline summary - paper vs this reproduction");
  table.set_header({"metric", "paper", "measured"});
  table.add_row({"data rate", "2 Gbps", "2 Gbps"});
  table.add_row({"channel loss (error-free)", "34 dB",
                 ber.error_free() ? "34 dB (zero errors)" : "34 dB FAILED"});
  table.add_row({"BER bound (95%)", "zero observed",
                 util::num(ber.ber_upper_bound)});
  table.add_row({"receiver sensitivity", "32 mV",
                 util::num(sens * 1e3) + " mV"});
  table.add_row({"total power", "437.7 mW",
                 util::num(budget.total_power().value() * 1e3) + " mW"});
  table.add_row({"energy efficiency", "219 pJ/bit",
                 util::num(budget.energy_per_bit(cfg.bit_rate).value() * 1e12) +
                     " pJ/bit"});
  table.add_row({"layout area", "0.24 mm2",
                 util::num(budget.total_area().value() * 1e-6) + " mm2"});
  table.add_row({"supply", "1.8 V", util::num(cfg.driver.vdd.value()) + " V"});
  table.add_row({"RFI self-bias", "0.83 V", "see bench_fig6_rfi"});
  table.print();
  return ber.error_free() ? 0 : 1;
}
