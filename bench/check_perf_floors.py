#!/usr/bin/env python3
"""Compare a fresh BENCH_perf.json against checked-in throughput floors.

Fails (exit 1) when any kernel present in the floors file runs below its
floor.  The floors encode "no more than a 25% regression from the recorded
reference run", derated for machine variance between the reference box and
CI runners — regenerate them from a representative run with --write, which
stores items_per_s * WRITE_FACTOR per kernel.

Usage:
  check_perf_floors.py FRESH.json FLOORS.json           # check (CI gate)
  check_perf_floors.py FRESH.json FLOORS.json --write   # regenerate floors

One-command local repro of the CI gate:
  cmake --build build --target bench_perf_kernels && \
      ./build/bench/bench_perf_kernels BENCH_perf.json --deep-bits=262144 && \
      python3 bench/check_perf_floors.py BENCH_perf.json bench/BENCH_perf_floors.json
"""

import json
import sys

# reference * (1 - 0.25 regression budget) * 1/3 machine-variance derate:
# GitHub-hosted runners span CPU generations and are oversubscribed, so the
# derate is generous — the gate exists to catch order-of-magnitude kernel
# regressions, not single-digit drift (the uploaded artifact tracks that).
WRITE_FACTOR = 0.75 / 3.0

# Kernels excluded from the gate: single-shot timings (iterations == 1 at
# small --deep-bits) are too noisy for a hard floor; the deep kernel's
# trajectory is tracked through the uploaded artifact instead.
EXCLUDE = ("deep_ber_streaming_bit", "deep_ber_batch_bit")

# Kernels that MUST have a floor: if one goes missing from the floors file
# (e.g. a careless --write on a build without the bench), the gate fails
# instead of silently ungating the kernel.  The stat-engine kernel backs
# the `serdes_cli stat` path and the "stat"/"both" sweep scenarios; the
# lanes8 kernels pin the SoA lane-tiling speedup (the batch8 floor is
# deliberately >= 3x the batch4 floor, so losing the tiling win is a
# gate failure, not drift).
REQUIRED = (
    "stat_engine_paper_default",
    "stat_engine_bus4_pam4",
    "stat_engine_dfe_sample",
    "optimize_paper_default",
    "stage_pam4_slicer_sample",
    "full_link_run_bit",
    "simulator_run_batch8_lanes_bit",
    "stage_awgn_lanes8_sample",
    "stage_channel_fir64_lanes8_sample",
    "stage_ctle_lanes8_sample",
    "stage_restore_lanes8_sample",
    "stage_rfi_lanes8_sample",
    "stage_sampler_cdr_lanes8_sample",
)


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b["items_per_s"] for b in data["benchmarks"]}


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    fresh_path, floors_path = args
    fresh = load(fresh_path)

    if "--write" in sys.argv:
        floors = {
            name: round(rate * WRITE_FACTOR, 1)
            for name, rate in sorted(fresh.items())
            if name not in EXCLUDE
        }
        with open(floors_path, "w") as f:
            json.dump({"floors": floors}, f, indent=2)
            f.write("\n")
        print(f"wrote {floors_path} ({len(floors)} floors, "
              f"factor {WRITE_FACTOR})")
        return 0

    with open(floors_path) as f:
        floors = json.load(f)["floors"]
    failures = []
    for name in REQUIRED:
        if name not in floors:
            failures.append(f"{name}: required kernel has no floor in "
                            f"{floors_path}")
    for name, floor in sorted(floors.items()):
        rate = fresh.get(name)
        if rate is None:
            failures.append(f"{name}: missing from {fresh_path}")
            continue
        verdict = "ok" if rate >= floor else "REGRESSION"
        print(f"{name:40s} {rate:16.1f} items/s  floor {floor:16.1f}  "
              f"{verdict}")
        if rate < floor:
            failures.append(
                f"{name}: {rate:.1f} items/s is below the floor {floor:.1f}")
    if failures:
        print("\nperf floor check FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nperf floor check passed ({len(floors)} kernels)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
