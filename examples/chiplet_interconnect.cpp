// Chiplet-to-chiplet short-reach interconnect (paper Discussion: EMIB-style
// links, 1-5 dB loss, 1-4 GHz): sweep rate and loss, report the operating
// envelope and energy per bit.
//
// Build & run:  ./build/examples/chiplet_interconnect
#include <cstdio>
#include <memory>

#include "channel/channel.h"
#include "core/ber.h"
#include "core/link.h"
#include "core/power_model.h"
#include "util/table.h"

int main() {
  using namespace serdes;

  util::TextTable table(
      "Short-reach chiplet interconnect envelope (EMIB-class channel)");
  table.set_header({"rate_GHz", "loss_dB", "error_free", "ber_95_bound"});
  int clean_points = 0;
  int total_points = 0;
  for (double rate_ghz : {1.0, 2.0, 3.0, 4.0}) {
    for (double loss_db : {1.0, 3.0, 5.0}) {
      core::LinkConfig cfg = core::LinkConfig::paper_default();
      cfg.bit_rate = util::gigahertz(rate_ghz);
      core::SerDesLink link(cfg, std::make_unique<channel::FlatChannel>(
                                     util::decibels(loss_db)));
      const auto ber = core::measure_ber(link, 20000, 4000);
      ++total_points;
      if (ber.error_free()) ++clean_points;
      table.add_row({util::num(rate_ghz), util::num(loss_db),
                     ber.error_free() ? "yes" : "NO",
                     util::num(ber.ber_upper_bound)});
    }
  }
  table.print();

  // Energy per bit at the sweet spot: benign channels barely use the RX
  // gain, so the digital blocks dominate exactly as in the paper.
  const core::LinkConfig cfg = core::LinkConfig::paper_default();
  const auto budget = core::compute_link_budget(cfg);
  std::printf("\nenergy per bit at 2 GHz: %s (dominated by serializer/"
              "deserializer)\n",
              util::to_string(budget.energy_per_bit(cfg.bit_rate)).c_str());
  std::printf("operating envelope     : %d / %d (rate, loss) points clean\n",
              clean_points, total_points);
  std::printf(
      "paper: 1-4 GHz feasible in the 1-5 dB loss regime; the 2 GHz design\n"
      "corner is guaranteed, higher rates depend on front-end bandwidth.\n");
  return clean_points >= total_points / 2 ? 0 : 1;
}
