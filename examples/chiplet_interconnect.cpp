// Chiplet-to-chiplet short-reach interconnect (paper Discussion: EMIB-style
// links, 1-5 dB loss, 1-4 GHz): declare the whole (rate, loss) matrix as
// LinkSpecs and fan it out across threads with the batch runner, then
// report the operating envelope and energy per bit.
//
// Build & run:  ./build/examples/chiplet_interconnect
#include <cstdio>
#include <vector>

#include "api/api.h"
#include "core/power_model.h"
#include "util/table.h"

int main() {
  using namespace serdes;

  // The whole evaluation matrix, declared up front.
  struct Point {
    double rate_ghz;
    double loss_db;
  };
  std::vector<Point> points;
  std::vector<api::LinkSpec> specs;
  for (double rate_ghz : {1.0, 2.0, 3.0, 4.0}) {
    for (double loss_db : {1.0, 3.0, 5.0}) {
      points.push_back({rate_ghz, loss_db});
      specs.push_back(api::LinkBuilder()
                          .name(util::num(rate_ghz) + "GHz_" +
                                util::num(loss_db) + "dB")
                          .bit_rate(util::gigahertz(rate_ghz))
                          .flat_channel(util::decibels(loss_db))
                          .payload_bits(20000)
                          .chunk_bits(4000)
                          .build_spec());
    }
  }

  // One call: every lane runs in parallel with deterministic per-lane
  // seeds; reports come back in spec order.
  const auto reports = api::Simulator().run_batch(specs);

  util::TextTable table(
      "Short-reach chiplet interconnect envelope (EMIB-class channel)");
  table.set_header({"rate_GHz", "loss_dB", "error_free", "ber_95_bound"});
  int clean_points = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].error_free()) ++clean_points;
    table.add_row({util::num(points[i].rate_ghz), util::num(points[i].loss_db),
                   reports[i].error_free() ? "yes" : "NO",
                   util::num(reports[i].ber_upper_bound)});
  }
  table.print();

  // Energy per bit at the sweet spot: benign channels barely use the RX
  // gain, so the digital blocks dominate exactly as in the paper.
  const core::LinkConfig cfg = api::LinkBuilder().build_config();
  const auto budget = core::compute_link_budget(cfg);
  std::printf("\nenergy per bit at 2 GHz: %s (dominated by serializer/"
              "deserializer)\n",
              util::to_string(budget.energy_per_bit(cfg.bit_rate)).c_str());
  std::printf("operating envelope     : %d / %zu (rate, loss) points clean\n",
              clean_points, reports.size());
  std::printf(
      "paper: 1-4 GHz feasible in the 1-5 dB loss regime; the 2 GHz design\n"
      "corner is guaranteed, higher rates depend on front-end bandwidth.\n");
  return clean_points >= static_cast<int>(reports.size()) / 2 ? 0 : 1;
}
