// Mini OpenLANE-style flow report: generate the SerDes digital blocks as
// gate-level netlists, place them, run STA and power analysis, and export
// layout collateral (GDSII + SVG) — the paper's Fig 12 flow end to end.
//
// Build & run:  ./build/examples/flow_report
#include <cstdio>

#include "flow/gds.h"
#include "flow/place.h"
#include "flow/power.h"
#include "flow/rtlgen.h"
#include "flow/sta.h"
#include "util/table.h"

int main() {
  using namespace serdes;

  flow::SerdesRtlConfig rtl;  // the paper-scale 8x32 configuration
  util::TextTable table("RTL-to-GDS flow report (sky130-flavoured library)");
  table.set_header({"block", "cells", "dffs", "clk_bufs", "die_um2",
                    "fmax_GHz", "slack_at_2GHz_ps", "power_mW"});

  struct Job {
    const char* name;
    flow::Netlist netlist;
    double clock_ps;
  };
  std::vector<Job> jobs;
  jobs.push_back({"serializer", flow::generate_serializer(rtl), 500.0});
  jobs.push_back({"deserializer", flow::generate_deserializer(rtl), 500.0});
  // CDR decision logic runs demultiplexed at half rate.
  jobs.push_back({"cdr", flow::generate_cdr(rtl), 1000.0});

  for (auto& job : jobs) {
    const auto placement = flow::place(job.netlist);
    flow::StaEngine sta(job.netlist);
    const auto timing = sta.analyze(util::picoseconds(job.clock_ps));
    const auto power = flow::analyze_power(job.netlist, {});
    const auto stats = job.netlist.stats();

    table.add_row({job.name, std::to_string(stats.cell_count),
                   std::to_string(stats.dff_count),
                   std::to_string(job.netlist.count_function(
                       flow::CellFunction::kClkBuf)),
                   util::num(placement.die_area.value()),
                   util::num(timing.fmax().value() * 1e-9),
                   util::num(timing.worst_slack.value() * 1e12),
                   util::num(power.total().value() * 1e3)});

    // Per-block layout export.
    const std::string gds = std::string(job.name) + ".gds";
    flow::GdsWriter::write(gds, job.name,
                           flow::rects_from_netlist(job.netlist));
    std::printf("wrote %s (%zu cell outlines)\n", gds.c_str(),
                job.netlist.cells().size());
  }
  table.print();

  // Critical-path detail for the serializer, like an OpenSTA report.
  flow::Netlist ser = flow::generate_serializer(rtl);
  flow::place(ser);
  flow::StaEngine sta(ser);
  const auto timing = sta.analyze(util::picoseconds(500.0));
  std::printf("\n%s", flow::format_timing_report(ser, timing).c_str());
  // A flat 500 ps constraint over the whole serializer is pessimistic: in
  // silicon only the final 2:1 stage runs at the full bit rate while the
  // select counter could be split across divided clocks.  Accept the run if
  // the flat-constraint fmax is within 20% of the 2 GHz target.
  return timing.fmax().value() >= 1.6e9 ? 0 : 1;
}
