// PCIe-class lane evaluation (paper Discussion, Applications): the link at
// the 250 Mbps .. 2 Gbps per-lane rates of PCIe 1.x-4.0, with margin
// reporting per rate.
//
// Build & run:  ./build/examples/pcie_lane
#include <cstdio>
#include <memory>

#include "channel/channel.h"
#include "core/ber.h"
#include "core/eye.h"
#include "core/link.h"
#include "util/table.h"

int main() {
  using namespace serdes;

  struct LaneSpec {
    const char* generation;
    double rate_mbps;
  };
  // The paper quotes "Bandwidth/lane ranges from 250 Mbps to 2 Gbps".
  const LaneSpec lanes[] = {
      {"PCIe 1.x lane", 250.0},
      {"PCIe 2.x lane", 500.0},
      {"PCIe 3.x lane", 1000.0},
      {"PCIe 4.0 lane", 2000.0},
  };

  util::TextTable table("OpenSerDes as a PCIe-class lane (dispersive trace + 8 dB)");
  table.set_header({"interface", "rate_Mbps", "error_free", "ber_95_bound",
                    "eye_height_V", "eye_width_UI"});
  bool all_clean = true;
  for (const auto& lane : lanes) {
    core::LinkConfig cfg = core::LinkConfig::paper_default();
    cfg.bit_rate = util::megahertz(lane.rate_mbps);
    cfg.framing.preamble_bits = 512;  // generous CDR training for the sweep
    // A PCB trace: mild dispersion plus bulk attenuation.
    auto channel = std::make_unique<channel::CompositeChannel>();
    channel::LossyLineChannel::Params trace;
    trace.dc_loss_db = 1.0;
    trace.skin_loss_db_at_1ghz = 3.0;
    trace.dielectric_loss_db_at_1ghz = 2.0;
    channel->add(std::make_unique<channel::LossyLineChannel>(
        trace, cfg.sample_period()));
    channel->add(
        std::make_unique<channel::FlatChannel>(util::decibels(8.0)));

    core::SerDesLink link(cfg, std::move(channel));
    const auto ber = core::measure_ber(link, 30000, 6000);

    core::SerDesLink link2(
        cfg, std::make_unique<channel::FlatChannel>(util::decibels(24.0)));
    const auto r = link2.run_prbs(2000);
    core::EyeAnalyzer eye(cfg.bit_rate);
    const auto m = eye.analyze(r.rx.restored,
                               link2.receiver().decision_threshold());

    // The top 2 Gbps rate is the design's margin edge: PRBS-31 run-length
    // corners over a dispersive trace cost a handful of errors in 3e4 bits
    // (real PCIe adds TX/RX equalization precisely for this).  The example
    // requires the comfortably-in-spec lanes to be error-free and reports
    // the 2 Gbps lane's measured BER bound.
    if (lane.rate_mbps < 1500.0) all_clean = all_clean && ber.error_free();
    table.add_row({lane.generation, util::num(lane.rate_mbps),
                   ber.error_free() ? "yes" : "NO",
                   util::num(ber.ber_upper_bound), util::num(m.eye_height),
                   util::num(m.eye_width_ui)});
  }
  table.print();
  std::printf("\nLanes within margin clean: %s (2 Gbps lane runs at its"
              " margin edge;\nsee bench_fig9_sensitivity for the envelope)\n",
              all_clean ? "yes" : "NO");
  return all_clean ? 0 : 1;
}
