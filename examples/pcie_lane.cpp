// PCIe-class lane evaluation (paper Discussion, Applications): the link at
// the 250 Mbps .. 2 Gbps per-lane rates of PCIe 1.x-4.0, with margin
// reporting per rate.  Each generation is one declarative lane over a
// composite channel (dispersive trace + bulk attenuation); the batch
// runner executes them all in parallel.
//
// Build & run:  ./build/examples/pcie_lane
#include <cstdio>
#include <vector>

#include "api/api.h"
#include "util/table.h"

int main() {
  using namespace serdes;

  struct LaneSpec {
    const char* generation;
    double rate_mbps;
  };
  // The paper quotes "Bandwidth/lane ranges from 250 Mbps to 2 Gbps".
  const LaneSpec lanes[] = {
      {"PCIe 1.x lane", 250.0},
      {"PCIe 2.x lane", 500.0},
      {"PCIe 3.x lane", 1000.0},
      {"PCIe 4.0 lane", 2000.0},
  };

  // A PCB trace: mild dispersion plus bulk attenuation, as one channel
  // spec reused by every lane.
  const api::ChannelSpec trace = api::ChannelSpec::cascade(
      {api::ChannelSpec::lossy_line(1.0, 3.0, 2.0),
       api::ChannelSpec::flat(8.0)});

  std::vector<api::LinkSpec> ber_specs;
  std::vector<api::LinkSpec> eye_specs;
  for (const auto& lane : lanes) {
    api::LinkBuilder base;
    base.name(lane.generation)
        .bit_rate(util::megahertz(lane.rate_mbps))
        .preamble_bits(512);  // generous CDR training for the sweep
    ber_specs.push_back(api::LinkBuilder(base.spec())
                            .channel(trace)
                            .payload_bits(30000)
                            .chunk_bits(6000)
                            .build_spec());
    // Margin view on a 24 dB flat channel, eye measured on 2000 bits.
    eye_specs.push_back(api::LinkBuilder(base.spec())
                            .flat_channel(util::decibels(24.0))
                            .payload_bits(2000)
                            .build_spec());
  }

  const api::Simulator sim;
  const auto ber_reports = sim.run_batch(ber_specs);
  const auto eye_reports = sim.run_batch(eye_specs);

  util::TextTable table(
      "OpenSerDes as a PCIe-class lane (dispersive trace + 8 dB)");
  table.set_header({"interface", "rate_Mbps", "error_free", "ber_95_bound",
                    "eye_height_V", "eye_width_UI"});
  bool all_clean = true;
  for (std::size_t i = 0; i < ber_reports.size(); ++i) {
    const auto& ber = ber_reports[i];
    const auto& eye = eye_reports[i].eye;
    // The top 2 Gbps rate is the design's margin edge: PRBS-31 run-length
    // corners over a dispersive trace cost a handful of errors in 3e4 bits
    // (real PCIe adds TX/RX equalization precisely for this).  The example
    // requires the comfortably-in-spec lanes to be error-free and reports
    // the 2 Gbps lane's measured BER bound.
    if (lanes[i].rate_mbps < 1500.0) all_clean = all_clean && ber.error_free();
    table.add_row({lanes[i].generation, util::num(lanes[i].rate_mbps),
                   ber.error_free() ? "yes" : "NO",
                   util::num(ber.ber_upper_bound), util::num(eye.eye_height),
                   util::num(eye.eye_width_ui)});
  }
  table.print();
  std::printf("\nLanes within margin clean: %s (2 Gbps lane runs at its"
              " margin edge;\nsee bench_fig9_sensitivity for the envelope)\n",
              all_clean ? "yes" : "NO");
  return all_clean ? 0 : 1;
}
