// Quickstart: bring up the OpenSerDes link at its paper operating point —
// 2 Gbps PRBS-31 across a 34 dB channel — and print what the receiver saw.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "channel/channel.h"
#include "core/ber.h"
#include "core/link.h"

int main() {
  using namespace serdes;

  // 1. Configure the link exactly as the paper operates it.
  const core::LinkConfig cfg = core::LinkConfig::paper_default();

  // 2. A 34 dB-loss channel (the paper's headline operating condition).
  auto channel = std::make_unique<channel::FlatChannel>(util::decibels(34.0));

  core::SerDesLink link(cfg, std::move(channel));

  // 3. Inspect the receiver front end the way Fig 6 does.
  const auto& rfi = link.receiver().rfi();
  std::printf("receiver front end:\n");
  std::printf("  RFI self-bias        : %.3f V   (paper: 0.83 V)\n",
              rfi.self_bias());
  std::printf("  RFI small-signal gain: %.1f x\n", rfi.gain_at_bias());
  std::printf("  RFI bandwidth        : %s\n",
              util::to_string(rfi.bandwidth()).c_str());
  std::printf("  decision threshold   : %.3f V\n",
              link.receiver().decision_threshold());

  // 4. Send PRBS-31 payload and check it (Fig 8 conditions).
  const core::LinkResult r = link.run_prbs(4096);
  std::printf("\nlink run @ 2 Gbps, 34 dB loss, PRBS-31:\n");
  std::printf("  aligned              : %s\n", r.aligned ? "yes" : "NO");
  std::printf("  payload bits checked : %llu\n",
              static_cast<unsigned long long>(r.payload_bits_compared));
  std::printf("  bit errors           : %llu\n",
              static_cast<unsigned long long>(r.bit_errors));
  std::printf("  received swing       : %.1f mV\n",
              r.channel_out.peak_to_peak() * 1e3);
  std::printf("  CDR decision phase   : %d / %d\n", r.rx.cdr_decision_phase,
              cfg.cdr.oversampling);

  // 5. Quantify "zero BER" with a confidence bound.
  core::SerDesLink link2(cfg, std::make_unique<channel::FlatChannel>(
                                  util::decibels(34.0)));
  const auto ber = core::measure_ber(link2, 50000);
  std::printf("\nBER over %llu bits: %g (95%% upper bound %.2e)\n",
              static_cast<unsigned long long>(ber.bits), ber.ber,
              ber.ber_upper_bound);
  return (r.error_free() && ber.error_free()) ? 0 : 1;
}
