// Quickstart: bring up the OpenSerDes link at its paper operating point —
// 2 Gbps PRBS-31 across a 34 dB channel — through the declarative API.
//
// A scenario is a LinkSpec (plain data); api::Simulator turns specs into
// RunReports.  LinkBuilder authors specs fluently, starting from the paper
// defaults so you name only what you change.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "api/api.h"

int main() {
  using namespace serdes;

  // 1. Declare the scenario.  The defaults ARE the paper operating point;
  //    the builder calls below are spelled out for the tour.
  const api::LinkSpec spec = api::LinkBuilder()
                                 .name("paper_operating_point")
                                 .bit_rate(util::gigahertz(2.0))
                                 .flat_channel(util::decibels(34.0))
                                 .payload_bits(4096)
                                 .build_spec();

  // 2. Inspect the receiver front end the way Fig 6 does: build the link
  //    object itself when you want the circuit models, not just results.
  core::SerDesLink link = api::LinkBuilder(spec).build_link();
  const auto& rfi = link.receiver().rfi();
  std::printf("receiver front end:\n");
  std::printf("  RFI self-bias        : %.3f V   (paper: 0.83 V)\n",
              rfi.self_bias());
  std::printf("  RFI small-signal gain: %.1f x\n", rfi.gain_at_bias());
  std::printf("  RFI bandwidth        : %s\n",
              util::to_string(rfi.bandwidth()).c_str());
  std::printf("  decision threshold   : %.3f V\n",
              link.receiver().decision_threshold());

  // 3. Run it (Fig 8 conditions) and read the structured report.
  const api::Simulator sim;
  const api::RunReport r = sim.run(spec);
  std::printf("\nlink run @ 2 Gbps, 34 dB loss, PRBS-31:\n");
  std::printf("  aligned              : %s\n", r.aligned ? "yes" : "NO");
  std::printf("  payload bits checked : %llu\n",
              static_cast<unsigned long long>(r.bits));
  std::printf("  bit errors           : %llu\n",
              static_cast<unsigned long long>(r.errors));
  std::printf("  received swing       : %.1f mV\n", r.rx_swing_pp * 1e3);
  std::printf("  eye height / width   : %.2f V / %.2f UI\n",
              r.eye.eye_height, r.eye.eye_width_ui);
  std::printf("  CDR decision phase   : %d / %d\n", r.cdr_decision_phase,
              spec.cdr_oversampling);

  // 4. Quantify "zero BER" with a confidence bound: same spec, more bits.
  const auto ber = sim.run(api::LinkBuilder(spec)
                               .name("ber_bound")
                               .payload_bits(50000)
                               .build_spec());
  std::printf("\nBER over %llu bits: %g (95%% upper bound %.2e)\n",
              static_cast<unsigned long long>(ber.bits), ber.ber,
              ber.ber_upper_bound);
  return (r.error_free() && ber.error_free()) ? 0 : 1;
}
