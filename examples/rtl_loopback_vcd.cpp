// Cycle-accurate RTL loopback on the event-driven kernel with VCD tracing:
// the serializer FSM drives the deserializer FSM through a wire, and the
// waveforms land in a GTKWave-compatible dump — the "RTL testbench" view of
// the paper's digital blocks.
//
// Build & run:  ./build/examples/rtl_loopback_vcd && gtkwave loopback.vcd
#include <cstdio>

#include "digital/rtl_modules.h"
#include "sim/clock.h"
#include "sim/vcd.h"
#include "util/random.h"

int main() {
  using namespace serdes;

  sim::Kernel kernel;
  sim::Wire tx_clk(kernel);
  sim::Wire rx_clk(kernel);
  sim::Wire serial(kernel);

  digital::RtlSerializer serializer(kernel, tx_clk, serial);
  digital::RtlDeserializer deserializer(kernel, rx_clk, serial);

  // Three random frames.
  util::Rng rng(2026);
  std::vector<digital::ParallelFrame> frames(3);
  for (auto& f : frames) {
    for (auto& lane : f.lanes) {
      lane = static_cast<std::uint32_t>(rng.next_u64());
    }
    serializer.queue_frame(f);
  }

  // 2 GHz bit clocks; the receiver samples mid-eye (half-UI offset), the
  // job the oversampling CDR does in the analog link.
  sim::Clock::Config tx_cfg;
  tx_cfg.period = sim::sim_ps(500);
  sim::Clock tx_clock(kernel, tx_clk, tx_cfg);
  sim::Clock::Config rx_cfg;
  rx_cfg.period = sim::sim_ps(500);
  rx_cfg.phase_offset = sim::sim_ps(250);
  sim::Clock rx_clock(kernel, rx_clk, rx_cfg);

  sim::VcdWriter vcd(kernel, "loopback.vcd");
  vcd.trace(tx_clk, "tx_clk");
  vcd.trace(rx_clk, "rx_clk");
  vcd.trace(serial, "serial_data");
  vcd.begin();

  tx_clock.start();
  rx_clock.start();
  kernel.run_until(sim::sim_ns(3 * 128 + 20));
  vcd.finish();

  std::printf("simulated %s, %llu delta cycles\n",
              kernel.now().to_string().c_str(),
              static_cast<unsigned long long>(kernel.delta_cycles()));
  std::printf("bits sent %llu, frames received %zu\n",
              static_cast<unsigned long long>(serializer.bits_sent()),
              deserializer.frames().size());

  bool ok = deserializer.frames().size() >= frames.size();
  for (std::size_t i = 0; ok && i < frames.size(); ++i) {
    ok = deserializer.frames()[i] == frames[i];
    std::printf("frame %zu: %s\n", i, ok ? "match" : "MISMATCH");
  }
  std::printf("wrote loopback.vcd\n");
  return ok ? 0 : 1;
}
