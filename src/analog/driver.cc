#include "analog/driver.h"

#include <cmath>
#include <stdexcept>

namespace serdes::analog {

InverterChainDriver::InverterChainDriver(const DriverDesign& design)
    : design_(design) {
  if (design.stages < 1 || design.stages > 12) {
    throw std::invalid_argument("InverterChainDriver: 1..12 stages");
  }
  if (design.taper <= 1.0) {
    throw std::invalid_argument("InverterChainDriver: taper must be > 1");
  }
  double wn = design.wn_first_um;
  for (int i = 0; i < design.stages; ++i) {
    stages_.emplace_back(wn, wn * design.beta, design.vdd);
    wn *= design.taper;
  }
}

util::Second InverterChainDriver::total_delay() const {
  util::Second total{0.0};
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const util::Farad load = (i + 1 < stages_.size())
                                 ? stages_[i + 1].input_cap()
                                 : design_.load;
    total += stages_[i].propagation_delay(load);
  }
  return total;
}

util::Second InverterChainDriver::output_rise_time() const {
  const InverterCell& last = stages_.back();
  const double r = 0.5 * (last.drive_resistance_n().value() +
                          last.drive_resistance_p().value());
  const double c = design_.load.value() + last.output_cap().value();
  // 20-80% of an RC exponential: (ln(0.8/0.2)) * RC ≈ 1.386 RC.
  return util::seconds(1.386 * r * c);
}

util::Watt InverterChainDriver::dynamic_power(util::Hertz bit_rate,
                                              double activity) const {
  double energy_per_transition = 0.0;  // joules
  const double vdd = design_.vdd.value();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const util::Farad load = (i + 1 < stages_.size())
                                 ? stages_[i + 1].input_cap()
                                 : design_.load;
    const double c = load.value() + stages_[i].output_cap().value();
    energy_per_transition += c * vdd * vdd;
  }
  // First-stage input is charged by the serializer; include it for a total
  // driver figure.
  energy_per_transition += stages_.front().input_cap().value() * vdd * vdd;
  return util::watts(activity * energy_per_transition * bit_rate.value());
}

double InverterChainDriver::total_width_um() const {
  double w = 0.0;
  for (const auto& s : stages_) {
    w += s.nmos().width_um() + s.pmos().width_um();
  }
  return w;
}

Waveform InverterChainDriver::transient(const Waveform& input,
                                        util::Second dt) const {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  ckt.drive_dc(vdd, design_.vdd);
  ckt.drive(in, [&input](double t) {
    return input.value_at(util::seconds(t));
  });

  NodeId prev = in;
  NodeId out = in;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    out = ckt.add_node("stage" + std::to_string(i));
    const InverterCell& cell = stages_[i];
    ckt.add_mosfet(cell.nmos(), out, prev, Circuit::kGround);
    ckt.add_mosfet(cell.pmos(), out, prev, vdd);
    // Node self-load plus the next stage's gate (or the channel load).
    util::Farad cap = cell.output_cap();
    if (i + 1 < stages_.size()) {
      cap += stages_[i + 1].input_cap();
    } else {
      cap += design_.load;
    }
    ckt.add_capacitor(out, Circuit::kGround, cap);
    prev = out;
  }

  const auto result =
      solve_transient(ckt, input.end_time() - input.start_time(), dt);
  return result.node_waveform(out);
}

Waveform InverterChainDriver::drive(const std::vector<std::uint8_t>& bits,
                                    util::Hertz bit_rate,
                                    int samples_per_ui) const {
  const util::Second ui = util::period(bit_rate);
  // Behavioural output: NRZ with the chain's output edge rate; an odd number
  // of inverting stages inverts the data, which the link calibration undoes,
  // so we keep the polarity of the bit stream here.
  const util::Second edge = output_rise_time();
  Waveform w = Waveform::nrz(bits, ui, samples_per_ui, 0.0,
                             design_.vdd.value(), edge);
  w.delay(total_delay());
  return w;
}

}  // namespace serdes::analog
