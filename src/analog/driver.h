// Voltage-mode CMOS transmit driver (paper Section IV-A, Fig 4).
//
// A three-stage tapered inverter chain sized to drive the 2 pF channel
// termination rail-to-rail at 2 Gbps.  Voltage-mode inverter drivers burn
// less power than current-mode differential drivers — the reason the paper
// picks them — and are trivially synthesizable.
#pragma once

#include <vector>

#include "analog/inverter.h"
#include "analog/transient.h"
#include "analog/waveform.h"
#include "util/units.h"

namespace serdes::analog {

struct DriverDesign {
  int stages = 3;
  double taper = 4.0;        // width multiplication per stage
  double wn_first_um = 2.0;  // first-stage NMOS width
  double beta = 2.2;         // PMOS/NMOS width ratio per stage
  util::Volt vdd = util::volts(1.8);
  util::Farad load = util::picofarads(2.0);
};

class InverterChainDriver {
 public:
  explicit InverterChainDriver(const DriverDesign& design = DriverDesign{});

  /// Per-stage inverter cells (first to last).
  [[nodiscard]] const std::vector<InverterCell>& chain() const {
    return stages_;
  }

  /// Total propagation delay through the chain into the load.
  [[nodiscard]] util::Second total_delay() const;

  /// Output 20-80% rise time into the load (RC switch model).
  [[nodiscard]] util::Second output_rise_time() const;

  /// Average dynamic power at the given toggle rate (activity = probability
  /// of an output transition per bit; 0.5 for random NRZ data).
  [[nodiscard]] util::Watt dynamic_power(util::Hertz bit_rate,
                                         double activity = 0.5) const;

  /// Total device width (um) — proxy for layout area.
  [[nodiscard]] double total_width_um() const;

  /// Transistor-level transient of the full chain driving the load
  /// (regenerates Fig 4b).  `input` is the rail-referenced serial data.
  /// Returns the voltage waveform at the load.
  [[nodiscard]] Waveform transient(const Waveform& input,
                                   util::Second dt) const;

  /// Fast behavioural model for link simulation: maps the serial bit
  /// stream to the load voltage with the chain's delay and slew applied.
  [[nodiscard]] Waveform drive(const std::vector<std::uint8_t>& bits,
                               util::Hertz bit_rate,
                               int samples_per_ui) const;

  [[nodiscard]] const DriverDesign& design() const { return design_; }

 private:
  DriverDesign design_;
  std::vector<InverterCell> stages_;
};

}  // namespace serdes::analog
