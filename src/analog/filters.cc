#include "analog/filters.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/simd.h"

#if SERDES_X86_DISPATCH
#include <immintrin.h>
#endif

namespace serdes::analog {

Waveform& Filter::process(Waveform& w) {
  for (double& s : w.samples()) s = step(s);
  return w;
}

namespace {
/// Validates and, if necessary, pulls the cutoff just below Nyquist.  A pole
/// far above the simulation bandwidth is indistinguishable from "no pole",
/// so clamping (rather than throwing) lets one filter design serve every
/// bit rate the sweeps visit.
util::Hertz check_rates(util::Hertz cutoff, util::Second dt, const char* who) {
  if (cutoff.value() <= 0.0) {
    throw std::invalid_argument(std::string(who) + ": cutoff must be > 0");
  }
  if (dt.value() <= 0.0) {
    throw std::invalid_argument(std::string(who) +
                                ": sample period must be > 0");
  }
  const double nyquist = 0.5 / dt.value();
  if (cutoff.value() >= 0.98 * nyquist) {
    return util::hertz(0.98 * nyquist);
  }
  return cutoff;
}
}  // namespace

OnePoleLowPass::OnePoleLowPass(util::Hertz cutoff, util::Second sample_period)
    : cutoff_(check_rates(cutoff, sample_period, "OnePoleLowPass")) {
  // Bilinear: K = tan(pi*fc*T); y = (K(x+x1) + (1-K) y1) / (1+K)
  const double k =
      std::tan(std::numbers::pi * cutoff_.value() * sample_period.value());
  b_ = k / (1.0 + k);
  a_ = (1.0 - k) / (1.0 + k);
}

namespace {

#if SERDES_X86_DISPATCH
/// Eight-lane one-pole recurrence, two __m256d per sample index.  Multiply
/// and add only (no FMA): each lane sees exactly the add/mul/mul/add
/// sequence of the scalar recurrence, so the results are bit-identical to
/// the portable loop on every CPU.
__attribute__((target("avx2"))) void one_pole_lanes8_avx2(
    double b, double a, const double* in, double* out, std::size_t n,
    double* x1, double* y1) {
  const __m256d vb = _mm256_set1_pd(b);
  const __m256d va = _mm256_set1_pd(a);
  __m256d x1_lo = _mm256_loadu_pd(x1);
  __m256d x1_hi = _mm256_loadu_pd(x1 + 4);
  __m256d y1_lo = _mm256_loadu_pd(y1);
  __m256d y1_hi = _mm256_loadu_pd(y1 + 4);
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d x_lo = _mm256_loadu_pd(in + i * 8);
    const __m256d x_hi = _mm256_loadu_pd(in + i * 8 + 4);
    const __m256d y_lo =
        _mm256_add_pd(_mm256_mul_pd(vb, _mm256_add_pd(x_lo, x1_lo)),
                      _mm256_mul_pd(va, y1_lo));
    const __m256d y_hi =
        _mm256_add_pd(_mm256_mul_pd(vb, _mm256_add_pd(x_hi, x1_hi)),
                      _mm256_mul_pd(va, y1_hi));
    x1_lo = x_lo;
    x1_hi = x_hi;
    y1_lo = y_lo;
    y1_hi = y_hi;
    _mm256_storeu_pd(out + i * 8, y_lo);
    _mm256_storeu_pd(out + i * 8 + 4, y_hi);
  }
  _mm256_storeu_pd(x1, x1_lo);
  _mm256_storeu_pd(x1 + 4, x1_hi);
  _mm256_storeu_pd(y1, y1_lo);
  _mm256_storeu_pd(y1 + 4, y1_hi);
}
#endif

}  // namespace

void OnePoleLowPass::process_lanes(const double* in, double* out,
                                   std::size_t n, std::size_t lanes,
                                   double* x1, double* y1) const {
  const double b = b_;
  const double a = a_;
#if SERDES_X86_DISPATCH
  if (lanes == 8 && util::cpu_has_avx2()) {
    one_pole_lanes8_avx2(b, a, in, out, n, x1, y1);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = in + i * lanes;
    double* yi = out + i * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const double x = xi[l];
      const double y = b * (x + x1[l]) + a * y1[l];
      x1[l] = x;
      y1[l] = y;
      yi[l] = y;
    }
  }
}

OnePoleHighPass::OnePoleHighPass(util::Hertz cutoff,
                                 util::Second sample_period) {
  const util::Hertz fc = check_rates(cutoff, sample_period, "OnePoleHighPass");
  const double k =
      std::tan(std::numbers::pi * fc.value() * sample_period.value());
  b_ = 1.0 / (1.0 + k);
  a_ = (1.0 - k) / (1.0 + k);
}

BiquadLowPass::BiquadLowPass(util::Hertz cutoff, double q,
                             util::Second sample_period) {
  const util::Hertz fc = check_rates(cutoff, sample_period, "BiquadLowPass");
  if (q <= 0.0) throw std::invalid_argument("BiquadLowPass: Q must be > 0");
  const double w0 =
      2.0 * std::numbers::pi * fc.value() * sample_period.value();
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  b0_ = (1.0 - cw) / 2.0 / a0;
  b1_ = (1.0 - cw) / a0;
  b2_ = b0_;
  a1_ = -2.0 * cw / a0;
  a2_ = (1.0 - alpha) / a0;
}

void BiquadLowPass::process_lanes(const double* in, double* out,
                                  std::size_t n, std::size_t lanes,
                                  double* x1, double* x2, double* y1,
                                  double* y2) const {
  const double b0 = b0_;
  const double b1 = b1_;
  const double b2 = b2_;
  const double a1 = a1_;
  const double a2 = a2_;
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = in + i * lanes;
    double* yi = out + i * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const double x = xi[l];
      const double y =
          b0 * x + b1 * x1[l] + b2 * x2[l] - a1 * y1[l] - a2 * y2[l];
      x2[l] = x1[l];
      x1[l] = x;
      y2[l] = y1[l];
      y1[l] = y;
      yi[l] = y;
    }
  }
}

FirFilter::FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: no taps");
  history_.assign(taps_.size(), 0.0);
}

double FirFilter::step(double x) {
  history_[pos_] = x;
  double acc = 0.0;
  std::size_t idx = pos_;
  for (double tap : taps_) {
    acc += tap * history_[idx];
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % history_.size();
  return acc;
}

void FirFilter::reset() {
  history_.assign(taps_.size(), 0.0);
  pos_ = 0;
}

double measure_gain(Filter& filter, util::Hertz freq,
                    util::Second sample_period, int cycles) {
  filter.reset();
  const double w = 2.0 * std::numbers::pi * freq.value();
  const auto samples_per_cycle =
      static_cast<int>(1.0 / (freq.value() * sample_period.value()));
  if (samples_per_cycle < 4) return 0.0;
  const int n = samples_per_cycle * cycles;
  // Run to steady state, then correlate the last half against quadrature
  // references to extract the output amplitude.
  double i_acc = 0.0;
  double q_acc = 0.0;
  int counted = 0;
  for (int k = 0; k < n; ++k) {
    const double t = k * sample_period.value();
    const double y = filter.step(std::sin(w * t));
    if (k >= n / 2) {
      i_acc += y * std::sin(w * t);
      q_acc += y * std::cos(w * t);
      ++counted;
    }
  }
  const double i_avg = i_acc / counted;
  const double q_avg = q_acc / counted;
  return 2.0 * std::sqrt(i_avg * i_avg + q_avg * q_avg);
}

}  // namespace serdes::analog
