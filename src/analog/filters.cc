#include "analog/filters.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace serdes::analog {

Waveform& Filter::process(Waveform& w) {
  for (double& s : w.samples()) s = step(s);
  return w;
}

namespace {
/// Validates and, if necessary, pulls the cutoff just below Nyquist.  A pole
/// far above the simulation bandwidth is indistinguishable from "no pole",
/// so clamping (rather than throwing) lets one filter design serve every
/// bit rate the sweeps visit.
util::Hertz check_rates(util::Hertz cutoff, util::Second dt, const char* who) {
  if (cutoff.value() <= 0.0) {
    throw std::invalid_argument(std::string(who) + ": cutoff must be > 0");
  }
  if (dt.value() <= 0.0) {
    throw std::invalid_argument(std::string(who) +
                                ": sample period must be > 0");
  }
  const double nyquist = 0.5 / dt.value();
  if (cutoff.value() >= 0.98 * nyquist) {
    return util::hertz(0.98 * nyquist);
  }
  return cutoff;
}
}  // namespace

OnePoleLowPass::OnePoleLowPass(util::Hertz cutoff, util::Second sample_period)
    : cutoff_(check_rates(cutoff, sample_period, "OnePoleLowPass")) {
  // Bilinear: K = tan(pi*fc*T); y = (K(x+x1) + (1-K) y1) / (1+K)
  const double k =
      std::tan(std::numbers::pi * cutoff_.value() * sample_period.value());
  b_ = k / (1.0 + k);
  a_ = (1.0 - k) / (1.0 + k);
}

OnePoleHighPass::OnePoleHighPass(util::Hertz cutoff,
                                 util::Second sample_period) {
  const util::Hertz fc = check_rates(cutoff, sample_period, "OnePoleHighPass");
  const double k =
      std::tan(std::numbers::pi * fc.value() * sample_period.value());
  b_ = 1.0 / (1.0 + k);
  a_ = (1.0 - k) / (1.0 + k);
}

BiquadLowPass::BiquadLowPass(util::Hertz cutoff, double q,
                             util::Second sample_period) {
  const util::Hertz fc = check_rates(cutoff, sample_period, "BiquadLowPass");
  if (q <= 0.0) throw std::invalid_argument("BiquadLowPass: Q must be > 0");
  const double w0 =
      2.0 * std::numbers::pi * fc.value() * sample_period.value();
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  b0_ = (1.0 - cw) / 2.0 / a0;
  b1_ = (1.0 - cw) / a0;
  b2_ = b0_;
  a1_ = -2.0 * cw / a0;
  a2_ = (1.0 - alpha) / a0;
}

FirFilter::FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: no taps");
  history_.assign(taps_.size(), 0.0);
}

double FirFilter::step(double x) {
  history_[pos_] = x;
  double acc = 0.0;
  std::size_t idx = pos_;
  for (double tap : taps_) {
    acc += tap * history_[idx];
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % history_.size();
  return acc;
}

void FirFilter::reset() {
  history_.assign(taps_.size(), 0.0);
  pos_ = 0;
}

double measure_gain(Filter& filter, util::Hertz freq,
                    util::Second sample_period, int cycles) {
  filter.reset();
  const double w = 2.0 * std::numbers::pi * freq.value();
  const auto samples_per_cycle =
      static_cast<int>(1.0 / (freq.value() * sample_period.value()));
  if (samples_per_cycle < 4) return 0.0;
  const int n = samples_per_cycle * cycles;
  // Run to steady state, then correlate the last half against quadrature
  // references to extract the output amplitude.
  double i_acc = 0.0;
  double q_acc = 0.0;
  int counted = 0;
  for (int k = 0; k < n; ++k) {
    const double t = k * sample_period.value();
    const double y = filter.step(std::sin(w * t));
    if (k >= n / 2) {
      i_acc += y * std::sin(w * t);
      q_acc += y * std::cos(w * t);
      ++counted;
    }
  }
  const double i_avg = i_acc / counted;
  const double q_avg = q_acc / counted;
  return 2.0 * std::sqrt(i_avg * i_avg + q_avg * q_avg);
}

}  // namespace serdes::analog
