// Discrete-time filters used for channel and front-end modelling.
//
// All filters expose a per-sample `step`, a whole-Waveform `process`, and
// a span kernel `process_block(in, out, n)` that runs the same recurrence
// over a contiguous block with the coefficients and state held in locals —
// the form the streaming pipeline's hot loops use.  `step` bodies live in
// this header so stage loops that mix filters with other per-sample work
// still fold everything into one loop.  Block and per-sample forms are
// bit-identical by construction (same operations in the same order).
#pragma once

#include <vector>

#include "analog/waveform.h"
#include "util/units.h"

namespace serdes::analog {

/// Common interface so channels can compose arbitrary filter chains.
class Filter {
 public:
  virtual ~Filter() = default;
  /// Processes one input sample.
  virtual double step(double x) = 0;
  /// Resets internal state to zero.
  virtual void reset() = 0;

  /// Runs the filter across a waveform (in place), returning it.
  Waveform& process(Waveform& w);
};

/// One-pole low-pass: H(s) = 1 / (1 + s/wc), discretised by the bilinear
/// transform.  `configure` must be called (or the ctor used) before step.
class OnePoleLowPass : public Filter {
 public:
  OnePoleLowPass(util::Hertz cutoff, util::Second sample_period);

  double step(double x) override {
    const double y = b_ * (x + x1_) + a_ * y1_;
    x1_ = x;
    y1_ = y;
    return y;
  }

  /// Span kernel: the recurrence over a contiguous block, state carried.
  /// `in` and `out` may alias.
  void process_block(const double* in, double* out, std::size_t n) {
    const double b = b_;
    const double a = a_;
    double x1 = x1_;
    double y1 = y1_;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = in[i];
      const double y = b * (x + x1) + a * y1;
      x1 = x;
      y1 = y;
      out[i] = y;
    }
    x1_ = x1;
    y1_ = y1;
  }

  /// Lane-batched span kernel over an interleaved SoA tile — value (i, l)
  /// at in[i * lanes + l] — with caller-owned per-lane state arrays
  /// x1[lanes] / y1[lanes].  The recurrence runs independently per lane in
  /// the same operation order as process_block, so lane l of a tile is
  /// bit-identical to a scalar filter over lane l alone; the inner lane
  /// loop carries no dependence and vectorizes (explicit AVX2 for
  /// lanes == 8, non-FMA so the rounding matches the scalar loop).
  /// `in` and `out` may alias.
  void process_lanes(const double* in, double* out, std::size_t n,
                     std::size_t lanes, double* x1, double* y1) const;

  void reset() override { x1_ = y1_ = 0.0; }
  [[nodiscard]] util::Hertz cutoff() const { return cutoff_; }

 private:
  util::Hertz cutoff_;
  double a_ = 0.0;  // output feedback coefficient
  double b_ = 1.0;  // input coefficient
  double y1_ = 0.0;
  double x1_ = 0.0;
};

/// One-pole high-pass (AC-coupling): H(s) = s/(s + wc), bilinear.
class OnePoleHighPass : public Filter {
 public:
  OnePoleHighPass(util::Hertz cutoff, util::Second sample_period);

  double step(double x) override {
    const double y = b_ * (x - x1_) + a_ * y1_;
    x1_ = x;
    y1_ = y;
    return y;
  }

  void reset() override { x1_ = y1_ = 0.0; }

 private:
  double a_ = 0.0;
  double b_ = 1.0;
  double y1_ = 0.0;
  double x1_ = 0.0;
};

/// Second-order low-pass biquad (RBJ cookbook, bilinear).  No contiguous
/// span kernel: nothing on the streaming datapath runs a scalar biquad
/// (add one alongside a caller if that changes); the lane-batched SoA
/// kernel below serves multi-lane filter chains.
class BiquadLowPass : public Filter {
 public:
  BiquadLowPass(util::Hertz cutoff, double q, util::Second sample_period);

  double step(double x) override {
    const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
    x2_ = x1_;
    x1_ = x;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

  /// Lane-batched SoA kernel (see OnePoleLowPass::process_lanes): the
  /// biquad recurrence per lane with caller-owned state arrays
  /// x1/x2/y1/y2 of `lanes` entries each, bit-identical per lane to a
  /// scalar filter stepped over that lane.  `in`/`out` may alias.
  void process_lanes(const double* in, double* out, std::size_t n,
                     std::size_t lanes, double* x1, double* x2, double* y1,
                     double* y2) const;

  void reset() override { x1_ = x2_ = y1_ = y2_ = 0.0; }

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0, x2_ = 0, y1_ = 0, y2_ = 0;
};

/// Direct-form FIR (per-sample delay line).  Streaming channels use the
/// contiguous dsp::BlockFir kernel instead; this stays as the composable
/// per-sample form (equalizers, tests).
class FirFilter : public Filter {
 public:
  explicit FirFilter(std::vector<double> taps);
  double step(double x) override;
  void reset() override;
  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

 private:
  std::vector<double> taps_;
  std::vector<double> history_;
  std::size_t pos_ = 0;
};

/// Magnitude response |H(f)| of a filter measured empirically by running a
/// sinusoid through a fresh copy of the filter chain (useful for tests).
double measure_gain(Filter& filter, util::Hertz freq,
                    util::Second sample_period, int cycles = 60);

}  // namespace serdes::analog
