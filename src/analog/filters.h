// Discrete-time filters used for channel and front-end modelling.
//
// All filters expose a per-sample `step` and a whole-Waveform `process`.
// The link uses one-pole sections for RC behaviour, biquads for the lossy
// line's second-order roll-off, and FIR for tap-specified ISI channels.
#pragma once

#include <vector>

#include "analog/waveform.h"
#include "util/units.h"

namespace serdes::analog {

/// Common interface so channels can compose arbitrary filter chains.
class Filter {
 public:
  virtual ~Filter() = default;
  /// Processes one input sample.
  virtual double step(double x) = 0;
  /// Resets internal state to zero.
  virtual void reset() = 0;

  /// Runs the filter across a waveform (in place), returning it.
  Waveform& process(Waveform& w);
};

/// One-pole low-pass: H(s) = 1 / (1 + s/wc), discretised by the bilinear
/// transform.  `configure` must be called (or the ctor used) before step.
class OnePoleLowPass : public Filter {
 public:
  OnePoleLowPass(util::Hertz cutoff, util::Second sample_period);
  double step(double x) override;
  void reset() override;
  [[nodiscard]] util::Hertz cutoff() const { return cutoff_; }

 private:
  util::Hertz cutoff_;
  double a_ = 0.0;  // output feedback coefficient
  double b_ = 1.0;  // input coefficient
  double y1_ = 0.0;
  double x1_ = 0.0;
};

/// One-pole high-pass (AC-coupling): H(s) = s/(s + wc), bilinear.
class OnePoleHighPass : public Filter {
 public:
  OnePoleHighPass(util::Hertz cutoff, util::Second sample_period);
  double step(double x) override;
  void reset() override;

 private:
  double a_ = 0.0;
  double b_ = 1.0;
  double y1_ = 0.0;
  double x1_ = 0.0;
};

/// Second-order low-pass biquad (RBJ cookbook, bilinear).
class BiquadLowPass : public Filter {
 public:
  BiquadLowPass(util::Hertz cutoff, double q, util::Second sample_period);
  double step(double x) override;
  void reset() override;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0, x2_ = 0, y1_ = 0, y2_ = 0;
};

/// Direct-form FIR.
class FirFilter : public Filter {
 public:
  explicit FirFilter(std::vector<double> taps);
  double step(double x) override;
  void reset() override;
  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

 private:
  std::vector<double> taps_;
  std::vector<double> history_;
  std::size_t pos_ = 0;
};

/// Magnitude response |H(f)| of a filter measured empirically by running a
/// sinusoid through a fresh copy of the filter chain (useful for tests).
double measure_gain(Filter& filter, util::Hertz freq,
                    util::Second sample_period, int cycles = 60);

}  // namespace serdes::analog
