#include "analog/inverter.h"

#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace serdes::analog {

InverterCell::InverterCell(double wn_um, double wp_um, util::Volt vdd,
                           MosParams nmos, MosParams pmos)
    : nmos_(nmos, wn_um), pmos_(pmos, wp_um), vdd_(vdd) {
  if (vdd.value() <= 0.0) {
    throw std::invalid_argument("InverterCell: vdd must be > 0");
  }
  if (nmos.type != MosType::kNmos || pmos.type != MosType::kPmos) {
    throw std::invalid_argument("InverterCell: device types swapped");
  }
}

double InverterCell::vtc(double vin) const {
  const double vdd = vdd_.value();
  // KCL at the output: NMOS pull-down current equals PMOS pull-up current.
  // f(vout) = I_n(vin, vout) - I_pullup(vin, vout) is monotonically
  // increasing in vout, so bisection is safe.
  auto f = [&](double vout) {
    const double in = nmos_.drain_current(vin, vout);
    // PMOS source at VDD: vgs_p = vin - vdd, vds_p = vout - vdd; its drain
    // current (conventional, into drain) is negative when pulling up.
    const double ip = pmos_.drain_current(vin - vdd, vout - vdd);
    return in + ip;  // ip < 0 when sourcing current into the output node
  };
  const auto root = util::bisect(f, 0.0, vdd, 1e-12);
  return root.value_or(vdd / 2.0);
}

double InverterCell::switching_threshold() const {
  const double vdd = vdd_.value();
  auto f = [&](double v) { return vtc(v) - v; };
  // vtc(0) = vdd > 0, vtc(vdd) ~ 0 < vdd: a crossing always exists.
  const auto root = util::bisect(f, 1e-6, vdd - 1e-6, 1e-12);
  return root.value_or(vdd / 2.0);
}

double InverterCell::small_signal_gain(double vin_bias) const {
  constexpr double h = 1e-5;
  return (vtc(vin_bias + h) - vtc(vin_bias - h)) / (2.0 * h);
}

util::Ohm InverterCell::output_resistance(double vin_bias) const {
  const double vout = vtc(vin_bias);
  const double vdd = vdd_.value();
  const double gn = nmos_.gds(vin_bias, vout);
  const double gp = pmos_.gds(vin_bias - vdd, vout - vdd);
  const double g = std::fabs(gn) + std::fabs(gp);
  return util::ohms(g > 0.0 ? 1.0 / g : 1e12);
}

util::Ampere InverterCell::static_current(double vin) const {
  const double vout = vtc(vin);
  // At DC equilibrium, the NMOS current equals the PMOS current; either is
  // the supply-to-ground crowbar current.
  return util::amperes(std::fabs(nmos_.drain_current(vin, vout)));
}

util::Farad InverterCell::input_cap() const {
  return nmos_.gate_cap() + pmos_.gate_cap();
}

util::Farad InverterCell::output_cap() const {
  return nmos_.drain_cap() + pmos_.drain_cap();
}

util::Ohm InverterCell::drive_resistance_n() const {
  const double vdd = vdd_.value();
  const double id = nmos_.drain_current(vdd, vdd / 2.0);
  return util::ohms(vdd / 2.0 / id);
}

util::Ohm InverterCell::drive_resistance_p() const {
  const double vdd = vdd_.value();
  const double id = std::fabs(pmos_.drain_current(-vdd, -vdd / 2.0));
  return util::ohms(vdd / 2.0 / id);
}

util::Second InverterCell::propagation_delay(util::Farad load) const {
  const util::Farad c_total = load + output_cap();
  // ln(2)·R·C switch model, averaged over the N and P transitions.
  const double rn = drive_resistance_n().value();
  const double rp = drive_resistance_p().value();
  const double r_avg = 0.5 * (rn + rp);
  return util::seconds(0.6931 * r_avg * c_total.value());
}

util::Joule InverterCell::switching_energy(util::Farad load) const {
  const util::Farad c_total = load + output_cap() + input_cap();
  const double vdd = vdd_.value();
  return util::joules(c_total.value() * vdd * vdd);
}

}  // namespace serdes::analog
