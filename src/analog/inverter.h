// Static CMOS inverter cell.
//
// The entire OpenSerDes analog front end is built from inverters: the
// transmit driver is a tapered inverter chain, the receiver's sensing
// element is an inverter with resistive feedback, and the sampler's first
// stage is a plain inverter restoring rail-to-rail levels.  This class
// provides the DC analyses (VTC, switching threshold, small-signal gain)
// and the timing/energy quantities the link model needs.
#pragma once

#include "analog/mosfet.h"
#include "util/units.h"

namespace serdes::analog {

class InverterCell {
 public:
  /// Builds an inverter from NMOS/PMOS widths (um) at the given supply.
  InverterCell(double wn_um, double wp_um, util::Volt vdd,
               MosParams nmos = sky130_nfet(), MosParams pmos = sky130_pfet());

  /// DC transfer: output voltage for a static input voltage.
  [[nodiscard]] double vtc(double vin) const;

  /// Switching threshold Vm where vtc(Vm) = Vm.
  [[nodiscard]] double switching_threshold() const;

  /// Small-signal voltage gain dVout/dVin at the given input bias
  /// (negative; largest magnitude near the switching threshold).
  [[nodiscard]] double small_signal_gain(double vin_bias) const;

  /// Output resistance at the given bias (1 / (gds_n + gds_p)).
  [[nodiscard]] util::Ohm output_resistance(double vin_bias) const;

  /// Static (crowbar + leakage) supply current at a DC input.
  [[nodiscard]] util::Ampere static_current(double vin) const;

  /// Input gate capacitance.
  [[nodiscard]] util::Farad input_cap() const;
  /// Self-load at the output (junction caps).
  [[nodiscard]] util::Farad output_cap() const;

  /// Equivalent pull-down/pull-up drive resistance (for RC delay models):
  /// Vdd/2 divided by the saturation current at full gate drive.
  [[nodiscard]] util::Ohm drive_resistance_n() const;
  [[nodiscard]] util::Ohm drive_resistance_p() const;

  /// Propagation delay (50%-50%) driving `load`, averaged over rise/fall,
  /// using the RC switch model with the cell's self-load included.
  [[nodiscard]] util::Second propagation_delay(util::Farad load) const;

  /// Dynamic switching energy per output transition pair (C_total * Vdd^2).
  [[nodiscard]] util::Joule switching_energy(util::Farad load) const;

  [[nodiscard]] util::Volt vdd() const { return vdd_; }
  [[nodiscard]] const Mosfet& nmos() const { return nmos_; }
  [[nodiscard]] const Mosfet& pmos() const { return pmos_; }

 private:
  Mosfet nmos_;
  Mosfet pmos_;
  util::Volt vdd_;
};

}  // namespace serdes::analog
