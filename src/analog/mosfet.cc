#include "analog/mosfet.h"

#include <cmath>
#include <stdexcept>

namespace serdes::analog {

namespace {
constexpr double kThermalVoltage = 0.0258;  // kT/q at 300 K [V]
}

MosParams sky130_nfet() {
  MosParams p;
  p.type = MosType::kNmos;
  p.vth = 0.42;
  p.k = 4.0e-4;
  p.alpha = 1.30;
  p.lambda = 0.22;  // short-channel output conductance at minimum L
  p.subthreshold_i0 = 2e-9;
  p.subthreshold_n = 1.45;
  p.cgate_per_um = 1.3e-15;
  p.cdrain_per_um = 0.8e-15;
  return p;
}

MosParams sky130_pfet() {
  MosParams p;
  p.type = MosType::kPmos;
  p.vth = 0.44;
  p.k = 1.7e-4;  // hole mobility penalty
  p.alpha = 1.35;
  p.lambda = 0.26;  // short-channel output conductance at minimum L
  p.subthreshold_i0 = 1e-9;
  p.subthreshold_n = 1.50;
  p.cgate_per_um = 1.3e-15;
  p.cdrain_per_um = 0.9e-15;
  return p;
}

Mosfet::Mosfet(MosParams params, double width_um)
    : params_(params), width_um_(width_um) {
  if (width_um <= 0.0) throw std::invalid_argument("Mosfet: width must be > 0");
}

double Mosfet::forward_current(double vgs, double vds) const {
  // Symmetric device: if vds < 0 swap source and drain.
  if (vds < 0.0) return -forward_current(vgs - vds, -vds);

  const double vov = vgs - params_.vth;
  const double nvt = params_.subthreshold_n * kThermalVoltage;

  // Subthreshold: exponential in Vov with drain-voltage saturation term.
  // Clamped at Vov = 0 so the two regions join continuously.
  if (vov <= 0.0) {
    const double isub = params_.subthreshold_i0 * width_um_ *
                        std::exp(vov / nvt) *
                        (1.0 - std::exp(-vds / kThermalVoltage));
    return isub * (1.0 + params_.lambda * vds);
  }

  // Alpha-power law above threshold.  Vdsat shrinks with velocity
  // saturation; the linear region is the standard parabolic blend that
  // meets the saturation current with zero slope at Vds = Vdsat.
  const double idsat0 = params_.k * width_um_ * std::pow(vov, params_.alpha);
  const double vdsat = 0.9 * std::pow(vov, params_.alpha / 2.0);
  double core;
  if (vds >= vdsat) {
    core = idsat0;
  } else {
    const double x = vds / vdsat;
    core = idsat0 * x * (2.0 - x);
  }
  // Add the (continuous) subthreshold floor so current does not drop to the
  // exact analytic zero at Vov -> 0+ while the exponential is still finite.
  const double floor = params_.subthreshold_i0 * width_um_ *
                       (1.0 - std::exp(-vds / kThermalVoltage));
  return (core + floor) * (1.0 + params_.lambda * vds);
}

double Mosfet::drain_current(double vgs, double vds) const {
  if (params_.type == MosType::kNmos) {
    return forward_current(vgs, vds);
  }
  // PMOS: mirror to source-referenced positive quantities.
  return -forward_current(-vgs, -vds);
}

double Mosfet::gm(double vgs, double vds) const {
  constexpr double h = 1e-6;
  return (drain_current(vgs + h, vds) - drain_current(vgs - h, vds)) /
         (2.0 * h);
}

double Mosfet::gds(double vgs, double vds) const {
  constexpr double h = 1e-6;
  return (drain_current(vgs, vds + h) - drain_current(vgs, vds - h)) /
         (2.0 * h);
}

}  // namespace serdes::analog
