// Compact MOSFET model calibrated to the SkyWater 130 nm devices.
//
// The paper's circuits (driver, resistive-feedback inverter, pseudo-resistor)
// were simulated with extracted sky130 transistors.  We substitute an
// alpha-power-law model (Sakurai-Newton) with subthreshold conduction and
// channel-length modulation: simple enough for a fast Newton solver, rich
// enough to reproduce the DC operating points and drive strengths that set
// the paper's results (e.g. the 0.83 V RFI self-bias of Fig 6).
#pragma once

#include "util/units.h"

namespace serdes::analog {

enum class MosType { kNmos, kPmos };

/// Device-family parameters.  Widths are in micrometres; currents scale
/// linearly with width (L is fixed at the process minimum).
struct MosParams {
  MosType type = MosType::kNmos;
  double vth = 0.42;        // threshold voltage [V]
  double k = 4.0e-4;        // drive factor [A / (um * V^alpha)]
  double alpha = 1.30;      // velocity-saturation exponent
  double lambda = 0.06;     // channel-length modulation [1/V]
  double subthreshold_i0 = 2e-9;   // leakage scale at Vgs = Vth [A/um]
  double subthreshold_n = 1.45;    // subthreshold slope factor
  double cgate_per_um = 1.3e-15;   // gate capacitance [F/um]
  double cdrain_per_um = 0.8e-15;  // drain junction capacitance [F/um]
};

/// sky130-like NFET (nfet_01v8): Idsat ~ 0.6 mA/um at Vgs=Vds=1.8 V.
MosParams sky130_nfet();
/// sky130-like PFET (pfet_01v8): ~2.4x weaker than the NFET.
MosParams sky130_pfet();

/// A sized transistor instance.
class Mosfet {
 public:
  Mosfet(MosParams params, double width_um);

  /// Drain current for NMOS conventions: vgs, vds >= 0 in normal operation.
  /// For PMOS pass vgs = Vg-Vs, vds = Vd-Vs as seen at the terminals; the
  /// model mirrors internally.  Current returned is the conventional drain
  /// current (positive flowing into the drain for NMOS, out for PMOS).
  [[nodiscard]] double drain_current(double vgs, double vds) const;

  /// Transconductance dId/dVgs (numeric, used by the Newton solver).
  [[nodiscard]] double gm(double vgs, double vds) const;
  /// Output conductance dId/dVds.
  [[nodiscard]] double gds(double vgs, double vds) const;

  [[nodiscard]] double width_um() const { return width_um_; }
  [[nodiscard]] const MosParams& params() const { return params_; }

  [[nodiscard]] util::Farad gate_cap() const {
    return util::farads(params_.cgate_per_um * width_um_);
  }
  [[nodiscard]] util::Farad drain_cap() const {
    return util::farads(params_.cdrain_per_um * width_um_);
  }

 private:
  /// Positive-convention current with NMOS-style voltages.
  [[nodiscard]] double forward_current(double vgs, double vds) const;

  MosParams params_;
  double width_um_;
};

}  // namespace serdes::analog
