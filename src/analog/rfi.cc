#include "analog/rfi.h"

#include <cmath>
#include <numbers>

namespace serdes::analog {

RfiCircuit::RfiCircuit(const RfiDesign& design)
    : design_(design),
      inverter_(design.wn_um, design.wp_um, design.vdd),
      pseudo_res_(sky130_pfet(), design.pseudo_res_w_um) {}

double RfiCircuit::self_bias() const { return inverter_.switching_threshold(); }

double RfiCircuit::gain_at_bias() const {
  return std::fabs(inverter_.small_signal_gain(self_bias()));
}

util::Hertz RfiCircuit::bandwidth() const {
  const double rout = inverter_.output_resistance(self_bias()).value();
  const double cload =
      design_.load_cap.value() + inverter_.output_cap().value();
  return util::hertz(1.0 / (2.0 * std::numbers::pi * rout * cload));
}

util::Ohm RfiCircuit::pseudo_resistance() const {
  // Gate tied to source => Vgs = 0, subthreshold conduction only.
  // R = dV/dI evaluated at a small drain-source excursion.
  constexpr double dv = 0.02;
  const double i = std::fabs(pseudo_res_.drain_current(0.0, -dv));
  return util::ohms(i > 0.0 ? dv / i : 1e15);
}

util::Ampere RfiCircuit::static_current() const {
  return inverter_.static_current(self_bias());
}

double RfiCircuit::dc_transfer(double vin) const { return inverter_.vtc(vin); }

RfiCircuit::TransientWaves RfiCircuit::transient(const Waveform& input,
                                                 util::Second dt) const {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId vin_src = ckt.add_node("vin_src");
  const NodeId vin = ckt.add_node("vin_biased");
  const NodeId vout = ckt.add_node("vout");

  ckt.drive_dc(vdd, design_.vdd);
  ckt.drive(vin_src, [&input](double t) {
    return input.value_at(util::seconds(t));
  });

  // AC coupling capacitor from the channel to the biased input node.
  ckt.add_capacitor(vin_src, vin, design_.coupling_cap);
  // Pseudo-resistor feedback: modelled as its equivalent large resistance
  // (the subthreshold PMOS is linear over the millivolt excursions here).
  ckt.add_resistor(vout, vin, pseudo_resistance());
  // The sensing inverter.
  ckt.add_mosfet(inverter_.nmos(), vout, vin, Circuit::kGround);
  ckt.add_mosfet(inverter_.pmos(), vout, vin, vdd);
  // Input gate capacitance and output load.
  ckt.add_capacitor(vin, Circuit::kGround, inverter_.input_cap());
  ckt.add_capacitor(
      vout, Circuit::kGround,
      design_.load_cap + inverter_.output_cap());

  const auto result =
      solve_transient(ckt, input.end_time() - input.start_time(), dt);
  return TransientWaves{result.node_waveform(vin), result.node_waveform(vout)};
}

RfiStage::RfiStage(const RfiCircuit& circuit, util::Second sample_period)
    : bias_(circuit.self_bias()),
      gain_(circuit.gain_at_bias()),
      bandwidth_(circuit.bandwidth()),
      dt_(sample_period),
      vdd_(circuit.inverter().vdd().value()) {
  // AC-coupling corner: coupling cap against the Miller-reduced feedback
  // resistance. With an off-chip nF-scale cap this lands in the kHz range.
  const double r_in =
      circuit.pseudo_resistance().value() / (1.0 + gain_);
  hpf_corner_ = util::hertz(
      1.0 / (2.0 * std::numbers::pi * r_in * circuit.design().coupling_cap.value()));
}

Waveform RfiStage::process(const Waveform& in) const {
  Waveform out = in;
  // AC coupling, in its established steady state: the off-chip capacitor has
  // charged to the difference between the RFI self-bias and the signal's DC
  // level, so the biased input is the signal with its average removed.  (The
  // coupling corner is sub-Hz — see hpf_corner_ — so the settling transient
  // is far longer than any simulated window and is not modelled.)
  out.offset(-out.mean_value());
  // Linear gain with the dominant output pole, then rail saturation.
  OnePoleLowPass lpf(bandwidth_, dt_);
  lpf.process(out);
  out.map([this](double v) { return saturate(v); });
  return out;
}

}  // namespace serdes::analog
