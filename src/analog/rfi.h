// Resistive-feedback inverter (RFI) receiver front end.
//
// Paper Section IV-B: a self-biased CMOS inverter with a PMOS pseudo-
// resistor feeding its output back to its input.  The feedback biases the
// inverter at its switching threshold (~0.83 V measured in the paper's
// Fig 6), where the small-signal gain is maximal, letting the receiver
// sense inputs of a few tens of millivolts.  The received signal is
// AC-coupled through an off-chip capacitor so the self-bias is undisturbed.
//
// Two models are provided:
//  * RfiCircuit — transistor-level netlist for the nodal solver (used to
//    regenerate Fig 6 exactly as a transient simulation), and
//  * RfiStage — a calibrated behavioural model (bias + gain + pole +
//    saturation) fast enough for the millions of bits that the BER and
//    sensitivity sweeps of Figs 8/9 require.
#pragma once

#include <cmath>

#include "analog/inverter.h"
#include "analog/filters.h"
#include "analog/transient.h"
#include "analog/waveform.h"
#include "util/units.h"

namespace serdes::analog {

/// Geometry/values for the RFI front end.
struct RfiDesign {
  double wn_um = 4.0;            // inverter NMOS width
  double wp_um = 6.0;  // PMOS below mobility-balance ratio => bias < Vdd/2
  double pseudo_res_w_um = 0.42; // pseudo-resistor PMOS width
  util::Volt vdd = util::volts(1.8);
  util::Farad coupling_cap = util::picofarads(1000.0);  // off-chip AC coupling
  util::Farad load_cap = util::femtofarads(12.0);       // next-stage gate load
};

/// Transistor-level RFI model.
class RfiCircuit {
 public:
  explicit RfiCircuit(const RfiDesign& design = RfiDesign{});

  /// Self-bias voltage: the inverter's switching threshold (feedback forces
  /// Vin = Vout at DC since no current flows through the pseudo-resistor).
  [[nodiscard]] double self_bias() const;

  /// Small-signal gain magnitude at the bias point.
  [[nodiscard]] double gain_at_bias() const;

  /// Dominant output pole: 1 / (2π · Rout · Cload).
  [[nodiscard]] util::Hertz bandwidth() const;

  /// Effective pseudo-resistor value around zero bias across it.
  [[nodiscard]] util::Ohm pseudo_resistance() const;

  /// Static supply current at the bias point (the paper notes the RFI burns
  /// static power because both devices sit in saturation).
  [[nodiscard]] util::Ampere static_current() const;

  /// DC transfer curve of the bare inverter (Fig 6a).
  [[nodiscard]] double dc_transfer(double vin) const;

  /// Builds the full AC-coupled front-end netlist driven by `vin_of_time`
  /// (channel-referred small signal around 0 V) and runs a transient.
  /// Returned waveforms: index 0 = biased input node, 1 = RFI output node.
  struct TransientWaves {
    Waveform biased_input;
    Waveform output;
  };
  [[nodiscard]] TransientWaves transient(
      const Waveform& input, util::Second dt) const;

  [[nodiscard]] const InverterCell& inverter() const { return inverter_; }
  [[nodiscard]] const RfiDesign& design() const { return design_; }

 private:
  RfiDesign design_;
  InverterCell inverter_;
  Mosfet pseudo_res_;
};

/// Behavioural RFI + restoring-inverter receive chain for link simulation.
/// Calibrated from an RfiCircuit so the two models agree at DC and small
/// signal.
class RfiStage {
 public:
  explicit RfiStage(const RfiCircuit& circuit, util::Second sample_period);

  /// Processes the channel-referred waveform (small signal around 0 V) into
  /// the RFI output waveform (large signal around the bias).
  [[nodiscard]] Waveform process(const Waveform& in) const;

  /// The saturating VTC with the operating point passed in: inverting gain
  /// around the bias, clipped to the rails with a tanh knee like the real
  /// VTC.  The single definition of the formula — `saturate` wraps it and
  /// the streaming RFI stage calls it with the loads hoisted out of its
  /// block loop.
  [[nodiscard]] static double saturate_value(double v, double bias,
                                             double gain, double half) {
    const double linear = bias - gain * v;
    const double centered = linear - half;
    return half + half * std::tanh(centered / half);
  }

  /// The per-sample saturating map applied after the output pole.
  [[nodiscard]] double saturate(double v) const {
    return saturate_value(v, bias_, gain_, vdd_ / 2.0);
  }

  [[nodiscard]] double bias() const { return bias_; }
  [[nodiscard]] double gain() const { return gain_; }
  [[nodiscard]] util::Hertz bandwidth() const { return bandwidth_; }
  [[nodiscard]] double vdd() const { return vdd_; }

 private:
  double bias_;
  double gain_;
  util::Hertz bandwidth_;
  util::Hertz hpf_corner_;
  util::Second dt_;
  double vdd_;
};

}  // namespace serdes::analog
