#include "analog/sampler.h"

#include <cmath>

#include "util/math.h"

namespace serdes::analog {

RestoringInverter::RestoringInverter(double wn_um, double wp_um,
                                     util::Volt vdd,
                                     util::Second sample_period,
                                     util::Farad load)
    : cell_(wn_um, wp_um, vdd), dt_(sample_period), vdd_(vdd.value()) {
  threshold_ = cell_.switching_threshold();
  const double rout_drive = 0.5 * (cell_.drive_resistance_n().value() +
                                   cell_.drive_resistance_p().value());
  const double c = load.value() + cell_.output_cap().value();
  bandwidth_ =
      util::hertz(1.0 / (2.0 * 3.141592653589793 * rout_drive * c));
  // Sample the VTC once; per-sample bisection would dominate runtime.
  constexpr int kLutPoints = 512;
  vtc_lut_.reserve(kLutPoints + 1);
  for (int i = 0; i <= kLutPoints; ++i) {
    const double vin = vdd_ * static_cast<double>(i) / kLutPoints;
    vtc_lut_.push_back(cell_.vtc(vin));
  }
}

double RestoringInverter::restore_level(double v) const {
  const int last = static_cast<int>(vtc_lut_.size()) - 1;
  const double scale = static_cast<double>(last) / vdd_;
  const double x = util::clamp(v, 0.0, vdd_) * scale;
  const int lo = std::min(static_cast<int>(x), last - 1);
  const double frac = x - lo;
  return vtc_lut_[lo] + frac * (vtc_lut_[lo + 1] - vtc_lut_[lo]);
}

Waveform RestoringInverter::process(const Waveform& in) const {
  Waveform out = in;
  out.map([this](double v) { return restore_level(v); });
  OnePoleLowPass pole(bandwidth_, dt_);
  pole.process(out);
  return out;
}

DffSampler::DffSampler(const Config& config)
    : config_(config), rng_(config.seed) {}

bool DffSampler::sample(const Waveform& w, util::Second t) {
  const double v = w.value_at(t);
  const double v_before = w.value_at(t - config_.aperture * 0.5);
  const double v_after = w.value_at(t + config_.aperture * 0.5);
  return decide(v, v_before, v_after);
}

bool DffSampler::decide(double v, double v_before, double v_after) {
  const double noisy = v + rng_.gaussian(0.0, config_.input_noise_rms);
  // Metastability: if the input crosses the threshold inside the aperture
  // window around the sampling instant, the latch resolves randomly.
  const bool crossed = (v_before - config_.threshold) *
                           (v_after - config_.threshold) < 0.0;
  if (crossed && std::fabs(noisy - config_.threshold) <
                     2.0 * config_.input_noise_rms) {
    ++metastable_count_;
    return rng_.chance(0.5);
  }
  return noisy > config_.threshold;
}

}  // namespace serdes::analog
