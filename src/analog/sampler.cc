#include "analog/sampler.h"

#include <cmath>

#include "util/math.h"

namespace serdes::analog {

RestoringInverter::RestoringInverter(double wn_um, double wp_um,
                                     util::Volt vdd,
                                     util::Second sample_period,
                                     util::Farad load)
    : cell_(wn_um, wp_um, vdd), dt_(sample_period), vdd_(vdd.value()) {
  threshold_ = cell_.switching_threshold();
  const double rout_drive = 0.5 * (cell_.drive_resistance_n().value() +
                                   cell_.drive_resistance_p().value());
  const double c = load.value() + cell_.output_cap().value();
  bandwidth_ =
      util::hertz(1.0 / (2.0 * 3.141592653589793 * rout_drive * c));
  // Sample the VTC once; per-sample bisection would dominate runtime.
  constexpr int kLutPoints = 512;
  vtc_lut_.reserve(kLutPoints + 1);
  for (int i = 0; i <= kLutPoints; ++i) {
    const double vin = vdd_ * static_cast<double>(i) / kLutPoints;
    vtc_lut_.push_back(cell_.vtc(vin));
  }
}

Waveform RestoringInverter::process(const Waveform& in) const {
  Waveform out = in;
  out.map([this](double v) { return restore_level(v); });
  OnePoleLowPass pole(bandwidth_, dt_);
  pole.process(out);
  return out;
}

DffSampler::DffSampler(const Config& config)
    : config_(config), rng_(config.seed) {}

bool DffSampler::sample(const Waveform& w, util::Second t) {
  const double v = w.value_at(t);
  const double v_before = w.value_at(t - config_.aperture * 0.5);
  const double v_after = w.value_at(t + config_.aperture * 0.5);
  return decide(v, v_before, v_after);
}

}  // namespace serdes::analog
