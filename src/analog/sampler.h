// Sampling stage: static CMOS inverter + D flip-flop (paper Section IV-B-b).
//
// The RFI output is restored to rail-to-rail by a plain inverter, then a
// flip-flop samples it on the recovered clock.  The inverter's limited gain
// (versus a regenerative StrongARM latch) is what caps the receiver
// sensitivity at ~32 mV — the paper's key trade-off for synthesizability.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "analog/inverter.h"
#include "analog/filters.h"
#include "analog/waveform.h"
#include "util/math.h"
#include "util/random.h"
#include "util/units.h"

namespace serdes::analog {

/// Rail-restoring static inverter between the RFI and the flip-flop.
class RestoringInverter {
 public:
  RestoringInverter(double wn_um, double wp_um, util::Volt vdd,
                    util::Second sample_period,
                    util::Farad load = util::femtofarads(8.0));

  /// Applies the VTC (precomputed lookup) and the output pole.
  [[nodiscard]] Waveform process(const Waveform& in) const;

  /// One point of the VTC lookup (the per-sample map `process` applies
  /// before its output pole) — the streaming restoring stage uses this so
  /// block-wise restoration is bit-identical to `process`.  Inline so the
  /// restoring block loop folds the lookup into its traversal.
  [[nodiscard]] double restore_level(double v) const {
    const int last = static_cast<int>(vtc_lut_.size()) - 1;
    const double scale = static_cast<double>(last) / vdd_;
    const double x = util::clamp(v, 0.0, vdd_) * scale;
    const int lo = x < static_cast<double>(last - 1)
                       ? static_cast<int>(x)
                       : last - 1;
    const double frac = x - lo;
    return vtc_lut_[lo] + frac * (vtc_lut_[lo + 1] - vtc_lut_[lo]);
  }

  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] util::Hertz bandwidth() const { return bandwidth_; }
  [[nodiscard]] const InverterCell& cell() const { return cell_; }

 private:
  InverterCell cell_;
  util::Second dt_;
  util::Hertz bandwidth_;
  double threshold_;
  std::vector<double> vtc_lut_;  // sampled VTC, 0..vdd
  double vdd_;
};

/// Behavioural D flip-flop sampling an analog waveform.
class DffSampler {
 public:
  struct Config {
    double threshold = 0.9;                    // decision level [V]
    util::Second aperture = util::picoseconds(15.0);  // setup+hold window
    double input_noise_rms = 0.003;            // referred noise [V]
    std::uint64_t seed = 7;
  };

  explicit DffSampler(const Config& config);

  /// Samples `w` at time `t`.  If the input is inside the noise/aperture
  /// ambiguity band the result is random (metastable resolution).
  bool sample(const Waveform& w, util::Second t);

  /// The decision itself, given the waveform values at the sampling
  /// instant and at the aperture edges (t -/+ aperture/2).  `sample` is
  /// this applied to `Waveform::value_at`; the streaming receiver sink
  /// feeds it values interpolated from its rolling block window.  Inline:
  /// the sink evaluates it once per sampling instant.
  bool decide(double v, double v_before, double v_after) {
    const double noisy = v + rng_.gaussian(0.0, config_.input_noise_rms);
    // Metastability: if the input crosses the threshold inside the aperture
    // window around the sampling instant, the latch resolves randomly.
    const bool crossed = (v_before - config_.threshold) *
                             (v_after - config_.threshold) < 0.0;
    if (crossed && std::fabs(noisy - config_.threshold) <
                       2.0 * config_.input_noise_rms) {
      ++metastable_count_;
      return rng_.chance(0.5);
    }
    return noisy > config_.threshold;
  }

  /// Number of metastable (randomly resolved) samples so far.
  [[nodiscard]] std::uint64_t metastable_count() const {
    return metastable_count_;
  }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  util::Rng rng_;
  std::uint64_t metastable_count_ = 0;
};

}  // namespace serdes::analog
