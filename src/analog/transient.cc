#include "analog/transient.h"

#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace serdes::analog {

Circuit::Circuit() {
  node_names_.push_back("gnd");
  driven_.push_back(true);  // ground is a driven (0 V) node
}

NodeId Circuit::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  driven_.push_back(false);
  return static_cast<NodeId>(node_names_.size() - 1);
}

void Circuit::drive(NodeId node, std::function<double(double)> v) {
  driven_[static_cast<std::size_t>(node)] = true;
  sources_.push_back({node, std::move(v)});
}

void Circuit::drive_dc(NodeId node, util::Volt v) {
  drive(node, [value = v.value()](double) { return value; });
}

void Circuit::add_resistor(NodeId a, NodeId b, util::Ohm r) {
  if (r.value() <= 0.0) {
    throw std::invalid_argument("Circuit: resistance must be > 0");
  }
  resistors_.push_back({a, b, 1.0 / r.value()});
}

void Circuit::add_capacitor(NodeId a, NodeId b, util::Farad c) {
  if (c.value() <= 0.0) {
    throw std::invalid_argument("Circuit: capacitance must be > 0");
  }
  capacitors_.push_back({a, b, c.value()});
}

void Circuit::add_mosfet(const Mosfet& m, NodeId drain, NodeId gate,
                         NodeId source) {
  devices_.push_back({m, drain, gate, source});
}

namespace {

/// Shared Newton engine.  Solves sum-of-currents = 0 at every free node.
/// When `cap_conductance` > 0, capacitors contribute backward-Euler
/// companion stamps against `v_prev` (transient step); when 0 they are
/// open (DC analysis).
class NewtonSolver {
 public:
  explicit NewtonSolver(const Circuit& ckt) : ckt_(ckt) {
    const int n = ckt.node_count();
    free_index_.assign(n, -1);
    for (NodeId i = 0; i < n; ++i) {
      if (!ckt.is_driven(i)) {
        free_index_[i] = n_free_++;
        free_nodes_.push_back(i);
      }
    }
  }

  /// v: full node-voltage vector (driven entries already set by caller).
  /// Returns true on convergence; updates free entries of v in place.
  bool solve(std::vector<double>& v, double time_step,
             const std::vector<double>& v_prev) {
    if (n_free_ == 0) return true;
    constexpr int kMaxIter = 200;
    constexpr double kTolCurrent = 1e-12;
    constexpr double kMaxStep = 0.25;  // volts per Newton iteration
    for (int iter = 0; iter < kMaxIter; ++iter) {
      std::vector<double> jac(static_cast<std::size_t>(n_free_) * n_free_,
                              0.0);
      std::vector<double> residual(n_free_, 0.0);
      stamp(v, time_step, v_prev, jac, residual);

      double max_res = 0.0;
      for (double r : residual) max_res = std::max(max_res, std::fabs(r));
      if (max_res < kTolCurrent) return true;

      // Newton: J * dv = -F
      for (double& r : residual) r = -r;
      auto dv = util::solve_linear(std::move(jac), std::move(residual),
                                   n_free_);
      if (!dv) return false;
      double max_dv = 0.0;
      for (int i = 0; i < n_free_; ++i) {
        double step = (*dv)[i];
        step = util::clamp(step, -kMaxStep, kMaxStep);
        v[static_cast<std::size_t>(free_nodes_[i])] += step;
        max_dv = std::max(max_dv, std::fabs(step));
      }
      if (max_dv < 1e-12) return true;
    }
    return false;
  }

 private:
  void stamp(const std::vector<double>& v, double h,
             const std::vector<double>& v_prev, std::vector<double>& jac,
             std::vector<double>& residual) {
    auto J = [&](int r, int c) -> double& {
      return jac[static_cast<std::size_t>(r) * n_free_ + c];
    };
    // Adds current `i` leaving node `n`, with derivative row entries.
    auto add_current = [&](NodeId n, double i) {
      const int fi = free_index_[n];
      if (fi >= 0) residual[fi] += i;
    };
    auto add_deriv = [&](NodeId n, NodeId wrt, double didv) {
      const int fi = free_index_[n];
      const int fj = free_index_[wrt];
      if (fi >= 0 && fj >= 0) J(fi, fj) += didv;
    };

    for (const auto& r : ckt_.resistors()) {
      const double i = r.conductance * (v[r.a] - v[r.b]);
      add_current(r.a, i);
      add_current(r.b, -i);
      add_deriv(r.a, r.a, r.conductance);
      add_deriv(r.a, r.b, -r.conductance);
      add_deriv(r.b, r.b, r.conductance);
      add_deriv(r.b, r.a, -r.conductance);
    }

    if (h > 0.0) {
      for (const auto& c : ckt_.capacitors()) {
        // Backward Euler companion: i = C/h * (v - v_prev) across the branch.
        const double g = c.capacitance / h;
        const double i = g * ((v[c.a] - v[c.b]) - (v_prev[c.a] - v_prev[c.b]));
        add_current(c.a, i);
        add_current(c.b, -i);
        add_deriv(c.a, c.a, g);
        add_deriv(c.a, c.b, -g);
        add_deriv(c.b, c.b, g);
        add_deriv(c.b, c.a, -g);
      }
    }

    for (const auto& d : ckt_.devices()) {
      const double vgs = v[d.g] - v[d.s];
      const double vds = v[d.d] - v[d.s];
      const double id = d.mosfet.drain_current(vgs, vds);
      const double gm = d.mosfet.gm(vgs, vds);
      const double gds = d.mosfet.gds(vgs, vds);
      // Conventional current id flows drain -> source inside the device,
      // i.e. it *leaves* node d and *enters* node s.
      add_current(d.d, id);
      add_current(d.s, -id);
      add_deriv(d.d, d.d, gds);
      add_deriv(d.d, d.g, gm);
      add_deriv(d.d, d.s, -(gm + gds));
      add_deriv(d.s, d.d, -gds);
      add_deriv(d.s, d.g, -gm);
      add_deriv(d.s, d.s, gm + gds);
    }
  }

  const Circuit& ckt_;
  std::vector<int> free_index_;
  std::vector<NodeId> free_nodes_;
  int n_free_ = 0;
};

std::vector<double> driven_voltages(const Circuit& ckt, double t) {
  std::vector<double> v(static_cast<std::size_t>(ckt.node_count()), 0.0);
  for (const auto& s : ckt.sources()) {
    v[static_cast<std::size_t>(s.node)] = s.v(t);
  }
  return v;
}

}  // namespace

std::vector<double> solve_dc(const Circuit& circuit,
                             const std::vector<double>* initial_guess) {
  std::vector<double> v = driven_voltages(circuit, 0.0);
  if (initial_guess) {
    if (initial_guess->size() != v.size()) {
      throw std::invalid_argument("solve_dc: bad initial guess size");
    }
    for (NodeId n = 0; n < circuit.node_count(); ++n) {
      if (!circuit.is_driven(n)) v[n] = (*initial_guess)[n];
    }
  } else {
    // Mid-rail start is a good basin for CMOS circuits.
    double vdd = 0.0;
    for (const auto& s : circuit.sources()) vdd = std::max(vdd, s.v(0.0));
    for (NodeId n = 0; n < circuit.node_count(); ++n) {
      if (!circuit.is_driven(n)) v[n] = 0.5 * vdd;
    }
  }
  NewtonSolver solver(circuit);
  const std::vector<double> unused(v.size(), 0.0);
  if (!solver.solve(v, 0.0, unused)) {
    throw std::runtime_error("solve_dc: Newton failed to converge");
  }
  return v;
}

Waveform TransientResult::node_waveform(NodeId n) const {
  return Waveform{util::seconds(0.0), dt,
                  voltages[static_cast<std::size_t>(n)]};
}

TransientResult solve_transient(const Circuit& circuit, util::Second duration,
                                util::Second dt) {
  if (dt.value() <= 0.0 || duration.value() <= 0.0) {
    throw std::invalid_argument("solve_transient: bad duration/step");
  }
  const auto steps = static_cast<std::size_t>(duration.value() / dt.value());
  TransientResult result;
  result.dt = dt;
  result.voltages.assign(static_cast<std::size_t>(circuit.node_count()), {});
  for (auto& w : result.voltages) w.reserve(steps + 1);

  std::vector<double> v = solve_dc(circuit);
  NewtonSolver solver(circuit);
  for (NodeId n = 0; n < circuit.node_count(); ++n) {
    result.voltages[static_cast<std::size_t>(n)].push_back(
        v[static_cast<std::size_t>(n)]);
  }

  std::vector<double> v_prev = v;
  for (std::size_t k = 1; k <= steps; ++k) {
    const double t = static_cast<double>(k) * dt.value();
    // Update driven nodes to their source values at this timestamp.
    for (const auto& s : circuit.sources()) {
      v[static_cast<std::size_t>(s.node)] = s.v(t);
    }
    if (!solver.solve(v, dt.value(), v_prev)) {
      throw std::runtime_error("solve_transient: Newton failed at t=" +
                               std::to_string(t));
    }
    for (NodeId n = 0; n < circuit.node_count(); ++n) {
      result.voltages[static_cast<std::size_t>(n)].push_back(
          v[static_cast<std::size_t>(n)]);
    }
    v_prev = v;
  }
  return result;
}

}  // namespace serdes::analog
