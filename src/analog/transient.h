// Nonlinear nodal transient solver for small transistor circuits.
//
// This is the repo's substitute for the paper's parasitic-extracted Cadence
// transient simulations: a classic SPICE-style engine — nodal analysis,
// Newton-Raphson linearisation of the MOSFETs, backward-Euler companion
// models for capacitors — specialised for the handful-of-nodes circuits the
// paper contains (driver chain, resistive-feedback inverter, pseudo-resistor
// bias network).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analog/mosfet.h"
#include "analog/waveform.h"
#include "util/units.h"

namespace serdes::analog {

using NodeId = int;

/// Circuit netlist: nodes plus R/C/MOSFET/source elements.
/// Node 0 is always ground.
class Circuit {
 public:
  static constexpr NodeId kGround = 0;

  Circuit();

  /// Adds a named node and returns its id.
  NodeId add_node(std::string name);

  /// Declares `node` to be driven by an ideal voltage source v(t).
  /// Driven nodes are eliminated from the unknown vector.
  void drive(NodeId node, std::function<double(double)> voltage_of_time);

  /// Convenience: DC supply.
  void drive_dc(NodeId node, util::Volt v);

  void add_resistor(NodeId a, NodeId b, util::Ohm r);
  void add_capacitor(NodeId a, NodeId b, util::Farad c);
  /// MOSFET with drain/gate/source terminals (bulk tied to the rail
  /// implicitly via the device model).
  void add_mosfet(const Mosfet& m, NodeId drain, NodeId gate, NodeId source);

  [[nodiscard]] int node_count() const {
    return static_cast<int>(node_names_.size());
  }
  [[nodiscard]] const std::string& node_name(NodeId n) const {
    return node_names_[static_cast<std::size_t>(n)];
  }

  struct Resistor {
    NodeId a, b;
    double conductance;
  };
  struct Capacitor {
    NodeId a, b;
    double capacitance;
  };
  struct Device {
    Mosfet mosfet;
    NodeId d, g, s;
  };
  struct Source {
    NodeId node;
    std::function<double(double)> v;
  };

  [[nodiscard]] const std::vector<Resistor>& resistors() const {
    return resistors_;
  }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const {
    return capacitors_;
  }
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<Source>& sources() const { return sources_; }
  [[nodiscard]] bool is_driven(NodeId n) const {
    return driven_[static_cast<std::size_t>(n)];
  }

 private:
  std::vector<std::string> node_names_;
  std::vector<bool> driven_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Device> devices_;
  std::vector<Source> sources_;
};

/// DC operating point: solves F(v) = 0 with sources at their t=0 values.
/// Returns node voltages indexed by NodeId. Throws std::runtime_error if
/// Newton fails to converge.
std::vector<double> solve_dc(const Circuit& circuit,
                             const std::vector<double>* initial_guess = nullptr);

/// Transient analysis results: one Waveform per node.
struct TransientResult {
  util::Second dt{1e-12};
  /// waveforms[node][k] = voltage of `node` at t = k*dt.
  std::vector<std::vector<double>> voltages;

  [[nodiscard]] Waveform node_waveform(NodeId n) const;
};

/// Backward-Euler transient run from the DC operating point.
/// `duration` / `dt` steps; throws on Newton non-convergence.
TransientResult solve_transient(const Circuit& circuit, util::Second duration,
                                util::Second dt);

}  // namespace serdes::analog
