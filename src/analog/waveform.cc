#include "analog/waveform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace serdes::analog {

Waveform::Waveform(util::Second t0, util::Second dt,
                   std::vector<double> samples)
    : t0_(t0), dt_(dt), samples_(std::move(samples)) {
  if (dt.value() <= 0.0) {
    throw std::invalid_argument("Waveform: sample period must be > 0");
  }
}

Waveform Waveform::constant(util::Second t0, util::Second dt, std::size_t n,
                            double level) {
  return Waveform{t0, dt, std::vector<double>(n, level)};
}

Waveform Waveform::nrz(const std::vector<std::uint8_t>& bits,
                       util::Second unit_interval, int samples_per_ui,
                       double low, double high, util::Second rise_time) {
  if (samples_per_ui < 2) {
    throw std::invalid_argument("Waveform::nrz: need >= 2 samples per UI");
  }
  const util::Second dt = unit_interval / static_cast<double>(samples_per_ui);
  const std::size_t n = bits.size() * static_cast<std::size_t>(samples_per_ui);
  std::vector<double> samples(n, low);

  auto level_of = [&](std::size_t bit_index) -> double {
    return bits[bit_index] ? high : low;
  };

  const double tr = rise_time.value();
  const double ui = unit_interval.value();
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * dt.value();
    const auto bit = static_cast<std::size_t>(t / ui);
    if (bit >= bits.size()) break;
    const double lvl = level_of(bit);
    double v = lvl;
    if (tr > 0.0) {
      // Blend across the transition centred at the bit boundary.
      const double t_in_bit = t - static_cast<double>(bit) * ui;
      if (bit > 0 && t_in_bit < tr / 2.0) {
        const double prev = level_of(bit - 1);
        const double x = (t_in_bit + tr / 2.0) / tr;  // 0..1 across the edge
        v = prev + (lvl - prev) * x;
      } else if (bit + 1 < bits.size() && t_in_bit > ui - tr / 2.0) {
        const double next = level_of(bit + 1);
        const double x = (t_in_bit - (ui - tr / 2.0)) / tr;
        v = lvl + (next - lvl) * x;
      }
    }
    samples[i] = v;
  }
  return Waveform{util::seconds(0.0), dt, std::move(samples)};
}

double Waveform::value_at(util::Second t) const {
  if (samples_.empty()) return 0.0;
  const double idx = (t - t0_) / dt_;
  if (idx <= 0.0) return samples_.front();
  const auto lo = static_cast<std::size_t>(idx);
  if (lo + 1 >= samples_.size()) return samples_.back();
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

Waveform& Waveform::scale(double gain) {
  for (double& s : samples_) s *= gain;
  return *this;
}

Waveform& Waveform::offset(double delta) {
  for (double& s : samples_) s += delta;
  return *this;
}

Waveform& Waveform::clamp(double lo, double hi) {
  for (double& s : samples_) s = util::clamp(s, lo, hi);
  return *this;
}

Waveform& Waveform::map(const std::function<double(double)>& f) {
  for (double& s : samples_) s = f(s);
  return *this;
}

Waveform& Waveform::add_noise(util::Rng& rng, double sigma) {
  if (sigma > 0.0) {
    for (double& s : samples_) s += rng.gaussian(0.0, sigma);
  }
  return *this;
}

Waveform& Waveform::delay(util::Second delta) {
  t0_ += delta;
  return *this;
}

double Waveform::min_value() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Waveform::max_value() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Waveform::peak_to_peak() const { return max_value() - min_value(); }

double Waveform::mean_value() const { return util::mean(samples_); }

double Waveform::ac_rms() const {
  if (samples_.empty()) return 0.0;
  const double m = mean_value();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

std::vector<util::Second> Waveform::crossings(double threshold) const {
  std::vector<util::Second> out;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double a = samples_[i - 1] - threshold;
    const double b = samples_[i] - threshold;
    if (a == 0.0) continue;
    if ((a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0)) {
      const double frac = a / (a - b);
      out.push_back(time_at(i - 1) + dt_ * frac);
    }
  }
  return out;
}

util::Second Waveform::rise_time_20_80(util::Second after) const {
  const double lo = min_value();
  const double hi = max_value();
  const double v20 = lo + 0.2 * (hi - lo);
  const double v80 = lo + 0.8 * (hi - lo);
  // Find first upward crossing of v20 after `after`, then the next v80
  // crossing following it.
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (time_at(i) < after) continue;
    if (samples_[i - 1] < v20 && samples_[i] >= v20) {
      const double fa =
          (v20 - samples_[i - 1]) / (samples_[i] - samples_[i - 1]);
      const util::Second t20 = time_at(i - 1) + dt_ * fa;
      for (std::size_t j = i; j < samples_.size(); ++j) {
        if (samples_[j - 1] < v80 && samples_[j] >= v80) {
          const double fb =
              (v80 - samples_[j - 1]) / (samples_[j] - samples_[j - 1]);
          const util::Second t80 = time_at(j - 1) + dt_ * fb;
          return t80 - t20;
        }
        // Abort if the edge collapsed back below 20%.
        if (samples_[j] < v20) break;
      }
    }
  }
  return util::seconds(0.0);
}

}  // namespace serdes::analog
