// Uniformly sampled analog waveforms.
//
// The link simulation represents every analog node (driver output, channel
// output, RFI output, ...) as a Waveform: a start time, a fixed sample
// period, and a sample vector.  All channel/equalization/measurement
// operations are defined over this type.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/random.h"
#include "util/units.h"

namespace serdes::analog {

class Waveform {
 public:
  Waveform() = default;
  Waveform(util::Second t0, util::Second dt, std::vector<double> samples);

  /// Flat waveform of `n` samples at `level`.
  static Waveform constant(util::Second t0, util::Second dt, std::size_t n,
                           double level);

  /// NRZ pulse train: bit i occupies [i*ui, (i+1)*ui) with linear-ramp edges
  /// of duration `rise_time` centred on the transitions.  Levels are
  /// `low`/`high`; `samples_per_ui` sets the sampling density.
  static Waveform nrz(const std::vector<std::uint8_t>& bits,
                      util::Second unit_interval, int samples_per_ui,
                      double low, double high, util::Second rise_time);

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] util::Second start_time() const { return t0_; }
  [[nodiscard]] util::Second sample_period() const { return dt_; }
  [[nodiscard]] util::Second end_time() const {
    return t0_ + dt_ * static_cast<double>(samples_.size());
  }
  [[nodiscard]] util::Second time_at(std::size_t i) const {
    return t0_ + dt_ * static_cast<double>(i);
  }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] std::vector<double>& samples() { return samples_; }
  [[nodiscard]] double operator[](std::size_t i) const { return samples_[i]; }
  double& operator[](std::size_t i) { return samples_[i]; }

  /// Linear-interpolated value at time t (end values held outside range).
  [[nodiscard]] double value_at(util::Second t) const;

  // ---- In-place transformations ----
  Waveform& scale(double gain);
  Waveform& offset(double delta);
  Waveform& clamp(double lo, double hi);
  /// Applies f to every sample.
  Waveform& map(const std::function<double(double)>& f);
  /// Adds gaussian noise of the given RMS value.
  Waveform& add_noise(util::Rng& rng, double sigma);
  /// Shifts the waveform in time (pure relabeling of t0).
  Waveform& delay(util::Second delta);

  // ---- Measurements ----
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double peak_to_peak() const;
  [[nodiscard]] double mean_value() const;
  /// RMS of (sample - mean).
  [[nodiscard]] double ac_rms() const;

  /// Times of threshold crossings (rising and falling), linearly
  /// interpolated between samples.
  [[nodiscard]] std::vector<util::Second> crossings(double threshold) const;

  /// 20-80% rise time of the first rising edge after `after`; returns 0 if
  /// no such edge exists.
  [[nodiscard]] util::Second rise_time_20_80(util::Second after) const;

 private:
  util::Second t0_{0.0};
  util::Second dt_{1e-12};
  std::vector<double> samples_;
};

}  // namespace serdes::analog
