// Umbrella header for the declarative link API — the one include benches,
// examples and downstream users need:
//
//   #include "api/api.h"
//
//   const auto report = serdes::api::Simulator().run(
//       serdes::api::LinkBuilder().flat_channel(util::decibels(34.0))
//                                 .payload_bits(100000)
//                                 .build_spec());
#pragma once

#include "api/channel_factory.h"  // IWYU pragma: export
#include "api/link_builder.h"     // IWYU pragma: export
#include "api/link_spec.h"        // IWYU pragma: export
#include "api/simulator.h"        // IWYU pragma: export
