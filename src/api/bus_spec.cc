#include "api/bus_spec.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/spec_json.h"
#include "util/strings.h"

namespace serdes::api {

using util::Json;

bool BusSpec::has_coupling() const {
  const auto any_nonzero = [this](const std::vector<std::vector<double>>& m) {
    for (std::size_t v = 0; v < m.size(); ++v) {
      for (std::size_t a = 0; a < m[v].size(); ++a) {
        if (v != a && m[v][a] != 0.0) return true;
      }
    }
    return false;
  };
  return any_nonzero(coupling) || any_nonzero(next_coupling);
}

namespace {

std::string check_matrix_shape(const std::vector<std::vector<double>>& m,
                               const std::string& key, int lanes) {
  if (m.empty()) return {};
  const auto n = static_cast<std::size_t>(lanes);
  if (m.size() != n) {
    return "$." + key + ": must be a " + std::to_string(lanes) + "x" +
           std::to_string(lanes) + " matrix (one row per lane)";
  }
  for (std::size_t v = 0; v < m.size(); ++v) {
    if (m[v].size() != n) {
      return "$." + key + "[" + std::to_string(v) + "]: must have " +
             std::to_string(lanes) + " entries (one per aggressor lane)";
    }
  }
  return {};
}

}  // namespace

std::string BusSpec::validate() const {
  if (lanes < 1 || lanes > 64) {
    return "$.lanes: must be between 1 and 64";
  }
  if (!overrides.empty() &&
      overrides.size() != static_cast<std::size_t>(lanes)) {
    return "$.overrides: must have exactly one entry per lane (" +
           std::to_string(lanes) + ")";
  }
  if (auto err = check_matrix_shape(coupling, "coupling", lanes);
      !err.empty()) {
    return err;
  }
  if (auto err = check_matrix_shape(next_coupling, "next_coupling", lanes);
      !err.empty()) {
    return err;
  }
  std::vector<LinkSpec> lane_specs;
  try {
    lane_specs = expand();
  } catch (const util::JsonError& e) {
    return e.what();
  }
  for (std::size_t i = 0; i < lane_specs.size(); ++i) {
    if (auto err = lane_specs[i].validate(); !err.empty()) {
      return "lane " + std::to_string(i) + ": " + err;
    }
    if (has_coupling() && !lane_specs[i].streaming) {
      return "lane " + std::to_string(i) +
             ": streaming: crosstalk coupling requires the streaming "
             "execution path";
    }
  }
  return {};
}

void BusSpec::validate_or_throw() const {
  if (auto err = validate(); !err.empty()) {
    throw std::invalid_argument("BusSpec '" + name + "': " + err);
  }
}

std::vector<LinkSpec> BusSpec::expand() const {
  std::vector<LinkSpec> out;
  out.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    LinkSpec lane = base;
    if (!overrides.empty()) {
      const Json& o = overrides[static_cast<std::size_t>(i)];
      const std::string path = "$.overrides[" + std::to_string(i) + "]";
      if (!o.is_object()) util::fail_at(path, "expected object");
      for (const auto& [key, value] : o.as_object()) {
        if (key == "name") {
          util::fail_at(path + ".name",
                        "lane names derive from the bus name and may not be "
                        "overridden");
        }
        apply_link_field(lane, key, value, path + "." + key);
      }
    }
    lane.name = name + "/lane" + std::to_string(i);
    out.push_back(std::move(lane));
  }
  return out;
}

// ---- JSON -------------------------------------------------------------------

namespace {

const std::vector<std::string> kBusFields = {
    "name", "lanes", "base", "overrides", "coupling", "next_coupling"};

Json matrix_to_json(const std::vector<std::vector<double>>& m) {
  Json rows = Json::array();
  for (const std::vector<double>& row : m) {
    Json r = Json::array();
    for (const double v : row) r.push_back(Json(v));
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<std::vector<double>> matrix_from_json(const Json& j,
                                                  const std::string& path) {
  if (!j.is_array()) util::fail_at(path, "expected array of number arrays");
  std::vector<std::vector<double>> m;
  m.reserve(j.as_array().size());
  for (std::size_t v = 0; v < j.as_array().size(); ++v) {
    const Json& row = j.as_array()[v];
    const std::string row_path = path + "[" + std::to_string(v) + "]";
    if (!row.is_array()) util::fail_at(row_path, "expected array of numbers");
    std::vector<double> out_row;
    out_row.reserve(row.as_array().size());
    for (std::size_t a = 0; a < row.as_array().size(); ++a) {
      out_row.push_back(util::get_double(
          row.as_array()[a], row_path + "[" + std::to_string(a) + "]"));
    }
    m.push_back(std::move(out_row));
  }
  return m;
}

}  // namespace

Json to_json(const BusSpec& spec) {
  Json j = Json::object();
  j.set("name", spec.name);
  j.set("lanes", spec.lanes);
  j.set("base", to_json(spec.base));
  if (!spec.overrides.empty()) {
    Json arr = Json::array();
    for (const Json& o : spec.overrides) arr.push_back(o);
    j.set("overrides", std::move(arr));
  }
  if (!spec.coupling.empty()) j.set("coupling", matrix_to_json(spec.coupling));
  if (!spec.next_coupling.empty()) {
    j.set("next_coupling", matrix_to_json(spec.next_coupling));
  }
  return j;
}

BusSpec bus_spec_from_json(const Json& json, const std::string& path) {
  if (!json.is_object()) util::fail_at(path, "expected object");
  BusSpec spec;
  bool saw_lanes = false;
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "name") {
      spec.name = util::get_string(value, p);
    } else if (key == "lanes") {
      const std::int64_t v = util::get_int(value, p);
      if (v < 1 || v > 64) util::fail_at(p, "must be between 1 and 64");
      spec.lanes = static_cast<int>(v);
      saw_lanes = true;
    } else if (key == "base") {
      spec.base = link_spec_from_json(value, p);
    } else if (key == "overrides") {
      if (!value.is_array()) util::fail_at(p, "expected array of objects");
      spec.overrides.assign(value.as_array().begin(), value.as_array().end());
    } else if (key == "coupling") {
      spec.coupling = matrix_from_json(value, p);
    } else if (key == "next_coupling") {
      spec.next_coupling = matrix_from_json(value, p);
    } else {
      std::string message = "unknown BusSpec field '" + key + "'";
      if (const std::string hint = util::closest_match(key, kBusFields);
          !hint.empty()) {
        message += " — did you mean '" + hint + "'?";
      }
      util::fail_at(p, message);
    }
  }
  if (!saw_lanes) util::fail_at(path, "missing required field 'lanes'");
  return spec;
}

Json to_json(const BusReport& report) {
  Json j = Json::object();
  j.set("schema_version", report.schema_version);
  j.set("name", report.name);
  Json lanes = Json::array();
  for (const RunReport& lane : report.lanes) lanes.push_back(to_json(lane));
  j.set("lanes", std::move(lanes));
  if (!report.coupling.empty()) {
    j.set("coupling", matrix_to_json(report.coupling));
  }
  if (!report.next_coupling.empty()) {
    j.set("next_coupling", matrix_to_json(report.next_coupling));
  }
  return j;
}

BusReport bus_report_from_json(const Json& json, const std::string& path) {
  if (!json.is_object()) util::fail_at(path, "expected object");
  BusReport report;
  report.schema_version = 1;  // absent means version 1
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "schema_version") {
      report.schema_version = static_cast<int>(util::get_int(value, p));
    } else if (key == "name") {
      report.name = util::get_string(value, p);
    } else if (key == "lanes") {
      if (!value.is_array()) util::fail_at(p, "expected array of reports");
      for (std::size_t i = 0; i < value.as_array().size(); ++i) {
        report.lanes.push_back(run_report_from_json(
            value.as_array()[i], p + "[" + std::to_string(i) + "]"));
      }
    } else if (key == "coupling") {
      report.coupling = matrix_from_json(value, p);
    } else if (key == "next_coupling") {
      report.next_coupling = matrix_from_json(value, p);
    } else {
      util::fail_at(p, "unknown BusReport field '" + key + "'");
    }
  }
  return report;
}

bool looks_like_bus_spec(const Json& json) {
  return json.is_object() &&
         (json.find("lanes") != nullptr || json.find("base") != nullptr);
}

}  // namespace serdes::api
