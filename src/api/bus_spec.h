// Declarative description of an N-lane bus scenario.
//
// A bus is a template LinkSpec stamped out across `lanes` lanes (each lane
// optionally patched by a per-lane override object), plus two N x N
// coupling matrices describing inter-lane crosstalk:
//
//   coupling[v][a]      — FEXT gain: aggressor `a`'s TX stream filtered
//                         through victim `v`'s channel model, scaled and
//                         added to `v`'s post-channel stream;
//   next_coupling[v][a] — NEXT gain: aggressor `a`'s TX stream injected
//                         directly (no channel) into `v`'s stream.
//
// Zero matrices (or absent ones) make the bus exactly N independent links:
// `Simulator::run_bus` then routes through the same batched path as
// `run_batch`, and the per-lane reports are byte-identical to standalone
// runs — a contract pinned by tier-1 tests.
#pragma once

#include <string>
#include <vector>

#include "api/link_spec.h"
#include "api/simulator.h"
#include "util/json.h"

namespace serdes::api {

struct BusSpec {
  /// Bus label; lane `i` runs as "<name>/lane<i>".
  std::string name = "bus";

  /// Number of lanes, 1..64.
  int lanes = 1;

  /// Template every lane starts from.  Its `name` is ignored (lane names
  /// derive from the bus name).
  LinkSpec base;

  /// Optional per-lane patches: either empty or exactly `lanes` JSON
  /// objects, each mapping LinkSpec fields (the `apply_link_field`
  /// vocabulary: top-level members, "channel", dotted channel members) to
  /// values.  "name" may not be overridden.
  std::vector<util::Json> overrides;

  /// FEXT gain matrix, `lanes` x `lanes` (empty = no FEXT).  Row = victim,
  /// column = aggressor; the diagonal should be zero (the linter's
  /// `self-coupling` rule flags violations, and the runner skips them).
  std::vector<std::vector<double>> coupling;

  /// NEXT gain matrix, same shape and conventions as `coupling`.
  std::vector<std::vector<double>> next_coupling;

  /// True when any off-diagonal coupling entry is nonzero — the bus needs
  /// the crosstalk-aware scalar path instead of the batched one.
  [[nodiscard]] bool has_coupling() const;

  /// First problem found, or "" when runnable.  Covers lane count, matrix
  /// shapes, override shape/content, and per-expanded-lane LinkSpec
  /// validity (nonzero coupling additionally requires streaming lanes).
  [[nodiscard]] std::string validate() const;
  void validate_or_throw() const;

  /// Stamps out the per-lane LinkSpecs: base + override, named
  /// "<name>/lane<i>".  Throws util::JsonError on malformed overrides.
  [[nodiscard]] std::vector<LinkSpec> expand() const;
};

/// Per-bus result: one RunReport per lane plus the coupling echo, under
/// the same schema-versioning contract as RunReport.
struct BusReport {
  /// See RunReport::schema_version; BusReport itself is a version-2
  /// addition.
  int schema_version = 2;
  std::string name;
  std::vector<RunReport> lanes;
  std::vector<std::vector<double>> coupling;
  std::vector<std::vector<double>> next_coupling;
};

[[nodiscard]] util::Json to_json(const BusSpec& spec);
[[nodiscard]] BusSpec bus_spec_from_json(const util::Json& json,
                                         const std::string& path = "$");
[[nodiscard]] util::Json to_json(const BusReport& report);
[[nodiscard]] BusReport bus_report_from_json(const util::Json& json,
                                             const std::string& path = "$");

/// True when a parsed JSON document looks like a BusSpec rather than a
/// LinkSpec or SweepSpec (it has a "lanes" or "base" member) — the CLI's
/// file-kind sniffer.
[[nodiscard]] bool looks_like_bus_spec(const util::Json& json);

}  // namespace serdes::api
