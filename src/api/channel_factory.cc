#include "api/channel_factory.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/strings.h"

namespace serdes::api {

namespace {

std::unique_ptr<channel::Channel> make_flat(const ChannelSpec& spec,
                                            const core::LinkConfig&) {
  return std::make_unique<channel::FlatChannel>(util::decibels(spec.loss_db));
}

std::unique_ptr<channel::Channel> make_rc(const ChannelSpec& spec,
                                          const core::LinkConfig& cfg) {
  return std::make_unique<channel::RcChannel>(util::Hertz{spec.pole_hz},
                                              cfg.sample_period(),
                                              util::decibels(spec.loss_db));
}

// The dsp-accelerated variants register under the same kinds: cfg.dsp
// routes "lossy_line" and "fir" through the block-convolution engine
// (overlap-save FFT above the crossover) without touching any call site.

std::unique_ptr<channel::Channel> make_lossy_line(const ChannelSpec& spec,
                                                  const core::LinkConfig& cfg) {
  channel::LossyLineChannel::Params p;
  p.dc_loss_db = spec.loss_db;
  p.skin_loss_db_at_1ghz = spec.skin_loss_db_at_1ghz;
  p.dielectric_loss_db_at_1ghz = spec.dielectric_loss_db_at_1ghz;
  return std::make_unique<channel::LossyLineChannel>(p, cfg.sample_period(),
                                                     cfg.dsp);
}

std::unique_ptr<channel::Channel> make_fir(const ChannelSpec& spec,
                                           const core::LinkConfig& cfg) {
  const int samples_per_tap = spec.fir_samples_per_tap > 0
                                  ? spec.fir_samples_per_tap
                                  : cfg.samples_per_ui;
  return std::make_unique<channel::FirChannel>(spec.fir_taps, samples_per_tap,
                                               cfg.dsp);
}

}  // namespace

ChannelFactory::ChannelFactory() {
  creators_.emplace_back("flat", make_flat);
  creators_.emplace_back("rc", make_rc);
  creators_.emplace_back("lossy_line", make_lossy_line);
  creators_.emplace_back("fir", make_fir);
  creators_.emplace_back(
      "composite",
      [this](const ChannelSpec& spec, const core::LinkConfig& cfg) {
        auto composite = std::make_unique<channel::CompositeChannel>();
        for (const auto& stage : spec.stages) {
          composite->add(create(stage, cfg));
        }
        return std::unique_ptr<channel::Channel>(std::move(composite));
      });
}

ChannelFactory& ChannelFactory::instance() {
  static ChannelFactory factory;
  return factory;
}

void ChannelFactory::register_kind(const std::string& kind, Creator creator) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, fn] : creators_) {
    if (name == kind) {
      fn = std::move(creator);
      return;
    }
  }
  creators_.emplace_back(kind, std::move(creator));
}

bool ChannelFactory::knows(const std::string& kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(creators_.begin(), creators_.end(),
                     [&](const auto& entry) { return entry.first == kind; });
}

std::vector<std::string> ChannelFactory::kinds() const {
  std::vector<std::string> names;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    names.reserve(creators_.size());
    for (const auto& [name, fn] : creators_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string ChannelFactory::unknown_kind_message(
    const std::string& kind) const {
  const std::vector<std::string> names = kinds();
  std::string message = "unknown channel kind '" + kind +
                        "' (registered: " + util::join(names) + ")";
  if (const std::string hint = util::closest_match(kind, names);
      !hint.empty()) {
    message += " — did you mean '" + hint + "'?";
  }
  return message;
}

std::unique_ptr<channel::Channel> ChannelFactory::create(
    const ChannelSpec& spec, const core::LinkConfig& cfg) const {
  Creator creator;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, fn] : creators_) {
      if (name == spec.kind) {
        creator = fn;
        break;
      }
    }
  }
  if (!creator) {
    throw std::invalid_argument("ChannelFactory: " +
                                unknown_kind_message(spec.kind));
  }
  return creator(spec, cfg);
}

}  // namespace serdes::api
