// String-keyed registry of channel models.
//
// Decouples scenario code from the concrete channel classes: a
// `ChannelSpec` names its model by kind ("flat", "rc", "lossy_line",
// "fir", "composite") and the factory instantiates it, so benches, sweeps
// and config files never `#include` a concrete channel type.  New models
// (a measured S-parameter channel, an optical link, ...) plug in through
// `register_kind` without touching any caller.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/link_spec.h"
#include "channel/channel.h"
#include "core/config.h"

namespace serdes::api {

class ChannelFactory {
 public:
  /// Builds a channel from its spec; `cfg` supplies link-level context
  /// (sample period, samples per UI) some models need.
  using Creator = std::function<std::unique_ptr<channel::Channel>(
      const ChannelSpec&, const core::LinkConfig&)>;

  /// The process-wide registry, pre-loaded with the five built-in kinds.
  static ChannelFactory& instance();

  /// Registers (or replaces) a kind.  Thread-safe.
  void register_kind(const std::string& kind, Creator creator);

  [[nodiscard]] bool knows(const std::string& kind) const;

  /// Registered kinds, sorted (for error messages and introspection).
  [[nodiscard]] std::vector<std::string> kinds() const;

  /// The diagnostic for an unrecognized kind: names the registered kinds
  /// and suggests the closest match when the typo is plausible.  Exposed
  /// so callers that know where the kind came from (a JSON path in a spec
  /// file, a sweep axis) can prefix their own location context.
  [[nodiscard]] std::string unknown_kind_message(const std::string& kind) const;

  /// Instantiates the channel for `spec`.  Throws std::invalid_argument
  /// for an unknown kind, naming the kinds that are registered.
  [[nodiscard]] std::unique_ptr<channel::Channel> create(
      const ChannelSpec& spec, const core::LinkConfig& cfg) const;

 private:
  ChannelFactory();

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Creator>> creators_;
};

}  // namespace serdes::api
