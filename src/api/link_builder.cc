#include "api/link_builder.h"

#include <utility>

#include "api/channel_factory.h"

namespace serdes::api {

LinkBuilder& LinkBuilder::name(std::string n) {
  spec_.name = std::move(n);
  return *this;
}

LinkBuilder& LinkBuilder::bit_rate(util::Hertz rate) {
  spec_.bit_rate_hz = rate.value();
  return *this;
}

LinkBuilder& LinkBuilder::samples_per_ui(int samples) {
  spec_.samples_per_ui = samples;
  return *this;
}

LinkBuilder& LinkBuilder::modulation(std::string m) {
  spec_.modulation = std::move(m);
  return *this;
}

LinkBuilder& LinkBuilder::channel(ChannelSpec ch) {
  spec_.channel = std::move(ch);
  return *this;
}

LinkBuilder& LinkBuilder::flat_channel(util::Decibel loss) {
  spec_.channel = ChannelSpec::flat(loss.value());
  return *this;
}

LinkBuilder& LinkBuilder::noise_rms(double volts) {
  spec_.noise_rms_v = volts;
  return *this;
}

LinkBuilder& LinkBuilder::noise_reference_bandwidth(util::Hertz bw) {
  spec_.noise_reference_bandwidth_hz = bw.value();
  return *this;
}

LinkBuilder& LinkBuilder::random_jitter(util::Second rms) {
  spec_.random_jitter_s = rms.value();
  return *this;
}

LinkBuilder& LinkBuilder::sinusoidal_jitter(util::Second amplitude,
                                            double freq_ratio) {
  spec_.sinusoidal_jitter_s = amplitude.value();
  spec_.sj_freq_ratio = freq_ratio;
  return *this;
}

LinkBuilder& LinkBuilder::ppm_offset(double ppm) {
  spec_.ppm_offset = ppm;
  return *this;
}

LinkBuilder& LinkBuilder::rx_phase_offset_ui(double ui) {
  spec_.rx_phase_offset_ui = ui;
  return *this;
}

LinkBuilder& LinkBuilder::cdr_oversampling(int factor) {
  spec_.cdr_oversampling = factor;
  return *this;
}

LinkBuilder& LinkBuilder::cdr_window(int uis) {
  spec_.cdr_window_uis = uis;
  return *this;
}

LinkBuilder& LinkBuilder::cdr_glitch_filter(int radius) {
  spec_.cdr_glitch_filter_radius = radius;
  return *this;
}

LinkBuilder& LinkBuilder::cdr_jitter_hysteresis(int windows) {
  spec_.cdr_jitter_hysteresis = windows;
  return *this;
}

LinkBuilder& LinkBuilder::tx_ffe_deemphasis(double alpha) {
  spec_.tx_ffe_deemphasis = alpha;
  return *this;
}

LinkBuilder& LinkBuilder::rx_ctle(util::Decibel boost, util::Hertz pole) {
  spec_.rx_ctle_boost_db = boost.value();
  spec_.rx_ctle_pole_hz = pole.value();
  return *this;
}

LinkBuilder& LinkBuilder::dfe(std::vector<double> taps) {
  spec_.dfe_taps = std::move(taps);
  return *this;
}

LinkBuilder& LinkBuilder::eq(std::string mode) {
  spec_.eq = std::move(mode);
  return *this;
}

LinkBuilder& LinkBuilder::training_uis(int uis) {
  spec_.training_uis = uis;
  return *this;
}

LinkBuilder& LinkBuilder::preamble_bits(int bits) {
  spec_.preamble_bits = bits;
  return *this;
}

LinkBuilder& LinkBuilder::prbs(util::PrbsOrder order) {
  spec_.prbs_order = order;
  return *this;
}

LinkBuilder& LinkBuilder::payload_bits(std::uint64_t bits) {
  spec_.payload_bits = bits;
  return *this;
}

LinkBuilder& LinkBuilder::chunk_bits(std::uint64_t bits) {
  spec_.chunk_bits = bits;
  return *this;
}

LinkBuilder& LinkBuilder::seed(std::uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

LinkBuilder& LinkBuilder::streaming(bool on) {
  spec_.streaming = on;
  return *this;
}

LinkBuilder& LinkBuilder::stream_block_samples(std::uint64_t samples) {
  spec_.stream_block_samples = samples;
  return *this;
}

LinkBuilder& LinkBuilder::lane_batch(int lanes) {
  spec_.lane_batch = lanes;
  return *this;
}

LinkBuilder& LinkBuilder::dsp(bool on) {
  spec_.dsp = on;
  return *this;
}

LinkBuilder& LinkBuilder::analysis(std::string mode) {
  spec_.analysis = std::move(mode);
  return *this;
}

LinkBuilder& LinkBuilder::stat_target_ber(double ber) {
  spec_.stat_target_ber = ber;
  return *this;
}

LinkBuilder& LinkBuilder::capture_waveforms(bool capture) {
  spec_.capture_waveforms = capture;
  capture_set_explicitly_ = true;
  return *this;
}

LinkSpec LinkBuilder::build_spec() const {
  spec_.validate_or_throw();
  return spec_;
}

core::LinkConfig LinkBuilder::build_config() const {
  return spec_.to_link_config();
}

core::SerDesLink LinkBuilder::build_link() const {
  core::LinkConfig cfg = build_config();
  // A link object is for inspecting results (waveforms, eye, front end),
  // so unless the caller chose otherwise, capture stays on here — matching
  // direct SerDesLink construction.  Lean, capture-free sweeps go through
  // api::Simulator, which manages capture per chunk.
  if (!capture_set_explicitly_) cfg.capture_waveforms = true;
  return core::SerDesLink(cfg,
                          ChannelFactory::instance().create(spec_.channel,
                                                            cfg));
}

}  // namespace serdes::api
