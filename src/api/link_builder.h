// Fluent authoring of LinkSpecs and construction of runnable links.
//
//   auto report = api::Simulator().run(api::LinkBuilder()
//                                          .name("fig8")
//                                          .bit_rate(util::gigahertz(2.0))
//                                          .flat_channel(util::decibels(34.0))
//                                          .payload_bits(100000)
//                                          .build_spec());
//
// The builder starts from the paper's operating point, so call sites name
// only what their scenario changes.  `build_link()` lowers the spec into a
// core::SerDesLink through the ChannelFactory for callers that want to
// drive the link object directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/link_spec.h"
#include "core/link.h"
#include "util/units.h"

namespace serdes::api {

class LinkBuilder {
 public:
  /// Starts from LinkSpec::paper_default().
  LinkBuilder() = default;
  /// Starts from an existing spec (e.g. to derive one sweep point).  The
  /// spec's recorded capture_waveforms choice is authoritative: build_link()
  /// honors it instead of applying the inspectable-by-default rule.
  explicit LinkBuilder(LinkSpec spec)
      : spec_(std::move(spec)), capture_set_explicitly_(true) {}

  LinkBuilder& name(std::string n);
  LinkBuilder& bit_rate(util::Hertz rate);
  LinkBuilder& samples_per_ui(int samples);
  /// Line code: "nrz" (default) or "pam4" (see LinkSpec::modulation).
  LinkBuilder& modulation(std::string m);

  LinkBuilder& channel(ChannelSpec ch);
  LinkBuilder& flat_channel(util::Decibel loss);

  LinkBuilder& noise_rms(double volts);
  LinkBuilder& noise_reference_bandwidth(util::Hertz bw);
  LinkBuilder& random_jitter(util::Second rms);
  LinkBuilder& sinusoidal_jitter(util::Second amplitude,
                                 double freq_ratio = 0.04);
  LinkBuilder& ppm_offset(double ppm);
  LinkBuilder& rx_phase_offset_ui(double ui);

  LinkBuilder& cdr_oversampling(int factor);
  LinkBuilder& cdr_window(int uis);
  LinkBuilder& cdr_glitch_filter(int radius);
  LinkBuilder& cdr_jitter_hysteresis(int windows);

  LinkBuilder& tx_ffe_deemphasis(double alpha);
  LinkBuilder& rx_ctle(util::Decibel boost,
                       util::Hertz pole = util::megahertz(700.0));
  /// DFE post-cursor taps in volts at the sampler's summing node (tap k
  /// feeds back the decision from k+1 UIs ago); empty disables the DFE.
  LinkBuilder& dfe(std::vector<double> taps);
  /// Equalizer adaptation: "fixed" (default) or "trained" (sign-sign LMS
  /// over a training preamble; see LinkSpec::eq).
  LinkBuilder& eq(std::string mode);
  /// Training preamble length in UIs for eq("trained").
  LinkBuilder& training_uis(int uis);

  LinkBuilder& preamble_bits(int bits);
  LinkBuilder& prbs(util::PrbsOrder order);
  LinkBuilder& payload_bits(std::uint64_t bits);
  LinkBuilder& chunk_bits(std::uint64_t bits);
  LinkBuilder& seed(std::uint64_t seed);
  /// Streaming block-pipeline execution (on by default); off selects the
  /// legacy whole-waveform batch path.  Bit-identical either way.
  LinkBuilder& streaming(bool on = true);
  /// Samples per streaming block (memory knob; results invariant).
  LinkBuilder& stream_block_samples(std::uint64_t samples);
  /// Lane-tile width for batched multi-lane execution in run_batch /
  /// sweeps (throughput knob; reports bit-identical to scalar).  [1, 64].
  LinkBuilder& lane_batch(int lanes);
  /// Opt into the dsp block-convolution engine (overlap-save FFT above the
  /// measured crossover) for fir / lossy_line channels.  Bit decisions
  /// match the exact kernels; waveforms agree to <= 1e-12 RMS.
  LinkBuilder& dsp(bool on = true);
  /// Analysis engine: "mc" (default), "stat" (analytical StatEye engine
  /// only — instant deep-BER bathtubs, no bit stream) or "both" (MC plus
  /// the stat engine, cross-checked against each other).
  LinkBuilder& analysis(std::string mode);
  /// BER level the stat engine quotes contours and margins at.
  LinkBuilder& stat_target_ber(double ber);
  /// Explicit capture choice: honored by build_spec() and build_link()
  /// alike.  When never called, build_link() defaults capture ON (a link
  /// object is for inspection) while specs stay lean for Simulator sweeps.
  LinkBuilder& capture_waveforms(bool capture = true);

  /// The spec as authored so far (not yet validated).
  [[nodiscard]] const LinkSpec& spec() const { return spec_; }

  /// Validated copy of the spec; throws std::invalid_argument on problems.
  [[nodiscard]] LinkSpec build_spec() const;

  /// The core configuration the spec lowers to, verbatim — including the
  /// spec's capture_waveforms (lean by default).  Unlike build_link(),
  /// this never flips capture on; opt in explicitly if you will read
  /// waveforms off a link you construct from this config.
  [[nodiscard]] core::LinkConfig build_config() const;

  /// A runnable link: configuration plus factory-built channel.  Unless
  /// capture_waveforms() was called explicitly, capture defaults on here
  /// (you took the link object to inspect it); capture-free bulk sweeps
  /// belong to Simulator.
  [[nodiscard]] core::SerDesLink build_link() const;

 private:
  LinkSpec spec_{};
  bool capture_set_explicitly_ = false;
};

}  // namespace serdes::api
