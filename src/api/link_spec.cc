#include "api/link_spec.h"

#include <stdexcept>
#include <utility>

namespace serdes::api {

ChannelSpec ChannelSpec::flat(double loss_db) {
  ChannelSpec c;
  c.kind = "flat";
  c.loss_db = loss_db;
  return c;
}

ChannelSpec ChannelSpec::rc(double pole_hz, double dc_loss_db) {
  ChannelSpec c;
  c.kind = "rc";
  c.pole_hz = pole_hz;
  c.loss_db = dc_loss_db;
  return c;
}

ChannelSpec ChannelSpec::lossy_line(double dc_loss_db, double skin_db_at_1ghz,
                                    double dielectric_db_at_1ghz) {
  ChannelSpec c;
  c.kind = "lossy_line";
  c.loss_db = dc_loss_db;
  c.skin_loss_db_at_1ghz = skin_db_at_1ghz;
  c.dielectric_loss_db_at_1ghz = dielectric_db_at_1ghz;
  return c;
}

ChannelSpec ChannelSpec::fir(std::vector<double> taps, int samples_per_tap) {
  ChannelSpec c;
  c.kind = "fir";
  c.fir_taps = std::move(taps);
  c.fir_samples_per_tap = samples_per_tap;
  return c;
}

ChannelSpec ChannelSpec::cascade(std::vector<ChannelSpec> stages) {
  ChannelSpec c;
  c.kind = "composite";
  c.stages = std::move(stages);
  return c;
}

LinkSpec LinkSpec::paper_default() { return LinkSpec{}; }

namespace {

/// `path` locates `ch` within the owning LinkSpec ("channel",
/// "channel.stages[1]", ...), so findings can name the exact member.
LinkSpec::Issue validate_channel(const ChannelSpec& ch, const std::string& path,
                                 int depth) {
  if (ch.kind.empty()) return {path + ".kind", "channel kind is empty"};
  if (depth > 4) {
    return {path, "composite channel nested deeper than 4 levels"};
  }
  if (ch.kind == "fir" && ch.fir_taps.empty()) {
    return {path + ".fir_taps", "fir channel needs at least one tap"};
  }
  if (ch.kind == "composite") {
    if (ch.stages.empty()) {
      return {path + ".stages", "composite channel needs at least one stage"};
    }
    for (std::size_t i = 0; i < ch.stages.size(); ++i) {
      auto issue = validate_channel(
          ch.stages[i], path + ".stages[" + std::to_string(i) + "]",
          depth + 1);
      if (!issue.ok()) return issue;
    }
  }
  return {};
}

}  // namespace

LinkSpec::Issue LinkSpec::first_issue() const {
  if (bit_rate_hz <= 0.0) return {"bit_rate_hz", "must be positive"};
  if (samples_per_ui < 2) return {"samples_per_ui", "must be at least 2"};
  if (modulation != "nrz" && modulation != "pam4") {
    return {"modulation", "must be one of 'nrz', 'pam4'"};
  }
  if (modulation == "pam4") {
    if (!streaming) {
      return {"streaming", "pam4 requires the streaming execution path"};
    }
    if (tx_ffe_deemphasis != 0.0) {
      return {"tx_ffe_deemphasis",
              "the 2-level TX FFE is incompatible with pam4"};
    }
    if (preamble_bits % 2 != 0) {
      return {"preamble_bits", "must be even under pam4 (2 bits per symbol)"};
    }
  }
  if (auto issue = validate_channel(channel, "channel", 0); !issue.ok()) {
    return issue;
  }
  if (noise_rms_v < 0.0) return {"noise_rms_v", "must be non-negative"};
  if (noise_reference_bandwidth_hz <= 0.0) {
    return {"noise_reference_bandwidth_hz", "must be positive"};
  }
  if (random_jitter_s < 0.0) {
    return {"random_jitter_s", "must be non-negative"};
  }
  if (sinusoidal_jitter_s < 0.0) {
    return {"sinusoidal_jitter_s", "must be non-negative"};
  }
  if (sinusoidal_jitter_s > 0.0 && sj_freq_ratio <= 0.0) {
    return {"sj_freq_ratio", "must be positive when sinusoidal jitter is on"};
  }
  if (cdr_oversampling < 2) return {"cdr_oversampling", "must be at least 2"};
  if (cdr_window_uis < 1) return {"cdr_window_uis", "must be at least 1"};
  if (cdr_glitch_filter_radius < 0) {
    return {"cdr_glitch_filter_radius", "must be non-negative"};
  }
  if (cdr_jitter_hysteresis < 1) {
    return {"cdr_jitter_hysteresis", "must be at least 1"};
  }
  if (tx_ffe_deemphasis < 0.0 || tx_ffe_deemphasis >= 1.0) {
    return {"tx_ffe_deemphasis", "must be in [0, 1)"};
  }
  if (rx_ctle_boost_db < 0.0) {
    return {"rx_ctle_boost_db", "must be non-negative"};
  }
  if (rx_ctle_boost_db > 0.0 && rx_ctle_pole_hz <= 0.0) {
    return {"rx_ctle_pole_hz", "must be positive when the CTLE is enabled"};
  }
  if (dfe_taps.size() > 8) {
    return {"dfe_taps", "at most 8 post-cursor taps are supported"};
  }
  for (std::size_t i = 0; i < dfe_taps.size(); ++i) {
    const double tap = dfe_taps[i];
    if (!(tap > -1.8) || !(tap < 1.8)) {
      return {"dfe_taps[" + std::to_string(i) + "]",
              "must be a finite voltage within the 1.8 V supply"};
    }
  }
  if (!dfe_taps.empty() && !streaming) {
    return {"streaming", "the DFE requires the streaming execution path"};
  }
  if (eq != "fixed" && eq != "trained") {
    return {"eq", "must be one of 'fixed', 'trained'"};
  }
  if (eq == "trained") {
    if (!streaming) {
      return {"streaming", "eq 'trained' requires the streaming path"};
    }
    if (training_uis < 256 || training_uis > (1 << 20)) {
      return {"training_uis", "must be in [256, 1048576]"};
    }
  }
  if (preamble_bits < 8) return {"preamble_bits", "must be at least 8"};
  if (payload_bits == 0) return {"payload_bits", "must be positive"};
  if (chunk_bits == 0) return {"chunk_bits", "must be positive"};
  if (stream_block_samples == 0) {
    return {"stream_block_samples", "must be positive"};
  }
  if (lane_batch < 1 || lane_batch > 64) {
    return {"lane_batch", "must be in [1, 64]"};
  }
  if (analysis != "mc" && analysis != "stat" && analysis != "both") {
    return {"analysis", "must be one of 'mc', 'stat', 'both'"};
  }
  if (!(stat_target_ber > 0.0) || stat_target_ber >= 0.5) {
    return {"stat_target_ber", "must be in (0, 0.5)"};
  }
  return {};
}

std::string LinkSpec::validate() const {
  const Issue issue = first_issue();
  if (issue.ok()) return {};
  return issue.field + ": " + issue.message;
}

void LinkSpec::validate_or_throw() const {
  if (auto err = validate(); !err.empty()) {
    throw std::invalid_argument("LinkSpec '" + name + "': " + err);
  }
}

core::LinkConfig LinkSpec::to_link_config() const {
  validate_or_throw();
  core::LinkConfig cfg = core::LinkConfig::paper_default();
  cfg.bit_rate = util::Hertz{bit_rate_hz};
  cfg.samples_per_ui = samples_per_ui;
  cfg.modulation = modulation == "pam4"
                       ? core::LinkConfig::Modulation::kPam4
                       : core::LinkConfig::Modulation::kNrz;

  cfg.channel_noise_rms = noise_rms_v;
  cfg.noise_reference_bandwidth = util::Hertz{noise_reference_bandwidth_hz};
  cfg.rx_random_jitter = util::Second{random_jitter_s};
  cfg.rx_sinusoidal_jitter = util::Second{sinusoidal_jitter_s};
  cfg.sj_freq_ratio = sj_freq_ratio;
  cfg.ppm_offset = ppm_offset;
  cfg.rx_phase_offset_ui = rx_phase_offset_ui;

  cfg.cdr.oversampling = cdr_oversampling;
  cfg.cdr.window_uis = cdr_window_uis;
  cfg.cdr.glitch_filter_radius = cdr_glitch_filter_radius;
  cfg.cdr.jitter_hysteresis = cdr_jitter_hysteresis;

  cfg.tx_ffe_deemphasis = tx_ffe_deemphasis;
  cfg.rx_ctle_boost = util::Decibel{rx_ctle_boost_db};
  cfg.rx_ctle_pole = util::Hertz{rx_ctle_pole_hz};
  cfg.dfe_taps = dfe_taps;

  cfg.framing.preamble_bits = preamble_bits;
  cfg.prbs_order = prbs_order;
  cfg.noise_seed = seed;
  cfg.capture_waveforms = capture_waveforms;
  cfg.execution = streaming ? core::LinkConfig::Execution::kStreaming
                            : core::LinkConfig::Execution::kBatch;
  cfg.stream_block_samples =
      static_cast<std::size_t>(stream_block_samples);
  cfg.lane_batch = lane_batch;
  cfg.dsp = dsp;
  cfg.analysis = analysis == "stat"   ? core::LinkConfig::Analysis::kStatistical
                 : analysis == "both" ? core::LinkConfig::Analysis::kBoth
                                      : core::LinkConfig::Analysis::kMonteCarlo;
  return cfg;
}

}  // namespace serdes::api
