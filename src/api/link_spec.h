// Declarative description of one SerDes link scenario.
//
// The paper's evaluation is a matrix of scenarios — one link swept across
// channel loss (Fig 9), jitter tolerance, RFI/CDR/EQ ablations — and every
// scenario is fully described by a `LinkSpec`: rate, channel kind and
// parameters, impairments, CDR and equalization knobs, and the payload to
// push through.  A spec is plain data (doubles in SI units, strings, no
// owning pointers), so it can be stored in tables, swept programmatically
// and shipped across threads; `api::Simulator` turns specs into results
// and `api::LinkBuilder` offers a fluent way to author them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "util/prbs.h"

namespace serdes::api {

/// Plain-data description of the channel a link runs over.  `kind` names a
/// model registered in `ChannelFactory` ("flat", "rc", "lossy_line", "fir",
/// "composite"); only the parameters that kind reads need to be set.
struct ChannelSpec {
  std::string kind = "flat";

  /// flat: total attenuation; rc / lossy_line: the dc loss term.
  double loss_db = 34.0;

  /// rc: pole frequency of the single-pole trace model.
  double pole_hz = 2.5e9;

  /// lossy_line: skin-effect and dielectric loss coefficients at 1 GHz.
  double skin_loss_db_at_1ghz = 18.0;
  double dielectric_loss_db_at_1ghz = 14.0;

  /// fir: UI-spaced impulse-response taps; `fir_samples_per_tap` <= 0 means
  /// one tap per unit interval at the link's sampling density.
  std::vector<double> fir_taps;
  int fir_samples_per_tap = 0;

  /// composite: stages cascaded in order.
  std::vector<ChannelSpec> stages;

  // ---- Convenience constructors for the built-in kinds ----
  static ChannelSpec flat(double loss_db);
  static ChannelSpec rc(double pole_hz, double dc_loss_db = 0.0);
  static ChannelSpec lossy_line(double dc_loss_db, double skin_db_at_1ghz,
                                double dielectric_db_at_1ghz);
  static ChannelSpec fir(std::vector<double> taps, int samples_per_tap = 0);
  static ChannelSpec cascade(std::vector<ChannelSpec> stages);
};

/// Everything needed to construct and run one link, with the analog blocks
/// held at the paper's design point.  Defaults reproduce the headline
/// operating condition: 2 Gbps PRBS-31 through 34 dB of flat loss.
///
/// When adding a field, also extend `apply_link_field` and `to_json` in
/// api/spec_json.cc — JSON specs, sweep axes and the did-you-mean hints
/// all derive from those two.
struct LinkSpec {
  /// Label carried into the RunReport (sweep axis value, lane name, ...).
  std::string name = "link";

  // ---- Rate / resolution ----
  double bit_rate_hz = 2e9;
  int samples_per_ui = 16;

  // ---- Modulation ----
  /// Line code: "nrz" (default, 1 bit/UI — the paper's datapath) or
  /// "pam4" (2 gray-mapped bits per UI through a 4-level TX source and a
  /// tri-threshold sampler; the symbol rate is bit_rate_hz / 2).  PAM4
  /// requires the streaming execution path and is incompatible with the
  /// 2-level TX FFE (`tx_ffe_deemphasis` must stay 0).
  std::string modulation = "nrz";

  // ---- Channel ----
  ChannelSpec channel{};

  // ---- Impairments ----
  double noise_rms_v = 0.001;
  double noise_reference_bandwidth_hz = 3e9;
  double random_jitter_s = 2e-12;
  double sinusoidal_jitter_s = 0.0;
  double sj_freq_ratio = 0.04;
  double ppm_offset = 0.0;
  double rx_phase_offset_ui = 0.37;

  // ---- CDR knobs ----
  int cdr_oversampling = 5;
  int cdr_window_uis = 32;
  int cdr_glitch_filter_radius = 1;
  int cdr_jitter_hysteresis = 2;

  // ---- Equalization knobs (0 disables) ----
  double tx_ffe_deemphasis = 0.0;
  double rx_ctle_boost_db = 0.0;
  double rx_ctle_pole_hz = 700e6;
  /// Decision-feedback equalizer: post-cursor tap weights (volts at the
  /// sampler's summing node — the restored domain for NRZ, the CTLE
  /// output for PAM4).  Tap k is fed back from the decision k UIs ago;
  /// empty disables the DFE.  Requires the streaming execution path.
  std::vector<double> dfe_taps;
  /// Equalizer adaptation mode: "fixed" (default — the knobs above are
  /// used as written) or "trained" (a sign-sign LMS training preamble of
  /// `training_uis` known symbols adapts the DFE taps — and, when they
  /// saturate or the tail demands it, the TX FFE / CTLE knobs — before
  /// the payload runs; the knobs above become initial values and the
  /// converged settings are reported in RunReport.training).  Training
  /// is deterministic given the seed and runs per lane in batches.
  std::string eq = "fixed";
  /// Length of the "trained" training preamble in UIs (ignored under
  /// eq = "fixed").
  int training_uis = 4096;

  // ---- Framing / payload ----
  int preamble_bits = 256;
  util::PrbsOrder prbs_order = util::PrbsOrder::kPrbs31;
  /// Total payload bits pushed through the link, split into independent
  /// chunks of `chunk_bits` (each chunk gets fresh noise).
  std::uint64_t payload_bits = 4096;
  std::uint64_t chunk_bits = 4096;

  /// Base seed for all stochastic pieces; `Simulator::run_batch` derives a
  /// distinct deterministic seed per lane from it.
  std::uint64_t seed = 1234;

  // ---- Execution ----
  /// Streaming block-pipeline execution (default): every stage holds one
  /// block of `stream_block_samples` samples, so per-lane waveform memory
  /// is O(block) instead of O(chunk_bits * samples_per_ui).  Turning this
  /// off selects the legacy whole-waveform batch path; both produce
  /// bit-identical reports.
  bool streaming = true;
  /// Samples per streaming block; results are invariant to this value.
  std::uint64_t stream_block_samples = 16384;
  /// Lane-tile width for batched multi-lane execution: run_batch (and the
  /// sweep runner) group lanes whose specs differ only in name/seed into
  /// SoA tiles of up to this many lanes sharing one instruction stream
  /// (core::LaneLink).  Reports are bit-identical to scalar execution —
  /// this is purely a throughput knob.  Only streaming "mc" scenarios
  /// tile; must be in [1, 64].
  int lane_batch = 1;
  /// Opt into the dsp block-convolution engine (overlap-save FFT above the
  /// crossover) for the channel kinds that profit ("fir", "lossy_line",
  /// and composites containing them).  BER/bit decisions match the exact
  /// kernels; waveforms agree to <= 1e-12 RMS.  Off by default: the exact
  /// direct kernels keep results bit-identical across block sizes.
  bool dsp = false;

  // ---- Analysis engine ----
  /// Which engine(s) produce this scenario's results:
  ///   * "mc"   — Monte Carlo bit-stream simulation (default);
  ///   * "stat" — the analytical StatEye-style engine only: closed-form
  ///     ISI/noise/jitter statistics from the single-bit pulse response,
  ///     reaching 1e-15 BER regimes in milliseconds (no bit stream);
  ///   * "both" — Monte Carlo plus the stat engine, with the measured MC
  ///     BER cross-checked against the stat prediction band (the
  ///     golden-report regression tier runs on this mode).
  std::string analysis = "mc";
  /// BER level the stat engine quotes contours and margins at.
  double stat_target_ber = 1e-15;

  /// Opt-in: retain the tx / channel / restored waveforms in the report.
  /// Off by default so batch sweeps don't carry megabytes of samples.
  bool capture_waveforms = false;

  /// The paper's operating point (identical to the defaults; spelled out
  /// for call-site readability).
  static LinkSpec paper_default();

  /// One validation finding: `field` locates the offending spec member
  /// ("bit_rate_hz", "channel.stages[1].fir_taps", ...) so callers that
  /// loaded the spec from a file can point at the exact JSON path;
  /// `message` describes the problem.  An empty message means the spec is
  /// runnable.
  struct Issue {
    std::string field;
    std::string message;
    [[nodiscard]] bool ok() const { return message.empty(); }
  };

  /// The first problem found, with its field path; Issue{} if runnable.
  [[nodiscard]] Issue first_issue() const;

  /// Returns an empty string if the spec is runnable, else a description
  /// of the first problem found ("<field>: <message>").
  [[nodiscard]] std::string validate() const;

  /// Throws std::invalid_argument naming the spec and the first problem.
  void validate_or_throw() const;

  /// Lowers the spec onto the core link configuration (analog blocks at
  /// their paper design point).  Throws std::invalid_argument if
  /// validate() fails.
  [[nodiscard]] core::LinkConfig to_link_config() const;
};

}  // namespace serdes::api
