#include "api/simulator.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/bus_spec.h"
#include "api/channel_factory.h"
#include "api/spec_json.h"
#include "core/ber.h"
#include "core/lane_link.h"
#include "core/link.h"
#include "stat/stat_engine.h"
#include "util/prbs.h"

namespace serdes::api {

bool Simulator::tile_eligible(const LinkSpec& spec) {
  // PAM4 runs the dedicated slicer/CDR sink, which the SoA lane tiles do
  // not model — PAM4 lanes always take the scalar path.
  // Trained lanes are excluded as well: each lane trains its own EQ from
  // its derived seed, so tiles could no longer share one instruction
  // stream over identical physics.
  return spec.lane_batch > 1 && spec.streaming && spec.analysis == "mc" &&
         spec.modulation == "nrz" && spec.eq != "trained";
}

std::string Simulator::tile_key(const LinkSpec& spec) {
  LinkSpec key = spec;
  key.name.clear();
  key.seed = 0;
  return to_json(key).dump();
}

std::uint64_t Simulator::derive_lane_seed(std::uint64_t base_seed,
                                          std::size_t lane) {
  // splitmix64 step (Steele/Lea/Flood) over base ^ lane: well-mixed,
  // collision-free per lane, and stable across platforms and thread
  // schedules.
  std::uint64_t z = base_seed ^ (0x9e3779b97f4a7c15ull *
                                 (static_cast<std::uint64_t>(lane) + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

RunReport Simulator::run(const LinkSpec& spec) const {
  return run_impl(spec, {});
}

RunReport Simulator::run_impl(
    const LinkSpec& spec, const std::vector<core::XtalkPath>& xtalk) const {
  RunReport report;
  report.spec = spec;
  report.confidence_level = options_.confidence_level;

  core::LinkConfig cfg = spec.to_link_config();
  cfg.xtalk = xtalk;

  // Link training first: eq "trained" replays a deterministic preamble
  // and rewrites the executed EQ settings (DFE taps, FFE, CTLE) before
  // either engine runs, so stat and MC see the same trained link.  The
  // report's spec keeps the authored values; the converged settings land
  // in report.training.
  if (spec.eq == "trained") {
    const auto train_channel =
        ChannelFactory::instance().create(spec.channel, cfg);
    const std::size_t n_taps =
        spec.dfe_taps.empty() ? 3 : spec.dfe_taps.size();
    core::TrainingResult trained = core::train_equalizer(
        cfg, *train_channel, spec.training_uis, n_taps);
    cfg.dfe_taps = trained.dfe_taps;
    cfg.tx_ffe_deemphasis = trained.tx_ffe_deemphasis;
    cfg.rx_ctle_boost = util::decibels(trained.rx_ctle_boost_db);
    report.training = std::move(trained);
  }

  // Statistical analysis first: it is cheap (no bit stream), and a
  // "stat"-only run returns here without ever building the MC datapath's
  // traffic.  The channel model is the same factory-built instance kind
  // the MC path would run, so both engines see identical physics.
  const bool want_stat = spec.analysis == "stat" || spec.analysis == "both";
  if (want_stat) {
    stat::StatAnalyzer::Options stat_options;
    stat_options.phase_bins_per_ui = options_.stat_phase_bins_per_ui;
    stat_options.target_ber = spec.stat_target_ber;
    const stat::StatAnalyzer analyzer(stat_options);
    const auto channel = ChannelFactory::instance().create(spec.channel, cfg);
    report.stat = analyzer.analyze(cfg, *channel);
    if (spec.analysis == "stat") return report;
  }
  // The first chunk always captures waveforms: lock diagnostics and eye
  // metrics come from it.  Whether they stay in the report is the spec's
  // capture_waveforms choice.  Capture is bounded to the diagnostic window
  // so a deep first chunk does not cost O(chunk) memory.
  cfg.capture_waveforms = true;
  cfg.capture_max_samples = static_cast<std::size_t>(
      options_.diagnostic_window_uis *
      static_cast<std::uint64_t>(cfg.samples_per_ui));
  core::SerDesLink link(cfg,
                        ChannelFactory::instance().create(spec.channel, cfg));

  // The chunked-BER accounting lives in core::measure_ber; the observer
  // lifts the diagnostics off the first chunk and turns capture off for
  // the bulk chunks.
  bool first_chunk = true;
  const core::BerMeasurement m = core::measure_ber(
      link, spec.payload_bits, spec.chunk_bits, options_.confidence_level,
      spec.prbs_order, [&](const core::LinkResult& r) {
        if (!first_chunk) return;
        first_chunk = false;
        report.cdr_decision_phase = r.rx.cdr_decision_phase;
        report.cdr_phase_updates = r.rx.cdr_phase_updates;
        report.rx_swing_pp = r.rx_swing_pp;
        report.decision_threshold = r.decision_threshold;
        // The eye is folded per line UI: the symbol period under PAM4.
        const core::EyeAnalyzer eye(
            util::hertz(cfg.bit_rate.value() /
                        static_cast<double>(cfg.bits_per_ui())),
            options_.eye_bins_per_ui);
        report.eye = eye.analyze(r.rx.restored, report.decision_threshold);
        if (spec.capture_waveforms) {
          report.tx_out = r.tx_out;
          report.channel_out = r.channel_out;
          report.restored = r.rx.restored;
        }
        link.set_capture_waveforms(false);
      });

  report.aligned = m.aligned;
  report.bits = m.bits;
  report.errors = m.errors;
  report.ber = m.ber;
  report.ber_upper_bound = m.ber_upper_bound;

  if (want_stat) {
    // "both": the MC measurement must land inside the stat engine's
    // predicted BER band — the two engines regression-test each other.
    stat::StatAnalyzer::cross_check(*report.stat, report.bits, report.errors,
                                    spec.cdr_oversampling,
                                    spec.cdr_glitch_filter_radius,
                                    options_.stat_cross_check_slack);
  }
  return report;
}

std::vector<RunReport> Simulator::run_lane_tile(
    const std::vector<LinkSpec>& lane_specs) const {
  std::vector<RunReport> reports(lane_specs.size());
  if (lane_specs.empty()) return reports;
  const LinkSpec& base = lane_specs[0];
  for (const LinkSpec& spec : lane_specs) spec.validate_or_throw();
  if (!base.streaming || base.analysis != "mc") {
    throw std::invalid_argument(
        "run_lane_tile: lane tiling requires streaming 'mc' scenarios");
  }
  const std::string key = tile_key(base);
  for (std::size_t i = 1; i < lane_specs.size(); ++i) {
    if (tile_key(lane_specs[i]) != key) {
      throw std::invalid_argument(
          "run_lane_tile: lane specs must be identical up to name and seed");
    }
  }

  core::LinkConfig cfg = base.to_link_config();
  // Same capture policy as run(): diagnostics come from each lane's first
  // chunk, bounded to the diagnostic window.
  cfg.capture_waveforms = true;
  cfg.capture_max_samples = static_cast<std::size_t>(
      options_.diagnostic_window_uis *
      static_cast<std::uint64_t>(cfg.samples_per_ui));
  std::vector<std::uint64_t> seeds(lane_specs.size());
  for (std::size_t i = 0; i < lane_specs.size(); ++i) {
    seeds[i] = lane_specs[i].seed;
  }
  core::LaneLink link(cfg,
                      ChannelFactory::instance().create(base.channel, cfg),
                      std::move(seeds));
  std::vector<core::LaneOutcome> outcomes =
      link.measure(base.payload_bits, base.chunk_bits,
                   options_.confidence_level, base.prbs_order);

  const double threshold = link.receiver().decision_threshold();
  const core::EyeAnalyzer eye(cfg.bit_rate, options_.eye_bins_per_ui);
  for (std::size_t i = 0; i < lane_specs.size(); ++i) {
    core::LaneOutcome& o = outcomes[i];
    RunReport& report = reports[i];
    report.spec = lane_specs[i];
    report.confidence_level = options_.confidence_level;
    report.cdr_decision_phase = o.cdr_decision_phase;
    report.cdr_phase_updates = o.cdr_phase_updates;
    report.rx_swing_pp = o.rx_swing_pp;
    report.decision_threshold = threshold;
    report.eye = eye.analyze(o.restored, threshold);
    if (lane_specs[i].capture_waveforms) {
      report.tx_out = std::move(o.tx_out);
      report.channel_out = std::move(o.channel_out);
      report.restored = std::move(o.restored);
    }
    report.aligned = o.measurement.aligned;
    report.bits = o.measurement.bits;
    report.errors = o.measurement.errors;
    report.ber = o.measurement.ber;
    report.ber_upper_bound = o.measurement.ber_upper_bound;
  }
  return reports;
}

std::vector<RunReport> Simulator::run_batch(const std::vector<LinkSpec>& specs,
                                            int n_threads) const {
  // Fail fast, before any lane burns cycles.  Constructing each lane's
  // channel up front also catches unknown kinds nested inside composite
  // stages (channel construction is cheap next to running a lane).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (auto err = specs[i].validate(); !err.empty()) {
      throw std::invalid_argument("run_batch lane " + std::to_string(i) +
                                  " ('" + specs[i].name + "'): " + err);
    }
    try {
      (void)ChannelFactory::instance().create(specs[i].channel,
                                              specs[i].to_link_config());
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("run_batch lane " + std::to_string(i) +
                                  " ('" + specs[i].name + "'): " + e.what());
    }
  }

  std::vector<RunReport> reports(specs.size());
  if (specs.empty()) return reports;

  // Work items: scalar lanes, plus lane tiles for specs that opted into
  // lane_batch (grouped by identical physics, cut into tiles of at most
  // lane_batch lanes).  Every lane's seed derivation and report index use
  // its original batch position, so the output is bit-identical with
  // tiling on or off, at any thread count.
  struct WorkItem {
    bool tile = false;
    std::vector<std::size_t> lanes;  // spec indices; one entry when !tile
  };
  std::vector<WorkItem> items;
  if (options_.lane_tiling) {
    std::vector<std::string> keys;  // insertion-ordered: deterministic
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!tile_eligible(specs[i])) {
        items.push_back(WorkItem{false, {i}});
        continue;
      }
      const std::string key = tile_key(specs[i]);
      std::size_t g = keys.size();
      for (std::size_t k = 0; k < keys.size(); ++k) {
        if (keys[k] == key) {
          g = k;
          break;
        }
      }
      if (g == keys.size()) {
        keys.push_back(key);
        groups.emplace_back();
      }
      groups[g].push_back(i);
    }
    for (const std::vector<std::size_t>& group : groups) {
      const auto width = static_cast<std::size_t>(specs[group[0]].lane_batch);
      for (std::size_t at = 0; at < group.size(); at += width) {
        WorkItem item;
        item.tile = true;
        const std::size_t end = std::min(group.size(), at + width);
        item.lanes.assign(group.begin() + static_cast<std::ptrdiff_t>(at),
                          group.begin() + static_cast<std::ptrdiff_t>(end));
        items.push_back(std::move(item));
      }
    }
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      items.push_back(WorkItem{false, {i}});
    }
  }

  unsigned workers = n_threads > 0
                         ? static_cast<unsigned>(n_threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(workers,
                               static_cast<unsigned>(items.size()));

  std::atomic<std::size_t> next_item{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      // A thrown lane voids the whole batch, so stop picking up new work.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t idx = next_item.fetch_add(1);
      if (idx >= items.size()) return;
      const WorkItem& item = items[idx];
      try {
        if (item.tile) {
          std::vector<LinkSpec> lane_specs;
          lane_specs.reserve(item.lanes.size());
          for (const std::size_t lane : item.lanes) {
            LinkSpec lane_spec = specs[lane];
            if (options_.derive_lane_seeds) {
              lane_spec.seed = derive_lane_seed(lane_spec.seed, lane);
            }
            lane_specs.push_back(std::move(lane_spec));
          }
          std::vector<RunReport> tile_reports = run_lane_tile(lane_specs);
          for (std::size_t j = 0; j < item.lanes.size(); ++j) {
            reports[item.lanes[j]] = std::move(tile_reports[j]);
          }
        } else {
          const std::size_t lane = item.lanes[0];
          LinkSpec lane_spec = specs[lane];
          if (options_.derive_lane_seeds) {
            lane_spec.seed = derive_lane_seed(lane_spec.seed, lane);
          }
          reports[lane] = run(lane_spec);
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return reports;
}

namespace {

/// Crosstalk paths seen by victim lane `v`: for every aggressor lane
/// a != v, a FEXT path (through the victim's channel) from `coupling` and
/// a NEXT path (direct) from `next_coupling`, zero gains dropped.  The
/// aggressor's stream is the shared framed PRBS pattern delayed by the
/// lane distance |v - a| UIs — a deterministic skew that decorrelates
/// aggressor symbols from the victim's without extra pattern state.
std::vector<core::XtalkPath> xtalk_for_lane(const BusSpec& spec,
                                            std::size_t v) {
  std::vector<core::XtalkPath> paths;
  const auto n = static_cast<std::size_t>(spec.lanes);
  for (std::size_t a = 0; a < n; ++a) {
    if (a == v) continue;  // self-coupling is a lint finding, never run
    const int delay = static_cast<int>(v > a ? v - a : a - v);
    if (!spec.coupling.empty() && spec.coupling[v][a] != 0.0) {
      core::XtalkPath p;
      p.gain = spec.coupling[v][a];
      p.through_channel = true;
      p.delay_ui = delay;
      paths.push_back(p);
    }
    if (!spec.next_coupling.empty() && spec.next_coupling[v][a] != 0.0) {
      core::XtalkPath p;
      p.gain = spec.next_coupling[v][a];
      p.through_channel = false;
      p.delay_ui = delay;
      paths.push_back(p);
    }
  }
  return paths;
}

}  // namespace

BusReport Simulator::run_bus(const BusSpec& spec, int n_threads) const {
  spec.validate_or_throw();
  const std::vector<LinkSpec> lanes = spec.expand();

  BusReport report;
  report.name = spec.name;
  report.coupling = spec.coupling;
  report.next_coupling = spec.next_coupling;

  if (!spec.has_coupling()) {
    // No crosstalk: the bus IS N independent lanes — take the batched
    // path (tiling and all) so reports are byte-identical to run_batch.
    report.lanes = run_batch(lanes, n_threads);
    return report;
  }

  for (std::size_t i = 0; i < lanes.size(); ++i) {
    (void)ChannelFactory::instance().create(lanes[i].channel,
                                            lanes[i].to_link_config());
  }

  report.lanes.resize(lanes.size());
  unsigned workers = n_threads > 0
                         ? static_cast<unsigned>(n_threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(workers, static_cast<unsigned>(lanes.size()));

  std::atomic<std::size_t> next_lane{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next_lane.fetch_add(1);
      if (i >= lanes.size()) return;
      try {
        LinkSpec lane_spec = lanes[i];
        if (options_.derive_lane_seeds) {
          lane_spec.seed = derive_lane_seed(lane_spec.seed, i);
        }
        report.lanes[i] = run_impl(lane_spec, xtalk_for_lane(spec, i));
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return report;
}

}  // namespace serdes::api
