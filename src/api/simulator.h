// Simulator façade: turns declarative LinkSpecs into structured reports.
//
// `run(spec)` executes one link scenario — chunked PRBS traffic with
// fresh per-chunk noise, exactly like core::measure_ber — and returns a
// RunReport with BER statistics (with the confidence-bound treatment),
// CDR lock diagnostics and eye metrics.  `run_batch(specs, n_threads)`
// fans independent lanes out across worker threads; each lane derives a
// deterministic seed from its base seed and lane index (splitmix64), so
// results are bit-identical whatever the thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analog/waveform.h"
#include "api/link_spec.h"
#include "core/eq_training.h"
#include "core/eye.h"
#include "stat/stat_report.h"

namespace serdes::api {

struct BusSpec;    // api/bus_spec.h
struct BusReport;  // api/bus_spec.h

/// Structured outcome of one lane.
struct RunReport {
  /// Report schema version.  Version 2 added `schema_version` itself plus
  /// the bus/PAM4 sections (BusReport, StatReport per-eye margins); a
  /// report parsed from JSON without the key reads back as version 1.
  /// Version 3 added the DFE / link-training surface: LinkSpec `dfe_taps`
  /// / `eq` / `training_uis`, the `training` section below, and the
  /// StatReport DFE model fields.
  int schema_version = 3;

  /// The spec that produced this report (seed shows the derived per-lane
  /// value when the report came from run_batch).
  LinkSpec spec;

  // ---- BER ----
  bool aligned = false;
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;
  double ber = 0.0;
  /// Upper bound on the true BER at `confidence_level`.
  double ber_upper_bound = 1.0;
  double confidence_level = 0.95;

  // ---- Lock / front-end diagnostics (from the first chunk) ----
  int cdr_decision_phase = 0;
  std::uint64_t cdr_phase_updates = 0;
  double rx_swing_pp = 0.0;
  double decision_threshold = 0.0;

  // ---- Eye metrics on the restored waveform (first chunk) ----
  core::EyeMetrics eye{};

  // ---- Statistical analysis (when spec.analysis is "stat" or "both") ----
  /// Analytical bathtub / contour / margin surfaces; for "both" runs the
  /// cross-check fields record whether the MC BER above landed inside the
  /// engine's predicted band.  For "stat" runs the MC fields stay zeroed.
  std::optional<stat::StatReport> stat;

  // ---- Link training (when spec.eq is "trained") ----
  /// Converged equalizer settings the run actually executed with.  The
  /// spec above keeps the authored (pre-training) values.
  std::optional<core::TrainingResult> training;

  // ---- Waveforms (only when spec.capture_waveforms) ----
  analog::Waveform tx_out;
  analog::Waveform channel_out;
  analog::Waveform restored;

  [[nodiscard]] bool error_free() const {
    return aligned && errors == 0 && bits > 0;
  }
  [[nodiscard]] const std::string& name() const { return spec.name; }
};

class Simulator {
 public:
  struct Options {
    /// Confidence level for the BER upper bound.
    double confidence_level = 0.95;
    /// Eye-folding resolution (bins per unit interval).
    int eye_bins_per_ui = 64;
    /// Diagnostics (lock, eye metrics, report waveforms) come from the
    /// first `diagnostic_window_uis` unit intervals of the first chunk, so
    /// per-lane capture memory stays bounded however deep the chunk is.
    /// 0 retains the whole first chunk.
    std::uint64_t diagnostic_window_uis = 4096;
    /// When true (default), run_batch gives lane i the seed
    /// derive_lane_seed(spec.seed, i) so lanes with the same base seed see
    /// uncorrelated noise.  Turn off for paired comparisons (ablations)
    /// where every lane must face the identical noise realization.
    bool derive_lane_seeds = true;
    /// When true (default), run_batch groups lanes whose specs request
    /// lane_batch > 1 (and differ only in name/seed) into SoA lane tiles
    /// executed by core::LaneLink — one instruction stream, N lanes.
    /// Reports are bit-identical either way; turn off to force the scalar
    /// per-lane path (the bit-identity reference).
    bool lane_tiling = true;
    /// Sampling-phase resolution of the stat engine's bathtub/contours.
    int stat_phase_bins_per_ui = 64;
    /// `"both"`-mode model slack: the MC BER must fall within
    /// [band_low / slack, band_high * slack], Poisson-widened (see
    /// stat::StatAnalyzer::cross_check).
    double stat_cross_check_slack = 4.0;
  };

  Simulator() = default;
  explicit Simulator(Options options) : options_(options) {}

  /// Runs one scenario.  Throws std::invalid_argument on an invalid spec
  /// or unknown channel kind.
  [[nodiscard]] RunReport run(const LinkSpec& spec) const;

  /// Runs every lane of a sweep, `n_threads` lanes in flight at a time
  /// (n_threads <= 0 picks the hardware concurrency).  All specs are
  /// validated before any lane starts.  Lane i runs with seed
  /// derive_lane_seed(specs[i].seed, i) (or its own seed unchanged when
  /// Options::derive_lane_seeds is off); reports come back in spec order
  /// and are bit-identical for any thread count.
  [[nodiscard]] std::vector<RunReport> run_batch(
      const std::vector<LinkSpec>& specs, int n_threads = 0) const;

  /// Runs one lane tile: every spec must describe the same physics
  /// (identical up to name and seed) and be a streaming "mc" scenario
  /// with lane_batch >= the implied width.  Seeds are used exactly as
  /// given (no per-lane derivation — run_batch derives before grouping).
  /// Lane i's report is bit-identical to run(lane_specs[i]).
  [[nodiscard]] std::vector<RunReport> run_lane_tile(
      const std::vector<LinkSpec>& lane_specs) const;

  /// Runs an N-lane bus (see api/bus_spec.h).  A zero-coupling bus routes
  /// through run_batch — per-lane reports byte-identical to standalone
  /// runs, lane tiling included.  Nonzero coupling takes the scalar
  /// crosstalk path: each victim lane's stream gains the configured
  /// FEXT/NEXT aggressor injections (MC) and bounded-interference ISI
  /// terms (stat), with seeds derived exactly as run_batch derives them,
  /// so toggling coupling never reshuffles lane noise.
  [[nodiscard]] BusReport run_bus(const BusSpec& spec,
                                  int n_threads = 0) const;

  /// Deterministic per-lane seed: one splitmix64 step over
  /// base ^ (0x9e3779b97f4a7c15 * (lane + 1)).
  [[nodiscard]] static std::uint64_t derive_lane_seed(std::uint64_t base_seed,
                                                      std::size_t lane);

  /// True when `spec` can execute on the lane-tiled path: lane_batch > 1
  /// on a streaming "mc" scenario (the stat engine has no bit stream to
  /// batch; the batch execution path materializes whole waveforms).
  [[nodiscard]] static bool tile_eligible(const LinkSpec& spec);
  /// Lane-tiling group key: the spec JSON with the per-lane degrees of
  /// freedom (name, seed) neutralized.  Equal keys mean identical
  /// physics, so one lane tile serves every such spec.
  [[nodiscard]] static std::string tile_key(const LinkSpec& spec);

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  /// run() with crosstalk paths injected into the lowered LinkConfig —
  /// the per-victim-lane primitive behind run_bus (both the MC datapath
  /// and the stat engine read LinkConfig::xtalk).
  [[nodiscard]] RunReport run_impl(
      const LinkSpec& spec, const std::vector<core::XtalkPath>& xtalk) const;

  Options options_{};
};

}  // namespace serdes::api
