#include "api/spec_json.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "api/channel_factory.h"
#include "util/fs.h"
#include "util/strings.h"

namespace serdes::api {

using util::Json;
using util::JsonError;

namespace {

using util::fail_at;
using util::get_bool;
using util::get_double;
using util::get_string;
using util::get_uint;

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  fail_at(path, message);
}

/// util::get_int bounded to int (every integral LinkSpec knob is an int).
int get_int32(const Json& j, const std::string& path) {
  const std::int64_t v = util::get_int(j, path);
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    fail(path, "integer out of int range");
  }
  return static_cast<int>(v);
}

std::vector<double> get_double_array(const Json& j, const std::string& path) {
  if (!j.is_array()) fail(path, "expected array of numbers");
  std::vector<double> out;
  out.reserve(j.as_array().size());
  for (std::size_t i = 0; i < j.as_array().size(); ++i) {
    out.push_back(
        get_double(j.as_array()[i], path + "[" + std::to_string(i) + "]"));
  }
  return out;
}

// The did-you-mean candidate lists are derived from what to_json emits,
// so the hint vocabulary can never drift from the serialization schema
// (the apply_* chains are exercised against every emitted key by the
// round-trip fixed-point tests).

const std::vector<std::string>& channel_field_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    const auto add = [&](const ChannelSpec& ch) {
      const Json j = to_json(ch);  // keep alive through the iteration
      for (const auto& [key, value] : j.as_object()) {
        if (std::find(names.begin(), names.end(), key) == names.end()) {
          names.push_back(key);
        }
      }
    };
    add(ChannelSpec::flat(0.0));
    add(ChannelSpec::rc(1.0));
    add(ChannelSpec::lossy_line(0.0, 0.0, 0.0));
    add(ChannelSpec::fir({1.0}));
    add(ChannelSpec::cascade({ChannelSpec::flat(0.0)}));
    return names;
  }();
  return kNames;
}

const std::vector<std::string>& link_field_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    const Json j = to_json(LinkSpec{});  // keep alive through the iteration
    for (const auto& [key, value] : j.as_object()) {
      names.push_back(key);
    }
    return names;
  }();
  return kNames;
}

[[noreturn]] void fail_unknown_field(const std::string& path,
                                     std::string_view field,
                                     const std::string& owner,
                                     const std::vector<std::string>& known) {
  std::string message = "unknown " + owner + " field '" + std::string(field) +
                        "'";
  if (const std::string hint = util::closest_match(field, known);
      !hint.empty()) {
    message += " — did you mean '" + hint + "'?";
  }
  fail(path, message);
}

void apply_channel_field(ChannelSpec& ch, std::string_view field,
                         const Json& value, const std::string& path) {
  if (field == "kind") {
    ch.kind = get_string(value, path);
  } else if (field == "loss_db") {
    ch.loss_db = get_double(value, path);
  } else if (field == "pole_hz") {
    ch.pole_hz = get_double(value, path);
  } else if (field == "skin_loss_db_at_1ghz") {
    ch.skin_loss_db_at_1ghz = get_double(value, path);
  } else if (field == "dielectric_loss_db_at_1ghz") {
    ch.dielectric_loss_db_at_1ghz = get_double(value, path);
  } else if (field == "fir_taps") {
    ch.fir_taps = get_double_array(value, path);
  } else if (field == "fir_samples_per_tap") {
    ch.fir_samples_per_tap = get_int32(value, path);
  } else if (field == "stages") {
    if (!value.is_array()) fail(path, "expected array of channel specs");
    ch.stages.clear();
    for (std::size_t i = 0; i < value.as_array().size(); ++i) {
      ch.stages.push_back(channel_spec_from_json(
          value.as_array()[i], path + "[" + std::to_string(i) + "]"));
    }
  } else {
    fail_unknown_field(path, field, "ChannelSpec", channel_field_names());
  }
}

util::PrbsOrder prbs_order_from_int(int order, const std::string& path) {
  switch (order) {
    case 7: return util::PrbsOrder::kPrbs7;
    case 9: return util::PrbsOrder::kPrbs9;
    case 15: return util::PrbsOrder::kPrbs15;
    case 23: return util::PrbsOrder::kPrbs23;
    case 31: return util::PrbsOrder::kPrbs31;
    default:
      fail(path, "prbs_order must be one of 7, 9, 15, 23, 31");
  }
}

}  // namespace

ChannelSpec channel_spec_from_json(const Json& json, const std::string& path) {
  if (!json.is_object()) fail(path, "expected channel spec object");
  ChannelSpec ch;
  for (const auto& [key, value] : json.as_object()) {
    apply_channel_field(ch, key, value, path + "." + key);
  }
  return ch;
}

void apply_link_field(LinkSpec& spec, std::string_view field,
                      const Json& value, const std::string& path) {
  if (const auto dot = field.find('.'); dot != std::string_view::npos) {
    const std::string_view head = field.substr(0, dot);
    const std::string_view rest = field.substr(dot + 1);
    if (head != "channel" || rest.empty()) {
      fail_unknown_field(path, field, "LinkSpec", link_field_names());
    }
    if (rest.find('.') != std::string_view::npos) {
      fail(path, "nested channel field path '" + std::string(field) +
                     "' is not supported (set 'channel' to a full object "
                     "instead)");
    }
    apply_channel_field(spec.channel, rest, value, path);
    return;
  }
  if (field == "name") {
    spec.name = get_string(value, path);
  } else if (field == "bit_rate_hz") {
    spec.bit_rate_hz = get_double(value, path);
  } else if (field == "samples_per_ui") {
    spec.samples_per_ui = get_int32(value, path);
  } else if (field == "modulation") {
    spec.modulation = get_string(value, path);
  } else if (field == "channel") {
    spec.channel = channel_spec_from_json(value, path);
  } else if (field == "noise_rms_v") {
    spec.noise_rms_v = get_double(value, path);
  } else if (field == "noise_reference_bandwidth_hz") {
    spec.noise_reference_bandwidth_hz = get_double(value, path);
  } else if (field == "random_jitter_s") {
    spec.random_jitter_s = get_double(value, path);
  } else if (field == "sinusoidal_jitter_s") {
    spec.sinusoidal_jitter_s = get_double(value, path);
  } else if (field == "sj_freq_ratio") {
    spec.sj_freq_ratio = get_double(value, path);
  } else if (field == "ppm_offset") {
    spec.ppm_offset = get_double(value, path);
  } else if (field == "rx_phase_offset_ui") {
    spec.rx_phase_offset_ui = get_double(value, path);
  } else if (field == "cdr_oversampling") {
    spec.cdr_oversampling = get_int32(value, path);
  } else if (field == "cdr_window_uis") {
    spec.cdr_window_uis = get_int32(value, path);
  } else if (field == "cdr_glitch_filter_radius") {
    spec.cdr_glitch_filter_radius = get_int32(value, path);
  } else if (field == "cdr_jitter_hysteresis") {
    spec.cdr_jitter_hysteresis = get_int32(value, path);
  } else if (field == "tx_ffe_deemphasis") {
    spec.tx_ffe_deemphasis = get_double(value, path);
  } else if (field == "rx_ctle_boost_db") {
    spec.rx_ctle_boost_db = get_double(value, path);
  } else if (field == "rx_ctle_pole_hz") {
    spec.rx_ctle_pole_hz = get_double(value, path);
  } else if (field == "dfe_taps") {
    spec.dfe_taps = get_double_array(value, path);
  } else if (field == "eq") {
    spec.eq = get_string(value, path);
  } else if (field == "training_uis") {
    spec.training_uis = get_int32(value, path);
  } else if (field == "preamble_bits") {
    spec.preamble_bits = get_int32(value, path);
  } else if (field == "prbs_order") {
    spec.prbs_order = prbs_order_from_int(get_int32(value, path), path);
  } else if (field == "payload_bits") {
    spec.payload_bits = get_uint(value, path);
  } else if (field == "chunk_bits") {
    spec.chunk_bits = get_uint(value, path);
  } else if (field == "seed") {
    spec.seed = get_uint(value, path);
  } else if (field == "streaming") {
    spec.streaming = get_bool(value, path);
  } else if (field == "stream_block_samples") {
    spec.stream_block_samples = get_uint(value, path);
  } else if (field == "lane_batch") {
    spec.lane_batch = get_int32(value, path);
  } else if (field == "dsp") {
    spec.dsp = get_bool(value, path);
  } else if (field == "analysis") {
    spec.analysis = get_string(value, path);
  } else if (field == "stat_target_ber") {
    spec.stat_target_ber = get_double(value, path);
  } else if (field == "capture_waveforms") {
    spec.capture_waveforms = get_bool(value, path);
  } else {
    fail_unknown_field(path, field, "LinkSpec", link_field_names());
  }
}

LinkSpec link_spec_from_json(const Json& json, const std::string& path) {
  if (!json.is_object()) fail(path, "expected link spec object");
  LinkSpec spec;
  for (const auto& [key, value] : json.as_object()) {
    apply_link_field(spec, key, value, path + "." + key);
  }
  return spec;
}

Json to_json(const ChannelSpec& spec) {
  Json j = Json::object();
  j.set("kind", spec.kind);
  const bool builtin = spec.kind == "flat" || spec.kind == "rc" ||
                       spec.kind == "lossy_line" || spec.kind == "fir" ||
                       spec.kind == "composite";
  if (spec.kind == "flat" || spec.kind == "rc" || spec.kind == "lossy_line" ||
      !builtin) {
    j.set("loss_db", spec.loss_db);
  }
  if (spec.kind == "rc" || !builtin) j.set("pole_hz", spec.pole_hz);
  if (spec.kind == "lossy_line" || !builtin) {
    j.set("skin_loss_db_at_1ghz", spec.skin_loss_db_at_1ghz);
    j.set("dielectric_loss_db_at_1ghz", spec.dielectric_loss_db_at_1ghz);
  }
  if (spec.kind == "fir" || (!builtin && !spec.fir_taps.empty())) {
    Json taps = Json::array();
    for (const double t : spec.fir_taps) taps.push_back(t);
    j.set("fir_taps", std::move(taps));
    j.set("fir_samples_per_tap", spec.fir_samples_per_tap);
  }
  if (spec.kind == "composite" || (!builtin && !spec.stages.empty())) {
    Json stages = Json::array();
    for (const auto& stage : spec.stages) stages.push_back(to_json(stage));
    j.set("stages", std::move(stages));
  }
  return j;
}

Json to_json(const LinkSpec& spec) {
  Json j = Json::object();
  j.set("name", spec.name);
  j.set("bit_rate_hz", spec.bit_rate_hz);
  j.set("samples_per_ui", spec.samples_per_ui);
  j.set("modulation", spec.modulation);
  j.set("channel", to_json(spec.channel));
  j.set("noise_rms_v", spec.noise_rms_v);
  j.set("noise_reference_bandwidth_hz", spec.noise_reference_bandwidth_hz);
  j.set("random_jitter_s", spec.random_jitter_s);
  j.set("sinusoidal_jitter_s", spec.sinusoidal_jitter_s);
  j.set("sj_freq_ratio", spec.sj_freq_ratio);
  j.set("ppm_offset", spec.ppm_offset);
  j.set("rx_phase_offset_ui", spec.rx_phase_offset_ui);
  j.set("cdr_oversampling", spec.cdr_oversampling);
  j.set("cdr_window_uis", spec.cdr_window_uis);
  j.set("cdr_glitch_filter_radius", spec.cdr_glitch_filter_radius);
  j.set("cdr_jitter_hysteresis", spec.cdr_jitter_hysteresis);
  j.set("tx_ffe_deemphasis", spec.tx_ffe_deemphasis);
  j.set("rx_ctle_boost_db", spec.rx_ctle_boost_db);
  j.set("rx_ctle_pole_hz", spec.rx_ctle_pole_hz);
  Json dfe = Json::array();
  for (const double t : spec.dfe_taps) dfe.push_back(t);
  j.set("dfe_taps", std::move(dfe));
  j.set("eq", spec.eq);
  j.set("training_uis", spec.training_uis);
  j.set("preamble_bits", spec.preamble_bits);
  j.set("prbs_order", static_cast<int>(spec.prbs_order));
  j.set("payload_bits", spec.payload_bits);
  j.set("chunk_bits", spec.chunk_bits);
  j.set("seed", spec.seed);
  j.set("streaming", spec.streaming);
  j.set("stream_block_samples", spec.stream_block_samples);
  j.set("lane_batch", spec.lane_batch);
  j.set("dsp", spec.dsp);
  j.set("analysis", spec.analysis);
  j.set("stat_target_ber", spec.stat_target_ber);
  j.set("capture_waveforms", spec.capture_waveforms);
  return j;
}

Json to_json(const stat::StatReport& report) {
  Json j = Json::object();
  j.set("target_ber", report.target_ber);
  j.set("sigma_v", report.sigma_v);
  j.set("threshold_v", report.threshold_v);
  j.set("main_cursor_v", report.main_cursor_v);
  j.set("isi_cursors", report.isi_cursors);
  Json bathtub = Json::array();
  for (const double v : report.bathtub_ber) bathtub.push_back(v);
  j.set("bathtub_ber", std::move(bathtub));
  Json high = Json::array();
  for (const double v : report.contour_high_v) high.push_back(v);
  j.set("contour_high_v", std::move(high));
  Json low = Json::array();
  for (const double v : report.contour_low_v) low.push_back(v);
  j.set("contour_low_v", std::move(low));
  j.set("best_phase_ui", report.best_phase_ui);
  j.set("min_ber", report.min_ber);
  j.set("timing_margin_ui", report.timing_margin_ui);
  j.set("eye_height_v", report.eye_height_v);
  j.set("voltage_margin_v", report.voltage_margin_v);
  // PAM4 per-eye margins (schema version 2): serialized only when
  // non-empty, so NRZ reports keep their version-1 bytes.
  if (!report.pam4_eye_height_v.empty()) {
    const auto number_array = [](const std::vector<double>& values) {
      Json arr = Json::array();
      for (const double v : values) arr.push_back(v);
      return arr;
    };
    j.set("pam4_eye_height_v", number_array(report.pam4_eye_height_v));
    j.set("pam4_voltage_margin_v",
          number_array(report.pam4_voltage_margin_v));
    j.set("pam4_eye_ber", number_array(report.pam4_eye_ber));
  }
  // DFE model parameters (schema version 3): serialized only when the
  // analysis cancelled post-cursors, so DFE-free reports keep their bytes.
  if (!report.dfe_taps_applied.empty()) {
    Json taps = Json::array();
    for (const double t : report.dfe_taps_applied) taps.push_back(t);
    j.set("dfe_taps_applied", std::move(taps));
    j.set("dfe_burst_factor", report.dfe_burst_factor);
  }
  j.set("cross_checked", report.cross_checked);
  j.set("mc_ber", report.mc_ber);
  j.set("band_low", report.band_low);
  j.set("band_high", report.band_high);
  j.set("consistent", report.consistent);
  return j;
}

stat::StatReport stat_report_from_json(const Json& json,
                                       const std::string& path) {
  if (!json.is_object()) fail(path, "expected stat report object");
  stat::StatReport report;
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "target_ber") {
      report.target_ber = get_double(value, p);
    } else if (key == "sigma_v") {
      report.sigma_v = get_double(value, p);
    } else if (key == "threshold_v") {
      report.threshold_v = get_double(value, p);
    } else if (key == "main_cursor_v") {
      report.main_cursor_v = get_double(value, p);
    } else if (key == "isi_cursors") {
      report.isi_cursors = get_int32(value, p);
    } else if (key == "bathtub_ber") {
      report.bathtub_ber = get_double_array(value, p);
    } else if (key == "contour_high_v") {
      report.contour_high_v = get_double_array(value, p);
    } else if (key == "contour_low_v") {
      report.contour_low_v = get_double_array(value, p);
    } else if (key == "best_phase_ui") {
      report.best_phase_ui = get_double(value, p);
    } else if (key == "min_ber") {
      report.min_ber = get_double(value, p);
    } else if (key == "timing_margin_ui") {
      report.timing_margin_ui = get_double(value, p);
    } else if (key == "eye_height_v") {
      report.eye_height_v = get_double(value, p);
    } else if (key == "voltage_margin_v") {
      report.voltage_margin_v = get_double(value, p);
    } else if (key == "pam4_eye_height_v") {
      report.pam4_eye_height_v = get_double_array(value, p);
    } else if (key == "pam4_voltage_margin_v") {
      report.pam4_voltage_margin_v = get_double_array(value, p);
    } else if (key == "pam4_eye_ber") {
      report.pam4_eye_ber = get_double_array(value, p);
    } else if (key == "dfe_taps_applied") {
      report.dfe_taps_applied = get_double_array(value, p);
    } else if (key == "dfe_burst_factor") {
      report.dfe_burst_factor = get_double(value, p);
    } else if (key == "cross_checked") {
      report.cross_checked = get_bool(value, p);
    } else if (key == "mc_ber") {
      report.mc_ber = get_double(value, p);
    } else if (key == "band_low") {
      report.band_low = get_double(value, p);
    } else if (key == "band_high") {
      report.band_high = get_double(value, p);
    } else if (key == "consistent") {
      report.consistent = get_bool(value, p);
    } else {
      fail(p, "unknown StatReport field '" + key + "'");
    }
  }
  return report;
}

Json to_json(const RunReport& report) {
  Json j = Json::object();
  j.set("schema_version", report.schema_version);
  j.set("spec", to_json(report.spec));
  j.set("aligned", report.aligned);
  j.set("bits", report.bits);
  j.set("errors", report.errors);
  j.set("ber", report.ber);
  j.set("ber_upper_bound", report.ber_upper_bound);
  j.set("confidence_level", report.confidence_level);
  j.set("cdr_decision_phase", report.cdr_decision_phase);
  j.set("cdr_phase_updates", report.cdr_phase_updates);
  j.set("rx_swing_pp", report.rx_swing_pp);
  j.set("decision_threshold", report.decision_threshold);
  Json eye = Json::object();
  eye.set("eye_height", report.eye.eye_height);
  eye.set("eye_width_ui", report.eye.eye_width_ui);
  eye.set("low_rail", report.eye.low_rail);
  eye.set("high_rail", report.eye.high_rail);
  eye.set("best_phase_ui", report.eye.best_phase_ui);
  j.set("eye", std::move(eye));
  if (report.stat) j.set("stat", to_json(*report.stat));
  // Link-training outcome: serialized only for trained runs, so fixed-EQ
  // reports keep their pre-training bytes.
  if (report.training) {
    const core::TrainingResult& t = *report.training;
    Json tj = Json::object();
    Json taps = Json::array();
    for (const double tap : t.dfe_taps) taps.push_back(tap);
    tj.set("dfe_taps", std::move(taps));
    tj.set("tx_ffe_deemphasis", t.tx_ffe_deemphasis);
    tj.set("rx_ctle_boost_db", t.rx_ctle_boost_db);
    tj.set("amplitude", t.amplitude);
    tj.set("training_uis", t.training_uis);
    tj.set("passes", t.passes);
    j.set("training", std::move(tj));
  }
  return j;
}

RunReport run_report_from_json(const Json& json, const std::string& path) {
  if (!json.is_object()) fail(path, "expected run report object");
  RunReport report;
  report.schema_version = 1;  // absent means version 1
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "schema_version") {
      report.schema_version = get_int32(value, p);
    } else if (key == "spec") {
      report.spec = link_spec_from_json(value, p);
    } else if (key == "aligned") {
      report.aligned = get_bool(value, p);
    } else if (key == "bits") {
      report.bits = get_uint(value, p);
    } else if (key == "errors") {
      report.errors = get_uint(value, p);
    } else if (key == "ber") {
      report.ber = get_double(value, p);
    } else if (key == "ber_upper_bound") {
      report.ber_upper_bound = get_double(value, p);
    } else if (key == "confidence_level") {
      report.confidence_level = get_double(value, p);
    } else if (key == "cdr_decision_phase") {
      report.cdr_decision_phase = get_int32(value, p);
    } else if (key == "cdr_phase_updates") {
      report.cdr_phase_updates = get_uint(value, p);
    } else if (key == "rx_swing_pp") {
      report.rx_swing_pp = get_double(value, p);
    } else if (key == "decision_threshold") {
      report.decision_threshold = get_double(value, p);
    } else if (key == "eye") {
      if (!value.is_object()) fail(p, "expected eye metrics object");
      for (const auto& [eye_key, eye_value] : value.as_object()) {
        const std::string ep = p + "." + eye_key;
        if (eye_key == "eye_height") {
          report.eye.eye_height = get_double(eye_value, ep);
        } else if (eye_key == "eye_width_ui") {
          report.eye.eye_width_ui = get_double(eye_value, ep);
        } else if (eye_key == "low_rail") {
          report.eye.low_rail = get_double(eye_value, ep);
        } else if (eye_key == "high_rail") {
          report.eye.high_rail = get_double(eye_value, ep);
        } else if (eye_key == "best_phase_ui") {
          report.eye.best_phase_ui = get_double(eye_value, ep);
        } else {
          fail(ep, "unknown eye metric field '" + eye_key + "'");
        }
      }
    } else if (key == "stat") {
      report.stat = stat_report_from_json(value, p);
    } else if (key == "training") {
      if (!value.is_object()) fail(p, "expected training object");
      core::TrainingResult t;
      for (const auto& [tkey, tvalue] : value.as_object()) {
        const std::string tp = p + "." + tkey;
        if (tkey == "dfe_taps") {
          t.dfe_taps = get_double_array(tvalue, tp);
        } else if (tkey == "tx_ffe_deemphasis") {
          t.tx_ffe_deemphasis = get_double(tvalue, tp);
        } else if (tkey == "rx_ctle_boost_db") {
          t.rx_ctle_boost_db = get_double(tvalue, tp);
        } else if (tkey == "amplitude") {
          t.amplitude = get_double(tvalue, tp);
        } else if (tkey == "training_uis") {
          t.training_uis = get_int32(tvalue, tp);
        } else if (tkey == "passes") {
          t.passes = get_int32(tvalue, tp);
        } else {
          fail(tp, "unknown training field '" + tkey + "'");
        }
      }
      report.training = std::move(t);
    } else {
      fail(p, "unknown RunReport field '" + key + "'");
    }
  }
  return report;
}

Json to_json(const opt::OptimizeReport& report) {
  Json j = Json::object();
  j.set("schema_version", report.schema_version);
  j.set("spec", to_json(report.spec));
  j.set("target_ber", report.target_ber);
  j.set("baseline_min_ber", report.baseline_min_ber);
  j.set("baseline_met", report.baseline_met);
  Json taps = Json::array();
  for (const double t : report.dfe_taps) taps.push_back(t);
  j.set("dfe_taps", std::move(taps));
  j.set("tx_ffe_deemphasis", report.tx_ffe_deemphasis);
  j.set("rx_ctle_boost_db", report.rx_ctle_boost_db);
  j.set("winner_min_ber", report.winner_min_ber);
  j.set("winner_voltage_margin_v", report.winner_voltage_margin_v);
  j.set("met", report.met);
  j.set("evaluations", report.evaluations);
  j.set("passes", report.passes);
  j.set("cross_checked", report.cross_checked);
  j.set("mc_bits", report.mc_bits);
  j.set("mc_errors", report.mc_errors);
  j.set("mc_ber", report.mc_ber);
  j.set("mc_consistent", report.mc_consistent);
  return j;
}

opt::OptimizeReport optimize_report_from_json(const Json& json,
                                              const std::string& path) {
  if (!json.is_object()) fail(path, "expected optimize report object");
  opt::OptimizeReport report;
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "schema_version") {
      report.schema_version = get_int32(value, p);
    } else if (key == "spec") {
      report.spec = link_spec_from_json(value, p);
    } else if (key == "target_ber") {
      report.target_ber = get_double(value, p);
    } else if (key == "baseline_min_ber") {
      report.baseline_min_ber = get_double(value, p);
    } else if (key == "baseline_met") {
      report.baseline_met = get_bool(value, p);
    } else if (key == "dfe_taps") {
      report.dfe_taps = get_double_array(value, p);
    } else if (key == "tx_ffe_deemphasis") {
      report.tx_ffe_deemphasis = get_double(value, p);
    } else if (key == "rx_ctle_boost_db") {
      report.rx_ctle_boost_db = get_double(value, p);
    } else if (key == "winner_min_ber") {
      report.winner_min_ber = get_double(value, p);
    } else if (key == "winner_voltage_margin_v") {
      report.winner_voltage_margin_v = get_double(value, p);
    } else if (key == "met") {
      report.met = get_bool(value, p);
    } else if (key == "evaluations") {
      report.evaluations = get_int32(value, p);
    } else if (key == "passes") {
      report.passes = get_int32(value, p);
    } else if (key == "cross_checked") {
      report.cross_checked = get_bool(value, p);
    } else if (key == "mc_bits") {
      report.mc_bits = get_uint(value, p);
    } else if (key == "mc_errors") {
      report.mc_errors = get_uint(value, p);
    } else if (key == "mc_ber") {
      report.mc_ber = get_double(value, p);
    } else if (key == "mc_consistent") {
      report.mc_consistent = get_bool(value, p);
    } else {
      fail(p, "unknown OptimizeReport field '" + key + "'");
    }
  }
  return report;
}

std::string check_channel_kinds(const ChannelSpec& spec,
                                const std::string& path) {
  const ChannelFactory& factory = ChannelFactory::instance();
  if (!factory.knows(spec.kind)) {
    return path + ".kind: " + factory.unknown_kind_message(spec.kind);
  }
  if (spec.kind == "composite") {
    for (std::size_t i = 0; i < spec.stages.size(); ++i) {
      auto err = check_channel_kinds(
          spec.stages[i], path + ".stages[" + std::to_string(i) + "]");
      if (!err.empty()) return err;
    }
  }
  return {};
}

std::uint64_t spec_content_hash(const LinkSpec& spec) {
  // Seed is already a serialized field, but mix it in explicitly as well
  // so the hash survives any future decision to hoist seeds out of the
  // canonical serialization.
  std::uint64_t h = util::fnv1a64(to_json(spec).dump());
  h ^= spec.seed + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::string validate_spec_with_paths(const LinkSpec& spec,
                                     const std::string& path) {
  if (const LinkSpec::Issue issue = spec.first_issue(); !issue.ok()) {
    return path + "." + issue.field + ": " + issue.message;
  }
  return check_channel_kinds(spec.channel, path + ".channel");
}

}  // namespace serdes::api
