// JSON round-trip for the declarative API types.
//
// A `LinkSpec` is plain data, so a scenario is equally at home as a JSON
// file: `serdes_cli`, the sweep engine and CI all exchange specs and
// reports through these functions.  Parsing is strict — unknown fields
// and type mismatches are errors — and every diagnostic names the JSON
// path of the offending member ("$.channel.stages[1].kind: ...") with a
// "did you mean" hint for plausible typos, so a fat-fingered spec file
// fails with the fix in the message.
//
// Serialization is deterministic (field order fixed, shortest-round-trip
// numbers) and `parse(serialize(parse(x)))` is a fixed point.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "api/link_spec.h"
#include "api/simulator.h"
#include "opt/optimizer.h"
#include "stat/stat_report.h"
#include "util/json.h"

namespace serdes::api {

/// Serializes a channel spec, emitting only the fields its kind reads
/// (unrecognized kinds — runtime registrations — emit every field).
[[nodiscard]] util::Json to_json(const ChannelSpec& spec);

/// Serializes every LinkSpec field in declaration order.
[[nodiscard]] util::Json to_json(const LinkSpec& spec);

/// Serializes a statistical analysis result (bathtub, contours, margins,
/// cross-check verdict).
[[nodiscard]] util::Json to_json(const stat::StatReport& report);

/// Serializes the report summary: the spec plus BER, lock and eye
/// metrics, and — when the scenario ran the stat engine — the StatReport
/// under "stat".  Captured waveforms are intentionally omitted (reports
/// are for sweeps and CI artifacts, not bulk sample storage).
[[nodiscard]] util::Json to_json(const RunReport& report);

/// Serializes an optimizer outcome (baseline, winner knobs, search
/// accounting, MC cross-check verdict).  Deterministic like every other
/// report serialization — the optimize golden test pins the bytes.
[[nodiscard]] util::Json to_json(const opt::OptimizeReport& report);

/// Parsers: `path` is the JSON path of `json` within its document, used
/// to prefix error messages.  Throw util::JsonError.
[[nodiscard]] ChannelSpec channel_spec_from_json(
    const util::Json& json, const std::string& path = "$.channel");
[[nodiscard]] LinkSpec link_spec_from_json(const util::Json& json,
                                           const std::string& path = "$");
[[nodiscard]] RunReport run_report_from_json(const util::Json& json,
                                             const std::string& path = "$");
[[nodiscard]] stat::StatReport stat_report_from_json(
    const util::Json& json, const std::string& path = "$.stat");
[[nodiscard]] opt::OptimizeReport optimize_report_from_json(
    const util::Json& json, const std::string& path = "$");

/// Applies one field to a spec — the shared primitive behind whole-spec
/// parsing and sweep-axis application.  `field` may be a top-level
/// LinkSpec member, "channel" (value is a ChannelSpec object), or a
/// dotted channel member ("channel.loss_db", "channel.fir_taps", ...).
/// Throws util::JsonError with `path` context on unknown fields (with a
/// did-you-mean hint) or type mismatches.
void apply_link_field(LinkSpec& spec, std::string_view field,
                      const util::Json& value, const std::string& path);

/// Content hash of a fully-expanded scenario spec: FNV-1a64 over the
/// canonical compact JSON serialization, mixed with the seed.  Two specs
/// hash equal exactly when they would produce the same simulation, which
/// makes this the result store's cache key — a store row is reusable iff
/// its spec hash matches the cell being computed.
[[nodiscard]] std::uint64_t spec_content_hash(const LinkSpec& spec);

/// Empty when every kind in the channel tree is registered with
/// ChannelFactory; otherwise a message naming the JSON path of the
/// offending kind plus the factory's did-you-mean hint.
[[nodiscard]] std::string check_channel_kinds(
    const ChannelSpec& spec, const std::string& path = "$.channel");

/// Full file-context validation: LinkSpec::first_issue() plus channel
/// kind registration, with the finding prefixed by its JSON path
/// ("$.noise_rms_v: must be non-negative").  Empty when runnable.
[[nodiscard]] std::string validate_spec_with_paths(
    const LinkSpec& spec, const std::string& path = "$");

}  // namespace serdes::api
