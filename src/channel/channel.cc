#include "channel/channel.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace serdes::channel {

// ---- Channel (batch wrapper over the streaming form) ------------------------

analog::Waveform Channel::transmit(const analog::Waveform& in) const {
  analog::Waveform out = in;
  if (!out.empty()) {
    const auto stream = open_stream();
    double* data = out.samples().data();
    stream->transmit_block(data, data, out.size());
  }
  return out;
}

// ---- FlatChannel ------------------------------------------------------------

namespace {

class FlatStream final : public Channel::Stream {
 public:
  explicit FlatStream(double gain) : gain_(gain) {}

  void transmit_block(const double* in, double* out,
                      std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i] * gain_;
  }

  void reset() override {}

 private:
  double gain_;
};

}  // namespace

FlatChannel::FlatChannel(util::Decibel loss)
    : loss_(loss), gain_(util::db_to_amplitude(util::decibels(-loss.value()))) {
  if (loss.value() < 0.0) {
    throw std::invalid_argument("FlatChannel: loss must be >= 0 dB");
  }
}

std::unique_ptr<Channel::Stream> FlatChannel::open_stream() const {
  return std::make_unique<FlatStream>(gain_);
}

double FlatChannel::attenuation_at(util::Hertz) const { return gain_; }

// ---- RcChannel --------------------------------------------------------------

namespace {

class RcStream final : public Channel::Stream {
 public:
  RcStream(double dc_gain, util::Hertz pole, util::Second dt)
      : dc_gain_(dc_gain), lpf_(pole, dt) {}

  void transmit_block(const double* in, double* out,
                      std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = lpf_.step(in[i] * dc_gain_);
  }

  void reset() override { lpf_.reset(); }

 private:
  double dc_gain_;
  analog::OnePoleLowPass lpf_;
};

}  // namespace

RcChannel::RcChannel(util::Hertz pole, util::Second sample_period,
                     util::Decibel dc_loss)
    : pole_(pole),
      dt_(sample_period),
      dc_gain_(util::db_to_amplitude(util::decibels(-dc_loss.value()))) {}

std::unique_ptr<Channel::Stream> RcChannel::open_stream() const {
  return std::make_unique<RcStream>(dc_gain_, pole_, dt_);
}

double RcChannel::attenuation_at(util::Hertz f) const {
  const double ratio = f.value() / pole_.value();
  return dc_gain_ / std::sqrt(1.0 + ratio * ratio);
}

// ---- LossyLineChannel -------------------------------------------------------

namespace {
constexpr double kRefFreq = 1e9;  // f0 for the loss coefficients

class LossyLineStream final : public Channel::Stream {
 public:
  LossyLineStream(double flat_gain, util::Hertz pole1, util::Hertz pole2,
                  util::Second dt)
      : flat_gain_(flat_gain), p1_(pole1, dt), p2_(pole2, dt) {}

  void transmit_block(const double* in, double* out,
                      std::size_t n) override {
    // Same arithmetic as interleaved per-sample stepping: each filter's
    // output depends only on its own input sequence, so running the gain
    // and the two poles as three span passes is bit-identical — and each
    // pass keeps its coefficients and state in registers.
    const double g = flat_gain_;
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i] * g;
    p1_.process_block(out, out, n);
    p2_.process_block(out, out, n);
  }

  void reset() override {
    p1_.reset();
    p2_.reset();
  }

 private:
  double flat_gain_;
  analog::OnePoleLowPass p1_;
  analog::OnePoleLowPass p2_;
};

/// Stream over the dsp block-convolution engine (shared by the FIR channel
/// and the dsp-mode lossy line).
class BlockFirStream final : public Channel::Stream {
 public:
  BlockFirStream(const std::vector<double>& taps, std::size_t stride,
                 bool allow_fft)
      : fir_(taps, stride, dsp::BlockFir::Options{allow_fft}) {}

  void transmit_block(const double* in, double* out,
                      std::size_t n) override {
    fir_.process(in, out, n);
  }

  void reset() override { fir_.reset(); }

 private:
  dsp::BlockFir fir_;
};

/// dsp-mode lossy line: commits to a kernel on the first block.  Blocks
/// big enough for the overlap-save crossover run the precomputed impulse
/// through the FFT engine; otherwise the stream falls back to the exact
/// 2-MAC IIR cascade (running the ~1000-tap impulse directly would be
/// orders of magnitude slower than the recurrence it replaces).  The
/// choice is locked for the stream's lifetime because the two kernels
/// carry incompatible state — and a stream's block size is fixed apart
/// from the final partial block, which either kernel handles.
class LossyLineDspStream final : public Channel::Stream {
 public:
  LossyLineDspStream(const std::vector<double>& impulse, double flat_gain,
                     util::Hertz pole1, util::Hertz pole2, util::Second dt)
      : fir_(impulse, 1, dsp::BlockFir::Options{/*allow_fft=*/true}),
        flat_gain_(flat_gain),
        p1_(pole1, dt),
        p2_(pole2, dt) {}

  void transmit_block(const double* in, double* out,
                      std::size_t n) override {
    if (n == 0) return;
    if (!decided_) {
      use_fir_ = dsp::BlockFir::use_fft(fir_.taps().size(), n);
      decided_ = true;
    }
    if (use_fir_) {
      fir_.process(in, out, n);
      return;
    }
    const double g = flat_gain_;
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i] * g;
    p1_.process_block(out, out, n);
    p2_.process_block(out, out, n);
  }

  void reset() override {
    fir_.reset();
    p1_.reset();
    p2_.reset();
    decided_ = false;
    use_fir_ = false;
  }

 private:
  dsp::BlockFir fir_;
  double flat_gain_;
  analog::OnePoleLowPass p1_;
  analog::OnePoleLowPass p2_;
  bool decided_ = false;
  bool use_fir_ = false;
};

}  // namespace

LossyLineChannel::LossyLineChannel(const Params& params,
                                   util::Second sample_period, bool dsp)
    : params_(params), dt_(sample_period), dsp_(dsp) {
  flat_gain_ =
      util::db_to_amplitude(util::decibels(-params.dc_loss_db));
  // Fit two real poles so the cascade matches the analytic loss at f0 and
  // f0/2 (beyond the flat dc term).  |one-pole| dB at f: 10*log10(1+(f/p)^2).
  // We split the frequency-dependent loss evenly between the two poles at
  // f0 and solve each pole frequency.
  const double loss_f0 = params.skin_loss_db_at_1ghz +
                         params.dielectric_loss_db_at_1ghz;  // dB at 1 GHz
  const double per_pole = std::max(0.1, loss_f0 / 2.0);
  // 10*log10(1+(f0/p)^2) = per_pole  =>  p = f0 / sqrt(10^(per_pole/10)-1)
  const double x = std::sqrt(std::pow(10.0, per_pole / 10.0) - 1.0);
  pole1_ = util::hertz(kRefFreq / x);
  // Second pole slightly above the first to mimic the gentler sqrt(f) skin
  // region below f0.
  pole2_ = util::hertz(1.6 * kRefFreq / x);
  flat_gain_ *= util::db_to_amplitude(util::decibels(
      -(loss_f0 - 10.0 * std::log10(1.0 + x * x) -
        10.0 * std::log10(1.0 + (x / 1.6) * (x / 1.6)))));

  if (dsp_) {
    // Lower the gain + two-pole cascade into its impulse response once, at
    // construction (not per stream, not per transmit): run a unit impulse
    // through fresh filters until the tail stays below 1e-14 of the peak
    // for a full consecutive run.  The geometric pole decay makes the
    // truncated energy far below the engine's 1e-12 RMS contract.
    analog::OnePoleLowPass p1(pole1_, dt_);
    analog::OnePoleLowPass p2(pole2_, dt_);
    constexpr std::size_t kMaxTaps = std::size_t{1} << 16;
    constexpr std::size_t kQuietRun = 64;
    double peak = 0.0;
    std::size_t quiet = 0;
    for (std::size_t k = 0; k < kMaxTaps; ++k) {
      const double h = p2.step(p1.step(k == 0 ? flat_gain_ : 0.0));
      impulse_.push_back(h);
      peak = std::max(peak, std::abs(h));
      quiet = std::abs(h) < 1e-14 * peak ? quiet + 1 : 0;
      if (quiet >= kQuietRun) break;
    }
    if (quiet < kQuietRun) {
      // The response didn't decay within the tap budget (poles far below
      // the sample rate): truncating here would break the 1e-12 RMS
      // contract, so this channel stays on the exact IIR recurrence.
      impulse_.clear();
    } else {
      impulse_.resize(impulse_.size() - std::min(quiet, impulse_.size() - 1));
    }
  }
}

std::unique_ptr<Channel::Stream> LossyLineChannel::open_stream() const {
  if (dsp_ && !impulse_.empty()) {
    return std::make_unique<LossyLineDspStream>(impulse_, flat_gain_, pole1_,
                                                pole2_, dt_);
  }
  return std::make_unique<LossyLineStream>(flat_gain_, pole1_, pole2_, dt_);
}

double LossyLineChannel::attenuation_at(util::Hertz f) const {
  const double r1 = f.value() / pole1_.value();
  const double r2 = f.value() / pole2_.value();
  return flat_gain_ / std::sqrt((1.0 + r1 * r1) * (1.0 + r2 * r2));
}

LossyLineChannel::Params LossyLineChannel::fit(util::Decibel loss,
                                               util::Hertz f) {
  // Keep the default skin/dielectric proportions, scale all coefficients so
  // the analytic loss model hits `loss` at `f`.
  Params p;
  const double fr = f.value() / kRefFreq;
  const double base = p.dc_loss_db + p.skin_loss_db_at_1ghz * std::sqrt(fr) +
                      p.dielectric_loss_db_at_1ghz * fr;
  const double scale = loss.value() / base;
  p.dc_loss_db *= scale;
  p.skin_loss_db_at_1ghz *= scale;
  p.dielectric_loss_db_at_1ghz *= scale;
  return p;
}

// ---- FirChannel -------------------------------------------------------------

FirChannel::FirChannel(std::vector<double> taps, int samples_per_tap,
                       bool dsp)
    : taps_(std::move(taps)), samples_per_tap_(samples_per_tap), dsp_(dsp) {
  if (taps_.empty()) throw std::invalid_argument("FirChannel: no taps");
  if (samples_per_tap < 1) {
    throw std::invalid_argument("FirChannel: samples_per_tap must be >= 1");
  }
}

std::unique_ptr<Channel::Stream> FirChannel::open_stream() const {
  // The UI spacing stays implicit as the kernel stride — no zero-stuffed
  // expansion per stream (or per transmit, which opens a stream each call).
  return std::make_unique<BlockFirStream>(
      taps_, static_cast<std::size_t>(samples_per_tap_), dsp_);
}

double FirChannel::attenuation_at(util::Hertz f) const {
  // |H(e^{jw})| with taps spaced by one UI; the caller supplies f relative
  // to the tap rate via samples_per_tap during construction, so here we
  // interpret taps as spaced at 1 ns (1 GHz tap rate) for a standalone
  // estimate — channels built from measured taps should be queried in the
  // time domain instead.
  const double tap_period = 1e-9 * samples_per_tap_;
  double re = 0.0;
  double im = 0.0;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const double w = 2.0 * std::numbers::pi * f.value() * tap_period *
                     static_cast<double>(k);
    re += taps_[k] * std::cos(w);
    im -= taps_[k] * std::sin(w);
  }
  return std::sqrt(re * re + im * im);
}

// ---- CompositeChannel -------------------------------------------------------

namespace {

class CompositeStream final : public Channel::Stream {
 public:
  explicit CompositeStream(std::vector<std::unique_ptr<Channel::Stream>> kids)
      : children_(std::move(kids)) {}

  void transmit_block(const double* in, double* out,
                      std::size_t n) override {
    if (children_.empty()) {
      if (out != in) {
        for (std::size_t i = 0; i < n; ++i) out[i] = in[i];
      }
      return;
    }
    children_.front()->transmit_block(in, out, n);
    for (std::size_t k = 1; k < children_.size(); ++k) {
      children_[k]->transmit_block(out, out, n);
    }
  }

  void reset() override {
    for (auto& c : children_) c->reset();
  }

 private:
  std::vector<std::unique_ptr<Channel::Stream>> children_;
};

}  // namespace

void CompositeChannel::add(std::unique_ptr<Channel> stage) {
  stages_.push_back(std::move(stage));
}

std::unique_ptr<Channel::Stream> CompositeChannel::open_stream() const {
  std::vector<std::unique_ptr<Stream>> kids;
  kids.reserve(stages_.size());
  for (const auto& s : stages_) kids.push_back(s->open_stream());
  return std::make_unique<CompositeStream>(std::move(kids));
}

double CompositeChannel::attenuation_at(util::Hertz f) const {
  double g = 1.0;
  for (const auto& s : stages_) g *= s->attenuation_at(f);
  return g;
}

}  // namespace serdes::channel
