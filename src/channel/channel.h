// Serial-link channel models.
//
// The paper evaluates the link against a 34 dB-loss channel (Fig 8) and
// sweeps loss/frequency in Fig 9; the Discussion section motivates 1-5 dB
// short-reach chiplet channels (EMIB) and PCIe-class traces.  This module
// provides composable channel models covering that whole range:
//   * FlatChannel        — frequency-independent attenuation
//   * RcChannel          — single-pole board trace
//   * LossyLineChannel   — skin-effect (sqrt(f)) + dielectric (f) loss line
//   * FirChannel         — explicit tap response (measured-channel style)
//   * CompositeChannel   — cascade of any of the above
// plus AWGN and sinusoidal-interference noise injection.
//
// Every channel supports two execution forms over the same arithmetic:
//   * streaming — `open_stream()` returns a `Channel::Stream` whose
//     `transmit_block` processes fixed-size sample blocks while carrying
//     filter state (IIR memories, FIR delay lines, child streams) across
//     calls, so a waveform chunked at any block size produces bit-identical
//     output;
//   * batch — `transmit()` is a thin wrapper that opens a stream and pushes
//     the whole waveform through as a single block.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "analog/filters.h"
#include "analog/waveform.h"
#include "dsp/convolution.h"
#include "util/random.h"
#include "util/units.h"

namespace serdes::channel {

/// Interface: transforms the transmitted waveform into the received one.
class Channel {
 public:
  /// Stateful block-wise transmission through one channel instance.  A
  /// stream starts from quiescent (zero-state) filters; feeding it a
  /// waveform in blocks of any size yields exactly the samples `transmit`
  /// produces for the whole waveform.
  class Stream {
   public:
    virtual ~Stream() = default;

    /// Processes `n` samples, carrying state across calls.  `in` and `out`
    /// may alias (in-place operation is supported by every model).
    virtual void transmit_block(const double* in, double* out,
                                std::size_t n) = 0;

    /// Returns the stream to its start-of-stream (zero) state.
    virtual void reset() = 0;
  };

  virtual ~Channel() = default;

  /// Opens a fresh streaming transmission (state at zero).
  [[nodiscard]] virtual std::unique_ptr<Stream> open_stream() const = 0;

  /// Propagates `in` through the channel: a thin wrapper that pushes the
  /// whole waveform through `open_stream()` as one block.
  [[nodiscard]] analog::Waveform transmit(const analog::Waveform& in) const;

  /// Amplitude attenuation (|H|, linear <= 1) at the given frequency.
  [[nodiscard]] virtual double attenuation_at(util::Hertz f) const = 0;

  /// Loss in dB (positive number) at the given frequency.
  [[nodiscard]] util::Decibel loss_at(util::Hertz f) const {
    return util::Decibel{-util::amplitude_db(attenuation_at(f)).value()};
  }
};

/// Frequency-flat attenuator (the paper's "34 dB channel loss" abstraction).
class FlatChannel : public Channel {
 public:
  /// `loss` is a positive dB number (34 => output = input / 10^(34/20)).
  explicit FlatChannel(util::Decibel loss);

  [[nodiscard]] std::unique_ptr<Stream> open_stream() const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  [[nodiscard]] util::Decibel loss() const { return loss_; }

 private:
  util::Decibel loss_;
  double gain_;
};

/// Single-pole RC low-pass channel (short board trace / package route).
class RcChannel : public Channel {
 public:
  RcChannel(util::Hertz pole, util::Second sample_period,
            util::Decibel dc_loss = util::decibels(0.0));

  [[nodiscard]] std::unique_ptr<Stream> open_stream() const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

 private:
  util::Hertz pole_;
  util::Second dt_;
  double dc_gain_;
};

/// Lossy transmission line: |H(f)| = 10^-(a0 + a_s*sqrt(f/f0) + a_d*(f/f0))/20
/// with f0 = 1 GHz.  a_s models skin effect, a_d dielectric loss.  The
/// time-domain response is approximated by a cascade of a flat attenuator
/// and two biquad poles fitted so the loss matches at dc, f0/2 and f0.
///
/// With `dsp` enabled the pole cascade is lowered once, at construction,
/// into its truncated impulse response (relative tail below 1e-14) and
/// streamed through the dsp block-convolution engine — overlap-save FFT
/// above the crossover.  Waveforms match the exact IIR path to <= 1e-12
/// RMS; the IIR recurrence stays the default.
class LossyLineChannel : public Channel {
 public:
  struct Params {
    double dc_loss_db = 2.0;          // a0
    double skin_loss_db_at_1ghz = 18.0;    // a_s
    double dielectric_loss_db_at_1ghz = 14.0;  // a_d
  };

  LossyLineChannel(const Params& params, util::Second sample_period,
                   bool dsp = false);

  [[nodiscard]] std::unique_ptr<Stream> open_stream() const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  /// Scales the loss coefficients so that total loss at `f` equals `loss`.
  static Params fit(util::Decibel loss, util::Hertz f);

  [[nodiscard]] const Params& params() const { return params_; }
  /// Taps of the dsp-mode impulse response.  Empty when dsp is off — or
  /// when the response refused to decay within the tap budget, in which
  /// case streams stay on the exact IIR recurrence rather than break the
  /// 1e-12 RMS contract by truncating.
  [[nodiscard]] const std::vector<double>& impulse_taps() const {
    return impulse_;
  }

 private:
  Params params_;
  util::Second dt_;
  double flat_gain_;
  util::Hertz pole1_;
  util::Hertz pole2_;
  bool dsp_ = false;
  std::vector<double> impulse_;  // precomputed once when dsp_ is on
};

/// Explicit impulse-response channel given as UI-spaced taps (pre-cursor,
/// main, post-cursors) — the standard way measured backplane channels are
/// abstracted in link analysis.
///
/// Taps are held in strided form (tap k at lag k*samples_per_tap), fixed
/// once at construction: streams index the zero-stuffed lags implicitly
/// instead of expanding — and re-expanding per transmit — a dense vector.
/// With `dsp` enabled the stream may take the overlap-save FFT path above
/// the crossover (<= 1e-12 RMS vs direct); the direct kernel, which is
/// bit-identical to per-sample stepping, stays the default.
class FirChannel : public Channel {
 public:
  FirChannel(std::vector<double> taps, int samples_per_tap,
             bool dsp = false);

  [[nodiscard]] std::unique_ptr<Stream> open_stream() const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

 private:
  std::vector<double> taps_;
  int samples_per_tap_;
  bool dsp_ = false;
};

/// Cascade of channels applied in order.
class CompositeChannel : public Channel {
 public:
  void add(std::unique_ptr<Channel> stage);

  [[nodiscard]] std::unique_ptr<Stream> open_stream() const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

 private:
  std::vector<std::unique_ptr<Channel>> stages_;
};

}  // namespace serdes::channel
