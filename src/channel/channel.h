// Serial-link channel models.
//
// The paper evaluates the link against a 34 dB-loss channel (Fig 8) and
// sweeps loss/frequency in Fig 9; the Discussion section motivates 1-5 dB
// short-reach chiplet channels (EMIB) and PCIe-class traces.  This module
// provides composable channel models covering that whole range:
//   * FlatChannel        — frequency-independent attenuation
//   * RcChannel          — single-pole board trace
//   * LossyLineChannel   — skin-effect (sqrt(f)) + dielectric (f) loss line
//   * FirChannel         — explicit tap response (measured-channel style)
//   * CompositeChannel   — cascade of any of the above
// plus AWGN and sinusoidal-interference noise injection.
#pragma once

#include <memory>
#include <vector>

#include "analog/filters.h"
#include "analog/waveform.h"
#include "util/random.h"
#include "util/units.h"

namespace serdes::channel {

/// Interface: transforms the transmitted waveform into the received one.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Propagates `in` through the channel.
  [[nodiscard]] virtual analog::Waveform transmit(
      const analog::Waveform& in) const = 0;

  /// Amplitude attenuation (|H|, linear <= 1) at the given frequency.
  [[nodiscard]] virtual double attenuation_at(util::Hertz f) const = 0;

  /// Loss in dB (positive number) at the given frequency.
  [[nodiscard]] util::Decibel loss_at(util::Hertz f) const {
    return util::Decibel{-util::amplitude_db(attenuation_at(f)).value()};
  }
};

/// Frequency-flat attenuator (the paper's "34 dB channel loss" abstraction).
class FlatChannel : public Channel {
 public:
  /// `loss` is a positive dB number (34 => output = input / 10^(34/20)).
  explicit FlatChannel(util::Decibel loss);

  [[nodiscard]] analog::Waveform transmit(
      const analog::Waveform& in) const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  [[nodiscard]] util::Decibel loss() const { return loss_; }

 private:
  util::Decibel loss_;
  double gain_;
};

/// Single-pole RC low-pass channel (short board trace / package route).
class RcChannel : public Channel {
 public:
  RcChannel(util::Hertz pole, util::Second sample_period,
            util::Decibel dc_loss = util::decibels(0.0));

  [[nodiscard]] analog::Waveform transmit(
      const analog::Waveform& in) const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

 private:
  util::Hertz pole_;
  util::Second dt_;
  double dc_gain_;
};

/// Lossy transmission line: |H(f)| = 10^-(a0 + a_s*sqrt(f/f0) + a_d*(f/f0))/20
/// with f0 = 1 GHz.  a_s models skin effect, a_d dielectric loss.  The
/// time-domain response is approximated by a cascade of a flat attenuator
/// and two biquad poles fitted so the loss matches at dc, f0/2 and f0.
class LossyLineChannel : public Channel {
 public:
  struct Params {
    double dc_loss_db = 2.0;          // a0
    double skin_loss_db_at_1ghz = 18.0;    // a_s
    double dielectric_loss_db_at_1ghz = 14.0;  // a_d
  };

  LossyLineChannel(const Params& params, util::Second sample_period);

  [[nodiscard]] analog::Waveform transmit(
      const analog::Waveform& in) const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  /// Scales the loss coefficients so that total loss at `f` equals `loss`.
  static Params fit(util::Decibel loss, util::Hertz f);

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  util::Second dt_;
  double flat_gain_;
  util::Hertz pole1_;
  util::Hertz pole2_;
};

/// Explicit impulse-response channel given as UI-spaced taps (pre-cursor,
/// main, post-cursors) — the standard way measured backplane channels are
/// abstracted in link analysis.
class FirChannel : public Channel {
 public:
  FirChannel(std::vector<double> taps, int samples_per_tap);

  [[nodiscard]] analog::Waveform transmit(
      const analog::Waveform& in) const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

 private:
  std::vector<double> taps_;
  int samples_per_tap_;
};

/// Cascade of channels applied in order.
class CompositeChannel : public Channel {
 public:
  void add(std::unique_ptr<Channel> stage);

  [[nodiscard]] analog::Waveform transmit(
      const analog::Waveform& in) const override;
  [[nodiscard]] double attenuation_at(util::Hertz f) const override;

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

 private:
  std::vector<std::unique_ptr<Channel>> stages_;
};

}  // namespace serdes::channel
