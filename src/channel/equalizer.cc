#include "channel/equalizer.h"

#include <cmath>
#include <stdexcept>

#include "dsp/convolution.h"

namespace serdes::channel {

TxFfe::TxFfe(std::vector<double> taps, util::Volt vdd)
    : taps_(std::move(taps)), vdd_(vdd) {
  if (taps_.empty()) throw std::invalid_argument("TxFfe: no taps");
  if (taps_.size() > 8) throw std::invalid_argument("TxFfe: too many taps");
}

TxFfe TxFfe::de_emphasis(double alpha, util::Volt vdd) {
  if (alpha < 0.0 || alpha >= 0.5) {
    throw std::invalid_argument("TxFfe: de-emphasis alpha in [0, 0.5)");
  }
  return TxFfe({1.0 - alpha, -alpha}, vdd);
}

std::vector<double> TxFfe::levels(const std::vector<std::uint8_t>& bits) const {
  // Per-bit level: the tap vector convolved with the +/-1 representation
  // of the bit stream, mapped back to the [0, vdd] single-ended range
  // around mid-rail.  Runs through the dsp block-convolution engine (its
  // zero history reproduces the missing leading symbols exactly).
  const double half = 0.5 * vdd_.value();
  std::vector<double> out(bits.size(), 0.0);
  if (bits.empty()) return out;
  std::vector<double> symbols(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    symbols[i] = bits[i] ? 1.0 : -1.0;
  }
  dsp::BlockFir fir(taps_, 1);
  fir.process(symbols.data(), out.data(), out.size());
  for (double& v : out) v = half + half * v;
  return out;
}

analog::Waveform TxFfe::shape(const std::vector<std::uint8_t>& bits,
                              util::Hertz bit_rate, int samples_per_ui,
                              util::Second rise_time) const {
  const std::vector<double> levels = this->levels(bits);
  // Build the waveform by linear interpolation across the edge window,
  // mirroring Waveform::nrz but with per-bit analog levels.
  const util::Second ui = util::period(bit_rate);
  const util::Second dt = ui / static_cast<double>(samples_per_ui);
  const double tr = rise_time.value();
  std::vector<double> samples(bits.size() *
                              static_cast<std::size_t>(samples_per_ui));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) * dt.value();
    const auto bit = static_cast<std::size_t>(t / ui.value());
    if (bit >= levels.size()) break;
    double v = levels[bit];
    if (tr > 0.0) {
      const double t_in_bit = t - static_cast<double>(bit) * ui.value();
      if (bit > 0 && t_in_bit < tr / 2.0) {
        const double prev = levels[bit - 1];
        const double x = (t_in_bit + tr / 2.0) / tr;
        v = prev + (v - prev) * x;
      } else if (bit + 1 < levels.size() && t_in_bit > ui.value() - tr / 2.0) {
        const double next = levels[bit + 1];
        const double x = (t_in_bit - (ui.value() - tr / 2.0)) / tr;
        v = v + (next - v) * x;
      }
    }
    samples[i] = v;
  }
  return analog::Waveform(util::seconds(0.0), dt, std::move(samples));
}

RxCtle::RxCtle(util::Decibel boost_db, util::Hertz pole,
               util::Second sample_period)
    : pole_(pole), dt_(sample_period) {
  if (boost_db.value() < 0.0) {
    throw std::invalid_argument("RxCtle: boost must be >= 0 dB");
  }
  // High-frequency gain = 1 + k  =>  k = 10^(boost/20) - 1.
  k_ = util::db_to_amplitude(boost_db) - 1.0;
}

analog::Waveform RxCtle::equalize(const analog::Waveform& in) const {
  analog::Waveform low = in;
  analog::OnePoleLowPass lpf(pole_, dt_);
  lpf.process(low);
  analog::Waveform out = in;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = in[i] + k_ * (in[i] - low[i]);
  }
  return out;
}

double RxCtle::gain_at(util::Hertz f) const {
  // |1 + k*(1 - H_lpf)| with H_lpf the one-pole response.
  const double r = f.value() / pole_.value();
  const double denom = 1.0 + r * r;
  const double re = 1.0 + k_ * (1.0 - 1.0 / denom);
  const double im = k_ * (r / denom);
  return std::sqrt(re * re + im * im);
}

}  // namespace serdes::channel
