// Equalization blocks (extension).
//
// The paper's generic SerDes architecture (its Fig 3) includes TX FFE and
// RX CTLE/DFE equalization, but the OpenSerDes implementation omits them —
// one reason its reach stops at moderate channel loss.  This module adds
// the two classic linear equalizers as composable waveform stages so the
// ablation benches can quantify exactly how much reach they buy back over
// dispersive channels:
//   * TxFfe  — UI-spaced FIR pre-emphasis applied to the transmitted
//     levels (de-emphasizes repeated bits, boosting transition energy);
//   * RxCtle — continuous-time linear equalizer modelled as a flat path
//     plus a high-frequency boost (x + k·(x − LPF(x))), the standard
//     source-degenerated-pair behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/filters.h"
#include "analog/waveform.h"
#include "util/units.h"

namespace serdes::channel {

/// Transmit feed-forward equalizer: bit stream -> multi-level NRZ waveform.
class TxFfe {
 public:
  /// `taps[0]` is the main cursor; later entries are post-cursors.
  /// Taps are used as given (the caller normalizes); the output waveform
  /// is offset so it stays within [0, vdd] for |sum of taps| <= 1.
  TxFfe(std::vector<double> taps, util::Volt vdd);

  /// Classic 2-tap de-emphasis: main = 1 - |alpha|, post = -alpha.
  static TxFfe de_emphasis(double alpha, util::Volt vdd);

  /// Shapes the framed bit stream into the pre-distorted line waveform.
  [[nodiscard]] analog::Waveform shape(const std::vector<std::uint8_t>& bits,
                                       util::Hertz bit_rate,
                                       int samples_per_ui,
                                       util::Second rise_time) const;

  /// Per-bit pre-distorted launch levels (volts) — the discrete values
  /// `shape` interpolates between; the streaming TX source consumes these.
  [[nodiscard]] std::vector<double> levels(
      const std::vector<std::uint8_t>& bits) const;

  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

 private:
  std::vector<double> taps_;
  util::Volt vdd_;
};

/// Receive continuous-time linear equalizer (peaking stage).
class RxCtle {
 public:
  /// `boost_db` of high-frequency peaking above the `pole` corner.
  RxCtle(util::Decibel boost_db, util::Hertz pole,
         util::Second sample_period);

  /// Equalizes the received waveform (returns a new waveform).
  [[nodiscard]] analog::Waveform equalize(const analog::Waveform& in) const;

  /// Small-signal gain at a frequency (for tests: flat at dc, boosted
  /// above the pole).
  [[nodiscard]] double gain_at(util::Hertz f) const;

  [[nodiscard]] double boost_linear() const { return k_; }

 private:
  double k_;  // boost factor: out = in + k*(in - lpf(in))
  util::Hertz pole_;
  util::Second dt_;
};

}  // namespace serdes::channel
