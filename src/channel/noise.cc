#include "channel/noise.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace serdes::channel {

AwgnSource::AwgnSource(double rms_volts, std::uint64_t seed)
    : rms_(rms_volts), rng_(seed) {
  if (rms_volts < 0.0) throw std::invalid_argument("AwgnSource: rms < 0");
}

analog::Waveform& AwgnSource::apply(analog::Waveform& w) {
  return w.add_noise(rng_, rms_);
}

ToneInterferer::ToneInterferer(double amplitude_volts, util::Hertz freq,
                               double phase)
    : amplitude_(amplitude_volts), freq_(freq), phase_(phase) {}

analog::Waveform& ToneInterferer::apply(analog::Waveform& w) {
  const double wrad = 2.0 * std::numbers::pi * freq_.value();
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double t = w.time_at(i).value();
    w[i] += amplitude_ * std::sin(wrad * t + phase_);
  }
  return w;
}

JitterModel::JitterModel(const Config& config)
    : config_(config), rng_(config.seed) {}

}  // namespace serdes::channel
