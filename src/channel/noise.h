// Noise and jitter injection for link stress testing.
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

#include "analog/waveform.h"
#include "util/random.h"
#include "util/units.h"

namespace serdes::channel {

/// Additive white gaussian noise source.
class AwgnSource {
 public:
  AwgnSource(double rms_volts, std::uint64_t seed = 11);

  /// Adds noise in place and returns the waveform.
  analog::Waveform& apply(analog::Waveform& w);

  [[nodiscard]] double rms() const { return rms_; }

 private:
  double rms_;
  util::Rng rng_;
};

/// Single-tone interferer (supply/substrate coupling aggressor).
class ToneInterferer {
 public:
  ToneInterferer(double amplitude_volts, util::Hertz freq, double phase = 0.0);

  analog::Waveform& apply(analog::Waveform& w);

 private:
  double amplitude_;
  util::Hertz freq_;
  double phase_;
};

/// Jitter model for sampling instants: gaussian random jitter plus
/// sinusoidal deterministic jitter (both specified as absolute time).
class JitterModel {
 public:
  struct Config {
    util::Second random_rms = util::picoseconds(0.0);
    util::Second sinusoidal_amplitude = util::picoseconds(0.0);
    util::Hertz sinusoidal_freq = util::megahertz(10.0);
    std::uint64_t seed = 13;
  };

  explicit JitterModel(const Config& config);

  /// Jittered version of the nominal instant `t`.  Inline (one call per
  /// sampling instant); the branch conditions are loop-invariant so the
  /// calling loop keeps only the terms the model enables.
  util::Second perturb(util::Second t) {
    double delta = 0.0;
    if (config_.random_rms.value() > 0.0) {
      delta += rng_.gaussian(0.0, config_.random_rms.value());
    }
    if (config_.sinusoidal_amplitude.value() > 0.0) {
      delta += config_.sinusoidal_amplitude.value() *
               std::sin(2.0 * std::numbers::pi *
                        config_.sinusoidal_freq.value() * t.value());
    }
    return t + util::seconds(delta);
  }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  util::Rng rng_;
};

}  // namespace serdes::channel
