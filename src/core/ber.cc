#include "core/ber.h"

#include <algorithm>
#include <cmath>

namespace serdes::core {

double ber_upper_bound(std::uint64_t bits, std::uint64_t errors,
                       double confidence_level) {
  if (bits == 0) return 1.0;
  // Poisson upper limit on the mean given `errors` observed:
  // for k=0, mu_up = -ln(1-CL); for k>0 use the Pearson-Hartley
  // approximation mu_up ≈ k + z*sqrt(k) + (z^2+2)/3 with z the normal
  // quantile of CL (accurate enough for link budgeting).
  double mu_up;
  if (errors == 0) {
    mu_up = -std::log(1.0 - confidence_level);
  } else {
    // Normal quantile via inverse error function relation.
    const double z = std::sqrt(2.0) *
                     [](double p) {
                       // Acklam-style rational approximation of erfinv
                       // through the quantile of the standard normal.
                       // For our CL range (0.8..0.999) a simple Newton on
                       // erf is robust.
                       double x = 0.0;
                       for (int i = 0; i < 60; ++i) {
                         const double err = std::erf(x) - p;
                         const double d =
                             2.0 / std::sqrt(3.141592653589793) *
                             std::exp(-x * x);
                         x -= err / d;
                       }
                       return x;
                     }(2.0 * confidence_level - 1.0);
    const double k = static_cast<double>(errors);
    mu_up = k + z * std::sqrt(k) + (z * z + 2.0) / 3.0;
  }
  return std::min(1.0, mu_up / static_cast<double>(bits));
}

BerMeasurement measure_ber(
    SerDesLink& link, std::uint64_t total_bits, std::uint64_t chunk_bits,
    double confidence_level, util::PrbsOrder order,
    const std::function<void(const LinkResult&)>& on_chunk) {
  BerMeasurement m;
  m.confidence_level = confidence_level;
  util::PrbsGenerator prbs(order);
  // Footage is tracked by bits *sent*, not bits compared: an aligned chunk
  // may compare slightly fewer bits than it carried (the CDR pipeline's
  // tail allowance), and a residual micro-chunk re-run for that deficit
  // could never align — it would poison the whole measurement.
  std::uint64_t sent = 0;
  while (sent < total_bits) {
    const std::uint64_t n = std::min(chunk_bits, total_bits - sent);
    sent += n;
    const auto payload = prbs.next_bits(static_cast<std::size_t>(n));
    const LinkResult r = link.run(payload);
    if (on_chunk) on_chunk(r);
    if (!r.aligned) {
      // Alignment failure: every payload bit in the chunk is lost.
      m.aligned = false;
      m.errors += n;
      m.bits += n;
      continue;
    }
    m.bits += r.payload_bits_compared;
    m.errors += r.bit_errors;
    // Bits the receiver truncated (pipeline tail) beyond the CDR allowance
    // are already charged as errors inside LinkResult (SerDesLink::finalize);
    // only the small allowance itself is excluded from both counts.
  }
  if (m.bits > 0) {
    m.ber = static_cast<double>(m.errors) / static_cast<double>(m.bits);
  }
  m.ber_upper_bound = ber_upper_bound(m.bits, m.errors, confidence_level);
  return m;
}

}  // namespace serdes::core
