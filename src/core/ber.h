// Bit-error-ratio measurement with statistical confidence.
//
// "Zero BER" in the paper means no errors observed over the simulation
// window; this module makes that statement quantitative via the standard
// confidence-level treatment (an error-free run of N bits bounds the true
// BER below -ln(1-CL)/N).
#pragma once

#include <cstdint>
#include <functional>

#include "core/link.h"

namespace serdes::core {

struct BerMeasurement {
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;
  double ber = 0.0;
  /// Upper bound on the true BER at the given confidence level.
  double ber_upper_bound = 0.0;
  double confidence_level = 0.95;
  bool aligned = true;

  [[nodiscard]] bool error_free() const { return aligned && errors == 0; }
};

/// Runs the link over `total_bits` of PRBS data split into chunks (each
/// chunk is an independent waveform with fresh noise), accumulating errors.
/// `on_chunk`, if set, sees every chunk's LinkResult as it completes —
/// api::Simulator uses it to lift diagnostics off the first chunk while
/// sharing this loop's BER accounting.
BerMeasurement measure_ber(
    SerDesLink& link, std::uint64_t total_bits,
    std::uint64_t chunk_bits = 4096, double confidence_level = 0.95,
    util::PrbsOrder order = util::PrbsOrder::kPrbs31,
    const std::function<void(const LinkResult&)>& on_chunk = {});

/// Upper bound of true BER given an observation (Poisson/chi-square based;
/// exact for zero errors, a good approximation otherwise).
double ber_upper_bound(std::uint64_t bits, std::uint64_t errors,
                       double confidence_level);

}  // namespace serdes::core
