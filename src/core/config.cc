#include "core/config.h"

#include <algorithm>
#include <cmath>

namespace serdes::core {

double per_sample_noise_sigma(const LinkConfig& config) {
  const double nyquist = 0.5 / config.sample_period().value();
  const double density_scale = std::sqrt(
      std::max(1.0, nyquist / config.noise_reference_bandwidth.value()));
  return config.channel_noise_rms * density_scale;
}

LinkConfig LinkConfig::paper_default() {
  LinkConfig c;
  c.bit_rate = util::gigahertz(2.0);
  c.samples_per_ui = 16;

  // Paper: three-stage inverter chain driving 2 pF rail to rail.
  c.driver.stages = 3;
  c.driver.taper = 3.4;
  c.driver.wn_first_um = 2.0;
  c.driver.load = util::picofarads(2.0);

  // RFI sized for ~2 GHz bandwidth into the restoring inverter's gate load;
  // Wp/Wn below the mobility-balance ratio places the self-bias near the
  // paper's 0.83 V.
  c.rfi.wn_um = 24.0;
  c.rfi.wp_um = 36.0;
  c.rfi.load_cap = util::femtofarads(55.0);  // restoring gate + route + ESD

  c.restoring_wn_um = 8.0;
  c.restoring_wp_um = 12.0;

  // Decision threshold sits at the restoring inverter's output midpoint;
  // the Receiver recomputes it from the actual cells at construction.
  c.sampler.threshold = 0.9;
  c.sampler.aperture = util::picoseconds(25.0);
  c.sampler.input_noise_rms = 0.03;  // restored-node referred

  c.cdr.oversampling = 5;
  c.cdr.window_uis = 32;
  c.cdr.glitch_filter_radius = 1;
  c.cdr.jitter_hysteresis = 2;

  return c;
}

}  // namespace serdes::core
