// Link-level configuration shared by the transmitter, receiver and the
// experiment harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analog/driver.h"
#include "analog/rfi.h"
#include "analog/sampler.h"
#include "digital/cdr.h"
#include "digital/framing.h"
#include "util/prbs.h"
#include "util/units.h"

namespace serdes::core {

/// One crosstalk aggressor path into a victim lane's receive stream: a
/// gain-scaled copy of the aggressor's TX levels, delayed by an integer
/// number of UIs, optionally filtered through the victim's own channel
/// (FEXT — the coupled energy travels the full line) or injected directly
/// (NEXT — near-end coupling bypasses the line).  The contribution lands
/// after the victim's channel and before the receiver-input AWGN, so the
/// receiver equalizes signal + crosstalk together, exactly as hardware
/// would see it.
struct XtalkPath {
  double gain = 0.0;
  bool through_channel = true;
  /// Launch delay of the aggressor stream relative to the victim, in UIs.
  int delay_ui = 0;
};

struct LinkConfig {
  // ---- Rate / sampling ----
  util::Hertz bit_rate = util::gigahertz(2.0);
  /// Analog waveform samples per unit interval (resolution of the link sim).
  int samples_per_ui = 16;

  // ---- Modulation ----
  /// Line code of the serial stream.  kNrz is the paper's datapath; kPam4
  /// carries 2 gray-mapped bits per UI through a 4-level TX source and a
  /// tri-threshold sampler (the nonlinear RFI/restoring stages are
  /// bypassed — PAM4 runs channel -> AWGN -> CTLE -> sampler).
  enum class Modulation { kNrz, kPam4 };
  Modulation modulation = Modulation::kNrz;

  /// Bits carried per unit interval (1 for NRZ, 2 for PAM4).
  [[nodiscard]] int bits_per_ui() const {
    return modulation == Modulation::kPam4 ? 2 : 1;
  }

  // ---- Transmitter ----
  analog::DriverDesign driver{};

  // ---- Receiver front end ----
  analog::RfiDesign rfi{};
  /// Restoring inverter widths (um).
  double restoring_wn_um = 8.0;
  double restoring_wp_um = 12.0;

  // ---- Sampler ----
  analog::DffSampler::Config sampler{};

  // ---- CDR ----
  digital::CdrConfig cdr{};
  /// Static phase offset of the RX sampling clocks relative to the data
  /// (fraction of one UI); exercises CDR lock.
  double rx_phase_offset_ui = 0.37;
  /// RX/TX frequency mismatch (ppm).
  double ppm_offset = 0.0;

  // ---- Impairments ----
  /// AWGN at the receiver input: RMS volts measured within
  /// `noise_reference_bandwidth`.  The injected per-sample sigma is scaled
  /// by sqrt(simulation_nyquist / reference_bandwidth) so the noise has a
  /// rate-independent spectral density and the post-front-end RMS does not
  /// depend on the waveform sample rate.
  double channel_noise_rms = 0.001;
  util::Hertz noise_reference_bandwidth = util::gigahertz(3.0);
  /// RMS random jitter on the sampling clocks.
  util::Second rx_random_jitter = util::picoseconds(2.0);
  /// Sinusoidal jitter amplitude on the sampling clocks.
  util::Second rx_sinusoidal_jitter = util::picoseconds(0.0);
  /// Sinusoidal jitter frequency as a fraction of the bit rate (fast,
  /// CDR-untrackable jitter sits at a few percent of the rate).
  double sj_freq_ratio = 0.04;

  // ---- Equalization (extension blocks; disabled by default) ----
  /// TX FFE 2-tap de-emphasis factor alpha (0 disables the FFE path).
  double tx_ffe_deemphasis = 0.0;
  /// RX CTLE high-frequency boost above `rx_ctle_pole` (0 dB disables).
  util::Decibel rx_ctle_boost = util::decibels(0.0);
  util::Hertz rx_ctle_pole = util::megahertz(700.0);
  /// Decision-feedback equalizer post-cursor taps, in volts at the
  /// sampler's summing node (restored domain for NRZ, CTLE output for
  /// PAM4).  Tap k feeds back the decision from k+1 UIs ago; empty
  /// disables the DFE.  Streaming execution only.
  std::vector<double> dfe_taps;

  // ---- Framing / payload ----
  digital::FramingConfig framing{};
  /// Pattern used by SerDesLink::run_prbs when no order is given.
  util::PrbsOrder prbs_order = util::PrbsOrder::kPrbs31;

  std::uint64_t noise_seed = 1234;

  /// When false, LinkResult comes back without the tx/channel/restored
  /// waveforms — batch sweeps that only read BER skip retaining two full
  /// analog::Waveforms per run.
  bool capture_waveforms = true;
  /// When capturing, retain at most this many samples per waveform (the
  /// diagnostic window); 0 keeps everything.  Lets the streaming pipeline
  /// bound capture memory on deep chunks — api::Simulator sets it from its
  /// diagnostic window option.  Applied identically on both execution
  /// paths, so captured waveforms stay bit-identical.
  std::size_t capture_max_samples = 0;

  // ---- Execution strategy ----
  /// How SerDesLink::run executes the datapath.  Both modes produce
  /// bit-identical results (same seeds, same BER, same waveforms when
  /// captured); they differ only in memory behaviour:
  ///   * kStreaming — block pipeline; every stage holds one block of
  ///     `stream_block_samples` samples, so peak waveform memory is
  ///     O(block) regardless of payload length.
  ///   * kBatch — legacy whole-waveform path; each stage materializes a
  ///     full-payload waveform (O(payload_bits * samples_per_ui)).
  enum class Execution { kStreaming, kBatch };
  Execution execution = Execution::kStreaming;
  /// Which engine(s) produce the scenario's results:
  ///   * kMonteCarlo   — bit-stream simulation (the datapath above);
  ///   * kStatistical  — the analytical stat::StatAnalyzer engine only
  ///     (no bit stream; reaches 1e-15 BER regimes instantly);
  ///   * kBoth         — Monte Carlo plus the stat engine, with the MC
  ///     BER cross-checked against the stat prediction band.
  /// The core SerDesLink always runs Monte Carlo; this field is how the
  /// api/sweep layers carry the choice alongside the rest of the config.
  enum class Analysis { kMonteCarlo, kStatistical, kBoth };
  Analysis analysis = Analysis::kMonteCarlo;
  /// Samples per streaming block (the O(block) memory knob).  Results are
  /// invariant to this value by construction.
  std::size_t stream_block_samples = 16384;
  /// Lane-tile width for batched multi-lane execution (core::LaneLink):
  /// api::Simulator::run_batch groups compatible lanes into SoA tiles of
  /// up to this many lanes sharing one instruction stream.  1 = scalar
  /// per-lane execution.  Results are bit-identical either way; this is
  /// purely a throughput knob, and only streaming Monte Carlo runs tile.
  int lane_batch = 1;
  /// Opt into the dsp block-convolution engine for channels built from
  /// this config (ChannelFactory): long FIR and lossy-line responses take
  /// the overlap-save FFT path above the measured crossover.  Analog
  /// waveforms then match the exact kernels to <= 1e-12 RMS and bit
  /// decisions are unchanged, but samples are no longer bit-identical (and
  /// streaming results acquire a benign block-size dependence through the
  /// FFT segmentation), so the exact direct kernels stay the default.
  bool dsp = false;

  // ---- Crosstalk ----
  /// Aggressor paths folded into this lane's receive stream (bus victims
  /// only; empty for an isolated link).  Paths are applied in order, after
  /// the victim channel and before the AWGN, by the streaming datapath.
  std::vector<XtalkPath> xtalk;

  /// PAM4 only: when false the sampler keeps just the middle threshold
  /// (the LSB slicers are disabled and LSBs decode as 0) — the degenerate
  /// configuration that reduces PAM4 to NRZ over symbols {0, 3}.
  bool pam4_extra_thresholds = true;

  /// Unit interval (symbol period: bits_per_ui() bits long under PAM4).
  [[nodiscard]] util::Second unit_interval() const {
    return util::period(util::hertz(bit_rate.value() /
                                    static_cast<double>(bits_per_ui())));
  }
  /// Analog sample period.
  [[nodiscard]] util::Second sample_period() const {
    return unit_interval() / static_cast<double>(samples_per_ui);
  }

  /// Default configuration used throughout the paper reproduction:
  /// 2 Gbps, 1.8 V, 5x-oversampled CDR — with the RFI sized for the
  /// 2 GHz bandwidth the paper's front end needs.
  static LinkConfig paper_default();
};

/// Per-sample AWGN sigma for this config: `channel_noise_rms` scaled by
/// sqrt(simulation_nyquist / reference_bandwidth) so the injected noise has
/// a rate-independent spectral density (see `channel_noise_rms`).  Shared
/// by the Monte Carlo datapath and the statistical engine so both fold in
/// exactly the same noise power.
[[nodiscard]] double per_sample_noise_sigma(const LinkConfig& config);

}  // namespace serdes::core
