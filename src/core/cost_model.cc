#include "core/cost_model.h"

#include <cmath>

namespace serdes::core {

std::vector<CostPoint> asic_cost_curve(const CostModelParams& params) {
  const int nodes[] = {90, 65, 45, 32, 22, 14};
  std::vector<CostPoint> out;
  out.reserve(6);
  int step = 0;
  for (int node : nodes) {
    CostPoint p;
    p.node_nm = node;
    p.fab_cost = std::pow(params.fab_growth_per_step, step);
    p.pdk_license_cost = params.license_fraction_at_90 * p.fab_cost *
                         std::pow(params.license_growth_per_step, step);
    p.conventional_total = p.fab_cost + p.pdk_license_cost;
    p.open_total = p.fab_cost;  // open PDK: no licensing fee
    out.push_back(p);
    ++step;
  }
  return out;
}

}  // namespace serdes::core
