// ASIC cost model (paper Fig 2).
//
// The paper motivates open-source PDKs with a relative-cost comparison:
// chip fabrication cost grows as nodes shrink, and conventional PDK
// licensing adds a node-dependent fee that the open PDK eliminates.  The
// paper scales license fees relative to fabrication cost (its ref [9]);
// this model does the same with explicit, documented coefficients.
#pragma once

#include <vector>

namespace serdes::core {

struct CostPoint {
  int node_nm = 0;
  double fab_cost = 0.0;          // relative units (90 nm fab = 1.0)
  double pdk_license_cost = 0.0;  // conventional-PDK license, same units
  double conventional_total = 0.0;
  double open_total = 0.0;        // open PDK: zero license fee
};

struct CostModelParams {
  /// Fabrication cost doubles roughly every two node steps.
  double fab_growth_per_step = 1.28;
  /// License fee as a fraction of fab cost at 90 nm, growing per step.
  double license_fraction_at_90 = 0.55;
  double license_growth_per_step = 1.12;
};

/// Cost points for the canonical node ladder 90/65/45/32/22/14 nm.
std::vector<CostPoint> asic_cost_curve(const CostModelParams& params = {});

}  // namespace serdes::core
