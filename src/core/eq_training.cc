#include "core/eq_training.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "channel/equalizer.h"
#include "core/receiver.h"
#include "core/transmitter.h"
#include "pipe/stages.h"
#include "util/prbs.h"

namespace serdes::core {

namespace {

// Outer coordinate-search passes over the CTLE/FFE knobs; the step sizes
// halve per pass.
constexpr int kPasses = 3;
// Clamp on |tap| as a fraction of the reference amplitude: a feedback tap
// beyond about half the main cursor means the eye is closed faster than
// feedback can reopen it — that residue belongs to the CTLE/FFE.
constexpr double kTapClampFraction = 0.45;
constexpr double kMaxCtleBoostDb = 12.0;
constexpr double kMaxFfeAlpha = 0.4;

/// One training replay: streams `levels` through channel -> AWGN -> CTLE
/// (-> RFI -> restore for NRZ) and returns the chain-output samples.  The
/// NRZ tail needs the whole-stream DC mean first, so the front half runs
/// twice — the same two-pass structure as SerDesLink::run_streaming, with
/// fresh stages per pass so state never leaks between them.
std::vector<double> run_training_chain(const LinkConfig& cfg,
                                       channel::Channel& channel,
                                       const Receiver& rx,
                                       const std::vector<double>& levels,
                                       util::Second stream_t0,
                                       double boost_db,
                                       std::uint64_t awgn_seed) {
  const int spu = cfg.samples_per_ui;
  const util::Second ui = cfg.unit_interval();
  const Transmitter tx(cfg);
  const util::Second rise = tx.driver().output_rise_time();
  const double sigma = per_sample_noise_sigma(cfg);
  const bool use_ctle = boost_db > 0.0;
  const bool nrz = cfg.modulation == LinkConfig::Modulation::kNrz;
  const std::size_t block = std::max<std::size_t>(1, cfg.stream_block_samples);

  const auto make_front = [&](pipe::Pipeline& p) {
    p.add(std::make_unique<pipe::ChannelStage>(channel.open_stream()));
    p.add(std::make_unique<pipe::AwgnStage>(sigma, awgn_seed));
    if (use_ctle) {
      p.add(std::make_unique<pipe::CtleStage>(util::decibels(boost_db),
                                              cfg.rx_ctle_pole,
                                              cfg.sample_period()));
    }
  };

  double mean = 0.0;
  if (nrz) {
    pipe::LevelPulseSource source(levels, ui, spu, rise, stream_t0, 0.0);
    pipe::Pipeline front;
    make_front(front);
    double sum = 0.0;
    pipe::Block blk;
    while (source.produce(blk, block) > 0) {
      const pipe::BlockView v = front.process(blk.view());
      for (std::size_t i = 0; i < v.size; ++i) sum += v[i];
    }
    const std::uint64_t total = source.total_samples();
    mean = total > 0 ? sum / static_cast<double>(total) : 0.0;
  }

  pipe::LevelPulseSource source(levels, ui, spu, rise, stream_t0, 0.0);
  pipe::Pipeline pipeline;
  make_front(pipeline);
  if (nrz) {
    auto rfi = std::make_unique<pipe::RfiFrontEndStage>(rx.rfi_stage(),
                                                        cfg.sample_period());
    rfi->set_mean(mean);
    pipeline.add(std::move(rfi));
    pipeline.add(std::make_unique<pipe::RestoringStage>(rx.restoring(),
                                                        cfg.sample_period()));
  }
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(source.total_samples()));
  pipe::Block blk;
  while (source.produce(blk, block) > 0) {
    const pipe::BlockView v = pipeline.process(blk.view());
    samples.insert(samples.end(), v.data, v.data + v.size);
  }
  return samples;
}

/// Best integer-sample alignment of symbol n against y[n*spu + L]: the lag
/// in [0, 8*spu) maximizing the symbol/sample correlation.  The chain's
/// group delay (driver, channel, filter poles) stays well inside 8 UIs for
/// every supported channel model.
std::size_t align_lag(const std::vector<double>& y,
                      const std::vector<double>& d, int spu) {
  const std::size_t max_lag = static_cast<std::size_t>(8 * spu);
  std::size_t best = 0;
  double best_corr = -std::numeric_limits<double>::infinity();
  for (std::size_t lag = 0; lag < max_lag; ++lag) {
    double corr = 0.0;
    for (std::size_t n = 8; n + 9 < d.size(); ++n) {
      const std::size_t idx = n * static_cast<std::size_t>(spu) + lag;
      if (idx >= y.size()) break;
      corr += d[n] * y[idx];
    }
    if (corr > best_corr) {
      best_corr = corr;
      best = lag;
    }
  }
  return best;
}

struct LmsOutcome {
  std::vector<double> taps;
  double amplitude = 0.0;
  /// Near-worst-case slicer margin (volts): the 5th percentile over the
  /// converged tail of level_separation - |residual|, where the residual
  /// is what remains of each sample after the trained model (amplitude,
  /// DFE-corrected ISI) is subtracted.  The outer coordinate search
  /// maximizes this — it is exactly the quantity slicer errors eat into.
  double margin = 0.0;
};

/// The sign-sign LMS inner loop over one replayed preamble, followed by a
/// margin-scoring sweep of the converged tail.
LmsOutcome run_lms(const std::vector<double>& y, const std::vector<double>& d,
                   int spu, double reference, std::size_t lag,
                   std::vector<double> taps, bool nrz) {
  const std::size_t n_taps = taps.size();
  const std::size_t start = n_taps + 2;
  const std::size_t n_syms = d.size();

  // Robust amplitude init: mean |x| over the first symbols (the model's
  // main cursor dominates even before the taps converge).
  double amp = 0.0;
  std::size_t amp_count = 0;
  for (std::size_t n = start; n < n_syms && amp_count < 256; ++n) {
    const std::size_t idx = n * static_cast<std::size_t>(spu) + lag;
    if (idx >= y.size()) break;
    amp += std::fabs(y[idx] - reference);
    ++amp_count;
  }
  amp = amp_count > 0 ? amp / static_cast<double>(amp_count) : 1e-3;
  amp = std::max(amp, 1e-6);

  // Geometric step decay from 5% to 0.1% of the amplitude across the
  // preamble: early steps move taps quickly, late steps average noise out.
  double mu = 0.05 * amp;
  const double mu_final = 0.001 * amp;
  const double span =
      static_cast<double>(n_syms > start ? n_syms - start : 1);
  const double decay = std::pow(mu_final / mu, 1.0 / span);

  std::vector<double> tap_sum(n_taps, 0.0);
  std::size_t tail_count = 0;
  const std::size_t tail_start = start + (n_syms - start) * 3 / 4;
  const std::size_t half_start = start + (n_syms - start) / 2;

  for (std::size_t n = start; n < n_syms; ++n) {
    const std::size_t idx = n * static_cast<std::size_t>(spu) + lag;
    if (idx >= y.size()) break;
    const double x = y[idx] - reference;
    double pred = amp * d[n];
    for (std::size_t k = 0; k < n_taps; ++k) pred += taps[k] * d[n - 1 - k];
    const double e = x - pred;
    const double s = e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0);
    const double clamp = kTapClampFraction * amp;
    for (std::size_t k = 0; k < n_taps; ++k) {
      taps[k] += mu * s * d[n - 1 - k];
      taps[k] = std::clamp(taps[k], -clamp, clamp);
    }
    amp += 0.5 * mu * s * d[n];
    amp = std::max(amp, 1e-6);
    mu *= decay;
    if (n >= tail_start) {
      for (std::size_t k = 0; k < n_taps; ++k) tap_sum[k] += taps[k];
      ++tail_count;
    }
  }

  LmsOutcome out;
  out.taps.resize(n_taps, 0.0);
  if (tail_count > 0) {
    for (std::size_t k = 0; k < n_taps; ++k) {
      out.taps[k] = tap_sum[k] / static_cast<double>(tail_count);
    }
  }
  out.amplitude = amp;

  // Margin scoring with the converged taps.  NRZ slices against one
  // threshold amp away from each rail; PAM4 levels sit 2*amp/3 apart, so
  // the slicer margin per symbol is amp/3.
  const double separation = nrz ? amp : amp / 3.0;
  std::vector<double> margins;
  margins.reserve(n_syms - half_start);
  for (std::size_t n = half_start; n < n_syms; ++n) {
    const std::size_t idx = n * static_cast<std::size_t>(spu) + lag;
    if (idx >= y.size()) break;
    double pred = amp * d[n];
    for (std::size_t k = 0; k < n_taps; ++k) {
      pred += out.taps[k] * d[n - 1 - k];
    }
    margins.push_back(separation - std::fabs(y[idx] - reference - pred));
  }
  if (margins.empty()) {
    out.margin = 0.0;
  } else {
    std::sort(margins.begin(), margins.end());
    out.margin = margins[margins.size() / 20];  // 5th percentile
  }
  return out;
}

}  // namespace

TrainingResult train_equalizer(const LinkConfig& config,
                               channel::Channel& channel, int training_uis,
                               std::size_t n_taps) {
  if (config.execution != LinkConfig::Execution::kStreaming) {
    throw std::invalid_argument(
        "train_equalizer: training replays the streaming chain");
  }
  if (training_uis < 64) {
    throw std::invalid_argument(
        "train_equalizer: need at least 64 training UIs");
  }
  const bool nrz = config.modulation == LinkConfig::Modulation::kNrz;
  const int spu = config.samples_per_ui;
  const double vdd = config.driver.vdd.value();
  const Receiver rx(config);
  const Transmitter tx(config);

  // Known training symbols: the config's PRBS from its seed state.  NRZ
  // maps bits onto +/-1; PAM4 gray-maps bit pairs onto the 4 launch levels
  // exactly like the payload TX (link.cc) and trains in the symbol
  // convention {-1, -1/3, +1/3, +1}.
  util::PrbsGenerator prbs(config.prbs_order);
  const auto n_syms = static_cast<std::size_t>(training_uis);
  std::vector<double> symbols(n_syms);
  std::vector<double> pam_levels(nrz ? 0 : n_syms);
  const std::vector<std::uint8_t> bits =
      prbs.next_bits(nrz ? n_syms : 2 * n_syms);
  if (nrz) {
    for (std::size_t n = 0; n < n_syms; ++n) {
      symbols[n] = bits[n] ? 1.0 : -1.0;
    }
  } else {
    const double step = vdd / 3.0;
    for (std::size_t n = 0; n < n_syms; ++n) {
      const bool msb = bits[2 * n] != 0;
      const bool lsb = bits[2 * n + 1] != 0;
      const int symbol = msb ? (lsb ? 2 : 3) : (lsb ? 1 : 0);
      pam_levels[n] = static_cast<double>(symbol) * step;
      symbols[n] = (2.0 * static_cast<double>(symbol) - 3.0) / 3.0;
    }
  }

  // One full evaluation of a candidate (alpha, boost): replay the chain,
  // align, train the DFE taps by sign-sign LMS (warm-started), score the
  // margin.  Every candidate replays against the same AWGN stream
  // (noise_seed + 500 — disjoint from the payload chunks at +100+counter,
  // the sampling jitter at +1 and the sampler noise at +2), so margin
  // comparisons are paired, never noise-vs-noise.
  const std::uint64_t train_seed = config.noise_seed + 500;
  const auto evaluate = [&](double alpha, double boost_db,
                            const std::vector<double>& warm) {
    std::vector<double> levels;
    util::Second stream_t0 = tx.driver().total_delay();
    if (!nrz) {
      levels = pam_levels;
    } else if (alpha != 0.0) {
      const channel::TxFfe ffe =
          channel::TxFfe::de_emphasis(alpha, config.driver.vdd);
      levels = ffe.levels(bits);
      stream_t0 = util::seconds(0.0);
    } else {
      levels.resize(n_syms);
      for (std::size_t n = 0; n < n_syms; ++n) {
        levels[n] = bits[n] ? vdd : 0.0;
      }
    }
    const std::vector<double> y = run_training_chain(
        config, channel, rx, levels, stream_t0, boost_db, train_seed);
    // Reference the symbol deviation is measured against: the sampler
    // threshold in the restored NRZ domain; the stream mean in the PAM4
    // CTLE domain (the slicer calibration midpoint converges to it).
    double reference = rx.decision_threshold();
    if (!nrz) {
      double sum = 0.0;
      for (const double v : y) sum += v;
      reference = y.empty() ? 0.0 : sum / static_cast<double>(y.size());
    }
    const std::size_t lag = align_lag(y, symbols, spu);
    return run_lms(y, symbols, spu, reference, lag, warm, nrz);
  };

  double alpha = nrz ? config.tx_ffe_deemphasis : 0.0;
  double boost_db = config.rx_ctle_boost.value();
  std::vector<double> taps = config.dfe_taps;
  taps.resize(n_taps, 0.0);

  // Outer coordinate search: the DFE taps adapt by LMS inside every
  // evaluation; the CTLE boost and (NRZ) FFE alpha walk by halving steps,
  // keeping a candidate only when it improves the trained margin.  The
  // chain's restoring nonlinearity rails away small-signal gradients, so
  // a measured-margin comparison is the robust adaptation signal here —
  // the step direction is still decided by the sign of a preamble-averaged
  // error statistic, in the sign-sign spirit.
  LmsOutcome best = evaluate(alpha, boost_db, taps);
  taps = best.taps;
  for (int pass = 0; pass < kPasses; ++pass) {
    const double boost_step = 2.0 * std::pow(0.5, pass);
    for (const double cand :
         {boost_db + boost_step, boost_db - boost_step}) {
      const double c = std::clamp(cand, 0.0, kMaxCtleBoostDb);
      if (c == boost_db) continue;
      const LmsOutcome r = evaluate(alpha, c, taps);
      if (r.margin > best.margin) {
        best = r;
        boost_db = c;
        taps = r.taps;
      }
    }
    if (nrz) {
      const double alpha_step = 0.1 * std::pow(0.5, pass);
      for (const double cand : {alpha + alpha_step, alpha - alpha_step}) {
        const double c = std::clamp(cand, 0.0, kMaxFfeAlpha);
        if (c == alpha) continue;
        const LmsOutcome r = evaluate(c, boost_db, taps);
        if (r.margin > best.margin) {
          best = r;
          alpha = c;
          taps = r.taps;
        }
      }
    }
  }

  TrainingResult result;
  result.dfe_taps = taps;
  result.tx_ffe_deemphasis = alpha;
  result.rx_ctle_boost_db = boost_db;
  result.amplitude = best.amplitude;
  result.training_uis = training_uis;
  result.passes = kPasses;
  return result;
}

}  // namespace serdes::core
