// Sign-sign LMS link training (LinkSpec::eq == "trained").
//
// Before a trained run's payload traffic, the trainer replays a known PRBS
// preamble through the deterministic receive chain and adapts the
// equalizer settings the real datapath will then use:
//
//   * DFE taps      — data-aided sign-sign LMS against the known symbols:
//                     t_k += mu * sgn(e) * d_{n-1-k}, with the reference
//                     amplitude co-adapted by sign-LMS and a geometric
//                     step decay.  Converged taps are the average over the
//                     final quarter of the preamble.
//   * CTLE boost    — outer coordinate steps driven by the residual
//                     correlation beyond the DFE's reach (post-cursor ISI
//                     the feedback taps cannot cancel calls for more
//                     high-frequency peaking).
//   * TX FFE alpha  — engaged only when the first DFE tap saturates its
//                     clamp (the feedback path has run out of range and
//                     the de-emphasis must shoulder the remainder); NRZ
//                     only, since the PAM4 TX launches plain gray levels.
//
// Everything is deterministic given the config's noise seed: the training
// AWGN draws from noise_seed + 500 + pass, a stream disjoint from the
// payload chunks (+100 + counter), the sampling-clock jitter (+1) and the
// sampler noise (+2), so training never perturbs the payload run's noise.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/channel.h"
#include "core/config.h"

namespace serdes::core {

/// Converged equalizer settings from one training preamble.
struct TrainingResult {
  /// DFE post-cursor taps, in the symbol (+/-1) convention of the sink's
  /// feedback path — volts at the summing node per unit symbol weight.
  std::vector<double> dfe_taps;
  /// Trained TX de-emphasis factor (the authored value when the outer
  /// loop never engaged it).
  double tx_ffe_deemphasis = 0.0;
  /// Trained CTLE boost (dB).
  double rx_ctle_boost_db = 0.0;
  /// Converged reference amplitude A-hat (volts): the trained model's
  /// main-cursor swing per unit symbol at the summing node.
  double amplitude = 0.0;
  /// Preamble length actually used (UIs).
  int training_uis = 0;
  /// Outer adaptation passes run.
  int passes = 0;
};

/// Trains the equalizer for `config` over `training_uis` preamble UIs.
/// `n_taps` DFE taps are adapted (pass 0 to train CTLE/FFE only); the
/// config's authored dfe_taps / tx_ffe_deemphasis / rx_ctle_boost seed
/// the adaptation as starting values.  The channel is only read through
/// open_stream(), so the caller's instance can be reused for the payload
/// run afterwards.  Throws std::invalid_argument for a batch-execution
/// config (training replays the streaming chain).
[[nodiscard]] TrainingResult train_equalizer(const LinkConfig& config,
                                             channel::Channel& channel,
                                             int training_uis,
                                             std::size_t n_taps);

}  // namespace serdes::core
