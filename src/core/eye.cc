#include "core/eye.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace serdes::core {

EyeAnalyzer::EyeAnalyzer(util::Hertz bit_rate, int bins_per_ui)
    : ui_(util::period(bit_rate)), bins_(bins_per_ui) {
  if (bins_per_ui < 8) {
    throw std::invalid_argument("EyeAnalyzer: need >= 8 bins per UI");
  }
  offsets_.resize(static_cast<std::size_t>(bins_));
  for (int b = 0; b < bins_; ++b) {
    offsets_[static_cast<std::size_t>(b)] =
        (static_cast<double>(b) + 0.5) * ui_.value() / bins_;
  }
}

EyeAnalyzer::FoldedEye EyeAnalyzer::fold(const analog::Waveform& w,
                                         double threshold,
                                         int skip_uis) const {
  FoldedEye eye;
  eye.high_min.assign(static_cast<std::size_t>(bins_),
                      std::numeric_limits<double>::infinity());
  eye.low_max.assign(static_cast<std::size_t>(bins_),
                     -std::numeric_limits<double>::infinity());

  const double ui = ui_.value();
  const double t_start = w.start_time().value() + skip_uis * ui;
  const double t_end = w.end_time().value();
  const auto total_uis = static_cast<std::int64_t>((t_end - t_start) / ui) - 1;
  for (std::int64_t n = 0; n < total_uis; ++n) {
    const double t0 = t_start + static_cast<double>(n) * ui;
    // Classify the UI by its centre sample.
    const bool high = w.value_at(util::seconds(t0 + 0.5 * ui)) > threshold;
    for (int b = 0; b < bins_; ++b) {
      const double t = t0 + offsets_[static_cast<std::size_t>(b)];
      const double v = w.value_at(util::seconds(t));
      auto& hm = eye.high_min[static_cast<std::size_t>(b)];
      auto& lm = eye.low_max[static_cast<std::size_t>(b)];
      if (high) {
        hm = std::min(hm, v);
      } else {
        lm = std::max(lm, v);
      }
    }
  }
  // Bins never hit by one polarity (e.g. all-high pattern): collapse to the
  // threshold so they read as "no opening information".
  for (int b = 0; b < bins_; ++b) {
    auto& hm = eye.high_min[static_cast<std::size_t>(b)];
    auto& lm = eye.low_max[static_cast<std::size_t>(b)];
    if (!std::isfinite(hm)) hm = threshold;
    if (!std::isfinite(lm)) lm = threshold;
  }
  return eye;
}

EyeMetrics EyeAnalyzer::analyze(const analog::Waveform& w, double threshold,
                                int skip_uis) const {
  const FoldedEye eye = fold(w, threshold, skip_uis);
  EyeMetrics m;
  // Vertical opening: maximize (high_min - low_max) over phase.
  int best = bins_ / 2;
  double best_height = -std::numeric_limits<double>::infinity();
  for (int b = 0; b < bins_; ++b) {
    const double h = eye.high_min[static_cast<std::size_t>(b)] -
                     eye.low_max[static_cast<std::size_t>(b)];
    if (h > best_height) {
      best_height = h;
      best = b;
    }
  }
  m.eye_height = best_height;
  m.best_phase_ui = (static_cast<double>(best) + 0.5) / bins_;
  m.high_rail = eye.high_min[static_cast<std::size_t>(best)];
  m.low_rail = eye.low_max[static_cast<std::size_t>(best)];

  // Horizontal opening: contiguous bins around `best` where the eye stays
  // open across the threshold.
  auto open_at = [&](int b) {
    const int idx = ((b % bins_) + bins_) % bins_;
    return eye.high_min[static_cast<std::size_t>(idx)] > threshold &&
           eye.low_max[static_cast<std::size_t>(idx)] < threshold;
  };
  if (open_at(best)) {
    int left = 0;
    while (left < bins_ && open_at(best - left - 1)) ++left;
    int right = 0;
    while (right < bins_ && open_at(best + right + 1)) ++right;
    m.eye_width_ui =
        std::min(1.0, static_cast<double>(left + right + 1) / bins_);
  }
  return m;
}

}  // namespace serdes::core
