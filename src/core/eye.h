// Eye-diagram analysis.
//
// Folds a waveform modulo the unit interval and measures vertical/horizontal
// eye opening — the standard signal-integrity view of the Fig 8 waveforms
// and the basis of the repo's extension benches.
#pragma once

#include <vector>

#include "analog/waveform.h"
#include "util/units.h"

namespace serdes::core {

struct EyeMetrics {
  /// Vertical opening at the sampling instant (volts; <= 0 means closed).
  double eye_height = 0.0;
  /// Horizontal opening at the decision threshold (fraction of UI).
  double eye_width_ui = 0.0;
  /// Voltage levels bounding the opening.
  double low_rail = 0.0;
  double high_rail = 0.0;
  /// Sampling phase (fraction of UI) where the height was measured.
  double best_phase_ui = 0.5;

  [[nodiscard]] bool open() const {
    return eye_height > 0.0 && eye_width_ui > 0.0;
  }
};

class EyeAnalyzer {
 public:
  /// `bins_per_ui` controls the folding resolution.
  explicit EyeAnalyzer(util::Hertz bit_rate, int bins_per_ui = 64);

  /// Analyzes `w` against `threshold`, skipping `skip_uis` unit intervals
  /// of settling at the start.
  [[nodiscard]] EyeMetrics analyze(const analog::Waveform& w,
                                   double threshold,
                                   int skip_uis = 8) const;

  /// The folded eye: for each phase bin, min/max of samples classified as
  /// high/low by their UI-centre polarity.  Exposed for plotting.
  struct FoldedEye {
    std::vector<double> high_min;  // per-bin lowest "high" trace
    std::vector<double> low_max;   // per-bin highest "low" trace
  };
  [[nodiscard]] FoldedEye fold(const analog::Waveform& w, double threshold,
                               int skip_uis = 8) const;

  /// Phase offset (seconds into the UI) at which bin `b` samples the
  /// waveform: (b + 0.5) * ui / bins, fixed at construction.
  [[nodiscard]] double bin_phase_offset(int b) const {
    return offsets_[static_cast<std::size_t>(b)];
  }

 private:
  util::Second ui_;
  int bins_;
  /// Per-bin sampling offsets, hoisted out of fold()'s inner loop (they
  /// are invariant across calls and across UIs).
  std::vector<double> offsets_;
};

}  // namespace serdes::core
