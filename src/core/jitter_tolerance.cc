#include "core/jitter_tolerance.h"

#include <memory>

#include "channel/channel.h"
#include "core/link.h"

namespace serdes::core {

namespace {
bool error_free_at(const LinkConfig& base, double sj_freq_ratio,
                   double amplitude_ui, const JitterToleranceConfig& cfg) {
  LinkConfig link_cfg = base;
  link_cfg.sj_freq_ratio = sj_freq_ratio;
  link_cfg.rx_sinusoidal_jitter = util::seconds(
      amplitude_ui * link_cfg.unit_interval().value());
  SerDesLink link(link_cfg,
                  std::make_unique<channel::FlatChannel>(cfg.loss));
  return link.run_prbs(cfg.bits_per_trial).error_free();
}
}  // namespace

double measure_jitter_tolerance(const LinkConfig& base, double sj_freq_ratio,
                                const JitterToleranceConfig& cfg) {
  double lo = 0.0;  // known good (no jitter)
  double hi = cfg.max_amplitude_ui;
  if (!error_free_at(base, sj_freq_ratio, lo, cfg)) return 0.0;
  if (error_free_at(base, sj_freq_ratio, hi, cfg)) return hi;
  while (hi - lo > cfg.amplitude_tolerance_ui) {
    const double mid = 0.5 * (lo + hi);
    if (error_free_at(base, sj_freq_ratio, mid, cfg)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<JitterTolerancePoint> jitter_tolerance_sweep(
    const LinkConfig& base, const std::vector<double>& freq_ratios,
    const JitterToleranceConfig& cfg) {
  std::vector<JitterTolerancePoint> points;
  points.reserve(freq_ratios.size());
  for (double ratio : freq_ratios) {
    points.push_back({ratio, measure_jitter_tolerance(base, ratio, cfg)});
  }
  return points;
}

}  // namespace serdes::core
