// Jitter tolerance measurement (extension).
//
// The standard CDR acceptance test the paper's scan knobs exist to pass:
// apply sinusoidal jitter to the sampling clocks and find, per jitter
// frequency, the largest amplitude (in UI) the link survives error-free.
// Low-frequency jitter should be tracked by the CDR's phase updates (high
// tolerance); jitter faster than the vote window must be absorbed by eye
// margin alone (tolerance floor).
#pragma once

#include <vector>

#include "core/config.h"
#include "util/units.h"

namespace serdes::core {

struct JitterTolerancePoint {
  /// Jitter frequency as a fraction of the bit rate.
  double sj_freq_ratio = 0.0;
  /// Maximum error-free sinusoidal jitter amplitude, in UI.
  double tolerance_ui = 0.0;
};

struct JitterToleranceConfig {
  std::size_t bits_per_trial = 3000;
  double amplitude_tolerance_ui = 0.01;
  double max_amplitude_ui = 2.0;
  /// Channel loss applied during the test (paper operating region).
  util::Decibel loss = util::decibels(20.0);
};

/// Maximum tolerated SJ amplitude at one jitter frequency.
double measure_jitter_tolerance(const LinkConfig& base, double sj_freq_ratio,
                                const JitterToleranceConfig& cfg = {});

/// Full tolerance mask over the given frequency ratios.
std::vector<JitterTolerancePoint> jitter_tolerance_sweep(
    const LinkConfig& base, const std::vector<double>& freq_ratios,
    const JitterToleranceConfig& cfg = {});

}  // namespace serdes::core
