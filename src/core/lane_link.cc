#include "core/lane_link.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "channel/equalizer.h"
#include "core/link.h"
#include "digital/framing.h"
#include "pipe/lane_stages.h"
#include "pipe/stages.h"

namespace serdes::core {

LaneLink::LaneLink(const LinkConfig& config,
                   std::unique_ptr<channel::Channel> ch,
                   std::vector<std::uint64_t> lane_seeds)
    : config_(config),
      tx_(config),
      rx_(config),
      channel_(std::move(ch)),
      lane_seeds_(std::move(lane_seeds)),
      chunks_run_(lane_seeds_.size(), 0) {
  if (!channel_) throw std::invalid_argument("LaneLink: null channel");
  if (lane_seeds_.empty()) {
    throw std::invalid_argument("LaneLink: need at least one lane seed");
  }
}

void LaneLink::run_chunk(const std::vector<std::uint8_t>& payload,
                         const std::vector<std::size_t>& lanes, bool capture,
                         std::vector<LinkResult>& results) {
  const std::size_t nl = lanes.size();
  results.assign(nl, LinkResult{});
  std::vector<std::uint64_t> awgn_seeds(nl);
  std::vector<std::uint64_t> jitter_seeds(nl);
  std::vector<std::uint64_t> sampler_seeds(nl);
  for (std::size_t i = 0; i < nl; ++i) {
    const std::uint64_t base = lane_seeds_[lanes[i]];
    // The scalar link derives one AWGN seed per run from its run counter;
    // each lane keeps its own counter so the sequence matches per lane.
    awgn_seeds[i] = base + 100 + chunks_run_[lanes[i]]++;
    jitter_seeds[i] = base + 1;
    sampler_seeds[i] = base + 2;
  }
  for (LinkResult& r : results) r.payload_bits_sent = payload.size();

  // ---- Shared TX prefix (lane-invariant, computed once per tile) ------------
  // Identical to SerDesLink::run_streaming: per-bit launch levels and the
  // stream time base.
  const std::vector<std::uint8_t> bits = tx_.wire_bits(payload);
  const int spu = config_.samples_per_ui;
  const util::Second ui = config_.unit_interval();
  const util::Second rise = tx_.driver().output_rise_time();

  std::vector<double> levels(bits.size());
  util::Second stream_t0 = util::seconds(0.0);
  double fill = 0.0;
  if (config_.tx_ffe_deemphasis != 0.0) {
    const channel::TxFfe ffe = channel::TxFfe::de_emphasis(
        config_.tx_ffe_deemphasis, config_.driver.vdd);
    levels = ffe.levels(bits);
  } else {
    const double vdd = config_.driver.vdd.value();
    for (std::size_t i = 0; i < bits.size(); ++i) {
      levels[i] = bits[i] ? vdd : 0.0;
    }
    stream_t0 = tx_.driver().total_delay();
  }

  pipe::LevelPulseSource source(std::move(levels), ui, spu, rise, stream_t0,
                                fill);
  const std::uint64_t total = source.total_samples();
  const util::Second dt = source.dt();
  const std::size_t block =
      std::max<std::size_t>(1, config_.stream_block_samples);
  const double sigma = per_sample_noise_sigma(config_);
  const bool use_ctle = config_.rx_ctle_boost.value() > 0.0;
  const std::size_t capture_cap = config_.capture_max_samples > 0
                                      ? config_.capture_max_samples
                                      : static_cast<std::size_t>(-1);

  // ---- Pass 1: per-lane DC mean and swing over the receiver input ----------
  // The scalar path's first pass, lane-batched: the shared TX + channel
  // front runs once, the AWGN fan-out and optional CTLE run per lane, and
  // the mean accumulates per lane in sample order (the exact batch-path
  // sum for that lane's stream).
  std::vector<double> sum(nl, 0.0);
  std::vector<double> min_v(nl, std::numeric_limits<double>::infinity());
  std::vector<double> max_v(nl, -std::numeric_limits<double>::infinity());
  {
    pipe::ChannelStage chan(channel_->open_stream());
    pipe::LaneAwgnStage awgn(sigma, awgn_seeds);
    std::optional<pipe::LaneCtleStage> ctle;
    if (use_ctle) {
      ctle.emplace(config_.rx_ctle_boost, config_.rx_ctle_pole,
                   config_.sample_period(), nl);
    }
    pipe::Block blk;
    pipe::Block chan_blk;
    pipe::LaneBlock noisy;
    pipe::LaneBlock eq;
    while (source.produce(blk, block) > 0) {
      chan.process(blk.view(), chan_blk);
      awgn.process(chan_blk.view(), noisy);
      const pipe::LaneView nv = noisy.view();
      if (!use_ctle) {
        // No CTLE: swing and mean read the same samples — one traversal,
        // per lane in sample order like the scalar fused loop.
        for (std::size_t i = 0; i < nv.size; ++i) {
          const double* row = nv.data + i * nl;
          for (std::size_t l = 0; l < nl; ++l) {
            const double v = row[l];
            min_v[l] = std::min(min_v[l], v);
            max_v[l] = std::max(max_v[l], v);
            sum[l] += v;
          }
        }
      } else {
        ctle->process(nv, eq);
        const pipe::LaneView ev = eq.view();
        for (std::size_t i = 0; i < nv.size; ++i) {
          const double* row = nv.data + i * nl;
          for (std::size_t l = 0; l < nl; ++l) {
            min_v[l] = std::min(min_v[l], row[l]);
            max_v[l] = std::max(max_v[l], row[l]);
          }
        }
        for (std::size_t i = 0; i < ev.size; ++i) {
          const double* row = ev.data + i * nl;
          for (std::size_t l = 0; l < nl; ++l) sum[l] += row[l];
        }
      }
    }
  }
  std::vector<double> mean(nl, 0.0);
  for (std::size_t i = 0; i < nl; ++i) {
    results[i].rx_swing_pp = total > 0 ? max_v[i] - min_v[i] : 0.0;
    mean[i] = total > 0 ? sum[i] / static_cast<double>(total) : 0.0;
  }

  // ---- Pass 2: full datapath into the lane sampler/CDR sink ----------------
  source.reset();
  pipe::ChannelStage chan(channel_->open_stream());
  pipe::LaneAwgnStage awgn(sigma, awgn_seeds);
  std::optional<pipe::LaneCtleStage> ctle;
  if (use_ctle) {
    ctle.emplace(config_.rx_ctle_boost, config_.rx_ctle_pole,
                 config_.sample_period(), nl);
  }
  pipe::LaneRfiStage rfi(rx_.rfi_stage(), config_.sample_period(), nl);
  for (std::size_t i = 0; i < nl; ++i) rfi.set_mean(i, mean[i]);
  pipe::LaneRestoreStage restore(rx_.restoring(), config_.sample_period(), nl);
  // Scalar capture points: tx pre-channel (lane-invariant, shared buffer),
  // channel post-AWGN (per lane), restored (per lane).
  std::optional<pipe::LaneWaveformTap> tap_channel;
  std::optional<pipe::LaneWaveformTap> tap_restored;
  if (capture) {
    tap_channel.emplace(nl, capture_cap);
    tap_restored.emplace(nl, capture_cap);
  }

  pipe::LaneSamplerCdrSink::Config sink_cfg;
  sink_cfg.bit_rate = config_.bit_rate;
  sink_cfg.oversampling = config_.cdr.oversampling;
  sink_cfg.phase_offset = util::seconds(config_.rx_phase_offset_ui *
                                        config_.unit_interval().value());
  sink_cfg.ppm_offset = config_.ppm_offset;
  sink_cfg.jitter.random_rms = config_.rx_random_jitter;
  sink_cfg.jitter.sinusoidal_amplitude = config_.rx_sinusoidal_jitter;
  sink_cfg.jitter.sinusoidal_freq =
      util::hertz(config_.sj_freq_ratio * config_.bit_rate.value());
  sink_cfg.sampler = config_.sampler;
  sink_cfg.sampler.threshold = rx_.decision_threshold();
  sink_cfg.dfe_taps = config_.dfe_taps;
  sink_cfg.cdr = config_.cdr;
  sink_cfg.jitter_seeds = std::move(jitter_seeds);
  sink_cfg.sampler_seeds = std::move(sampler_seeds);
  sink_cfg.total_samples = total;
  sink_cfg.stream_t0 = stream_t0;
  sink_cfg.dt = dt;
  sink_cfg.block_samples = block;
  pipe::LaneSamplerCdrSink sink(sink_cfg);

  std::vector<double> tx_capture;
  pipe::Block blk;
  pipe::Block chan_blk;
  pipe::LaneBlock noisy;
  pipe::LaneBlock eq;
  pipe::LaneBlock rfi_out;
  pipe::LaneBlock restored;
  while (source.produce(blk, block) > 0) {
    const pipe::BlockView tx_view = blk.view();
    if (capture && tx_capture.size() < capture_cap) {
      const std::size_t take =
          std::min(capture_cap - tx_capture.size(), tx_view.size);
      tx_capture.insert(tx_capture.end(), tx_view.data, tx_view.data + take);
    }
    chan.process(tx_view, chan_blk);
    awgn.process(chan_blk.view(), noisy);
    pipe::LaneView v = noisy.view();
    if (capture) tap_channel->record(v);
    if (ctle) {
      ctle->process(v, eq);
      v = eq.view();
    }
    rfi.process(v, rfi_out);
    restore.process(rfi_out.view(), restored);
    const pipe::LaneView rv = restored.view();
    if (capture) tap_restored->record(rv);
    sink.consume(rv);
  }
  sink.finish();

  LinkConfig finalize_cfg = config_;
  finalize_cfg.capture_waveforms = capture;
  for (std::size_t i = 0; i < nl; ++i) {
    LinkResult& result = results[i];
    ReceiveResult rx;
    rx.recovered_bits = sink.cdr(i).recovered();
    rx.payload = digital::deframe_stream(rx.recovered_bits, config_.framing);
    rx.aligned = !rx.payload.empty();
    rx.frames = digital::Deserializer::deserialize(rx.payload);
    rx.cdr_decision_phase = sink.cdr(i).decision_phase();
    rx.cdr_phase_updates = sink.cdr(i).phase_updates();
    rx.metastable_samples = sink.metastable_count(i);
    if (capture) {
      result.tx_out = analog::Waveform{stream_t0, dt, tx_capture};
      result.channel_out = tap_channel->take(i);
      rx.restored = tap_restored->take(i);
      // The RFI probe tap is not materialized on the lane path (nothing
      // downstream reads it); rx.rfi_out stays empty.
    }
    result.rx = std::move(rx);
    result.aligned = result.rx.aligned;
    SerDesLink::finalize_result(finalize_cfg, payload, result);
  }
}

std::vector<LaneOutcome> LaneLink::measure(std::uint64_t total_bits,
                                           std::uint64_t chunk_bits,
                                           double confidence_level,
                                           util::PrbsOrder order) {
  const std::size_t n_lanes = lane_seeds_.size();
  std::vector<LaneOutcome> out(n_lanes);
  for (LaneOutcome& o : out) o.measurement.confidence_level = confidence_level;
  std::vector<util::PrbsGenerator> prbs(n_lanes, util::PrbsGenerator(order));
  // Total PRBS bits drawn per lane.  Lanes at the same count have
  // identical generator state (every lane draws the same sequence), so
  // one payload serves all of them; lanes diverge only when alignment
  // failures make a lane re-run footage its neighbours already passed.
  std::vector<std::uint64_t> drawn(n_lanes, 0);
  for (;;) {
    struct Group {
      std::uint64_t drawn;
      std::uint64_t bits;
      std::vector<std::size_t> lanes;
    };
    std::vector<Group> groups;  // insertion-ordered: deterministic sweeps
    for (std::size_t l = 0; l < n_lanes; ++l) {
      // Footage by bits *sent* (drawn), matching measure_ber: an aligned
      // chunk may compare fewer bits than it carried (the CDR tail
      // allowance), and a residual micro-chunk could never align.
      if (drawn[l] >= total_bits) continue;
      const std::uint64_t nb = std::min(chunk_bits, total_bits - drawn[l]);
      Group* group = nullptr;
      for (Group& cand : groups) {
        if (cand.drawn == drawn[l] && cand.bits == nb) {
          group = &cand;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(Group{drawn[l], nb, {}});
        group = &groups.back();
      }
      group->lanes.push_back(l);
    }
    if (groups.empty()) break;
    for (Group& group : groups) {
      // Generate the shared payload from the first lane's generator and
      // advance the others past the same footage.
      const auto payload = prbs[group.lanes[0]].next_bits(
          static_cast<std::size_t>(group.bits));
      for (std::size_t i = 1; i < group.lanes.size(); ++i) {
        (void)prbs[group.lanes[i]].next_bits(
            static_cast<std::size_t>(group.bits));
      }
      // drawn == 0 <=> the lane's first chunk, which carries diagnostics
      // (and waveform capture when the config asks for it), exactly like
      // the scalar path's first-chunk observer.
      const bool first_chunk = group.drawn == 0;
      const bool capture = config_.capture_waveforms && first_chunk;
      std::vector<LinkResult> results;
      run_chunk(payload, group.lanes, capture, results);
      for (std::size_t i = 0; i < group.lanes.size(); ++i) {
        const std::size_t lane = group.lanes[i];
        LinkResult& r = results[i];
        if (first_chunk) {
          LaneOutcome& o = out[lane];
          o.cdr_decision_phase = r.rx.cdr_decision_phase;
          o.cdr_phase_updates = r.rx.cdr_phase_updates;
          o.rx_swing_pp = r.rx_swing_pp;
          o.tx_out = std::move(r.tx_out);
          o.channel_out = std::move(r.channel_out);
          o.restored = std::move(r.rx.restored);
        }
        BerMeasurement& m = out[lane].measurement;
        if (!r.aligned) {
          // Alignment failure: every payload bit in the chunk is lost
          // (measure_ber's accounting).
          m.aligned = false;
          m.errors += group.bits;
          m.bits += group.bits;
        } else {
          m.bits += r.payload_bits_compared;
          m.errors += r.bit_errors;
        }
        drawn[lane] += group.bits;
      }
    }
  }
  for (LaneOutcome& o : out) {
    BerMeasurement& m = o.measurement;
    if (m.bits > 0) {
      m.ber = static_cast<double>(m.errors) / static_cast<double>(m.bits);
    }
    m.ber_upper_bound = ber_upper_bound(m.bits, m.errors, confidence_level);
  }
  return out;
}

}  // namespace serdes::core
