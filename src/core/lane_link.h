// Lane-batched SerDes link: one shared instruction stream driving L
// independent lanes of the streaming datapath at once.
//
// The lanes of a tile share everything that is seed-independent — the PRBS
// payload, TX wire bits and launch levels, the pulse-shaping source and
// the channel stream — computed once per tile instead of once per lane.
// The datapath fans out at the receiver-input AWGN (the first seeded
// stage) into lane-major SoA tiles (pipe/lane_block.h) processed by the
// lane-batched stages in pipe/lane_stages.h, whose inner lane loops
// vectorize across the lane axis.
//
// Hard contract: lane l of a tile run with seed s_l is bit-identical to a
// scalar SerDesLink + measure_ber run whose config carries noise_seed s_l
// — same AWGN/jitter/sampler RNG streams drawn in the same order, same
// filter-state arithmetic, same BER accounting (enforced as a tier-1
// test, tests/lane_batch_test.cc).  Per-lane BER loops can diverge (a
// lane that misaligns keeps re-running chunks its neighbours already
// passed): measure() regroups lanes by PRBS progress each iteration so
// every lane still sees the exact scalar payload sequence.
//
// The one observable difference: the lane path does not materialize the
// RFI probe waveform (ReceiveResult::rfi_out stays empty — reports never
// serialize waveforms and the simulator never reads that tap).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analog/waveform.h"
#include "channel/channel.h"
#include "core/ber.h"
#include "core/config.h"
#include "core/receiver.h"
#include "core/transmitter.h"
#include "util/prbs.h"

namespace serdes::core {

/// Per-lane outcome of a lane-tile BER measurement: the accumulated
/// measurement plus the first-chunk diagnostics the scalar path's
/// on_chunk observer lifts (api::Simulator fills RunReport from these).
struct LaneOutcome {
  BerMeasurement measurement;
  int cdr_decision_phase = 0;
  std::uint64_t cdr_phase_updates = 0;
  double rx_swing_pp = 0.0;
  /// First-chunk diagnostic waveforms (empty when capture is off).
  /// tx_out is lane-invariant (copied per lane); channel_out (post-AWGN,
  /// like the scalar path's capture point) and restored are per lane.
  analog::Waveform tx_out;
  analog::Waveform channel_out;
  analog::Waveform restored;
};

class LaneLink {
 public:
  /// One lane per entry of `lane_seeds`; lane l runs as if its scalar
  /// config had noise_seed == lane_seeds[l].  The config's own noise_seed
  /// is ignored.  Takes ownership of the channel model (opened once per
  /// pass per chunk, shared by every lane).
  LaneLink(const LinkConfig& config, std::unique_ptr<channel::Channel> ch,
           std::vector<std::uint64_t> lane_seeds);

  /// Runs every lane over `total_bits` of PRBS data in chunks of
  /// `chunk_bits` (core::measure_ber's loop, lane-batched): lanes at the
  /// same PRBS position share one payload and one datapath sweep.
  /// Waveform/diagnostic capture follows the config: when
  /// capture_waveforms is set, each lane's first chunk is captured (and
  /// trimmed to capture_max_samples), exactly like api::Simulator's
  /// scalar observer.
  [[nodiscard]] std::vector<LaneOutcome> measure(std::uint64_t total_bits,
                                                 std::uint64_t chunk_bits,
                                                 double confidence_level,
                                                 util::PrbsOrder order);

  [[nodiscard]] const Receiver& receiver() const { return rx_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }
  [[nodiscard]] std::size_t lanes() const { return lane_seeds_.size(); }

 private:
  /// One shared datapath sweep over `payload` for the given lane subset
  /// (indices into lane_seeds_), filling one LinkResult per entry.
  void run_chunk(const std::vector<std::uint8_t>& payload,
                 const std::vector<std::size_t>& lanes, bool capture,
                 std::vector<LinkResult>& results);

  LinkConfig config_;
  Transmitter tx_;
  Receiver rx_;
  std::unique_ptr<channel::Channel> channel_;
  std::vector<std::uint64_t> lane_seeds_;
  /// Chunks run so far per lane — the scalar SerDesLink::run_counter_,
  /// one per lane, so lane l's per-chunk AWGN seed sequence matches the
  /// scalar link's noise_seed + 100 + counter stream.
  std::vector<std::uint64_t> chunks_run_;
};

}  // namespace serdes::core
