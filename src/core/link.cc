#include "core/link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/equalizer.h"
#include "channel/noise.h"

namespace serdes::core {

SerDesLink::SerDesLink(const LinkConfig& config,
                       std::unique_ptr<channel::Channel> ch)
    : config_(config), tx_(config), rx_(config), channel_(std::move(ch)) {
  if (!channel_) throw std::invalid_argument("SerDesLink: null channel");
}

LinkResult SerDesLink::run(const std::vector<std::uint8_t>& payload) {
  LinkResult result;
  result.payload_bits_sent = payload.size();

  if (config_.tx_ffe_deemphasis != 0.0) {
    // FFE path: pre-distorted multi-level launch instead of the plain
    // rail-to-rail driver waveform.
    const channel::TxFfe ffe = channel::TxFfe::de_emphasis(
        config_.tx_ffe_deemphasis, config_.driver.vdd);
    result.tx_out =
        ffe.shape(tx_.wire_bits(payload), config_.bit_rate,
                  config_.samples_per_ui, tx_.driver().output_rise_time());
  } else {
    result.tx_out = tx_.transmit_bits(payload);
  }
  result.channel_out = channel_->transmit(result.tx_out);

  // Receiver-input AWGN; a fresh seed per run keeps repeated runs
  // statistically independent while the whole experiment stays
  // deterministic.  The per-sample sigma is scaled so the noise spectral
  // density (and thus the post-front-end RMS) is independent of the
  // waveform sample rate — see LinkConfig::channel_noise_rms.
  const double nyquist = 0.5 / config_.sample_period().value();
  const double density_scale = std::sqrt(
      std::max(1.0, nyquist / config_.noise_reference_bandwidth.value()));
  channel::AwgnSource noise(config_.channel_noise_rms * density_scale,
                            config_.noise_seed + 100 + run_counter_++);
  noise.apply(result.channel_out);
  result.rx_swing_pp = result.channel_out.peak_to_peak();

  if (config_.rx_ctle_boost.value() > 0.0) {
    const channel::RxCtle ctle(config_.rx_ctle_boost, config_.rx_ctle_pole,
                               config_.sample_period());
    result.rx = rx_.receive(ctle.equalize(result.channel_out));
  } else {
    result.rx = rx_.receive(result.channel_out);
  }
  result.aligned = result.rx.aligned;

  const auto& got = result.rx.payload;
  const std::size_t n = std::min(payload.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((payload[i] != 0) != (got[i] != 0)) ++result.bit_errors;
  }
  // Bits the receiver never produced (truncated tail) count as errors only
  // beyond the CDR pipeline allowance of a couple of UIs.
  result.payload_bits_compared = n;
  if (result.payload_bits_compared > 0) {
    result.ber = static_cast<double>(result.bit_errors) /
                 static_cast<double>(result.payload_bits_compared);
  }
  if (!config_.capture_waveforms) {
    result.tx_out = {};
    result.channel_out = {};
    result.rx.rfi_out = {};
    result.rx.restored = {};
  }
  return result;
}

LinkResult SerDesLink::run_prbs(std::size_t nbits) {
  return run_prbs(nbits, config_.prbs_order);
}

LinkResult SerDesLink::run_prbs(std::size_t nbits, util::PrbsOrder order) {
  util::PrbsGenerator prbs(order);
  return run(prbs.next_bits(nbits));
}

}  // namespace serdes::core
