#include "core/link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "channel/equalizer.h"
#include "channel/noise.h"
#include "digital/framing.h"
#include "pipe/pam_stages.h"
#include "pipe/stages.h"

namespace serdes::core {

SerDesLink::SerDesLink(const LinkConfig& config,
                       std::unique_ptr<channel::Channel> ch)
    : config_(config), tx_(config), rx_(config), channel_(std::move(ch)) {
  if (!channel_) throw std::invalid_argument("SerDesLink: null channel");
}

LinkResult SerDesLink::run(const std::vector<std::uint8_t>& payload) {
  // Receiver-input AWGN: a fresh seed per run keeps repeated runs
  // statistically independent while the whole experiment stays
  // deterministic.  Both execution paths consume the same per-run seed.
  const std::uint64_t noise_run_seed =
      config_.noise_seed + 100 + run_counter_++;
  if (config_.execution == LinkConfig::Execution::kBatch) {
    return run_batch(payload, noise_run_seed);
  }
  return config_.modulation == LinkConfig::Modulation::kPam4
             ? run_streaming_pam4(payload, noise_run_seed)
             : run_streaming(payload, noise_run_seed);
}

bool SerDesLink::has_xtalk() const {
  return std::any_of(config_.xtalk.begin(), config_.xtalk.end(),
                     [](const XtalkPath& p) { return p.gain != 0.0; });
}

namespace {

/// Per-sample AWGN sigma — the shared config helper, aliased so the two
/// execution paths below read naturally.
double noise_sigma(const LinkConfig& config) {
  return per_sample_noise_sigma(config);
}

/// Builds the crosstalk-injection paths for one pipeline pass.  All lanes
/// of a bus carry the same framed PRBS stream, so an aggressor's launch
/// levels are the victim's levels shifted by the configured UI delay (idle
/// zeros prepended).  FEXT paths get a private stream of the victim's
/// channel model; zero-gain paths are dropped entirely so a zero-coupling
/// bus stays byte-identical to independent links.
std::vector<pipe::XtalkInjectStage::Path> build_xtalk_paths(
    const LinkConfig& config, channel::Channel& ch,
    const std::vector<double>& levels) {
  std::vector<pipe::XtalkInjectStage::Path> paths;
  for (const XtalkPath& x : config.xtalk) {
    if (x.gain == 0.0) continue;
    pipe::XtalkInjectStage::Path p;
    p.levels.assign(static_cast<std::size_t>(std::max(0, x.delay_ui)), 0.0);
    p.levels.insert(p.levels.end(), levels.begin(), levels.end());
    p.gain = x.gain;
    if (x.through_channel) p.channel_stream = ch.open_stream();
    paths.push_back(std::move(p));
  }
  return paths;
}

}  // namespace

LinkResult SerDesLink::run_batch(const std::vector<std::uint8_t>& payload,
                                 std::uint64_t noise_run_seed) {
  if (config_.modulation == LinkConfig::Modulation::kPam4) {
    throw std::invalid_argument(
        "SerDesLink: pam4 requires the streaming execution path");
  }
  if (has_xtalk()) {
    throw std::invalid_argument(
        "SerDesLink: crosstalk injection requires the streaming execution "
        "path");
  }
  if (!config_.dfe_taps.empty()) {
    throw std::invalid_argument(
        "SerDesLink: the DFE requires the streaming execution path");
  }
  LinkResult result;
  result.payload_bits_sent = payload.size();

  if (config_.tx_ffe_deemphasis != 0.0) {
    // FFE path: pre-distorted multi-level launch instead of the plain
    // rail-to-rail driver waveform.
    const channel::TxFfe ffe = channel::TxFfe::de_emphasis(
        config_.tx_ffe_deemphasis, config_.driver.vdd);
    result.tx_out =
        ffe.shape(tx_.wire_bits(payload), config_.bit_rate,
                  config_.samples_per_ui, tx_.driver().output_rise_time());
  } else {
    result.tx_out = tx_.transmit_bits(payload);
  }
  result.channel_out = channel_->transmit(result.tx_out);

  channel::AwgnSource noise(noise_sigma(config_), noise_run_seed);
  noise.apply(result.channel_out);
  result.rx_swing_pp = result.channel_out.peak_to_peak();

  if (config_.rx_ctle_boost.value() > 0.0) {
    const channel::RxCtle ctle(config_.rx_ctle_boost, config_.rx_ctle_pole,
                               config_.sample_period());
    result.rx = rx_.receive(ctle.equalize(result.channel_out));
  } else {
    result.rx = rx_.receive(result.channel_out);
  }
  result.aligned = result.rx.aligned;
  result.decision_threshold = rx_.decision_threshold();

  finalize(payload, result);
  return result;
}

LinkResult SerDesLink::run_streaming(const std::vector<std::uint8_t>& payload,
                                     std::uint64_t noise_run_seed) {
  LinkResult result;
  result.payload_bits_sent = payload.size();

  const std::vector<std::uint8_t> bits = tx_.wire_bits(payload);
  const int spu = config_.samples_per_ui;
  const util::Second ui = config_.unit_interval();
  const util::Second rise = tx_.driver().output_rise_time();

  // Per-bit launch levels and stream time base, matching the batch TX
  // exactly: plain NRZ carries the driver delay, the FFE path launches the
  // pre-distorted levels at t0 = 0 (as TxFfe::shape does).
  std::vector<double> levels(bits.size());
  util::Second stream_t0 = util::seconds(0.0);
  double fill = 0.0;
  if (config_.tx_ffe_deemphasis != 0.0) {
    const channel::TxFfe ffe = channel::TxFfe::de_emphasis(
        config_.tx_ffe_deemphasis, config_.driver.vdd);
    levels = ffe.levels(bits);
  } else {
    const double vdd = config_.driver.vdd.value();
    for (std::size_t i = 0; i < bits.size(); ++i) {
      levels[i] = bits[i] ? vdd : 0.0;
    }
    stream_t0 = tx_.driver().total_delay();
  }

  // Crosstalk paths are built from the (pre-move) launch levels; one
  // private set per pipeline pass so pass state never leaks across passes.
  std::vector<pipe::XtalkInjectStage::Path> xtalk_pass1 =
      build_xtalk_paths(config_, *channel_, levels);
  std::vector<pipe::XtalkInjectStage::Path> xtalk_pass2 =
      build_xtalk_paths(config_, *channel_, levels);

  pipe::LevelPulseSource source(std::move(levels), ui, spu, rise, stream_t0,
                                fill);
  const std::uint64_t total = source.total_samples();
  const util::Second dt = source.dt();
  const std::size_t block =
      std::max<std::size_t>(1, config_.stream_block_samples);
  const double sigma = noise_sigma(config_);
  const bool use_ctle = config_.rx_ctle_boost.value() > 0.0;
  const bool capture = config_.capture_waveforms;
  const std::size_t capture_cap = config_.capture_max_samples > 0
                                      ? config_.capture_max_samples
                                      : static_cast<std::size_t>(-1);

  // ---- Pass 1: DC mean and swing over the receiver input -------------------
  // The RFI front end subtracts the whole-stream mean (the AC coupling in
  // steady state); streaming can only know it after a full pass.  The first
  // pass runs the cheap front half of the datapath (TX levels, channel
  // IIR/FIR state, noise, CTLE) block by block, accumulating the mean in
  // sample order — the exact sum the batch path's mean_value() computes —
  // plus the pre-CTLE min/max for rx_swing_pp.  The second pass re-runs the
  // same deterministic front half and carries on through the RFI, restoring
  // stage, sampler and CDR.
  double sum = 0.0;
  double min_v = std::numeric_limits<double>::infinity();
  double max_v = -std::numeric_limits<double>::infinity();
  {
    // Reuse the exact stage implementations pass 2 runs, so the two passes
    // cannot drift apart: front = channel + noise (the swing point), then
    // the optional CTLE (the mean point).
    pipe::Pipeline front;
    front.add(std::make_unique<pipe::ChannelStage>(channel_->open_stream()));
    if (!xtalk_pass1.empty()) {
      front.add(std::make_unique<pipe::XtalkInjectStage>(
          std::move(xtalk_pass1), ui, spu, rise, stream_t0));
    }
    front.add(std::make_unique<pipe::AwgnStage>(sigma, noise_run_seed));
    pipe::Pipeline eq;
    if (use_ctle) {
      eq.add(std::make_unique<pipe::CtleStage>(
          config_.rx_ctle_boost, config_.rx_ctle_pole,
          config_.sample_period()));
    }
    pipe::Block blk;
    while (source.produce(blk, block) > 0) {
      const pipe::BlockView noisy = front.process(blk.view());
      const pipe::BlockView rx_in = eq.process(noisy);
      if (rx_in.data == noisy.data) {
        // No CTLE: swing and mean read the same samples — one traversal
        // (the accumulation order, and thus the mean, is unchanged).
        for (std::size_t i = 0; i < noisy.size; ++i) {
          const double v = noisy[i];
          min_v = std::min(min_v, v);
          max_v = std::max(max_v, v);
          sum += v;
        }
      } else {
        for (std::size_t i = 0; i < noisy.size; ++i) {
          min_v = std::min(min_v, noisy[i]);
          max_v = std::max(max_v, noisy[i]);
        }
        for (std::size_t i = 0; i < rx_in.size; ++i) sum += rx_in[i];
      }
    }
  }
  result.rx_swing_pp = total > 0 ? max_v - min_v : 0.0;
  const double mean = total > 0 ? sum / static_cast<double>(total) : 0.0;

  // ---- Pass 2: full datapath into the sampler/CDR sink ---------------------
  source.reset();
  pipe::Pipeline pipeline;
  pipeline.add(std::make_unique<pipe::ChannelStage>(channel_->open_stream()));
  if (!xtalk_pass2.empty()) {
    pipeline.add(std::make_unique<pipe::XtalkInjectStage>(
        std::move(xtalk_pass2), ui, spu, rise, stream_t0));
  }
  pipeline.add(std::make_unique<pipe::AwgnStage>(sigma, noise_run_seed));
  pipe::WaveformTapStage* tap_channel = nullptr;
  pipe::WaveformTapStage* tap_rfi = nullptr;
  pipe::WaveformTapStage* tap_restored = nullptr;
  if (capture) {
    tap_channel = static_cast<pipe::WaveformTapStage*>(&pipeline.add(
        std::make_unique<pipe::WaveformTapStage>(capture_cap)));
  }
  if (use_ctle) {
    pipeline.add(std::make_unique<pipe::CtleStage>(
        config_.rx_ctle_boost, config_.rx_ctle_pole, config_.sample_period()));
  }
  auto rfi_stage = std::make_unique<pipe::RfiFrontEndStage>(
      rx_.rfi_stage(), config_.sample_period());
  rfi_stage->set_mean(mean);
  pipeline.add(std::move(rfi_stage));
  if (capture) {
    tap_rfi = static_cast<pipe::WaveformTapStage*>(&pipeline.add(
        std::make_unique<pipe::WaveformTapStage>(capture_cap)));
  }
  pipeline.add(std::make_unique<pipe::RestoringStage>(
      rx_.restoring(), config_.sample_period()));
  if (capture) {
    tap_restored = static_cast<pipe::WaveformTapStage*>(&pipeline.add(
        std::make_unique<pipe::WaveformTapStage>(capture_cap)));
  }

  pipe::SamplerCdrSink::Config sink_cfg;
  sink_cfg.bit_rate = config_.bit_rate;
  sink_cfg.oversampling = config_.cdr.oversampling;
  sink_cfg.phase_offset = util::seconds(config_.rx_phase_offset_ui *
                                        config_.unit_interval().value());
  sink_cfg.ppm_offset = config_.ppm_offset;
  sink_cfg.jitter.random_rms = config_.rx_random_jitter;
  sink_cfg.jitter.sinusoidal_amplitude = config_.rx_sinusoidal_jitter;
  sink_cfg.jitter.sinusoidal_freq =
      util::hertz(config_.sj_freq_ratio * config_.bit_rate.value());
  sink_cfg.jitter.seed = config_.noise_seed + 1;
  sink_cfg.sampler = config_.sampler;
  sink_cfg.sampler.threshold = rx_.decision_threshold();
  sink_cfg.sampler.seed = config_.noise_seed + 2;
  sink_cfg.dfe_taps = config_.dfe_taps;
  sink_cfg.cdr = config_.cdr;
  sink_cfg.total_samples = total;
  sink_cfg.stream_t0 = stream_t0;
  sink_cfg.dt = dt;
  sink_cfg.block_samples = block;
  pipe::SamplerCdrSink sink(sink_cfg);

  std::vector<double> tx_capture;
  pipe::Block blk;
  while (source.produce(blk, block) > 0) {
    const pipe::BlockView tx_view = blk.view();
    if (capture && tx_capture.size() < capture_cap) {
      const std::size_t take =
          std::min(capture_cap - tx_capture.size(), tx_view.size);
      tx_capture.insert(tx_capture.end(), tx_view.data, tx_view.data + take);
    }
    sink.consume(pipeline.process(tx_view));
  }
  sink.finish();

  ReceiveResult rx;
  rx.recovered_bits = sink.cdr().recovered();
  rx.payload = digital::deframe_stream(rx.recovered_bits, config_.framing);
  rx.aligned = !rx.payload.empty();
  rx.frames = digital::Deserializer::deserialize(rx.payload);
  rx.cdr_decision_phase = sink.cdr().decision_phase();
  rx.cdr_phase_updates = sink.cdr().phase_updates();
  rx.metastable_samples = sink.metastable_count();
  if (capture) {
    result.tx_out = analog::Waveform{stream_t0, dt, std::move(tx_capture)};
    result.channel_out = tap_channel->take();
    rx.rfi_out = tap_rfi->take();
    rx.restored = tap_restored->take();
  }
  result.rx = std::move(rx);
  result.aligned = result.rx.aligned;
  result.decision_threshold = rx_.decision_threshold();

  finalize(payload, result);
  return result;
}

LinkResult SerDesLink::run_streaming_pam4(
    const std::vector<std::uint8_t>& payload, std::uint64_t noise_run_seed) {
  LinkResult result;
  result.payload_bits_sent = payload.size();

  const std::vector<std::uint8_t> bits = tx_.wire_bits(payload);
  const int spu = config_.samples_per_ui;
  const util::Second ui = config_.unit_interval();  // PAM4: symbol period
  const util::Second rise = tx_.driver().output_rise_time();
  const double vdd = config_.driver.vdd.value();
  const double step = vdd / 3.0;

  // Gray-map bit pairs (MSB first) onto the 4 launch levels, two bits per
  // symbol: (0,0)->0, (0,1)->1, (1,1)->2, (1,0)->3 in ascending voltage,
  // so every slicer error against an adjacent level costs exactly one bit.
  // The alternating-1010 preamble would gray-map to a constant symbol 3
  // (no edges — the CDR could never lock), so the preamble region instead
  // launches alternating full-swing 3,0 symbols; the deframer aligns on
  // the sync word, not the preamble content, so recovery is unaffected.
  const std::size_t preamble_syms =
      std::min<std::size_t>(
          static_cast<std::size_t>(std::max(0, config_.framing.preamble_bits)),
          bits.size()) /
      2;
  const std::size_t nsym = (bits.size() + 1) / 2;
  std::vector<double> levels(nsym);
  for (std::size_t s = 0; s < nsym; ++s) {
    if (s < preamble_syms) {
      levels[s] = (s % 2 == 0) ? vdd : 0.0;
      continue;
    }
    const bool msb = bits[2 * s] != 0;
    const bool lsb = 2 * s + 1 < bits.size() && bits[2 * s + 1] != 0;
    const int symbol = msb ? (lsb ? 2 : 3) : (lsb ? 1 : 0);
    levels[s] = static_cast<double>(symbol) * step;
  }
  const util::Second stream_t0 = tx_.driver().total_delay();

  std::vector<pipe::XtalkInjectStage::Path> xtalk_pass1 =
      build_xtalk_paths(config_, *channel_, levels);
  std::vector<pipe::XtalkInjectStage::Path> xtalk_cal =
      build_xtalk_paths(config_, *channel_, levels);
  std::vector<pipe::XtalkInjectStage::Path> xtalk_pass2 =
      build_xtalk_paths(config_, *channel_, levels);

  pipe::LevelPulseSource source(std::move(levels), ui, spu, rise, stream_t0,
                                0.0);
  const std::uint64_t total = source.total_samples();
  const util::Second dt = source.dt();
  const std::size_t block =
      std::max<std::size_t>(1, config_.stream_block_samples);
  const double sigma = noise_sigma(config_);
  const bool use_ctle = config_.rx_ctle_boost.value() > 0.0;
  const bool capture = config_.capture_waveforms;
  const std::size_t capture_cap = config_.capture_max_samples > 0
                                      ? config_.capture_max_samples
                                      : static_cast<std::size_t>(-1);

  // ---- Pass 1: slicer calibration over the equalized stream ----------------
  // There is no RFI/restoring stage in the PAM4 path (both are hard 2-level
  // nonlinearities); the slicers read the CTLE output directly.  Their
  // thresholds come from a noise-free replay of the composite stream
  // (channel + crosstalk + CTLE, no AWGN): the middle threshold at the
  // midpoint of the observed clean range, the outer two at +/- one third
  // of it — the boundaries between four equally spaced levels.  The range
  // midpoint, unlike the stream mean, is immune to the duty skew the
  // leading/trailing zero-level regions introduce, and leaving the noise
  // out keeps its tails from inflating the range (and so pushing the
  // outer thresholds off the sub-eye boundaries).  The pre-CTLE noisy
  // min/max feed rx_swing_pp exactly as in the NRZ path.
  double min_pre = std::numeric_limits<double>::infinity();
  double max_pre = -std::numeric_limits<double>::infinity();
  double min_post = std::numeric_limits<double>::infinity();
  double max_post = -std::numeric_limits<double>::infinity();
  {
    pipe::Pipeline front;
    front.add(std::make_unique<pipe::ChannelStage>(channel_->open_stream()));
    if (!xtalk_pass1.empty()) {
      front.add(std::make_unique<pipe::XtalkInjectStage>(
          std::move(xtalk_pass1), ui, spu, rise, stream_t0));
    }
    front.add(std::make_unique<pipe::AwgnStage>(sigma, noise_run_seed));
    pipe::Pipeline cal;
    cal.add(std::make_unique<pipe::ChannelStage>(channel_->open_stream()));
    if (!xtalk_cal.empty()) {
      cal.add(std::make_unique<pipe::XtalkInjectStage>(
          std::move(xtalk_cal), ui, spu, rise, stream_t0));
    }
    if (use_ctle) {
      cal.add(std::make_unique<pipe::CtleStage>(
          config_.rx_ctle_boost, config_.rx_ctle_pole,
          config_.sample_period()));
    }
    pipe::Block blk;
    while (source.produce(blk, block) > 0) {
      const pipe::BlockView noisy = front.process(blk.view());
      for (std::size_t i = 0; i < noisy.size; ++i) {
        min_pre = std::min(min_pre, noisy[i]);
        max_pre = std::max(max_pre, noisy[i]);
      }
      const pipe::BlockView clean = cal.process(blk.view());
      for (std::size_t i = 0; i < clean.size; ++i) {
        const double v = clean[i];
        min_post = std::min(min_post, v);
        max_post = std::max(max_post, v);
      }
    }
  }
  result.rx_swing_pp = total > 0 ? max_pre - min_pre : 0.0;
  const double mid = total > 0 ? 0.5 * (min_post + max_post) : 0.0;
  const double third = total > 0 ? (max_post - min_post) / 3.0 : 0.0;

  // ---- Pass 2: full datapath into the PAM4 sampler/CDR sink ----------------
  source.reset();
  pipe::Pipeline pipeline;
  pipeline.add(std::make_unique<pipe::ChannelStage>(channel_->open_stream()));
  if (!xtalk_pass2.empty()) {
    pipeline.add(std::make_unique<pipe::XtalkInjectStage>(
        std::move(xtalk_pass2), ui, spu, rise, stream_t0));
  }
  pipeline.add(std::make_unique<pipe::AwgnStage>(sigma, noise_run_seed));
  pipe::WaveformTapStage* tap_channel = nullptr;
  pipe::WaveformTapStage* tap_eq = nullptr;
  if (capture) {
    tap_channel = static_cast<pipe::WaveformTapStage*>(&pipeline.add(
        std::make_unique<pipe::WaveformTapStage>(capture_cap)));
  }
  if (use_ctle) {
    pipeline.add(std::make_unique<pipe::CtleStage>(
        config_.rx_ctle_boost, config_.rx_ctle_pole, config_.sample_period()));
  }
  if (capture) {
    // The equalized stream is what the slicers see — it fills the report's
    // "restored" slot (there is no restoring stage under PAM4).
    tap_eq = static_cast<pipe::WaveformTapStage*>(&pipeline.add(
        std::make_unique<pipe::WaveformTapStage>(capture_cap)));
  }

  pipe::PamSamplerCdrSink::Config sink_cfg;
  sink_cfg.symbol_rate =
      util::hertz(config_.bit_rate.value() /
                  static_cast<double>(config_.bits_per_ui()));
  sink_cfg.oversampling = config_.cdr.oversampling;
  sink_cfg.phase_offset = util::seconds(config_.rx_phase_offset_ui *
                                        config_.unit_interval().value());
  sink_cfg.ppm_offset = config_.ppm_offset;
  sink_cfg.jitter.random_rms = config_.rx_random_jitter;
  sink_cfg.jitter.sinusoidal_amplitude = config_.rx_sinusoidal_jitter;
  sink_cfg.jitter.sinusoidal_freq =
      util::hertz(config_.sj_freq_ratio * config_.bit_rate.value());
  sink_cfg.jitter.seed = config_.noise_seed + 1;
  sink_cfg.sampler = config_.sampler;
  sink_cfg.sampler.seed = config_.noise_seed + 2;
  sink_cfg.threshold_low = mid - third;
  sink_cfg.threshold_mid = mid;
  sink_cfg.threshold_high = mid + third;
  sink_cfg.extra_thresholds = config_.pam4_extra_thresholds;
  sink_cfg.dfe_taps = config_.dfe_taps;
  sink_cfg.cdr = config_.cdr;
  sink_cfg.total_samples = total;
  sink_cfg.stream_t0 = stream_t0;
  sink_cfg.dt = dt;
  sink_cfg.block_samples = block;
  pipe::PamSamplerCdrSink sink(sink_cfg);

  std::vector<double> tx_capture;
  pipe::Block blk;
  while (source.produce(blk, block) > 0) {
    const pipe::BlockView tx_view = blk.view();
    if (capture && tx_capture.size() < capture_cap) {
      const std::size_t take =
          std::min(capture_cap - tx_capture.size(), tx_view.size);
      tx_capture.insert(tx_capture.end(), tx_view.data, tx_view.data + take);
    }
    sink.consume(pipeline.process(tx_view));
  }
  sink.finish();

  ReceiveResult rx;
  rx.recovered_bits = sink.recovered_bits();
  rx.payload = digital::deframe_stream(rx.recovered_bits, config_.framing);
  rx.aligned = !rx.payload.empty();
  rx.frames = digital::Deserializer::deserialize(rx.payload);
  rx.cdr_decision_phase = sink.cdr().decision_phase();
  rx.cdr_phase_updates = sink.cdr().phase_updates();
  rx.metastable_samples = sink.metastable_count();
  if (capture) {
    result.tx_out = analog::Waveform{stream_t0, dt, std::move(tx_capture)};
    result.channel_out = tap_channel->take();
    rx.restored = tap_eq->take();
  }
  result.rx = std::move(rx);
  result.aligned = result.rx.aligned;
  result.decision_threshold = mid;

  finalize(payload, result);
  return result;
}

void SerDesLink::finalize_result(const LinkConfig& config,
                                 const std::vector<std::uint8_t>& payload,
                                 LinkResult& result) {
  const auto& got = result.rx.payload;
  const std::size_t n = std::min(payload.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((payload[i] != 0) != (got[i] != 0)) ++result.bit_errors;
  }
  result.payload_bits_compared = n;
  // Bits the receiver never produced (truncated tail) count as errors once
  // they exceed the CDR pipeline allowance of a couple of UIs.  Unaligned
  // runs are excluded: there the whole chunk is already charged as lost by
  // the BER accounting in measure_ber.
  if (result.aligned && payload.size() > got.size()) {
    const std::uint64_t missing = payload.size() - got.size();
    // The allowance is per recovered symbol: PAM4 loses 2 bits per UI the
    // CDR pipeline still holds at end of stream.
    const std::uint64_t allowance =
        kCdrTailAllowanceBits * static_cast<std::uint64_t>(config.bits_per_ui());
    if (missing > allowance) {
      const std::uint64_t lost = missing - allowance;
      result.bit_errors += lost;
      result.payload_bits_compared += lost;
    }
  }
  if (result.payload_bits_compared > 0) {
    result.ber = static_cast<double>(result.bit_errors) /
                 static_cast<double>(result.payload_bits_compared);
  }
  if (!config.capture_waveforms) {
    result.tx_out = {};
    result.channel_out = {};
    result.rx.rfi_out = {};
    result.rx.restored = {};
  } else if (config.capture_max_samples > 0) {
    // Trim to the diagnostic window (the streaming taps never retained
    // more; the batch path materialized everything, so cut it here to keep
    // the two paths' observable results identical).
    const std::size_t cap = config.capture_max_samples;
    for (analog::Waveform* w : {&result.tx_out, &result.channel_out,
                                &result.rx.rfi_out, &result.rx.restored}) {
      if (w->size() > cap) w->samples().resize(cap);
    }
  }
}

LinkResult SerDesLink::run_prbs(std::size_t nbits) {
  return run_prbs(nbits, config_.prbs_order);
}

LinkResult SerDesLink::run_prbs(std::size_t nbits, util::PrbsOrder order) {
  util::PrbsGenerator prbs(order);
  return run(prbs.next_bits(nbits));
}

}  // namespace serdes::core
