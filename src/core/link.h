// End-to-end SerDes link: transmitter -> channel -> receiver, plus BER
// accounting.  The top-level object every example and benchmark drives.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/channel.h"
#include "core/config.h"
#include "core/receiver.h"
#include "core/transmitter.h"
#include "util/prbs.h"

namespace serdes::core {

/// Outcome of one link run.
struct LinkResult {
  bool aligned = false;
  std::uint64_t payload_bits_sent = 0;
  std::uint64_t payload_bits_compared = 0;
  std::uint64_t bit_errors = 0;
  double ber = 0.0;
  /// Peak-to-peak swing at the receiver input (always populated, even when
  /// waveform capture is off).
  double rx_swing_pp = 0.0;
  /// Decision threshold the sampler(s) ran at: the restoring-stage midpoint
  /// under NRZ, the calibrated middle slicer threshold under PAM4.
  double decision_threshold = 0.0;
  ReceiveResult rx;
  /// TX output and channel output waveforms (for plotting / eye analysis).
  /// Empty when `LinkConfig::capture_waveforms` is false.
  analog::Waveform tx_out;
  analog::Waveform channel_out;

  [[nodiscard]] bool error_free() const {
    return aligned && bit_errors == 0 && payload_bits_compared > 0;
  }
};

class SerDesLink {
 public:
  /// Receiver bits missing at the end of an aligned run are tolerated up to
  /// this CDR pipeline allowance; anything beyond it counts as errors.
  static constexpr std::uint64_t kCdrTailAllowanceBits = 2;

  /// The link takes ownership of the channel model.
  SerDesLink(const LinkConfig& config, std::unique_ptr<channel::Channel> ch);

  /// Transmits `payload` and compares what the receiver recovered.
  /// Dispatches on LinkConfig::execution: the streaming block pipeline
  /// (default, O(block) waveform memory) or the legacy whole-waveform
  /// batch path.  Both are bit-identical.
  [[nodiscard]] LinkResult run(const std::vector<std::uint8_t>& payload);

  /// Convenience: PRBS payload of `nbits` using the config's pattern order.
  [[nodiscard]] LinkResult run_prbs(std::size_t nbits);
  [[nodiscard]] LinkResult run_prbs(std::size_t nbits, util::PrbsOrder order);

  [[nodiscard]] const Transmitter& transmitter() const { return tx_; }
  [[nodiscard]] Receiver& receiver() { return rx_; }
  [[nodiscard]] const channel::Channel& channel() const { return *channel_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }

  /// Toggles waveform capture after construction (see
  /// LinkConfig::capture_waveforms); api::Simulator keeps the first
  /// diagnostic chunk and drops waveforms for the bulk BER chunks.
  void set_capture_waveforms(bool capture) {
    config_.capture_waveforms = capture;
  }

  /// Shared tail of every run path (including the lane-batched LaneLink):
  /// payload comparison, truncated-tail error accounting, BER, and
  /// waveform dropping/trimming per `config`'s capture settings.
  static void finalize_result(const LinkConfig& config,
                              const std::vector<std::uint8_t>& payload,
                              LinkResult& result);

 private:
  [[nodiscard]] LinkResult run_batch(const std::vector<std::uint8_t>& payload,
                                     std::uint64_t noise_run_seed);
  [[nodiscard]] LinkResult run_streaming(
      const std::vector<std::uint8_t>& payload, std::uint64_t noise_run_seed);
  [[nodiscard]] LinkResult run_streaming_pam4(
      const std::vector<std::uint8_t>& payload, std::uint64_t noise_run_seed);
  /// True when any configured crosstalk path has a nonzero gain (zero-gain
  /// paths are dropped so a zero-coupling bus lane stays byte-identical to
  /// a standalone link).
  [[nodiscard]] bool has_xtalk() const;
  void finalize(const std::vector<std::uint8_t>& payload, LinkResult& result) {
    finalize_result(config_, payload, result);
  }

  LinkConfig config_;
  Transmitter tx_;
  Receiver rx_;
  std::unique_ptr<channel::Channel> channel_;
  std::uint64_t run_counter_ = 0;
};

}  // namespace serdes::core
