#include "core/power_model.h"

#include "analog/driver.h"
#include "analog/inverter.h"
#include "analog/rfi.h"

namespace serdes::core {

util::AreaUm2 LinkBudget::total_area() const {
  return driver_area + rfi_area + restoring_area + dff_area +
         serializer_area + deserializer_area + cdr_area;
}

std::vector<BlockBudget> LinkBudget::blocks() const {
  return {
      {"cmos_driver", driver_power, driver_area},
      {"rx_frontend_rfi", rfi_power, rfi_area},
      {"static_inverter", restoring_power, restoring_area},
      {"sampling_dff", sampler_dff_power, dff_area},
      {"serializer", serializer_power, serializer_area},
      {"deserializer", deserializer_power, deserializer_area},
      {"cdr", cdr_power, cdr_area},
  };
}

namespace {

/// Generate, place and power-analyze one digital block.
struct DigitalBlock {
  util::Watt power;
  util::AreaUm2 area;
  int cells;
  int dffs;
};

DigitalBlock analyze_block(flow::Netlist netlist, util::Hertz clock,
                           util::Volt vdd, double utilization,
                           const flow::PlacementConfig& base_placement,
                           double data_activity) {
  flow::PlacementConfig pcfg = base_placement;
  pcfg.utilization = utilization;
  const flow::PlacementResult placed = flow::place(netlist, pcfg);

  flow::PowerConfig pwr;
  pwr.clock = clock;
  pwr.vdd = vdd;
  pwr.data_activity = data_activity;
  const flow::PowerReport report = flow::analyze_power(netlist, pwr);

  const auto stats = netlist.stats();
  return DigitalBlock{report.total(), placed.die_area, stats.cell_count,
                      stats.dff_count};
}

}  // namespace

LinkBudget compute_link_budget(const LinkConfig& link,
                               const BudgetModelConfig& model) {
  LinkBudget budget;
  const util::Volt vdd = link.driver.vdd;
  const util::Hertz f = link.bit_rate;

  // ---- Transmit driver: dynamic (alpha = P(0->1) = 0.25 for random NRZ)
  // plus crowbar overhead during edges. ----
  const analog::InverterChainDriver driver(link.driver);
  const util::Watt drv_dyn = driver.dynamic_power(f, 0.25);
  budget.driver_power = drv_dyn * 1.15;
  budget.driver_area = util::square_microns(
      driver.total_width_um() * model.analog_area_per_um_width);

  // ---- RFI: static (class-A bias) power is the whole story. ----
  const analog::RfiCircuit rfi(link.rfi);
  budget.rfi_power = util::watts(rfi.static_current().value() * vdd.value());
  budget.rfi_area = util::square_microns(
      (link.rfi.wn_um + link.rfi.wp_um + link.rfi.pseudo_res_w_um) *
      model.analog_area_per_um_width);

  // ---- Restoring inverter: crowbar while the input dwells near threshold
  // (about half of each transition) plus its dynamic switching. ----
  const analog::InverterCell restoring(link.restoring_wn_um,
                                       link.restoring_wp_um, vdd);
  const double crowbar =
      restoring.static_current(restoring.switching_threshold()).value() *
      vdd.value();
  const double restoring_dyn =
      0.25 * restoring.switching_energy(util::femtofarads(20.0)).value() *
      f.value();
  budget.restoring_power = util::watts(0.5 * crowbar + restoring_dyn);
  budget.restoring_area = util::square_microns(
      (link.restoring_wn_um + link.restoring_wp_um) *
      model.analog_area_per_um_width);

  // ---- Sampling flip-flops: the CDR's multi-phase samplers are
  // custom-sized (~15x a library flop) for aperture and metastability;
  // clock pins toggle every cycle, data at the NRZ rate. ----
  const double c_clk = 45e-15;
  const double c_data = 45e-15;
  const int n_samplers = link.cdr.oversampling + 2;  // + retime stages
  const double v2 = vdd.value() * vdd.value();
  budget.sampler_dff_power = util::watts(
      n_samplers * (c_clk * 1.0 + c_data * 0.25) * v2 * f.value());
  budget.dff_area = util::square_microns(n_samplers * 16.0 * 20.0 /
                                         16.0);  // ~20 um^2 x size factor

  // ---- Digital blocks through the mini flow. ----
  // Per-block floorplan utilizations mirror the paper's OpenLANE runs: the
  // deserializer macro is placed sparsely (it dominates die area), the
  // serializer more densely.
  flow::SerdesRtlConfig rtl = model.rtl;
  rtl.cdr_oversampling = link.cdr.oversampling;

  const DigitalBlock ser =
      analyze_block(flow::generate_serializer(rtl), f, vdd,
                    /*utilization=*/0.62, model.placement,
                    model.data_activity);
  budget.serializer_power = ser.power;
  budget.serializer_area = ser.area;

  flow::SerdesRtlConfig rx_rtl = rtl;
  rx_rtl.fifo_depth = rtl.fifo_depth + 4;  // deeper RX-side buffering
  const DigitalBlock des =
      analyze_block(flow::generate_deserializer(rx_rtl), f, vdd,
                    /*utilization=*/0.52, model.placement,
                    model.data_activity);
  budget.deserializer_power = des.power;
  budget.deserializer_area = des.area;

  const DigitalBlock cdr =
      analyze_block(flow::generate_cdr(rtl), f, vdd,
                    /*utilization=*/0.55, model.placement,
                    model.data_activity);
  budget.cdr_power = cdr.power;
  budget.cdr_area = cdr.area;

  return budget;
}

}  // namespace serdes::core
