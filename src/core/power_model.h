// Link power budget and area breakdown (paper Fig 10 / Fig 11 / headline).
//
// Combines the analog models (driver dynamic power, RFI static current,
// restoring-inverter crowbar, DFF clocking) with the flow library's
// netlist-based analysis of the three digital blocks (serializer,
// deserializer, CDR) into the budget the paper reports: TX 4.5 mW,
// RX front end 11.2 mW total, serializer 235 mW, deserializer 128 mW,
// CDR 59 mW — 437.7 mW and 219 pJ/bit at 2 Gbps.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "flow/place.h"
#include "flow/power.h"
#include "flow/rtlgen.h"
#include "util/units.h"

namespace serdes::core {

struct BlockBudget {
  std::string name;
  util::Watt power{0.0};
  util::AreaUm2 area{0.0};
};

struct LinkBudget {
  // Front-end pieces (Fig 10 pie).
  util::Watt driver_power{0.0};
  util::Watt rfi_power{0.0};
  util::Watt restoring_power{0.0};
  util::Watt sampler_dff_power{0.0};
  // Digital blocks.
  util::Watt serializer_power{0.0};
  util::Watt deserializer_power{0.0};
  util::Watt cdr_power{0.0};

  // Areas (Fig 10 bars + Fig 11 blocks).
  util::AreaUm2 driver_area{0.0};
  util::AreaUm2 rfi_area{0.0};
  util::AreaUm2 restoring_area{0.0};
  util::AreaUm2 dff_area{0.0};
  util::AreaUm2 serializer_area{0.0};
  util::AreaUm2 deserializer_area{0.0};
  util::AreaUm2 cdr_area{0.0};

  [[nodiscard]] util::Watt tx_power() const { return driver_power; }
  [[nodiscard]] util::Watt rx_frontend_power() const {
    return rfi_power + restoring_power + sampler_dff_power;
  }
  [[nodiscard]] util::Watt link_core_power() const {
    return tx_power() + rx_frontend_power();
  }
  [[nodiscard]] util::Watt total_power() const {
    return link_core_power() + serializer_power + deserializer_power +
           cdr_power;
  }
  [[nodiscard]] util::AreaUm2 total_area() const;
  [[nodiscard]] util::Joule energy_per_bit(util::Hertz bit_rate) const {
    return util::joules(total_power().value() / bit_rate.value());
  }

  [[nodiscard]] std::vector<BlockBudget> blocks() const;
};

struct BudgetModelConfig {
  /// RTL generation parameters for the digital blocks.
  flow::SerdesRtlConfig rtl{};
  /// Placement parameters (utilization sets block area like OpenLANE's
  /// default low-utilization floorplans).
  flow::PlacementConfig placement{};
  /// Data activity on digital nets.
  double data_activity = 0.25;
  /// Analog layout density: silicon area per um of device width (captures
  /// contacts, guard rings and routing overhead around analog devices).
  double analog_area_per_um_width = 3.3;
};

/// Computes the full budget for a link configuration at its bit rate.
/// This internally generates, places and analyzes the three digital-block
/// netlists — a few hundred thousand cells at the paper's FIFO depth.
LinkBudget compute_link_budget(const LinkConfig& link,
                               const BudgetModelConfig& model = {});

}  // namespace serdes::core
