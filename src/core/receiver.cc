#include "core/receiver.h"

#include "digital/framing.h"

namespace serdes::core {

Receiver::Receiver(const LinkConfig& config)
    : config_(config),
      rfi_circuit_(config.rfi),
      rfi_stage_(rfi_circuit_, config.sample_period()),
      restoring_(config.restoring_wn_um, config.restoring_wp_um,
                 config.rfi.vdd, config.sample_period()) {
  // Decision level: the restoring inverter's metastable point — the output
  // voltage equals the input there, so it is the natural slicing level for
  // the rail-restored waveform.
  threshold_ = restoring_.threshold();
}

ReceiveResult Receiver::receive(const analog::Waveform& channel_out) {
  ReceiveResult result;

  // Analog front end.
  result.rfi_out = rfi_stage_.process(channel_out);
  result.restored = restoring_.process(result.rfi_out);

  // Multi-phase sampling.
  digital::MultiphaseClockGenerator clocks(
      config_.bit_rate, config_.cdr.oversampling,
      util::seconds(config_.rx_phase_offset_ui *
                    config_.unit_interval().value()),
      config_.ppm_offset);
  channel::JitterModel::Config jitter_cfg;
  jitter_cfg.random_rms = config_.rx_random_jitter;
  jitter_cfg.sinusoidal_amplitude = config_.rx_sinusoidal_jitter;
  jitter_cfg.sinusoidal_freq =
      util::hertz(config_.sj_freq_ratio * config_.bit_rate.value());
  jitter_cfg.seed = config_.noise_seed + 1;
  channel::JitterModel jitter(jitter_cfg);

  analog::DffSampler::Config sampler_cfg = config_.sampler;
  sampler_cfg.threshold = threshold_;
  sampler_cfg.seed = config_.noise_seed + 2;
  analog::DffSampler sampler(sampler_cfg);

  const auto samples =
      digital::sample_waveform(result.restored, clocks, sampler, &jitter);
  result.metastable_samples = sampler.metastable_count();

  // Clock and data recovery.
  digital::OversamplingCdr cdr(config_.cdr);
  result.recovered_bits = cdr.recover(samples);
  result.cdr_decision_phase = cdr.decision_phase();
  result.cdr_phase_updates = cdr.phase_updates();

  // Frame alignment and deserialization.
  result.payload =
      digital::deframe_stream(result.recovered_bits, config_.framing);
  result.aligned = !result.payload.empty();
  result.frames = digital::Deserializer::deserialize(result.payload);
  return result;
}

}  // namespace serdes::core
