// Receiver: AC coupling + RFI + restoring inverter + multi-phase sampling +
// oversampling CDR + frame alignment + deserializer (paper Fig 5).
#pragma once

#include <cstdint>
#include <vector>

#include "analog/rfi.h"
#include "analog/sampler.h"
#include "analog/waveform.h"
#include "channel/noise.h"
#include "core/config.h"
#include "digital/cdr.h"
#include "digital/deserializer.h"
#include "digital/sampling.h"

namespace serdes::core {

/// Everything the receiver recovered from one waveform, with diagnostics.
struct ReceiveResult {
  /// Raw CDR-recovered bit stream (preamble + sync + payload as seen).
  std::vector<std::uint8_t> recovered_bits;
  /// Payload after sync-word alignment (empty if alignment failed).
  std::vector<std::uint8_t> payload;
  /// Deserialized frames of the payload.
  std::vector<digital::ParallelFrame> frames;
  bool aligned = false;
  int cdr_decision_phase = 0;
  std::uint64_t cdr_phase_updates = 0;
  std::uint64_t metastable_samples = 0;
  /// RFI output waveform (for eye analysis / Fig 8 plots).
  analog::Waveform rfi_out;
  /// Restored (rail-to-rail) waveform presented to the samplers.
  analog::Waveform restored;
};

class Receiver {
 public:
  explicit Receiver(const LinkConfig& config);

  /// Full receive chain over the channel-output waveform.
  [[nodiscard]] ReceiveResult receive(const analog::Waveform& channel_out);

  /// The RFI model in use (bias/gain/bandwidth introspection).
  [[nodiscard]] const analog::RfiCircuit& rfi() const { return rfi_circuit_; }
  /// The calibrated behavioural RFI front end (the streaming pipeline
  /// builds its block-wise equivalent from this).
  [[nodiscard]] const analog::RfiStage& rfi_stage() const {
    return rfi_stage_;
  }
  [[nodiscard]] const analog::RestoringInverter& restoring() const {
    return restoring_;
  }
  /// Decision threshold used by the samplers (restoring-stage midpoint).
  [[nodiscard]] double decision_threshold() const { return threshold_; }

 private:
  LinkConfig config_;
  analog::RfiCircuit rfi_circuit_;
  analog::RfiStage rfi_stage_;
  analog::RestoringInverter restoring_;
  double threshold_;
};

}  // namespace serdes::core
