#include "core/sensitivity.h"

#include <cmath>
#include <memory>

#include "channel/channel.h"
#include "core/link.h"
#include "util/math.h"

namespace serdes::core {

namespace {

/// Link configuration retargeted to `bit_rate` with optional stress.
LinkConfig configure(const LinkConfig& base, util::Hertz bit_rate,
                     double sj_ui, double rj_ui, double noise_factor) {
  LinkConfig c = base;
  c.bit_rate = bit_rate;
  const double ui = c.unit_interval().value();
  c.rx_sinusoidal_jitter = util::seconds(sj_ui * ui);
  // Keep the base absolute jitter but add the stress term scaled by UI.
  c.rx_random_jitter =
      util::seconds(base.rx_random_jitter.value() + rj_ui * ui);
  c.channel_noise_rms = base.channel_noise_rms * noise_factor;
  return c;
}

/// True if a link with a flat channel of the given output swing runs clean.
bool error_free_at_swing(const LinkConfig& cfg, double swing_v,
                         std::size_t nbits) {
  const double vdd = cfg.driver.vdd.value();
  if (swing_v >= vdd) return true;
  if (swing_v <= 0.0) return false;
  const double loss_db = 20.0 * std::log10(vdd / swing_v);
  SerDesLink link(cfg,
                  std::make_unique<channel::FlatChannel>(
                      util::decibels(loss_db)));
  const LinkResult r = link.run_prbs(nbits);
  return r.error_free();
}

}  // namespace

double measure_sensitivity(const LinkConfig& base, util::Hertz bit_rate,
                           const SensitivitySweepConfig& sweep) {
  const LinkConfig cfg =
      configure(base, bit_rate, sweep.stress_sj_ui, sweep.stress_rj_ui,
                sweep.stress_noise_factor);
  double lo = 0.5e-3;   // known-bad
  double hi = 0.30;     // known-good swing (well above any sensitivity here)
  if (error_free_at_swing(cfg, lo, sweep.bits_per_trial)) return lo;
  if (!error_free_at_swing(cfg, hi, sweep.bits_per_trial)) return hi;
  while (hi - lo > sweep.amplitude_tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (error_free_at_swing(cfg, mid, sweep.bits_per_trial)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double measure_max_channel_loss(const LinkConfig& base, util::Hertz bit_rate,
                                const SensitivitySweepConfig& sweep) {
  const LinkConfig cfg = configure(base, bit_rate, 0.0, 0.0, 1.0);
  // The physical channel is a fixed-geometry lossy line (FR4-class skin and
  // dielectric coefficients) cascaded with a variable flat attenuator: the
  // line's dispersion grows with frequency while the attenuator absorbs the
  // remaining budget.  The reported figure is the total loss at the data's
  // Nyquist frequency — this is what makes the maximum tolerable loss
  // shrink as the bit rate rises (ISI eats into the noise-limited margin).
  const util::Hertz nyquist = util::hertz(bit_rate.value() / 2.0);
  channel::LossyLineChannel::Params line_params;
  line_params.dc_loss_db = 1.0;
  line_params.skin_loss_db_at_1ghz = 14.0;
  line_params.dielectric_loss_db_at_1ghz = 8.0;
  const channel::LossyLineChannel probe_line(line_params, cfg.sample_period());
  const double line_loss_at_nyquist =
      -util::amplitude_db(probe_line.attenuation_at(nyquist)).value();

  auto clean_at_total_loss = [&](double total_db) {
    const double flat_db = total_db - line_loss_at_nyquist;
    if (flat_db < 0.0) return true;  // less than the line itself: trivially ok
    auto composite = std::make_unique<channel::CompositeChannel>();
    composite->add(std::make_unique<channel::LossyLineChannel>(
        line_params, cfg.sample_period()));
    composite->add(std::make_unique<channel::FlatChannel>(
        util::decibels(flat_db)));
    SerDesLink link(cfg, std::move(composite));
    const LinkResult r = link.run_prbs(sweep.bits_per_trial);
    return r.error_free();
  };
  double lo = 5.0;    // known-good loss
  double hi = 65.0;   // known-bad loss
  if (!clean_at_total_loss(lo)) return lo;
  if (clean_at_total_loss(hi)) return hi;
  while (hi - lo > sweep.loss_tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (clean_at_total_loss(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<SensitivityPoint> sensitivity_sweep(
    const LinkConfig& base, const std::vector<util::Hertz>& rates,
    const SensitivitySweepConfig& sweep) {
  std::vector<SensitivityPoint> points;
  points.reserve(rates.size());
  for (util::Hertz f : rates) {
    SensitivityPoint p;
    p.bit_rate = f;
    p.sensitivity_v = measure_sensitivity(base, f, sweep);
    p.max_channel_loss_db = measure_max_channel_loss(base, f, sweep);
    points.push_back(p);
  }
  return points;
}

}  // namespace serdes::core
