// Receiver sensitivity and maximum-channel-loss sweeps (paper Fig 9).
//
// Two distinct acceptance criteria, mirroring how such numbers are
// measured:
//  * sensitivity(f)  — the minimum receiver-input peak-to-peak swing that
//    stays error-free under *stress* conditions (added sinusoidal jitter
//    and worst-case sampling phase), i.e. a guaranteed operating point;
//  * max_channel_loss(f) — the largest flat channel loss (from the 1.8 V
//    TX swing) that still yields zero observed errors under nominal
//    conditions, i.e. the absolute failure edge.
// The stress margin is why the sensitivity curve sits above the swing
// implied by the max-loss curve, as in the paper's figure.
#pragma once

#include <vector>

#include "core/config.h"
#include "util/units.h"

namespace serdes::core {

struct SensitivityPoint {
  util::Hertz bit_rate{0.0};
  /// Minimum error-free input swing under stress (volts, peak-to-peak).
  double sensitivity_v = 0.0;
  /// Maximum flat channel loss with zero errors, nominal conditions (dB).
  double max_channel_loss_db = 0.0;
};

struct SensitivitySweepConfig {
  /// Bits per trial (the "zero BER" window).
  std::size_t bits_per_trial = 3000;
  /// Binary-search resolution on amplitude (volts).
  double amplitude_tolerance = 0.5e-3;
  /// Binary-search resolution on loss (dB).
  double loss_tolerance = 0.25;
  /// Stress: sinusoidal jitter amplitude as a fraction of UI applied for
  /// the sensitivity criterion.
  double stress_sj_ui = 0.14;
  /// Stress: additional random jitter (fraction of UI RMS).
  double stress_rj_ui = 0.05;
  /// Stress: receiver-noise multiplier for the sensitivity criterion
  /// (guaranteed-operation margin over the nominal noise floor).
  double stress_noise_factor = 4.0;
};

/// Minimum error-free swing at one bit rate (stress conditions).
double measure_sensitivity(const LinkConfig& base, util::Hertz bit_rate,
                           const SensitivitySweepConfig& sweep = {});

/// Maximum flat loss at one bit rate (nominal conditions).
double measure_max_channel_loss(const LinkConfig& base, util::Hertz bit_rate,
                                const SensitivitySweepConfig& sweep = {});

/// Full Fig 9 sweep over the given bit rates.
std::vector<SensitivityPoint> sensitivity_sweep(
    const LinkConfig& base, const std::vector<util::Hertz>& rates,
    const SensitivitySweepConfig& sweep = {});

}  // namespace serdes::core
