#include "core/transmitter.h"

#include "digital/framing.h"

namespace serdes::core {

Transmitter::Transmitter(const LinkConfig& config)
    : config_(config), driver_(config.driver) {}

std::vector<std::uint8_t> Transmitter::wire_bits(
    const std::vector<std::uint8_t>& payload) const {
  return digital::frame_stream(payload, config_.framing);
}

analog::Waveform Transmitter::transmit_bits(
    const std::vector<std::uint8_t>& payload) const {
  return driver_.drive(wire_bits(payload), config_.bit_rate,
                       config_.samples_per_ui);
}

analog::Waveform Transmitter::transmit_frames(
    const std::vector<digital::ParallelFrame>& frames) const {
  return transmit_bits(digital::Serializer::serialize(frames));
}

}  // namespace serdes::core
