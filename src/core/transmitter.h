// Transmitter: serializer + framing + voltage-mode driver.
//
// Converts parallel frames (or a raw payload bit stream) into the analog
// waveform launched into the channel, per paper Section IV-A.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/driver.h"
#include "analog/waveform.h"
#include "core/config.h"
#include "digital/serializer.h"

namespace serdes::core {

class Transmitter {
 public:
  explicit Transmitter(const LinkConfig& config);

  /// Serializes frames, adds the link-layer preamble/sync, and drives the
  /// channel.  Returns the TX output waveform.
  [[nodiscard]] analog::Waveform transmit_frames(
      const std::vector<digital::ParallelFrame>& frames) const;

  /// Transmits a raw payload bit stream (framed the same way).
  [[nodiscard]] analog::Waveform transmit_bits(
      const std::vector<std::uint8_t>& payload) const;

  /// The on-wire bit stream for a payload (preamble + sync + payload) —
  /// exposed so tests can check the analog waveform bit-for-bit.
  [[nodiscard]] std::vector<std::uint8_t> wire_bits(
      const std::vector<std::uint8_t>& payload) const;

  [[nodiscard]] const analog::InverterChainDriver& driver() const {
    return driver_;
  }

 private:
  LinkConfig config_;
  analog::InverterChainDriver driver_;
};

}  // namespace serdes::core
