#include "digital/cdr.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace serdes::digital {

OversamplingCdr::OversamplingCdr(const CdrConfig& config) : config_(config) {
  if (config.oversampling < 2) {
    throw std::invalid_argument("OversamplingCdr: oversampling must be >= 2");
  }
  if (config.window_uis < 1) {
    throw std::invalid_argument("OversamplingCdr: window_uis must be >= 1");
  }
  if (config.glitch_filter_radius < 0 ||
      2 * config.glitch_filter_radius + 1 > config.oversampling) {
    throw std::invalid_argument(
        "OversamplingCdr: glitch filter wider than one UI");
  }
  if (config.jitter_hysteresis < 1) {
    throw std::invalid_argument(
        "OversamplingCdr: jitter_hysteresis must be >= 1");
  }
  votes_.assign(static_cast<std::size_t>(config.oversampling), 0);
  // Ring holds enough history for the glitch majority around a decision
  // that happens G samples in the past.
  ring_.assign(static_cast<std::size_t>(4 * config.oversampling), 0);
  // Start sampling mid-UI: with no edges seen yet this is the neutral guess.
  pick_ = config.oversampling / 2;
  next_decision_ = static_cast<std::uint64_t>(pick_);
  window_countdown_ = static_cast<std::uint64_t>(config.oversampling) *
                      static_cast<std::uint64_t>(config.window_uis);
}

bool OversamplingCdr::majority_at(std::uint64_t center) const {
  const int g = config_.glitch_filter_radius;
  int ones = 0;
  const auto size = static_cast<std::uint64_t>(ring_.size());
  for (int off = -g; off <= g; ++off) {
    const std::uint64_t idx = center + static_cast<std::uint64_t>(off);
    ones += ring_[idx % size];
  }
  return ones * 2 > 2 * g + 1;
}

bool OversamplingCdr::aux_majority_at(std::uint64_t center) const {
  const int g = config_.glitch_filter_radius;
  int ones = 0;
  const auto size = static_cast<std::uint64_t>(aux_ring_.size());
  for (int off = -g; off <= g; ++off) {
    const std::uint64_t idx = center + static_cast<std::uint64_t>(off);
    ones += aux_ring_[idx % size];
  }
  return ones * 2 > 2 * g + 1;
}

void OversamplingCdr::evaluate_window() {
  ++windows_;
  const auto n = static_cast<std::size_t>(config_.oversampling);
  // Bit boundary from the circular mean of the edge-vote histogram.  A
  // plain argmax flips between adjacent bins when the (jittered, slewed)
  // edge straddles a bin boundary, and a flip across the UI wrap would
  // teleport the decision phase to the worst sampling point; the circular
  // mean degrades gracefully instead.
  double re = 0.0;
  double im = 0.0;
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += votes_[i];
    const double angle =
        2.0 * 3.141592653589793 * static_cast<double>(i) /
        static_cast<double>(n);
    re += static_cast<double>(votes_[i]) * std::cos(angle);
    im += static_cast<double>(votes_[i]) * std::sin(angle);
  }
  // Decay rather than clear: keeps boundary memory across windows with few
  // transitions (long run lengths) while still tracking drift.
  for (auto& v : votes_) v /= 2;
  if (total == 0) return;  // no edges: hold the current phase

  double boundary_bin =
      std::atan2(im, re) / (2.0 * 3.141592653589793) * static_cast<double>(n);
  if (boundary_bin < 0.0) boundary_bin += static_cast<double>(n);
  const int proposal = static_cast<int>(std::lround(boundary_bin +
                                                    static_cast<double>(n) /
                                                        2.0)) %
                       static_cast<int>(n);
  if (proposal == pick_) {
    candidate_ = -1;
    candidate_streak_ = 0;
    return;
  }
  // Jitter-correction hysteresis: require J consecutive agreeing windows.
  if (proposal == candidate_) {
    ++candidate_streak_;
  } else {
    candidate_ = proposal;
    candidate_streak_ = 1;
  }
  if (candidate_streak_ >= config_.jitter_hysteresis) {
    // Shift the absolute decision pointer by the signed shortest phase
    // distance; crossing phase 0 is then an ordinary +/-1 step, not a
    // dropped or doubled bit.
    const int n_int = config_.oversampling;
    int delta = candidate_ - pick_;
    if (delta > n_int / 2) delta -= n_int;
    if (delta < -n_int / 2) delta += n_int;
    next_decision_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(next_decision_) + delta);
    pick_ = candidate_;
    candidate_ = -1;
    candidate_streak_ = 0;
    ++phase_updates_;
  }
}

std::vector<std::uint8_t> OversamplingCdr::recover(
    const std::vector<std::uint8_t>& samples) {
  for (std::uint8_t s : samples) push(s != 0);
  return recovered_;
}

}  // namespace serdes::digital
