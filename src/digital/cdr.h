// Fully digital oversampling clock-and-data recovery (paper Section IV-C).
//
// The receiver samples the incoming data with N phase-shifted copies of an
// external reference clock (N samples per unit interval), stores them in a
// register bank, detects data transitions to locate the bit boundary, and
// picks the sampling phase farthest from the transitions as the decision
// point.  Two scan-configurable refinements from the paper:
//   * glitch correction — each recovered bit is a majority vote over a
//     (2G+1)-sample neighbourhood instead of a single sample;
//   * jitter correction — the decision phase only moves after the boundary
//     detector agrees on a new location for J consecutive vote windows
//     (hysteresis against jitter-induced edge scatter).
#pragma once

#include <cstdint>
#include <vector>

namespace serdes::digital {

struct CdrConfig {
  /// Samples per unit interval (the oversampling factor).
  int oversampling = 5;
  /// Bit-boundary vote window length, in unit intervals.
  int window_uis = 16;
  /// Glitch-correction scan: majority-vote half-width G (0 disables).
  int glitch_filter_radius = 1;
  /// Jitter-correction scan: consecutive windows J required to move the
  /// sampling phase (1 = move immediately).
  int jitter_hysteresis = 2;
};

class OversamplingCdr {
 public:
  explicit OversamplingCdr(const CdrConfig& config);

  /// Pushes one raw oversampled comparator output.  Recovered bits appear
  /// in recovered() with a small pipeline delay (the glitch filter is
  /// non-causal by G samples).  Inline, with the ring/phase positions kept
  /// as wrapping cursors — this runs once per oversample, so the hot path
  /// must stay free of 64-bit divisions.
  void push(bool sample) {
    ring_[ring_pos_] = sample ? 1 : 0;

    if (count_ > 0 && sample != last_sample_) {
      // Transition between samples count_-1 and count_: bin it at the
      // phase of the later sample.
      ++votes_[phase_pos_];
      ++edges_;
    }
    last_sample_ = sample;

    // Decide the bit whose centre sample is `count_ - G` once its trailing
    // glitch-filter context has arrived.
    const auto g = static_cast<std::uint64_t>(config_.glitch_filter_radius);
    if (count_ >= g) {
      const std::uint64_t center = count_ - g;
      if (center == next_decision_) {
        recovered_.push_back(majority_at(center) ? 1 : 0);
        next_decision_ += static_cast<std::uint64_t>(config_.oversampling);
      }
    }

    ++count_;
    if (++ring_pos_ == ring_.size()) ring_pos_ = 0;
    if (++phase_pos_ == votes_.size()) phase_pos_ = 0;
    if (--window_countdown_ == 0) {
      window_countdown_ = static_cast<std::uint64_t>(config_.oversampling) *
                          static_cast<std::uint64_t>(config_.window_uis);
      evaluate_window();
    }
  }

  /// Dual-rail push for PAM4: `sample` is the middle-threshold (MSB)
  /// comparator output — it alone drives edge detection and phase picks,
  /// exactly like push() — while `aux` carries the decoded LSB rail, which
  /// rides along through its own ring and gets the same glitch-filter
  /// majority vote at each decision instant.  Recovered LSBs appear in
  /// aux_recovered(), index-aligned with recovered().  push() and push2()
  /// must not be mixed on one instance.
  void push2(bool sample, bool aux) {
    if (aux_ring_.empty()) aux_ring_.assign(ring_.size(), 0);
    ring_[ring_pos_] = sample ? 1 : 0;
    aux_ring_[ring_pos_] = aux ? 1 : 0;

    if (count_ > 0 && sample != last_sample_) {
      ++votes_[phase_pos_];
      ++edges_;
    }
    last_sample_ = sample;

    const auto g = static_cast<std::uint64_t>(config_.glitch_filter_radius);
    if (count_ >= g) {
      const std::uint64_t center = count_ - g;
      if (center == next_decision_) {
        recovered_.push_back(majority_at(center) ? 1 : 0);
        aux_recovered_.push_back(aux_majority_at(center) ? 1 : 0);
        next_decision_ += static_cast<std::uint64_t>(config_.oversampling);
      }
    }

    ++count_;
    if (++ring_pos_ == ring_.size()) ring_pos_ = 0;
    if (++phase_pos_ == votes_.size()) phase_pos_ = 0;
    if (--window_countdown_ == 0) {
      window_countdown_ = static_cast<std::uint64_t>(config_.oversampling) *
                          static_cast<std::uint64_t>(config_.window_uis);
      evaluate_window();
    }
  }

  /// Batch helper: pushes all samples and returns the recovered bits.
  [[nodiscard]] std::vector<std::uint8_t> recover(
      const std::vector<std::uint8_t>& samples);

  [[nodiscard]] const std::vector<std::uint8_t>& recovered() const {
    return recovered_;
  }

  /// LSB rail recovered by push2(), index-aligned with recovered().
  [[nodiscard]] const std::vector<std::uint8_t>& aux_recovered() const {
    return aux_recovered_;
  }

  /// Current decision phase (0 .. oversampling-1).
  [[nodiscard]] int decision_phase() const { return pick_; }
  /// Number of phase updates accepted by the jitter-correction logic.
  [[nodiscard]] std::uint64_t phase_updates() const { return phase_updates_; }
  /// Number of boundary-vote windows evaluated.
  [[nodiscard]] std::uint64_t windows_evaluated() const { return windows_; }
  /// Total data transitions observed.
  [[nodiscard]] std::uint64_t edges_seen() const { return edges_; }

  [[nodiscard]] const CdrConfig& config() const { return config_; }

 private:
  void evaluate_window();
  [[nodiscard]] bool majority_at(std::uint64_t center) const;
  [[nodiscard]] bool aux_majority_at(std::uint64_t center) const;

  CdrConfig config_;
  std::vector<std::uint32_t> votes_;     // edge votes per phase bin
  std::vector<std::uint8_t> ring_;       // recent raw samples
  std::vector<std::uint8_t> aux_ring_;   // LSB rail (push2 only; else empty)
  std::uint64_t count_ = 0;              // samples consumed
  std::size_t ring_pos_ = 0;             // == count_ % ring_.size()
  std::size_t phase_pos_ = 0;            // == count_ % oversampling
  std::uint64_t window_countdown_ = 0;   // samples until the next window
  bool last_sample_ = false;
  int pick_;                             // decision phase (reporting)
  /// Absolute sample index of the next decision.  Phase updates shift this
  /// by the signed phase delta, so a pick that wraps across phase 0 does
  /// not duplicate or drop a bit (slips only occur for genuine add/drop
  /// under frequency offset).
  std::uint64_t next_decision_;
  int candidate_ = -1;                   // pending new phase
  int candidate_streak_ = 0;
  std::uint64_t phase_updates_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t edges_ = 0;
  std::vector<std::uint8_t> recovered_;
  std::vector<std::uint8_t> aux_recovered_;
};

}  // namespace serdes::digital
