// Fully digital oversampling clock-and-data recovery (paper Section IV-C).
//
// The receiver samples the incoming data with N phase-shifted copies of an
// external reference clock (N samples per unit interval), stores them in a
// register bank, detects data transitions to locate the bit boundary, and
// picks the sampling phase farthest from the transitions as the decision
// point.  Two scan-configurable refinements from the paper:
//   * glitch correction — each recovered bit is a majority vote over a
//     (2G+1)-sample neighbourhood instead of a single sample;
//   * jitter correction — the decision phase only moves after the boundary
//     detector agrees on a new location for J consecutive vote windows
//     (hysteresis against jitter-induced edge scatter).
#pragma once

#include <cstdint>
#include <vector>

namespace serdes::digital {

struct CdrConfig {
  /// Samples per unit interval (the oversampling factor).
  int oversampling = 5;
  /// Bit-boundary vote window length, in unit intervals.
  int window_uis = 16;
  /// Glitch-correction scan: majority-vote half-width G (0 disables).
  int glitch_filter_radius = 1;
  /// Jitter-correction scan: consecutive windows J required to move the
  /// sampling phase (1 = move immediately).
  int jitter_hysteresis = 2;
};

class OversamplingCdr {
 public:
  explicit OversamplingCdr(const CdrConfig& config);

  /// Pushes one raw oversampled comparator output.  Recovered bits appear
  /// in recovered() with a small pipeline delay (the glitch filter is
  /// non-causal by G samples).
  void push(bool sample);

  /// Batch helper: pushes all samples and returns the recovered bits.
  [[nodiscard]] std::vector<std::uint8_t> recover(
      const std::vector<std::uint8_t>& samples);

  [[nodiscard]] const std::vector<std::uint8_t>& recovered() const {
    return recovered_;
  }

  /// Current decision phase (0 .. oversampling-1).
  [[nodiscard]] int decision_phase() const { return pick_; }
  /// Number of phase updates accepted by the jitter-correction logic.
  [[nodiscard]] std::uint64_t phase_updates() const { return phase_updates_; }
  /// Number of boundary-vote windows evaluated.
  [[nodiscard]] std::uint64_t windows_evaluated() const { return windows_; }
  /// Total data transitions observed.
  [[nodiscard]] std::uint64_t edges_seen() const { return edges_; }

  [[nodiscard]] const CdrConfig& config() const { return config_; }

 private:
  void evaluate_window();
  [[nodiscard]] bool majority_at(std::uint64_t center) const;

  CdrConfig config_;
  std::vector<std::uint32_t> votes_;     // edge votes per phase bin
  std::vector<std::uint8_t> ring_;       // recent raw samples
  std::uint64_t count_ = 0;              // samples consumed
  bool last_sample_ = false;
  int pick_;                             // decision phase (reporting)
  /// Absolute sample index of the next decision.  Phase updates shift this
  /// by the signed phase delta, so a pick that wraps across phase 0 does
  /// not duplicate or drop a bit (slips only occur for genuine add/drop
  /// under frequency offset).
  std::uint64_t next_decision_;
  int candidate_ = -1;                   // pending new phase
  int candidate_streak_ = 0;
  std::uint64_t phase_updates_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t edges_ = 0;
  std::vector<std::uint8_t> recovered_;
};

}  // namespace serdes::digital
