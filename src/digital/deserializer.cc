#include "digital/deserializer.h"

namespace serdes::digital {

void Deserializer::push(bool bit) {
  if (bit) {
    const int lane = pending_count_ / ParallelFrame::kBitsPerLane;
    const int pos = pending_count_ % ParallelFrame::kBitsPerLane;
    current_.lanes[static_cast<std::size_t>(lane)] |=
        (1u << pos);
  }
  ++pending_count_;
  if (pending_count_ == ParallelFrame::kBits) {
    frames_.push_back(current_);
    current_ = ParallelFrame{};
    pending_count_ = 0;
  }
}

void Deserializer::reset() {
  current_ = ParallelFrame{};
  pending_count_ = 0;
}

std::vector<ParallelFrame> Deserializer::deserialize(
    const std::vector<std::uint8_t>& bits) {
  Deserializer d;
  for (std::uint8_t b : bits) d.push(b != 0);
  return d.frames_;
}

}  // namespace serdes::digital
