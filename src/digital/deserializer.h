// Deserializer: serial bit stream -> 8 lanes x 32-bit words.
//
// The functional inverse of Serializer (paper Section IV-B-c): an FSM that
// shifts serial bits into a 256-bit register bank and presents them as
// eight 32-bit parallel outputs per frame.
#pragma once

#include <cstdint>
#include <vector>

#include "digital/serializer.h"

namespace serdes::digital {

class Deserializer {
 public:
  /// Streaming interface: push one recovered bit; frames become available
  /// as they complete.
  void push(bool bit);

  /// Completed frames so far (in arrival order).
  [[nodiscard]] const std::vector<ParallelFrame>& frames() const {
    return frames_;
  }

  /// Bits buffered toward the next (incomplete) frame.
  [[nodiscard]] int pending_bits() const { return pending_count_; }

  /// Resets FSM state, discarding any partial frame.
  void reset();

  /// One-shot conversion of a whole bit stream (must be a multiple of 256
  /// bits; the tail is dropped otherwise, mirroring the hardware FSM which
  /// only presents complete frames).
  [[nodiscard]] static std::vector<ParallelFrame> deserialize(
      const std::vector<std::uint8_t>& bits);

 private:
  ParallelFrame current_{};
  int pending_count_ = 0;
  std::vector<ParallelFrame> frames_;
};

}  // namespace serdes::digital
