#include "digital/framing.h"

namespace serdes::digital {

std::vector<std::uint8_t> frame_stream(const std::vector<std::uint8_t>& payload,
                                       const FramingConfig& config) {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(config.preamble_bits) + 32 +
              payload.size());
  for (int i = 0; i < config.preamble_bits; ++i) {
    out.push_back(static_cast<std::uint8_t>(i & 1));
  }
  for (int b = 0; b < 32; ++b) {
    out.push_back(static_cast<std::uint8_t>((config.sync_word >> b) & 1u));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<std::size_t> find_payload_start(
    const std::vector<std::uint8_t>& bits, const FramingConfig& config,
    int max_mismatches) {
  if (bits.size() < 32) return std::nullopt;
  for (std::size_t start = 0; start + 32 <= bits.size(); ++start) {
    int mismatches = 0;
    for (int b = 0; b < 32 && mismatches <= max_mismatches; ++b) {
      const auto expected =
          static_cast<std::uint8_t>((config.sync_word >> b) & 1u);
      if (bits[start + static_cast<std::size_t>(b)] != expected) ++mismatches;
    }
    if (mismatches <= max_mismatches) return start + 32;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> deframe_stream(const std::vector<std::uint8_t>& bits,
                                         const FramingConfig& config,
                                         int max_mismatches) {
  const auto start = find_payload_start(bits, config, max_mismatches);
  if (!start) return {};
  return {bits.begin() + static_cast<std::ptrdiff_t>(*start), bits.end()};
}

}  // namespace serdes::digital
