// Link-layer framing: preamble for CDR lock and sync word for frame
// alignment.
//
// An oversampling CDR needs data transitions to locate the bit boundary, so
// real links precede payload with a training pattern.  The deserializer
// additionally needs to know where the 256-bit frame starts in the
// recovered stream; a sync word provides that alignment.  This mirrors how
// the paper's testbench "determines the optimal sampling point ... before
// determining the transmitted data".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace serdes::digital {

struct FramingConfig {
  /// Alternating 1010... training bits for CDR lock.
  int preamble_bits = 256;
  /// 32-bit sync word marking the start of payload.
  std::uint32_t sync_word = 0xA5C3D27Bu;
};

/// Builds the on-wire stream: preamble, sync word (LSB first), payload.
std::vector<std::uint8_t> frame_stream(const std::vector<std::uint8_t>& payload,
                                       const FramingConfig& config);

/// Locates the sync word in `bits` and returns the index of the first
/// payload bit, or nullopt if not found.  Tolerates up to
/// `max_mismatches` bit errors inside the sync word.
std::optional<std::size_t> find_payload_start(
    const std::vector<std::uint8_t>& bits, const FramingConfig& config,
    int max_mismatches = 2);

/// Extracts payload following the sync word; empty if alignment failed.
std::vector<std::uint8_t> deframe_stream(const std::vector<std::uint8_t>& bits,
                                         const FramingConfig& config,
                                         int max_mismatches = 2);

}  // namespace serdes::digital
