#include "digital/rtl_modules.h"

namespace serdes::digital {

RtlDff::RtlDff(sim::Kernel&, sim::Wire& clk, sim::Wire& d, sim::Wire& q,
               sim::Wire* reset)
    : d_(&d), q_(&q), reset_(reset) {
  sim::on_posedge(clk, [this] {
    if (reset_ != nullptr && reset_->read()) {
      q_->write(false);
    } else {
      q_->write(d_->read());
    }
  });
}

RtlSerializer::RtlSerializer(sim::Kernel&, sim::Wire& clk,
                             sim::Wire& serial_out)
    : out_(&serial_out) {
  sim::on_posedge(clk, [this] { on_clock(); });
}

void RtlSerializer::queue_frame(const ParallelFrame& frame) {
  queue_.push_back(frame);
}

void RtlSerializer::on_clock() {
  if (bit_index_ >= ParallelFrame::kBits) {
    if (queue_.empty()) {
      out_->write(false);  // idle
      return;
    }
    current_bits_ = Serializer::serialize(queue_.front());
    queue_.pop_front();
    bit_index_ = 0;
  }
  out_->write(current_bits_[static_cast<std::size_t>(bit_index_)] != 0);
  ++bit_index_;
  ++bits_sent_;
}

RtlDeserializer::RtlDeserializer(sim::Kernel&, sim::Wire& clk,
                                 sim::Wire& serial_in, sim::Wire* enable)
    : in_(&serial_in), enable_(enable) {
  sim::on_posedge(clk, [this] { on_clock(); });
}

void RtlDeserializer::on_clock() {
  if (enable_ != nullptr && !enable_->read()) return;
  const bool bit = in_->read();
  if (bit) {
    const int lane = bit_index_ / ParallelFrame::kBitsPerLane;
    const int pos = bit_index_ % ParallelFrame::kBitsPerLane;
    current_.lanes[static_cast<std::size_t>(lane)] |= (1u << pos);
  }
  ++bit_index_;
  ++bits_received_;
  if (bit_index_ == ParallelFrame::kBits) {
    frames_.push_back(current_);
    current_ = ParallelFrame{};
    bit_index_ = 0;
  }
}

}  // namespace serdes::digital
