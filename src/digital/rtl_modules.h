// Cycle-accurate RTL-style modules on the event-driven kernel.
//
// The paper's serializer/deserializer are Verilog FSMs pushed through
// OpenLANE.  These classes are the same FSMs expressed against the sim
// kernel with non-blocking signal semantics — the tests assert bit-exact
// equivalence with the functional models in serializer.h/deserializer.h,
// which is this repo's analogue of RTL-vs-model verification.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "digital/serializer.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/signal.h"

namespace serdes::digital {

/// Single D flip-flop with synchronous active-high reset.
class RtlDff {
 public:
  RtlDff(sim::Kernel& kernel, sim::Wire& clk, sim::Wire& d, sim::Wire& q,
         sim::Wire* reset = nullptr);

 private:
  sim::Wire* d_;
  sim::Wire* q_;
  sim::Wire* reset_;
};

/// Serializer FSM: walks queued 8x32-bit frames one bit per clock.
/// Emits idle (0) when the queue is empty.
class RtlSerializer {
 public:
  RtlSerializer(sim::Kernel& kernel, sim::Wire& clk, sim::Wire& serial_out);

  /// Queues a frame for transmission.
  void queue_frame(const ParallelFrame& frame);

  [[nodiscard]] std::uint64_t bits_sent() const { return bits_sent_; }
  [[nodiscard]] bool busy() const {
    return !queue_.empty() || bit_index_ < ParallelFrame::kBits;
  }

 private:
  void on_clock();

  sim::Wire* out_;
  std::deque<ParallelFrame> queue_;
  std::vector<std::uint8_t> current_bits_;
  int bit_index_ = ParallelFrame::kBits;  // "no frame loaded"
  std::uint64_t bits_sent_ = 0;
};

/// Deserializer FSM: shifts serial bits into a 256-bit register bank and
/// releases completed frames.
class RtlDeserializer {
 public:
  RtlDeserializer(sim::Kernel& kernel, sim::Wire& clk, sim::Wire& serial_in,
                  sim::Wire* enable = nullptr);

  [[nodiscard]] const std::vector<ParallelFrame>& frames() const {
    return frames_;
  }
  [[nodiscard]] std::uint64_t bits_received() const { return bits_received_; }

 private:
  void on_clock();

  sim::Wire* in_;
  sim::Wire* enable_;
  ParallelFrame current_{};
  int bit_index_ = 0;
  std::uint64_t bits_received_ = 0;
  std::vector<ParallelFrame> frames_;
};

}  // namespace serdes::digital
