#include "digital/sampling.h"

#include <stdexcept>

namespace serdes::digital {

MultiphaseClockGenerator::MultiphaseClockGenerator(util::Hertz bit_rate,
                                                   int phases,
                                                   util::Second phase_offset,
                                                   double ppm_offset)
    : phases_(phases) {
  if (phases < 2) {
    throw std::invalid_argument("MultiphaseClockGenerator: phases >= 2");
  }
  // The receiver clock runs at (1 + ppm/1e6) times the nominal rate; its UI
  // is correspondingly stretched or shrunk.
  const double scale = 1.0 / (1.0 + ppm_offset * 1e-6);
  ui_ = util::seconds(util::period(bit_rate).value() * scale);
  step_ = ui_ / static_cast<double>(phases);
  offset_ = phase_offset;
}

std::vector<std::uint8_t> sample_waveform(
    const analog::Waveform& w, const MultiphaseClockGenerator& clocks,
    analog::DffSampler& sampler, channel::JitterModel* jitter) {
  std::vector<std::uint8_t> samples;
  const util::Second end = w.end_time();
  for (std::uint64_t ui = 0;; ++ui) {
    const util::Second ui_start = clocks.instant(ui, 0);
    if (ui_start >= end) break;
    for (int p = 0; p < clocks.phases(); ++p) {
      util::Second t = clocks.instant(ui, p);
      if (jitter != nullptr) t = jitter->perturb(t);
      samples.push_back(sampler.sample(w, t) ? 1 : 0);
    }
  }
  return samples;
}

}  // namespace serdes::digital
