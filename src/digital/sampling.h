// Multi-phase sampling front end feeding the oversampling CDR.
//
// Paper Fig 7: an external clock drives a multiphase clock generator whose
// N phases strobe N flip-flop samplers across each unit interval.  Here the
// phase generator computes the sampling instants (including optional
// sampling-clock jitter and a static phase offset relative to the data) and
// the samplers threshold the restored analog waveform through the
// behavioural DFF model.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/sampler.h"
#include "analog/waveform.h"
#include "channel/noise.h"
#include "util/units.h"

namespace serdes::digital {

/// Computes the N-per-UI sampling instants for a data stream of
/// `total_uis` unit intervals starting at `start`.
class MultiphaseClockGenerator {
 public:
  MultiphaseClockGenerator(util::Hertz bit_rate, int phases,
                           util::Second phase_offset = util::seconds(0.0),
                           /// TX/RX frequency mismatch in parts per million.
                           double ppm_offset = 0.0);

  /// Sampling instant for phase `p` of unit interval `ui`.  Inline: the
  /// streaming sink computes one per sampling instant.
  [[nodiscard]] util::Second instant(std::uint64_t ui, int p) const {
    return offset_ + ui_ * static_cast<double>(ui) +
           step_ * static_cast<double>(p);
  }

  [[nodiscard]] int phases() const { return phases_; }
  [[nodiscard]] util::Second unit_interval() const { return ui_; }

 private:
  util::Second ui_;
  util::Second step_;
  util::Second offset_;
  int phases_;
};

/// Samples `w` with the generator's clock phases and a DFF sampler,
/// producing the raw oversampled stream the CDR consumes.
std::vector<std::uint8_t> sample_waveform(
    const analog::Waveform& w, const MultiphaseClockGenerator& clocks,
    analog::DffSampler& sampler, channel::JitterModel* jitter = nullptr);

}  // namespace serdes::digital
