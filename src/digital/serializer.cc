#include "digital/serializer.h"

namespace serdes::digital {

std::vector<std::uint8_t> Serializer::serialize(const ParallelFrame& frame) {
  std::vector<std::uint8_t> bits;
  bits.reserve(ParallelFrame::kBits);
  for (int lane = 0; lane < ParallelFrame::kLanes; ++lane) {
    const std::uint32_t word = frame.lanes[static_cast<std::size_t>(lane)];
    for (int b = 0; b < ParallelFrame::kBitsPerLane; ++b) {
      bits.push_back(static_cast<std::uint8_t>((word >> b) & 1u));
    }
  }
  return bits;
}

std::vector<std::uint8_t> Serializer::serialize(
    const std::vector<ParallelFrame>& frames) {
  std::vector<std::uint8_t> bits;
  bits.reserve(frames.size() * ParallelFrame::kBits);
  for (const auto& f : frames) {
    const auto fb = serialize(f);
    bits.insert(bits.end(), fb.begin(), fb.end());
  }
  return bits;
}

std::vector<ParallelFrame> Serializer::frames_from_bits(
    const std::vector<std::uint8_t>& bits) {
  const std::size_t nframes =
      (bits.size() + ParallelFrame::kBits - 1) / ParallelFrame::kBits;
  std::vector<ParallelFrame> frames(nframes);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (!bits[i]) continue;
    const std::size_t frame = i / ParallelFrame::kBits;
    const std::size_t offset = i % ParallelFrame::kBits;
    const std::size_t lane = offset / ParallelFrame::kBitsPerLane;
    const std::size_t bit = offset % ParallelFrame::kBitsPerLane;
    frames[frame].lanes[lane] |= (1u << bit);
  }
  return frames;
}

}  // namespace serdes::digital
