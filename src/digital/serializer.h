// Serializer: 8 parallel lanes of 32-bit words -> serial bit stream.
//
// Paper Section IV-A-a: "the serializer is designed to take in 8 parallel
// input data streams of 32 bits each and produces serial bits", implemented
// as an FSM that walks the lanes sequentially.  This functional model is
// bit-exact with that FSM; a cycle-accurate kernel-backed version lives in
// rtl_modules.h and is checked against this model in the tests.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace serdes::digital {

/// One serializer input frame: 8 lanes x 32 bits = 256 bits.
struct ParallelFrame {
  static constexpr int kLanes = 8;
  static constexpr int kBitsPerLane = 32;
  static constexpr int kBits = kLanes * kBitsPerLane;

  std::array<std::uint32_t, kLanes> lanes{};

  friend bool operator==(const ParallelFrame&, const ParallelFrame&) = default;
};

/// Functional serializer model.
class Serializer {
 public:
  /// Serializes one frame: lane 0 first, LSB of each lane first (matching
  /// the FSM's shift order).
  [[nodiscard]] static std::vector<std::uint8_t> serialize(
      const ParallelFrame& frame);

  /// Serializes a sequence of frames back-to-back.
  [[nodiscard]] static std::vector<std::uint8_t> serialize(
      const std::vector<ParallelFrame>& frames);

  /// Packs a raw bit stream into frames (zero-padding the tail).
  [[nodiscard]] static std::vector<ParallelFrame> frames_from_bits(
      const std::vector<std::uint8_t>& bits);
};

}  // namespace serdes::digital
