#include "dsp/convolution.h"

#include <algorithm>
#include <stdexcept>

#include "util/simd.h"

#if SERDES_X86_DISPATCH
#include <immintrin.h>
#endif

namespace serdes::dsp {

namespace {

#if SERDES_X86_DISPATCH
/// Eight-lane MAC sweep: two __m256d accumulators per sample index, the
/// tap broadcast against each lane group.  Multiply then add (no FMA) in
/// ascending tap order, so every lane's sum rounds exactly like the
/// scalar direct kernel.  `x` points at sample 0 of the tile (history
/// behind it at negative sample indices); `lane_stride` is the tap lag in
/// samples.
__attribute__((target("avx2"))) void fir_lanes8_avx2(
    const double* taps, std::size_t ntaps, std::size_t stride,
    const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = x + i * 8;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (std::size_t k = 0; k < ntaps; ++k) {
      const __m256d tap = _mm256_set1_pd(taps[k]);
      const double* lag =
          xi - static_cast<std::ptrdiff_t>(k * stride) * 8;
      acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(tap, _mm256_loadu_pd(lag)));
      acc_hi = _mm256_add_pd(acc_hi,
                             _mm256_mul_pd(tap, _mm256_loadu_pd(lag + 4)));
    }
    _mm256_storeu_pd(out + i * 8, acc_lo);
    _mm256_storeu_pd(out + i * 8 + 4, acc_hi);
  }
}
#endif

/// FFT size for a dense response of `m` taps: enough past 2m that the
/// butterflies amortize over a long valid segment, clamped so one segment
/// stays cache-resident — unless the response itself is longer than the
/// clamp, where the transform must simply be big enough to hold it plus a
/// useful segment.
std::size_t pick_fft_size(std::size_t m) {
  const std::size_t ideal =
      std::clamp<std::size_t>(next_pow2(8 * m), 256, 32768);
  // The segment (fft - m + 1 samples per transform pair) must amortize the
  // transforms: below 2m it degenerates — at the extreme to a couple of
  // samples per 32k-point FFT — so outgrow the clamp instead.
  return ideal >= 2 * m ? ideal : next_pow2(2 * m);
}

}  // namespace

OverlapSaveConvolver::OverlapSaveConvolver(const std::vector<double>& taps)
    : taps_(taps.size()),
      segment_(pick_fft_size(taps.size()) - taps.size() + 1),
      rfft_(pick_fft_size(taps.size())) {
  if (taps.empty()) {
    throw std::invalid_argument("OverlapSaveConvolver: no taps");
  }
  if (taps_ >= rfft_.size()) {
    throw std::invalid_argument("OverlapSaveConvolver: taps exceed FFT size");
  }
  work_.assign(rfft_.size(), 0.0);
  std::copy(taps.begin(), taps.end(), work_.begin());
  tap_spectrum_.resize(rfft_.bins());
  spectrum_.resize(rfft_.bins());
  rfft_.forward(work_.data(), tap_spectrum_.data());
}

void OverlapSaveConvolver::process(double* history, const double* in,
                                   double* out, std::size_t n) const {
  const std::size_t m = taps_;
  while (n > 0) {
    const std::size_t len = std::min(n, segment_);
    // work = [history (m-1) | input chunk (len) | zero pad]; the pad only
    // affects outputs beyond the len we take.
    std::copy(history, history + (m - 1), work_.begin());
    std::copy(in, in + len, work_.begin() + (m - 1));
    std::fill(work_.begin() + (m - 1) + len, work_.end(), 0.0);
    // Slide the history forward before writing out (in/out may alias).
    std::copy(work_.begin() + len, work_.begin() + len + (m - 1), history);
    rfft_.forward(work_.data(), spectrum_.data());
    for (std::size_t k = 0; k < spectrum_.size(); ++k) {
      spectrum_[k] *= tap_spectrum_[k];
    }
    rfft_.inverse(spectrum_.data(), work_.data());
    std::copy(work_.begin() + (m - 1), work_.begin() + (m - 1) + len, out);
    in += len;
    out += len;
    n -= len;
  }
}

BlockFir::BlockFir(std::vector<double> taps, std::size_t stride)
    : BlockFir(std::move(taps), stride, Options{}) {}

BlockFir::BlockFir(std::vector<double> taps, std::size_t stride,
                   Options options)
    : taps_(std::move(taps)),
      stride_(stride),
      span_((taps_.empty() ? 0 : (taps_.size() - 1) * stride) + 1),
      options_(options) {
  if (taps_.empty()) throw std::invalid_argument("BlockFir: no taps");
  if (stride_ < 1) throw std::invalid_argument("BlockFir: stride must be >= 1");
  history_.assign(span_ - 1, 0.0);
}

std::vector<double> BlockFir::dense_taps() const {
  std::vector<double> dense(span_, 0.0);
  for (std::size_t k = 0; k < taps_.size(); ++k) dense[k * stride_] = taps_[k];
  return dense;
}

bool BlockFir::use_fft(std::size_t mac_taps, std::size_t n) {
  // Direct costs ~1 multiply-add per (non-zero) tap per sample; overlap-
  // save costs 50-120 ns/sample nearly independent of tap count (log2(fft)
  // grows one butterfly row per 8x taps).  Measured on x86-64 -O2 (see
  // bench_perf_kernels stage_channel_fir kernels): break-even sits near
  // 100-128 MACs per sample when the block fills at least one segment;
  // short blocks waste whole transforms on mostly-empty segments, so they
  // stay direct.  Chosen conservatively: where the paths tie, the exact
  // direct kernel wins.
  constexpr std::size_t kMinMacTaps = 128;
  constexpr std::size_t kMinBlock = 2048;
  return mac_taps >= kMinMacTaps && n >= kMinBlock && n >= 2 * mac_taps;
}

void BlockFir::process(const double* in, double* out, std::size_t n) {
  if (n == 0) return;
  // Beyond ~16 zero lags per real tap the transform (sized by the dense
  // span) outgrows what it saves over the strided MACs, so very sparse
  // responses stay on the direct kernel.
  if (options_.allow_fft && use_fft(taps_.size(), n) &&
      span_ <= 16 * taps_.size()) {
    if (!fft_) fft_ = std::make_unique<OverlapSaveConvolver>(dense_taps());
    fft_->process(history_.data(), in, out, n);
    return;
  }
  process_direct(in, out, n);
}

void BlockFir::process_direct(const double* in, double* out, std::size_t n) {
  const std::size_t hist = span_ - 1;
  scratch_.resize(hist + n);
  std::copy(history_.begin(), history_.end(), scratch_.begin());
  std::copy(in, in + n, scratch_.begin() + hist);
  // Slide the history before writing out (in/out may alias).
  std::copy(scratch_.end() - hist, scratch_.end(), history_.begin());
  const double* x = scratch_.data() + hist;  // x[i] == in[i], x[-k] history
  const double* taps = taps_.data();
  const std::size_t ntaps = taps_.size();
  const std::size_t stride = stride_;
  if (stride == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* xi = x + i;
      double acc = 0.0;
      // Ascending tap order: the exact summation order of the per-sample
      // delay-line FIR this kernel replaces.
      for (std::size_t k = 0; k < ntaps; ++k) acc += taps[k] * xi[-(long)k];
      out[i] = acc;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double* xi = x + i;
      double acc = 0.0;
      for (std::size_t k = 0; k < ntaps; ++k) {
        acc += taps[k] * xi[-static_cast<long>(k * stride)];
      }
      out[i] = acc;
    }
  }
}

void BlockFir::process_lanes(double* history, const double* in, double* out,
                             std::size_t n, std::size_t lanes) {
  if (n == 0 || lanes == 0) return;
  const std::size_t hist = span_ - 1;
  // [history | block] per lane, interleaved: value (i, l) of the padded
  // stream at lane_scratch_[(i)*lanes + l] with history at i < hist.
  lane_scratch_.resize((hist + n) * lanes);
  std::copy(history, history + hist * lanes, lane_scratch_.begin());
  std::copy(in, in + n * lanes,
            lane_scratch_.begin() + static_cast<std::ptrdiff_t>(hist * lanes));
  // Slide the history before writing out (in/out may alias).
  std::copy(lane_scratch_.end() - static_cast<std::ptrdiff_t>(hist * lanes),
            lane_scratch_.end(), history);
  const double* x = lane_scratch_.data() + hist * lanes;
  const double* taps = taps_.data();
  const std::size_t ntaps = taps_.size();
  const std::size_t stride = stride_;
#if SERDES_X86_DISPATCH
  if (lanes == 8 && util::cpu_has_avx2()) {
    fir_lanes8_avx2(taps, ntaps, stride, x, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = x + i * lanes;
    double* yi = out + i * lanes;
    for (std::size_t l = 0; l < lanes; ++l) yi[l] = 0.0;
    // Ascending tap order per lane: the exact summation order of the
    // scalar direct kernel.
    for (std::size_t k = 0; k < ntaps; ++k) {
      const double tap = taps[k];
      const double* lag = xi - static_cast<std::ptrdiff_t>(k * stride * lanes);
      for (std::size_t l = 0; l < lanes; ++l) yi[l] += tap * lag[l];
    }
  }
}

void BlockFir::reset() {
  std::fill(history_.begin(), history_.end(), 0.0);
}

}  // namespace serdes::dsp
