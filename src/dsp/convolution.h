// Block convolution engine for the streaming datapath.
//
// Two kernels over the same stateful contract (last span-1 input samples
// carried across calls, so any block chunking is causal and seamless):
//
//   * direct — contiguous [history | block] workspace walked with the tap
//     loads hoisted; for UI-spaced (zero-stuffed) responses the taps are
//     kept in strided form so the zero lags cost nothing.  Bit-identical
//     to the classic per-sample delay-line FIR.
//   * overlap-save FFT — precomputed tap spectrum, one forward/inverse
//     real FFT per segment.  Engaged by BlockFir only above the measured
//     tap-count/block-size crossover (see BlockFir::use_fft), and accurate
//     to ~1e-15 relative (the engine's contract is <= 1e-12 RMS against
//     direct convolution).
//
// BlockFir picks between them per call; channels expose the choice through
// the `dsp` toggle on LinkConfig/LinkSpec (exact direct kernels stay the
// default).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "dsp/fft.h"

namespace serdes::dsp {

/// Overlap-save convolution with a precomputed tap spectrum.  Stateless
/// with respect to the stream: the caller owns the history (the trailing
/// taps-1 input samples) so it can share one history between this and the
/// direct kernel.
class OverlapSaveConvolver {
 public:
  /// `taps` is the dense impulse response (length >= 1).
  explicit OverlapSaveConvolver(const std::vector<double>& taps);

  /// Convolves `n` samples.  `history` holds the taps-1 samples preceding
  /// `in` on entry and the taps-1 samples preceding the next call's input
  /// on exit.  `in` and `out` may alias.
  void process(double* history, const double* in, double* out,
               std::size_t n) const;

  [[nodiscard]] std::size_t fft_size() const { return rfft_.size(); }
  /// Samples convolved per FFT round.
  [[nodiscard]] std::size_t segment() const { return segment_; }
  [[nodiscard]] std::size_t tap_count() const { return taps_; }

 private:
  std::size_t taps_;
  std::size_t segment_;
  RealFft rfft_;
  std::vector<std::complex<double>> tap_spectrum_;
  mutable std::vector<std::complex<double>> spectrum_;
  mutable std::vector<double> work_;
};

/// Stateful block FIR: direct kernel below the FFT crossover, overlap-save
/// above it.  Taps may be given in strided (UI-spaced) form: tap k applies
/// at lag k*stride, which skips the zero-stuffed lags entirely in the
/// direct kernel.
class BlockFir {
 public:
  struct Options {
    /// Allow the overlap-save path above the crossover.  Off = the exact
    /// direct kernel always runs (bit-identical to per-sample stepping).
    bool allow_fft = false;
  };

  BlockFir(std::vector<double> taps, std::size_t stride);
  BlockFir(std::vector<double> taps, std::size_t stride, Options options);

  /// Convolves one block, carrying state; `in`/`out` may alias.
  void process(const double* in, double* out, std::size_t n);

  /// Lane-batched direct kernel over an interleaved SoA tile — value
  /// (i, l) at in[i * lanes + l] — with caller-owned interleaved history:
  /// on entry `history` holds the span-1 samples preceding `in` for every
  /// lane (value (k, l) at history[k * lanes + l]), on exit the span-1
  /// samples preceding the next call's input.  Always the exact direct
  /// kernel with the scalar path's ascending-tap MAC order, so lane l of
  /// a tile is bit-identical to a scalar BlockFir over lane l at any
  /// block chunking (no FFT crossover: the lane axis already saturates
  /// the vector units — explicit AVX2 non-FMA MACs for lanes == 8).
  /// `in` and `out` may alias.
  void process_lanes(double* history, const double* in, double* out,
                     std::size_t n, std::size_t lanes);

  /// Returns to the zero-history start-of-stream state.
  void reset();

  /// The crossover: true when the overlap-save path is expected to beat
  /// the direct kernel for `mac_taps` multiplies per sample over an
  /// `n`-sample block.  Constants measured by bench_perf_kernels
  /// (stage_channel_fir* kernels) on x86-64 -O2.
  static bool use_fft(std::size_t mac_taps, std::size_t n);

  [[nodiscard]] std::size_t span() const { return span_; }
  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  /// Dense (zero-stuffed) form of the strided taps.
  [[nodiscard]] std::vector<double> dense_taps() const;

 private:
  void process_direct(const double* in, double* out, std::size_t n);

  std::vector<double> taps_;
  std::size_t stride_;
  std::size_t span_;  // dense response length: (taps-1)*stride + 1
  Options options_;
  std::vector<double> history_;  // last span-1 inputs
  std::vector<double> scratch_;  // [history | block] workspace
  std::vector<double> lane_scratch_;  // [history | block] x lanes workspace
  std::unique_ptr<OverlapSaveConvolver> fft_;  // built on first FFT use
};

}  // namespace serdes::dsp
