#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace serdes::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

Fft::Fft(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("Fft: size must be 2^k");
  bit_reverse_.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) r |= ((i >> b) & 1) << (bits - 1 - b);
    bit_reverse_[i] = r;
  }
  fwd_twiddles_.resize(n / 2);
  inv_twiddles_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double a = -2.0 * std::numbers::pi * static_cast<double>(k) /
                     static_cast<double>(n);
    fwd_twiddles_[k] = {std::cos(a), std::sin(a)};
    inv_twiddles_[k] = {std::cos(a), -std::sin(a)};
  }
}

void Fft::transform(std::complex<double>* data,
                    const std::vector<std::complex<double>>& twiddles) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (j > i) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n_ / len;
    for (std::size_t base = 0; base < n_; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> w = twiddles[k * step];
        const std::complex<double> t = data[base + half + k] * w;
        const std::complex<double> u = data[base + k];
        data[base + k] = u + t;
        data[base + half + k] = u - t;
      }
    }
  }
}

void Fft::forward(std::complex<double>* data) const {
  transform(data, fwd_twiddles_);
}

void Fft::inverse(std::complex<double>* data) const {
  transform(data, inv_twiddles_);
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
}

RealFft::RealFft(std::size_t n) : n_(n), half_(n / 2) {
  if (!is_pow2(n) || n < 2) {
    throw std::invalid_argument("RealFft: size must be 2^k >= 2");
  }
  const std::size_t m = n / 2;
  unpack_.resize(m + 1);
  for (std::size_t k = 0; k <= m; ++k) {
    const double a = -2.0 * std::numbers::pi * static_cast<double>(k) /
                     static_cast<double>(n);
    unpack_[k] = {std::cos(a), std::sin(a)};
  }
  work_.resize(m);
}

void RealFft::forward(const double* in, std::complex<double>* spectrum) const {
  const std::size_t m = n_ / 2;
  for (std::size_t j = 0; j < m; ++j) {
    work_[j] = {in[2 * j], in[2 * j + 1]};
  }
  half_.forward(work_.data());
  // Untangle the packed transform: with E/O the spectra of the even/odd
  // sample streams, Z[k] = E[k] + i O[k] and X[k] = E[k] + W^k O[k].
  for (std::size_t k = 0; k <= m; ++k) {
    const std::complex<double> zk = work_[k % m];
    const std::complex<double> zr = std::conj(work_[(m - k) % m]);
    const std::complex<double> even = 0.5 * (zk + zr);
    const std::complex<double> odd =
        std::complex<double>(0.0, -0.5) * (zk - zr);
    spectrum[k] = even + unpack_[k] * odd;
  }
}

void RealFft::inverse(const std::complex<double>* spectrum,
                      double* out) const {
  const std::size_t m = n_ / 2;
  // Re-tangle: E[k] = (X[k] + conj(X[m-k]))/2, O[k] = conj(W^k)/2 *
  // (X[k] - conj(X[m-k])), then Z[k] = E[k] + i O[k].
  for (std::size_t k = 0; k < m; ++k) {
    const std::complex<double> xk = spectrum[k];
    const std::complex<double> xr = std::conj(spectrum[m - k]);
    const std::complex<double> even = 0.5 * (xk + xr);
    const std::complex<double> odd =
        0.5 * std::conj(unpack_[k]) * (xk - xr);
    work_[k] = even + std::complex<double>(0.0, 1.0) * odd;
  }
  half_.inverse(work_.data());
  for (std::size_t j = 0; j < m; ++j) {
    out[2 * j] = work_[j].real();
    out[2 * j + 1] = work_[j].imag();
  }
}

}  // namespace serdes::dsp
