// Iterative radix-2 FFT kernels for the block-convolution engine.
//
// The streaming datapath's long FIR channels (measured backplane taps,
// truncated lossy-line impulse responses) are convolved per block; above a
// measured tap-count/block-size crossover an overlap-save FFT convolution
// (see convolution.h) beats the direct kernel, and these plans supply the
// transforms it needs.  A plan precomputes the bit-reversal permutation and
// twiddle factors for one power-of-two size, so per-block work is pure
// butterflies over contiguous arrays.
//
// `RealFft` packs a real signal of even length n into an n/2-point complex
// transform and untangles the half-spectrum, halving the butterfly work the
// convolver pays per block.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace serdes::dsp {

/// Returns the smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// In-place complex FFT plan for one power-of-two size.
class Fft {
 public:
  /// `n` must be a power of two >= 1.
  explicit Fft(std::size_t n);

  /// In-place forward DFT: X[k] = sum_j x[j] e^{-2πi jk/n}.
  void forward(std::complex<double>* data) const;

  /// In-place inverse DFT including the 1/n normalization.
  void inverse(std::complex<double>* data) const;

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  void transform(std::complex<double>* data,
                 const std::vector<std::complex<double>>& twiddles) const;

  std::size_t n_;
  std::vector<std::size_t> bit_reverse_;
  std::vector<std::complex<double>> fwd_twiddles_;  // e^{-2πi k/n}, k < n/2
  std::vector<std::complex<double>> inv_twiddles_;  // e^{+2πi k/n}, k < n/2
};

/// Real-signal FFT of even power-of-two length n, via an n/2-point complex
/// transform.  The spectrum is the non-redundant half: n/2 + 1 bins.
class RealFft {
 public:
  /// `n` must be a power of two >= 2.
  explicit RealFft(std::size_t n);

  /// Forward transform of `in[0..n)` into `spectrum[0..n/2]`.
  void forward(const double* in, std::complex<double>* spectrum) const;

  /// Inverse of `forward`: `spectrum[0..n/2]` back to `out[0..n)`,
  /// normalized (forward then inverse reproduces the input).
  void inverse(const std::complex<double>* spectrum, double* out) const;

  [[nodiscard]] std::size_t size() const { return n_; }
  /// Number of spectrum bins (n/2 + 1).
  [[nodiscard]] std::size_t bins() const { return n_ / 2 + 1; }

 private:
  std::size_t n_;
  Fft half_;
  std::vector<std::complex<double>> unpack_;  // e^{-2πi k/n}, k <= n/2
  mutable std::vector<std::complex<double>> work_;
};

}  // namespace serdes::dsp
