#include "flow/celllib.h"

#include <algorithm>
#include <stdexcept>

namespace serdes::flow {

std::string to_string(CellFunction f) {
  switch (f) {
    case CellFunction::kInv: return "inv";
    case CellFunction::kBuf: return "buf";
    case CellFunction::kNand2: return "nand2";
    case CellFunction::kNor2: return "nor2";
    case CellFunction::kXor2: return "xor2";
    case CellFunction::kAnd2: return "and2";
    case CellFunction::kOr2: return "or2";
    case CellFunction::kMux2: return "mux2";
    case CellFunction::kDff: return "dff";
    case CellFunction::kClkBuf: return "clkbuf";
    case CellFunction::kTieLo: return "tielo";
    case CellFunction::kTieHi: return "tiehi";
  }
  return "?";
}

int input_count(CellFunction f) {
  switch (f) {
    case CellFunction::kInv:
    case CellFunction::kBuf:
    case CellFunction::kClkBuf:
      return 1;
    case CellFunction::kNand2:
    case CellFunction::kNor2:
    case CellFunction::kXor2:
    case CellFunction::kAnd2:
    case CellFunction::kOr2:
    case CellFunction::kDff:  // D, CLK
      return 2;
    case CellFunction::kMux2:  // A, B, S
      return 3;
    case CellFunction::kTieLo:
    case CellFunction::kTieHi:
      return 0;
  }
  return 0;
}

namespace {

/// Base (x1) characteristics per function; drive strengths scale R down and
/// area/cap up.  Numbers are sky130_fd_sc_hd-flavoured: 2.72 um row height,
/// ~3.7 um^2 unit inverter, FO4 around 90 ps.
struct BaseCell {
  CellFunction function;
  double area_um2;
  double input_cap_ff;
  double intrinsic_ps;
  double drive_res_kohm;
  double leakage_nw;
};

constexpr BaseCell kBaseCells[] = {
    {CellFunction::kInv, 3.75, 1.5, 14.0, 12.0, 0.8},
    {CellFunction::kBuf, 6.25, 1.5, 28.0, 12.0, 1.2},
    {CellFunction::kNand2, 5.0, 1.6, 20.0, 14.0, 1.1},
    {CellFunction::kNor2, 5.0, 1.7, 24.0, 16.0, 1.1},
    {CellFunction::kXor2, 11.25, 2.2, 42.0, 16.0, 2.4},
    {CellFunction::kAnd2, 7.5, 1.6, 32.0, 14.0, 1.5},
    {CellFunction::kOr2, 7.5, 1.7, 34.0, 16.0, 1.5},
    {CellFunction::kMux2, 11.25, 1.9, 38.0, 15.0, 2.2},
    {CellFunction::kDff, 20.0, 2.0, 180.0, 14.0, 3.5},
    {CellFunction::kClkBuf, 7.5, 1.8, 24.0, 10.0, 1.6},
    {CellFunction::kTieLo, 3.75, 0.0, 0.0, 100.0, 0.3},
    {CellFunction::kTieHi, 3.75, 0.0, 0.0, 100.0, 0.3},
};

constexpr int kDrives[] = {1, 2, 4, 8};

}  // namespace

const CellLibrary& CellLibrary::sky130() {
  static const CellLibrary lib = [] {
    CellLibrary l;
    for (const BaseCell& base : kBaseCells) {
      for (int drive : kDrives) {
        // Tie cells and flops only come in one strength in this library.
        if ((base.function == CellFunction::kTieLo ||
             base.function == CellFunction::kTieHi) &&
            drive > 1) {
          continue;
        }
        if (base.function == CellFunction::kDff && drive > 2) continue;
        CellType c;
        c.function = base.function;
        c.drive = drive;
        c.name = to_string(base.function) + "_x" + std::to_string(drive);
        const double d = static_cast<double>(drive);
        // Area and input cap grow sublinearly (shared wells/diffusion).
        c.area = util::square_microns(base.area_um2 * (0.55 + 0.45 * d));
        c.input_cap = util::femtofarads(base.input_cap_ff * (0.6 + 0.4 * d));
        c.intrinsic_delay = util::picoseconds(base.intrinsic_ps);
        c.drive_resistance = util::kiloohms(base.drive_res_kohm / d);
        c.leakage = util::nanowatts(base.leakage_nw * d);
        l.cells_.push_back(std::move(c));
      }
    }
    return l;
  }();
  return lib;
}

const CellType& CellLibrary::get(const std::string& name) const {
  for (const auto& c : cells_) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("CellLibrary: unknown cell " + name);
}

const CellType& CellLibrary::select(CellFunction function, util::Farad load,
                                    util::Second target_delay) const {
  const CellType* best = nullptr;
  for (const auto& c : cells_) {
    if (c.function != function) continue;
    if (best == nullptr || c.drive > best->drive) {
      // Track the strongest as the fallback.
      if (best == nullptr) best = &c;
      if (c.drive > best->drive) best = &c;
    }
    if (c.delay(load) <= target_delay) {
      // Cells are stored weakest-first per function, so the first
      // satisfying cell is the smallest one.
      return c;
    }
  }
  if (best == nullptr) {
    throw std::out_of_range("CellLibrary: no cell for function " +
                            to_string(function));
  }
  return *best;
}

const CellType& CellLibrary::weakest(CellFunction function) const {
  for (const auto& c : cells_) {
    if (c.function == function) return c;  // weakest-first ordering
  }
  throw std::out_of_range("CellLibrary: no cell for function " +
                          to_string(function));
}

const CellType& CellLibrary::strongest(CellFunction function) const {
  const CellType* best = nullptr;
  for (const auto& c : cells_) {
    if (c.function == function && (best == nullptr || c.drive > best->drive)) {
      best = &c;
    }
  }
  if (best == nullptr) {
    throw std::out_of_range("CellLibrary: no cell for function " +
                            to_string(function));
  }
  return *best;
}

}  // namespace serdes::flow
