// Liberty-lite standard cell library.
//
// The paper's digital blocks were mapped by OpenLANE onto the
// sky130_fd_sc_hd standard cells.  This module captures the slice of a
// Liberty file that synthesis, STA, placement and power analysis need:
// per-cell area, pin capacitance, a linear (intrinsic + R·C) delay model,
// drive resistance and leakage, for the cell functions our RTL generators
// emit, each in several drive strengths.
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace serdes::flow {

enum class CellFunction {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kXor2,
  kAnd2,
  kOr2,
  kMux2,
  kDff,      // inputs: D, CLK
  kClkBuf,   // clock-tree buffer
  kTieLo,
  kTieHi,
};

/// Human-readable name of a cell function ("inv", "dff", ...).
std::string to_string(CellFunction f);

/// Number of signal input pins for a function (clock included for DFF).
int input_count(CellFunction f);

struct CellType {
  std::string name;        // e.g. "inv_x4"
  CellFunction function = CellFunction::kInv;
  int drive = 1;           // relative strength (x1, x2, x4, x8)
  util::AreaUm2 area{0.0};
  util::Farad input_cap{0.0};       // per input pin
  util::Second intrinsic_delay{0.0};
  util::Ohm drive_resistance{0.0};  // for delay = intrinsic + R * Cload
  util::Watt leakage{0.0};

  /// Propagation delay driving `load`.
  [[nodiscard]] util::Second delay(util::Farad load) const {
    return intrinsic_delay +
           util::seconds(drive_resistance.value() * load.value());
  }
};

/// DFF timing constraints (shared by all drive strengths here).
struct SequentialTiming {
  util::Second setup = util::picoseconds(100.0);
  util::Second hold = util::picoseconds(40.0);
  util::Second clk_to_q = util::picoseconds(0.0);  // use cell delay instead
};

class CellLibrary {
 public:
  /// The sky130_fd_sc_hd-flavoured library used throughout the repo.
  static const CellLibrary& sky130();

  /// Looks up a cell by exact name; throws std::out_of_range if missing.
  [[nodiscard]] const CellType& get(const std::string& name) const;

  /// Smallest-drive cell of `function` whose delay into `load` does not
  /// exceed `target_delay`; falls back to the strongest drive available.
  [[nodiscard]] const CellType& select(CellFunction function, util::Farad load,
                                       util::Second target_delay) const;

  /// Weakest (x1) cell of a function.
  [[nodiscard]] const CellType& weakest(CellFunction function) const;
  /// Strongest cell of a function.
  [[nodiscard]] const CellType& strongest(CellFunction function) const;

  [[nodiscard]] const std::vector<CellType>& cells() const { return cells_; }
  [[nodiscard]] const SequentialTiming& dff_timing() const {
    return dff_timing_;
  }
  [[nodiscard]] util::Volt vdd() const { return vdd_; }
  /// Standard-cell row height (all cells are row-height tall).
  [[nodiscard]] double row_height_um() const { return row_height_um_; }

 private:
  CellLibrary() = default;

  std::vector<CellType> cells_;
  SequentialTiming dff_timing_;
  util::Volt vdd_ = util::volts(1.8);
  double row_height_um_ = 2.72;
};

}  // namespace serdes::flow
