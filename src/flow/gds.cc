#include "flow/gds.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace serdes::flow {

std::vector<LayoutRect> rects_from_netlist(const Netlist& netlist, int layer) {
  std::vector<LayoutRect> rects;
  const double row_height = netlist.library().row_height_um();
  rects.reserve(netlist.cells().size());
  for (const auto& c : netlist.cells()) {
    if (!c.placed) continue;
    LayoutRect r;
    r.x_um = c.x_um;
    r.y_um = c.y_um;
    r.w_um = c.type->area.value() / row_height;
    r.h_um = row_height;
    r.layer = layer;
    r.label = c.name;
    rects.push_back(std::move(r));
  }
  return rects;
}

std::vector<LayoutRect> rects_from_floorplan(const Floorplan& plan) {
  std::vector<LayoutRect> rects;
  rects.reserve(plan.blocks.size() + 1);
  LayoutRect die;
  die.x_um = 0.0;
  die.y_um = 0.0;
  die.w_um = plan.die_width_um;
  die.h_um = plan.die_height_um;
  die.layer = 0;
  die.label = "die";
  rects.push_back(die);
  int layer = 1;
  for (const auto& b : plan.blocks) {
    LayoutRect r;
    r.x_um = b.x_um;
    r.y_um = b.y_um;
    r.w_um = b.width_um;
    r.h_um = b.height_um;
    r.layer = layer++;
    r.label = b.name;
    rects.push_back(std::move(r));
  }
  return rects;
}

namespace {

/// Minimal big-endian GDSII record emitter.
class RecordStream {
 public:
  explicit RecordStream(std::ofstream& out) : out_(&out) {}

  void record(std::uint8_t type, std::uint8_t datatype,
              const std::vector<std::uint8_t>& payload = {}) {
    const auto len = static_cast<std::uint16_t>(4 + payload.size());
    put16(len);
    out_->put(static_cast<char>(type));
    out_->put(static_cast<char>(datatype));
    out_->write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
  }

  static void append16(std::vector<std::uint8_t>& v, std::uint16_t x) {
    v.push_back(static_cast<std::uint8_t>(x >> 8));
    v.push_back(static_cast<std::uint8_t>(x & 0xff));
  }
  static void append32(std::vector<std::uint8_t>& v, std::int32_t x) {
    const auto u = static_cast<std::uint32_t>(x);
    v.push_back(static_cast<std::uint8_t>(u >> 24));
    v.push_back(static_cast<std::uint8_t>((u >> 16) & 0xff));
    v.push_back(static_cast<std::uint8_t>((u >> 8) & 0xff));
    v.push_back(static_cast<std::uint8_t>(u & 0xff));
  }
  /// GDSII 8-byte excess-64 floating point.
  static void append_real8(std::vector<std::uint8_t>& v, double x) {
    std::uint8_t sign = 0;
    if (x < 0) {
      sign = 0x80;
      x = -x;
    }
    int exponent = 64;
    if (x != 0.0) {
      while (x >= 1.0) {
        x /= 16.0;
        ++exponent;
      }
      while (x < 1.0 / 16.0) {
        x *= 16.0;
        --exponent;
      }
    }
    std::uint64_t mantissa = 0;
    double frac = x;
    for (int i = 0; i < 56; ++i) {
      frac *= 2.0;
      mantissa <<= 1;
      if (frac >= 1.0) {
        mantissa |= 1;
        frac -= 1.0;
      }
    }
    v.push_back(static_cast<std::uint8_t>(sign | exponent));
    for (int i = 6; i >= 0; --i) {
      v.push_back(static_cast<std::uint8_t>((mantissa >> (8 * i)) & 0xff));
    }
  }
  static void append_string(std::vector<std::uint8_t>& v,
                            const std::string& s) {
    for (char c : s) v.push_back(static_cast<std::uint8_t>(c));
    if (v.size() % 2 != 0) v.push_back(0);  // pad to even length
  }

 private:
  void put16(std::uint16_t x) {
    out_->put(static_cast<char>(x >> 8));
    out_->put(static_cast<char>(x & 0xff));
  }
  std::ofstream* out_;
};

// GDSII record types.
constexpr std::uint8_t kHeader = 0x00;
constexpr std::uint8_t kBgnLib = 0x01;
constexpr std::uint8_t kLibName = 0x02;
constexpr std::uint8_t kUnits = 0x03;
constexpr std::uint8_t kEndLib = 0x04;
constexpr std::uint8_t kBgnStr = 0x05;
constexpr std::uint8_t kStrName = 0x06;
constexpr std::uint8_t kEndStr = 0x07;
constexpr std::uint8_t kBoundary = 0x08;
constexpr std::uint8_t kLayer = 0x0d;
constexpr std::uint8_t kDatatype = 0x0e;
constexpr std::uint8_t kXy = 0x10;
constexpr std::uint8_t kEndEl = 0x11;

}  // namespace

void GdsWriter::write(const std::string& path, const std::string& struct_name,
                      const std::vector<LayoutRect>& rects,
                      double db_unit_um) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("GdsWriter: cannot open " + path);
  RecordStream rs(out);

  {
    std::vector<std::uint8_t> p;
    RecordStream::append16(p, 600);  // stream version 6
    rs.record(kHeader, 0x02, p);
  }
  {
    // BGNLIB: 12 int16 timestamps (all zeros is accepted).
    std::vector<std::uint8_t> p(24, 0);
    rs.record(kBgnLib, 0x02, p);
  }
  {
    std::vector<std::uint8_t> p;
    RecordStream::append_string(p, "openserdes");
    rs.record(kLibName, 0x06, p);
  }
  {
    // UNITS: db unit in user units (um), db unit in metres.
    std::vector<std::uint8_t> p;
    RecordStream::append_real8(p, db_unit_um);          // 0.001 um per dbu
    RecordStream::append_real8(p, db_unit_um * 1e-6);   // metres per dbu
    rs.record(kUnits, 0x05, p);
  }
  {
    std::vector<std::uint8_t> p(24, 0);
    rs.record(kBgnStr, 0x02, p);
  }
  {
    std::vector<std::uint8_t> p;
    RecordStream::append_string(p, struct_name);
    rs.record(kStrName, 0x06, p);
  }

  const double to_dbu = 1.0 / db_unit_um;
  for (const auto& r : rects) {
    rs.record(kBoundary, 0x00);
    {
      std::vector<std::uint8_t> p;
      RecordStream::append16(p, static_cast<std::uint16_t>(r.layer));
      rs.record(kLayer, 0x02, p);
    }
    {
      std::vector<std::uint8_t> p;
      RecordStream::append16(p, 0);
      rs.record(kDatatype, 0x02, p);
    }
    {
      const auto x0 = static_cast<std::int32_t>(std::llround(r.x_um * to_dbu));
      const auto y0 = static_cast<std::int32_t>(std::llround(r.y_um * to_dbu));
      const auto x1 = static_cast<std::int32_t>(
          std::llround((r.x_um + r.w_um) * to_dbu));
      const auto y1 = static_cast<std::int32_t>(
          std::llround((r.y_um + r.h_um) * to_dbu));
      std::vector<std::uint8_t> p;
      // Closed polygon: 5 points.
      RecordStream::append32(p, x0);
      RecordStream::append32(p, y0);
      RecordStream::append32(p, x1);
      RecordStream::append32(p, y0);
      RecordStream::append32(p, x1);
      RecordStream::append32(p, y1);
      RecordStream::append32(p, x0);
      RecordStream::append32(p, y1);
      RecordStream::append32(p, x0);
      RecordStream::append32(p, y0);
      rs.record(kXy, 0x03, p);
    }
    rs.record(kEndEl, 0x00);
  }

  rs.record(kEndStr, 0x00);
  rs.record(kEndLib, 0x00);
  if (!out) throw std::runtime_error("GdsWriter: write failed: " + path);
}

void SvgWriter::write(const std::string& path,
                      const std::vector<LayoutRect>& rects,
                      double scale_px_per_um) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SvgWriter: cannot open " + path);
  double max_x = 1.0;
  double max_y = 1.0;
  for (const auto& r : rects) {
    max_x = std::max(max_x, r.x_um + r.w_um);
    max_y = std::max(max_y, r.y_um + r.h_um);
  }
  static const std::array<const char*, 8> kColors = {
      "#dddddd", "#4f81bd", "#c0504d", "#9bbb59",
      "#8064a2", "#4bacc6", "#f79646", "#7f7f7f"};
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << max_x * scale_px_per_um << "\" height=\"" << max_y * scale_px_per_um
      << "\">\n";
  for (const auto& r : rects) {
    // SVG y axis points down; flip so the layout reads like a die photo.
    const double y_flipped = max_y - r.y_um - r.h_um;
    out << "  <rect x=\"" << r.x_um * scale_px_per_um << "\" y=\""
        << y_flipped * scale_px_per_um << "\" width=\""
        << r.w_um * scale_px_per_um << "\" height=\""
        << r.h_um * scale_px_per_um << "\" fill=\""
        << kColors[static_cast<std::size_t>(r.layer) % kColors.size()]
        << "\" stroke=\"black\" stroke-width=\"0.5\"/>\n";
    if (!r.label.empty() && r.w_um * scale_px_per_um > 40.0) {
      out << "  <text x=\"" << (r.x_um + r.w_um / 2.0) * scale_px_per_um
          << "\" y=\"" << (y_flipped + r.h_um / 2.0) * scale_px_per_um
          << "\" font-size=\"12\" text-anchor=\"middle\">" << r.label
          << "</text>\n";
    }
  }
  out << "</svg>\n";
  if (!out) throw std::runtime_error("SvgWriter: write failed: " + path);
}

}  // namespace serdes::flow
