// Layout export: GDSII stream writer and SVG renderer.
//
// The paper's flow ends with magic exporting GDS; its Fig 11 is the die
// plot.  This module writes real binary GDSII (HEADER/BGNLIB/.../ENDLIB
// records, one BOUNDARY rectangle per placed cell or floorplan block) that
// KLayout can open, plus an SVG rendering of the same geometry for
// documentation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/netlist.h"
#include "flow/place.h"

namespace serdes::flow {

/// One axis-aligned rectangle in layout space (micrometres).
struct LayoutRect {
  double x_um = 0.0;
  double y_um = 0.0;
  double w_um = 0.0;
  double h_um = 0.0;
  int layer = 1;
  std::string label;
};

/// Collects cell outlines from a placed netlist.
std::vector<LayoutRect> rects_from_netlist(const Netlist& netlist,
                                           int layer = 1);

/// Collects block outlines from a floorplan (one layer per block index).
std::vector<LayoutRect> rects_from_floorplan(const Floorplan& plan);

/// Binary GDSII stream writer.
class GdsWriter {
 public:
  /// Writes a single-structure GDS file; throws std::runtime_error on I/O
  /// failure.  `db_unit_um` is the database unit (defaults to 1 nm).
  static void write(const std::string& path, const std::string& struct_name,
                    const std::vector<LayoutRect>& rects,
                    double db_unit_um = 0.001);
};

/// SVG renderer for quick visual inspection (Fig 11 regeneration).
class SvgWriter {
 public:
  static void write(const std::string& path,
                    const std::vector<LayoutRect>& rects,
                    double scale_px_per_um = 2.0);
};

}  // namespace serdes::flow
