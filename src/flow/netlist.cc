#include "flow/netlist.h"

#include <stdexcept>

namespace serdes::flow {

Netlist::Netlist(std::string module_name, const CellLibrary& lib)
    : name_(std::move(module_name)), lib_(&lib) {}

NetId Netlist::add_net(const std::string& name) {
  Net n;
  n.name = name;
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::add_input_port(const std::string& name) {
  const NetId id = add_net(name);
  nets_[static_cast<std::size_t>(id)].is_primary_input = true;
  return id;
}

NetId Netlist::add_output_port(const std::string& name) {
  const NetId id = add_net(name);
  nets_[static_cast<std::size_t>(id)].is_primary_output = true;
  return id;
}

void Netlist::mark_clock(NetId net) {
  nets_[static_cast<std::size_t>(net)].is_clock = true;
}

void Netlist::mark_output(NetId net) {
  nets_[static_cast<std::size_t>(net)].is_primary_output = true;
}

NetId Netlist::add_cell(const CellType& type, const std::string& instance_name,
                        const std::vector<NetId>& inputs) {
  const int expected = input_count(type.function);
  if (static_cast<int>(inputs.size()) != expected) {
    throw std::invalid_argument("Netlist::add_cell: " + instance_name +
                                " expects " + std::to_string(expected) +
                                " inputs");
  }
  const auto cell_id = static_cast<CellId>(cells_.size());
  CellInstance inst;
  inst.name = instance_name;
  inst.type = &type;
  inst.inputs = inputs;
  inst.output = add_net(instance_name + "_o");
  nets_[static_cast<std::size_t>(inst.output)].driver = cell_id;
  for (std::size_t pin = 0; pin < inputs.size(); ++pin) {
    nets_[static_cast<std::size_t>(inputs[pin])].sinks.emplace_back(
        cell_id, static_cast<int>(pin));
  }
  cells_.push_back(std::move(inst));
  return cells_.back().output;
}

util::Farad Netlist::pin_load(NetId id) const {
  const Net& n = nets_[static_cast<std::size_t>(id)];
  util::Farad load{0.0};
  for (const auto& [cell_id, pin] : n.sinks) {
    load += cells_[static_cast<std::size_t>(cell_id)].type->input_cap;
  }
  return load;
}

util::Farad Netlist::total_load(NetId id) const {
  return pin_load(id) + nets_[static_cast<std::size_t>(id)].wire_cap;
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.cell_count = static_cast<int>(cells_.size());
  s.net_count = static_cast<int>(nets_.size());
  for (const auto& c : cells_) {
    s.cell_area += c.type->area;
    s.leakage += c.type->leakage;
    if (c.type->function == CellFunction::kDff) ++s.dff_count;
  }
  return s;
}

int Netlist::count_function(CellFunction f) const {
  int count = 0;
  for (const auto& c : cells_) {
    if (c.type->function == f) ++count;
  }
  return count;
}

}  // namespace serdes::flow
