// Gate-level netlist database.
//
// The in-memory design representation shared by the RTL generators, timing
// analysis, placement and power analysis — the role OpenLANE's intermediate
// Verilog/DEF files play in the paper's flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/celllib.h"

namespace serdes::flow {

using CellId = int;
using NetId = int;

constexpr NetId kNoNet = -1;

struct CellInstance {
  std::string name;
  const CellType* type = nullptr;
  std::vector<NetId> inputs;  // size = input_count(type->function)
  NetId output = kNoNet;
  /// Placement result (filled by the placer; um, lower-left corner).
  double x_um = 0.0;
  double y_um = 0.0;
  bool placed = false;
};

struct Net {
  std::string name;
  CellId driver = -1;                     // -1 = primary input
  std::vector<std::pair<CellId, int>> sinks;  // (cell, input pin index)
  bool is_clock = false;
  bool is_primary_input = false;
  bool is_primary_output = false;
  /// Estimated routed wire capacitance (filled after placement).
  util::Farad wire_cap{0.0};
  /// Switching activity annotation (toggles per cycle / 2); negative means
  /// "use the PowerConfig default".  RTL generators annotate nets whose
  /// activity they know (shift registers toggle, capture banks do not).
  double activity = -1.0;
};

class Netlist {
 public:
  explicit Netlist(std::string module_name,
                   const CellLibrary& lib = CellLibrary::sky130());

  // ---- Construction ----
  NetId add_net(const std::string& name);
  NetId add_input_port(const std::string& name);
  NetId add_output_port(const std::string& name);
  /// Marks an existing net as a clock (propagates activity/power treatment).
  void mark_clock(NetId net);
  /// Marks an existing internal net as a primary output.
  void mark_output(NetId net);

  /// Instantiates `type`; `inputs` must match the function's pin count.
  /// Creates and returns the output net (named after the instance).
  NetId add_cell(const CellType& type, const std::string& instance_name,
                 const std::vector<NetId>& inputs);

  // ---- Access ----
  [[nodiscard]] const std::string& module_name() const { return name_; }
  [[nodiscard]] const CellLibrary& library() const { return *lib_; }
  [[nodiscard]] const std::vector<CellInstance>& cells() const {
    return cells_;
  }
  [[nodiscard]] std::vector<CellInstance>& cells() { return cells_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] std::vector<Net>& nets() { return nets_; }
  [[nodiscard]] const Net& net(NetId id) const {
    return nets_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const CellInstance& cell(CellId id) const {
    return cells_[static_cast<std::size_t>(id)];
  }

  /// Total pin capacitance hanging on a net (sink input pins).
  [[nodiscard]] util::Farad pin_load(NetId id) const;
  /// Pin load plus estimated wire capacitance.
  [[nodiscard]] util::Farad total_load(NetId id) const;

  // ---- Statistics ----
  struct Stats {
    int cell_count = 0;
    int dff_count = 0;
    int net_count = 0;
    util::AreaUm2 cell_area{0.0};
    util::Watt leakage{0.0};
  };
  [[nodiscard]] Stats stats() const;

  /// Count of cells with a given function.
  [[nodiscard]] int count_function(CellFunction f) const;

 private:
  std::string name_;
  const CellLibrary* lib_;
  std::vector<CellInstance> cells_;
  std::vector<Net> nets_;
};

}  // namespace serdes::flow
