#include "flow/netlist_sim.h"

#include <queue>
#include <stdexcept>

namespace serdes::flow {

NetlistSimulator::NetlistSimulator(const Netlist& netlist)
    : netlist_(&netlist) {
  net_values_.assign(netlist.nets().size(), 0);

  // Levelize the combinational cells (same scheme as the STA engine);
  // flops are collected separately and updated atomically per step().
  const auto& cells = netlist.cells();
  const int n = static_cast<int>(cells.size());
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  auto is_flop = [&](int id) {
    return cells[static_cast<std::size_t>(id)].type->function ==
           CellFunction::kDff;
  };
  for (int i = 0; i < n; ++i) {
    if (is_flop(i)) {
      flops_.push_back(i);
      continue;
    }
    for (NetId in : cells[static_cast<std::size_t>(i)].inputs) {
      const Net& net = netlist.net(in);
      if (net.driver >= 0 && !is_flop(net.driver)) {
        ++indegree[static_cast<std::size_t>(i)];
      }
    }
  }
  std::queue<int> ready;
  for (int i = 0; i < n; ++i) {
    if (!is_flop(i) && indegree[static_cast<std::size_t>(i)] == 0) {
      ready.push(i);
    }
  }
  while (!ready.empty()) {
    const int c = ready.front();
    ready.pop();
    topo_order_.push_back(c);
    const Net& out = netlist.net(cells[static_cast<std::size_t>(c)].output);
    for (const auto& [sink, pin] : out.sinks) {
      if (is_flop(sink)) continue;
      if (--indegree[static_cast<std::size_t>(sink)] == 0) ready.push(sink);
    }
  }
  if (topo_order_.size() + flops_.size() != static_cast<std::size_t>(n)) {
    throw std::runtime_error("NetlistSimulator: combinational loop");
  }
}

bool NetlistSimulator::eval_cell(const CellInstance& cell) const {
  auto in = [&](std::size_t pin) {
    return net_values_[static_cast<std::size_t>(cell.inputs[pin])] != 0;
  };
  switch (cell.type->function) {
    case CellFunction::kInv: return !in(0);
    case CellFunction::kBuf:
    case CellFunction::kClkBuf: return in(0);
    case CellFunction::kNand2: return !(in(0) && in(1));
    case CellFunction::kNor2: return !(in(0) || in(1));
    case CellFunction::kXor2: return in(0) != in(1);
    case CellFunction::kAnd2: return in(0) && in(1);
    case CellFunction::kOr2: return in(0) || in(1);
    case CellFunction::kMux2: return in(2) ? in(1) : in(0);
    case CellFunction::kTieLo: return false;
    case CellFunction::kTieHi: return true;
    case CellFunction::kDff:
      throw std::logic_error("NetlistSimulator: flop in comb evaluation");
  }
  return false;
}

void NetlistSimulator::set_input(NetId net, bool value) {
  if (!netlist_->net(net).is_primary_input) {
    throw std::invalid_argument("NetlistSimulator: not a primary input: " +
                                netlist_->net(net).name);
  }
  net_values_[static_cast<std::size_t>(net)] = value ? 1 : 0;
}

void NetlistSimulator::settle() {
  const auto& cells = netlist_->cells();
  for (int id : topo_order_) {
    const auto& cell = cells[static_cast<std::size_t>(id)];
    net_values_[static_cast<std::size_t>(cell.output)] =
        eval_cell(cell) ? 1 : 0;
  }
}

void NetlistSimulator::step() {
  settle();
  // All flops sample their D pins from the settled pre-edge state...
  const auto& cells = netlist_->cells();
  std::vector<std::uint8_t> captured(flops_.size());
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    const auto& flop = cells[static_cast<std::size_t>(flops_[i])];
    captured[i] = net_values_[static_cast<std::size_t>(flop.inputs[0])];
  }
  // ...then update atomically (non-blocking semantics).
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    const auto& flop = cells[static_cast<std::size_t>(flops_[i])];
    net_values_[static_cast<std::size_t>(flop.output)] = captured[i];
  }
  settle();
  ++cycles_;
}

bool NetlistSimulator::value(NetId net) const {
  return net_values_[static_cast<std::size_t>(net)] != 0;
}

std::uint64_t NetlistSimulator::bus_value(
    const std::vector<NetId>& nets) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (value(nets[i])) v |= (1ull << i);
  }
  return v;
}

}  // namespace serdes::flow
