// Gate-level netlist simulator.
//
// Two-phase cycle simulation of a Netlist: levelized combinational
// evaluation plus synchronous flop update.  This is the flow's functional
// verification step — the tests use it to prove that the generated
// serializer netlist actually serializes, the counter actually counts, and
// the mux tree actually selects, i.e. that the structures the power/area
// numbers are computed from are the real circuits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/netlist.h"

namespace serdes::flow {

class NetlistSimulator {
 public:
  explicit NetlistSimulator(const Netlist& netlist);

  /// Sets a primary input value (by net id).  Clock nets are driven by
  /// step(); do not poke them.
  void set_input(NetId net, bool value);

  /// Runs one clock cycle: flops capture their D pins (computed from the
  /// pre-edge state), then combinational logic settles.
  void step();

  /// Settles combinational logic without a clock edge (for reading outputs
  /// after input changes).
  void settle();

  /// Current logic value of any net.
  [[nodiscard]] bool value(NetId net) const;

  /// Values of a vector of nets interpreted LSB-first as an integer.
  [[nodiscard]] std::uint64_t bus_value(const std::vector<NetId>& nets) const;

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  [[nodiscard]] bool eval_cell(const CellInstance& cell) const;

  const Netlist* netlist_;
  std::vector<int> topo_order_;       // combinational cells, levelized
  std::vector<int> flops_;            // sequential cells
  std::vector<std::uint8_t> net_values_;
  std::uint64_t cycles_ = 0;
};

}  // namespace serdes::flow
