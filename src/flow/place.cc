#include "flow/place.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace serdes::flow {

PlacementResult place(Netlist& netlist, const PlacementConfig& config) {
  if (config.utilization <= 0.0 || config.utilization > 1.0) {
    throw std::invalid_argument("place: utilization must be in (0,1]");
  }
  PlacementResult result;
  const double row_height = netlist.library().row_height_um();

  for (const auto& c : netlist.cells()) result.cell_area += c.type->area;
  result.die_area =
      util::square_microns(result.cell_area.value() / config.utilization);

  // Region geometry: width * height = die_area, height/width = aspect.
  result.width_um = std::sqrt(result.die_area.value() / config.aspect_ratio);
  result.height_um = result.die_area.value() / result.width_um;
  result.rows = std::max(1, static_cast<int>(result.height_um / row_height));
  result.height_um = result.rows * row_height;

  // BFS order from primary-input sinks: keeps logical neighbours physically
  // adjacent, a cheap stand-in for analytic placement.
  const auto& cells = netlist.cells();
  const int n = static_cast<int>(cells.size());
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::queue<int> frontier;
  for (const auto& net : netlist.nets()) {
    if (!net.is_primary_input) continue;
    for (const auto& [cell_id, pin] : net.sinks) {
      if (!visited[static_cast<std::size_t>(cell_id)]) {
        visited[static_cast<std::size_t>(cell_id)] = true;
        frontier.push(cell_id);
      }
    }
  }
  while (!frontier.empty()) {
    const int c = frontier.front();
    frontier.pop();
    order.push_back(c);
    const auto& cell = cells[static_cast<std::size_t>(c)];
    const Net& out = netlist.net(cell.output);
    for (const auto& [sink, pin] : out.sinks) {
      if (!visited[static_cast<std::size_t>(sink)]) {
        visited[static_cast<std::size_t>(sink)] = true;
        frontier.push(sink);
      }
    }
  }
  for (int i = 0; i < n; ++i) {  // unreachable cells (tie cells etc.)
    if (!visited[static_cast<std::size_t>(i)]) order.push_back(i);
  }

  // Fill rows serpentine with per-row width budget scaled by utilization.
  const double row_budget = result.width_um * config.utilization;
  double x = 0.0;
  int row = 0;
  bool left_to_right = true;
  auto& mcells = netlist.cells();
  for (int id : order) {
    auto& cell = mcells[static_cast<std::size_t>(id)];
    const double w = cell.type->area.value() / row_height;
    if (x + w > row_budget) {
      ++row;
      x = 0.0;
      left_to_right = !left_to_right;
      if (row >= result.rows) row = result.rows - 1;  // overflow: stack last
    }
    const double x_place =
        left_to_right ? x : std::max(0.0, row_budget - x - w);
    cell.x_um = x_place / config.utilization;  // spread across full width
    cell.y_um = row * row_height;
    cell.placed = true;
    x += w;
  }

  // HPWL + wire capacitance back-annotation.
  result.total_hpwl_um = 0.0;
  for (auto& net : netlist.nets()) {
    double min_x = 0.0;
    double max_x = 0.0;
    double min_y = 0.0;
    double max_y = 0.0;
    bool first = true;
    auto visit = [&](CellId cid) {
      const auto& cell = netlist.cell(cid);
      if (!cell.placed) return;
      if (first) {
        min_x = max_x = cell.x_um;
        min_y = max_y = cell.y_um;
        first = false;
      } else {
        min_x = std::min(min_x, cell.x_um);
        max_x = std::max(max_x, cell.x_um);
        min_y = std::min(min_y, cell.y_um);
        max_y = std::max(max_y, cell.y_um);
      }
    };
    if (net.driver >= 0) visit(net.driver);
    for (const auto& [cid, pin] : net.sinks) visit(cid);
    if (first) continue;
    const double hpwl = (max_x - min_x) + (max_y - min_y);
    result.total_hpwl_um += hpwl;
    const double routed = std::min(hpwl, config.max_net_length_um);
    net.wire_cap = util::farads(routed * config.wire_cap_f_per_um);
  }
  return result;
}

Floorplan floorplan(std::vector<FloorplanBlock> blocks,
                    double whitespace_fraction) {
  if (whitespace_fraction < 0.0) {
    throw std::invalid_argument("floorplan: whitespace must be >= 0");
  }
  // Shape each block as a near-square rectangle of its area.
  double total_area = 0.0;
  for (auto& b : blocks) {
    b.width_um = std::sqrt(b.area.value() * 1.2);  // slightly wide blocks
    b.height_um = b.area.value() / b.width_um;
    total_area += b.area.value();
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const FloorplanBlock& a, const FloorplanBlock& b) {
              return a.height_um > b.height_um;
            });

  const double die_target = total_area * (1.0 + whitespace_fraction);
  const double die_width = std::sqrt(die_target);

  // Shelf packing: fill shelves left to right, open a new shelf when the
  // block no longer fits.
  Floorplan plan;
  double shelf_y = 0.0;
  double shelf_height = 0.0;
  double x = 0.0;
  for (auto& b : blocks) {
    if (x + b.width_um > die_width && x > 0.0) {
      shelf_y += shelf_height;
      shelf_height = 0.0;
      x = 0.0;
    }
    b.x_um = x;
    b.y_um = shelf_y;
    x += b.width_um;
    shelf_height = std::max(shelf_height, b.height_um);
    plan.die_width_um = std::max(plan.die_width_um, x);
  }
  plan.die_height_um = shelf_y + shelf_height;
  plan.blocks = std::move(blocks);
  return plan;
}

}  // namespace serdes::flow
