// Placement and floorplanning.
//
// Stands in for the OpenROAD floorplan/place steps of the paper's flow
// (Fig 12) and produces the data behind Fig 11: per-block layout areas and
// the die plan.  Cells are placed into standard-cell rows in BFS order from
// the primary inputs (a simple data-flow ordering that keeps connected
// cells near each other), wire lengths are estimated by half-perimeter
// bounding box, and wire capacitance is back-annotated onto the netlist for
// timing/power.
#pragma once

#include <string>
#include <vector>

#include "flow/netlist.h"

namespace serdes::flow {

struct PlacementConfig {
  /// Target row utilization (OpenLANE defaults run well below 1.0).
  double utilization = 0.35;
  /// Routed-wire capacitance per micron of estimated length.
  double wire_cap_f_per_um = 0.20e-15;
  /// Per-net length cap applied when annotating wire capacitance.  The
  /// BFS/serpentine placement over-estimates a few global nets badly; a
  /// detailed placer would pull their endpoints together, so lengths are
  /// clamped to this bound (microns) for timing/power annotation.
  double max_net_length_um = 50.0;
  /// Aspect ratio (height/width) of the placement region.
  double aspect_ratio = 1.0;
};

struct PlacementResult {
  double width_um = 0.0;
  double height_um = 0.0;
  /// Sum of cell areas.
  util::AreaUm2 cell_area{0.0};
  /// Die (row region) area = cell area / utilization.
  util::AreaUm2 die_area{0.0};
  /// Total half-perimeter wire length over all nets.
  double total_hpwl_um = 0.0;
  int rows = 0;
};

/// Places `netlist` cells in rows (mutates cell x/y) and back-annotates
/// per-net wire capacitance.  Returns the region geometry.
PlacementResult place(Netlist& netlist, const PlacementConfig& config = {});

/// One top-level block in the die plan.
struct FloorplanBlock {
  std::string name;
  util::AreaUm2 area{0.0};
  // Filled by floorplan():
  double x_um = 0.0;
  double y_um = 0.0;
  double width_um = 0.0;
  double height_um = 0.0;
};

struct Floorplan {
  double die_width_um = 0.0;
  double die_height_um = 0.0;
  std::vector<FloorplanBlock> blocks;

  [[nodiscard]] util::AreaUm2 die_area() const {
    return util::square_microns(die_width_um * die_height_um);
  }
};

/// Packs blocks into a die using a simple shelf algorithm (largest first),
/// padding the die by `whitespace_fraction` of the summed block area.
Floorplan floorplan(std::vector<FloorplanBlock> blocks,
                    double whitespace_fraction = 0.15);

}  // namespace serdes::flow
