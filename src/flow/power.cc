#include "flow/power.h"

namespace serdes::flow {

PowerReport analyze_power(const Netlist& netlist, const PowerConfig& config) {
  PowerReport report;
  const double v2 = config.vdd.value() * config.vdd.value();
  const double f = config.clock.value();

  double dynamic = 0.0;
  double clock_dynamic = 0.0;
  for (std::size_t i = 0; i < netlist.nets().size(); ++i) {
    const Net& net = netlist.nets()[i];
    // Switched capacitance on this net: sink pins, wire, driver output.
    double c = netlist.pin_load(static_cast<NetId>(i)).value() +
               net.wire_cap.value();
    if (net.driver >= 0) {
      // Driver self-load approximated by its input cap (junction caps are
      // comparable to gate caps in this library).
      c += netlist.cell(net.driver).type->input_cap.value() * 0.5;
    }
    double alpha = net.is_clock ? config.clock_activity : config.data_activity;
    if (!net.is_clock && net.activity >= 0.0) alpha = net.activity;
    const double p = alpha * c * v2 * f;
    dynamic += p;
    if (net.is_clock) clock_dynamic += p;
  }
  report.dynamic = util::watts(dynamic);
  report.clock_tree = util::watts(clock_dynamic);
  report.short_circuit = util::watts(dynamic * config.short_circuit_fraction);

  util::Watt leak{0.0};
  for (const auto& c : netlist.cells()) leak += c.type->leakage;
  report.leakage = leak;
  return report;
}

util::Joule energy_per_bit(const PowerReport& report, util::Hertz bit_rate) {
  return util::joules(report.total().value() / bit_rate.value());
}

}  // namespace serdes::flow
