// Power analysis (dynamic + short-circuit + leakage).
//
// Produces the per-block milliwatt numbers of the paper's Fig 10.  Dynamic
// power follows the standard alpha·C·V²·f model over every net's switched
// capacitance (sink pins + routed wire + driver self-load), with clock nets
// toggling every cycle and data nets at a configurable activity factor.
#pragma once

#include "flow/netlist.h"

namespace serdes::flow {

struct PowerConfig {
  util::Hertz clock{2e9};
  util::Volt vdd{1.8};
  /// Probability that a data net toggles in a given cycle.
  double data_activity = 0.25;
  /// Clock nets switch twice per cycle (rise + fall): alpha = 1 in the
  /// energy-per-cycle convention used here, times this factor.
  double clock_activity = 1.0;
  /// Short-circuit (crowbar) power as a fraction of dynamic power.
  double short_circuit_fraction = 0.10;
};

struct PowerReport {
  util::Watt dynamic{0.0};
  util::Watt clock_tree{0.0};  // subset of dynamic on clock nets
  util::Watt short_circuit{0.0};
  util::Watt leakage{0.0};

  [[nodiscard]] util::Watt total() const {
    return dynamic + short_circuit + leakage;
  }
};

/// Analyzes the (ideally placed, so wire caps are annotated) netlist.
PowerReport analyze_power(const Netlist& netlist,
                          const PowerConfig& config = {});

/// Energy per bit at the given bit rate (total power / bit rate).
util::Joule energy_per_bit(const PowerReport& report, util::Hertz bit_rate);

}  // namespace serdes::flow
