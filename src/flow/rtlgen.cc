#include "flow/rtlgen.h"

#include <functional>
#include <stdexcept>
#include <string>

namespace serdes::flow {

namespace {

std::string idx_name(const std::string& base, int i) {
  return base + "_" + std::to_string(i);
}

/// Registers a DFF with D = `d`, CLK = `clk`.
NetId add_dff(Netlist& n, const CellLibrary& lib, const std::string& name,
              NetId d, NetId clk) {
  return n.add_cell(lib.weakest(CellFunction::kDff), name, {d, clk});
}

/// Strong DFF for timing-critical state (counters).
NetId add_fast_dff(Netlist& n, const CellLibrary& lib, const std::string& name,
                   NetId d, NetId clk) {
  return n.add_cell(lib.strongest(CellFunction::kDff), name, {d, clk});
}

/// 2:1 mux cell (A when S=0, B when S=1).
NetId add_mux(Netlist& n, const CellLibrary& lib, const std::string& name,
              NetId a, NetId b, NetId s) {
  return n.add_cell(lib.weakest(CellFunction::kMux2), name, {a, b, s});
}

}  // namespace

std::vector<NetId> build_counter(Netlist& n, int bits, NetId clk,
                                 const std::string& prefix) {
  const CellLibrary& lib = n.library();
  // Ripple-increment: q[i] <= q[i] ^ carry[i-1]; carry[i] = carry[i-1] & q[i].
  // The D inputs form a combinational increment of the current state, so we
  // must create the flops first and then wire their D nets; since add_cell
  // fixes inputs at creation, we instead build bit-by-bit using the previous
  // state nets, with a per-bit toggle structure:
  //   t0 = ~q0; q0' = t0
  //   ti = qi ^ ci-1; ci = qi & ci-1 (c0 = q0)
  // We express the feedback by creating each DFF with a placeholder input
  // and patching it afterwards.
  std::vector<NetId> q(static_cast<std::size_t>(bits));
  std::vector<CellId> flops(static_cast<std::size_t>(bits));
  // Placeholder net for D until the increment logic exists.
  const NetId placeholder = n.add_net(prefix + "_d_placeholder");
  for (int i = 0; i < bits; ++i) {
    q[static_cast<std::size_t>(i)] =
        add_fast_dff(n, lib, idx_name(prefix + "_q", i), placeholder, clk);
    flops[static_cast<std::size_t>(i)] =
        n.net(q[static_cast<std::size_t>(i)]).driver;
  }
  // Increment logic.  The carry into bit i is AND(q[0..i-1]) built as a
  // balanced tree (log depth) so the counter closes timing at the 2 GHz bit
  // clock, unlike a ripple chain.
  const CellType& and2 = lib.get("and2_x4");
  std::function<NetId(int, int, int)> and_tree =
      [&](int lo, int hi, int tag) -> NetId {
    if (lo == hi) return q[static_cast<std::size_t>(lo)];
    const int mid = (lo + hi) / 2;
    const NetId left = and_tree(lo, mid, tag * 2);
    const NetId right = and_tree(mid + 1, hi, tag * 2 + 1);
    return n.add_cell(and2,
                      prefix + "_c" + std::to_string(hi) + "_" +
                          std::to_string(lo) + "_" + std::to_string(tag),
                      {left, right});
  };
  std::vector<NetId> d(static_cast<std::size_t>(bits));
  d[0] = n.add_cell(lib.weakest(CellFunction::kInv), prefix + "_t0", {q[0]});
  for (int i = 1; i < bits; ++i) {
    const NetId carry = and_tree(0, i - 1, i);
    d[static_cast<std::size_t>(i)] =
        n.add_cell(lib.get("xor2_x4"), idx_name(prefix + "_t", i),
                   {q[static_cast<std::size_t>(i)], carry});
  }
  // Patch the flop D pins from the placeholder to the real increment nets.
  for (int i = 0; i < bits; ++i) {
    auto& cell = n.cells()[static_cast<std::size_t>(
        flops[static_cast<std::size_t>(i)])];
    cell.inputs[0] = d[static_cast<std::size_t>(i)];
    n.nets()[static_cast<std::size_t>(d[static_cast<std::size_t>(i)])]
        .sinks.emplace_back(flops[static_cast<std::size_t>(i)], 0);
  }
  // Remove the placeholder's sink records (it drives nothing real now).
  n.nets()[static_cast<std::size_t>(placeholder)].sinks.clear();
  // Bit i of a binary counter toggles every 2^i cycles.
  for (int i = 0; i < bits; ++i) {
    n.nets()[static_cast<std::size_t>(q[static_cast<std::size_t>(i)])]
        .activity = 0.5 / static_cast<double>(1 << i);
  }
  return q;
}

NetId build_mux_tree(Netlist& n, const std::vector<NetId>& inputs,
                     const std::vector<NetId>& selects,
                     const std::string& prefix, NetId pipeline_clk) {
  if (inputs.size() != (1ull << selects.size())) {
    throw std::invalid_argument("build_mux_tree: inputs must be 2^selects");
  }
  const CellLibrary& lib = n.library();
  const CellType& sel_buf = lib.get("buf_x8");
  constexpr std::size_t kMuxesPerSelectBuffer = 16;
  std::vector<NetId> level = inputs;
  for (std::size_t s = 0; s < selects.size(); ++s) {
    // When the tree is pipelined, the data reaching level s is s cycles
    // old, so its select must be delayed by the same s cycles (a select
    // shift register) or the tree would select a permuted sequence.
    NetId level_select = selects[s];
    if (pipeline_clk != kNoNet) {
      for (std::size_t d = 0; d < s; ++d) {
        level_select = add_dff(n, lib,
                               prefix + "_seldly" + std::to_string(s) + "_" +
                                   std::to_string(d),
                               level_select, pipeline_clk);
      }
    }
    // Fanout-buffer the select: one buf_x8 per group of muxes.
    std::vector<NetId> sel_copies;
    const std::size_t muxes = level.size() / 2;
    for (std::size_t g = 0; g * kMuxesPerSelectBuffer < muxes; ++g) {
      sel_copies.push_back(n.add_cell(
          sel_buf,
          prefix + "_selbuf" + std::to_string(s) + "_" + std::to_string(g),
          {level_select}));
    }
    std::vector<NetId> next;
    next.reserve(muxes);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const NetId sel = sel_copies[(i / 2) / kMuxesPerSelectBuffer];
      NetId y = add_mux(
          n, lib,
          prefix + "_m" + std::to_string(s) + "_" + std::to_string(i / 2),
          level[i], level[i + 1], sel);
      if (pipeline_clk != kNoNet) {
        y = add_dff(n, lib,
                    prefix + "_p" + std::to_string(s) + "_" +
                        std::to_string(i / 2),
                    y, pipeline_clk);
      }
      next.push_back(y);
    }
    level = std::move(next);
  }
  return level.front();
}

Netlist generate_serializer(const SerdesRtlConfig& config,
                            const CellLibrary& lib) {
  Netlist n("serializer", lib);
  const int frame_bits = config.lanes * config.bits_per_lane;
  const NetId clk = n.add_input_port("clk");
  n.mark_clock(clk);
  const NetId load = n.add_input_port("load");

  // Input FIFO bank: depth stages of frame_bits flops, each bit entering
  // through a shift/hold mux — lanes x 32 x depth DFF+MUX pairs.
  std::vector<NetId> stage_q;
  stage_q.reserve(static_cast<std::size_t>(frame_bits));
  for (int b = 0; b < frame_bits; ++b) {
    stage_q.push_back(n.add_input_port(idx_name("din", b)));
  }
  for (int d = 0; d < config.fifo_depth; ++d) {
    std::vector<NetId> next;
    next.reserve(static_cast<std::size_t>(frame_bits));
    for (int b = 0; b < frame_bits; ++b) {
      const std::string base =
          "fifo" + std::to_string(d) + "_" + std::to_string(b);
      // Hold (feedback) vs advance (previous stage) under `load`.
      const NetId placeholder = n.add_net(base + "_loop");
      const NetId mux = add_mux(n, lib, base + "_mux", placeholder,
                                stage_q[static_cast<std::size_t>(b)], load);
      const NetId q = add_dff(n, lib, base + "_ff", mux, clk);
      // Close the hold loop: placeholder becomes the flop's own Q.
      auto& mux_cell =
          n.cells()[static_cast<std::size_t>(n.net(mux).driver)];
      mux_cell.inputs[0] = q;
      n.nets()[static_cast<std::size_t>(q)].sinks.emplace_back(
          n.net(mux).driver, 0);
      n.nets()[static_cast<std::size_t>(placeholder)].sinks.clear();
      // The paper's naive FSM serializer ripples data through the bank
      // every bit time: near-random toggling on the whole datapath.
      n.nets()[static_cast<std::size_t>(q)].activity = 0.45;
      n.nets()[static_cast<std::size_t>(mux)].activity = 0.45;
      next.push_back(q);
    }
    stage_q = std::move(next);
  }

  // Bit-select counter (log2(frame_bits) bits) and the 256:1 read mux tree.
  int sel_bits = 0;
  while ((1 << sel_bits) < frame_bits) ++sel_bits;
  const std::vector<NetId> sel = build_counter(n, sel_bits, clk, "bitcnt");
  const NetId mux_out = build_mux_tree(n, stage_q, sel, "rdmux", clk);

  // Retime and drive out.
  const NetId out_ff = add_dff(n, lib, "out_ff", mux_out, clk);
  const NetId out = n.add_cell(lib.strongest(CellFunction::kBuf), "out_buf",
                               {out_ff});
  n.mark_output(out);

  insert_clock_tree(n, clk);
  return n;
}

Netlist generate_deserializer(const SerdesRtlConfig& config,
                              const CellLibrary& lib) {
  Netlist n("deserializer", lib);
  const int frame_bits = config.lanes * config.bits_per_lane;
  const NetId clk = n.add_input_port("clk");
  n.mark_clock(clk);
  const NetId serial_in = n.add_input_port("serial_in");
  const NetId capture = n.add_input_port("capture");

  // 256-bit input shift register in the bit-clock domain.
  std::vector<NetId> shift_q;
  shift_q.reserve(static_cast<std::size_t>(frame_bits));
  NetId prev = serial_in;
  for (int b = 0; b < frame_bits; ++b) {
    prev = add_dff(n, lib, idx_name("shift", b), prev, clk);
    // Serial data marches through every cycle: random-data activity.
    n.nets()[static_cast<std::size_t>(prev)].activity = 0.45;
    shift_q.push_back(prev);
  }

  // Output capture FIFO: depth stages x frame_bits, advancing on `capture`
  // (mux-protected flops, like the serializer's input bank).
  std::vector<NetId> stage_q = shift_q;
  for (int d = 0; d < config.fifo_depth; ++d) {
    std::vector<NetId> next;
    next.reserve(static_cast<std::size_t>(frame_bits));
    for (int b = 0; b < frame_bits; ++b) {
      const std::string base =
          "cap" + std::to_string(d) + "_" + std::to_string(b);
      const NetId placeholder = n.add_net(base + "_loop");
      const NetId mux = add_mux(n, lib, base + "_mux", placeholder,
                                stage_q[static_cast<std::size_t>(b)], capture);
      const NetId q = add_dff(n, lib, base + "_ff", mux, clk);
      auto& mux_cell =
          n.cells()[static_cast<std::size_t>(n.net(mux).driver)];
      mux_cell.inputs[0] = q;
      n.nets()[static_cast<std::size_t>(q)].sinks.emplace_back(
          n.net(mux).driver, 0);
      n.nets()[static_cast<std::size_t>(placeholder)].sinks.clear();
      // Capture flops only change once per 256-bit frame.
      n.nets()[static_cast<std::size_t>(q)].activity = 0.45 / 256.0;
      n.nets()[static_cast<std::size_t>(mux)].activity = 0.45 / 256.0;
      next.push_back(q);
      if (d + 1 == config.fifo_depth) n.mark_output(q);
    }
    stage_q = std::move(next);
  }

  // Frame counter + terminal-count detect (8-input AND tree over the count).
  int cnt_bits = 0;
  while ((1 << cnt_bits) < frame_bits) ++cnt_bits;
  const std::vector<NetId> cnt = build_counter(n, cnt_bits, clk, "framecnt");
  NetId tc = cnt[0];
  for (std::size_t i = 1; i < cnt.size(); ++i) {
    tc = n.add_cell(lib.weakest(CellFunction::kAnd2),
                    idx_name("tc_and", static_cast<int>(i)), {tc, cnt[i]});
  }
  n.mark_output(tc);

  insert_clock_tree(n, clk);
  return n;
}

Netlist generate_cdr(const SerdesRtlConfig& config, const CellLibrary& lib) {
  Netlist n("cdr", lib);
  const int os = config.cdr_oversampling;
  const NetId clk = n.add_input_port("clk");
  n.mark_clock(clk);
  const NetId data_in = n.add_input_port("data_in");
  const NetId glitch_scan = n.add_input_port("glitch_scan");
  const NetId jitter_scan = n.add_input_port("jitter_scan");

  // Multi-phase sampler bank: one flop per phase (each strobed by its own
  // phase of the 2 GHz clock; single clock net here, phases are a clocking
  // detail below this abstraction).
  std::vector<NetId> samplers;
  samplers.reserve(static_cast<std::size_t>(os));
  for (int p = 0; p < os; ++p) {
    const NetId q = add_dff(n, lib, idx_name("sampler", p), data_in, clk);
    n.nets()[static_cast<std::size_t>(q)].activity = 0.45;
    // The sampler fans out to the edge detectors, the window FIFO, the
    // decision mux and the majority gates: buffer it so the 2 GHz path
    // closes timing.
    const NetId buffered = n.add_cell(lib.get("buf_x8"),
                                      idx_name("sampler_buf", p), {q});
    n.nets()[static_cast<std::size_t>(buffered)].activity = 0.45;
    samplers.push_back(buffered);
  }

  // Sample FIFO register bank: window_uis x oversampling bits.
  std::vector<NetId> fifo_tail(samplers);
  for (int w = 0; w < config.cdr_window_uis; ++w) {
    for (int p = 0; p < os; ++p) {
      fifo_tail[static_cast<std::size_t>(p)] = add_dff(
          n, lib, "fifo_" + std::to_string(w) + "_" + std::to_string(p),
          fifo_tail[static_cast<std::size_t>(p)], clk);
      n.nets()[static_cast<std::size_t>(fifo_tail[static_cast<std::size_t>(p)])]
          .activity = 0.45;
    }
  }

  // Edge detectors between adjacent phases.
  std::vector<NetId> edges;
  for (int p = 0; p + 1 < os; ++p) {
    edges.push_back(n.add_cell(lib.weakest(CellFunction::kXor2),
                               idx_name("edge", p),
                               {samplers[static_cast<std::size_t>(p)],
                                samplers[static_cast<std::size_t>(p + 1)]}));
  }

  // Per-phase vote counters (width = log2 of window).
  int vote_bits = 0;
  while ((1 << vote_bits) < config.cdr_window_uis) ++vote_bits;
  std::vector<std::vector<NetId>> votes;
  for (int p = 0; p + 1 < os; ++p) {
    votes.push_back(build_counter(n, vote_bits, clk, idx_name("vote", p)));
  }

  // Boundary compare tree: pairwise magnitude comparators over the vote
  // counters (xor/and/or ladder per bit).
  std::vector<NetId> winner = votes[0];
  for (std::size_t p = 1; p < votes.size(); ++p) {
    std::vector<NetId> next;
    for (int b = 0; b < vote_bits; ++b) {
      const NetId x = n.add_cell(
          lib.weakest(CellFunction::kXor2),
          "cmp_x_" + std::to_string(p) + "_" + std::to_string(b),
          {winner[static_cast<std::size_t>(b)],
           votes[p][static_cast<std::size_t>(b)]});
      const NetId g = n.add_cell(
          lib.weakest(CellFunction::kAnd2),
          "cmp_g_" + std::to_string(p) + "_" + std::to_string(b),
          {x, votes[p][static_cast<std::size_t>(b)]});
      const NetId o = n.add_cell(
          lib.weakest(CellFunction::kOr2),
          "cmp_o_" + std::to_string(p) + "_" + std::to_string(b),
          {g, winner[static_cast<std::size_t>(b)]});
      next.push_back(add_dff(n, lib,
                             "cmp_r_" + std::to_string(p) + "_" +
                                 std::to_string(b),
                             o, clk));
    }
    winner = std::move(next);
  }

  // Decision phase register and decision mux over the sampler bank.
  int sel_bits = 0;
  while ((1 << sel_bits) < os) ++sel_bits;
  std::vector<NetId> phase_reg;
  for (int b = 0; b < sel_bits; ++b) {
    phase_reg.push_back(add_dff(n, lib, idx_name("phase", b),
                                winner[static_cast<std::size_t>(
                                    b % static_cast<int>(winner.size()))],
                                clk));
  }
  // Pad the sampler bank to a power of two with the last phase.
  std::vector<NetId> padded = samplers;
  while (padded.size() < (1ull << sel_bits)) padded.push_back(samplers.back());
  const NetId picked = build_mux_tree(n, padded, phase_reg, "decmux", clk);

  // Glitch-correction majority-of-3 over adjacent phases, gated by the scan
  // bit: maj = ab | bc | ca; out = scan ? maj : picked.
  const NetId a = samplers[static_cast<std::size_t>(os / 2 - 1)];
  const NetId b = samplers[static_cast<std::size_t>(os / 2)];
  const NetId c = samplers[static_cast<std::size_t>(os / 2 + 1)];
  const NetId ab = n.add_cell(lib.weakest(CellFunction::kAnd2), "maj_ab", {a, b});
  const NetId bc = n.add_cell(lib.weakest(CellFunction::kAnd2), "maj_bc", {b, c});
  const NetId ca = n.add_cell(lib.weakest(CellFunction::kAnd2), "maj_ca", {c, a});
  const NetId ab_bc =
      n.add_cell(lib.weakest(CellFunction::kOr2), "maj_or1", {ab, bc});
  const NetId maj =
      n.add_cell(lib.weakest(CellFunction::kOr2), "maj_or2", {ab_bc, ca});
  const NetId dec =
      add_mux(n, lib, "glitch_mux", picked, maj, glitch_scan);

  // Jitter-correction hysteresis: candidate phase register + streak counter,
  // engaged by the jitter scan bit.
  std::vector<NetId> cand;
  for (int bb = 0; bb < sel_bits; ++bb) {
    cand.push_back(add_dff(n, lib, idx_name("cand", bb),
                           phase_reg[static_cast<std::size_t>(bb)], clk));
  }
  const std::vector<NetId> streak = build_counter(n, 3, clk, "streak");
  const NetId hys_gate = n.add_cell(lib.weakest(CellFunction::kAnd2),
                                    "hys_gate", {streak.back(), jitter_scan});
  (void)hys_gate;
  (void)cand;

  // Recovered bit output register.
  const NetId out = add_dff(n, lib, "recovered", dec, clk);
  n.mark_output(out);

  insert_clock_tree(n, clk);
  return n;
}

int insert_clock_tree(Netlist& n, NetId clock_root, int max_fanout) {
  if (max_fanout < 2) {
    throw std::invalid_argument("insert_clock_tree: max_fanout >= 2");
  }
  const CellLibrary& lib = n.library();
  // Collect DFF clock pins currently on the root (pin 1 of kDff).
  std::vector<std::pair<CellId, int>> sinks;
  auto& root = n.nets()[static_cast<std::size_t>(clock_root)];
  std::vector<std::pair<CellId, int>> kept;
  for (const auto& [cell_id, pin] : root.sinks) {
    const auto& cell = n.cell(cell_id);
    if (cell.type->function == CellFunction::kDff && pin == 1) {
      sinks.emplace_back(cell_id, pin);
    } else {
      kept.push_back({cell_id, pin});
    }
  }
  if (sinks.size() <= static_cast<std::size_t>(max_fanout)) return 0;
  root.sinks = kept;

  int buffers = 0;
  // Bottom-up: group sinks under leaf buffers, then buffer the buffers.
  std::vector<NetId> level_nets;
  std::size_t group = 0;
  for (std::size_t i = 0; i < sinks.size(); i += group) {
    group = std::min<std::size_t>(static_cast<std::size_t>(max_fanout),
                                  sinks.size() - i);
    const NetId buf_out = n.add_cell(
        lib.get("clkbuf_x4"),
        "ctsleaf_" + std::to_string(buffers), {clock_root});
    // Temporarily driven by root; will be re-parented when upper levels are
    // added below.
    auto& buf_net = n.nets()[static_cast<std::size_t>(buf_out)];
    buf_net.is_clock = true;
    for (std::size_t k = i; k < i + group; ++k) {
      auto& cell = n.cells()[static_cast<std::size_t>(sinks[k].first)];
      cell.inputs[static_cast<std::size_t>(sinks[k].second)] = buf_out;
      buf_net.sinks.emplace_back(sinks[k].first, sinks[k].second);
    }
    level_nets.push_back(buf_out);
    ++buffers;
  }

  // Upper levels: re-parent groups of buffers under new buffers until the
  // root's fanout is within bounds.
  while (level_nets.size() > static_cast<std::size_t>(max_fanout)) {
    std::vector<NetId> next_level;
    for (std::size_t i = 0; i < level_nets.size();
         i += static_cast<std::size_t>(max_fanout)) {
      const std::size_t g = std::min<std::size_t>(
          static_cast<std::size_t>(max_fanout), level_nets.size() - i);
      const NetId buf_out =
          n.add_cell(lib.get("clkbuf_x4"),
                     "ctsmid_" + std::to_string(buffers), {clock_root});
      auto& buf_net = n.nets()[static_cast<std::size_t>(buf_out)];
      buf_net.is_clock = true;
      for (std::size_t k = i; k < i + g; ++k) {
        // Re-parent the child buffer from clock_root to this buffer.
        const CellId child =
            n.net(level_nets[k]).driver;
        auto& child_cell = n.cells()[static_cast<std::size_t>(child)];
        // Remove child from root's sink list.
        auto& root_net = n.nets()[static_cast<std::size_t>(clock_root)];
        std::erase_if(root_net.sinks, [&](const auto& s) {
          return s.first == child;
        });
        child_cell.inputs[0] = buf_out;
        buf_net.sinks.emplace_back(child, 0);
      }
      next_level.push_back(buf_out);
      ++buffers;
    }
    level_nets = std::move(next_level);
  }
  return buffers;
}

}  // namespace serdes::flow
