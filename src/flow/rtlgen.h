// RTL generators: build gate-level netlists for the SerDes digital blocks.
//
// The paper writes the serializer/deserializer/CDR in Verilog and lets
// OpenLANE synthesize them.  We generate the post-synthesis structure
// directly: parameterised netlist builders that emit the same datapaths
// (FIFO banks, shift registers, mux trees, counters, vote logic) mapped
// onto the Liberty-lite cell library, then insert a buffered clock tree.
// The resulting netlists feed STA (timing closure at 2 GHz), placement
// (Fig 11 area) and power analysis (Fig 10 budget).
//
// The large IO configuration of the paper — eight parallel 32-bit streams
// with multi-frame buffering — is what makes the serializer/deserializer
// dominate power and area; `fifo_depth` models that choice.
#pragma once

#include "flow/netlist.h"

namespace serdes::flow {

struct SerdesRtlConfig {
  int lanes = 8;
  int bits_per_lane = 32;
  /// IO FIFO depth per lane (the paper's "intended design choice to support
  /// large IO streams").
  int fifo_depth = 8;
  /// CDR oversampling factor (samplers / phases per UI).
  int cdr_oversampling = 5;
  /// CDR bit-boundary vote window, unit intervals.
  int cdr_window_uis = 96;
};

/// Serializer: input FIFO bank (lanes x depth x bits), 256:1 read mux tree,
/// bit counter, output stage.  All flops in the 2 GHz bit-clock domain.
Netlist generate_serializer(const SerdesRtlConfig& config,
                            const CellLibrary& lib = CellLibrary::sky130());

/// Deserializer: 256-bit input shift register (bit clock) plus a
/// lanes x depth x bits capture FIFO (frame clock) and frame counter.
Netlist generate_deserializer(const SerdesRtlConfig& config,
                              const CellLibrary& lib = CellLibrary::sky130());

/// Oversampling CDR: multi-phase sampler bank, sample FIFO, edge detectors,
/// per-phase vote counters, boundary compare tree, decision mux, glitch
/// majority filter and jitter hysteresis registers.
Netlist generate_cdr(const SerdesRtlConfig& config,
                     const CellLibrary& lib = CellLibrary::sky130());

/// Inserts a fanout-limited clock buffer tree from `clock_root` to every
/// DFF clock pin currently tied to it.  Returns the number of buffers
/// inserted.
int insert_clock_tree(Netlist& netlist, NetId clock_root, int max_fanout = 8);

/// Builds a `bits`-wide ripple-increment counter clocked by `clk`;
/// returns the Q nets (LSB first).  Helper shared by the generators
/// (exposed for tests).
std::vector<NetId> build_counter(Netlist& n, int bits, NetId clk,
                                 const std::string& prefix);

/// Builds a balanced mux tree selecting one of `inputs` using the select
/// nets (LSB = level 0). inputs.size() must be a power of two and equal to
/// 2^selects.size().  Select nets are fanout-buffered (one buf_x8 per 16
/// muxes).  When `pipeline_clk` is a valid net, a retiming register is
/// inserted after every mux level so the tree runs at the bit clock (the
/// added latency is a pure pipeline delay).  Returns the output net.
NetId build_mux_tree(Netlist& n, const std::vector<NetId>& inputs,
                     const std::vector<NetId>& selects,
                     const std::string& prefix,
                     NetId pipeline_clk = kNoNet);

}  // namespace serdes::flow
