#include "flow/sta.h"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace serdes::flow {

util::Hertz TimingReport::fmax() const {
  const double t = critical_arrival.value();
  return util::hertz(t > 0.0 ? 1.0 / t : 1e18);
}

StaEngine::StaEngine(const Netlist& netlist) : netlist_(&netlist) {
  levelize();
}

namespace {
/// A cell is a timing start point if it is sequential (arrivals restart at
/// its Q output).
bool is_sequential(const CellInstance& c) {
  return c.type->function == CellFunction::kDff;
}
}  // namespace

void StaEngine::levelize() {
  const auto& cells = netlist_->cells();
  const int n = static_cast<int>(cells.size());
  // In-degree counts only combinational dependencies: an input net driven
  // by a combinational cell.  Flop outputs and primary inputs are sources.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const auto& c = cells[static_cast<std::size_t>(i)];
    for (NetId in : c.inputs) {
      const Net& net = netlist_->net(in);
      if (net.driver >= 0 && !is_sequential(netlist_->cell(net.driver))) {
        ++indegree[static_cast<std::size_t>(i)];
      }
    }
  }
  std::queue<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) ready.push(i);
  }
  topo_order_.clear();
  topo_order_.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int c = ready.front();
    ready.pop();
    topo_order_.push_back(c);
    const auto& cell = cells[static_cast<std::size_t>(c)];
    if (is_sequential(cell)) continue;  // arrivals restart past a flop
    const Net& out = netlist_->net(cell.output);
    for (const auto& [sink, pin] : out.sinks) {
      if (--indegree[static_cast<std::size_t>(sink)] == 0) ready.push(sink);
    }
  }
  if (static_cast<int>(topo_order_.size()) != n) {
    throw std::runtime_error("StaEngine: combinational loop detected");
  }
}

std::vector<util::Second> StaEngine::arrival_times() const {
  const auto& cells = netlist_->cells();
  std::vector<util::Second> arrival(cells.size(), util::Second{0.0});
  const auto& timing = netlist_->library().dff_timing();
  (void)timing;
  for (int id : topo_order_) {
    const auto& cell = cells[static_cast<std::size_t>(id)];
    util::Second input_arrival{0.0};
    if (!is_sequential(cell)) {
      for (NetId in : cell.inputs) {
        const Net& net = netlist_->net(in);
        if (net.driver >= 0) {
          input_arrival = std::max(input_arrival,
                                   arrival[static_cast<std::size_t>(net.driver)]);
        }
      }
    }
    // Sequential cells launch at t=0 (clock edge); their delay is clk->Q.
    const util::Farad load = netlist_->total_load(cell.output);
    arrival[static_cast<std::size_t>(id)] =
        input_arrival + cell.type->delay(load);
  }
  return arrival;
}

TimingReport StaEngine::analyze(util::Second clock_period) const {
  TimingReport report;
  report.clock_period = clock_period;
  const auto arrival = arrival_times();
  const auto& cells = netlist_->cells();
  const auto& timing = netlist_->library().dff_timing();

  // Endpoints: flop D pins (pin 0) and primary outputs.
  util::Second worst_required{1e9};
  CellId worst_src = -1;
  std::string worst_endpoint;
  auto consider = [&](util::Second data_arrival, util::Second required,
                      CellId src, const std::string& endpoint) {
    ++report.endpoint_count;
    const util::Second slack = required - data_arrival;
    if (slack.value() < 0.0) ++report.violation_count;
    if (report.endpoint_count == 1 || slack < report.worst_slack) {
      report.worst_slack = slack;
      report.critical_arrival = data_arrival;
      worst_src = src;
      worst_endpoint = endpoint;
      worst_required = required;
    }
  };

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    if (is_sequential(cell)) {
      const Net& d_net = netlist_->net(cell.inputs[0]);
      const util::Second t_arr =
          d_net.driver >= 0 ? arrival[static_cast<std::size_t>(d_net.driver)]
                            : util::Second{0.0};
      consider(t_arr, clock_period - timing.setup,
               d_net.driver, cell.name + "/D");
    }
  }
  for (const auto& net : netlist_->nets()) {
    if (net.is_primary_output && net.driver >= 0) {
      consider(arrival[static_cast<std::size_t>(net.driver)], clock_period,
               net.driver, "port:" + net.name);
    }
  }
  report.critical_endpoint = worst_endpoint;

  // Reconstruct the critical path by walking max-arrival predecessors.
  CellId cur = worst_src;
  while (cur >= 0) {
    report.critical_path.push_back(
        {cur, arrival[static_cast<std::size_t>(cur)]});
    const auto& cell = cells[static_cast<std::size_t>(cur)];
    if (is_sequential(cell)) break;
    CellId best = -1;
    util::Second best_arr{0.0};
    for (NetId in : cell.inputs) {
      const Net& net = netlist_->net(in);
      if (net.driver >= 0 &&
          (best < 0 || arrival[static_cast<std::size_t>(net.driver)] > best_arr)) {
        best = net.driver;
        best_arr = arrival[static_cast<std::size_t>(net.driver)];
      }
    }
    cur = best;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

std::string format_timing_report(const Netlist& netlist,
                                 const TimingReport& report) {
  std::ostringstream out;
  out << "module " << netlist.module_name() << ": clock "
      << util::to_string(report.clock_period) << ", worst slack "
      << util::to_string(report.worst_slack) << " ("
      << (report.met() ? "MET" : "VIOLATED") << "), fmax "
      << util::to_string(report.fmax()) << ", endpoints "
      << report.endpoint_count << ", violations " << report.violation_count
      << "\ncritical path (" << report.critical_path.size() << " stages) -> "
      << report.critical_endpoint << ":\n";
  for (const auto& node : report.critical_path) {
    const auto& cell = netlist.cell(node.cell);
    out << "  " << cell.name << " (" << cell.type->name << ") arr "
        << util::to_string(node.arrival) << "\n";
  }
  return out.str();
}

}  // namespace serdes::flow
