// Static timing analysis.
//
// The OpenSTA step of the paper's OpenLANE flow (Fig 12): levelizes the
// gate-level netlist, propagates arrival times from timing start points
// (primary inputs and flop Q pins) through the combinational fan-in cones,
// and checks flop D pins and primary outputs against the clock period.
#pragma once

#include <string>
#include <vector>

#include "flow/netlist.h"

namespace serdes::flow {

struct TimingPathNode {
  CellId cell;
  util::Second arrival{0.0};
};

struct TimingReport {
  util::Second clock_period{0.0};
  /// Worst slack across all endpoints (negative = violation).
  util::Second worst_slack{0.0};
  /// Arrival time of the critical path.
  util::Second critical_arrival{0.0};
  /// Longest path, start to end (cell ids in order).
  std::vector<TimingPathNode> critical_path;
  /// Endpoint description for the critical path.
  std::string critical_endpoint;
  int endpoint_count = 0;
  int violation_count = 0;

  [[nodiscard]] bool met() const { return worst_slack.value() >= 0.0; }
  /// Maximum clock frequency implied by the critical path.
  [[nodiscard]] util::Hertz fmax() const;
};

class StaEngine {
 public:
  explicit StaEngine(const Netlist& netlist);

  /// Runs STA against `clock_period`.  Throws std::runtime_error if the
  /// combinational graph has a cycle (broken netlist).
  [[nodiscard]] TimingReport analyze(util::Second clock_period) const;

  /// Per-cell worst arrival times from the last analyze() call structure
  /// (recomputed; exposed for tests/ECO passes).
  [[nodiscard]] std::vector<util::Second> arrival_times() const;

 private:
  void levelize();

  const Netlist* netlist_;
  std::vector<int> topo_order_;  // cell ids in topological order
};

/// Renders a human-readable timing summary (one-line + critical path).
std::string format_timing_report(const Netlist& netlist,
                                 const TimingReport& report);

}  // namespace serdes::flow
