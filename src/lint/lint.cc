#include "lint/lint.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "api/bus_spec.h"
#include "api/spec_json.h"
#include "util/math.h"

namespace serdes::lint {

using util::Json;
using util::JsonError;

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

Severity severity_from_string(std::string_view text, const std::string& path) {
  if (text == "info") return Severity::kInfo;
  if (text == "warning") return Severity::kWarning;
  if (text == "error") return Severity::kError;
  util::fail_at(path, "severity must be one of 'info', 'warning', 'error'");
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == severity) ++n;
  }
  return n;
}

std::size_t LintReport::count_at_least(Severity severity) const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity >= severity) ++n;
  }
  return n;
}

namespace {

/// Shortest-round-trip rendering for numbers quoted in messages (the
/// same form the value has in a spec file).
std::string num(double v) { return Json(v).dump(); }

void emit(std::vector<Finding>& out, const RuleInfo& info, std::string path,
          std::string message, std::string hint) {
  out.push_back({info.id, info.severity, std::move(path), std::move(message),
                 std::move(hint)});
}

/// True when a FIR or lossy-line stage — the kinds the dsp engine
/// accelerates — appears anywhere in the channel tree.  `max_fir_macs`
/// reports the widest FIR stage (MACs per output sample of the strided
/// kernel, i.e. its tap count).
void scan_conv_stages(const api::ChannelSpec& ch, bool& has_fir,
                      bool& has_lossy, std::size_t& max_fir_macs) {
  if (ch.kind == "fir") {
    has_fir = true;
    max_fir_macs = std::max(max_fir_macs, ch.fir_taps.size());
  } else if (ch.kind == "lossy_line") {
    has_lossy = true;
  }
  for (const auto& stage : ch.stages) {
    scan_conv_stages(stage, has_fir, has_lossy, max_fir_macs);
  }
}

// ---- Spec-level rules ------------------------------------------------

void check_underpowered_cross_check(const api::LinkSpec& spec,
                                    const std::string& prefix,
                                    const Linter::Options& opt,
                                    const RuleInfo& info,
                                    std::vector<Finding>& out) {
  if (spec.analysis != "both" || spec.payload_bits >= opt.cross_check_min_bits) {
    return;
  }
  emit(out, info, prefix + ".payload_bits",
       "analysis \"both\" cross-checks the measured MC BER against the stat "
       "prediction band, but " +
           std::to_string(spec.payload_bits) +
           " payload bits resolve BER only down to ~" +
           num(3.0 / static_cast<double>(spec.payload_bits)) +
           " — the check has almost no statistical power",
       "raise payload_bits to >= " + std::to_string(opt.cross_check_min_bits) +
           " or use analysis \"stat\"");
}

void check_unreachable_stat_target(const api::LinkSpec& spec,
                                   const std::string& prefix,
                                   const Linter::Options& opt,
                                   const RuleInfo& info,
                                   std::vector<Finding>& out) {
  if (spec.analysis != "stat" || spec.noise_rms_v <= 0.0) return;
  // Necessary condition only: even with zero ISI and an ideal sampling
  // phase, the slicer sees at most half the dc-attenuated swing against
  // the full noise sigma.  If that already fails the target, no
  // equalization setting can recover it.
  const double amplitude = 0.5 * opt.nominal_swing_v *
                           std::pow(10.0, -estimated_dc_loss_db(spec.channel) /
                                              20.0);
  const double q_available = amplitude / spec.noise_rms_v;
  const double q_required = util::q_inverse(spec.stat_target_ber);
  if (q_available >= q_required) return;
  emit(out, info, prefix + ".stat_target_ber",
       "structurally unreachable: the zero-ISI bound gives Q = " +
           num(q_available) + " (" + num(amplitude) + " V signal vs " +
           num(spec.noise_rms_v) + " V rms noise), but BER " +
           num(spec.stat_target_ber) + " needs Q >= " + num(q_required),
       "lower the channel loss / noise_rms_v or relax stat_target_ber");
}

void check_stat_grid_fallback(const api::LinkSpec& spec,
                              const std::string& prefix,
                              const Linter::Options& opt, const RuleInfo& info,
                              std::vector<Finding>& out) {
  if (spec.analysis == "mc") return;
  const int cursors = estimated_isi_cursors(spec.channel, spec.bit_rate_hz,
                                            spec.samples_per_ui);
  if (cursors <= opt.max_exact_isi_cursors) return;
  emit(out, info, prefix + ".channel",
       "channel memory spans ~" + std::to_string(cursors) +
           " UI-spaced ISI cursors, past the " +
           std::to_string(opt.max_exact_isi_cursors) +
           "-cursor exact-enumeration limit — the stat engine will fall back "
           "to grid convolution, whose deep-tail accuracy degrades near the "
           "target BER",
       "trim the channel memory (shorter fir_taps / higher pole) or treat "
       "grid-mode tails as approximate");
}

void check_dsp_inert(const api::LinkSpec& spec, const std::string& prefix,
                     const Linter::Options& opt, const RuleInfo& info,
                     std::vector<Finding>& out) {
  (void)opt;
  if (!spec.dsp) return;
  bool has_fir = false, has_lossy = false;
  std::size_t max_fir_macs = 0;
  scan_conv_stages(spec.channel, has_fir, has_lossy, max_fir_macs);
  if (has_fir || has_lossy) return;
  emit(out, info, prefix + ".dsp",
       "dsp = true only reroutes \"fir\" and \"lossy_line\" stages through "
       "the block-convolution engine; this channel tree has neither, so the "
       "flag is inert",
       "drop dsp or use a channel kind the engine accelerates");
}

void check_dsp_below_crossover(const api::LinkSpec& spec,
                               const std::string& prefix,
                               const Linter::Options& opt, const RuleInfo& info,
                               std::vector<Finding>& out) {
  if (!spec.dsp) return;
  bool has_fir = false, has_lossy = false;
  std::size_t max_fir_macs = 0;
  scan_conv_stages(spec.channel, has_fir, has_lossy, max_fir_macs);
  // Lossy lines lower to long truncated impulses, safely above the
  // crossover; only an all-FIR tree can sit entirely below it.
  if (!has_fir || has_lossy) return;
  if (max_fir_macs >= static_cast<std::size_t>(opt.fft_crossover_macs)) return;
  emit(out, info, prefix + ".dsp",
       "widest FIR stage runs " + std::to_string(max_fir_macs) +
           " MACs/sample, below the ~" +
           std::to_string(opt.fft_crossover_macs) +
           " MACs/sample FFT crossover — the direct kernel runs either way "
           "and dsp only costs the (benign) waveform LSB contract",
       "drop dsp for short-FIR channels; the exact kernels are already "
       "optimal there");
}

void check_block_exceeds_chunk(const api::LinkSpec& spec,
                               const std::string& prefix,
                               const Linter::Options& opt, const RuleInfo& info,
                               std::vector<Finding>& out) {
  (void)opt;
  if (!spec.streaming) return;
  const double chunk_samples =
      static_cast<double>(std::min(spec.chunk_bits, spec.payload_bits)) *
      static_cast<double>(spec.samples_per_ui);
  if (static_cast<double>(spec.stream_block_samples) < chunk_samples) return;
  emit(out, info, prefix + ".stream_block_samples",
       "one streaming block (" + std::to_string(spec.stream_block_samples) +
           " samples) covers the whole chunk (" + num(chunk_samples) +
           " samples), so the O(block) memory pipeline degenerates to the "
           "batch profile",
       "lower stream_block_samples below the chunk size (results are "
       "invariant to it) or raise chunk_bits");
}

void check_cdr_window_exceeds_preamble(const api::LinkSpec& spec,
                                       const std::string& prefix,
                                       const Linter::Options& opt,
                                       const RuleInfo& info,
                                       std::vector<Finding>& out) {
  (void)opt;
  if (spec.cdr_window_uis <= spec.preamble_bits) return;
  emit(out, info, prefix + ".cdr_window_uis",
       "the CDR phase-pick window (" + std::to_string(spec.cdr_window_uis) +
           " UIs) is longer than the preamble (" +
           std::to_string(spec.preamble_bits) +
           " bits), so lock acquisition extends into payload bits and early "
           "payload errors are likely",
       "shorten cdr_window_uis or lengthen preamble_bits past it");
}

void check_excessive_jitter(const api::LinkSpec& spec,
                            const std::string& prefix,
                            const Linter::Options& opt, const RuleInfo& info,
                            std::vector<Finding>& out) {
  if (spec.bit_rate_hz <= 0.0) return;
  const double ui = 1.0 / spec.bit_rate_hz;
  const double total = 3.0 * spec.random_jitter_s + spec.sinusoidal_jitter_s;
  if (total <= opt.max_jitter_fraction_ui * ui) return;
  const bool rj_dominant = 3.0 * spec.random_jitter_s >= spec.sinusoidal_jitter_s;
  emit(out, info,
       prefix + (rj_dominant ? ".random_jitter_s" : ".sinusoidal_jitter_s"),
       "total sampling jitter (3*RJ + SJ = " + num(total) + " s) exceeds " +
           num(opt.max_jitter_fraction_ui) + " UI (" +
           num(opt.max_jitter_fraction_ui * ui) +
           " s) — the CDR is unlikely to hold lock and BER will be "
           "jitter-dominated",
       "reduce the jitter terms or slow bit_rate_hz");
}

void check_ineffective_field(const api::LinkSpec& spec,
                             const std::string& prefix,
                             const Linter::Options& opt, const RuleInfo& info,
                             std::vector<Finding>& out) {
  (void)opt;
  const api::LinkSpec defaults{};
  if (spec.sinusoidal_jitter_s == 0.0 &&
      spec.sj_freq_ratio != defaults.sj_freq_ratio) {
    emit(out, info, prefix + ".sj_freq_ratio",
         "sj_freq_ratio is set but sinusoidal_jitter_s is 0, so the value is "
         "never read",
         "set sinusoidal_jitter_s or drop sj_freq_ratio");
  }
  if (spec.rx_ctle_boost_db == 0.0 &&
      spec.rx_ctle_pole_hz != defaults.rx_ctle_pole_hz) {
    emit(out, info, prefix + ".rx_ctle_pole_hz",
         "rx_ctle_pole_hz is set but rx_ctle_boost_db is 0 (CTLE disabled), "
         "so the value is never read",
         "set rx_ctle_boost_db or drop rx_ctle_pole_hz");
  }
  if (spec.analysis == "mc" &&
      spec.stat_target_ber != defaults.stat_target_ber) {
    emit(out, info, prefix + ".stat_target_ber",
         "stat_target_ber is set but analysis is \"mc\", so the stat engine "
         "never runs and the target is never read",
         "use analysis \"stat\" or \"both\", or drop stat_target_ber");
  }
  if (spec.lane_batch > 1 && (spec.analysis != "mc" || !spec.streaming ||
                              spec.modulation == "pam4")) {
    emit(out, info, prefix + ".lane_batch",
         "lane_batch is set but lane tiling needs streaming NRZ Monte Carlo "
         "execution (streaming = true, analysis \"mc\", modulation \"nrz\"), "
         "so every lane runs the scalar path anyway",
         "enable streaming NRZ with analysis \"mc\", or drop lane_batch");
  }
}

void check_chunk_exceeds_payload(const api::LinkSpec& spec,
                                 const std::string& prefix,
                                 const Linter::Options& opt,
                                 const RuleInfo& info,
                                 std::vector<Finding>& out) {
  (void)opt;
  if (spec.chunk_bits <= spec.payload_bits) return;
  emit(out, info, prefix + ".chunk_bits",
       "chunk_bits (" + std::to_string(spec.chunk_bits) +
           ") exceeds payload_bits (" + std::to_string(spec.payload_bits) +
           "): the run is one short chunk and fresh-noise chunking is inert",
       "set chunk_bits <= payload_bits (or raise the payload)");
}

void check_pam4_insufficient_swing(const api::LinkSpec& spec,
                                   const std::string& prefix,
                                   const Linter::Options& opt,
                                   const RuleInfo& info,
                                   std::vector<Finding>& out) {
  if (spec.modulation != "pam4" || spec.noise_rms_v <= 0.0) return;
  // The NRZ zero-ISI bound, with the amplitude split into three stacked
  // sub-eyes: each eye spans a third of the dc-attenuated swing, so the
  // slicer sees a sixth of it against the full noise sigma.
  const double amplitude = 0.5 * opt.nominal_swing_v *
                           std::pow(10.0, -estimated_dc_loss_db(spec.channel) /
                                              20.0);
  const double eye_third = amplitude / 3.0;
  const double q_available = eye_third / spec.noise_rms_v;
  const double q_required = util::q_inverse(spec.stat_target_ber);
  if (q_available >= q_required) return;
  emit(out, info, prefix + ".modulation",
       "pam4 splits the " + num(amplitude) +
           " V zero-ISI amplitude into three " + num(eye_third) +
           " V sub-eyes — Q = " + num(q_available) + " against " +
           num(spec.noise_rms_v) + " V rms noise, but BER " +
           num(spec.stat_target_ber) + " needs Q >= " + num(q_required),
       "lower the channel loss / noise_rms_v, relax stat_target_ber, or "
       "keep nrz at this operating point");
}

void check_trained_eq_with_fixed_knobs(const api::LinkSpec& spec,
                                       const std::string& prefix,
                                       const Linter::Options& opt,
                                       const RuleInfo& info,
                                       std::vector<Finding>& out) {
  (void)opt;
  if (spec.eq != "trained") return;
  std::vector<std::string> knobs;
  if (spec.tx_ffe_deemphasis != 0.0) knobs.emplace_back("tx_ffe_deemphasis");
  if (spec.rx_ctle_boost_db != 0.0) knobs.emplace_back("rx_ctle_boost_db");
  if (!spec.dfe_taps.empty()) knobs.emplace_back("dfe_taps");
  if (knobs.empty()) return;
  std::string listed = knobs.front();
  for (std::size_t i = 1; i < knobs.size(); ++i) listed += ", " + knobs[i];
  emit(out, info, prefix + ".eq",
       "eq \"trained\" adapts the equalizer from the training preamble, so "
       "the authored " +
           listed +
           (knobs.size() == 1 ? " value is" : " values are") +
           " only the search's starting point — the converged settings in "
           "RunReport.training are what the payload actually runs with",
       "drop the fixed EQ knobs (training finds them), or use eq \"fixed\" "
       "if these exact values must bind");
}

// ---- Bus-level rules -------------------------------------------------

std::string matrix_cell(const char* field, std::size_t row, std::size_t col) {
  return "$." + std::string(field) + "[" + std::to_string(row) + "][" +
         std::to_string(col) + "]";
}

void check_coupling_asymmetry(const api::BusSpec& bus,
                              const Linter::Options& opt, const RuleInfo& info,
                              std::vector<Finding>& out) {
  (void)opt;
  const auto scan = [&](const std::vector<std::vector<double>>& m,
                        const char* field) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      for (std::size_t j = i + 1; j < m[i].size(); ++j) {
        if (j >= m.size() || i >= m[j].size()) continue;  // shape lints apart
        if (m[i][j] == m[j][i]) continue;
        emit(out, info, matrix_cell(field, j, i),
             std::string(field) + "[" + std::to_string(i) + "][" +
                 std::to_string(j) + "] = " + num(m[i][j]) + " but " + field +
                 "[" + std::to_string(j) + "][" + std::to_string(i) + "] = " +
                 num(m[j][i]) +
                 " — crosstalk between one physical lane pair is reciprocal, "
                 "so direction-dependent gains usually encode a typo",
             "mirror the off-diagonal terms (or keep the asymmetry only if "
             "the geometry really is one-directional)");
      }
    }
  };
  scan(bus.coupling, "coupling");
  scan(bus.next_coupling, "next_coupling");
}

void check_self_coupling(const api::BusSpec& bus, const Linter::Options& opt,
                         const RuleInfo& info, std::vector<Finding>& out) {
  (void)opt;
  const auto scan = [&](const std::vector<std::vector<double>>& m,
                        const char* field) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (i >= m[i].size() || m[i][i] == 0.0) continue;
      emit(out, info, matrix_cell(field, i, i),
           "lane " + std::to_string(i) + " lists itself as an aggressor (" +
               field + " diagonal = " + num(m[i][i]) +
               "); a lane cannot aggress itself, so the runtime skips the "
               "diagonal and the value is never read",
           "zero the diagonal — per-lane impairments belong in the lane's "
           "own channel / noise fields");
    }
  };
  scan(bus.coupling, "coupling");
  scan(bus.next_coupling, "next_coupling");
}

// ---- Grid-level rules ------------------------------------------------

void check_degenerate_axis(const sweep::SweepSpec& sweep,
                           const Linter::Options& opt, const RuleInfo& info,
                           std::vector<Finding>& out) {
  (void)opt;
  for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
    if (sweep.axes[a].values.size() != 1) continue;
    emit(out, info, "$.axes[" + std::to_string(a) + "].values",
         "axis over '" + sweep.axes[a].field +
             "' expands to a single value — it multiplies the grid by 1 and "
             "sweeps nothing",
         "fold the value into the base spec or add the missing values");
  }
}

void check_duplicate_axis_value(const sweep::SweepSpec& sweep,
                                const Linter::Options& opt,
                                const RuleInfo& info,
                                std::vector<Finding>& out) {
  (void)opt;
  for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
    const auto& values = sweep.axes[a].values;
    for (std::size_t j = 1; j < values.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (values[i] != values[j]) continue;
        emit(out, info,
             "$.axes[" + std::to_string(a) + "].values[" + std::to_string(j) +
                 "]",
             "duplicate of values[" + std::to_string(i) + "] on axis '" +
                 sweep.axes[a].field +
                 "' — the duplicated scenarios recompute the same point and "
                 "skew every aggregate surface",
             "remove the duplicate value");
        break;  // one finding per duplicated value
      }
    }
  }
}

void check_grid_budget(const sweep::SweepSpec& sweep,
                       const Linter::Options& opt, const RuleInfo& info,
                       std::vector<Finding>& out) {
  const std::uint64_t total = sweep.scenario_count();
  if (total <= opt.grid_budget) return;
  emit(out, info, "$.axes",
       "grid expands to " + std::to_string(total) +
           " scenarios, past the " + std::to_string(opt.grid_budget) +
           "-cell single-process budget",
       "shard the sweep (serdes_cli sweep --shard k/n) or split the axes");
}

void check_shared_seed_grid(const sweep::SweepSpec& sweep,
                            const Linter::Options& opt, const RuleInfo& info,
                            std::vector<Finding>& out) {
  (void)opt;
  if (sweep.derive_seeds || sweep.scenario_count() <= 1) return;
  bool seed_axis = false;
  for (const auto& axis : sweep.axes) seed_axis |= axis.field == "seed";
  if (seed_axis) return;  // the axis varies the seed explicitly
  emit(out, info, "$.derive_seeds",
       "derive_seeds = false makes all " +
           std::to_string(sweep.scenario_count()) +
           " scenarios face the identical noise realization — correct for "
           "paired ablations, statistically wrong for surface estimates",
       "drop derive_seeds (grid-index seeding is the default) unless this "
       "sweep is a paired ablation");
}

void check_seed_collision(const sweep::SweepSpec& sweep,
                          const Linter::Options& opt, const RuleInfo& info,
                          std::vector<Finding>& out) {
  if (!sweep.derive_seeds) return;
  const std::uint64_t total = sweep.scenario_count();
  if (total <= 1 || total > opt.seed_check_limit) return;
  // Per-scenario base seed: the "seed" axis value when one exists (the
  // same row-major decode scenario() applies), else the base spec's.
  std::optional<std::size_t> seed_axis;
  for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
    if (sweep.axes[a].field == "seed") seed_axis = a;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> derived;  // seed, index
  derived.reserve(static_cast<std::size_t>(total));
  for (std::uint64_t i = 0; i < total; ++i) {
    std::uint64_t base = sweep.base.seed;
    if (seed_axis) {
      const Json& v = sweep.axes[*seed_axis]
                          .values[sweep::axis_value_index(sweep, *seed_axis, i)];
      if (!v.is_number()) return;  // validate() already rejects this sweep
      base = v.as_uint();
    }
    derived.emplace_back(sweep::derive_scenario_seed(base, i), i);
  }
  std::sort(derived.begin(), derived.end());
  for (std::size_t i = 1; i < derived.size(); ++i) {
    if (derived[i].first != derived[i - 1].first) continue;
    const std::string anchor =
        seed_axis ? "$.axes[" + std::to_string(*seed_axis) + "].values"
                  : "$.base.seed";
    emit(out, info, anchor,
         "scenarios " + std::to_string(derived[i - 1].second) + " and " +
             std::to_string(derived[i].second) +
             " derive the identical per-scenario seed " +
             std::to_string(derived[i].first) +
             " — they run the same noise stream and the grid silently loses "
             "an independent sample",
         "perturb the seed values so the splitmix64 derivations stay "
         "distinct");
    return;  // the first collision localizes the problem
  }
}

void check_store_key_collision(const sweep::SweepSpec& sweep,
                               const Linter::Options& opt, const RuleInfo& info,
                               std::vector<Finding>& out) {
  // With derive_seeds on, every cell's seed embeds its grid index, so
  // expanded specs — and therefore their content hashes — stay distinct.
  if (sweep.derive_seeds) return;
  const std::uint64_t total = sweep.scenario_count();
  if (total <= 1 || total > opt.store_key_check_limit) return;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hashes;  // hash, index
  hashes.reserve(static_cast<std::size_t>(total));
  for (std::uint64_t i = 0; i < total; ++i) {
    hashes.emplace_back(api::spec_content_hash(sweep.scenario(i)), i);
  }
  std::sort(hashes.begin(), hashes.end());
  for (std::size_t i = 1; i < hashes.size(); ++i) {
    if (hashes[i].first != hashes[i - 1].first) continue;
    emit(out, info, "$.derive_seeds",
         "scenarios " + std::to_string(hashes[i - 1].second) + " and " +
             std::to_string(hashes[i].second) +
             " expand to content-identical specs — their result-store keys "
             "collide, so a resumable sweep caches one cell's row for both "
             "and the grid silently double-counts a single simulation",
         "re-enable derive_seeds (grid-index seeding keys every cell apart) "
         "or remove the duplicate grid cell");
    return;  // the first collision localizes the problem
  }
}

// ---- Registry --------------------------------------------------------

using LinkCheck = void (*)(const api::LinkSpec&, const std::string&,
                           const Linter::Options&, const RuleInfo&,
                           std::vector<Finding>&);
using SweepCheck = void (*)(const sweep::SweepSpec&, const Linter::Options&,
                            const RuleInfo&, std::vector<Finding>&);
using BusCheck = void (*)(const api::BusSpec&, const Linter::Options&,
                          const RuleInfo&, std::vector<Finding>&);

struct RuleDef {
  RuleInfo info;
  LinkCheck link = nullptr;
  SweepCheck sweep = nullptr;
  BusCheck bus = nullptr;
};

const std::vector<RuleDef>& rule_defs() {
  static const std::vector<RuleDef> kRules = {
      {{"underpowered-cross-check", Severity::kWarning,
        "analysis \"both\" with too few MC bits to power the stat "
        "cross-check"},
       &check_underpowered_cross_check, nullptr},
      {{"unreachable-stat-target", Severity::kWarning,
        "noise/loss budget puts stat_target_ber past the zero-ISI "
        "structural bound"},
       &check_unreachable_stat_target, nullptr},
      {{"stat-grid-fallback", Severity::kWarning,
        "channel memory forces the stat engine off exact ISI enumeration "
        "onto the grid fallback"},
       &check_stat_grid_fallback, nullptr},
      {{"dsp-inert", Severity::kWarning,
        "dsp = true but no channel stage the block-convolution engine "
        "accelerates"},
       &check_dsp_inert, nullptr},
      {{"dsp-below-crossover", Severity::kInfo,
        "dsp = true but every FIR stage sits below the FFT crossover"},
       &check_dsp_below_crossover, nullptr},
      {{"block-exceeds-chunk", Severity::kInfo,
        "streaming block covers the whole chunk — O(block) memory benefit "
        "lost"},
       &check_block_exceeds_chunk, nullptr},
      {{"cdr-window-exceeds-preamble", Severity::kWarning,
        "CDR lock window longer than the preamble"},
       &check_cdr_window_exceeds_preamble, nullptr},
      {{"excessive-jitter", Severity::kWarning,
        "total sampling jitter above the lockable fraction of one UI"},
       &check_excessive_jitter, nullptr},
      {{"ineffective-field", Severity::kInfo,
        "field is set but gated off by another field, so it is never read"},
       &check_ineffective_field, nullptr},
      {{"chunk-exceeds-payload", Severity::kInfo,
        "chunk_bits above payload_bits — fresh-noise chunking inert"},
       &check_chunk_exceeds_payload, nullptr},
      {{"degenerate-axis", Severity::kWarning,
        "sweep axis expands to a single value", /*sweep_only=*/true},
       nullptr, &check_degenerate_axis},
      {{"duplicate-axis-value", Severity::kWarning,
        "identical values repeated within one axis", /*sweep_only=*/true},
       nullptr, &check_duplicate_axis_value},
      {{"grid-budget", Severity::kWarning,
        "grid exceeds the single-process scenario budget",
        /*sweep_only=*/true},
       nullptr, &check_grid_budget},
      {{"shared-seed-grid", Severity::kWarning,
        "derive_seeds off: every scenario shares one noise realization",
        /*sweep_only=*/true},
       nullptr, &check_shared_seed_grid},
      {{"seed-collision", Severity::kError,
        "two scenarios derive the identical per-scenario seed",
        /*sweep_only=*/true},
       nullptr, &check_seed_collision},
      {{"store-key-collision", Severity::kWarning,
        "derive_seeds off: two grid cells share one result-store key",
        /*sweep_only=*/true},
       nullptr, &check_store_key_collision},
      {{"pam4-insufficient-swing", Severity::kWarning,
        "pam4 sub-eyes structurally too small for the noise budget at "
        "stat_target_ber"},
       &check_pam4_insufficient_swing, nullptr},
      {{"trained-eq-with-fixed-knobs", Severity::kWarning,
        "eq \"trained\" demotes the authored EQ knobs to mere starting "
        "points"},
       &check_trained_eq_with_fixed_knobs, nullptr},
      {{"coupling-matrix-asymmetry", Severity::kWarning,
        "FEXT/NEXT gain between one lane pair differs by direction",
        /*sweep_only=*/false, /*bus_only=*/true},
       nullptr, nullptr, &check_coupling_asymmetry},
      {{"self-coupling", Severity::kWarning,
        "nonzero coupling-matrix diagonal — a lane cannot aggress itself",
        /*sweep_only=*/false, /*bus_only=*/true},
       nullptr, nullptr, &check_self_coupling},
  };
  return kRules;
}

/// Does `path` name `member` or something nested within it (or vice
/// versa)?  Boundary-aware, so "channel" covers "channel.stages[0]" but
/// not "channel_x".
bool paths_overlap(const std::string& a, const std::string& b) {
  const auto prefixed = [](const std::string& outer, const std::string& inner) {
    if (inner.size() <= outer.size() ||
        inner.compare(0, outer.size(), outer) != 0) {
      return false;
    }
    const char next = inner[outer.size()];
    return next == '.' || next == '[';
  };
  return a == b || prefixed(a, b) || prefixed(b, a);
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kInfos = [] {
    std::vector<RuleInfo> infos;
    infos.reserve(rule_defs().size());
    for (const auto& def : rule_defs()) infos.push_back(def.info);
    return infos;
  }();
  return kInfos;
}

LintReport Linter::lint(const api::LinkSpec& spec,
                        const std::string& path) const {
  LintReport report;
  report.subject = spec.name;
  report.kind = "link";
  for (const auto& def : rule_defs()) {
    if (def.link) def.link(spec, path, options_, def.info, report.findings);
  }
  return report;
}

LintReport Linter::lint(const sweep::SweepSpec& sweep) const {
  LintReport report;
  report.subject = sweep.name;
  report.kind = "sweep";
  // Base-spec findings whose anchor an axis overwrites are dropped: the
  // axis, not the base value, decides what each scenario sees (e.g. a
  // dsp axis over a base with dsp = true).
  const LintReport base = lint(sweep.base, "$.base");
  for (const auto& finding : base.findings) {
    bool overridden = false;
    for (const auto& axis : sweep.axes) {
      overridden |= paths_overlap(finding.path, "$.base." + axis.field);
    }
    if (!overridden) report.findings.push_back(finding);
  }
  for (const auto& def : rule_defs()) {
    if (def.sweep) def.sweep(sweep, options_, def.info, report.findings);
  }
  return report;
}

LintReport Linter::lint(const api::BusSpec& bus) const {
  LintReport report;
  report.subject = bus.name;
  report.kind = "bus";
  // Base-spec findings whose anchor every lane's override overwrites would
  // blame a value no lane sees; any lane still reading the base value keeps
  // the finding, so suppression needs the override on *all* lanes.  With
  // fewer override objects than lanes the uncovered lanes read the base.
  const LintReport base = lint(bus.base, "$.base");
  for (const auto& finding : base.findings) {
    bool overridden_everywhere =
        bus.overrides.size() >= static_cast<std::size_t>(bus.lanes) &&
        bus.lanes > 0;
    if (overridden_everywhere) {
      for (int lane = 0; lane < bus.lanes; ++lane) {
        const Json& ov = bus.overrides[static_cast<std::size_t>(lane)];
        bool covered = false;
        if (ov.is_object()) {
          for (const auto& [key, value] : ov.as_object()) {
            (void)value;
            covered |= paths_overlap(finding.path, "$.base." + key);
          }
        }
        if (!covered) {
          overridden_everywhere = false;
          break;
        }
      }
    }
    if (!overridden_everywhere) report.findings.push_back(finding);
  }
  for (const auto& def : rule_defs()) {
    if (def.bus) def.bus(bus, options_, def.info, report.findings);
  }
  return report;
}

Json to_json(const LintReport& report) {
  Json j = Json::object();
  j.set("schema_version", report.schema_version);
  j.set("subject", report.subject);
  j.set("kind", report.kind);
  Json counts = Json::object();
  counts.set("error", static_cast<std::uint64_t>(
                          report.count(Severity::kError)));
  counts.set("warning", static_cast<std::uint64_t>(
                            report.count(Severity::kWarning)));
  counts.set("info",
             static_cast<std::uint64_t>(report.count(Severity::kInfo)));
  j.set("counts", std::move(counts));
  Json findings = Json::array();
  for (const auto& f : report.findings) {
    Json fj = Json::object();
    fj.set("rule", f.rule);
    fj.set("severity", std::string(to_string(f.severity)));
    fj.set("path", f.path);
    fj.set("message", f.message);
    fj.set("hint", f.hint);
    findings.push_back(std::move(fj));
  }
  j.set("findings", std::move(findings));
  return j;
}

LintReport lint_report_from_json(const Json& json, const std::string& path) {
  if (!json.is_object()) util::fail_at(path, "expected lint report object");
  LintReport report;
  report.schema_version = 1;  // absent means version 1
  const Json* counts = nullptr;
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "schema_version") {
      report.schema_version = static_cast<int>(util::get_int(value, p));
    } else if (key == "subject") {
      report.subject = util::get_string(value, p);
    } else if (key == "kind") {
      report.kind = util::get_string(value, p);
      if (report.kind != "link" && report.kind != "sweep" &&
          report.kind != "bus") {
        util::fail_at(p, "kind must be 'link', 'sweep' or 'bus'");
      }
    } else if (key == "counts") {
      if (!value.is_object()) util::fail_at(p, "expected counts object");
      counts = &value;
    } else if (key == "findings") {
      if (!value.is_array()) util::fail_at(p, "expected array of findings");
      for (std::size_t i = 0; i < value.as_array().size(); ++i) {
        const Json& fj = value.as_array()[i];
        const std::string fp = p + "[" + std::to_string(i) + "]";
        if (!fj.is_object()) util::fail_at(fp, "expected finding object");
        Finding f;
        for (const auto& [fkey, fvalue] : fj.as_object()) {
          const std::string ffp = fp + "." + fkey;
          if (fkey == "rule") {
            f.rule = util::get_string(fvalue, ffp);
          } else if (fkey == "severity") {
            f.severity =
                severity_from_string(util::get_string(fvalue, ffp), ffp);
          } else if (fkey == "path") {
            f.path = util::get_string(fvalue, ffp);
          } else if (fkey == "message") {
            f.message = util::get_string(fvalue, ffp);
          } else if (fkey == "hint") {
            f.hint = util::get_string(fvalue, ffp);
          } else {
            util::fail_at(ffp, "unknown Finding field '" + fkey + "'");
          }
        }
        report.findings.push_back(std::move(f));
      }
    } else {
      util::fail_at(p, "unknown LintReport field '" + key + "'");
    }
  }
  if (counts) {
    // Strictness: checked-in artifacts whose counts drifted from their
    // findings are corrupt, not quietly reinterpretable.
    const auto check = [&](const char* key, Severity severity) {
      const Json* v = counts->find(key);
      if (v == nullptr) util::fail_at(path + ".counts", std::string(key) + " is missing");
      if (util::get_uint(*v, path + ".counts." + key) !=
          report.count(severity)) {
        util::fail_at(path + ".counts." + key,
                      "count disagrees with the findings array");
      }
    };
    check("error", Severity::kError);
    check("warning", Severity::kWarning);
    check("info", Severity::kInfo);
  }
  return report;
}

int estimated_isi_cursors(const api::ChannelSpec& channel, double bit_rate_hz,
                          int samples_per_ui) {
  if (bit_rate_hz <= 0.0 || samples_per_ui <= 0) return 0;
  const double ui = 1.0 / bit_rate_hz;
  if (channel.kind == "fir") {
    if (channel.fir_taps.size() <= 1) return 0;
    const int spt = channel.fir_samples_per_tap > 0
                        ? channel.fir_samples_per_tap
                        : samples_per_ui;
    const double span_uis =
        static_cast<double>(channel.fir_taps.size() - 1) *
        static_cast<double>(spt) / static_cast<double>(samples_per_ui);
    return static_cast<int>(std::ceil(span_uis));
  }
  if (channel.kind == "rc") {
    if (channel.pole_hz <= 0.0) return 0;
    // Single pole: the tail decays below 1e-4 after ln(1e4) time
    // constants.
    const double tau = 1.0 / (2.0 * 3.14159265358979323846 * channel.pole_hz);
    return static_cast<int>(std::ceil(std::log(1e4) * tau / ui));
  }
  if (channel.kind == "lossy_line") {
    // Coarse heuristic: every ~6 dB of high-frequency rolloff at Nyquist
    // smears roughly one additional UI of channel memory.
    const double f_ghz = bit_rate_hz / 2.0 / 1e9;
    if (f_ghz <= 0.0) return 0;
    const double hf_db = channel.skin_loss_db_at_1ghz * std::sqrt(f_ghz) +
                         channel.dielectric_loss_db_at_1ghz * f_ghz;
    return hf_db <= 0.0 ? 0 : static_cast<int>(std::ceil(hf_db / 6.0));
  }
  if (channel.kind == "composite") {
    int total = 0;
    for (const auto& stage : channel.stages) {
      total += estimated_isi_cursors(stage, bit_rate_hz, samples_per_ui);
    }
    return total;
  }
  return 0;  // flat / unknown kinds: memoryless as far as lint can tell
}

double estimated_dc_loss_db(const api::ChannelSpec& channel) {
  if (channel.kind == "fir") {
    double sum = 0.0;
    for (const double t : channel.fir_taps) sum += t;
    if (sum == 0.0) return 200.0;  // dc null: effectively infinite loss
    return -20.0 * std::log10(std::fabs(sum));
  }
  if (channel.kind == "composite") {
    double total = 0.0;
    for (const auto& stage : channel.stages) {
      total += estimated_dc_loss_db(stage);
    }
    return total;
  }
  // flat / rc / lossy_line all carry their dc term in loss_db; unknown
  // kinds read as lossless rather than guessing.
  if (channel.kind == "flat" || channel.kind == "rc" ||
      channel.kind == "lossy_line") {
    return channel.loss_db;
  }
  return 0.0;
}

}  // namespace serdes::lint
