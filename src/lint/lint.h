// Semantic lint over LinkSpec / SweepSpec — beyond "will it run".
//
// `LinkSpec::first_issue()` and `SweepSpec::validate()` answer whether a
// spec is *runnable*; every rule here fires on specs that run fine but
// are unlikely to mean what the author intended: sweep axes that expand
// to a single value, per-scenario seed collisions under `derive_seeds`,
// stat-engine applicability cliffs (cursor counts that force the grid
// fallback), `"both"`-mode Monte Carlo bit counts too small for the
// cross-check to have power, dsp toggles the channel geometry makes
// inert, and noise budgets that put the stat target BER structurally out
// of reach.
//
// Rules live in a fixed-order registry (`rules()`), each with a stable
// id, a default severity and a one-line summary; findings anchor to the
// JSON path of the offending member ("$.payload_bits",
// "$.axes[1].values", "$.base.channel") so a spec loaded from a file
// fails with the fix location in the message — the same contract the
// spec_json diagnostics honor.  `LintReport` serializes deterministically
// and parses strictly (round-trip fixed point), so `serdes_cli lint`
// output is a machine-readable CI artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/link_spec.h"
#include "sweep/sweep_spec.h"
#include "util/json.h"

namespace serdes::api {
struct BusSpec;  // api/bus_spec.h
}  // namespace serdes::api

namespace serdes::lint {

/// Finding severity, ordered so "at least warning" style gates are
/// integer comparisons.
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] std::string_view to_string(Severity severity);

/// Parses "info" / "warning" / "error"; throws util::JsonError naming
/// `path` otherwise.
[[nodiscard]] Severity severity_from_string(std::string_view text,
                                            const std::string& path);

/// One lint finding: `rule` is the registry id, `path` the JSON path of
/// the member being blamed, `message` the problem and `hint` the fix.
struct Finding {
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string path;
  std::string message;
  std::string hint;
};

struct LintReport {
  /// Report schema version (shared contract with api::RunReport: version 2
  /// added the key itself plus the "bus" kind; absent on read means 1).
  int schema_version = 2;

  /// Name of the linted spec / sweep / bus.
  std::string subject;
  /// "link", "sweep" or "bus".
  std::string kind;
  /// Registry order, then field order within a rule — deterministic.
  std::vector<Finding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] std::size_t count(Severity severity) const;
  /// Findings at `severity` or above (the `--deny` gate).
  [[nodiscard]] std::size_t count_at_least(Severity severity) const;
};

/// Registry entry for one rule.  `sweep_only` marks grid-level rules
/// (axes / seeds) that never fire on a standalone LinkSpec; `bus_only`
/// marks coupling-matrix rules that need a BusSpec.
struct RuleInfo {
  std::string id;
  Severity severity;
  std::string summary;
  bool sweep_only = false;
  bool bus_only = false;
};

/// Every rule the linter can emit, in emission order.  The README rule
/// table and `serdes_cli lint --list-rules` both render from here.
[[nodiscard]] const std::vector<RuleInfo>& rules();

class Linter {
 public:
  struct Options {
    /// `"both"`-mode MC payloads below this cannot resolve BER much past
    /// ~1e-4, leaving the stat cross-check underpowered.
    std::uint64_t cross_check_min_bits = 65536;
    /// Above this many estimated ISI cursors the stat engine abandons
    /// exact 2^n enumeration for the voltage-grid fallback
    /// (stat::IsiMixture::Options::max_exact_bits).
    int max_exact_isi_cursors = 12;
    /// BlockFir engages the FFT path at about this many MACs/sample; a
    /// dsp=true spec whose FIR stages all sit below it gains nothing.
    int fft_crossover_macs = 128;
    /// Total sampling jitter (3 sigma RJ + SJ amplitude) beyond this
    /// fraction of one UI makes CDR lock unlikely.
    double max_jitter_fraction_ui = 0.3;
    /// Grids beyond this many scenarios should shard (`--shard k/n`).
    std::uint64_t grid_budget = 250000;
    /// Exhaustive derived-seed collision scan is capped at this many
    /// scenarios (the scan is O(grid log grid)).
    std::uint64_t seed_check_limit = 65536;
    /// Store-key collision scan cap: each scenario is fully expanded and
    /// content-hashed, which is heavier than the seed scan.
    std::uint64_t store_key_check_limit = 4096;
    /// Nominal TX rail-to-rail swing for the structural reachability
    /// bound (the paper's 1.8 V supply).
    double nominal_swing_v = 1.8;
  };

  Linter() = default;
  explicit Linter(Options options) : options_(options) {}

  /// Lints one link spec.  `path` is the spec's JSON path within its
  /// document ("$" standalone, "$.base" inside a sweep).
  [[nodiscard]] LintReport lint(const api::LinkSpec& spec,
                                const std::string& path = "$") const;

  /// Lints a sweep: grid-level rules over the axes/seeds plus the
  /// spec-level rules over `base` (anchored at "$.base").  Base findings
  /// on members an axis overwrites are suppressed — the axis, not the
  /// base value, decides what each scenario sees.
  [[nodiscard]] LintReport lint(const sweep::SweepSpec& sweep) const;

  /// Lints a bus: coupling-matrix rules plus the spec-level rules over
  /// `base` (anchored at "$.base").  Base findings on members a per-lane
  /// override overwrites are suppressed — the override, not the base
  /// value, decides what that lane sees.
  [[nodiscard]] LintReport lint(const api::BusSpec& bus) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

/// Deterministic JSON rendering of a report.
[[nodiscard]] util::Json to_json(const LintReport& report);

/// Strict parse (unknown fields are errors with JSON-path diagnostics);
/// `parse(serialize(x))` is a fixed point.
[[nodiscard]] LintReport lint_report_from_json(const util::Json& json,
                                               const std::string& path = "$");

// ---- Structural estimates shared by the rules (exposed for tests) ----

/// Rough count of UI-spaced ISI cursors the channel's memory spans
/// (excluding the main cursor): FIR tap span for "fir", exponential
/// decay to 1e-4 for "rc", an HF-loss heuristic for "lossy_line", the
/// stage sum for composites, 0 for memoryless kinds.
[[nodiscard]] int estimated_isi_cursors(const api::ChannelSpec& channel,
                                        double bit_rate_hz,
                                        int samples_per_ui);

/// DC attenuation of the channel tree in dB (loss terms summed across
/// composite stages; FIR stages contribute -20*log10(|sum of taps|)).
[[nodiscard]] double estimated_dc_loss_db(const api::ChannelSpec& channel);

}  // namespace serdes::lint
