#include "opt/optimizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "api/simulator.h"

namespace serdes::opt {

namespace {

// Search box per knob — inside the LinkSpec validation ranges with room
// to spare, wide enough to cover every operating point the paper sweeps.
constexpr double kMaxBoostDb = 12.0;
constexpr double kBoostStep0 = 3.0;
constexpr double kMaxFfeAlpha = 0.45;
constexpr double kFfeStep0 = 0.1;
constexpr double kMaxDfeTap = 0.3;
constexpr double kDfeStep0 = 0.06;

/// Candidate knob vector the descent walks.
struct Knobs {
  double boost_db = 0.0;
  double alpha = 0.0;
  std::vector<double> taps;
};

/// Lexicographic objective: primarily the bathtub minimum, then the
/// voltage margin as the tie-breaker — deep-BER bathtubs flush to 0, so
/// without the margin term every deeply-open candidate would tie and the
/// search would stall at the first one it met.
struct Score {
  double min_ber = 1.0;
  double margin = 0.0;
};

bool better(const Score& a, const Score& b) {
  if (a.min_ber != b.min_ber) return a.min_ber < b.min_ber;
  return a.margin > b.margin;
}

}  // namespace

OptimizeReport optimize(const api::LinkSpec& authored,
                        const OptimizeOptions& options) {
  if (options.passes < 1 || options.passes > 16) {
    throw std::invalid_argument("optimize: passes must be in [1, 16]");
  }
  authored.validate_or_throw();

  OptimizeReport report;
  report.spec = authored;
  report.target_ber =
      options.target_ber > 0.0 ? options.target_ber : authored.stat_target_ber;
  if (!(report.target_ber > 0.0) || report.target_ber >= 0.5) {
    throw std::invalid_argument("optimize: target_ber must be in (0, 0.5)");
  }

  // The DFE axes need the streaming path (the spec validator enforces the
  // same); the TX FFE axis is NRZ-only.
  const bool nrz = authored.modulation == "nrz";
  const std::size_t n_taps =
      authored.streaming ? std::min<std::size_t>(options.n_dfe_taps, 8) : 0;

  api::Simulator simulator;
  const auto evaluate = [&](const Knobs& k) {
    api::LinkSpec s = authored;
    s.eq = "fixed";  // the optimizer owns the knobs; no inner training
    s.analysis = "stat";
    s.rx_ctle_boost_db = k.boost_db;
    s.tx_ffe_deemphasis = k.alpha;
    s.dfe_taps = k.taps;
    const api::RunReport r = simulator.run(s);
    ++report.evaluations;
    return Score{r.stat->min_ber, r.stat->voltage_margin_v};
  };

  Knobs knobs;
  knobs.boost_db = std::clamp(authored.rx_ctle_boost_db, 0.0, kMaxBoostDb);
  knobs.alpha =
      nrz ? std::clamp(authored.tx_ffe_deemphasis, 0.0, kMaxFfeAlpha) : 0.0;
  knobs.taps = authored.dfe_taps;
  knobs.taps.resize(n_taps, 0.0);
  for (double& t : knobs.taps) t = std::clamp(t, -kMaxDfeTap, kMaxDfeTap);

  Score best = evaluate(knobs);
  report.baseline_min_ber = best.min_ber;
  report.baseline_met = best.min_ber <= report.target_ber;

  if (!(options.accept_baseline && report.baseline_met)) {
    // Coordinate descent, steps halving per pass.  Each knob tries one
    // step either way and keeps the move only when the oracle improves —
    // greedy, deterministic, and cheap enough (a stat evaluation is
    // milliseconds) that the simple search beats anything clever here.
    for (int pass = 0; pass < options.passes; ++pass) {
      const double scale = std::pow(0.5, pass);
      const auto descend = [&](double* knob, double step, double lo,
                               double hi) {
        for (const double cand : {*knob + step, *knob - step}) {
          const double c = std::clamp(cand, lo, hi);
          if (c == *knob) continue;
          const double prev = *knob;
          *knob = c;
          const Score s = evaluate(knobs);
          if (better(s, best)) {
            best = s;
          } else {
            *knob = prev;
          }
        }
      };
      descend(&knobs.boost_db, kBoostStep0 * scale, 0.0, kMaxBoostDb);
      if (nrz) {
        descend(&knobs.alpha, kFfeStep0 * scale, 0.0, kMaxFfeAlpha);
      }
      for (double& tap : knobs.taps) {
        descend(&tap, kDfeStep0 * scale, -kMaxDfeTap, kMaxDfeTap);
      }
      ++report.passes;
    }
  }

  report.dfe_taps = knobs.taps;
  report.tx_ffe_deemphasis = knobs.alpha;
  report.rx_ctle_boost_db = knobs.boost_db;
  report.winner_min_ber = best.min_ber;
  report.winner_voltage_margin_v = best.margin;
  report.met = best.min_ber <= report.target_ber;

  // ---- Winner validation: one Monte Carlo "both" run ---------------------
  // The oracle designed the link; the datapath gets the last word.  The
  // measured error count must land inside the stat engine's own prediction
  // band for the winner (StatAnalyzer::cross_check via analysis "both").
  {
    api::LinkSpec s = authored;
    s.eq = "fixed";
    s.analysis = "both";
    s.rx_ctle_boost_db = knobs.boost_db;
    s.tx_ffe_deemphasis = knobs.alpha;
    s.dfe_taps = knobs.taps;
    s.payload_bits =
        std::max(authored.payload_bits, options.cross_check_payload_bits);
    // An all-zero tap vector is byte-identical to no DFE in the datapath;
    // dropping it keeps non-streaming winners valid.
    if (std::all_of(s.dfe_taps.begin(), s.dfe_taps.end(),
                    [](double t) { return t == 0.0; })) {
      s.dfe_taps.clear();
    }
    const api::RunReport r = simulator.run(s);
    report.cross_checked = true;
    report.mc_bits = r.bits;
    report.mc_errors = r.errors;
    report.mc_ber = r.ber;
    report.mc_consistent = r.stat.has_value() && r.stat->consistent;
  }
  return report;
}

}  // namespace serdes::opt
