// Closed-loop equalizer design: coordinate descent over a link's EQ knobs
// with the statistical engine as the objective oracle.
//
// Monte Carlo cannot drive an optimizer at the paper's 1e-15 budget — a
// single candidate evaluation would need trillions of bits.  The stat
// engine computes the same link's bathtub in milliseconds and is exactly
// deterministic, so it serves as the inner-loop oracle: the optimizer
// walks the TX FFE de-emphasis, the RX CTLE boost and the DFE taps by
// halving coordinate steps, keeping a candidate only when it improves the
// (min_ber, voltage_margin) objective lexicographically.  The winner is
// then validated the expensive way once: a Monte Carlo `"both"` run whose
// measured BER must land inside the stat engine's own prediction band —
// the optimizer's answer ships with its cross-examination attached.
//
// Everything is derived from the spec: the search is deterministic, so
// the same spec always produces the same OptimizeReport, byte for byte
// once serialized (the golden tests pin this).
#pragma once

#include <cstdint>
#include <vector>

#include "api/link_spec.h"

namespace serdes::opt {

struct OptimizeOptions {
  /// BER the design must meet; 0 means use the spec's stat_target_ber.
  double target_ber = 0.0;
  /// Coordinate-descent passes; each pass halves every knob's step.
  int passes = 4;
  /// DFE taps to search (capped by the LinkSpec's 8-tap maximum).  The
  /// DFE axes are skipped for non-streaming specs (the DFE needs the
  /// streaming path).
  std::size_t n_dfe_taps = 3;
  /// Payload floor for the winner's Monte Carlo cross-check.
  std::uint64_t cross_check_payload_bits = 65536;
  /// Skip the descent when the authored knobs already meet the target
  /// (the baseline is the winner; the cross-check still runs).
  bool accept_baseline = true;
};

/// Outcome of one optimize() call.  `spec` keeps the authored scenario;
/// the winner fields are the knob values the search settled on.
struct OptimizeReport {
  int schema_version = 1;

  /// The authored scenario (winner evaluations run it with eq "fixed"
  /// and the knobs below substituted).
  api::LinkSpec spec;

  /// BER the search optimized toward.
  double target_ber = 1e-15;

  // ---- Baseline (the authored knobs, before any descent) ----
  double baseline_min_ber = 1.0;
  bool baseline_met = false;

  // ---- Winner ----
  std::vector<double> dfe_taps;
  double tx_ffe_deemphasis = 0.0;
  double rx_ctle_boost_db = 0.0;
  double winner_min_ber = 1.0;
  double winner_voltage_margin_v = 0.0;
  /// Winner meets the target BER at the stat engine's best phase.
  bool met = false;

  // ---- Search accounting ----
  /// Stat-engine evaluations spent (baseline included).
  int evaluations = 0;
  /// Descent passes actually run (0 when the baseline was accepted).
  int passes = 0;

  // ---- Monte Carlo cross-check of the winner ----
  bool cross_checked = false;
  std::uint64_t mc_bits = 0;
  std::uint64_t mc_errors = 0;
  double mc_ber = 0.0;
  /// The MC error count landed inside the stat engine's prediction band
  /// (StatAnalyzer::cross_check) — the oracle and the datapath agree on
  /// the winner.
  bool mc_consistent = false;
};

/// Runs the coordinate-descent search for `spec`.  Throws
/// std::invalid_argument when the spec does not validate or the stat
/// engine cannot linearize it.
[[nodiscard]] OptimizeReport optimize(const api::LinkSpec& spec,
                                      const OptimizeOptions& options = {});

}  // namespace serdes::opt
