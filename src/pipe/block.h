// Sample blocks flowing through the streaming link pipeline.
//
// The streaming datapath never materializes a full-payload waveform: the
// TX source emits fixed-size blocks of samples, every stage transforms one
// block at a time (carrying its filter/NCO state across blocks), and the
// receiver sink consumes them incrementally.  A `BlockView` is a non-owning
// window onto the logical sample stream — it knows its absolute position
// (`start_index`) and the stream-level time base, so stages and sinks can
// reproduce the exact arithmetic of the whole-waveform batch path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace serdes::pipe {

/// Non-owning view of one contiguous run of stream samples.
struct BlockView {
  const double* data = nullptr;
  std::size_t size = 0;
  /// Absolute index of data[0] within the logical stream.
  std::uint64_t start_index = 0;
  /// Time of stream sample 0 (not of this block) — the batch waveform's t0.
  util::Second stream_t0{0.0};
  util::Second dt{1e-12};
  /// True for the final block of the stream.
  bool last = false;

  [[nodiscard]] bool empty() const { return size == 0; }
  [[nodiscard]] double operator[](std::size_t i) const { return data[i]; }
};

/// Owning sample buffer a stage writes its output into.  Stages call
/// `match(in)` to copy the stream metadata and size from their input view,
/// then fill `samples()`.
class Block {
 public:
  /// Adopts `in`'s metadata and resizes the buffer to `in.size`.
  void match(const BlockView& in) {
    samples_.resize(in.size);
    start_index_ = in.start_index;
    stream_t0_ = in.stream_t0;
    dt_ = in.dt;
    last_ = in.last;
  }

  [[nodiscard]] std::vector<double>& samples() { return samples_; }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] double* data() { return samples_.data(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  void set_start_index(std::uint64_t i) { start_index_ = i; }
  void set_stream_t0(util::Second t0) { stream_t0_ = t0; }
  void set_dt(util::Second dt) { dt_ = dt; }
  void set_last(bool last) { last_ = last; }

  [[nodiscard]] BlockView view() const {
    return BlockView{samples_.data(), samples_.size(), start_index_,
                     stream_t0_, dt_, last_};
  }

 private:
  std::vector<double> samples_;
  std::uint64_t start_index_ = 0;
  util::Second stream_t0_{0.0};
  util::Second dt_{1e-12};
  bool last_ = false;
};

}  // namespace serdes::pipe
