// Lane-major SoA sample tiles for the multi-lane streaming datapath.
//
// A LaneBlock carries one block of samples for L independent lanes in an
// interleaved structure-of-arrays layout: sample index i of lane l lives at
// data[i * lanes + l], so the values every lane needs at one stream
// position are contiguous.  Lane-batched stage kernels walk the sample
// axis exactly like their scalar counterparts and run the per-lane
// arithmetic in the inner lane loop — one instruction stream, L lanes —
// which auto-vectorizes across lanes while preserving each lane's
// operation order bit-for-bit (no cross-lane arithmetic ever mixes
// values, so lane l of a tile reproduces the scalar pipeline for lane l
// exactly).
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace serdes::pipe {

/// Non-owning view of one lane-major tile: `size` stream samples across
/// `lanes` lanes, value (i, l) at data[i * lanes + l].  Stream metadata
/// mirrors BlockView (the sample axis is the same logical stream).
struct LaneView {
  const double* data = nullptr;
  std::size_t size = 0;   // samples per lane
  std::size_t lanes = 1;  // lanes interleaved per sample index
  /// Absolute index of sample 0 within the logical stream.
  std::uint64_t start_index = 0;
  /// Time of stream sample 0 (not of this tile) — the batch waveform's t0.
  util::Second stream_t0{0.0};
  util::Second dt{1e-12};
  bool last = false;

  [[nodiscard]] bool empty() const { return size == 0; }
  /// Value of lane `l` at tile sample `i`.
  [[nodiscard]] double at(std::size_t i, std::size_t l) const {
    return data[i * lanes + l];
  }
};

/// Owning lane-major tile buffer a lane stage writes its output into.
class LaneBlock {
 public:
  /// Adopts `in`'s metadata and resizes to in.size x in.lanes values.
  void match(const LaneView& in) {
    samples_.resize(in.size * in.lanes);
    size_ = in.size;
    lanes_ = in.lanes;
    start_index_ = in.start_index;
    stream_t0_ = in.stream_t0;
    dt_ = in.dt;
    last_ = in.last;
  }

  /// Shapes the tile for `size` samples of `lanes` lanes with explicit
  /// stream metadata (used by the lane fan-out stage, whose input is a
  /// scalar shared block rather than a tile).
  void shape(std::size_t size, std::size_t lanes, std::uint64_t start_index,
             util::Second stream_t0, util::Second dt, bool last) {
    samples_.resize(size * lanes);
    size_ = size;
    lanes_ = lanes;
    start_index_ = start_index;
    stream_t0_ = stream_t0;
    dt_ = dt;
    last_ = last;
  }

  [[nodiscard]] double* data() { return samples_.data(); }
  [[nodiscard]] const double* data() const { return samples_.data(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  [[nodiscard]] LaneView view() const {
    return LaneView{samples_.data(), size_,      lanes_, start_index_,
                    stream_t0_,      dt_,        last_};
  }

 private:
  std::vector<double> samples_;
  std::size_t size_ = 0;
  std::size_t lanes_ = 1;
  std::uint64_t start_index_ = 0;
  util::Second stream_t0_{0.0};
  util::Second dt_{1e-12};
  bool last_ = false;
};

}  // namespace serdes::pipe
