#include "pipe/lane_stages.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dsp/fft.h"

namespace serdes::pipe {

// ---- LaneAwgnStage ----------------------------------------------------------

LaneAwgnStage::LaneAwgnStage(double sigma,
                             const std::vector<std::uint64_t>& seeds)
    : sigma_(sigma) {
  if (seeds.empty()) {
    throw std::invalid_argument("LaneAwgnStage: need at least one lane seed");
  }
  rngs_.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) rngs_.emplace_back(seed);
}

void LaneAwgnStage::process(const BlockView& in, LaneBlock& out) {
  const std::size_t lanes = rngs_.size();
  out.shape(in.size, lanes, in.start_index, in.stream_t0, in.dt, in.last);
  double* samples = out.data();
  const double sigma = sigma_;
  if (sigma > 0.0) {
    // The gaussian draw itself stays scalar (ziggurat edge path redraws a
    // data-dependent number of times); each lane advances its own stream
    // one draw per sample, exactly like the scalar AwgnStage.
    for (std::size_t i = 0; i < in.size; ++i) {
      const double base = in.data[i];
      double* dst = samples + i * lanes;
      for (std::size_t l = 0; l < lanes; ++l) {
        dst[l] = base + rngs_[l].gaussian(0.0, sigma);
      }
    }
  } else {
    for (std::size_t i = 0; i < in.size; ++i) {
      const double base = in.data[i];
      double* dst = samples + i * lanes;
      for (std::size_t l = 0; l < lanes; ++l) dst[l] = base;
    }
  }
}

// ---- LaneCtleStage ----------------------------------------------------------

LaneCtleStage::LaneCtleStage(util::Decibel boost, util::Hertz pole,
                             util::Second dt, std::size_t lanes)
    : k_(util::db_to_amplitude(boost) - 1.0),
      lpf_(pole, dt),
      x1_(lanes, 0.0),
      y1_(lanes, 0.0) {}

void LaneCtleStage::process(const LaneView& in, LaneBlock& out) {
  out.match(in);
  double* samples = out.data();
  const std::size_t values = in.size * in.lanes;
  scratch_.resize(values);
  lpf_.process_lanes(in.data, scratch_.data(), in.size, in.lanes, x1_.data(),
                     y1_.data());
  // The peaking combine is element-wise, so one flat pass over the tile
  // keeps every lane's operation order identical to the scalar stage.
  const double k = k_;
  const double* low = scratch_.data();
  for (std::size_t i = 0; i < values; ++i) {
    const double x = in.data[i];
    samples[i] = x + k * (x - low[i]);
  }
}

// ---- LaneRfiStage -----------------------------------------------------------

LaneRfiStage::LaneRfiStage(const analog::RfiStage& rfi, util::Second dt,
                           std::size_t lanes)
    : rfi_(&rfi),
      lpf_(rfi.bandwidth(), dt),
      deltas_(lanes, 0.0),
      x1_(lanes, 0.0),
      y1_(lanes, 0.0) {}

void LaneRfiStage::process(const LaneView& in, LaneBlock& out) {
  out.match(in);
  double* samples = out.data();
  const double* deltas = deltas_.data();
  for (std::size_t i = 0; i < in.size; ++i) {
    const double* src = in.data + i * in.lanes;
    double* dst = samples + i * in.lanes;
    for (std::size_t l = 0; l < in.lanes; ++l) dst[l] = src[l] + deltas[l];
  }
  lpf_.process_lanes(samples, samples, in.size, in.lanes, x1_.data(),
                     y1_.data());
  // Element-wise saturating VTC: flat pass, loads hoisted like the scalar
  // stage.
  const double bias = rfi_->bias();
  const double gain = rfi_->gain();
  const double half = rfi_->vdd() / 2.0;
  const std::size_t values = in.size * in.lanes;
  for (std::size_t i = 0; i < values; ++i) {
    samples[i] = analog::RfiStage::saturate_value(samples[i], bias, gain,
                                                  half);
  }
}

// ---- LaneRestoreStage -------------------------------------------------------

LaneRestoreStage::LaneRestoreStage(const analog::RestoringInverter& inv,
                                   util::Second dt, std::size_t lanes)
    : inv_(&inv), pole_(inv.bandwidth(), dt), x1_(lanes, 0.0),
      y1_(lanes, 0.0) {}

void LaneRestoreStage::process(const LaneView& in, LaneBlock& out) {
  out.match(in);
  double* samples = out.data();
  const analog::RestoringInverter& inv = *inv_;
  const std::size_t values = in.size * in.lanes;
  for (std::size_t i = 0; i < values; ++i) {
    samples[i] = inv.restore_level(in.data[i]);
  }
  pole_.process_lanes(samples, samples, in.size, in.lanes, x1_.data(),
                      y1_.data());
}

// ---- LaneWaveformTap --------------------------------------------------------

LaneWaveformTap::LaneWaveformTap(std::size_t lanes, std::size_t max_samples)
    : max_samples_(max_samples), captured_(lanes) {}

void LaneWaveformTap::record(const LaneView& in) {
  if (!stamped_ && in.size > 0) {
    t0_ = in.stream_t0;
    dt_ = in.dt;
    stamped_ = true;
  }
  for (std::size_t l = 0; l < captured_.size(); ++l) {
    std::vector<double>& lane = captured_[l];
    if (lane.size() >= max_samples_) continue;
    const std::size_t take = std::min(max_samples_ - lane.size(), in.size);
    for (std::size_t i = 0; i < take; ++i) lane.push_back(in.at(i, l));
  }
}

analog::Waveform LaneWaveformTap::take(std::size_t lane) {
  return analog::Waveform{t0_, dt_, std::move(captured_[lane])};
}

// ---- LaneSamplerCdrSink -----------------------------------------------------

LaneSamplerCdrSink::LaneSamplerCdrSink(const Config& config)
    : clocks_(config.bit_rate, config.oversampling, config.phase_offset,
              config.ppm_offset),
      nlanes_(config.jitter_seeds.size()),
      total_(config.total_samples),
      t0_(config.stream_t0),
      dt_(config.dt),
      end_(config.stream_t0 +
           config.dt * static_cast<double>(config.total_samples)),
      ap_half_(config.sampler.aperture * 0.5),
      dfe_on_(!config.dfe_taps.empty()),
      dfe_taps_(config.dfe_taps),
      dfe_thr_(config.sampler.threshold) {
  if (nlanes_ == 0 || config.sampler_seeds.size() != nlanes_) {
    throw std::invalid_argument(
        "LaneSamplerCdrSink: jitter/sampler seed vectors must be the same "
        "non-zero length");
  }
  jitters_.reserve(nlanes_);
  samplers_.reserve(nlanes_);
  cdrs_.reserve(nlanes_);
  for (std::size_t l = 0; l < nlanes_; ++l) {
    channel::JitterModel::Config jc = config.jitter;
    jc.seed = config.jitter_seeds[l];
    jitters_.emplace_back(jc);
    analog::DffSampler::Config sc = config.sampler;
    sc.seed = config.sampler_seeds[l];
    samplers_.emplace_back(sc);
    cdrs_.emplace_back(config.cdr);
  }
  cursors_.resize(nlanes_);
  if (dfe_on_) {
    for (LaneCursor& cursor : cursors_) {
      cursor.dfe_hist.assign(dfe_taps_.size(), 0.0);
    }
  }
  // Same window sizing as the scalar sink (see SamplerCdrSink): one block
  // plus the worst-case backward reach of a jittered aperture edge, as a
  // power-of-two entry count so the index wrap stays a mask.
  const double dt_s = config.dt.value();
  const double back_span_s = config.sampler.aperture.value() +
                             24.0 * config.jitter.random_rms.value() +
                             2.0 * config.jitter.sinusoidal_amplitude.value() +
                             4.0 * util::period(config.bit_rate).value();
  back_samples_ = static_cast<std::size_t>(back_span_s / dt_s) + 64;
  const std::size_t entries = dsp::next_pow2(
      std::max<std::size_t>(config.block_samples, 1) + back_samples_);
  ring_.assign(entries * nlanes_, 0.0);
  mask_ = entries - 1;
  if (total_ == 0) {
    for (LaneCursor& cursor : cursors_) cursor.done = true;
  }
}

void LaneSamplerCdrSink::consume(const LaneView& in) {
  if (in.lanes != nlanes_) {
    throw std::invalid_argument("LaneSamplerCdrSink: lane count mismatch");
  }
  const std::size_t lanes = nlanes_;
  const std::size_t entries = ring_.size() / lanes;
  if (in.size + back_samples_ > entries) {
    // A tile larger than the sizing hint arrived: grow the window before
    // writing, re-placing the live span under the new modulus (scalar
    // sink's grow path, per lane).
    const std::size_t new_entries = dsp::next_pow2(in.size + back_samples_);
    std::vector<double> bigger(new_entries * lanes, 0.0);
    const std::size_t new_mask = new_entries - 1;
    const std::uint64_t live = std::min<std::uint64_t>(appended_, entries);
    for (std::uint64_t k = appended_ - live; k < appended_; ++k) {
      const double* src = ring_.data() + (k & mask_) * lanes;
      double* dst = bigger.data() + (k & new_mask) * lanes;
      for (std::size_t l = 0; l < lanes; ++l) dst[l] = src[l];
    }
    ring_ = std::move(bigger);
    mask_ = new_mask;
  }
  double* ring = ring_.data();
  const std::size_t mask = mask_;
  const std::uint64_t start = in.start_index;
  for (std::size_t i = 0; i < in.size; ++i) {
    const double* src = in.data + i * lanes;
    double* dst = ring + ((start + i) & mask) * lanes;
    for (std::size_t l = 0; l < lanes; ++l) dst[l] = src[l];
  }
  if (in.size > 0) {
    if (in.start_index == 0) {
      for (std::size_t l = 0; l < lanes; ++l) {
        cursors_[l].first_sample = in.at(0, l);
        cursors_[l].has_first = true;
      }
    }
    appended_ = in.start_index + in.size;
    if (appended_ == total_) {
      for (std::size_t l = 0; l < lanes; ++l) {
        cursors_[l].last_sample = in.at(in.size - 1, l);
        cursors_[l].got_last = true;
      }
    }
  }
  for (std::size_t l = 0; l < lanes; ++l) drain_lane(l);
}

void LaneSamplerCdrSink::finish() {
  if (total_ > 0 && appended_ == total_) {
    for (std::size_t l = 0; l < nlanes_; ++l) {
      LaneCursor& cursor = cursors_[l];
      if (!cursor.got_last) {
        cursor.last_sample = ring_[((total_ - 1) & mask_) * nlanes_ + l];
        cursor.got_last = true;
      }
    }
  }
  for (std::size_t l = 0; l < nlanes_; ++l) drain_lane(l);
}

bool LaneSamplerCdrSink::fetch(std::size_t lane, const LaneCursor& cursor,
                               util::Second t, double* v) const {
  const double idx = (t - t0_) / dt_;
  if (idx <= 0.0) {
    if (!cursor.has_first) return false;
    *v = cursor.first_sample;
    return true;
  }
  const auto lo = static_cast<std::uint64_t>(idx);
  if (lo + 1 >= total_) {
    if (!cursor.got_last) return false;
    *v = cursor.last_sample;
    return true;
  }
  if (lo + 1 >= appended_) return false;
  const double frac = idx - static_cast<double>(lo);
  const double a = ring_[(lo & mask_) * nlanes_ + lane];
  const double b = ring_[((lo + 1) & mask_) * nlanes_ + lane];
  *v = a + frac * (b - a);
  return true;
}

void LaneSamplerCdrSink::drain_lane(std::size_t lane) {
  LaneCursor& cursor = cursors_[lane];
  channel::JitterModel& jitter = jitters_[lane];
  analog::DffSampler& sampler = samplers_[lane];
  digital::OversamplingCdr& cdr = cdrs_[lane];
  while (!cursor.done) {
    if (!cursor.pending) {
      if (cursor.phase == 0) {
        const util::Second ui_start = clocks_.instant(cursor.ui, 0);
        if (ui_start >= end_) {
          cursor.done = true;
          break;
        }
        if (dfe_on_) {
          double corr = 0.0;
          for (std::size_t k = 0; k < dfe_taps_.size(); ++k) {
            corr += dfe_taps_[k] * cursor.dfe_hist[k];
          }
          cursor.dfe_corr = corr;
          cursor.dfe_fb_phase = cdr.decision_phase();
          cursor.dfe_fb_decided = false;
        }
      }
      // Perturb exactly once per instant (scalar drain): the lane's jitter
      // RNG stream advances in the batch sampling order even when an
      // instant has to wait for the next tile.
      cursor.pending = jitter.perturb(clocks_.instant(cursor.ui, cursor.phase));
    }
    const util::Second t = *cursor.pending;
    double v;
    double v_before;
    double v_after;
    if (!fetch(lane, cursor, t, &v) ||
        !fetch(lane, cursor, t - ap_half_, &v_before) ||
        !fetch(lane, cursor, t + ap_half_, &v_after)) {
      break;  // wait for more samples (or the end of the stream)
    }
    if (dfe_on_) {
      v -= cursor.dfe_corr;
      v_before -= cursor.dfe_corr;
      v_after -= cursor.dfe_corr;
      if (!cursor.dfe_fb_decided && cursor.phase >= cursor.dfe_fb_phase) {
        cursor.dfe_fb_w = v > dfe_thr_ ? 1.0 : -1.0;  // pure comparator
        cursor.dfe_fb_decided = true;
      }
    }
    cdr.push(sampler.decide(v, v_before, v_after));
    cursor.pending.reset();
    if (++cursor.phase == clocks_.phases()) {
      cursor.phase = 0;
      ++cursor.ui;
      if (dfe_on_) {
        for (std::size_t k = dfe_taps_.size() - 1; k > 0; --k) {
          cursor.dfe_hist[k] = cursor.dfe_hist[k - 1];
        }
        cursor.dfe_hist[0] = cursor.dfe_fb_decided ? cursor.dfe_fb_w : 0.0;
      }
    }
  }
}

}  // namespace serdes::pipe
