// Lane-batched (SoA) streaming stages for the multi-lane datapath.
//
// Each stage here is the L-lane counterpart of a scalar stage in
// pipe/stages.h, operating on lane-major tiles (pipe/lane_block.h): the
// sample loop is the outer loop exactly as in the scalar stage, and the
// per-lane arithmetic runs in an inner lane loop with per-lane state held
// in arrays — one instruction stream, L lanes.  No cross-lane arithmetic
// ever mixes values and each lane draws from its own RNG stream in the
// scalar order, so lane l of a tile is bit-identical to the scalar
// pipeline run over lane l alone.
//
//   LaneAwgnStage      — fans a shared (lane-invariant) channel block out
//                        into a tile, adding per-lane AWGN streams
//   LaneCtleStage      — CTLE peaking with per-lane pole state
//   LaneRfiStage       — RFI front end with per-lane DC means and poles
//   LaneRestoreStage   — restoring inverter VTC + per-lane output pole
//   LaneWaveformTap    — per-lane diagnostic-window capture
//   LaneSamplerCdrSink — per-lane jitter/sampler/CDR over one shared
//                        interleaved rolling window
//
// The gaussian draw (ziggurat with a variable-draw edge path) and the
// sampler decision (data-dependent metastability redraws) stay scalar per
// lane by design: batching them across lanes would change each lane's
// draw order and break bit-identity.  The filter recurrences and MACs —
// where the cycles actually go — vectorize across the lane axis.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analog/filters.h"
#include "analog/rfi.h"
#include "analog/sampler.h"
#include "analog/waveform.h"
#include "channel/noise.h"
#include "digital/cdr.h"
#include "digital/sampling.h"
#include "pipe/block.h"
#include "pipe/lane_block.h"
#include "util/random.h"
#include "util/units.h"

namespace serdes::pipe {

/// Fan-out stage: replicates a shared scalar block (the lane-invariant
/// TX + channel output) across L lanes, adding each lane's own AWGN
/// stream — per lane, blockwise Waveform::add_noise with a carried RNG
/// that advances one gaussian per sample exactly like AwgnStage.
class LaneAwgnStage {
 public:
  LaneAwgnStage(double sigma, const std::vector<std::uint64_t>& seeds);

  void process(const BlockView& in, LaneBlock& out);

 private:
  double sigma_;
  std::vector<util::Rng> rngs_;
};

/// CTLE peaking across a tile: out = x + k*(x - LPF(x)) per lane, the
/// pole state carried per lane (analog::OnePoleLowPass::process_lanes).
class LaneCtleStage {
 public:
  LaneCtleStage(util::Decibel boost, util::Hertz pole, util::Second dt,
                std::size_t lanes);

  void process(const LaneView& in, LaneBlock& out);

 private:
  double k_;
  analog::OnePoleLowPass lpf_;  // coefficients; state lives in x1_/y1_
  std::vector<double> x1_;
  std::vector<double> y1_;
  std::vector<double> scratch_;  // low-passed tile (keeps in/out aliasable)
};

/// RFI front end across a tile: per-lane DC removal (each lane's stream
/// mean, supplied via set_mean once measured), per-lane output pole, then
/// the shared saturating VTC — blockwise RfiFrontEndStage per lane.
class LaneRfiStage {
 public:
  LaneRfiStage(const analog::RfiStage& rfi, util::Second dt,
               std::size_t lanes);

  /// Lane `lane`'s full-stream DC mean; must be set before the first tile.
  void set_mean(std::size_t lane, double mean) { deltas_[lane] = -mean; }

  void process(const LaneView& in, LaneBlock& out);

 private:
  const analog::RfiStage* rfi_;
  analog::OnePoleLowPass lpf_;
  std::vector<double> deltas_;
  std::vector<double> x1_;
  std::vector<double> y1_;
};

/// Rail-restoring inverter across a tile: shared VTC lookup per value,
/// then the per-lane output pole.
class LaneRestoreStage {
 public:
  LaneRestoreStage(const analog::RestoringInverter& inv, util::Second dt,
                   std::size_t lanes);

  void process(const LaneView& in, LaneBlock& out);

 private:
  const analog::RestoringInverter* inv_;
  analog::OnePoleLowPass pole_;
  std::vector<double> x1_;
  std::vector<double> y1_;
};

/// Per-lane diagnostic-window capture: retains up to `max_samples` of each
/// lane's stream flowing past (the per-lane analogue of WaveformTapStage,
/// as a passive recorder — call record() before the sink consumes the
/// tile).
class LaneWaveformTap {
 public:
  LaneWaveformTap(std::size_t lanes, std::size_t max_samples);

  void record(const LaneView& in);

  /// Moves lane `lane`'s captured window out (stream t0 / dt stamped).
  [[nodiscard]] analog::Waveform take(std::size_t lane);

 private:
  std::size_t max_samples_;
  std::vector<std::vector<double>> captured_;
  util::Second t0_{0.0};
  util::Second dt_{1e-12};
  bool stamped_ = false;
};

/// Terminal sink for a lane tile: per-lane jittered multiphase sampling,
/// DFF decision and oversampling CDR, all fed from one shared interleaved
/// rolling window.  Lane l reproduces the scalar SamplerCdrSink seeded
/// with lane l's jitter/sampler seeds bit-for-bit: each lane keeps its own
/// sampling cursor and drains independently, so a lane whose jittered
/// instant still waits on the next block never stalls the others' RNG
/// draw order.
class LaneSamplerCdrSink {
 public:
  struct Config {
    util::Hertz bit_rate;
    int oversampling = 5;
    util::Second phase_offset{0.0};
    double ppm_offset = 0.0;
    /// Shared jitter/sampler settings; the per-lane seed vectors below
    /// override the seed fields lane by lane (their common size is the
    /// lane count).
    channel::JitterModel::Config jitter{};
    analog::DffSampler::Config sampler{};
    digital::CdrConfig cdr{};
    std::vector<std::uint64_t> jitter_seeds;
    std::vector<std::uint64_t> sampler_seeds;
    /// DFE post-cursor taps (volts in the sink's input domain), shared
    /// across lanes; each lane carries its own feedback history so lane l
    /// stays bit-identical to the scalar sink run over lane l alone.
    /// Empty disables the feedback path.
    std::vector<double> dfe_taps;
    /// Stream geometry (known up front: framed bits x samples per UI).
    std::uint64_t total_samples = 0;
    util::Second stream_t0{0.0};
    util::Second dt{1e-12};
    /// Block size hint used to size the rolling window.
    std::size_t block_samples = 16384;
  };

  explicit LaneSamplerCdrSink(const Config& config);

  /// Appends one tile and evaluates, per lane, every sampling instant
  /// whose needed neighbourhood is now available.
  void consume(const LaneView& in);

  /// Evaluates the remaining instants with end-of-stream clamping.
  void finish();

  [[nodiscard]] std::size_t lanes() const { return nlanes_; }
  [[nodiscard]] const digital::OversamplingCdr& cdr(std::size_t lane) const {
    return cdrs_[lane];
  }
  [[nodiscard]] std::uint64_t metastable_count(std::size_t lane) const {
    return samplers_[lane].metastable_count();
  }

 private:
  /// Per-lane sampling cursor: the scalar sink's progress state, one copy
  /// per lane so lanes drain independently.
  struct LaneCursor {
    double first_sample = 0.0;
    double last_sample = 0.0;
    bool has_first = false;
    bool got_last = false;
    std::uint64_t ui = 0;
    int phase = 0;
    std::optional<util::Second> pending;
    bool done = false;
    // Per-lane DFE feedback state (see SamplerCdrSink): correction latched
    // at phase 0, decision from a pure comparator at the CDR pick phase,
    // history shifted at the UI wrap.
    std::vector<double> dfe_hist;  // w in {+1,-1}, 0 pre-stream
    double dfe_corr = 0.0;
    int dfe_fb_phase = 0;
    bool dfe_fb_decided = false;
    double dfe_fb_w = 0.0;
  };

  void drain_lane(std::size_t lane);
  /// Scalar-identical fused availability test + interpolation for lane
  /// `lane` (see SamplerCdrSink::fetch).
  [[nodiscard]] bool fetch(std::size_t lane, const LaneCursor& cursor,
                           util::Second t, double* v) const;

  digital::MultiphaseClockGenerator clocks_;  // config-only: shared
  std::vector<channel::JitterModel> jitters_;
  std::vector<analog::DffSampler> samplers_;
  std::vector<digital::OversamplingCdr> cdrs_;
  std::vector<LaneCursor> cursors_;

  std::size_t nlanes_;
  std::uint64_t total_;
  util::Second t0_;
  util::Second dt_;
  util::Second end_;
  util::Second ap_half_;

  /// Interleaved rolling window: stream sample i of lane l lives at
  /// ring_[(i & mask_) * nlanes_ + l]; capacity is a power of two of
  /// *entries* (sample indices), not values.
  std::vector<double> ring_;
  std::size_t mask_ = 0;  // entry count - 1
  std::size_t back_samples_ = 0;
  std::uint64_t appended_ = 0;

  bool dfe_on_ = false;
  std::vector<double> dfe_taps_;
  double dfe_thr_ = 0.0;  // comparator threshold (the shared sampler's)
};

}  // namespace serdes::pipe
