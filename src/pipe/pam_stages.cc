#include "pipe/pam_stages.h"

#include <algorithm>
#include <utility>

#include "dsp/fft.h"

namespace serdes::pipe {

// ---- XtalkInjectStage -------------------------------------------------------

XtalkInjectStage::XtalkInjectStage(std::vector<Path> paths,
                                   util::Second unit_interval,
                                   int samples_per_ui, util::Second rise_time,
                                   util::Second stream_t0) {
  lanes_.reserve(paths.size());
  for (Path& p : paths) {
    lanes_.push_back(Lane{
        LevelPulseSource(std::move(p.levels), unit_interval, samples_per_ui,
                         rise_time, stream_t0),
        p.gain, std::move(p.channel_stream)});
  }
}

void XtalkInjectStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  std::copy(in.data, in.data + in.size, samples);
  for (Lane& lane : lanes_) {
    // The aggressor level vector spans at least the victim stream (delay
    // zeros prepended), so produce() always yields a full block here.
    const std::size_t n = lane.source.produce(scratch_, in.size);
    double* contrib = scratch_.data();
    if (lane.channel_stream) {
      lane.channel_stream->transmit_block(contrib, contrib, n);
    }
    const double gain = lane.gain;
    for (std::size_t i = 0; i < n; ++i) samples[i] += gain * contrib[i];
  }
}

void XtalkInjectStage::reset() {
  for (Lane& lane : lanes_) {
    lane.source.reset();
    if (lane.channel_stream) lane.channel_stream->reset();
  }
}

// ---- PamSamplerCdrSink ------------------------------------------------------

namespace {

analog::DffSampler::Config slicer_config(const analog::DffSampler::Config& t,
                                         double threshold,
                                         std::uint64_t seed_offset) {
  analog::DffSampler::Config c = t;
  c.threshold = threshold;
  c.seed = t.seed + seed_offset;
  return c;
}

}  // namespace

PamSamplerCdrSink::PamSamplerCdrSink(const Config& config)
    : clocks_(config.symbol_rate, config.oversampling, config.phase_offset,
              config.ppm_offset),
      jitter_(config.jitter),
      sampler_mid_(slicer_config(config.sampler, config.threshold_mid, 0)),
      sampler_low_(slicer_config(config.sampler, config.threshold_low, 1)),
      sampler_high_(slicer_config(config.sampler, config.threshold_high, 2)),
      extra_thresholds_(config.extra_thresholds),
      cdr_(config.cdr),
      total_(config.total_samples),
      t0_(config.stream_t0),
      dt_(config.dt),
      end_(config.stream_t0 +
           config.dt * static_cast<double>(config.total_samples)),
      ap_half_(config.sampler.aperture * 0.5),
      dfe_on_(!config.dfe_taps.empty()),
      dfe_taps_(config.dfe_taps),
      dfe_hist_(config.dfe_taps.size(), 0.0) {
  if (dfe_on_ && !config.extra_thresholds) {
    throw std::invalid_argument(
        "PamSamplerCdrSink: the DFE needs the tri-threshold slicers");
  }
  // Same rolling-window sizing as SamplerCdrSink, against the symbol
  // period (the PAM4 UI).
  const double dt_s = config.dt.value();
  const double back_span_s = config.sampler.aperture.value() +
                             24.0 * config.jitter.random_rms.value() +
                             2.0 * config.jitter.sinusoidal_amplitude.value() +
                             4.0 * util::period(config.symbol_rate).value();
  back_samples_ = static_cast<std::size_t>(back_span_s / dt_s) + 64;
  ring_.assign(dsp::next_pow2(std::max<std::size_t>(config.block_samples, 1) +
                              back_samples_),
               0.0);
  mask_ = ring_.size() - 1;
  if (total_ == 0) done_ = true;
}

void PamSamplerCdrSink::consume(const BlockView& in) {
  if (in.size + back_samples_ > ring_.size()) {
    std::vector<double> bigger(dsp::next_pow2(in.size + back_samples_), 0.0);
    const std::size_t new_mask = bigger.size() - 1;
    const std::uint64_t live =
        std::min<std::uint64_t>(appended_, ring_.size());
    for (std::uint64_t k = appended_ - live; k < appended_; ++k) {
      bigger[k & new_mask] = ring_[k & mask_];
    }
    ring_ = std::move(bigger);
    mask_ = new_mask;
  }
  double* ring = ring_.data();
  const std::size_t mask = mask_;
  const std::uint64_t start = in.start_index;
  for (std::size_t i = 0; i < in.size; ++i) {
    ring[(start + i) & mask] = in.data[i];
  }
  if (in.size > 0) {
    if (in.start_index == 0) {
      first_sample_ = in.data[0];
      has_first_ = true;
    }
    appended_ = in.start_index + in.size;
    if (appended_ == total_) {
      last_sample_ = in.data[in.size - 1];
      final_ = true;
    }
  }
  drain();
}

void PamSamplerCdrSink::finish() {
  if (!final_ && total_ > 0 && appended_ == total_) {
    last_sample_ = ring_[(total_ - 1) & mask_];
    final_ = true;
  }
  drain();
}

bool PamSamplerCdrSink::fetch(util::Second t, double* v) const {
  const double idx = (t - t0_) / dt_;
  if (idx <= 0.0) {
    if (!has_first_) return false;
    *v = first_sample_;
    return true;
  }
  const auto lo = static_cast<std::uint64_t>(idx);
  if (lo + 1 >= total_) {
    if (!final_) return false;
    *v = last_sample_;
    return true;
  }
  if (lo + 1 >= appended_) return false;
  const double frac = idx - static_cast<double>(lo);
  const double a = ring_[lo & mask_];
  const double b = ring_[(lo + 1) & mask_];
  *v = a + frac * (b - a);
  return true;
}

void PamSamplerCdrSink::drain() {
  while (!done_) {
    if (!pending_) {
      if (phase_ == 0) {
        const util::Second ui_start = clocks_.instant(ui_, 0);
        if (ui_start >= end_) {
          done_ = true;
          break;
        }
        if (dfe_on_) {
          // Per-UI feedback correction, latched before the UI's first
          // instant (see SamplerCdrSink::drain for the contract).
          double corr = 0.0;
          for (std::size_t k = 0; k < dfe_taps_.size(); ++k) {
            corr += dfe_taps_[k] * dfe_hist_[k];
          }
          dfe_corr_ = corr;
          dfe_fb_phase_ = cdr_.decision_phase();
          dfe_fb_decided_ = false;
        }
      }
      pending_ = jitter_.perturb(clocks_.instant(ui_, phase_));
    }
    const util::Second t = *pending_;
    double v;
    double v_before;
    double v_after;
    if (!fetch(t, &v) || !fetch(t - ap_half_, &v_before) ||
        !fetch(t + ap_half_, &v_after)) {
      break;
    }
    if (dfe_on_) {
      v -= dfe_corr_;
      v_before -= dfe_corr_;
      v_after -= dfe_corr_;
      if (!dfe_fb_decided_ && phase_ >= dfe_fb_phase_) {
        // Pure tri-threshold comparator on the corrected value (no RNG):
        // levels 0..3 weigh the feedback as -1, -1/3, +1/3, +1.
        const bool a_mid = v > sampler_mid_.config().threshold;
        const bool a_low = v > sampler_low_.config().threshold;
        const bool a_high = v > sampler_high_.config().threshold;
        dfe_fb_w_ = a_high ? 1.0
                    : a_mid ? 1.0 / 3.0
                    : a_low ? -1.0 / 3.0
                            : -1.0;
        dfe_fb_decided_ = true;
      }
    }
    // Gray decode: MSB = above mid; LSB = between low and high (levels 1
    // and 2 carry LSB=1).  With the extra thresholds disabled the LSB
    // rail is forced to 0 and only the middle slicer draws noise.
    const bool msb = sampler_mid_.decide(v, v_before, v_after);
    bool lsb = false;
    if (extra_thresholds_) {
      const bool above_low = sampler_low_.decide(v, v_before, v_after);
      const bool above_high = sampler_high_.decide(v, v_before, v_after);
      lsb = above_low && !above_high;
    }
    cdr_.push2(msb, lsb);
    pending_.reset();
    if (++phase_ == clocks_.phases()) {
      phase_ = 0;
      ++ui_;
      if (dfe_on_) {
        for (std::size_t k = dfe_taps_.size() - 1; k > 0; --k) {
          dfe_hist_[k] = dfe_hist_[k - 1];
        }
        dfe_hist_[0] = dfe_fb_decided_ ? dfe_fb_w_ : 0.0;
      }
    }
  }
}

std::vector<std::uint8_t> PamSamplerCdrSink::recovered_bits() const {
  const std::vector<std::uint8_t>& msb = cdr_.recovered();
  const std::vector<std::uint8_t>& lsb = cdr_.aux_recovered();
  std::vector<std::uint8_t> bits;
  bits.reserve(msb.size() * 2);
  for (std::size_t i = 0; i < msb.size(); ++i) {
    bits.push_back(msb[i]);
    bits.push_back(i < lsb.size() ? lsb[i] : 0);
  }
  return bits;
}

}  // namespace serdes::pipe
