// Streaming stages for the multi-lane / PAM4 datapath extensions.
//
//   XtalkInjectStage — adds gain-scaled, UI-delayed copies of aggressor TX
//                      streams (optionally filtered through the victim's
//                      channel: FEXT) into the victim's post-channel
//                      stream, block by block.
//   PamSamplerCdrSink — the PAM4 counterpart of SamplerCdrSink: three
//                      threshold slicers (low / middle / high) gray-decode
//                      each sampling instant into MSB/LSB rails feeding the
//                      oversampling CDR's dual-rail push2 path.
//
// Both follow the streaming contract of pipe/stages.h: identical
// arithmetic at any block size, state carried across blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analog/sampler.h"
#include "channel/channel.h"
#include "channel/noise.h"
#include "digital/cdr.h"
#include "digital/sampling.h"
#include "pipe/stage.h"
#include "pipe/stages.h"
#include "util/units.h"

namespace serdes::pipe {

/// One aggressor contribution into a victim stream.  The aggressor's
/// launch levels (already delayed: the caller prepends `delay_ui` idle
/// levels) are pulse-shaped by a private LevelPulseSource and — for FEXT —
/// run through a private stream of the victim's channel model, then scaled
/// by the coupling gain and added to every passing block.
class XtalkInjectStage final : public Stage {
 public:
  struct Path {
    /// Aggressor launch levels with the delay prepended; must span at
    /// least as many UIs as the victim stream.
    std::vector<double> levels;
    double gain = 0.0;
    /// FEXT: filter the aggressor stream through this (victim-channel)
    /// stream before injection.  nullptr = NEXT (direct injection).
    std::unique_ptr<channel::Channel::Stream> channel_stream;
  };

  /// Geometry must match the victim's TX source so aggressor samples line
  /// up positionally with victim samples.
  XtalkInjectStage(std::vector<Path> paths, util::Second unit_interval,
                   int samples_per_ui, util::Second rise_time,
                   util::Second stream_t0);

  void process(const BlockView& in, Block& out) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "xtalk"; }

 private:
  struct Lane {
    LevelPulseSource source;
    double gain;
    std::unique_ptr<channel::Channel::Stream> channel_stream;
  };
  std::vector<Lane> lanes_;
  Block scratch_;
};

/// Terminal sink for PAM4: per jittered sampling instant, three DFF
/// slicers (thresholds low < mid < high) decide the rails, the gray code
/// ((0,0) (0,1) (1,1) (1,0) for levels 0..3) reduces them to MSB = above
/// mid, LSB = above low AND not above high, and the CDR consumes both
/// rails through push2 — edge detection and phase picking run on the MSB
/// rail only.  The rolling-window machinery matches SamplerCdrSink.
class PamSamplerCdrSink {
 public:
  struct Config {
    /// Symbol rate (bit_rate / 2 for PAM4) — the clock the multiphase
    /// generator runs at.
    util::Hertz symbol_rate;
    int oversampling = 5;
    util::Second phase_offset{0.0};
    double ppm_offset = 0.0;
    channel::JitterModel::Config jitter{};
    /// Slicer template: aperture / input noise; `seed` seeds the middle
    /// slicer, seed+1 the low, seed+2 the high.
    analog::DffSampler::Config sampler{};
    double threshold_low = 0.0;
    double threshold_mid = 0.0;
    double threshold_high = 0.0;
    /// When false only the middle slicer runs and LSBs decode as 0 (the
    /// NRZ-degenerate configuration).
    bool extra_thresholds = true;
    /// DFE post-cursor taps (volts in the sink's input domain).  The
    /// feedback symbol is a pure tri-threshold comparator on the corrected
    /// value, weighted {-1, -1/3, +1/3, +1} for levels 0..3; requires the
    /// tri-threshold configuration (`extra_thresholds`).  Empty disables.
    std::vector<double> dfe_taps;
    digital::CdrConfig cdr{};
    std::uint64_t total_samples = 0;
    util::Second stream_t0{0.0};
    util::Second dt{1e-12};
    std::size_t block_samples = 16384;
  };

  explicit PamSamplerCdrSink(const Config& config);

  void consume(const BlockView& in);
  void finish();

  [[nodiscard]] const digital::OversamplingCdr& cdr() const { return cdr_; }
  /// Recovered bit stream: MSB/LSB rails interleaved per symbol (2 bits
  /// per recovered symbol, MSB first — the TX gray mapping's inverse).
  [[nodiscard]] std::vector<std::uint8_t> recovered_bits() const;
  [[nodiscard]] std::uint64_t metastable_count() const {
    return sampler_mid_.metastable_count() + sampler_low_.metastable_count() +
           sampler_high_.metastable_count();
  }

 private:
  void drain();
  [[nodiscard]] bool fetch(util::Second t, double* v) const;

  digital::MultiphaseClockGenerator clocks_;
  channel::JitterModel jitter_;
  analog::DffSampler sampler_mid_;
  analog::DffSampler sampler_low_;
  analog::DffSampler sampler_high_;
  bool extra_thresholds_;
  digital::OversamplingCdr cdr_;

  std::uint64_t total_;
  util::Second t0_;
  util::Second dt_;
  util::Second end_;
  util::Second ap_half_;

  std::vector<double> ring_;
  std::size_t mask_ = 0;
  std::size_t back_samples_ = 0;
  std::uint64_t appended_ = 0;
  double first_sample_ = 0.0;
  double last_sample_ = 0.0;
  bool has_first_ = false;
  bool final_ = false;

  std::uint64_t ui_ = 0;
  int phase_ = 0;
  std::optional<util::Second> pending_;
  bool done_ = false;

  // DFE feedback state, mirroring SamplerCdrSink: per-UI correction
  // latched at phase 0, symbol weight from a pure tri-comparator at the
  // CDR's pick phase, history shifted at the UI wrap.
  bool dfe_on_ = false;
  std::vector<double> dfe_taps_;
  std::vector<double> dfe_hist_;  // w in {+1, +1/3, -1/3, -1}, 0 pre-stream
  double dfe_corr_ = 0.0;
  int dfe_fb_phase_ = 0;
  bool dfe_fb_decided_ = false;
  double dfe_fb_w_ = 0.0;
};

}  // namespace serdes::pipe
