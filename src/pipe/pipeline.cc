#include "pipe/stage.h"

namespace serdes::pipe {

Stage& Pipeline::add(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *stages_.back();
}

BlockView Pipeline::process(const BlockView& in) {
  BlockView view = in;
  bool use_ping = true;
  for (auto& stage : stages_) {
    Block& out = use_ping ? ping_ : pong_;
    stage->process(view, out);
    view = out.view();
    use_ping = !use_ping;
  }
  return view;
}

void Pipeline::reset() {
  for (auto& stage : stages_) stage->reset();
}

}  // namespace serdes::pipe
