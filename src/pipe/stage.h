// Stage interface and pipeline composer for the streaming link datapath.
//
// A Stage maps one input block to one output block, carrying whatever
// state it needs (IIR filter memories, RNG streams, tap delay lines)
// across calls so that processing a stream block-by-block is bit-identical
// to processing it as one waveform.  A Pipeline chains stages and
// ping-pongs between two scratch blocks, so the whole datapath holds at
// most two blocks of samples regardless of stream length.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "pipe/block.h"

namespace serdes::pipe {

class Stage {
 public:
  virtual ~Stage() = default;

  /// Transforms one block.  `out` must be sized/stamped via
  /// `out.match(in)`; `in` stays valid only for the duration of the call.
  virtual void process(const BlockView& in, Block& out) = 0;

  /// Returns the stage to its start-of-stream state.
  virtual void reset() = 0;

  /// Diagnostic label.
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Runs blocks through an ordered chain of stages.  Owns the stages and
/// two scratch blocks (the only per-pipeline sample storage).
class Pipeline {
 public:
  /// Appends a stage; returns it for optional post-wiring.
  Stage& add(std::unique_ptr<Stage> stage);

  /// Pushes one block through every stage; the returned view aliases one
  /// of the internal scratch blocks and is valid until the next call.
  [[nodiscard]] BlockView process(const BlockView& in);

  /// Resets every stage to its start-of-stream state.
  void reset();

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  Block ping_;
  Block pong_;
};

}  // namespace serdes::pipe
