#include "pipe/stages.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dsp/fft.h"

namespace serdes::pipe {

// ---- LevelPulseSource -------------------------------------------------------

LevelPulseSource::LevelPulseSource(std::vector<double> levels,
                                   util::Second unit_interval,
                                   int samples_per_ui, util::Second rise_time,
                                   util::Second stream_t0, double fill_level)
    : levels_(std::move(levels)),
      ui_(unit_interval),
      dt_(unit_interval / static_cast<double>(samples_per_ui)),
      t0_(stream_t0),
      tr_(rise_time.value()),
      fill_(fill_level),
      total_(levels_.size() * static_cast<std::uint64_t>(samples_per_ui)) {
  if (samples_per_ui < 2) {
    throw std::invalid_argument("LevelPulseSource: need >= 2 samples per UI");
  }
}

std::size_t LevelPulseSource::produce(Block& out, std::size_t max_samples) {
  const std::uint64_t remaining = total_ - pos_;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_samples, remaining));
  if (n == 0) return 0;

  out.samples().resize(n);
  out.set_start_index(pos_);
  out.set_stream_t0(t0_);
  out.set_dt(dt_);
  double* samples = out.data();

  // Identical per-sample arithmetic to Waveform::nrz / TxFfe::shape, indexed
  // by the absolute stream position so block boundaries are invisible.  The
  // instants and their bit quotients are precomputed in two flat passes so
  // the multiply and the divide vectorize; IEEE division is correctly
  // rounded in vector form too, so the quotients (and thus every decision
  // below) are bit-identical to the scalar loop.
  const double ui = ui_.value();
  const double dt = dt_.value();
  const double tr = tr_;
  const double half_tr = tr / 2.0;
  scratch_t_.resize(n);
  scratch_q_.resize(n);
  double* ts = scratch_t_.data();
  double* qs = scratch_q_.data();
  const std::uint64_t pos = pos_;
  for (std::size_t j = 0; j < n; ++j) {
    ts[j] = (static_cast<double>(pos + j) + 0.5) * dt;
  }
  for (std::size_t j = 0; j < n; ++j) qs[j] = ts[j] / ui;

  const double* levels = levels_.data();
  const std::size_t nbits = levels_.size();
  for (std::size_t j = 0; j < n; ++j) {
    const double t = ts[j];
    const auto bit = static_cast<std::size_t>(qs[j]);
    if (bit >= nbits) {
      samples[j] = fill_;
      continue;
    }
    const double lvl = levels[bit];
    double v = lvl;
    if (tr > 0.0) {
      // Blend across the transition centred at the bit boundary.
      const double t_in_bit = t - static_cast<double>(bit) * ui;
      if (bit > 0 && t_in_bit < half_tr) {
        const double prev = levels[bit - 1];
        const double x = (t_in_bit + half_tr) / tr;  // 0..1 across the edge
        v = prev + (lvl - prev) * x;
      } else if (bit + 1 < nbits && t_in_bit > ui - half_tr) {
        const double next = levels[bit + 1];
        const double x = (t_in_bit - (ui - half_tr)) / tr;
        v = lvl + (next - lvl) * x;
      }
    }
    samples[j] = v;
  }

  pos_ += n;
  out.set_last(pos_ == total_);
  return n;
}

// ---- AwgnStage --------------------------------------------------------------

void AwgnStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  const double sigma = sigma_;
  if (sigma > 0.0) {
    util::Rng& rng = rng_;
    for (std::size_t i = 0; i < in.size; ++i) {
      samples[i] = in.data[i] + rng.gaussian(0.0, sigma);
    }
  } else {
    std::copy(in.data, in.data + in.size, samples);
  }
}

// ---- CtleStage --------------------------------------------------------------

void CtleStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  // Same arithmetic as the per-sample loop, as two span passes: the pole
  // runs with its state in registers, then the peaking combine vectorizes.
  // The low-passed signal goes through scratch (not `out`) so the stage
  // stays safe when `out` aliases `in`, like every other stage.
  scratch_.resize(in.size);
  lpf_.process_block(in.data, scratch_.data(), in.size);
  const double k = k_;
  const double* low = scratch_.data();
  for (std::size_t i = 0; i < in.size; ++i) {
    const double x = in.data[i];
    samples[i] = x + k * (x - low[i]);
  }
}

// ---- RfiFrontEndStage -------------------------------------------------------

void RfiFrontEndStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  const double delta = delta_;
  for (std::size_t i = 0; i < in.size; ++i) samples[i] = in.data[i] + delta;
  lpf_.process_block(samples, samples, in.size);
  // RfiStage::saturate with the loop-invariant loads hoisted; the formula
  // itself has one home (saturate_value).  tanh dominates what remains.
  const double bias = rfi_->bias();
  const double gain = rfi_->gain();
  const double half = rfi_->vdd() / 2.0;
  for (std::size_t i = 0; i < in.size; ++i) {
    samples[i] = analog::RfiStage::saturate_value(samples[i], bias, gain,
                                                  half);
  }
}

// ---- RestoringStage ---------------------------------------------------------

void RestoringStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  const analog::RestoringInverter& inv = *inv_;
  for (std::size_t i = 0; i < in.size; ++i) {
    samples[i] = inv.restore_level(in.data[i]);
  }
  pole_.process_block(samples, samples, in.size);
}

// ---- WaveformTapStage -------------------------------------------------------

void WaveformTapStage::process(const BlockView& in, Block& out) {
  out.match(in);
  std::copy(in.data, in.data + in.size, out.data());
  if (captured_.empty()) {
    t0_ = in.stream_t0;
    dt_ = in.dt;
  }
  if (captured_.size() < max_samples_) {
    const std::size_t room = max_samples_ - captured_.size();
    const std::size_t take = std::min(room, in.size);
    captured_.insert(captured_.end(), in.data, in.data + take);
  }
}

analog::Waveform WaveformTapStage::take() {
  return analog::Waveform{t0_, dt_, std::move(captured_)};
}

// ---- SamplerCdrSink ---------------------------------------------------------

SamplerCdrSink::SamplerCdrSink(const Config& config)
    : clocks_(config.bit_rate, config.oversampling, config.phase_offset,
              config.ppm_offset),
      jitter_(config.jitter),
      sampler_(config.sampler),
      cdr_(config.cdr),
      total_(config.total_samples),
      t0_(config.stream_t0),
      dt_(config.dt),
      end_(config.stream_t0 +
           config.dt * static_cast<double>(config.total_samples)),
      ap_half_(config.sampler.aperture * 0.5),
      dfe_on_(!config.dfe_taps.empty()),
      dfe_taps_(config.dfe_taps),
      dfe_hist_(config.dfe_taps.size(), 0.0),
      dfe_thr_(config.sampler.threshold) {
  // The rolling window must span one appended block plus the worst-case
  // backward reach of a jittered aperture edge; anything older can be
  // discarded because instants are evaluated in order, as soon as their
  // forward neighbourhood arrives.  Power-of-two capacity so the absolute
  // index wrap is a mask, not a division.
  const double dt_s = config.dt.value();
  const double back_span_s = config.sampler.aperture.value() +
                             24.0 * config.jitter.random_rms.value() +
                             2.0 * config.jitter.sinusoidal_amplitude.value() +
                             4.0 * util::period(config.bit_rate).value();
  back_samples_ =
      static_cast<std::size_t>(back_span_s / dt_s) + 64;
  ring_.assign(dsp::next_pow2(std::max<std::size_t>(config.block_samples, 1) +
                              back_samples_),
               0.0);
  mask_ = ring_.size() - 1;
  if (total_ == 0) done_ = true;
}

void SamplerCdrSink::consume(const BlockView& in) {
  if (in.size + back_samples_ > ring_.size()) {
    // A block larger than the sizing hint arrived: grow the window before
    // writing, re-placing the live span under the new modulus, so oversized
    // blocks can never overwrite samples pending instants still need.
    std::vector<double> bigger(dsp::next_pow2(in.size + back_samples_), 0.0);
    const std::size_t new_mask = bigger.size() - 1;
    const std::uint64_t live =
        std::min<std::uint64_t>(appended_, ring_.size());
    for (std::uint64_t k = appended_ - live; k < appended_; ++k) {
      bigger[k & new_mask] = ring_[k & mask_];
    }
    ring_ = std::move(bigger);
    mask_ = new_mask;
  }
  double* ring = ring_.data();
  const std::size_t mask = mask_;
  const std::uint64_t start = in.start_index;
  for (std::size_t i = 0; i < in.size; ++i) {
    ring[(start + i) & mask] = in.data[i];
  }
  if (in.size > 0) {
    if (in.start_index == 0) {
      first_sample_ = in.data[0];
      has_first_ = true;
    }
    appended_ = in.start_index + in.size;
    if (appended_ == total_) {
      last_sample_ = in.data[in.size - 1];
      final_ = true;
    }
  }
  drain();
}

void SamplerCdrSink::finish() {
  if (!final_ && total_ > 0 && appended_ == total_) {
    last_sample_ = ring_[(total_ - 1) & mask_];
    final_ = true;
  }
  drain();
}

bool SamplerCdrSink::fetch(util::Second t, double* v) const {
  // Fused availability test + Waveform::value_at over the logical stream:
  // one (t - t0)/dt per time point instead of one for the test and one for
  // the read.  The arithmetic (and therefore every interpolated value) is
  // identical to the unfused pair.
  const double idx = (t - t0_) / dt_;
  if (idx <= 0.0) {
    if (!has_first_) return false;
    *v = first_sample_;
    return true;
  }
  const auto lo = static_cast<std::uint64_t>(idx);
  if (lo + 1 >= total_) {
    if (!final_) return false;
    *v = last_sample_;
    return true;
  }
  if (lo + 1 >= appended_) return false;
  const double frac = idx - static_cast<double>(lo);
  const double a = ring_[lo & mask_];
  const double b = ring_[(lo + 1) & mask_];
  *v = a + frac * (b - a);
  return true;
}

void SamplerCdrSink::drain() {
  while (!done_) {
    if (!pending_) {
      if (phase_ == 0) {
        const util::Second ui_start = clocks_.instant(ui_, 0);
        if (ui_start >= end_) {
          done_ = true;
          break;
        }
        if (dfe_on_) {
          // Latch this UI's feedback correction and decision phase before
          // its first instant is generated; both stay fixed across the
          // whole UI even when instants straddle block boundaries.
          double corr = 0.0;
          for (std::size_t k = 0; k < dfe_taps_.size(); ++k) {
            corr += dfe_taps_[k] * dfe_hist_[k];
          }
          dfe_corr_ = corr;
          dfe_fb_phase_ = cdr_.decision_phase();
          dfe_fb_decided_ = false;
        }
      }
      // Perturb exactly once per instant; the jitter RNG stream therefore
      // advances in the same order as the batch sampling loop even when an
      // instant has to wait for the next block.
      pending_ = jitter_.perturb(clocks_.instant(ui_, phase_));
    }
    const util::Second t = *pending_;
    double v;
    double v_before;
    double v_after;
    if (!fetch(t, &v) || !fetch(t - ap_half_, &v_before) ||
        !fetch(t + ap_half_, &v_after)) {
      break;  // wait for more samples (or the end of the stream)
    }
    if (dfe_on_) {
      // The per-UI correction shifts the whole summing node, so all three
      // aperture fetches move together (a zero correction is bit-exact:
      // v - 0.0 == v) and the metastability crossing product is preserved.
      v -= dfe_corr_;
      v_before -= dfe_corr_;
      v_after -= dfe_corr_;
      if (!dfe_fb_decided_ && phase_ >= dfe_fb_phase_) {
        dfe_fb_w_ = v > dfe_thr_ ? 1.0 : -1.0;  // pure comparator, no RNG
        dfe_fb_decided_ = true;
      }
    }
    cdr_.push(sampler_.decide(v, v_before, v_after));
    pending_.reset();
    if (++phase_ == clocks_.phases()) {
      phase_ = 0;
      ++ui_;
      if (dfe_on_) {
        for (std::size_t k = dfe_taps_.size() - 1; k > 0; --k) {
          dfe_hist_[k] = dfe_hist_[k - 1];
        }
        dfe_hist_[0] = dfe_fb_decided_ ? dfe_fb_w_ : 0.0;
      }
    }
  }
}

}  // namespace serdes::pipe
