#include "pipe/stages.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace serdes::pipe {

// ---- LevelPulseSource -------------------------------------------------------

LevelPulseSource::LevelPulseSource(std::vector<double> levels,
                                   util::Second unit_interval,
                                   int samples_per_ui, util::Second rise_time,
                                   util::Second stream_t0, double fill_level)
    : levels_(std::move(levels)),
      ui_(unit_interval),
      dt_(unit_interval / static_cast<double>(samples_per_ui)),
      t0_(stream_t0),
      tr_(rise_time.value()),
      fill_(fill_level),
      total_(levels_.size() * static_cast<std::uint64_t>(samples_per_ui)) {
  if (samples_per_ui < 2) {
    throw std::invalid_argument("LevelPulseSource: need >= 2 samples per UI");
  }
}

std::size_t LevelPulseSource::produce(Block& out, std::size_t max_samples) {
  const std::uint64_t remaining = total_ - pos_;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_samples, remaining));
  if (n == 0) return 0;

  out.samples().resize(n);
  out.set_start_index(pos_);
  out.set_stream_t0(t0_);
  out.set_dt(dt_);
  double* samples = out.data();

  // Identical per-sample arithmetic to Waveform::nrz / TxFfe::shape, indexed
  // by the absolute stream position so block boundaries are invisible.
  const double ui = ui_.value();
  const double tr = tr_;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t i = pos_ + j;
    const double t = (static_cast<double>(i) + 0.5) * dt_.value();
    const auto bit = static_cast<std::size_t>(t / ui);
    if (bit >= levels_.size()) {
      samples[j] = fill_;
      continue;
    }
    const double lvl = levels_[bit];
    double v = lvl;
    if (tr > 0.0) {
      // Blend across the transition centred at the bit boundary.
      const double t_in_bit = t - static_cast<double>(bit) * ui;
      if (bit > 0 && t_in_bit < tr / 2.0) {
        const double prev = levels_[bit - 1];
        const double x = (t_in_bit + tr / 2.0) / tr;  // 0..1 across the edge
        v = prev + (lvl - prev) * x;
      } else if (bit + 1 < levels_.size() && t_in_bit > ui - tr / 2.0) {
        const double next = levels_[bit + 1];
        const double x = (t_in_bit - (ui - tr / 2.0)) / tr;
        v = lvl + (next - lvl) * x;
      }
    }
    samples[j] = v;
  }

  pos_ += n;
  out.set_last(pos_ == total_);
  return n;
}

// ---- AwgnStage --------------------------------------------------------------

void AwgnStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  if (sigma_ > 0.0) {
    for (std::size_t i = 0; i < in.size; ++i) {
      samples[i] = in.data[i] + rng_.gaussian(0.0, sigma_);
    }
  } else {
    std::copy(in.data, in.data + in.size, samples);
  }
}

// ---- CtleStage --------------------------------------------------------------

void CtleStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  for (std::size_t i = 0; i < in.size; ++i) {
    const double x = in.data[i];
    const double low = lpf_.step(x);
    samples[i] = x + k_ * (x - low);
  }
}

// ---- RfiFrontEndStage -------------------------------------------------------

void RfiFrontEndStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  for (std::size_t i = 0; i < in.size; ++i) {
    const double biased = in.data[i] + delta_;
    samples[i] = rfi_->saturate(lpf_.step(biased));
  }
}

// ---- RestoringStage ---------------------------------------------------------

void RestoringStage::process(const BlockView& in, Block& out) {
  out.match(in);
  double* samples = out.data();
  for (std::size_t i = 0; i < in.size; ++i) {
    samples[i] = pole_.step(inv_->restore_level(in.data[i]));
  }
}

// ---- WaveformTapStage -------------------------------------------------------

void WaveformTapStage::process(const BlockView& in, Block& out) {
  out.match(in);
  std::copy(in.data, in.data + in.size, out.data());
  if (captured_.empty()) {
    t0_ = in.stream_t0;
    dt_ = in.dt;
  }
  if (captured_.size() < max_samples_) {
    const std::size_t room = max_samples_ - captured_.size();
    const std::size_t take = std::min(room, in.size);
    captured_.insert(captured_.end(), in.data, in.data + take);
  }
}

analog::Waveform WaveformTapStage::take() {
  return analog::Waveform{t0_, dt_, std::move(captured_)};
}

// ---- SamplerCdrSink ---------------------------------------------------------

SamplerCdrSink::SamplerCdrSink(const Config& config)
    : clocks_(config.bit_rate, config.oversampling, config.phase_offset,
              config.ppm_offset),
      jitter_(config.jitter),
      sampler_(config.sampler),
      cdr_(config.cdr),
      total_(config.total_samples),
      t0_(config.stream_t0),
      dt_(config.dt),
      end_(config.stream_t0 +
           config.dt * static_cast<double>(config.total_samples)),
      ap_half_(config.sampler.aperture * 0.5) {
  // The rolling window must span one appended block plus the worst-case
  // backward reach of a jittered aperture edge; anything older can be
  // discarded because instants are evaluated in order, as soon as their
  // forward neighbourhood arrives.
  const double dt_s = config.dt.value();
  const double back_span_s = config.sampler.aperture.value() +
                             24.0 * config.jitter.random_rms.value() +
                             2.0 * config.jitter.sinusoidal_amplitude.value() +
                             4.0 * util::period(config.bit_rate).value();
  back_samples_ =
      static_cast<std::size_t>(back_span_s / dt_s) + 64;
  ring_.assign(std::max<std::size_t>(config.block_samples, 1) + back_samples_,
               0.0);
  if (total_ == 0) done_ = true;
}

void SamplerCdrSink::consume(const BlockView& in) {
  if (in.size + back_samples_ > ring_.size()) {
    // A block larger than the sizing hint arrived: grow the window before
    // writing, re-placing the live span under the new modulus, so oversized
    // blocks can never overwrite samples pending instants still need.
    std::vector<double> bigger(in.size + back_samples_, 0.0);
    const std::uint64_t live =
        std::min<std::uint64_t>(appended_, ring_.size());
    for (std::uint64_t k = appended_ - live; k < appended_; ++k) {
      bigger[k % bigger.size()] = ring_[k % ring_.size()];
    }
    ring_ = std::move(bigger);
  }
  const std::size_t w = ring_.size();
  for (std::size_t i = 0; i < in.size; ++i) {
    ring_[(in.start_index + i) % w] = in.data[i];
  }
  if (in.size > 0) {
    if (in.start_index == 0) {
      first_sample_ = in.data[0];
      has_first_ = true;
    }
    appended_ = in.start_index + in.size;
    if (appended_ == total_) {
      last_sample_ = in.data[in.size - 1];
      final_ = true;
    }
  }
  drain();
}

void SamplerCdrSink::finish() {
  if (!final_ && total_ > 0 && appended_ == total_) {
    last_sample_ = ring_[(total_ - 1) % ring_.size()];
    final_ = true;
  }
  drain();
}

bool SamplerCdrSink::available(util::Second t) const {
  const double idx = (t - t0_) / dt_;
  if (idx <= 0.0) return has_first_;
  const auto lo = static_cast<std::uint64_t>(idx);
  if (lo + 1 >= total_) return final_;
  return lo + 1 < appended_;
}

double SamplerCdrSink::value_at(util::Second t) const {
  // Mirrors Waveform::value_at over the logical full-stream waveform, with
  // samples fetched from the rolling window by absolute index.
  const double idx = (t - t0_) / dt_;
  if (idx <= 0.0) return first_sample_;
  const auto lo = static_cast<std::uint64_t>(idx);
  if (lo + 1 >= total_) return last_sample_;
  const double frac = idx - static_cast<double>(lo);
  const std::size_t w = ring_.size();
  const double a = ring_[lo % w];
  const double b = ring_[(lo + 1) % w];
  return a + frac * (b - a);
}

void SamplerCdrSink::drain() {
  while (!done_) {
    if (!pending_) {
      if (phase_ == 0) {
        const util::Second ui_start = clocks_.instant(ui_, 0);
        if (ui_start >= end_) {
          done_ = true;
          break;
        }
      }
      // Perturb exactly once per instant; the jitter RNG stream therefore
      // advances in the same order as the batch sampling loop even when an
      // instant has to wait for the next block.
      pending_ = jitter_.perturb(clocks_.instant(ui_, phase_));
    }
    const util::Second t = *pending_;
    if (!available(t) || !available(t - ap_half_) ||
        !available(t + ap_half_)) {
      break;  // wait for more samples (or the end of the stream)
    }
    const double v = value_at(t);
    const double v_before = value_at(t - ap_half_);
    const double v_after = value_at(t + ap_half_);
    cdr_.push(sampler_.decide(v, v_before, v_after));
    pending_.reset();
    if (++phase_ == clocks_.phases()) {
      phase_ = 0;
      ++ui_;
    }
  }
}

}  // namespace serdes::pipe
