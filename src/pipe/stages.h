// Concrete streaming stages for the TX -> channel -> noise -> EQ -> RX
// datapath.
//
// Each stage reproduces the arithmetic of its whole-waveform batch
// counterpart exactly, sample by sample, while carrying state (filter
// memories, RNG streams, rolling sample windows) across blocks — so a
// stream processed at any block size is bit-identical to the batch path.
//
//   LevelPulseSource   — NRZ / TX-FFE pulse shaper (Waveform::nrz and
//                        TxFfe::shape, blockwise)
//   ChannelStage       — wraps a channel::Channel::Stream
//   AwgnStage          — Waveform::add_noise with a carried RNG
//   CtleStage          — channel::RxCtle::equalize with a carried pole
//   RfiFrontEndStage   — analog::RfiStage::process given the stream DC mean
//   RestoringStage     — analog::RestoringInverter::process, blockwise
//   WaveformTapStage   — pass-through probe retaining the diagnostic window
//   SamplerCdrSink     — multiphase sampling + DFF + oversampling CDR over a
//                        rolling block window
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analog/filters.h"
#include "analog/rfi.h"
#include "analog/sampler.h"
#include "analog/waveform.h"
#include "channel/channel.h"
#include "channel/noise.h"
#include "digital/cdr.h"
#include "digital/sampling.h"
#include "pipe/stage.h"
#include "util/random.h"
#include "util/units.h"

namespace serdes::pipe {

/// Block source: interpolates per-bit launch levels into the line waveform
/// exactly like Waveform::nrz / TxFfe::shape (linear-ramp edges of
/// `rise_time` centred on bit boundaries).
class LevelPulseSource {
 public:
  LevelPulseSource(std::vector<double> levels, util::Second unit_interval,
                   int samples_per_ui, util::Second rise_time,
                   util::Second stream_t0, double fill_level = 0.0);

  /// Fills `out` with the next up-to-`max_samples` samples; returns the
  /// count produced (0 once the stream is exhausted).  Marks the block
  /// `last` when it ends the stream.
  std::size_t produce(Block& out, std::size_t max_samples);

  void reset() { pos_ = 0; }

  [[nodiscard]] std::uint64_t total_samples() const { return total_; }
  [[nodiscard]] util::Second dt() const { return dt_; }
  [[nodiscard]] util::Second stream_t0() const { return t0_; }

 private:
  std::vector<double> levels_;
  util::Second ui_;
  util::Second dt_;
  util::Second t0_;
  double tr_;
  double fill_;
  std::uint64_t total_;
  std::uint64_t pos_ = 0;
  // Per-block instant / bit-quotient scratch (flat passes vectorize the
  // multiply and divide; see produce()).
  std::vector<double> scratch_t_;
  std::vector<double> scratch_q_;
};

/// Streams blocks through a channel model (carrying its filter state).
class ChannelStage final : public Stage {
 public:
  explicit ChannelStage(std::unique_ptr<channel::Channel::Stream> stream)
      : stream_(std::move(stream)) {}

  void process(const BlockView& in, Block& out) override {
    out.match(in);
    stream_->transmit_block(in.data, out.data(), in.size);
  }
  void reset() override { stream_->reset(); }
  [[nodiscard]] std::string_view name() const override { return "channel"; }

 private:
  std::unique_ptr<channel::Channel::Stream> stream_;
};

/// Additive white gaussian noise with a carried deterministic RNG —
/// blockwise Waveform::add_noise.
class AwgnStage final : public Stage {
 public:
  AwgnStage(double sigma, std::uint64_t seed)
      : sigma_(sigma), seed_(seed), rng_(seed) {}

  void process(const BlockView& in, Block& out) override;
  void reset() override { rng_ = util::Rng(seed_); }
  [[nodiscard]] std::string_view name() const override { return "awgn"; }

 private:
  double sigma_;
  std::uint64_t seed_;
  util::Rng rng_;
};

/// CTLE peaking stage: out = x + k*(x - LPF(x)), pole state carried.
class CtleStage final : public Stage {
 public:
  CtleStage(util::Decibel boost, util::Hertz pole, util::Second dt)
      : k_(util::db_to_amplitude(boost) - 1.0), lpf_(pole, dt) {}

  void process(const BlockView& in, Block& out) override;
  void reset() override { lpf_.reset(); }
  [[nodiscard]] std::string_view name() const override { return "ctle"; }

 private:
  double k_;
  analog::OnePoleLowPass lpf_;
  std::vector<double> scratch_;  // low-passed block (keeps in/out aliasable)
};

/// RFI front end: DC removal (the stream mean, supplied via set_mean once
/// known), output pole, saturating VTC — blockwise analog::RfiStage.
class RfiFrontEndStage final : public Stage {
 public:
  RfiFrontEndStage(const analog::RfiStage& rfi, util::Second dt)
      : rfi_(&rfi), lpf_(rfi.bandwidth(), dt) {}

  /// The full-stream DC mean the batch path subtracts; must be set before
  /// the first block (the link driver measures it in a first streaming
  /// pass over the cheap front half of the datapath).
  void set_mean(double mean) { delta_ = -mean; }

  void process(const BlockView& in, Block& out) override;
  void reset() override { lpf_.reset(); }
  [[nodiscard]] std::string_view name() const override { return "rfi"; }

 private:
  const analog::RfiStage* rfi_;
  analog::OnePoleLowPass lpf_;
  double delta_ = 0.0;
};

/// Rail-restoring inverter: VTC lookup then output pole, state carried.
class RestoringStage final : public Stage {
 public:
  RestoringStage(const analog::RestoringInverter& inv, util::Second dt)
      : inv_(&inv), pole_(inv.bandwidth(), dt) {}

  void process(const BlockView& in, Block& out) override;
  void reset() override { pole_.reset(); }
  [[nodiscard]] std::string_view name() const override { return "restore"; }

 private:
  const analog::RestoringInverter* inv_;
  analog::OnePoleLowPass pole_;
};

/// Pass-through probe that retains up to `max_samples` of whatever flows
/// past it — the optional waveform-capture tap.  The link only inserts
/// taps while diagnostics capture is on (the first chunk of a BER run), so
/// bulk streaming never accumulates waveform memory.
class WaveformTapStage final : public Stage {
 public:
  explicit WaveformTapStage(
      std::size_t max_samples = static_cast<std::size_t>(-1))
      : max_samples_(max_samples) {}

  void process(const BlockView& in, Block& out) override;
  void reset() override { captured_.clear(); }
  [[nodiscard]] std::string_view name() const override { return "tap"; }

  /// Moves the captured window out as a Waveform (stream t0 / dt stamped).
  [[nodiscard]] analog::Waveform take();

 private:
  std::size_t max_samples_;
  std::vector<double> captured_;
  util::Second t0_{0.0};
  util::Second dt_{1e-12};
};

/// Terminal sink: multiphase sampling instants (with jitter), DFF decision
/// and oversampling CDR, evaluated incrementally over a rolling window of
/// the restored waveform.  Holds O(block + aperture/jitter span) samples
/// regardless of stream length, and reproduces digital::sample_waveform +
/// OversamplingCdr::recover bit-for-bit (including the end-of-waveform
/// clamping of Waveform::value_at).
class SamplerCdrSink {
 public:
  struct Config {
    util::Hertz bit_rate;
    int oversampling = 5;
    util::Second phase_offset{0.0};
    double ppm_offset = 0.0;
    channel::JitterModel::Config jitter{};
    analog::DffSampler::Config sampler{};
    digital::CdrConfig cdr{};
    /// DFE post-cursor taps (volts in the sink's input domain).  Tap k
    /// is weighted by the feedback decision from k+1 UIs ago; empty
    /// disables the feedback path entirely (and all-zero taps are
    /// bit-identical to it — the correction is exactly 0.0).
    std::vector<double> dfe_taps;
    /// Stream geometry (known up front: framed bits x samples per UI).
    std::uint64_t total_samples = 0;
    util::Second stream_t0{0.0};
    util::Second dt{1e-12};
    /// Block size hint used to size the rolling window.
    std::size_t block_samples = 16384;
  };

  explicit SamplerCdrSink(const Config& config);

  /// Appends one block and evaluates every sampling instant whose needed
  /// neighbourhood is now available.
  void consume(const BlockView& in);

  /// Evaluates the remaining instants with end-of-stream clamping.
  void finish();

  [[nodiscard]] const digital::OversamplingCdr& cdr() const { return cdr_; }
  [[nodiscard]] std::uint64_t metastable_count() const {
    return sampler_.metastable_count();
  }

 private:
  void drain();
  /// Fused availability test + logical-stream interpolation: writes the
  /// Waveform::value_at-identical sample into `*v` and returns true iff
  /// the instant's neighbourhood has arrived (or end-of-stream clamping
  /// applies).
  [[nodiscard]] bool fetch(util::Second t, double* v) const;

  digital::MultiphaseClockGenerator clocks_;
  channel::JitterModel jitter_;
  analog::DffSampler sampler_;
  digital::OversamplingCdr cdr_;

  std::uint64_t total_;
  util::Second t0_;
  util::Second dt_;
  util::Second end_;
  util::Second ap_half_;

  std::vector<double> ring_;  // power-of-two capacity
  std::size_t mask_ = 0;      // ring_.size() - 1
  std::size_t back_samples_ = 0;
  std::uint64_t appended_ = 0;
  double first_sample_ = 0.0;
  double last_sample_ = 0.0;
  bool has_first_ = false;
  bool final_ = false;

  std::uint64_t ui_ = 0;
  int phase_ = 0;
  std::optional<util::Second> pending_;
  bool done_ = false;

  // ---- Decision-feedback equalizer state -----------------------------------
  // The correction for UI n is latched once, when the UI's first instant
  // is generated: c_n = sum_k taps[k] * w_{n-1-k}, a per-UI step function
  // subtracted from every fetched value of the UI (all three aperture
  // fetches of every phase), so the glitch-filter votes see one
  // consistent summing-node waveform.  The feedback decision w_n comes
  // from a pure comparator (no RNG draw — the sampler's noise/metastable
  // streams stay untouched) at the CDR's current pick phase, and enters
  // the history at the UI wrap: strictly causal.
  bool dfe_on_ = false;
  std::vector<double> dfe_taps_;
  std::vector<double> dfe_hist_;  // w_{n-1}, w_{n-2}, ... in {+1,-1}, 0 pre-stream
  double dfe_thr_ = 0.0;          // comparator threshold (sampler's)
  double dfe_corr_ = 0.0;
  int dfe_fb_phase_ = 0;
  bool dfe_fb_decided_ = false;
  double dfe_fb_w_ = 0.0;
};

}  // namespace serdes::pipe
