#include "sim/clock.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace serdes::sim {

Clock::Clock(Kernel& kernel, Wire& out, const Config& config)
    : kernel_(&kernel),
      out_(&out),
      config_(config),
      rng_(config.jitter_seed) {
  if (config_.period.femtoseconds() == 0) {
    throw std::invalid_argument("Clock: zero period");
  }
  if (config_.duty_cycle <= 0.0 || config_.duty_cycle >= 1.0) {
    throw std::invalid_argument("Clock: duty cycle must be in (0,1)");
  }
  const auto period_fs = static_cast<double>(config_.period.femtoseconds());
  high_time_ = SimTime{static_cast<std::uint64_t>(
      std::llround(period_fs * config_.duty_cycle))};
  low_time_ = config_.period - high_time_;
}

void Clock::start() {
  out_->init(false);
  schedule_rise(config_.phase_offset);
}

SimTime Clock::jittered(SimTime nominal) {
  if (config_.jitter_rms_fs <= 0.0) return nominal;
  const double jitter = rng_.gaussian(0.0, config_.jitter_rms_fs);
  const double fs = std::max(
      1.0, static_cast<double>(nominal.femtoseconds()) + jitter);
  return SimTime{static_cast<std::uint64_t>(std::llround(fs))};
}

void Clock::schedule_rise(SimTime delay) {
  kernel_->schedule(jittered(delay), [this] {
    out_->write(true);
    ++rising_edges_;
    schedule_fall(high_time_);
  });
}

void Clock::schedule_fall(SimTime delay) {
  kernel_->schedule(delay, [this] {
    out_->write(false);
    schedule_rise(low_time_);
  });
}

}  // namespace serdes::sim
