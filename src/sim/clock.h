// Clock generators for the simulation kernel.
//
// Supports phase-offset clocks (the CDR's multi-phase sampling clocks are N
// copies of the reference shifted by UI/N) and optional cycle-to-cycle
// gaussian jitter for stress tests.
#pragma once

#include <cstdint>

#include "sim/kernel.h"
#include "sim/signal.h"
#include "util/random.h"

namespace serdes::sim {

class Clock {
 public:
  struct Config {
    SimTime period{sim_ps(500)};   // 2 GHz default
    SimTime phase_offset{sim_fs(0)};
    double duty_cycle = 0.5;
    /// RMS cycle-to-cycle jitter in femtoseconds (0 = ideal clock).
    double jitter_rms_fs = 0.0;
    std::uint64_t jitter_seed = 1;
  };

  /// Creates a clock driving `out`. The first rising edge happens at
  /// phase_offset (plus jitter); the signal starts low.
  Clock(Kernel& kernel, Wire& out, const Config& config);

  /// Starts toggling. Must be called once before the simulation runs.
  void start();

  [[nodiscard]] std::uint64_t rising_edges() const { return rising_edges_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void schedule_rise(SimTime delay);
  void schedule_fall(SimTime delay);
  SimTime jittered(SimTime nominal);

  Kernel* kernel_;
  Wire* out_;
  Config config_;
  util::Rng rng_;
  std::uint64_t rising_edges_ = 0;
  SimTime high_time_{0};
  SimTime low_time_{0};
};

}  // namespace serdes::sim
