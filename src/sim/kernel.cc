#include "sim/kernel.h"

#include <stdexcept>
#include <utility>

namespace serdes::sim {

void Kernel::schedule(SimTime delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void Kernel::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::logic_error("Kernel::schedule_at: event scheduled in the past");
  }
  if (when == now_) {
    // Same-timestamp work joins the next delta cycle rather than creating a
    // stale timed entry at `now_` that would never be popped again.
    next_eval_queue_.push_back(std::move(fn));
    return;
  }
  timed_[when].push_back(std::move(fn));
}

void Kernel::schedule_delta(Callback fn) {
  next_eval_queue_.push_back(std::move(fn));
}

void Kernel::schedule_update(Callback fn) {
  update_queue_.push_back(std::move(fn));
}

void Kernel::run_delta_loop() {
  // Alternate evaluation and update phases until the timestamp quiesces.
  while (!eval_queue_.empty() || !update_queue_.empty() ||
         !next_eval_queue_.empty()) {
    ++delta_cycles_;
    if (eval_queue_.empty()) {
      eval_queue_.swap(next_eval_queue_);
    }
    // Evaluation phase: processes run, writing signals (which enqueue
    // updates) and scheduling future events.
    std::vector<Callback> evals;
    evals.swap(eval_queue_);
    for (auto& fn : evals) fn();
    // Update phase: commit all signal writes; sensitivity callbacks land in
    // next_eval_queue_ for the following delta.
    std::vector<Callback> updates;
    updates.swap(update_queue_);
    for (auto& fn : updates) fn();
    if (eval_queue_.empty()) {
      eval_queue_.swap(next_eval_queue_);
    }
  }
}

bool Kernel::step() {
  if (timed_.empty()) return false;
  auto it = timed_.begin();
  now_ = it->first;
  eval_queue_ = std::move(it->second);
  timed_.erase(it);
  run_delta_loop();
  return true;
}

std::uint64_t Kernel::run_until(SimTime end) {
  stop_requested_ = false;
  std::uint64_t steps = 0;
  // Work staged at the current timestamp before the run started (e.g. a
  // clock whose first edge has zero delay) must execute first.
  run_delta_loop();
  while (!timed_.empty() && !stop_requested_) {
    if (timed_.begin()->first > end) break;
    step();
    ++steps;
  }
  if (now_ < end) now_ = end;
  return steps;
}

}  // namespace serdes::sim
