// Event-driven simulation kernel.
//
// A miniature SystemC-like scheduler: timed events are queued on a
// femtosecond timeline; within one timestamp, evaluation and update phases
// alternate as delta cycles so that non-blocking signal semantics (all
// flip-flops sample their D inputs before any Q output moves) hold exactly
// as in an HDL simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/time.h"

namespace serdes::sim {

class Kernel {
 public:
  using Callback = std::function<void()>;

  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time (evaluation phase).
  void schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at an absolute timestamp (must be >= now()).
  void schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` in the next evaluation phase of the *current* timestamp
  /// (i.e. after the pending update phase) — a delta-cycle notification.
  void schedule_delta(Callback fn);

  /// Registers a signal-commit action for the update phase of the current
  /// delta cycle.  Used by Signal<T>::write.
  void schedule_update(Callback fn);

  /// Runs until the event queue drains or `end` is passed.
  /// Returns the number of timestamps processed.
  std::uint64_t run_until(SimTime end);

  /// Runs a single timestamp (all its delta cycles). Returns false when the
  /// queue is empty.
  bool step();

  /// True if no timed events remain.
  [[nodiscard]] bool idle() const { return timed_.empty(); }

  /// Total delta cycles executed (for diagnostics and tests).
  [[nodiscard]] std::uint64_t delta_cycles() const { return delta_cycles_; }

  /// Stops an in-progress run_until at the end of the current timestamp.
  void request_stop() { stop_requested_ = true; }

 private:
  void run_delta_loop();

  SimTime now_{0};
  std::map<SimTime, std::vector<Callback>> timed_;
  std::vector<Callback> eval_queue_;
  std::vector<Callback> next_eval_queue_;
  std::vector<Callback> update_queue_;
  std::uint64_t delta_cycles_ = 0;
  bool stop_requested_ = false;
};

}  // namespace serdes::sim
