// HDL-style signals with non-blocking update semantics.
//
// Signal<T>::write stages a new value; the kernel commits it in the update
// phase of the current delta cycle, after every process at this timestamp
// has observed the old value.  Edge-sensitive callbacks fire in the next
// evaluation phase, exactly like always @(posedge clk) blocks.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/kernel.h"

namespace serdes::sim {

template <class T>
class Signal {
 public:
  Signal(Kernel& kernel, T initial = T{})
      : kernel_(&kernel), value_(initial), pending_(initial) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Current committed value.
  [[nodiscard]] const T& read() const { return value_; }

  /// Stages `v` for commit at the end of this delta cycle.
  void write(T v) {
    pending_ = std::move(v);
    if (!update_scheduled_) {
      update_scheduled_ = true;
      kernel_->schedule_update([this] { commit(); });
    }
  }

  /// Immediately sets the value without delta semantics.  Only for
  /// initialisation before the simulation starts.
  void init(T v) {
    value_ = v;
    pending_ = std::move(v);
  }

  /// Registers a callback invoked (next delta) whenever the committed value
  /// changes.  The callback receives old and new values.
  void on_change(std::function<void(const T&, const T&)> fn) {
    watchers_.push_back(std::move(fn));
  }

  /// Registers a callback for value changes, ignoring the values.
  void on_change(std::function<void()> fn) {
    watchers_.push_back(
        [fn = std::move(fn)](const T&, const T&) { fn(); });
  }

  [[nodiscard]] Kernel& kernel() const { return *kernel_; }

 private:
  void commit() {
    update_scheduled_ = false;
    if (pending_ == value_) return;
    T old = std::exchange(value_, pending_);
    for (auto& w : watchers_) {
      kernel_->schedule_delta(
          [w, old, now = value_] { w(old, now); });
    }
  }

  Kernel* kernel_;
  T value_;
  T pending_;
  bool update_scheduled_ = false;
  std::vector<std::function<void(const T&, const T&)>> watchers_;
};

/// Boolean signal helpers for clock/data lines.
using Wire = Signal<bool>;

/// Registers `fn` to run on every rising edge of `wire`.
inline void on_posedge(Wire& wire, std::function<void()> fn) {
  wire.on_change([fn = std::move(fn)](const bool& was, const bool& is) {
    if (!was && is) fn();
  });
}

/// Registers `fn` to run on every falling edge of `wire`.
inline void on_negedge(Wire& wire, std::function<void()> fn) {
  wire.on_change([fn = std::move(fn)](const bool& was, const bool& is) {
    if (was && !is) fn();
  });
}

}  // namespace serdes::sim
