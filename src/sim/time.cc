#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace serdes::sim {

SimTime SimTime::from_seconds(double s) {
  if (s <= 0.0) return SimTime{0};
  return SimTime{static_cast<std::uint64_t>(std::llround(s * 1e15))};
}

std::string SimTime::to_string() const {
  char buf[48];
  if (fs_ >= 1000000ull) {
    std::snprintf(buf, sizeof buf, "%.3f ns", static_cast<double>(fs_) / 1e6);
  } else if (fs_ >= 1000ull) {
    std::snprintf(buf, sizeof buf, "%.3f ps", static_cast<double>(fs_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu fs",
                  static_cast<unsigned long long>(fs_));
  }
  return buf;
}

}  // namespace serdes::sim
