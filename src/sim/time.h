// Discrete simulation time.
//
// The kernel advances in integer femtoseconds.  64-bit femtoseconds cover
// ~5.1 hours of simulated time, far beyond any link run, while avoiding the
// floating-point comparison hazards of double-valued event times.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"

namespace serdes::sim {

/// Integer simulation timestamp in femtoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::uint64_t femtoseconds)
      : fs_(femtoseconds) {}

  [[nodiscard]] constexpr std::uint64_t femtoseconds() const { return fs_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(fs_) * 1e-15;
  }
  [[nodiscard]] util::Second to_unit() const {
    return util::seconds(to_seconds());
  }

  static SimTime from_seconds(double s);
  static SimTime from_unit(util::Second s) { return from_seconds(s.value()); }

  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.fs_ + b.fs_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.fs_ - b.fs_};
  }
  friend constexpr SimTime operator*(SimTime a, std::uint64_t k) {
    return SimTime{a.fs_ * k};
  }
  constexpr SimTime& operator+=(SimTime o) {
    fs_ += o.fs_;
    return *this;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t fs_ = 0;
};

constexpr SimTime sim_fs(std::uint64_t v) { return SimTime{v}; }
constexpr SimTime sim_ps(std::uint64_t v) { return SimTime{v * 1000ull}; }
constexpr SimTime sim_ns(std::uint64_t v) { return SimTime{v * 1000000ull}; }
constexpr SimTime sim_us(std::uint64_t v) { return SimTime{v * 1000000000ull}; }

}  // namespace serdes::sim
