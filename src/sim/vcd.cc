#include "sim/vcd.h"

#include <bitset>
#include <stdexcept>

namespace serdes::sim {

namespace {
std::string bus_to_binary(std::uint64_t value, int width) {
  std::string s(width, '0');
  for (int i = 0; i < width; ++i) {
    if ((value >> i) & 1ull) s[width - 1 - i] = '1';
  }
  return s;
}
}  // namespace

VcdWriter::VcdWriter(Kernel& kernel, const std::string& path)
    : kernel_(&kernel), out_(path) {
  if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
}

VcdWriter::~VcdWriter() { finish(); }

std::string VcdWriter::next_id() {
  // Printable identifier codes ! .. ~ ; two characters once exhausted.
  std::string id;
  int n = id_counter_++;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n > 0);
  return id;
}

void VcdWriter::timestamp() {
  const std::uint64_t now = kernel_->now().femtoseconds();
  if (now != last_dumped_fs_) {
    out_ << '#' << now << '\n';
    last_dumped_fs_ = now;
  }
}

void VcdWriter::trace(Wire& wire, const std::string& name) {
  const std::string id = next_id();
  vars_.push_back({id, name, 1, wire.read() ? "1" : "0"});
  wire.on_change([this, id](const bool&, const bool& now) {
    timestamp();
    out_ << (now ? '1' : '0') << id << '\n';
  });
}

void VcdWriter::trace(Signal<std::uint64_t>& bus, const std::string& name,
                      int width) {
  const std::string id = next_id();
  // Built with += rather than "b" + ...: GCC 12's -Wrestrict misfires on
  // char*-plus-temporary-string concatenation at -O3 (PR105329).
  std::string initial = "b";
  initial += bus_to_binary(bus.read(), width);
  vars_.push_back({id, name, width, std::move(initial)});
  bus.on_change([this, id, width](const std::uint64_t&,
                                  const std::uint64_t& now) {
    timestamp();
    out_ << 'b' << bus_to_binary(now, width) << ' ' << id << '\n';
  });
}

void VcdWriter::trace(Signal<double>& sig, const std::string& name) {
  const std::string id = next_id();
  std::string initial = "r";
  initial += std::to_string(sig.read());
  vars_.push_back({id, name, 0, std::move(initial)});
  sig.on_change([this, id](const double&, const double& now) {
    timestamp();
    out_ << 'r' << now << ' ' << id << '\n';
  });
}

void VcdWriter::begin() {
  if (header_written_) return;
  header_written_ = true;
  out_ << "$date openserdes simulation $end\n"
       << "$version openserdes vcd writer $end\n"
       << "$timescale 1fs $end\n"
       << "$scope module serdes $end\n";
  for (const Var& v : vars_) {
    if (v.width == 0) {
      out_ << "$var real 64 " << v.id << ' ' << v.name << " $end\n";
    } else {
      out_ << "$var wire " << v.width << ' ' << v.id << ' ' << v.name
           << " $end\n";
    }
  }
  out_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (const Var& v : vars_) {
    if (v.width == 0 || v.width > 1) {
      out_ << v.initial << ' ' << v.id << '\n';
    } else {
      out_ << v.initial << v.id << '\n';
    }
  }
  out_ << "$end\n";
}

void VcdWriter::finish() {
  if (out_.is_open()) out_.flush();
}

}  // namespace serdes::sim
