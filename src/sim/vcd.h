// Value Change Dump (VCD) trace writer.
//
// Hooks Signal<T> watchers and emits an IEEE-1364 VCD file that can be
// opened in GTKWave — the same way the paper's authors inspected their RTL
// testbench waveforms.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/signal.h"

namespace serdes::sim {

class VcdWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  VcdWriter(Kernel& kernel, const std::string& path);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Traces a 1-bit signal.
  void trace(Wire& wire, const std::string& name);

  /// Traces a multi-bit bus (dumped as a binary vector of `width` bits).
  void trace(Signal<std::uint64_t>& bus, const std::string& name, int width);

  /// Traces an analog value as a VCD real.
  void trace(Signal<double>& sig, const std::string& name);

  /// Writes the header and initial values.  Call after all trace() calls and
  /// before running the kernel.
  void begin();

  /// Flushes the file (also called by the destructor).
  void finish();

 private:
  std::string next_id();
  void timestamp();

  struct Var {
    std::string id;
    std::string name;
    int width;       // 0 = real
    std::string initial;
  };

  Kernel* kernel_;
  std::ofstream out_;
  std::vector<Var> vars_;
  std::uint64_t last_dumped_fs_ = ~0ull;
  int id_counter_ = 0;
  bool header_written_ = false;
};

}  // namespace serdes::sim
