#include "stat/stat_engine.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "analog/filters.h"
#include "channel/equalizer.h"
#include "core/receiver.h"
#include "core/transmitter.h"
#include "pipe/stage.h"
#include "pipe/stages.h"
#include "util/math.h"

namespace serdes::stat {

// ---------------------------------------------------------------------------
// IsiMixture
// ---------------------------------------------------------------------------

IsiMixture IsiMixture::build(const std::vector<double>& cursors,
                             const Options& options) {
  std::vector<double> half;  // per-cursor +/- amplitudes
  half.reserve(cursors.size());
  for (const double c : cursors) {
    if (c != 0.0) half.push_back(0.5 * std::fabs(c));
  }

  IsiMixture mix;
  const int n = static_cast<int>(half.size());
  if (n <= options.max_exact_bits) {
    // Exact enumeration: 2^n equiprobable sums.
    mix.exact_ = true;
    mix.value_.assign(1, 0.0);
    for (const double c : half) {
      std::vector<double> next;
      next.reserve(mix.value_.size() * 2);
      for (const double v : mix.value_) {
        next.push_back(v - c);
        next.push_back(v + c);
      }
      mix.value_ = std::move(next);
    }
    std::sort(mix.value_.begin(), mix.value_.end());
    const double p = 1.0 / static_cast<double>(mix.value_.size());
    mix.prob_.assign(mix.value_.size(), p);
  } else {
    // Grid convolution: iterative two-point shifts with linear splitting of
    // fractional bin offsets — O(cursors x bins).  The grid carries slack
    // of one bin per cursor so split mass never falls off the edge.
    mix.exact_ = false;
    double reach = 0.0;
    for (const double c : half) reach += c;
    int bins = std::max(options.grid_bins, 2 * n + 41) | 1;
    const double step =
        2.0 * reach / static_cast<double>(bins - 1 - 2 * (n + 2));
    const int center = bins / 2;
    std::vector<double> pdf(static_cast<std::size_t>(bins), 0.0);
    std::vector<double> scratch(pdf.size(), 0.0);
    pdf[static_cast<std::size_t>(center)] = 1.0;
    const auto at = [&](std::ptrdiff_t i) -> double {
      return (i >= 0 && i < static_cast<std::ptrdiff_t>(pdf.size()))
                 ? pdf[static_cast<std::size_t>(i)]
                 : 0.0;
    };
    for (const double c : half) {
      const double s = c / step;
      const auto lo = static_cast<std::ptrdiff_t>(std::floor(s));
      const double frac = s - static_cast<double>(lo);
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(pdf.size());
           ++i) {
        const double plus = (1.0 - frac) * at(i - lo) + frac * at(i - lo - 1);
        const double minus = (1.0 - frac) * at(i + lo) + frac * at(i + lo + 1);
        scratch[static_cast<std::size_t>(i)] = 0.5 * (plus + minus);
      }
      pdf.swap(scratch);
    }
    mix.value_.reserve(pdf.size());
    mix.prob_.reserve(pdf.size());
    for (int i = 0; i < bins; ++i) {
      const double p = pdf[static_cast<std::size_t>(i)];
      if (p <= 0.0) continue;
      mix.value_.push_back(static_cast<double>(i - center) * step);
      mix.prob_.push_back(p);
    }
    if (mix.value_.empty()) {
      mix.value_.assign(1, 0.0);
      mix.prob_.assign(1, 1.0);
    }
  }

  // Normalize and build the inclusive prefix sums the tail windows use.
  double total = 0.0;
  for (const double p : mix.prob_) total += p;
  mix.cum_.resize(mix.prob_.size());
  double run = 0.0;
  for (std::size_t i = 0; i < mix.prob_.size(); ++i) {
    mix.prob_[i] /= total;
    run += mix.prob_[i];
    mix.cum_[i] = run;
  }
  return mix;
}

namespace {

/// Gaussian tails narrower than this many sigma are numerically zero
/// (Q(39) ~ 1e-333), so mixture terms outside the window contribute
/// exactly 0 or their full mass.
constexpr double kTailWindowSigmas = 39.0;

}  // namespace

double IsiMixture::upper_tail(double x, double sigma) const {
  if (value_.empty()) return 0.0;
  if (sigma <= 0.0) {
    // Strict mass above x.
    const auto it = std::upper_bound(value_.begin(), value_.end(), x);
    const auto idx = static_cast<std::size_t>(it - value_.begin());
    return idx == 0 ? 1.0 : 1.0 - cum_[idx - 1];
  }
  const double w = kTailWindowSigmas * sigma;
  const auto lo_it = std::lower_bound(value_.begin(), value_.end(), x - w);
  const auto hi_it = std::upper_bound(value_.begin(), value_.end(), x + w);
  const auto lo = static_cast<std::size_t>(lo_it - value_.begin());
  const auto hi = static_cast<std::size_t>(hi_it - value_.begin());
  // Values above the window contribute their full mass (Q ~ 1).
  double sum = hi == 0 ? 1.0 : 1.0 - cum_[hi - 1];
  for (std::size_t i = lo; i < hi; ++i) {
    sum += prob_[i] * util::q_function((x - value_[i]) / sigma);
  }
  // The prefix sums carry ~1e-16 of rounding; a tail is a probability.
  return std::clamp(sum, 0.0, 1.0);
}

double IsiMixture::lower_tail(double x, double sigma) const {
  if (value_.empty()) return 0.0;
  if (sigma <= 0.0) {
    const auto it = std::lower_bound(value_.begin(), value_.end(), x);
    const auto idx = static_cast<std::size_t>(it - value_.begin());
    return idx == 0 ? 0.0 : cum_[idx - 1];
  }
  const double w = kTailWindowSigmas * sigma;
  const auto lo_it = std::lower_bound(value_.begin(), value_.end(), x - w);
  const auto hi_it = std::upper_bound(value_.begin(), value_.end(), x + w);
  const auto lo = static_cast<std::size_t>(lo_it - value_.begin());
  const auto hi = static_cast<std::size_t>(hi_it - value_.begin());
  double sum = lo == 0 ? 0.0 : cum_[lo - 1];
  for (std::size_t i = lo; i < hi; ++i) {
    sum += prob_[i] * util::q_function((value_[i] - x) / sigma);
  }
  return std::clamp(sum, 0.0, 1.0);
}

double IsiMixture::upper_quantile(double p, double sigma) const {
  const double pad = sigma > 0.0 ? (kTailWindowSigmas + 1.0) * sigma : 0.0;
  double lo = value_.front() - pad - 1e-18;
  double hi = value_.back() + pad + 1e-18;
  // upper_tail is decreasing in v: tail(lo) ~ 1, tail(hi) ~ 0.
  for (int i = 0; i < 200 && hi - lo > 1e-16 * (std::fabs(lo) +
                                                std::fabs(hi) + 1.0);
       ++i) {
    const double mid = 0.5 * (lo + hi);
    if (upper_tail(mid, sigma) >= p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double IsiMixture::lower_quantile(double p, double sigma) const {
  const double pad = sigma > 0.0 ? (kTailWindowSigmas + 1.0) * sigma : 0.0;
  double lo = value_.front() - pad - 1e-18;
  double hi = value_.back() + pad + 1e-18;
  // lower_tail is increasing in v: tail(lo) ~ 0, tail(hi) ~ 1.
  for (int i = 0; i < 200 && hi - lo > 1e-16 * (std::fabs(lo) +
                                                std::fabs(hi) + 1.0);
       ++i) {
    const double mid = 0.5 * (lo + hi);
    if (lower_tail(mid, sigma) <= p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double slicer_error_probability(double main_cursor, const IsiMixture& isi,
                                double offset, double sigma) {
  return 0.5 * (isi.lower_tail(-0.5 * main_cursor - offset, sigma) +
                isi.upper_tail(0.5 * main_cursor - offset, sigma));
}

std::pair<std::uint64_t, std::uint64_t> poisson_band(double lambda) {
  constexpr double kZ = 3.5;           // ~2e-4 per tail
  constexpr double kTailEps = 2.3e-4;  // matching exact-CDF cut
  if (!(lambda > 0.0)) return {0, 0};
  if (lambda > 50.0) {
    const double spread = kZ * std::sqrt(lambda);
    const double lo = std::floor(std::max(0.0, lambda - spread));
    const double hi = std::ceil(lambda + spread);
    return {static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi)};
  }
  // Exact CDF scan: pmf(k) computed iteratively from pmf(0) = e^-lambda.
  double pmf = std::exp(-lambda);
  double cdf = pmf;
  std::uint64_t k = 0;
  std::uint64_t lo = 0;
  bool lo_set = cdf > kTailEps;  // observing below k=0 is impossible anyway
  std::uint64_t hi = 0;
  while (cdf < 1.0 - kTailEps && k < 100000) {
    ++k;
    pmf *= lambda / static_cast<double>(k);
    cdf += pmf;
    if (!lo_set && cdf > kTailEps) {
      lo = k;
      lo_set = true;
    }
  }
  hi = k;
  return {lo, hi};
}

// ---------------------------------------------------------------------------
// StatAnalyzer
// ---------------------------------------------------------------------------

namespace {

/// Runs per-bit launch levels through the linear front half of the MC
/// datapath — TX pulse shaping, the channel model, the optional CTLE and
/// the RFI output pole — using the exact streaming stages the Monte Carlo
/// path runs, and returns the resulting sample vector.
std::vector<double> run_linear_chain(const core::LinkConfig& cfg,
                                     const channel::Channel& channel,
                                     util::Hertz rfi_bandwidth,
                                     util::Hertz restore_bandwidth,
                                     bool rx_poles, std::vector<double> levels,
                                     util::Second rise_time) {
  pipe::LevelPulseSource source(std::move(levels), cfg.unit_interval(),
                                cfg.samples_per_ui, rise_time,
                                util::seconds(0.0), 0.0);
  pipe::Pipeline pipeline;
  pipeline.add(std::make_unique<pipe::ChannelStage>(channel.open_stream()));
  if (cfg.rx_ctle_boost.value() > 0.0) {
    pipeline.add(std::make_unique<pipe::CtleStage>(
        cfg.rx_ctle_boost, cfg.rx_ctle_pole, cfg.sample_period()));
  }
  // The RFI output pole is linear in place; the restoring stage's output
  // pole sits after its VTC, but around a marginal decision the whole
  // chain operates in its linear region, so its smoothing applies to the
  // decision variable as well.
  analog::OnePoleLowPass rfi_pole(rfi_bandwidth, cfg.sample_period());
  analog::OnePoleLowPass restore_pole(restore_bandwidth, cfg.sample_period());

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(source.total_samples()));
  pipe::Block blk;
  while (source.produce(blk, 16384) > 0) {
    const pipe::BlockView processed = pipeline.process(blk.view());
    const std::size_t base = out.size();
    out.resize(base + processed.size);
    if (rx_poles) {
      rfi_pole.process_block(processed.data, out.data() + base,
                             processed.size);
      restore_pole.process_block(out.data() + base, out.data() + base,
                                 processed.size);
    } else {
      // PAM4: the slicers read the CTLE output directly — no RFI or
      // restoring stage in the datapath, so no output poles here either.
      std::copy(processed.data, processed.data + processed.size,
                out.data() + base);
    }
  }
  return out;
}

/// Power gain of the noise path (CTLE + RFI pole + linearized restoring
/// pole): sum of squared discrete impulse-response samples, accumulated
/// until the tail is negligible.
double noise_power_gain(const core::LinkConfig& cfg, util::Hertz rfi_bandwidth,
                        util::Hertz restore_bandwidth, bool rx_poles) {
  const bool use_ctle = cfg.rx_ctle_boost.value() > 0.0;
  std::unique_ptr<pipe::CtleStage> ctle;
  if (use_ctle) {
    ctle = std::make_unique<pipe::CtleStage>(
        cfg.rx_ctle_boost, cfg.rx_ctle_pole, cfg.sample_period());
  }
  analog::OnePoleLowPass pole(rfi_bandwidth, cfg.sample_period());
  analog::OnePoleLowPass restore_pole(restore_bandwidth, cfg.sample_period());

  constexpr std::size_t kBlock = 4096;
  std::vector<double> buf(kBlock, 0.0);
  pipe::Block out;
  double total = 0.0;
  buf[0] = 1.0;  // unit impulse in the first block
  for (std::size_t fed = 0; fed < (1u << 22); fed += kBlock) {
    pipe::BlockView view{buf.data(), kBlock, fed, util::seconds(0.0),
                         cfg.sample_period(), false};
    const double* data = view.data;
    if (ctle) {
      ctle->process(view, out);
      data = out.view().data;
    }
    std::vector<double> filtered(kBlock);
    if (rx_poles) {
      pole.process_block(data, filtered.data(), kBlock);
      restore_pole.process_block(filtered.data(), filtered.data(), kBlock);
    } else {
      std::copy(data, data + kBlock, filtered.data());
    }
    double block_sum = 0.0;
    for (const double g : filtered) block_sum += g * g;
    total += block_sum;
    buf[0] = 0.0;  // only the first block carries the impulse
    if (block_sum < total * 1e-18) break;
  }
  return total;
}

/// Linear interpolation into the pulse response at fractional sample
/// index `idx` (0 outside the captured support).
double pulse_at(const std::vector<double>& pulse, double idx) {
  if (idx <= 0.0 || pulse.size() < 2 ||
      idx >= static_cast<double>(pulse.size() - 1)) {
    return 0.0;
  }
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  return pulse[lo] + frac * (pulse[lo + 1] - pulse[lo]);
}

/// Circular convolution kernel for sampling jitter on the phase grid:
/// Gaussian random jitter (proper per-bin mass integration, so kernels
/// narrower than one bin degrade gracefully to identity) combined with the
/// arcsine distribution of sinusoidal jitter.
std::vector<double> jitter_kernel(double rj_ui, double sj_ui, int phase_bins) {
  const double bin = 1.0 / static_cast<double>(phase_bins);
  std::vector<double> kernel(1, 1.0);  // offsets [-K..K] around index K
  auto convolve = [&](const std::vector<double>& other) {
    std::vector<double> result(kernel.size() + other.size() - 1, 0.0);
    for (std::size_t i = 0; i < kernel.size(); ++i) {
      for (std::size_t j = 0; j < other.size(); ++j) {
        result[i + j] += kernel[i] * other[j];
      }
    }
    kernel = std::move(result);
  };
  if (rj_ui > 0.0) {
    const int reach =
        static_cast<int>(std::ceil(5.0 * rj_ui / bin)) + 1;
    std::vector<double> gauss(static_cast<std::size_t>(2 * reach + 1), 0.0);
    for (int r = -reach; r <= reach; ++r) {
      const double a = (static_cast<double>(r) - 0.5) * bin / rj_ui;
      const double b = (static_cast<double>(r) + 0.5) * bin / rj_ui;
      gauss[static_cast<std::size_t>(r + reach)] =
          util::q_function(a) - util::q_function(b);
    }
    convolve(gauss);
  }
  if (sj_ui > 0.0) {
    constexpr int kSjPoints = 64;
    const int reach = static_cast<int>(std::ceil(sj_ui / bin)) + 1;
    std::vector<double> arcsine(static_cast<std::size_t>(2 * reach + 1), 0.0);
    for (int j = 0; j < kSjPoints; ++j) {
      const double theta = 2.0 * std::numbers::pi *
                           (static_cast<double>(j) + 0.5) / kSjPoints;
      const double s = sj_ui * std::sin(theta) / bin;
      const auto lo = static_cast<int>(std::floor(s));
      const double frac = s - static_cast<double>(lo);
      arcsine[static_cast<std::size_t>(lo + reach)] +=
          (1.0 - frac) / kSjPoints;
      arcsine[static_cast<std::size_t>(lo + 1 + reach)] += frac / kSjPoints;
    }
    convolve(arcsine);
  }
  double total = 0.0;
  for (const double w : kernel) total += w;
  for (double& w : kernel) w /= total;
  return kernel;
}

}  // namespace

StatReport StatAnalyzer::analyze(const core::LinkConfig& cfg,
                                 const channel::Channel& channel) const {
  if (options_.phase_bins_per_ui < 8) {
    throw std::invalid_argument("StatAnalyzer: need >= 8 phase bins per UI");
  }
  if (!(options_.target_ber > 0.0) || options_.target_ber >= 0.5) {
    throw std::invalid_argument("StatAnalyzer: target_ber must be in (0, 0.5)");
  }
  const int spu = cfg.samples_per_ui;
  if (spu < 2) {
    throw std::invalid_argument("StatAnalyzer: need >= 2 samples per UI");
  }

  const core::Transmitter tx(cfg);
  core::Receiver rx(cfg);
  const analog::RfiStage& rfi = rx.rfi_stage();
  const analog::RestoringInverter& restoring = rx.restoring();
  const util::Second rise = tx.driver().output_rise_time();

  // PAM4 drops the RFI/restoring nonlinearities from the datapath: three
  // mean-relative slicers read the CTLE output.  The same pulse-response
  // machinery applies; only the RX poles, the threshold mapping, and the
  // per-cursor interference PDF change.
  const bool pam4 = cfg.modulation == core::LinkConfig::Modulation::kPam4;
  const bool rx_poles = !pam4;

  // ---- 1. Single-bit pulse response through the linear front half -------
  // Superposition: the TX shaper is affine in the per-bit launch levels and
  // the channel / CTLE / RFI-pole stages are LTI, so response(one bit) -
  // response(all zeros) is exactly the contribution of one transmitted '1'.
  // The post-cursor budget grows until the tail has decayed.
  constexpr int kPreUis = 8;
  int post_uis = 64;
  std::vector<double> pulse;
  for (;;) {
    const std::size_t nbits = static_cast<std::size_t>(kPreUis + 1 + post_uis);
    std::vector<std::uint8_t> bits(nbits, 0);
    bits[kPreUis] = 1;
    std::vector<double> one_levels(nbits, 0.0);
    std::vector<double> zero_levels(nbits, 0.0);
    if (cfg.tx_ffe_deemphasis != 0.0) {
      const channel::TxFfe ffe = channel::TxFfe::de_emphasis(
          cfg.tx_ffe_deemphasis, cfg.driver.vdd);
      one_levels = ffe.levels(bits);
      zero_levels = ffe.levels(std::vector<std::uint8_t>(nbits, 0));
    } else {
      const double vdd = cfg.driver.vdd.value();
      one_levels[kPreUis] = vdd;
    }
    pulse = run_linear_chain(cfg, channel, rfi.bandwidth(),
                             restoring.bandwidth(), rx_poles,
                             std::move(one_levels), rise);
    if (cfg.tx_ffe_deemphasis != 0.0) {
      // The FFE's mid-rail offset makes the all-zero response nonzero;
      // subtracting it leaves exactly one bit's contribution.  (The
      // baseline itself shifts signal and stream mean equally, so it
      // cancels out of the mean-relative decision variable.)
      const std::vector<double> base =
          run_linear_chain(cfg, channel, rfi.bandwidth(),
                           restoring.bandwidth(), rx_poles,
                           std::move(zero_levels), rise);
      for (std::size_t i = 0; i < pulse.size() && i < base.size(); ++i) {
        pulse[i] -= base[i];
      }
    }
    double peak = 0.0;
    for (const double v : pulse) peak = std::max(peak, std::fabs(v));
    double tail = 0.0;
    const std::size_t tail_start =
        pulse.size() > static_cast<std::size_t>(2 * spu)
            ? pulse.size() - static_cast<std::size_t>(2 * spu)
            : 0;
    for (std::size_t i = tail_start; i < pulse.size(); ++i) {
      tail = std::max(tail, std::fabs(pulse[i]));
    }
    if (peak == 0.0) {
      throw std::invalid_argument(
          "StatAnalyzer: channel produced an all-zero pulse response");
    }
    if (tail <= options_.isi_epsilon * peak ||
        post_uis >= options_.max_pulse_uis) {
      break;
    }
    post_uis = std::min(post_uis * 2, options_.max_pulse_uis);
  }

  // ---- 2. Linear-domain slicer threshold and noise sigma ----------------
  // NRZ: the RFI saturating VTC and the restoring inverter are memoryless
  // and monotone, so the sampler's decision maps back to a single threshold
  // at the linear point: the channel-referred deviation from the stream
  // mean at which restore(saturate(v)) crosses the decision threshold.
  // PAM4: the slicers are calibrated to the stream statistics themselves
  // (middle threshold at the mean), so the mean-relative threshold is 0 and
  // the sampler noise maps back at unit slope.
  double v_th = 0.0;
  double sampler_sigma_lin = cfg.sampler.input_noise_rms;
  double chain_slope = 1.0;
  if (!pam4) {
    const double decision_threshold = rx.decision_threshold();
    const auto chain = [&](double v) {
      return restoring.restore_level(rfi.saturate(v));
    };
    const double vdd = cfg.driver.vdd.value();
    const auto v_th_opt = util::bisect(
        [&](double v) { return chain(v) - decision_threshold; }, -vdd, vdd,
        1e-15);
    if (!v_th_opt) {
      throw std::invalid_argument(
          "StatAnalyzer: front-end transfer curve never crosses the decision "
          "threshold");
    }
    v_th = *v_th_opt;
    // Sampler input-referred noise, mapped back through the static gain of
    // the saturating chain at the threshold.
    const double slope_h = 1e-6;
    chain_slope =
        (chain(v_th + slope_h) - chain(v_th - slope_h)) / (2.0 * slope_h);
    sampler_sigma_lin =
        chain_slope > 0.0 ? cfg.sampler.input_noise_rms / chain_slope : 0.0;
  }

  const double sigma0 = core::per_sample_noise_sigma(cfg);
  const double chain_gain_sq =
      noise_power_gain(cfg, rfi.bandwidth(), restoring.bandwidth(), rx_poles);
  const double sigma =
      std::sqrt(sigma0 * sigma0 * chain_gain_sq +
                sampler_sigma_lin * sampler_sigma_lin);

  // ---- 2a. DFE feedback taps, mapped to the linear decision point -------
  // The MC sink subtracts tap k times the previous decision from the
  // sampled value — NRZ in the restored domain (divide by the chain slope
  // to channel-refer, exactly like the sampler noise above), PAM4 directly
  // in the slicer (CTLE) domain.  With correct feedback the subtraction
  // cancels post-cursor ISI: cursor main+1+k keeps its DC half but its
  // data-dependent +/- amplitude shrinks from c to c - 2*t_lin.
  std::vector<double> dfe_lin;
  if (!cfg.dfe_taps.empty()) {
    dfe_lin.reserve(cfg.dfe_taps.size());
    const double back_map = (!pam4 && chain_slope > 0.0) ? chain_slope : 1.0;
    for (const double t : cfg.dfe_taps) dfe_lin.push_back(t / back_map);
  }

  // ---- 2b. Crosstalk aggressor pulse responses --------------------------
  // A FEXT aggressor runs through the victim's own channel + RX chain, so
  // its pulse is just the victim pulse scaled by the coupling gain.  A
  // NEXT aggressor skips the channel: one extra pulse extraction through a
  // 0 dB flat channel (shared by every NEXT path).  UI delays permute the
  // cursor indices without changing the set, so they drop out of the
  // statistical model.
  std::vector<double> next_pulse;
  bool any_fext = false;
  bool any_next = false;
  for (const core::XtalkPath& x : cfg.xtalk) {
    if (x.gain == 0.0) continue;
    (x.through_channel ? any_fext : any_next) = true;
  }
  if (any_next) {
    const std::size_t nbits =
        static_cast<std::size_t>(pulse.size()) /
            static_cast<std::size_t>(spu) +
        2;
    std::vector<double> one_levels(nbits, 0.0);
    constexpr int kPreUisNext = 8;
    one_levels[kPreUisNext] = cfg.driver.vdd.value();
    const channel::FlatChannel flat{util::decibels(0.0)};
    next_pulse = run_linear_chain(cfg, flat, rfi.bandwidth(),
                                  restoring.bandwidth(), rx_poles,
                                  std::move(one_levels), rise);
  }

  // ---- 3. Per-phase cursor decomposition and tail statistics ------------
  StatReport report;
  report.target_ber = options_.target_ber;
  report.sigma_v = sigma;
  report.threshold_v = v_th;

  const int n_phases = options_.phase_bins_per_ui;
  const int total_uis = static_cast<int>(pulse.size()) / spu + 1;
  double pulse_sum = 0.0;
  for (const double v : pulse) pulse_sum += v;
  double next_pulse_sum = 0.0;
  for (const double v : next_pulse) next_pulse_sum += v;
  // AC-coupling estimate of the stream mean (deviation from the all-zero
  // baseline): half the pulse's DC content per UI — the victim's own plus
  // every aggressor path's scaled DC (the slicer calibration sees the
  // composite stream's mean).
  double mean_off = 0.5 * pulse_sum / static_cast<double>(spu);
  for (const core::XtalkPath& x : cfg.xtalk) {
    if (x.gain == 0.0) continue;
    mean_off += 0.5 * x.gain * (x.through_channel ? pulse_sum : next_pulse_sum) /
                static_cast<double>(spu);
  }
  const int next_total_uis =
      next_pulse.empty() ? 0 : static_cast<int>(next_pulse.size()) / spu + 1;

  std::vector<double> raw_ber(static_cast<std::size_t>(n_phases), 0.5);
  report.contour_high_v.assign(static_cast<std::size_t>(n_phases), 0.0);
  report.contour_low_v.assign(static_cast<std::size_t>(n_phases), 0.0);
  std::vector<double> phase_main(static_cast<std::size_t>(n_phases), 0.0);
  std::vector<int> phase_isi_count(static_cast<std::size_t>(n_phases), 0);
  std::vector<double> phase_burst(static_cast<std::size_t>(n_phases), 1.0);
  // PAM4 per-sub-eye traces (lower / middle / upper), per phase.
  std::vector<std::vector<double>> eye_ber(
      3, std::vector<double>(static_cast<std::size_t>(n_phases), 0.5));
  std::vector<std::vector<double>> eye_high(
      3, std::vector<double>(static_cast<std::size_t>(n_phases), 0.0));
  std::vector<std::vector<double>> eye_low(
      3, std::vector<double>(static_cast<std::size_t>(n_phases), 0.0));

  // Gray-code bit cost of deciding s' when s was sent, in bits (out of the
  // 2 a symbol carries): levels 0..3 map to (0,0) (0,1) (1,1) (1,0).
  static constexpr int kGrayHamming[4][4] = {{0, 1, 2, 1},
                                             {1, 0, 1, 2},
                                             {2, 1, 0, 1},
                                             {1, 2, 1, 0}};

  std::vector<double> cursors;
  std::vector<double> isi;
  for (int b = 0; b < n_phases; ++b) {
    const double off = (static_cast<double>(b) + 0.5) / n_phases;
    cursors.clear();
    double sum_all = 0.0;
    double l1_all = 0.0;
    double h0 = 0.0;
    int main_idx = -1;
    for (int m = 0; m < total_uis; ++m) {
      const double c =
          pulse_at(pulse, (static_cast<double>(m) + off) * spu);
      cursors.push_back(c);
      sum_all += c;
      l1_all += std::fabs(c);
      if (c > h0) {
        h0 = c;
        main_idx = m;
      }
    }
    if (main_idx < 0 || h0 <= 0.0) continue;  // dead eye: BER 0.5

    // DFE residual cancellation: tap k feeds back the decision of symbol
    // n-1-k, i.e. the cursor at main+1+k.  Only the data-dependent +/-
    // amplitude shrinks — the cursor's DC half (already in sum_all / the
    // slicer calibration range) is untouched, because the subtracted
    // feedback term has zero mean over equiprobable data.
    for (std::size_t k = 0; k < dfe_lin.size(); ++k) {
      const std::size_t idx =
          static_cast<std::size_t>(main_idx) + 1 + k;
      if (idx < cursors.size()) cursors[idx] -= 2.0 * dfe_lin[k];
    }

    // Expected follow-on errors per error: a wrong feedback decision
    // flips tap k's correction, shifting the next decision by the full
    // feedback swing.  q sums the per-tap conditional error probabilities
    // against the residual mixture; the bathtub picks up the geometric
    // burst-length factor 1 / (1 - q).
    const auto dfe_burst_factor = [&](const IsiMixture& mixture,
                                      double eye_main, double base_offset,
                                      double swing_scale) {
      double q = 0.0;
      for (const double t : dfe_lin) {
        const double s = swing_scale * std::fabs(t);
        if (s <= 0.0) continue;
        q += 0.5 * (slicer_error_probability(eye_main, mixture,
                                             base_offset + s, sigma) +
                    slicer_error_probability(eye_main, mixture,
                                             base_offset - s, sigma));
      }
      // Clamp from below too: deep-eye tail sums can go ~1e-16 negative
      // from prefix-sum rounding, and a burst factor must never shrink
      // the BER.
      return 1.0 / (1.0 - std::clamp(q, 0.0, 0.5));
    };

    isi.clear();
    for (int m = 0; m < static_cast<int>(cursors.size()); ++m) {
      if (m == main_idx) continue;
      if (std::fabs(cursors[static_cast<std::size_t>(m)]) >
          options_.isi_epsilon * h0) {
        isi.push_back(cursors[static_cast<std::size_t>(m)]);
      }
    }
    // Crosstalk enters the mixture as bounded interference: every
    // aggressor cursor — its peak included, since aggressor data is
    // independent of the victim's decision — is one more ISI tap.
    for (const core::XtalkPath& x : cfg.xtalk) {
      if (x.gain == 0.0) continue;
      const std::vector<double>& agg = x.through_channel ? pulse : next_pulse;
      const int agg_uis = x.through_channel ? total_uis : next_total_uis;
      for (int m = 0; m < agg_uis; ++m) {
        const double c =
            x.gain * pulse_at(agg, (static_cast<double>(m) + off) * spu);
        sum_all += c;
        l1_all += std::fabs(c);
        if (std::fabs(c) > options_.isi_epsilon * h0) isi.push_back(c);
      }
    }
    const int isi_count = static_cast<int>(isi.size());

    if (!pam4) {
      const IsiMixture mix = IsiMixture::build(isi, options_.mixture);
      const double offset = 0.5 * sum_all - mean_off - v_th;
      raw_ber[static_cast<std::size_t>(b)] =
          slicer_error_probability(h0, mix, offset, sigma);
      if (!dfe_lin.empty()) {
        const double f = dfe_burst_factor(mix, h0, offset, 2.0);
        phase_burst[static_cast<std::size_t>(b)] = f;
        raw_ber[static_cast<std::size_t>(b)] =
            std::min(0.5, raw_ber[static_cast<std::size_t>(b)] * f);
      }
      report.contour_high_v[static_cast<std::size_t>(b)] =
          offset + 0.5 * h0 + mix.lower_quantile(options_.target_ber, sigma);
      report.contour_low_v[static_cast<std::size_t>(b)] =
          offset - 0.5 * h0 + mix.upper_quantile(options_.target_ber, sigma);
    } else {
      // PAM4: each interfering cursor takes four equiprobable values
      // {-c/2, -c/6, +c/6, +c/2} — the sum of two independent binary
      // components +/-(c/3) and +/-(c/6), so the binary mixture machinery
      // applies to an expanded cursor list (full amplitudes 2c/3 and c/3;
      // build() halves them).
      std::vector<double> expanded;
      expanded.reserve(isi.size() * 2);
      for (const double c : isi) {
        expanded.push_back(2.0 * c / 3.0);
        expanded.push_back(c / 3.0);
      }
      const IsiMixture mix = IsiMixture::build(expanded, options_.mixture);
      // The MC slicers calibrate on the clean composite stream: middle
      // threshold at the range midpoint (= half the cursor sum — the
      // all-3s ceiling plus the all-0s floor, halved), outer thresholds
      // a third of the clean range away, and that range is the L1 norm
      // of the composite cursor set.  Relative to the midpoint, symbol s
      // contributes d_s * h0 through the main cursor, d_s in {-1/2,
      // -1/6, +1/6, +1/2}, and every interferer is in the mixture — so
      // the model's shift is identically zero.
      const double shift = 0.0;
      const double spacing = l1_all / 3.0;
      const double d[4] = {-0.5, -1.0 / 6.0, 1.0 / 6.0, 0.5};
      const double t[3] = {-spacing, 0.0, spacing};
      double region[4][4];  // [sent][decided]
      for (int s = 0; s < 4; ++s) {
        const double mu = d[s] * h0 + shift;
        const double f0 = mix.lower_tail(t[0] - mu, sigma);
        const double f1 = mix.lower_tail(t[1] - mu, sigma);
        const double f2 = mix.lower_tail(t[2] - mu, sigma);
        region[s][0] = f0;
        region[s][1] = std::max(0.0, f1 - f0);
        region[s][2] = std::max(0.0, f2 - f1);
        region[s][3] = std::max(0.0, 1.0 - f2);
      }
      double ber = 0.0;
      for (int s = 0; s < 4; ++s) {
        for (int r = 0; r < 4; ++r) {
          ber += 0.25 * region[s][r] *
                 static_cast<double>(kGrayHamming[s][r]) / 2.0;
        }
      }
      raw_ber[static_cast<std::size_t>(b)] = std::min(0.5, ber);
      if (!dfe_lin.empty()) {
        // Adjacent-level feedback errors dominate PAM4: the symbol weight
        // moves by 2/3, so a wrong decision shifts the next sample by 2/3
        // of the tap.  The middle sub-eye (level spacing h0/3) stands in
        // for the conditional re-error probability of all three.
        const double f = dfe_burst_factor(mix, h0 / 3.0, 0.0, 2.0 / 3.0);
        phase_burst[static_cast<std::size_t>(b)] = f;
        raw_ber[static_cast<std::size_t>(b)] =
            std::min(0.5, raw_ber[static_cast<std::size_t>(b)] * f);
      }
      // Per-sub-eye surfaces: sub-eye k separates symbol k (below the
      // boundary t[k]) from symbol k+1 (above it).
      for (int k = 0; k < 3; ++k) {
        const double mu_lo = d[k] * h0 + shift;
        const double mu_hi = d[k + 1] * h0 + shift;
        eye_ber[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)] =
            0.5 * (mix.upper_tail(t[k] - mu_lo, sigma) +
                   mix.lower_tail(t[k] - mu_hi, sigma));
        eye_high[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)] =
            mu_hi + mix.lower_quantile(options_.target_ber, sigma);
        eye_low[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)] =
            mu_lo + mix.upper_quantile(options_.target_ber, sigma);
      }
      // The report's scalar contours track the middle sub-eye (the NRZ
      // analogue: the boundary at the calibrated midpoint).
      report.contour_high_v[static_cast<std::size_t>(b)] =
          eye_high[1][static_cast<std::size_t>(b)];
      report.contour_low_v[static_cast<std::size_t>(b)] =
          eye_low[1][static_cast<std::size_t>(b)];
    }
    phase_main[static_cast<std::size_t>(b)] = h0;
    phase_isi_count[static_cast<std::size_t>(b)] = isi_count;
  }

  // ---- 4. Jitter folding and margins ------------------------------------
  const double ui_s = cfg.unit_interval().value();
  const std::vector<double> kernel =
      jitter_kernel(cfg.rx_random_jitter.value() / ui_s,
                    cfg.rx_sinusoidal_jitter.value() / ui_s, n_phases);
  report.bathtub_ber.assign(static_cast<std::size_t>(n_phases), 0.0);
  const int reach = static_cast<int>(kernel.size()) / 2;
  for (int b = 0; b < n_phases; ++b) {
    double acc = 0.0;
    for (int r = -reach; r <= reach; ++r) {
      const int src = ((b + r) % n_phases + n_phases) % n_phases;
      acc += kernel[static_cast<std::size_t>(r + reach)] *
             raw_ber[static_cast<std::size_t>(src)];
    }
    report.bathtub_ber[static_cast<std::size_t>(b)] = acc;
  }

  int best = 0;
  for (int b = 1; b < n_phases; ++b) {
    if (report.bathtub_ber[static_cast<std::size_t>(b)] <
        report.bathtub_ber[static_cast<std::size_t>(best)]) {
      best = b;
    }
  }
  report.best_phase_ui = (static_cast<double>(best) + 0.5) / n_phases;
  report.min_ber = report.bathtub_ber[static_cast<std::size_t>(best)];
  report.main_cursor_v = phase_main[static_cast<std::size_t>(best)];
  report.isi_cursors = phase_isi_count[static_cast<std::size_t>(best)];
  if (!dfe_lin.empty()) {
    report.dfe_taps_applied = dfe_lin;
    report.dfe_burst_factor = phase_burst[static_cast<std::size_t>(best)];
  }
  report.eye_height_v = report.contour_high_v[static_cast<std::size_t>(best)] -
                        report.contour_low_v[static_cast<std::size_t>(best)];
  report.voltage_margin_v =
      std::min(report.contour_high_v[static_cast<std::size_t>(best)],
               -report.contour_low_v[static_cast<std::size_t>(best)]);

  if (pam4) {
    // Per-sub-eye margins at the best phase (lower, middle, upper), with
    // the sub-eye's own jitter-folded slicer error probability.  The
    // scalar eye_height/voltage_margin above already track the middle
    // sub-eye's contours; tighten them to the worst sub-eye so the scalar
    // summary stays the binding margin.
    const double h0 = phase_main[static_cast<std::size_t>(best)];
    const double t[3] = {-h0 / 3.0, 0.0, h0 / 3.0};
    report.pam4_eye_height_v.assign(3, 0.0);
    report.pam4_voltage_margin_v.assign(3, 0.0);
    report.pam4_eye_ber.assign(3, 0.5);
    for (int k = 0; k < 3; ++k) {
      const double high =
          eye_high[static_cast<std::size_t>(k)][static_cast<std::size_t>(best)];
      const double low =
          eye_low[static_cast<std::size_t>(k)][static_cast<std::size_t>(best)];
      report.pam4_eye_height_v[static_cast<std::size_t>(k)] = high - low;
      report.pam4_voltage_margin_v[static_cast<std::size_t>(k)] =
          std::min(high - t[k], t[k] - low);
      double acc = 0.0;
      for (int r = -reach; r <= reach; ++r) {
        const int src = ((best + r) % n_phases + n_phases) % n_phases;
        acc += kernel[static_cast<std::size_t>(r + reach)] *
               eye_ber[static_cast<std::size_t>(k)]
                      [static_cast<std::size_t>(src)];
      }
      report.pam4_eye_ber[static_cast<std::size_t>(k)] = acc;
    }
    report.eye_height_v =
        std::min({report.pam4_eye_height_v[0], report.pam4_eye_height_v[1],
                  report.pam4_eye_height_v[2]});
    report.voltage_margin_v =
        std::min({report.pam4_voltage_margin_v[0],
                  report.pam4_voltage_margin_v[1],
                  report.pam4_voltage_margin_v[2]});
  }

  if (report.min_ber <= options_.target_ber) {
    int open = 1;
    int left = 1;
    while (left < n_phases &&
           report.bathtub_ber[static_cast<std::size_t>(
               ((best - left) % n_phases + n_phases) % n_phases)] <=
               options_.target_ber) {
      ++open;
      ++left;
    }
    int right = 1;
    while (open < n_phases &&
           report.bathtub_ber[static_cast<std::size_t>((best + right) %
                                                       n_phases)] <=
               options_.target_ber) {
      ++open;
      ++right;
    }
    report.timing_margin_ui =
        std::min(1.0, static_cast<double>(open) / n_phases);
  }
  return report;
}

void StatAnalyzer::cross_check(StatReport& report, std::uint64_t bits,
                               std::uint64_t errors, int cdr_oversampling,
                               int cdr_glitch_filter_radius, double slack) {
  report.cross_checked = true;
  report.mc_ber =
      bits > 0 ? static_cast<double>(errors) / static_cast<double>(bits) : 0.0;

  // The bathtub is the classic single-slicer BER, but the Monte Carlo
  // receiver decides each bit by a majority vote over the glitch filter's
  // 2g+1 adjacent oversampling phases.  With independent per-phase noise
  // the vote BER is the probability that >= g+1 phase-samples are wrong —
  // a lower bound on the real vote BER (noise correlation between the
  // phases only pushes it back up toward the single-slicer value, which
  // bounds it from above since the vote can only help).  The band spans
  // that structural interval over the CDR's phase-pick window, widened by
  // the model-slack factor.
  double lo = report.min_ber;
  double hi = report.min_ber;
  const int n = static_cast<int>(report.bathtub_ber.size());
  if (n > 0) {
    const auto& bt = report.bathtub_ber;
    int best = 0;
    for (int b = 1; b < n; ++b) {
      if (bt[static_cast<std::size_t>(b)] <
          bt[static_cast<std::size_t>(best)]) {
        best = b;
      }
    }
    const int g = std::max(0, cdr_glitch_filter_radius);
    const int delta =
        cdr_oversampling > 0
            ? std::max(1, n / std::max(1, cdr_oversampling))
            : 0;
    const auto vote_ber = [&](int center) {
      // P(>= g+1 of the 2g+1 phase-samples wrong), phases spaced delta
      // bins apart, independent: DP over the per-phase error probs.
      std::vector<double> more_wrong(1, 1.0);  // P(exactly k wrong so far)
      for (int k = -g; k <= g; ++k) {
        const double p = bt[static_cast<std::size_t>(
            ((center + k * delta) % n + n) % n)];
        std::vector<double> next(more_wrong.size() + 1, 0.0);
        for (std::size_t w = 0; w < more_wrong.size(); ++w) {
          next[w] += more_wrong[w] * (1.0 - p);
          next[w + 1] += more_wrong[w] * p;
        }
        more_wrong = std::move(next);
      }
      double sum = 0.0;
      for (std::size_t w = static_cast<std::size_t>(g) + 1;
           w < more_wrong.size(); ++w) {
        sum += more_wrong[w];
      }
      return sum;
    };
    // CDR phase placement: quantization alone puts the decision phase
    // within half a phase spacing of the optimum, but the edge-centroid
    // criterion is biased on dispersive (asymmetric-eye) channels, so the
    // ceiling window allows a full phase spacing of misplacement.  The
    // floor only loosens with a wider window, so one window serves both.
    const int window =
        cdr_oversampling > 0
            ? static_cast<int>(std::ceil(
                  static_cast<double>(n) /
                  static_cast<double>(cdr_oversampling))) +
                  1
            : 1;
    for (int r = -window; r <= window; ++r) {
      const int b = ((best + r) % n + n) % n;
      lo = std::min(lo, vote_ber(b));
      hi = std::max(hi, bt[static_cast<std::size_t>(b)]);
    }
  }
  double s = slack > 1.0 ? slack : 1.0;
  // DFE feedback is outside the linear model's accuracy contract: the MC
  // sink's slicer can mis-feed during CDR settling and per-chunk warm-up
  // (zero history), and real bursts cluster instead of thinning like the
  // geometric factor assumes.  Double the slack both ways for trained /
  // DFE-equipped links.
  const bool dfe = !report.dfe_taps_applied.empty();
  if (dfe) s *= 2.0;
  report.band_low = lo / s;
  report.band_high = std::min(0.5, hi * s);

  const auto [k_lo, ignored_hi] =
      poisson_band(static_cast<double>(bits) * report.band_low);
  auto [ignored_lo, k_hi] =
      poisson_band(static_cast<double>(bits) * report.band_high);
  (void)ignored_hi;
  (void)ignored_lo;
  // Floor of a couple of stray errors: sub-1e-4 effects the linear model
  // does not carry (sampler metastability at transitions, AC-coupling
  // transients) must not flag an otherwise-clean deep-BER run.  DFE links
  // additionally tolerate one warm-up burst per feedback tap.
  k_hi = std::max<std::uint64_t>(
      k_hi, dfe ? 2 + 2 * report.dfe_taps_applied.size() : 2);
  report.consistent = errors >= k_lo && errors <= k_hi;
}

}  // namespace serdes::stat
