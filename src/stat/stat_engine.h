// Statistical (StatEye-style) link analysis engine.
//
// Monte Carlo BER measurement stops being practical around 1e-9 — the
// paper's link budget cares about 1e-12..1e-15, where a single error would
// need trillions of simulated bits.  This engine gets there analytically:
//
//   1. extract the channel's single-bit pulse response by pushing one
//      isolated bit through the *same* streaming TX / channel / CTLE /
//      RFI-pole stages the Monte Carlo datapath runs (superposition holds:
//      everything up to the saturating front end is linear);
//   2. slice the pulse into UI-spaced cursors at each sampling phase and
//      convolve the per-cursor two-point ISI PDFs — exactly (2^n
//      enumeration) when few cursors matter, else on a fixed voltage grid
//      in O(taps x grid);
//   3. fold the AWGN in analytically (Gaussian tail integrals against the
//      ISI distribution) and the sampling jitter as a phase-domain
//      convolution, yielding BER-vs-phase bathtub curves, eye contours at
//      a target BER, and timing/voltage margins — no bit stream anywhere.
//
// Because the result is deterministic and closed-form, it doubles as an
// oracle for regression-testing the Monte Carlo datapath: a `"both"` run
// checks that the measured MC BER falls inside the engine's predicted
// band (see `cross_check`), in the spirit of deterministic-replay
// validation of parallel simulators.
//
// Accuracy contract: the engine models the linearized decision point
// (channel + CTLE + RFI pole, slicer threshold mapped back through the
// static RFI/restoring transfer curves).  Saturation dynamics, sampler
// aperture/metastability and finite-stream AC-coupling transients are NOT
// modelled; they are bounded by the cross-check slack factor (default 4x
// either way) that `"both"` runs enforce.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "channel/channel.h"
#include "core/config.h"
#include "stat/stat_report.h"

namespace serdes::stat {

/// Distribution of the ISI sum over equiprobable +/-1 data: each cursor
/// `c` contributes +/- c/2.  Built exactly (2^n enumeration) when `n <=
/// max_exact_bits`, else by iterative two-point convolution on a voltage
/// grid (linear-splitting fractional shifts).  Values are sorted; `prob`
/// sums to 1.
class IsiMixture {
 public:
  struct Options {
    /// Enumerate exactly up to 2^max_exact_bits combinations.
    int max_exact_bits = 12;
    /// Grid resolution for the convolution fallback (forced odd).
    int grid_bins = 4097;
  };

  /// `cursors` are the full cursor amplitudes (the +/- c/2 halving happens
  /// here); zero-amplitude cursors are skipped.
  static IsiMixture build(const std::vector<double>& cursors,
                          const Options& options);
  static IsiMixture build(const std::vector<double>& cursors) {
    return build(cursors, Options{});
  }

  /// P(V + N(0, sigma) > x).  sigma == 0 degenerates to the strict mass
  /// above x.
  [[nodiscard]] double upper_tail(double x, double sigma) const;
  /// P(V + N(0, sigma) < x).
  [[nodiscard]] double lower_tail(double x, double sigma) const;

  /// v such that P(V + N >= v) = p (decreasing in v; bisection).
  [[nodiscard]] double upper_quantile(double p, double sigma) const;
  /// v such that P(V + N <= v) = p.
  [[nodiscard]] double lower_quantile(double p, double sigma) const;

  [[nodiscard]] bool exact() const { return exact_; }
  [[nodiscard]] std::size_t size() const { return value_.size(); }

 private:
  std::vector<double> value_;  // sorted support points
  std::vector<double> prob_;   // matching probabilities (sum 1)
  std::vector<double> cum_;    // inclusive prefix sums of prob_
  bool exact_ = true;
};

/// Error probability of a zero-threshold slicer deciding a symbol
///   y = +/- main/2 + offset + ISI + N(0, sigma)
/// with equiprobable polarities:
///   0.5 * P(y < 0 | +) + 0.5 * P(y > 0 | -).
/// Exact (to Gaussian-tail evaluation accuracy) when the mixture is exact
/// — the closed-form regression tests pin two-tap ISI and pure-AWGN cases
/// against hand formulas at <= 1e-12.
[[nodiscard]] double slicer_error_probability(double main_cursor,
                                              const IsiMixture& isi,
                                              double offset, double sigma);

/// Two-sided Poisson acceptance band around mean `lambda`: the smallest
/// and largest observation counts consistent with the mean at ~3.5 sigma
/// (exact CDF scan for small lambda, normal approximation above 50).
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> poisson_band(
    double lambda);

class StatAnalyzer {
 public:
  struct Options {
    /// Sampling-phase resolution across one UI (EyeAnalyzer convention:
    /// bin b covers phase (b + 0.5) / n).
    int phase_bins_per_ui = 64;
    IsiMixture::Options mixture{};
    /// Cursors below `isi_epsilon * main_cursor` are dropped from the ISI
    /// distribution.
    double isi_epsilon = 1e-7;
    /// BER level for contours and margins.
    double target_ber = 1e-15;
    /// Post-cursor budget: the pulse response is extended (up to this many
    /// UIs) until its tail decays below isi_epsilon of the peak.
    int max_pulse_uis = 512;
  };

  StatAnalyzer() = default;
  explicit StatAnalyzer(Options options) : options_(options) {}

  /// Analyzes one scenario: the channel is the factory-built model the MC
  /// path would run (`dsp` and composite structure included).  Throws
  /// std::invalid_argument on a config the engine cannot linearize.
  [[nodiscard]] StatReport analyze(const core::LinkConfig& config,
                                   const channel::Channel& channel) const;

  /// Fills the `"both"`-mode fields of `report`.  The predicted band is
  /// structural: its floor is the glitch-filter majority-vote BER with
  /// independent per-phase noise (the vote can only be beaten by noise
  /// correlation, which pushes toward the single-slicer bathtub that forms
  /// the ceiling), evaluated over the CDR's phase-pick window (half-width
  /// 0.5 / cdr_oversampling UI) and widened by `slack` both ways.  The
  /// verdict is a Poisson test of `errors` observed over `bits` against
  /// that band.
  static void cross_check(StatReport& report, std::uint64_t bits,
                          std::uint64_t errors, int cdr_oversampling,
                          int cdr_glitch_filter_radius, double slack);

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

}  // namespace serdes::stat
