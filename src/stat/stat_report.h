// Plain-data result of one statistical (StatEye-style) link analysis.
//
// Everything in here is derived analytically from the channel's single-bit
// pulse response — no bit stream is simulated — so the numbers reach BER
// regimes (1e-12..1e-15 and beyond) that Monte Carlo cannot touch in CI
// time, and they are exactly reproducible: the same spec always yields the
// same report, byte for byte once serialized.
#pragma once

#include <cstdint>
#include <vector>

namespace serdes::stat {

/// Bathtub, eye contour and margin surfaces of one scenario, plus the
/// optional MC cross-check verdict for `"both"` runs.  Vectors share one
/// phase grid: entry `b` describes sampling phase `(b + 0.5) / n` UI where
/// `n = bathtub_ber.size()` (the EyeAnalyzer bin convention).
struct StatReport {
  /// BER level the timing/voltage margins and contours are quoted at.
  double target_ber = 1e-15;

  // ---- Model parameters (diagnostics) ----
  /// Effective Gaussian noise sigma at the linear decision point (volts):
  /// injected AWGN through the CTLE + RFI-pole chain, plus the sampler's
  /// input-referred noise divided by the static front-end gain.
  double sigma_v = 0.0;
  /// Linear-domain slicer threshold relative to the stream mean: the
  /// channel-referred voltage at which the RFI -> restoring chain output
  /// crosses the sampler's decision threshold.
  double threshold_v = 0.0;
  /// Strongest single-bit cursor (volts) at the best sampling phase.
  double main_cursor_v = 0.0;
  /// Significant non-main cursors folded into the ISI distribution at the
  /// best phase.
  int isi_cursors = 0;

  // ---- Phase surfaces ----
  /// BER vs sampling phase across one UI (random + sinusoidal jitter
  /// folded in).  Values below ~1e-300 flush to 0.
  std::vector<double> bathtub_ber;
  /// Eye contour at `target_ber`: per phase, the voltage (relative to the
  /// slicer threshold) below which a transmitted '1' dips with probability
  /// `target_ber`, and above which a transmitted '0' rises with the same
  /// probability.  `high > low` means the eye is open at that phase.
  std::vector<double> contour_high_v;
  std::vector<double> contour_low_v;

  // ---- Margins ----
  double best_phase_ui = 0.5;
  /// Bathtub minimum (BER at the best phase).
  double min_ber = 1.0;
  /// Width of the contiguous phase region around the best phase where the
  /// bathtub stays at or below `target_ber` (fraction of UI; 0 = never).
  double timing_margin_ui = 0.0;
  /// Contour opening at the best phase (high - low; negative = closed at
  /// `target_ber`).
  double eye_height_v = 0.0;
  /// Symmetric voltage margin at the best phase: min(high, -low); negative
  /// when the eye is closed at `target_ber`.
  double voltage_margin_v = 0.0;

  // ---- PAM4 per-eye margins (empty under NRZ) ----
  /// For PAM4 scenarios, one entry per sub-eye (lower, middle, upper) at
  /// the best sampling phase: the contour opening, the symmetric voltage
  /// margin, and the sub-eye's own slicer error probability.  Serialized
  /// only when non-empty (schema version 2), so NRZ reports are unchanged.
  std::vector<double> pam4_eye_height_v;
  std::vector<double> pam4_voltage_margin_v;
  std::vector<double> pam4_eye_ber;

  // ---- DFE (non-empty when the config carries feedback taps) ----
  /// Linear-domain (channel-referred) feedback taps the analysis cancelled
  /// post-cursor ISI with: tap k halves into the +/- residual of cursor
  /// main+1+k.  NRZ taps are authored in the restored domain and map back
  /// through the front-end chain slope; PAM4 taps are already in the
  /// slicer (CTLE) domain.  Serialized only when non-empty (schema
  /// version 3), so DFE-free reports keep their earlier bytes.
  std::vector<double> dfe_taps_applied;
  /// Error-propagation multiplier folded into the bathtub at the best
  /// phase: 1 / (1 - q) with q the expected follow-on errors per error
  /// (a wrong feedback decision doubles the corresponding tap's ISI for
  /// the next symbols).  1.0 when no DFE.
  double dfe_burst_factor = 1.0;

  // ---- MC cross-check (filled for analysis = "both") ----
  bool cross_checked = false;
  /// The Monte Carlo BER this report was checked against.
  double mc_ber = 0.0;
  /// Predicted BER band the MC measurement must fall in: bathtub min/max
  /// over the CDR's phase-pick window, widened by the model-slack factor.
  double band_low = 0.0;
  double band_high = 0.0;
  /// True when the MC error count sits inside the Poisson-widened band.
  bool consistent = false;
};

}  // namespace serdes::stat
