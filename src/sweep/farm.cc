#include "sweep/farm.h"

#include <cstdio>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "api/spec_json.h"
#include "util/fault.h"
#include "util/fs.h"
#include "util/json.h"

namespace serdes::sweep {

namespace fs = std::filesystem;

namespace {

std::string task_filename(std::uint64_t id) {
  return "task-" + std::to_string(id) + ".json";
}

std::string dump_task(std::uint64_t id, std::uint64_t attempts,
                      const std::vector<std::uint64_t>& indices) {
  util::Json j = util::Json::object();
  j.set("task", id);
  j.set("attempts", attempts);
  util::Json idx = util::Json::array();
  for (const std::uint64_t i : indices) idx.push_back(i);
  j.set("indices", std::move(idx));
  return j.dump();
}

/// Whole-file read; empty optional when the file cannot be opened.
bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

void remove_quietly(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

bool exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void require_clock(const FarmClock& clock, const char* who) {
  if (!clock.now_ms || !clock.sleep_ms) {
    throw std::invalid_argument(std::string(who) +
                                ": FarmClock must provide now_ms and "
                                "sleep_ms (the library never reads the OS "
                                "clock itself)");
  }
}

}  // namespace

// ------------------------------------------------------------ Coordinator --

Coordinator::Coordinator(SweepSpec spec, std::string store_dir,
                         CoordinatorOptions options)
    : spec_(std::move(spec)),
      store_dir_(std::move(store_dir)),
      queue_dir_(store_dir_ + "/queue"),
      options_(std::move(options)) {
  require_clock(options_.clock, "Coordinator");
  if (auto err = spec_.validate(); !err.empty()) {
    throw std::invalid_argument("Coordinator: invalid sweep: " + err);
  }
  if (options_.task_size == 0) {
    throw std::invalid_argument("Coordinator: task_size must be positive");
  }
  if (options_.max_attempts == 0) {
    throw std::invalid_argument("Coordinator: max_attempts must be positive");
  }
}

void Coordinator::event(const std::string& message) const {
  if (options_.on_event) options_.on_event(message);
}

void Coordinator::write_task_file(const std::string& dir,
                                  const Task& task) const {
  util::atomic_write_file(dir + "/" + task_filename(task.id),
                          dump_task(task.id, task.attempts, task.indices));
}

void Coordinator::start() {
  util::ensure_directory(queue_dir_);
  for (const char* sub : {"todo", "leased", "failed", "done"}) {
    util::ensure_directory(queue_dir_ + "/" + sub);
  }
  // Take over any stale queue: a previous coordinator may have died with
  // tasks in flight.  The store, not the queue, is the truth about what
  // is finished — so wipe the queue and reseed from store coverage.
  remove_quietly(queue_dir_ + "/ready");
  remove_quietly(queue_dir_ + "/shutdown");
  for (const char* sub : {"todo", "leased", "failed", "done"}) {
    std::error_code ec;
    for (const auto& entry :
         fs::directory_iterator(queue_dir_ + "/" + sub, ec)) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }

  tasks_.clear();
  hash_by_index_.clear();
  complete_ = false;
  quarantined_cells_ = 0;

  // The coordinator's own store handle doubles as a fresh coverage scan
  // (it loads every journal on open) and as the quarantine writer.
  store_ = std::make_unique<ResultStore>(store_dir_, "coordinator");

  const std::uint64_t grid_total = spec_.scenario_count();
  total_cells_ = grid_total;
  std::vector<std::uint64_t> missing;
  for (std::uint64_t i = 0; i < grid_total; ++i) {
    const std::uint64_t hash = api::spec_content_hash(spec_.scenario(i));
    hash_by_index_[i] = hash;
    ScenarioResult row;
    QuarantinedScenario quarantined;
    if (!store_->lookup(i, hash, row) &&
        !store_->lookup_quarantine(i, hash, quarantined)) {
      missing.push_back(i);
    }
  }
  seeded_cells_ = missing.size();

  std::uint64_t next_id = 0;
  for (std::size_t at = 0; at < missing.size(); at += options_.task_size) {
    Task task;
    task.id = next_id++;
    task.attempts = 1;
    const std::size_t end =
        std::min(missing.size(), at + static_cast<std::size_t>(options_.task_size));
    task.indices.assign(missing.begin() + static_cast<std::ptrdiff_t>(at),
                        missing.begin() + static_cast<std::ptrdiff_t>(end));
    write_task_file(queue_dir_ + "/todo", task);
    tasks_[task.id] = std::move(task);
  }
  util::atomic_write_file(queue_dir_ + "/ready", "ready\n");
  started_ = true;
  event("seeded " + std::to_string(seeded_cells_) + " of " +
        std::to_string(total_cells_) + " cells into " +
        std::to_string(tasks_.size()) + " tasks");
  finish_if_idle();
}

std::size_t Coordinator::outstanding_tasks() const {
  std::size_t n = 0;
  for (const auto& [id, task] : tasks_) {
    if (task.state != TaskState::kDone &&
        task.state != TaskState::kQuarantined) {
      ++n;
    }
  }
  return n;
}

void Coordinator::requeue_or_quarantine(Task& task, const std::string& why) {
  if (task.attempts >= options_.max_attempts) {
    quarantine(task, why);
    return;
  }
  ++task.attempts;
  const std::uint64_t shift = task.attempts - 2;
  std::uint64_t backoff = options_.backoff_cap_ms;
  if (shift < 63 && (options_.backoff_base_ms << shift) >> shift ==
                        options_.backoff_base_ms) {
    backoff = std::min(options_.backoff_cap_ms,
                       options_.backoff_base_ms << shift);
  }
  task.state = TaskState::kBackoff;
  task.due_ms = options_.clock.now_ms() + backoff;
  event("task " + std::to_string(task.id) + ": " + why + "; attempt " +
        std::to_string(task.attempts) + " re-queued in " +
        std::to_string(backoff) + " ms");
}

void Coordinator::quarantine(Task& task, const std::string& why) {
  // Some of the task's cells may have landed before it failed — a crash
  // mid-task loses the task, not its committed rows.  Quarantine only
  // what a fresh store scan says is actually missing.
  const ResultStore scan(store_dir_, "coordinator-scan");
  std::uint64_t count = 0;
  for (const std::uint64_t index : task.indices) {
    const std::uint64_t hash = hash_by_index_.at(index);
    ScenarioResult row;
    QuarantinedScenario existing;
    if (scan.lookup(index, hash, row) ||
        scan.lookup_quarantine(index, hash, existing)) {
      continue;
    }
    const api::LinkSpec scenario = spec_.scenario(index);
    QuarantinedScenario q;
    q.index = index;
    q.name = scenario.name;
    q.seed = scenario.seed;
    q.attempts = task.attempts;
    q.error = why;
    store_->commit_quarantine(hash, q);
    ++count;
  }
  quarantined_cells_ += count;
  task.state = TaskState::kQuarantined;
  event("task " + std::to_string(task.id) + ": quarantined " +
        std::to_string(count) + " cells after " +
        std::to_string(task.attempts) + " attempts (" + why + ")");
}

void Coordinator::finish_if_idle() {
  if (complete_) return;
  if (outstanding_tasks() != 0) return;
  util::atomic_write_file(queue_dir_ + "/shutdown", "shutdown\n");
  complete_ = true;
  event("sweep complete; shutdown posted");
}

bool Coordinator::step() {
  if (!started_) {
    throw std::logic_error("Coordinator::step: start() was not called");
  }
  if (complete_) return true;
  const std::uint64_t now = options_.clock.now_ms();

  for (auto& [id, task] : tasks_) {
    if (task.state == TaskState::kDone ||
        task.state == TaskState::kQuarantined) {
      continue;
    }
    const std::string name = task_filename(task.id);
    const std::string done_path = queue_dir_ + "/done/" + name;
    const std::string failed_path = queue_dir_ + "/failed/" + name;
    const std::string leased_path = queue_dir_ + "/leased/" + name;
    const std::string lease_path = leased_path + ".lease";

    if (exists(done_path)) {
      task.state = TaskState::kDone;
      remove_quietly(lease_path);
      event("task " + std::to_string(task.id) + ": done");
      continue;
    }
    if (exists(failed_path)) {
      std::string text;
      std::string why = "worker reported failure";
      if (read_file(failed_path, text)) {
        try {
          const util::Json j = util::Json::parse(text);
          if (const util::Json* e = j.find("error"); e && e->is_string()) {
            why = "worker failure: " + e->as_string();
          }
        } catch (const util::JsonError&) {
        }
      }
      remove_quietly(failed_path);
      remove_quietly(leased_path);
      remove_quietly(lease_path);
      requeue_or_quarantine(task, why);
      continue;
    }

    switch (task.state) {
      case TaskState::kTodo: {
        if (exists(leased_path)) {
          task.state = TaskState::kLeased;
          task.last_beat = 0;
          task.beat_changed_ms = now;
        }
        break;
      }
      case TaskState::kLeased: {
        if (!exists(leased_path)) {
          // Not done, not failed, lease gone: the worker died in a
          // state we cannot attribute.  Treat like an expiry.
          remove_quietly(lease_path);
          requeue_or_quarantine(task, "lease file vanished");
          break;
        }
        std::string text;
        if (read_file(lease_path, text)) {
          try {
            const util::Json j = util::Json::parse(text);
            if (const util::Json* beat = j.find("beat");
                beat != nullptr && beat->is_number()) {
              const std::uint64_t value = beat->as_uint();
              if (value != task.last_beat) {
                task.last_beat = value;
                task.beat_changed_ms = now;
              }
            }
          } catch (const util::JsonError&) {
          }
        }
        if (now - task.beat_changed_ms >= options_.lease_timeout_ms) {
          remove_quietly(leased_path);
          remove_quietly(lease_path);
          requeue_or_quarantine(
              task, "lease expired (worker silent for " +
                        std::to_string(now - task.beat_changed_ms) + " ms)");
        }
        break;
      }
      case TaskState::kBackoff: {
        if (now >= task.due_ms) {
          write_task_file(queue_dir_ + "/todo", task);
          task.state = TaskState::kTodo;
          event("task " + std::to_string(task.id) + ": back in queue");
        }
        break;
      }
      case TaskState::kDone:
      case TaskState::kQuarantined:
        break;
    }
  }

  finish_if_idle();
  return complete_;
}

SweepReport Coordinator::report(StoreRunStats* stats) const {
  if (!complete_) {
    throw std::logic_error(
        "Coordinator::report: sweep is not complete");
  }
  // Fresh scan: the final rows live in worker journals written after
  // this coordinator's own store handle loaded.
  const ResultStore scan(store_dir_, "coordinator-scan");
  return assemble_report_from_store(spec_, Shard{0, 1}, scan, stats);
}

// ----------------------------------------------------------------- Worker --

Worker::Worker(SweepSpec spec, std::string store_dir, WorkerOptions options)
    : spec_(std::move(spec)),
      store_dir_(std::move(store_dir)),
      queue_dir_(store_dir_ + "/queue"),
      options_(std::move(options)),
      store_(store_dir_, options_.worker_id) {
  require_clock(options_.clock, "Worker");
  if (auto err = spec_.validate(); !err.empty()) {
    throw std::invalid_argument("Worker: invalid sweep: " + err);
  }
}

void Worker::heartbeat(std::uint64_t task_id) {
  ++beat_;
  util::Json j = util::Json::object();
  j.set("worker", options_.worker_id);
  j.set("beat", beat_);
  util::atomic_write_file(
      queue_dir_ + "/leased/" + task_filename(task_id) + ".lease", j.dump());
  last_beat_ms_ = options_.clock.now_ms();
}

bool Worker::claim(TaskFile& task) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(queue_dir_ + "/todo", ec)) {
    if (entry.path().extension() == ".json") {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) return false;
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string todo_path = queue_dir_ + "/todo/" + name;
    const std::string leased_path = queue_dir_ + "/leased/" + name;
    // The atomic claim: exactly one worker's rename succeeds; the
    // losers see ENOENT and try the next task.
    if (std::rename(todo_path.c_str(), leased_path.c_str()) != 0) continue;
    std::string text;
    if (!read_file(leased_path, text)) continue;
    try {
      const util::Json j = util::Json::parse(text);
      task.id = util::get_uint(*j.find("task"), "$.task");
      task.attempts = util::get_uint(*j.find("attempts"), "$.attempts");
      task.indices.clear();
      const util::Json* indices = j.find("indices");
      if (indices == nullptr || !indices->is_array()) {
        throw util::JsonError("$.indices: expected an array");
      }
      for (const util::Json& i : indices->as_array()) {
        task.indices.push_back(util::get_uint(i, "$.indices[]"));
      }
      return true;
    } catch (const std::exception& e) {
      // A task file we cannot decode is not ours to fix: report it as a
      // failure so the coordinator retries or quarantines it.
      util::Json j = util::Json::object();
      j.set("error", std::string("undecodable task file: ") + e.what());
      util::atomic_write_file(queue_dir_ + "/failed/" + name, j.dump());
      remove_quietly(leased_path);
    }
  }
  return false;
}

void Worker::execute(const TaskFile& task) {
  heartbeat(task.id);

  util::FaultInjector& faults = util::FaultInjector::instance();
  if (faults.armed()) {
    if (const auto stall = faults.fire("stall-worker")) {
      // Stall without beating: the coordinator should see this lease go
      // silent and re-lease the task.
      options_.clock.sleep_ms(*stall);
    }
  }

  SweepRunner::Options runner_options;
  runner_options.n_threads = 1;
  runner_options.simulator = options_.simulator;
  const SweepRunner runner(runner_options);

  for (const std::uint64_t index : task.indices) {
    if (options_.clock.now_ms() - last_beat_ms_ >= options_.heartbeat_ms) {
      heartbeat(task.id);
    }
    const std::uint64_t hash = api::spec_content_hash(spec_.scenario(index));
    ScenarioResult row;
    if (store_.lookup(index, hash, row)) continue;  // landed in a past lease
    if (faults.armed() && faults.fire("fail-scenario")) {
      throw std::runtime_error("injected scenario failure (fail-scenario)");
    }
    std::vector<ScenarioResult> rows = runner.run_indices(spec_, {index});
    store_.commit(hash, rows.front());
    ++computed_;
    if (options_.on_scenario) options_.on_scenario(rows.front());
  }

  const std::string name = task_filename(task.id);
  // Every row is already durable, so a failed rename only costs the
  // coordinator a retry that will find nothing left to compute.
  std::rename((queue_dir_ + "/leased/" + name).c_str(),
              (queue_dir_ + "/done/" + name).c_str());
  remove_quietly(queue_dir_ + "/leased/" + name + ".lease");
}

bool Worker::run_one_task() {
  TaskFile task;
  if (!claim(task)) return false;
  try {
    execute(task);
  } catch (const std::exception& e) {
    const std::string name = task_filename(task.id);
    util::Json j = util::Json::object();
    j.set("task", task.id);
    j.set("attempts", task.attempts);
    j.set("error", std::string(e.what()));
    util::atomic_write_file(queue_dir_ + "/failed/" + name, j.dump());
    remove_quietly(queue_dir_ + "/leased/" + name);
    remove_quietly(queue_dir_ + "/leased/" + name + ".lease");
  }
  return true;
}

std::uint64_t Worker::run() {
  // Wait for the coordinator to finish seeding (or to declare the sweep
  // already over).
  while (!exists(queue_dir_ + "/ready") &&
         !exists(queue_dir_ + "/shutdown")) {
    options_.clock.sleep_ms(options_.idle_poll_ms);
  }
  while (!exists(queue_dir_ + "/shutdown")) {
    if (!run_one_task()) options_.clock.sleep_ms(options_.idle_poll_ms);
  }
  return computed_;
}

}  // namespace serdes::sweep
