// Coordinator/worker sweep farm over a file-queue transport.
//
// `serdes_cli sweep --shard k/n` already splits a grid across processes,
// but the partition is static: a dead worker takes its shard's cells
// with it.  The farm replaces static shards with leased tasks.  The
// coordinator derives the missing cells from the result store, groups
// them into small task files in a queue directory, and workers claim
// tasks by atomically renaming them into the leased state — the rename
// either succeeds for exactly one worker or fails, so no lock server is
// needed.  Every row a worker finishes is committed to the shared
// `ResultStore` before the task advances, which makes worker death
// cheap: the coordinator re-leases the task and the replacement worker
// skips the cells that already landed.
//
// Queue layout (under `<store>/queue/`):
//
//   ready               coordinator finished seeding; workers may claim
//   shutdown            sweep complete (or aborted); workers exit
//   todo/task-K.json    claimable task: {"task","attempts","indices"}
//   leased/task-K.json  claimed task (same payload)
//   leased/task-K.lease worker heartbeat: {"worker","beat"} — rewritten
//                       atomically each beat
//   failed/task-K.json  worker-reported failure (payload + "error")
//   done/task-K.json    completed task
//
// Liveness uses only the coordinator's clock: a lease is expired when
// its heartbeat `beat` counter has not *changed* for `lease_timeout_ms`
// of coordinator time.  No cross-process clock comparison — worker and
// coordinator clocks never meet, so clock skew cannot strand or
// double-free a lease.  Expired and failed tasks are re-queued with
// capped exponential backoff; a task that keeps failing past
// `max_attempts` has its unfinished cells quarantined into the report
// as structured failure rows (see `QuarantinedScenario`).
//
// The library takes time through an injected `FarmClock` — never from
// the OS (the repo contract bans wall-clock reads below src/).  Callers
// in tools/ wire in a real clock; tests drive a fake one, so lease
// expiry and backoff are unit-testable without sleeping.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sweep/result_store.h"
#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"

namespace serdes::sweep {

/// Injected time source.  `now_ms` is any monotonic millisecond counter
/// (only differences are used, and only within one process); `sleep_ms`
/// blocks the caller.  Both must be set.
struct FarmClock {
  std::function<std::uint64_t()> now_ms;
  std::function<void(std::uint64_t)> sleep_ms;
};

struct CoordinatorOptions {
  FarmClock clock;
  /// Cells per task file.  Small tasks re-lease cheaply; large tasks
  /// amortize queue traffic.
  std::uint64_t task_size = 8;
  /// A lease whose heartbeat has not advanced for this long
  /// (coordinator clock) is considered dead and re-queued.
  std::uint64_t lease_timeout_ms = 10'000;
  /// Re-queue delay for attempt n is min(base << (n-1), cap).
  std::uint64_t backoff_base_ms = 1'000;
  std::uint64_t backoff_cap_ms = 30'000;
  /// Attempts (initial + retries) before a task's unfinished cells are
  /// quarantined.
  std::uint64_t max_attempts = 3;
  /// Progress/event sink (lease expiries, re-queues, quarantines).
  std::function<void(const std::string&)> on_event;
};

/// Owns the queue directory and the sweep's lifecycle.  Drive it with
/// `start()` then repeated `step()` (the CLI sleeps between steps; tests
/// advance a fake clock instead).
class Coordinator {
 public:
  /// Throws std::invalid_argument on an invalid sweep or options
  /// without a clock; util::FileError when the store/queue directories
  /// cannot be created.
  Coordinator(SweepSpec spec, std::string store_dir,
              CoordinatorOptions options);

  /// Reseeds the queue from the store: clears any stale queue state
  /// (a restarted coordinator takes over cleanly), writes task files
  /// for every cell the store lacks, then posts the `ready` marker.
  /// With a warm store this completes the sweep immediately.
  void start();

  /// One scheduling pass: collects done/failed tasks, expires dead
  /// leases, flushes due backoffs, quarantines hopeless tasks.  Returns
  /// true once every task is done or quarantined (the `shutdown` marker
  /// is posted at that point).
  bool step();

  /// Final report, assembled from a fresh scan of the store.  Valid
  /// after `step()` has returned true; throws otherwise.
  [[nodiscard]] SweepReport report(StoreRunStats* stats = nullptr) const;

  // ---- introspection (tests and CLI progress) ----
  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] std::uint64_t total_cells() const { return total_cells_; }
  [[nodiscard]] std::uint64_t seeded_cells() const { return seeded_cells_; }
  [[nodiscard]] std::size_t outstanding_tasks() const;
  [[nodiscard]] std::uint64_t quarantined_cells() const {
    return quarantined_cells_;
  }

 private:
  enum class TaskState { kTodo, kLeased, kBackoff, kDone, kQuarantined };

  struct Task {
    std::uint64_t id = 0;
    std::uint64_t attempts = 1;
    std::vector<std::uint64_t> indices;
    TaskState state = TaskState::kTodo;
    // kLeased: heartbeat tracking, all on the coordinator's clock.
    std::uint64_t last_beat = 0;
    std::uint64_t beat_changed_ms = 0;
    // kBackoff: when to re-queue.
    std::uint64_t due_ms = 0;
  };

  void event(const std::string& message) const;
  void write_task_file(const std::string& dir, const Task& task) const;
  void requeue_or_quarantine(Task& task, const std::string& why);
  void quarantine(Task& task, const std::string& why);
  void finish_if_idle();

  SweepSpec spec_;
  std::string store_dir_;
  std::string queue_dir_;
  CoordinatorOptions options_;
  /// Grid index -> spec content hash, for the shard (whole grid).
  std::map<std::uint64_t, std::uint64_t> hash_by_index_;
  std::map<std::uint64_t, Task> tasks_;
  /// Coordinator's own quarantine writer (journal-coordinator.srj).
  std::unique_ptr<ResultStore> store_;
  bool started_ = false;
  bool complete_ = false;
  std::uint64_t total_cells_ = 0;
  std::uint64_t seeded_cells_ = 0;
  std::uint64_t quarantined_cells_ = 0;
};

struct WorkerOptions {
  FarmClock clock;
  /// Names this worker's journal and heartbeat entries; must be unique
  /// across live workers.
  std::string worker_id = "w0";
  /// Heartbeat rewrite period while executing a task.
  std::uint64_t heartbeat_ms = 1'000;
  /// Idle poll period while the queue is empty.
  std::uint64_t idle_poll_ms = 200;
  api::Simulator::Options simulator{};
  /// Per-completed-row callback (progress reporting).
  std::function<void(const ScenarioResult&)> on_scenario;
};

/// Claims and executes tasks until the coordinator posts `shutdown`.
class Worker {
 public:
  /// Throws std::invalid_argument on an invalid sweep or options
  /// without a clock; util::FileError when the store cannot be opened.
  Worker(SweepSpec spec, std::string store_dir, WorkerOptions options);

  /// Blocks until shutdown; returns the number of cells this worker
  /// computed.  Honors the fault sites `stall-worker` (sleep before a
  /// claimed task runs) and `fail-scenario` (scenario attempt throws),
  /// plus the store's commit crash sites.
  std::uint64_t run();

  /// One scheduling step for deterministic tests: claims at most one
  /// task and executes it to completion (or failure).  Returns true
  /// when a task was claimed.  Does not wait for `ready`.
  bool run_one_task();

  [[nodiscard]] std::uint64_t cells_computed() const { return computed_; }

 private:
  struct TaskFile {
    std::uint64_t id = 0;
    std::uint64_t attempts = 1;
    std::vector<std::uint64_t> indices;
  };

  bool claim(TaskFile& task);
  void execute(const TaskFile& task);
  void heartbeat(std::uint64_t task_id);

  SweepSpec spec_;
  std::string store_dir_;
  std::string queue_dir_;
  WorkerOptions options_;
  ResultStore store_;
  std::uint64_t computed_ = 0;
  std::uint64_t beat_ = 0;
  std::uint64_t last_beat_ms_ = 0;
};

}  // namespace serdes::sweep
