#include "sweep/result_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "api/spec_json.h"
#include "util/fault.h"
#include "util/fs.h"
#include "util/json.h"

namespace serdes::sweep {

namespace {

constexpr std::string_view kMagic = "SRD1 ";

/// Formats one record: header line, payload, trailing newline.  The
/// checksum covers exactly the payload bytes, so a reader can verify a
/// record without trusting anything after it.
std::string format_record(const std::string& payload) {
  std::string record;
  record.reserve(payload.size() + 40);
  record.append(kMagic);
  record.append(std::to_string(payload.size()));
  record.push_back(' ');
  record.append(util::hex64(util::fnv1a64(payload)));
  record.push_back('\n');
  record.append(payload);
  record.push_back('\n');
  return record;
}

std::string row_payload(std::uint64_t spec_hash, const ScenarioResult& row) {
  util::Json j = util::Json::object();
  j.set("type", "row");
  j.set("spec_hash", util::hex64(spec_hash));
  j.set("row", to_json(row));
  return j.dump();
}

std::string quarantine_payload(std::uint64_t spec_hash,
                               const QuarantinedScenario& row) {
  util::Json j = util::Json::object();
  j.set("type", "quarantine");
  j.set("spec_hash", util::hex64(spec_hash));
  j.set("quarantine", to_json(row));
  return j.dump();
}

void write_fully(int fd, const char* data, std::size_t size,
                 const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::FileError(path, std::string("journal write failed (") +
                                      std::strerror(errno) + ")");
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

ResultStore::ResultStore(std::string dir, std::string writer_id)
    : dir_(std::move(dir)), writer_id_(std::move(writer_id)) {
  util::ensure_directory(dir_);
  // Load every journal in name order so replay is deterministic whatever
  // order the filesystem lists them in.
  std::vector<std::string> journals;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("journal-", 0) == 0 &&
        name.size() > 4 && name.compare(name.size() - 4, 4, ".srj") == 0) {
      journals.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw util::FileError(dir_,
                          "cannot list store directory (" + ec.message() + ")");
  }
  std::sort(journals.begin(), journals.end());
  for (const auto& path : journals) load_journal(path);
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) ::close(fd_);
}

void ResultStore::load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    warnings_.push_back(path + ": cannot open journal; ignoring it");
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  std::size_t at = 0;
  while (at < data.size()) {
    const std::size_t record_start = at;
    auto corrupt = [&](const std::string& why) {
      warnings_.push_back(path + ": " + why + " at offset " +
                          std::to_string(record_start) +
                          "; skipping the rest of this journal (those cells "
                          "will be recomputed)");
      at = data.size();
    };
    // Header line: SRD1 <len> <hex>\n
    if (data.compare(at, kMagic.size(), kMagic) != 0) {
      corrupt("bad record magic");
      break;
    }
    const std::size_t header_end = data.find('\n', at);
    if (header_end == std::string::npos) {
      corrupt("truncated record header");
      break;
    }
    const std::string header =
        data.substr(at + kMagic.size(), header_end - at - kMagic.size());
    const std::size_t space = header.find(' ');
    std::uint64_t checksum = 0;
    std::size_t payload_len = 0;
    bool header_ok = space != std::string::npos &&
                     util::parse_hex64(header.substr(space + 1), checksum);
    if (header_ok) {
      const std::string len_text = header.substr(0, space);
      header_ok = !len_text.empty() &&
                  len_text.find_first_not_of("0123456789") == std::string::npos;
      if (header_ok) payload_len = std::stoull(len_text);
    }
    if (!header_ok) {
      corrupt("malformed record header");
      break;
    }
    const std::size_t payload_start = header_end + 1;
    if (payload_start + payload_len + 1 > data.size()) {
      corrupt("truncated record payload");
      break;
    }
    const std::string_view payload(data.data() + payload_start, payload_len);
    if (data[payload_start + payload_len] != '\n') {
      corrupt("record payload missing terminator");
      break;
    }
    if (util::fnv1a64(payload) != checksum) {
      corrupt("record checksum mismatch");
      break;
    }
    at = payload_start + payload_len + 1;

    // A record that checksums clean but does not parse is a writer bug,
    // not tail corruption: warn, drop it, keep reading.
    try {
      const util::Json j = util::Json::parse(payload);
      const std::string& type = util::get_string(*j.find("type"), "$.type");
      std::uint64_t spec_hash = 0;
      if (const util::Json* h = j.find("spec_hash");
          h == nullptr ||
          !util::parse_hex64(util::get_string(*h, "$.spec_hash"), spec_hash)) {
        throw util::JsonError("$.spec_hash: expected 16 hex digits");
      }
      if (type == "row") {
        const util::Json* row_json = j.find("row");
        if (row_json == nullptr) throw util::JsonError("$.row: missing");
        ScenarioResult row = scenario_result_from_json(*row_json, "$.row");
        rows_[Key{row.index, spec_hash}] = std::move(row);
      } else if (type == "quarantine") {
        const util::Json* q_json = j.find("quarantine");
        if (q_json == nullptr) throw util::JsonError("$.quarantine: missing");
        QuarantinedScenario row = quarantined_from_json(*q_json, "$.quarantine");
        quarantined_[Key{row.index, spec_hash}] = std::move(row);
      } else {
        throw util::JsonError("$.type: unknown record type '" + type + "'");
      }
    } catch (const util::JsonError& e) {
      warnings_.push_back(path + ": undecodable record at offset " +
                          std::to_string(record_start) + " (" + e.what() +
                          "); dropping it");
    }
  }
}

bool ResultStore::lookup(std::uint64_t index, std::uint64_t spec_hash,
                         ScenarioResult& row) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rows_.find(Key{index, spec_hash});
  if (it == rows_.end()) return false;
  row = it->second;
  return true;
}

bool ResultStore::lookup_quarantine(std::uint64_t index,
                                    std::uint64_t spec_hash,
                                    QuarantinedScenario& row) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = quarantined_.find(Key{index, spec_hash});
  if (it == quarantined_.end()) return false;
  row = it->second;
  return true;
}

std::size_t ResultStore::row_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

void ResultStore::append_record(const std::string& payload) {
  const std::string journal_path =
      dir_ + "/journal-" + writer_id_ + ".srj";
  if (fd_ < 0) {
    fd_ = ::open(journal_path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd_ < 0) {
      throw util::FileError(journal_path,
                            std::string("cannot open journal for append (") +
                                std::strerror(errno) + ")");
    }
  }
  const std::string record = format_record(payload);

  util::FaultInjector& faults = util::FaultInjector::instance();
  if (faults.armed()) {
    if (faults.fire("crash-before-commit")) {
      util::FaultInjector::crash("crash-before-commit");
    }
    if (const auto torn = faults.fire("torn-commit")) {
      // A torn write: only `arg` bytes of the record reach the disk,
      // then the process dies.  The loader must treat this tail as
      // corrupt and recompute the cell.
      const std::size_t n =
          std::min(record.size(), static_cast<std::size_t>(*torn));
      write_fully(fd_, record.data(), n, journal_path);
      ::fsync(fd_);
      util::FaultInjector::crash("torn-commit");
    }
  }

  write_fully(fd_, record.data(), record.size(), journal_path);
  if (::fsync(fd_) != 0) {
    throw util::FileError(journal_path, std::string("journal fsync failed (") +
                                            std::strerror(errno) + ")");
  }

  if (faults.armed() && faults.fire("crash-after-commit")) {
    util::FaultInjector::crash("crash-after-commit");
  }
}

void ResultStore::commit(std::uint64_t spec_hash, const ScenarioResult& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  append_record(row_payload(spec_hash, row));
  rows_[Key{row.index, spec_hash}] = row;
}

void ResultStore::commit_quarantine(std::uint64_t spec_hash,
                                    const QuarantinedScenario& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  append_record(quarantine_payload(spec_hash, row));
  quarantined_[Key{row.index, spec_hash}] = row;
}

namespace {

/// Shard cells with their content hashes, in ascending grid order.
struct ShardCells {
  std::vector<std::uint64_t> indices;
  std::vector<std::uint64_t> hashes;
};

ShardCells shard_cells(const SweepSpec& spec, Shard shard) {
  if (auto err = spec.validate(); !err.empty()) {
    throw std::invalid_argument("ResultStore: invalid sweep: " + err);
  }
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::invalid_argument(
        "ResultStore: shard " + std::to_string(shard.index) + "/" +
        std::to_string(shard.count) + " is not a valid partition");
  }
  ShardCells cells;
  const std::uint64_t total = spec.scenario_count();
  for (std::uint64_t i = shard.index; i < total; i += shard.count) {
    cells.indices.push_back(i);
    cells.hashes.push_back(api::spec_content_hash(spec.scenario(i)));
  }
  return cells;
}

SweepReport report_skeleton(const SweepSpec& spec, Shard shard) {
  SweepReport report;
  report.sweep_name = spec.name;
  report.grid_total = spec.scenario_count();
  report.shard = shard;
  report.axes = spec.axes;
  return report;
}

/// Fills `report` (and `stats`) from the store for the given cells.
/// Returns the indices of cells the store does not cover.
std::vector<std::uint64_t> assemble_covered(const ShardCells& cells,
                                            const ResultStore& store,
                                            SweepReport& report,
                                            StoreRunStats& stats) {
  std::vector<std::uint64_t> missing;
  for (std::size_t k = 0; k < cells.indices.size(); ++k) {
    const std::uint64_t index = cells.indices[k];
    const std::uint64_t hash = cells.hashes[k];
    ScenarioResult row;
    QuarantinedScenario quarantine;
    if (store.lookup(index, hash, row)) {
      report.scenarios.push_back(std::move(row));
      ++stats.cached;
    } else if (store.lookup_quarantine(index, hash, quarantine)) {
      report.quarantined.push_back(std::move(quarantine));
      ++stats.quarantined;
    } else {
      missing.push_back(index);
    }
  }
  return missing;
}

}  // namespace

SweepReport run_sweep_with_store(const SweepRunner& runner,
                                 const SweepSpec& spec, ResultStore& store,
                                 StoreRunStats* stats) {
  const Shard shard = runner.options().shard;
  const ShardCells cells = shard_cells(spec, shard);
  SweepReport report = report_skeleton(spec, shard);
  StoreRunStats local{};
  local.total = cells.indices.size();

  const std::vector<std::uint64_t> missing =
      assemble_covered(cells, store, report, local);

  if (!missing.empty()) {
    // Hash lookup for the commit callback: rows complete in any order.
    std::map<std::uint64_t, std::uint64_t> hash_by_index;
    for (std::size_t k = 0; k < cells.indices.size(); ++k) {
      hash_by_index[cells.indices[k]] = cells.hashes[k];
    }
    SweepRunner::Options options = runner.options();
    const auto user_callback = options.on_scenario;
    // Commit each row the moment its scenario finishes — durability must
    // track completion, not the end of the run, or a crash forfeits
    // every in-flight cell.
    options.on_scenario = [&store, &hash_by_index,
                           user_callback](const ScenarioResult& row) {
      store.commit(hash_by_index.at(row.index), row);
      if (user_callback) user_callback(row);
    };
    const SweepRunner computing(std::move(options));
    std::vector<ScenarioResult> computed = computing.run_indices(spec, missing);
    local.computed = computed.size();
    for (auto& row : computed) report.scenarios.push_back(std::move(row));
  }

  finalize_aggregates(report);
  if (stats != nullptr) *stats = local;
  return report;
}

SweepReport assemble_report_from_store(const SweepSpec& spec, Shard shard,
                                       const ResultStore& store,
                                       StoreRunStats* stats) {
  const ShardCells cells = shard_cells(spec, shard);
  SweepReport report = report_skeleton(spec, shard);
  StoreRunStats local{};
  local.total = cells.indices.size();
  const std::vector<std::uint64_t> missing =
      assemble_covered(cells, store, report, local);
  if (!missing.empty()) {
    throw std::runtime_error(
        "result store at " + store.dir() + " does not cover scenario " +
        std::to_string(missing.front()) + " (" +
        std::to_string(missing.size()) + " cells missing)");
  }
  finalize_aggregates(report);
  if (stats != nullptr) *stats = local;
  return report;
}

}  // namespace serdes::sweep
