// Durable, crash-safe result store for sweep runs.
//
// A sweep that dies at scenario 900 of 1000 should not owe the cluster
// 900 recomputed cells.  The store makes every finished scenario durable
// the moment it completes: each row is appended to a per-writer journal
// with an fsync per record, so after `kill -9` the journal holds every
// committed row intact plus at most one torn record at the tail.  On
// open the loader verifies each record's checksum and length, keeps the
// valid prefix, and skips a corrupt tail with a warning — a damaged
// store costs recomputing the lost cells, never a crash or a wrong row.
//
// Keying: a cell is identified by its grid index plus the content hash
// of its fully-expanded scenario spec (`api::spec_content_hash`).  Edit
// the sweep — change an axis value, a payload knob, a seed policy — and
// affected cells simply miss the cache and recompute, while untouched
// cells are served from the store.  A finished sweep re-run against its
// store computes zero scenarios.
//
// On-disk layout (`dir` is the `--store` directory):
//
//   journal-<writer>.srj    append-only record journals, one per writer
//                           (one per worker process in farm mode), so
//                           concurrent writers never interleave bytes
//
// Record wire format (one per committed cell):
//
//   SRD1 <payload_len> <fnv1a64-hex>\n<payload>\n
//
// where payload is a compact JSON object {"type":"row"|"quarantine",
// "spec_hash":"<hex16>", "row"|"quarantine":{...}} and the checksum
// covers exactly the payload bytes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"

namespace serdes::sweep {

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `dir` and loads every
  /// journal.  `writer_id` names this process's own journal file; give
  /// each concurrent writer a distinct id.  Throws util::FileError when
  /// the directory cannot be created or written.
  explicit ResultStore(std::string dir, std::string writer_id = "main");
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// True (filling `row`) when the store holds a result for this grid
  /// index computed from a spec with this content hash.
  [[nodiscard]] bool lookup(std::uint64_t index, std::uint64_t spec_hash,
                            ScenarioResult& row) const;

  /// True (filling `row`) when the cell was quarantined under this hash.
  [[nodiscard]] bool lookup_quarantine(std::uint64_t index,
                                       std::uint64_t spec_hash,
                                       QuarantinedScenario& row) const;

  /// Durably appends a result row: the record is on disk (fsync'd)
  /// before this returns.  Honors the fault-injection sites
  /// crash-before-commit / torn-commit / crash-after-commit.
  void commit(std::uint64_t spec_hash, const ScenarioResult& row);

  /// Durably appends a quarantine record (same crash discipline).
  void commit_quarantine(std::uint64_t spec_hash,
                         const QuarantinedScenario& row);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Rows currently resident (across all journals and hashes).
  [[nodiscard]] std::size_t row_count() const;

  /// Non-fatal findings from loading: corrupt tails skipped, malformed
  /// records dropped.  Each names the journal file involved.
  [[nodiscard]] const std::vector<std::string>& warnings() const {
    return warnings_;
  }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // {index, spec_hash}

  void load_journal(const std::string& path);
  void append_record(const std::string& payload);

  std::string dir_;
  std::string writer_id_;
  int fd_ = -1;  ///< this writer's journal, opened lazily on first commit
  mutable std::mutex mutex_;
  std::map<Key, ScenarioResult> rows_;
  std::map<Key, QuarantinedScenario> quarantined_;
  std::vector<std::string> warnings_;
};

/// Checkpoint/resume statistics for one store-backed run.
struct StoreRunStats {
  std::uint64_t total = 0;        ///< cells in this shard
  std::uint64_t cached = 0;       ///< served from the store
  std::uint64_t computed = 0;     ///< simulated (and committed) this run
  std::uint64_t quarantined = 0;  ///< carried as quarantine rows
};

/// Store-backed sweep: computes only the shard cells the store lacks
/// (committing each the moment it completes), then assembles the report
/// from the store.  A warm store computes nothing; a store from a killed
/// run computes exactly the missing cells; the resulting report is
/// byte-identical to an uninterrupted run either way.  Quarantine
/// records count as covered — they surface as report failure rows, not
/// recomputation.
[[nodiscard]] SweepReport run_sweep_with_store(const SweepRunner& runner,
                                               const SweepSpec& spec,
                                               ResultStore& store,
                                               StoreRunStats* stats = nullptr);

/// Pure assembly: builds the shard's report from the store without
/// computing anything.  Throws std::runtime_error naming the first
/// uncovered cell when the store is incomplete (the farm coordinator
/// calls this only after every task is done or quarantined).
[[nodiscard]] SweepReport assemble_report_from_store(
    const SweepSpec& spec, Shard shard, const ResultStore& store,
    StoreRunStats* stats = nullptr);

}  // namespace serdes::sweep
