#include "sweep/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace serdes::sweep {

using util::Json;

ScenarioResult to_scenario_result(std::uint64_t index,
                                  const api::RunReport& report) {
  ScenarioResult row;
  row.index = index;
  row.name = report.spec.name;
  row.seed = report.spec.seed;
  row.aligned = report.aligned;
  row.bits = report.bits;
  row.errors = report.errors;
  row.ber = report.ber;
  row.ber_upper_bound = report.ber_upper_bound;
  row.cdr_decision_phase = report.cdr_decision_phase;
  row.cdr_phase_updates = report.cdr_phase_updates;
  row.rx_swing_pp = report.rx_swing_pp;
  row.decision_threshold = report.decision_threshold;
  row.eye_height = report.eye.eye_height;
  row.eye_width_ui = report.eye.eye_width_ui;
  if (report.stat) {
    row.has_stat = true;
    row.stat_min_ber = report.stat->min_ber;
    row.stat_timing_margin_ui = report.stat->timing_margin_ui;
    row.stat_eye_height_v = report.stat->eye_height_v;
    row.stat_cross_checked = report.stat->cross_checked;
    row.stat_consistent = report.stat->consistent;
  }
  return row;
}

namespace {

/// Nearest-rank quantile over an already-sorted vector.
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

SurfaceStats surface_stats(std::vector<double> values) {
  SurfaceStats s;
  if (values.empty()) return s;
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p50 = quantile(values, 0.50);
  s.p90 = quantile(values, 0.90);
  s.p99 = quantile(values, 0.99);
  return s;
}

Json to_json(const SurfaceStats& s, std::uint64_t count) {
  Json j = Json::object();
  j.set("count", count);
  j.set("min", s.min);
  j.set("max", s.max);
  j.set("mean", s.mean);
  j.set("p50", s.p50);
  j.set("p90", s.p90);
  j.set("p99", s.p99);
  return j;
}

}  // namespace

Json to_json(const ScenarioResult& row) {
  Json j = Json::object();
  j.set("index", row.index);
  j.set("name", row.name);
  j.set("seed", row.seed);
  j.set("aligned", row.aligned);
  j.set("bits", row.bits);
  j.set("errors", row.errors);
  j.set("ber", row.ber);
  j.set("ber_upper_bound", row.ber_upper_bound);
  j.set("cdr_decision_phase", row.cdr_decision_phase);
  j.set("cdr_phase_updates", row.cdr_phase_updates);
  j.set("rx_swing_pp", row.rx_swing_pp);
  j.set("decision_threshold", row.decision_threshold);
  j.set("eye_height", row.eye_height);
  j.set("eye_width_ui", row.eye_width_ui);
  if (row.has_stat) {
    Json s = Json::object();
    s.set("min_ber", row.stat_min_ber);
    s.set("timing_margin_ui", row.stat_timing_margin_ui);
    s.set("eye_height_v", row.stat_eye_height_v);
    s.set("cross_checked", row.stat_cross_checked);
    s.set("consistent", row.stat_consistent);
    j.set("stat", std::move(s));
  }
  return j;
}

ScenarioResult scenario_result_from_json(const Json& json,
                                         const std::string& path) {
  if (!json.is_object()) util::fail_at(path, "expected a scenario row object");
  ScenarioResult row;
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "index") {
      row.index = util::get_uint(value, p);
    } else if (key == "name") {
      row.name = util::get_string(value, p);
    } else if (key == "seed") {
      row.seed = util::get_uint(value, p);
    } else if (key == "aligned") {
      row.aligned = util::get_bool(value, p);
    } else if (key == "bits") {
      row.bits = util::get_uint(value, p);
    } else if (key == "errors") {
      row.errors = util::get_uint(value, p);
    } else if (key == "ber") {
      row.ber = util::get_double(value, p);
    } else if (key == "ber_upper_bound") {
      row.ber_upper_bound = util::get_double(value, p);
    } else if (key == "cdr_decision_phase") {
      row.cdr_decision_phase = static_cast<int>(util::get_int(value, p));
    } else if (key == "cdr_phase_updates") {
      row.cdr_phase_updates = util::get_uint(value, p);
    } else if (key == "rx_swing_pp") {
      row.rx_swing_pp = util::get_double(value, p);
    } else if (key == "decision_threshold") {
      row.decision_threshold = util::get_double(value, p);
    } else if (key == "eye_height") {
      row.eye_height = util::get_double(value, p);
    } else if (key == "eye_width_ui") {
      row.eye_width_ui = util::get_double(value, p);
    } else if (key == "stat") {
      if (!value.is_object()) util::fail_at(p, "expected a stat object");
      row.has_stat = true;
      for (const auto& [stat_key, stat_value] : value.as_object()) {
        const std::string sp = p + "." + stat_key;
        if (stat_key == "min_ber") {
          row.stat_min_ber = util::get_double(stat_value, sp);
        } else if (stat_key == "timing_margin_ui") {
          row.stat_timing_margin_ui = util::get_double(stat_value, sp);
        } else if (stat_key == "eye_height_v") {
          row.stat_eye_height_v = util::get_double(stat_value, sp);
        } else if (stat_key == "cross_checked") {
          row.stat_cross_checked = util::get_bool(stat_value, sp);
        } else if (stat_key == "consistent") {
          row.stat_consistent = util::get_bool(stat_value, sp);
        } else {
          util::fail_at(sp, "unknown scenario stat field '" + stat_key + "'");
        }
      }
    } else {
      util::fail_at(p, "unknown scenario row field '" + key + "'");
    }
  }
  return row;
}

Json to_json(const QuarantinedScenario& row) {
  Json j = Json::object();
  j.set("index", row.index);
  j.set("name", row.name);
  j.set("seed", row.seed);
  j.set("attempts", row.attempts);
  j.set("error", row.error);
  return j;
}

QuarantinedScenario quarantined_from_json(const Json& json,
                                          const std::string& path) {
  if (!json.is_object()) util::fail_at(path, "expected a quarantine object");
  QuarantinedScenario row;
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "index") {
      row.index = util::get_uint(value, p);
    } else if (key == "name") {
      row.name = util::get_string(value, p);
    } else if (key == "seed") {
      row.seed = util::get_uint(value, p);
    } else if (key == "attempts") {
      row.attempts = util::get_uint(value, p);
    } else if (key == "error") {
      row.error = util::get_string(value, p);
    } else {
      util::fail_at(p, "unknown quarantine field '" + key + "'");
    }
  }
  return row;
}

void finalize_aggregates(SweepReport& report) {
  std::sort(report.scenarios.begin(), report.scenarios.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) {
              return a.index < b.index;
            });
  std::sort(report.quarantined.begin(), report.quarantined.end(),
            [](const QuarantinedScenario& a, const QuarantinedScenario& b) {
              return a.index < b.index;
            });
  report.aligned_count = 0;
  report.error_free_count = 0;
  report.total_bits = 0;
  report.total_errors = 0;
  report.stat_count = 0;
  report.stat_cross_checked_count = 0;
  report.stat_consistent_count = 0;
  const std::size_t n = report.scenarios.size();
  std::vector<double> ber, ber_ub, eye_h, eye_w, swing;
  std::vector<double> stat_ber, stat_margin, stat_eye;
  ber.reserve(n);
  ber_ub.reserve(n);
  eye_h.reserve(n);
  eye_w.reserve(n);
  swing.reserve(n);
  for (const auto& row : report.scenarios) {
    if (row.aligned) ++report.aligned_count;
    if (row.aligned && row.errors == 0 && row.bits > 0) {
      ++report.error_free_count;
    }
    report.total_bits += row.bits;
    report.total_errors += row.errors;
    ber.push_back(row.ber);
    ber_ub.push_back(row.ber_upper_bound);
    eye_h.push_back(row.eye_height);
    eye_w.push_back(row.eye_width_ui);
    swing.push_back(row.rx_swing_pp);
    if (row.has_stat) {
      ++report.stat_count;
      if (row.stat_cross_checked) ++report.stat_cross_checked_count;
      if (row.stat_consistent) ++report.stat_consistent_count;
      stat_ber.push_back(row.stat_min_ber);
      stat_margin.push_back(row.stat_timing_margin_ui);
      stat_eye.push_back(row.stat_eye_height_v);
    }
  }
  report.ber = surface_stats(std::move(ber));
  report.ber_upper_bound = surface_stats(std::move(ber_ub));
  report.eye_height = surface_stats(std::move(eye_h));
  report.eye_width_ui = surface_stats(std::move(eye_w));
  report.rx_swing_pp = surface_stats(std::move(swing));
  report.stat_min_ber = surface_stats(std::move(stat_ber));
  report.stat_timing_margin_ui = surface_stats(std::move(stat_margin));
  report.stat_eye_height_v = surface_stats(std::move(stat_eye));
}

SweepReport SweepRunner::run(const SweepSpec& spec) const {
  if (auto err = spec.validate(); !err.empty()) {
    throw std::invalid_argument("SweepRunner: invalid sweep: " + err);
  }
  const Shard shard = options_.shard;
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::invalid_argument(
        "SweepRunner: shard " + std::to_string(shard.index) + "/" +
        std::to_string(shard.count) + " is not a valid partition");
  }

  SweepReport report;
  report.sweep_name = spec.name;
  report.grid_total = spec.scenario_count();
  report.shard = shard;
  report.axes = spec.axes;

  // The shard owns grid indices congruent to shard.index mod shard.count.
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = shard.index; i < report.grid_total;
       i += shard.count) {
    indices.push_back(i);
  }
  report.scenarios = run_indices(spec, indices);
  finalize_aggregates(report);
  return report;
}

std::vector<ScenarioResult> SweepRunner::run_indices(
    const SweepSpec& spec, const std::vector<std::uint64_t>& indices) const {
  if (auto err = spec.validate(); !err.empty()) {
    throw std::invalid_argument("SweepRunner: invalid sweep: " + err);
  }
  std::vector<ScenarioResult> rows(indices.size());
  if (indices.empty()) return rows;

  const api::Simulator simulator(options_.simulator);

  // Work items: scalar scenarios, plus lane tiles for scenarios that
  // opted into lane_batch (grouped by identical physics — equal
  // Simulator::tile_key — and cut into tiles of at most lane_batch
  // lanes).  Scenario specs are rebuilt from their grid index inside the
  // worker, so the grouping pass only holds keys; each row's result is
  // bit-identical with tiling on or off, at any thread count.
  struct WorkItem {
    bool tile = false;
    std::vector<std::size_t> slots;  // indices into `indices`
  };
  std::vector<WorkItem> items;
  if (options_.simulator.lane_tiling) {
    std::vector<std::string> keys;  // insertion-ordered: deterministic
    std::vector<std::vector<std::size_t>> groups;
    std::vector<int> widths;
    for (std::size_t slot = 0; slot < indices.size(); ++slot) {
      const api::LinkSpec scenario = spec.scenario(indices[slot]);
      if (!api::Simulator::tile_eligible(scenario)) {
        items.push_back(WorkItem{false, {slot}});
        continue;
      }
      const std::string key = api::Simulator::tile_key(scenario);
      std::size_t g = keys.size();
      for (std::size_t k = 0; k < keys.size(); ++k) {
        if (keys[k] == key) {
          g = k;
          break;
        }
      }
      if (g == keys.size()) {
        keys.push_back(key);
        groups.emplace_back();
        widths.push_back(scenario.lane_batch);
      }
      groups[g].push_back(slot);
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::vector<std::size_t>& group = groups[g];
      const auto width = static_cast<std::size_t>(widths[g]);
      for (std::size_t at = 0; at < group.size(); at += width) {
        WorkItem item;
        item.tile = true;
        const std::size_t end = std::min(group.size(), at + width);
        item.slots.assign(group.begin() + static_cast<std::ptrdiff_t>(at),
                          group.begin() + static_cast<std::ptrdiff_t>(end));
        items.push_back(std::move(item));
      }
    }
  } else {
    for (std::size_t slot = 0; slot < indices.size(); ++slot) {
      items.push_back(WorkItem{false, {slot}});
    }
  }

  unsigned workers =
      options_.n_threads > 0
          ? static_cast<unsigned>(options_.n_threads)
          : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(workers,
                               static_cast<unsigned>(items.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex progress_mutex;

  auto worker = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t idx = next.fetch_add(1);
      if (idx >= items.size()) return;
      const WorkItem& item = items[idx];
      try {
        if (item.tile) {
          std::vector<api::LinkSpec> lane_specs;
          lane_specs.reserve(item.slots.size());
          for (const std::size_t slot : item.slots) {
            lane_specs.push_back(spec.scenario(indices[slot]));
          }
          const std::vector<api::RunReport> tile_reports =
              simulator.run_lane_tile(lane_specs);
          for (std::size_t j = 0; j < item.slots.size(); ++j) {
            const std::size_t slot = item.slots[j];
            rows[slot] = to_scenario_result(indices[slot], tile_reports[j]);
          }
          if (options_.on_scenario) {
            const std::lock_guard<std::mutex> lock(progress_mutex);
            for (const std::size_t slot : item.slots) {
              options_.on_scenario(rows[slot]);
            }
          }
        } else {
          const std::size_t slot = item.slots[0];
          const std::uint64_t grid_index = indices[slot];
          const api::RunReport run_report =
              simulator.run(spec.scenario(grid_index));
          rows[slot] = to_scenario_result(grid_index, run_report);
          if (options_.on_scenario) {
            const std::lock_guard<std::mutex> lock(progress_mutex);
            options_.on_scenario(rows[slot]);
          }
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  return rows;
}

SweepReport merge_shard_rows(const std::vector<SweepReport>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_shard_rows: no reports to merge");
  }
  SweepReport merged;
  merged.sweep_name = shards.front().sweep_name;
  merged.grid_total = shards.front().grid_total;
  merged.shard = Shard{0, 1};
  merged.axes = shards.front().axes;
  for (const auto& shard : shards) {
    if (shard.sweep_name != merged.sweep_name ||
        shard.grid_total != merged.grid_total) {
      throw std::invalid_argument(
          "merge_shard_rows: reports come from different sweeps");
    }
    merged.scenarios.insert(merged.scenarios.end(), shard.scenarios.begin(),
                            shard.scenarios.end());
    merged.quarantined.insert(merged.quarantined.end(),
                              shard.quarantined.begin(),
                              shard.quarantined.end());
  }
  std::sort(merged.scenarios.begin(), merged.scenarios.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) {
              return a.index < b.index;
            });
  std::sort(merged.quarantined.begin(), merged.quarantined.end(),
            [](const QuarantinedScenario& a, const QuarantinedScenario& b) {
              return a.index < b.index;
            });
  for (std::size_t i = 1; i < merged.scenarios.size(); ++i) {
    if (merged.scenarios[i].index == merged.scenarios[i - 1].index) {
      throw std::invalid_argument(
          "merge_shard_rows: scenario " +
          std::to_string(merged.scenarios[i].index) +
          " appears in more than one shard");
    }
  }
  for (std::size_t i = 1; i < merged.quarantined.size(); ++i) {
    if (merged.quarantined[i].index == merged.quarantined[i - 1].index) {
      throw std::invalid_argument(
          "merge_shard_rows: quarantined scenario " +
          std::to_string(merged.quarantined[i].index) +
          " appears in more than one shard");
    }
  }
  // A cell is either a result row or a quarantine row, never both — a
  // shard that computed a scenario another shard quarantined means the
  // shards disagree about the grid and the merge is unsound.
  {
    std::size_t row = 0;
    for (const auto& q : merged.quarantined) {
      while (row < merged.scenarios.size() &&
             merged.scenarios[row].index < q.index) {
        ++row;
      }
      if (row < merged.scenarios.size() &&
          merged.scenarios[row].index == q.index) {
        throw std::invalid_argument(
            "merge_shard_rows: scenario " + std::to_string(q.index) +
            " is both computed and quarantined across shards");
      }
    }
  }
  // The merged report claims shard {0, 1} — the whole grid — so a missing
  // shard must be an error, not silently wrong full-grid statistics.
  // Quarantined cells count as covered: they are present in the report,
  // just as structured failures instead of rows.
  const std::size_t covered =
      merged.scenarios.size() + merged.quarantined.size();
  if (covered != merged.grid_total) {
    throw std::invalid_argument(
        "merge_shard_rows: union covers " + std::to_string(covered) + " of " +
        std::to_string(merged.grid_total) +
        " scenarios — a shard report is missing");
  }
  finalize_aggregates(merged);
  return merged;
}

Json to_json(const SweepReport& report) {
  Json j = Json::object();
  j.set("schema_version", report.schema_version);
  j.set("sweep", report.sweep_name);

  Json grid = Json::object();
  grid.set("total_scenarios", report.grid_total);
  Json axes = Json::array();
  for (const auto& axis : report.axes) {
    Json a = Json::object();
    a.set("field", axis.field);
    Json values = Json::array();
    for (const auto& v : axis.values) values.push_back(v);
    a.set("values", std::move(values));
    axes.push_back(std::move(a));
  }
  grid.set("axes", std::move(axes));
  j.set("grid", std::move(grid));

  Json shard = Json::object();
  shard.set("index", report.shard.index);
  shard.set("count", report.shard.count);
  shard.set("scenarios", static_cast<std::uint64_t>(report.scenarios.size()));
  j.set("shard", std::move(shard));

  Json rows = Json::array();
  for (const auto& row : report.scenarios) rows.push_back(to_json(row));
  j.set("scenarios", std::move(rows));

  // Emitted only when present so fault-free reports keep their historical
  // bytes (the golden-report pins depend on this).
  if (!report.quarantined.empty()) {
    Json quarantined = Json::array();
    for (const auto& row : report.quarantined) {
      quarantined.push_back(to_json(row));
    }
    j.set("quarantined", std::move(quarantined));
  }

  Json agg = Json::object();
  const auto count = static_cast<std::uint64_t>(report.scenarios.size());
  agg.set("scenarios", count);
  if (!report.quarantined.empty()) {
    agg.set("quarantined",
            static_cast<std::uint64_t>(report.quarantined.size()));
  }
  agg.set("aligned", report.aligned_count);
  agg.set("error_free", report.error_free_count);
  agg.set("total_bits", report.total_bits);
  agg.set("total_errors", report.total_errors);
  agg.set("ber", to_json(report.ber, count));
  agg.set("ber_upper_bound", to_json(report.ber_upper_bound, count));
  agg.set("eye_height", to_json(report.eye_height, count));
  agg.set("eye_width_ui", to_json(report.eye_width_ui, count));
  agg.set("rx_swing_pp", to_json(report.rx_swing_pp, count));
  if (report.stat_count > 0) {
    Json stat = Json::object();
    stat.set("scenarios", report.stat_count);
    stat.set("cross_checked", report.stat_cross_checked_count);
    stat.set("consistent", report.stat_consistent_count);
    stat.set("min_ber", to_json(report.stat_min_ber, report.stat_count));
    stat.set("timing_margin_ui",
             to_json(report.stat_timing_margin_ui, report.stat_count));
    stat.set("eye_height_v",
             to_json(report.stat_eye_height_v, report.stat_count));
    agg.set("stat", std::move(stat));
  }
  j.set("aggregate", std::move(agg));
  return j;
}

}  // namespace serdes::sweep
