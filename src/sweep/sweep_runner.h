// Executes a SweepSpec grid and aggregates the results.
//
// The runner is the scenario engine behind `serdes_cli sweep` and the CI
// matrix: scenarios are pulled off a shared atomic counter by a pool of
// worker threads (work stealing — a slow scenario never idles the other
// workers), each one runs through `api::Simulator` with its grid-index
// seed, and only a compact per-scenario row is retained, so a million-
// scenario grid costs megabytes, not gigabytes.
//
// Determinism contract: the report — including its serialized JSON — is
// byte-identical for any thread count, because every scenario's result
// depends only on its grid index and rows are aggregated in index order
// after the workers drain.  Sharding (`--shard k/n`) partitions the grid
// by `index % n == k`, so the union of all shards' rows is exactly the
// unsharded row set and shard reports can be merged offline
// (`merge_shard_rows` + `finalize_aggregates`).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/simulator.h"
#include "sweep/sweep_spec.h"
#include "util/json.h"

namespace serdes::sweep {

/// Compact result row for one scenario — everything the BER / lock / eye
/// surfaces need, nothing that scales with payload size.
struct ScenarioResult {
  std::uint64_t index = 0;
  std::string name;
  std::uint64_t seed = 0;
  bool aligned = false;
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;
  double ber = 0.0;
  double ber_upper_bound = 1.0;
  int cdr_decision_phase = 0;
  std::uint64_t cdr_phase_updates = 0;
  double rx_swing_pp = 0.0;
  double decision_threshold = 0.0;
  double eye_height = 0.0;
  double eye_width_ui = 0.0;
  // ---- Statistical-engine surface (scenarios with analysis != "mc") ----
  bool has_stat = false;
  double stat_min_ber = 0.0;
  double stat_timing_margin_ui = 0.0;
  double stat_eye_height_v = 0.0;
  /// "both" scenarios only: did the MC BER land in the predicted band?
  bool stat_cross_checked = false;
  bool stat_consistent = false;
};

/// A grid cell the farm gave up on: its scenario failed `attempts`
/// times (worker crashes count), so the coordinator quarantined it
/// instead of stalling the sweep.  Quarantined cells appear in the
/// report as structured failure rows — never as silently missing data.
struct QuarantinedScenario {
  std::uint64_t index = 0;
  std::string name;
  std::uint64_t seed = 0;
  std::uint64_t attempts = 0;
  std::string error;
};

/// `index`-of-`count` grid partition; {0, 1} is the whole grid.
struct Shard {
  std::uint64_t index = 0;
  std::uint64_t count = 1;
};

/// Order statistics of one metric across the aggregated rows.
/// Quantiles use the deterministic nearest-rank definition.
struct SurfaceStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct SweepReport {
  /// Report schema version (see api::RunReport::schema_version — the
  /// contract is shared: version 2 added the key itself; absent means 1).
  int schema_version = 2;

  std::string sweep_name;
  std::uint64_t grid_total = 0;
  Shard shard{};
  std::vector<SweepAxis> axes;  ///< echoed from the spec for context

  /// Rows for this shard, ascending by grid index.
  std::vector<ScenarioResult> scenarios;

  /// Cells the farm quarantined after repeated failure, ascending by
  /// grid index.  Empty for in-process runs; serialized only when
  /// non-empty so fault-free reports are byte-identical to before.
  std::vector<QuarantinedScenario> quarantined;

  // ---- aggregates over `scenarios` ----
  std::uint64_t aligned_count = 0;
  std::uint64_t error_free_count = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t total_errors = 0;
  SurfaceStats ber{};
  SurfaceStats ber_upper_bound{};
  SurfaceStats eye_height{};
  SurfaceStats eye_width_ui{};
  SurfaceStats rx_swing_pp{};

  // ---- stat-engine aggregates (over the rows with has_stat) ----
  std::uint64_t stat_count = 0;
  std::uint64_t stat_cross_checked_count = 0;
  /// Rows whose "both" cross-check found MC inside the predicted band.
  std::uint64_t stat_consistent_count = 0;
  SurfaceStats stat_min_ber{};
  SurfaceStats stat_timing_margin_ui{};
  SurfaceStats stat_eye_height_v{};
};

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; <= 0 picks the hardware concurrency.
    int n_threads = 0;
    Shard shard{};
    api::Simulator::Options simulator{};
    /// Optional completion callback (progress reporting).  Called from
    /// worker threads under a mutex, in completion (not index) order.
    std::function<void(const ScenarioResult&)> on_scenario;
  };

  SweepRunner() = default;
  explicit SweepRunner(Options options) : options_(std::move(options)) {}

  /// Runs the shard's slice of the grid.  Throws std::invalid_argument
  /// on an invalid sweep or shard, and rethrows the first scenario
  /// failure after the workers stop.
  [[nodiscard]] SweepReport run(const SweepSpec& spec) const;

  /// Runs exactly the given grid indices (the store-backed and farm
  /// paths use this to compute only missing cells) and returns their
  /// rows in the same order.  Ignores `options().shard` — the caller
  /// owns the partition.  Throws std::invalid_argument on an invalid
  /// sweep and rethrows the first scenario failure.
  [[nodiscard]] std::vector<ScenarioResult> run_indices(
      const SweepSpec& spec, const std::vector<std::uint64_t>& indices) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

/// Distills one RunReport into its row.
[[nodiscard]] ScenarioResult to_scenario_result(std::uint64_t index,
                                                const api::RunReport& report);

/// Sorts rows by grid index and recomputes every aggregate from them.
/// `run` calls this internally; shard-merging callers use it after
/// concatenating rows from complementary shards.
void finalize_aggregates(SweepReport& report);

/// Concatenates the rows of complementary shard reports into one report
/// covering the whole grid (shard becomes {0, 1}).  Throws
/// std::invalid_argument if the reports disagree on the sweep identity,
/// their rows overlap, or the union does not cover every grid scenario
/// (a shard report is missing).
[[nodiscard]] SweepReport merge_shard_rows(
    const std::vector<SweepReport>& shards);

/// Deterministic JSON rendering of a report (the CI artifact format).
[[nodiscard]] util::Json to_json(const SweepReport& report);

/// Row-level JSON round-trip — the result store's durable record
/// payload.  `parse(dump(x))` is a fixed point, so a row replayed from
/// the store re-serializes byte-identically to a freshly computed one.
[[nodiscard]] util::Json to_json(const ScenarioResult& row);
[[nodiscard]] ScenarioResult scenario_result_from_json(
    const util::Json& json, const std::string& path = "$");
[[nodiscard]] util::Json to_json(const QuarantinedScenario& row);
[[nodiscard]] QuarantinedScenario quarantined_from_json(
    const util::Json& json, const std::string& path = "$");

}  // namespace serdes::sweep
