#include "sweep/sweep_spec.h"

#include <stdexcept>
#include <utility>

#include "api/simulator.h"
#include "api/spec_json.h"
#include "util/strings.h"

namespace serdes::sweep {

using util::Json;
using util::JsonError;

std::uint64_t derive_scenario_seed(std::uint64_t base_seed,
                                   std::uint64_t index) {
  return api::Simulator::derive_lane_seed(base_seed,
                                          static_cast<std::size_t>(index));
}

std::uint64_t SweepSpec::scenario_count() const {
  std::uint64_t count = 1;
  for (const auto& axis : axes) {
    const std::uint64_t n = axis.values.size();
    if (n == 0) return 0;
    // Saturate instead of overflowing; validate() rejects huge grids.
    if (count > UINT64_MAX / n) return UINT64_MAX;
    count *= n;
  }
  return count;
}

namespace {

/// Compact scenario-name fragment for one axis value: scalars print
/// their JSON form, structured values print their index in the axis.
std::string value_label(const SweepAxis& axis, std::size_t value_index) {
  const Json& v = axis.values[value_index];
  if (v.is_array() || v.is_object()) {
    return axis.field + "#" + std::to_string(value_index);
  }
  std::string text = v.dump();
  // Strip string quotes for readability ("kind=rc", not "kind=\"rc\"").
  if (v.is_string()) text = v.as_string();
  return axis.field + "=" + text;
}

}  // namespace

std::size_t axis_value_index(const SweepSpec& sweep, std::size_t axis,
                             std::uint64_t index) {
  if (axis >= sweep.axes.size()) {
    throw std::out_of_range("sweep axis " + std::to_string(axis) +
                            " outside " + std::to_string(sweep.axes.size()) +
                            " axes");
  }
  const std::uint64_t total = sweep.scenario_count();
  if (index >= total) {
    throw std::out_of_range("sweep scenario index " + std::to_string(index) +
                            " outside grid of " + std::to_string(total));
  }
  // Row-major decode: the first axis varies slowest.
  std::uint64_t stride = total;
  for (std::size_t a = 0; a <= axis; ++a) {
    stride /= sweep.axes[a].values.size();
  }
  return static_cast<std::size_t>((index / stride) %
                                  sweep.axes[axis].values.size());
}

api::LinkSpec SweepSpec::scenario(std::uint64_t index) const {
  const std::uint64_t total = scenario_count();
  if (index >= total) {
    throw std::out_of_range("sweep scenario index " + std::to_string(index) +
                            " outside grid of " + std::to_string(total));
  }
  api::LinkSpec spec = base;
  std::string label = base.name;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const std::size_t value_index = axis_value_index(*this, a, index);
    api::apply_link_field(spec, axes[a].field, axes[a].values[value_index],
                          "$.axes[" + std::to_string(a) + "].values[" +
                              std::to_string(value_index) + "]");
    // += in two steps: GCC 12's -Wrestrict misfires on char* plus a
    // temporary string at -O3 (PR105329).
    label += '/';
    label += value_label(axes[a], value_index);
  }
  spec.name = std::move(label);
  if (derive_seeds) spec.seed = derive_scenario_seed(spec.seed, index);
  return spec;
}

namespace {

/// Does a validation finding at `issue_field` concern the member an axis
/// over `axis_field` writes?  True when one path is the other or a
/// member beneath it ("channel" covers "channel.stages[0].fir_taps").
bool issue_concerns_axis(const std::string& issue_field,
                         const std::string& axis_field) {
  const auto prefixed = [](const std::string& outer,
                           const std::string& inner) {
    if (inner.size() <= outer.size() || inner.compare(0, outer.size(), outer)) {
      return false;
    }
    const char next = inner[outer.size()];
    return next == '.' || next == '[';
  };
  return issue_field == axis_field || prefixed(axis_field, issue_field) ||
         prefixed(issue_field, axis_field);
}

}  // namespace

std::string SweepSpec::validate() const {
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const std::string axis_path = "$.axes[" + std::to_string(a) + "]";
    if (axes[a].field.empty()) return axis_path + ".field: must be non-empty";
    if (axes[a].values.empty()) {
      return axis_path + ".values: axis needs at least one value";
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (axes[b].field == axes[a].field) {
        return axis_path + ".field: duplicate axis over '" + axes[a].field +
               "'";
      }
    }
    // Probe every value against the base spec so a bad entry is caught
    // (and blamed on its own path) before any scenario runs, without
    // expanding the whole grid.
    for (std::size_t v = 0; v < axes[a].values.size(); ++v) {
      const std::string value_path =
          axis_path + ".values[" + std::to_string(v) + "]";
      api::LinkSpec probe = base;
      try {
        api::apply_link_field(probe, axes[a].field, axes[a].values[v],
                              value_path);
      } catch (const JsonError& e) {
        return e.what();
      }
      // Blame the value only for findings about the member it wrote —
      // an unrelated base problem (or one another axis repairs) is not
      // this value's fault.
      if (const auto issue = probe.first_issue();
          !issue.ok() && issue_concerns_axis(issue.field, axes[a].field)) {
        return value_path + ": " + issue.field + ": " + issue.message;
      }
      if (issue_concerns_axis("channel", axes[a].field)) {
        if (auto err = api::check_channel_kinds(probe.channel, value_path);
            !err.empty()) {
          return err;
        }
      }
    }
  }
  const std::uint64_t total = scenario_count();
  if (total == 0) return "$.axes: sweep expands to an empty grid";
  if (total > 10'000'000) {
    return "$.axes: grid of " + std::to_string(total) +
           " scenarios exceeds the 10M limit";
  }
  // The base spec must be runnable once axis values land on it (bad axis
  // values were already blamed above, so a finding here is the base's).
  if (auto err = api::validate_spec_with_paths(scenario(0), "$.base");
      !err.empty()) {
    return err;
  }
  // Axis probes check values one at a time; cross-axis combinations can
  // still conflict.  Exhaustively validate modest grids so `validate`
  // green means the whole sweep runs; huge grids keep the spot checks.
  if (total <= 4096) {
    for (std::uint64_t i = 1; i < total; ++i) {
      const api::LinkSpec spec = scenario(i);
      if (auto err = api::validate_spec_with_paths(spec); !err.empty()) {
        return "scenario " + std::to_string(i) + " ('" + spec.name +
               "'): " + err;
      }
    }
  }
  return {};
}

Json SweepSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("derive_seeds", derive_seeds);
  j.set("base", api::to_json(base));
  Json axes_json = Json::array();
  for (const auto& axis : axes) {
    Json a = Json::object();
    a.set("field", axis.field);
    Json values = Json::array();
    for (const auto& v : axis.values) values.push_back(v);
    a.set("values", std::move(values));
    axes_json.push_back(std::move(a));
  }
  j.set("axes", std::move(axes_json));
  return j;
}

SweepSpec SweepSpec::from_json(const Json& json, const std::string& path) {
  if (!json.is_object()) {
    throw JsonError(path + ": expected sweep spec object");
  }
  SweepSpec sweep;
  for (const auto& [key, value] : json.as_object()) {
    const std::string p = path + "." + key;
    if (key == "name") {
      sweep.name = util::get_string(value, p);
    } else if (key == "derive_seeds") {
      sweep.derive_seeds = util::get_bool(value, p);
    } else if (key == "base") {
      sweep.base = api::link_spec_from_json(value, p);
    } else if (key == "axes") {
      if (!value.is_array()) throw JsonError(p + ": expected array of axes");
      for (std::size_t a = 0; a < value.as_array().size(); ++a) {
        const Json& axis_json = value.as_array()[a];
        const std::string ap = p + "[" + std::to_string(a) + "]";
        if (!axis_json.is_object()) {
          throw JsonError(ap + ": expected axis object");
        }
        SweepAxis axis;
        for (const auto& [axis_key, axis_value] : axis_json.as_object()) {
          if (axis_key == "field") {
            axis.field = util::get_string(axis_value, ap + ".field");
          } else if (axis_key == "values") {
            if (!axis_value.is_array()) {
              throw JsonError(ap + ".values: expected array");
            }
            axis.values = axis_value.as_array();
          } else {
            std::string message =
                ap + ": unknown axis field '" + axis_key + "'";
            if (const std::string hint =
                    util::closest_match(axis_key, {"field", "values"});
                !hint.empty()) {
              message += " — did you mean '" + hint + "'?";
            }
            throw JsonError(message);
          }
        }
        sweep.axes.push_back(std::move(axis));
      }
    } else {
      std::string message = p + ": unknown SweepSpec field '" + key + "'";
      if (const std::string hint = util::closest_match(
              key, {"name", "derive_seeds", "base", "axes"});
          !hint.empty()) {
        message += " — did you mean '" + hint + "'?";
      }
      throw JsonError(message);
    }
  }
  return sweep;
}

}  // namespace serdes::sweep
