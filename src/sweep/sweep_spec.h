// Declarative scenario grids over LinkSpec fields.
//
// A `SweepSpec` is a base `LinkSpec` plus a set of axes, each axis naming
// one spec field ("noise_rms_v", "channel.loss_db", "channel", ...) and
// the values it takes.  The cross product of the axes is the scenario
// grid: scenario `i` (row-major, first axis slowest) applies the decoded
// value of every axis to the base spec, names itself after the axis
// values, and — unless `derive_seeds` is off — reseeds with one
// splitmix64 step over the *grid index*, so a scenario's noise stream
// depends only on its position in the grid, never on thread count or
// shard assignment.
//
// This is the JSON-facing contract that `serdes_cli sweep` and CI run;
// see examples/specs/README.md for the schema.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/link_spec.h"
#include "util/json.h"

namespace serdes::sweep {

/// One swept dimension: `values[i]` is applied to the base spec through
/// `api::apply_link_field`, so anything assignable in a spec file can be
/// an axis value (numbers, strings, bools, tap arrays, whole channel
/// objects).
struct SweepAxis {
  std::string field;
  std::vector<util::Json> values;
};

struct SweepSpec {
  std::string name = "sweep";
  api::LinkSpec base{};
  std::vector<SweepAxis> axes;
  /// Reseed each scenario from splitmix64(base-or-axis seed, grid index).
  /// Turn off for paired ablations where every scenario must face the
  /// identical noise realization.
  bool derive_seeds = true;

  /// Product of axis sizes; 1 when there are no axes.
  [[nodiscard]] std::uint64_t scenario_count() const;

  /// Expands scenario `index` of the grid.  Throws std::out_of_range for
  /// an index outside the grid and util::JsonError if an axis value does
  /// not apply to its field.
  [[nodiscard]] api::LinkSpec scenario(std::uint64_t index) const;

  /// Empty when the sweep is runnable: the grid is non-empty and bounded,
  /// every axis value applies cleanly and yields a valid spec (findings
  /// are blamed on the value's own path), the base spec is runnable, and
  /// — for grids up to 4096 scenarios — every expanded scenario
  /// validates, so a green `validate` means the whole sweep runs.
  /// Larger grids keep the per-value and scenario-0 checks only.
  /// Diagnostics name JSON paths ("$.axes[1].values[3]: ...").
  [[nodiscard]] std::string validate() const;

  [[nodiscard]] util::Json to_json() const;

  /// Strict parse; unknown fields are errors with did-you-mean hints.
  static SweepSpec from_json(const util::Json& json,
                             const std::string& path = "$");
};

/// Deterministic per-scenario seed: identical to
/// api::Simulator::derive_lane_seed (one splitmix64 step).
[[nodiscard]] std::uint64_t derive_scenario_seed(std::uint64_t base_seed,
                                                 std::uint64_t index);

/// Index into `axes[axis].values` that grid scenario `index` selects —
/// the row-major decode `scenario()` applies (first axis slowest).
/// Lets callers inspect one axis (the lint seed scan, labels) without
/// expanding the whole spec.  Throws std::out_of_range on an axis or
/// index outside the grid.
[[nodiscard]] std::size_t axis_value_index(const SweepSpec& sweep,
                                           std::size_t axis,
                                           std::uint64_t index);

}  // namespace serdes::sweep
