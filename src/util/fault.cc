#include "util/fault.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace serdes::util {

namespace {

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  if (text.empty()) {
    throw std::invalid_argument("SERDES_FAULT: empty " + std::string(what));
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("SERDES_FAULT: bad " + std::string(what) +
                                  " '" + std::string(text) + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("SERDES_FAULT"); env != nullptr) {
    configure(env);
  }
}

void FaultInjector::configure(std::string_view spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  injections_.clear();
  counters_.clear();
  armed_ = false;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    if (at == std::string_view::npos || at == 0) {
      throw std::invalid_argument("SERDES_FAULT: expected site@hit[:arg] in '" +
                                  std::string(entry) + "'");
    }
    const std::string site(entry.substr(0, at));
    std::string_view rest = entry.substr(at + 1);
    Injection injection;
    const std::size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      injection.arg = parse_u64(rest.substr(colon + 1), "arg");
      rest = rest.substr(0, colon);
    }
    if (rest == "*") {
      injection.hit = 0;  // every hit
    } else {
      injection.hit = parse_u64(rest, "hit count");
      if (injection.hit == 0) {
        throw std::invalid_argument(
            "SERDES_FAULT: hit counts are 1-based ('" + std::string(entry) +
            "')");
      }
    }
    injections_[site].push_back(injection);
    armed_ = true;
  }
}

bool FaultInjector::armed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

std::optional<std::uint64_t> FaultInjector::fire(std::string_view site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_) return std::nullopt;
  const auto it = injections_.find(site);
  if (it == injections_.end()) return std::nullopt;
  const std::uint64_t hit = ++counters_[std::string(site)];
  for (Injection& injection : it->second) {
    if (injection.hit == 0) return injection.arg;  // @*: every hit
    if (injection.hit == hit && !injection.fired) {
      injection.fired = true;
      return injection.arg;
    }
  }
  return std::nullopt;
}

void FaultInjector::crash(std::string_view site) {
  // stderr is unbuffered enough for the test harness to see the site;
  // _Exit skips atexit/flush, modelling a SIGKILL as closely as a
  // voluntary exit can.
  std::fprintf(stderr, "serdes: injected crash at %.*s\n",
               static_cast<int>(site.size()), site.data());
  std::_Exit(137);
}

}  // namespace serdes::util
