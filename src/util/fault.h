// Deterministic fault injection for the crash-safety test tier.
//
// The store and the sweep farm claim to survive `kill -9`, torn writes
// and stuck workers; this registry makes those events reproducible so
// tier-1 tests can pin them.  Faults are *explicitly armed* — via the
// `SERDES_FAULT` environment variable or `configure()` — and fire on
// exact per-site hit counts, so an injected crash lands on the same
// commit every run.  This honors the repo's no-ambient-nondeterminism
// contract: with nothing armed (the default), every `fire()` is a
// cheap no-op and the library's behavior is unchanged.
//
// Grammar (comma-separated):  site@hit[:arg]   or   site@*[:arg]
//
//   SERDES_FAULT=crash-after-commit@3      # _Exit(137) on the 3rd commit
//   SERDES_FAULT=torn-commit@5:9           # 5th commit writes 9 bytes, dies
//   SERDES_FAULT=fail-scenario@*           # every scenario attempt throws
//   SERDES_FAULT=stall-worker@1:4000       # 1st task stalls 4000 ms
//
// Sites wired into the library:
//   crash-before-commit  — ResultStore::commit, before any bytes land
//   torn-commit          — commit writes only `arg` bytes, fsyncs, dies
//   crash-after-commit   — commit completed (record durable), then dies
//   fail-scenario        — farm worker scenario attempt throws
//   stall-worker         — farm worker sleeps `arg` ms before executing,
//                          so its lease deadline can expire mid-task
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace serdes::util {

class FaultInjector {
 public:
  /// Process-wide injector; reads `SERDES_FAULT` once on first use.
  static FaultInjector& instance();

  /// Replaces the armed faults (and resets all hit counters).  Empty
  /// disarms everything.  Throws std::invalid_argument on bad grammar.
  void configure(std::string_view spec);

  /// True when any fault is armed — lets hot paths skip site counting.
  [[nodiscard]] bool armed() const;

  /// Counts one hit of `site`.  Returns the injection's arg (0 when
  /// none was given) when a fault is armed for exactly this hit (or the
  /// site was armed with `@*`), nullopt otherwise.
  std::optional<std::uint64_t> fire(std::string_view site);

  /// Simulated `kill -9`: immediate _Exit(137), no atexit, no flush.
  [[noreturn]] static void crash(std::string_view site);

 private:
  FaultInjector();

  struct Injection {
    std::uint64_t hit = 0;  ///< 1-based hit count; 0 means every hit
    std::uint64_t arg = 0;
    bool fired = false;
  };

  mutable std::mutex mutex_;
  bool armed_ = false;
  std::map<std::string, std::vector<Injection>, std::less<>> injections_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace serdes::util
