#include "util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>

namespace serdes::util {

namespace {

std::string errno_message() { return std::strerror(errno); }

/// Directory part of `path` ("." when the path has none), for the
/// same-filesystem temp file and the post-rename directory fsync.
std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  // The temp file lives next to the target so the rename stays within
  // one filesystem (cross-device renames are not atomic); the pid
  // suffix keeps concurrent writers of the same target from colliding.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw FileError(path, "cannot open for writing (" + errno_message() + ")");
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = errno_message();
      ::close(fd);
      ::unlink(tmp.c_str());
      throw FileError(path, "write failed (" + message + ")");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string message = errno_message();
    ::close(fd);
    ::unlink(tmp.c_str());
    throw FileError(path, "fsync failed (" + message + ")");
  }
  if (::close(fd) != 0) {
    const std::string message = errno_message();
    ::unlink(tmp.c_str());
    throw FileError(path, "close failed (" + message + ")");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string message = errno_message();
    ::unlink(tmp.c_str());
    throw FileError(path, "rename failed (" + message + ")");
  }
  fsync_directory(parent_dir(path));
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw FileError(path, "cannot create directory (" + ec.message() + ")");
  }
  if (!std::filesystem::is_directory(path, ec) || ec) {
    throw FileError(path, "exists but is not a directory");
  }
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

bool parse_hex64(std::string_view text, std::uint64_t& value) {
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  value = v;
  return true;
}

}  // namespace serdes::util
