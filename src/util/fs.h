// Crash-safe filesystem primitives for every artifact writer.
//
// Reports, stores and golden dumps are all plain files, and a plain
// `ofstream << text` can die halfway and leave a torn artifact that
// parses as truncated JSON.  `atomic_write_file` is the one idiom the
// repo uses instead: write to a temp file in the same directory, fsync
// it, rename over the target, fsync the directory — so a reader (or a
// resumed run) observes either the complete old bytes or the complete
// new bytes, never a prefix.  Failures throw `FileError`, which names
// the path so CLI callers can report "cannot write <path>" and exit
// with the usage-error status.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace serdes::util {

/// Filesystem write/open failure; `path()` names the file involved.
class FileError : public std::runtime_error {
 public:
  FileError(std::string path, const std::string& message)
      : std::runtime_error(path + ": " + message), path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Atomically replaces `path` with `contents`: temp file in the same
/// directory, fsync, rename, directory fsync.  A crash at any point
/// leaves either the previous file or the new one — never a torn mix.
/// Throws FileError naming `path` on any failure.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Creates `path` (and parents) as a directory if it does not exist.
/// Throws FileError if creation fails or `path` exists as a non-directory.
void ensure_directory(const std::string& path);

/// FNV-1a 64-bit hash — the record checksum / content-key primitive
/// shared by the result store and the spec hasher.  Stable across
/// platforms by definition.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Fixed-width 16-digit lowercase hex rendering of a 64-bit value (the
/// on-disk form of checksums and spec hashes).
[[nodiscard]] std::string hex64(std::uint64_t value);

/// Inverse of hex64; returns false on malformed input.
[[nodiscard]] bool parse_hex64(std::string_view text, std::uint64_t& value);

}  // namespace serdes::util
