#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace serdes::util {

Json::Json(std::int64_t i) : type_(Type::kNumber) {
  num_ = static_cast<double>(i);
  num_is_int_ = true;
  num_negative_ = i < 0;
  num_mag_ = num_negative_ ? 0ull - static_cast<std::uint64_t>(i)
                           : static_cast<std::uint64_t>(i);
}

Json::Json(std::uint64_t u) : type_(Type::kNumber) {
  num_ = static_cast<double>(u);
  num_is_int_ = true;
  num_negative_ = false;
  num_mag_ = u;
}

Json Json::array(Array items) {
  Json j;
  j.type_ = Type::kArray;
  j.arr_ = std::move(items);
  return j;
}

Json Json::object(Object members) {
  Json j;
  j.type_ = Type::kObject;
  j.obj_ = std::move(members);
  return j;
}

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const kNames[] = {"null",  "bool",  "number",
                                       "string", "array", "object"};
  throw JsonError(std::string("expected ") + want + ", got " +
                  kNames[static_cast<int>(got)]);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kNumber) type_error("integer", type_);
  if (num_is_int_) {
    if (num_negative_) {
      // Magnitude up to 2^63 is representable as int64.
      if (num_mag_ > 0x8000000000000000ull) {
        throw JsonError("integer out of int64 range");
      }
      return static_cast<std::int64_t>(0ull - num_mag_);
    }
    if (num_mag_ >
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
      throw JsonError("integer out of int64 range");
    }
    return static_cast<std::int64_t>(num_mag_);
  }
  const double r = std::nearbyint(num_);
  if (!std::isfinite(num_) || r != num_ || std::abs(num_) > 9.2e18) {
    throw JsonError("expected integer, got non-integral number");
  }
  return static_cast<std::int64_t>(r);
}

std::uint64_t Json::as_uint() const {
  if (type_ != Type::kNumber) type_error("unsigned integer", type_);
  if (num_is_int_) {
    if (num_negative_ && num_mag_ != 0) {
      throw JsonError("expected unsigned integer, got negative value");
    }
    return num_mag_;
  }
  const double r = std::nearbyint(num_);
  if (!std::isfinite(num_) || r != num_ || num_ < 0.0 || num_ > 1.8e19) {
    throw JsonError("expected unsigned integer");
  }
  return static_cast<std::uint64_t>(r);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

Json::Array& Json::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

Json::Object& Json::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : obj_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [name, existing] : obj_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(value));
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      if (num_is_int_ && other.num_is_int_) {
        return num_mag_ == other.num_mag_ &&
               (num_negative_ == other.num_negative_ || num_mag_ == 0);
      }
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

// ----------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("line " + std::to_string(line) + ", column " +
                    std::to_string(col) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    // Bound recursion so a hostile/malformed deeply-nested document is a
    // parse error, not a stack overflow (validate is pointed at
    // arbitrary user files).
    if (depth_ >= kMaxDepth) fail("nesting deeper than 256 levels");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': {
        ++depth_;
        Json obj = parse_object();
        --depth_;
        return obj;
      }
      case '[': {
        ++depth_;
        Json arr = parse_array();
        --depth_;
        return arr;
      }
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_whitespace();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj.as_object().emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs outside the
          // BMP are not needed for spec files; pass them through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  Json parse_number() {
    // RFC 8259 grammar: -? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?
    // Enforced strictly so a spec this parser blesses is valid JSON for
    // every other consumer (jq, Python, CI tooling) too.
    const std::size_t start = pos_;
    const auto digit = [&]() {
      return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
    };
    if (peek() == '-') ++pos_;
    if (!digit()) fail("invalid number: expected digit");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit()) fail("invalid number: leading zeros are not allowed");
    } else {
      while (digit()) ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (!digit()) fail("invalid number: expected digit after '.'");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) fail("invalid number: expected exponent digit");
      while (digit()) ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      const bool negative = token.front() == '-';
      const std::string_view digits = negative ? token.substr(1) : token;
      std::uint64_t mag = 0;
      const auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), mag);
      if (ec == std::errc() && ptr == digits.data() + digits.size()) {
        if (!negative) return Json(mag);
        if (mag <= 0x8000000000000000ull) {
          return Json(static_cast<std::int64_t>(0ull - mag));
        }
      }
      // Fall through to double on overflow / malformed digits.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      pos_ = start;
      fail("invalid number '" + std::string(token) + "'");
    }
    return Json(value);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// ------------------------------------------------------------- serializer --

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      if (num_is_int_) {
        if (num_negative_ && num_mag_ != 0) out += '-';
        char buf[24];
        const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), num_mag_);
        out.append(buf, ptr);
        return;
      }
      if (!std::isfinite(num_)) {
        out += "null";
        return;
      }
      // Shortest round-trip representation: deterministic and exact.
      char buf[40];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), num_);
      out.append(buf, ptr);
      return;
    }
    case Type::kString:
      dump_string(out, str_);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const auto& item : arr_) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) append_indent(out, indent, depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) append_indent(out, indent, depth + 1);
        dump_string(out, key);
        out += indent >= 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------- path-context accessors --

void fail_at(const std::string& path, const std::string& message) {
  throw JsonError(path + ": " + message);
}

bool get_bool(const Json& j, const std::string& path) {
  try {
    return j.as_bool();
  } catch (const JsonError& e) {
    fail_at(path, e.what());
  }
}

double get_double(const Json& j, const std::string& path) {
  try {
    return j.as_double();
  } catch (const JsonError& e) {
    fail_at(path, e.what());
  }
}

std::int64_t get_int(const Json& j, const std::string& path) {
  try {
    return j.as_int();
  } catch (const JsonError& e) {
    fail_at(path, e.what());
  }
}

std::uint64_t get_uint(const Json& j, const std::string& path) {
  try {
    return j.as_uint();
  } catch (const JsonError& e) {
    fail_at(path, e.what());
  }
}

const std::string& get_string(const Json& j, const std::string& path) {
  try {
    return j.as_string();
  } catch (const JsonError& e) {
    fail_at(path, e.what());
  }
}

namespace {

void diff_into(const Json& expected, const Json& actual,
               const std::string& path, std::vector<std::string>& findings,
               std::size_t max_findings) {
  if (findings.size() >= max_findings) return;
  if (expected == actual) return;
  const auto value_str = [](const Json& j) {
    std::string s = j.dump(-1);
    if (s.size() > 64) s = s.substr(0, 61) + "...";
    return s;
  };
  if (expected.type() != actual.type()) {
    findings.push_back(path + ": expected " + value_str(expected) + ", got " +
                       value_str(actual));
    return;
  }
  if (expected.is_array()) {
    const auto& ea = expected.as_array();
    const auto& aa = actual.as_array();
    if (ea.size() != aa.size()) {
      findings.push_back(path + ": expected array of " +
                         std::to_string(ea.size()) + " elements, got " +
                         std::to_string(aa.size()));
    }
    for (std::size_t i = 0; i < ea.size() && i < aa.size(); ++i) {
      diff_into(ea[i], aa[i], path + "[" + std::to_string(i) + "]", findings,
                max_findings);
    }
    return;
  }
  if (expected.is_object()) {
    for (const auto& [key, value] : expected.as_object()) {
      if (const Json* got = actual.find(key)) {
        diff_into(value, *got, path + "." + key, findings, max_findings);
      } else if (findings.size() < max_findings) {
        findings.push_back(path + "." + key + ": missing (expected " +
                           value_str(value) + ")");
      }
    }
    for (const auto& [key, value] : actual.as_object()) {
      if (!expected.find(key) && findings.size() < max_findings) {
        findings.push_back(path + "." + key + ": unexpected (got " +
                           value_str(value) + ")");
      }
    }
    return;
  }
  findings.push_back(path + ": expected " + value_str(expected) + ", got " +
                     value_str(actual));
}

}  // namespace

std::vector<std::string> json_diff(const Json& expected, const Json& actual,
                                   std::size_t max_findings) {
  std::vector<std::string> findings;
  diff_into(expected, actual, "$", findings, max_findings);
  return findings;
}

}  // namespace serdes::util
