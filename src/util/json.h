// Minimal dependency-free JSON value, parser and serializer.
//
// This is the data plane of the scenario engine: `LinkSpec`s, sweep
// definitions and run reports all cross the process boundary as JSON, so
// the representation is tuned for that job rather than generality:
//
//  - Objects preserve insertion order and serialization is fully
//    deterministic (fixed key order, shortest-round-trip doubles via
//    std::to_chars), so a report built from the same results is
//    byte-identical whatever thread count or shard produced it.
//  - Integers parsed without fraction/exponent keep an exact 64-bit
//    sidecar, so `seed` values round-trip bit-exactly even beyond 2^53.
//  - Parse errors carry line/column; `JsonError` is also thrown by the
//    typed accessors on a type mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace serdes::util {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered; later `set` of an existing key replaces in place.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(unsigned i) : Json(static_cast<std::uint64_t>(i)) {}
  Json(std::int64_t i);
  Json(std::uint64_t u);
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array(Array items = {});
  static Json object(Object members = {});

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw JsonError on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Throw unless the number is integral and in range of the target type.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Member lookup; nullptr when absent (or when this is not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Inserts or replaces a member (object only; throws otherwise).
  Json& set(std::string key, Json value);
  /// Appends to an array (array only; throws otherwise).
  void push_back(Json value);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// Parses one JSON document (trailing garbage is an error).  Throws
  /// JsonError with "line L, column C" context.
  static Json parse(std::string_view text);

  /// Deterministic serialization.  `indent < 0` is compact single-line;
  /// `indent >= 0` pretty-prints with that many spaces per level.
  /// Non-finite doubles serialize as null (JSON has no representation).
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  /// Exact integer sidecar: magnitude + sign, kept when the value was
  /// constructed from (or parsed as) a whole number.
  bool num_is_int_ = false;
  bool num_negative_ = false;
  std::uint64_t num_mag_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Structural diff of two JSON documents: one finding per differing
/// member, each naming its JSON path and both values ("$.a[2].b: expected
/// 3, got 4"; missing/extra keys and type mismatches included).  Returns
/// at most `max_findings` entries (the golden-report tests print these so
/// a failed byte-comparison localizes immediately).  Empty means equal.
[[nodiscard]] std::vector<std::string> json_diff(const Json& expected,
                                                 const Json& actual,
                                                 std::size_t max_findings = 20);

/// Throws JsonError with the member's JSON path prefixed:
/// "$.axes[0].field: <message>".
[[noreturn]] void fail_at(const std::string& path, const std::string& message);

/// Typed accessors that rethrow JsonError with `path` context — the
/// shared primitive behind every spec parser's diagnostics.
[[nodiscard]] bool get_bool(const Json& j, const std::string& path);
[[nodiscard]] double get_double(const Json& j, const std::string& path);
[[nodiscard]] std::int64_t get_int(const Json& j, const std::string& path);
[[nodiscard]] std::uint64_t get_uint(const Json& j, const std::string& path);
[[nodiscard]] const std::string& get_string(const Json& j,
                                            const std::string& path);

}  // namespace serdes::util
