#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace serdes::util {

double lerp(double x0, double y0, double x1, double y1, double x) {
  if (x1 == x0) return 0.5 * (y0 + y1);
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double interp_table(const std::vector<double>& xs,
                    const std::vector<double>& ys, double x) {
  if (xs.empty() || xs.size() != ys.size()) return 0.0;
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  return lerp(xs[lo], ys[lo], xs[hi], ys[hi], x);
}

std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double tol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0) == (fhi > 0)) return std::nullopt;
  for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid > 0) == (flo > 0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::optional<double> newton_bisect(const std::function<double(double)>& f,
                                    const std::function<double(double)>& dfdx,
                                    double x0, double lo, double hi, double tol,
                                    int max_iter) {
  double x = clamp(x0, lo, hi);
  for (int i = 0; i < max_iter; ++i) {
    const double fx = f(x);
    if (std::fabs(fx) < tol) return x;
    const double d = dfdx(x);
    double next;
    if (d == 0.0) {
      next = 0.5 * (lo + hi);  // flat derivative: fall back to bisection step
    } else {
      next = x - fx / d;
      if (next <= lo || next >= hi) next = 0.5 * (lo + hi);
    }
    // Maintain the bracket using the sign of f.
    if ((f(lo) > 0) == (fx > 0)) {
      lo = x;
    } else {
      hi = x;
    }
    if (std::fabs(next - x) < tol) return next;
    x = next;
  }
  return x;
}

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double q_inverse(double p) {
  // Newton iteration on Q(x) - p = 0; Q'(x) = -phi(x).
  double x = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double err = q_function(x) - p;
    const double phi =
        std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.141592653589793);
    if (phi == 0.0) break;
    const double step = err / phi;
    x += step;
    if (std::fabs(step) < 1e-12) break;
  }
  return x;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::optional<std::vector<double>> solve_linear(std::vector<double> a,
                                                std::vector<double> b, int n) {
  if (n <= 0 || a.size() != static_cast<std::size_t>(n) * n ||
      b.size() != static_cast<std::size_t>(n)) {
    return std::nullopt;
  }
  auto at = [&](int r, int c) -> double& { return a[r * n + c]; };
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(at(r, col)) > std::fabs(at(pivot, col))) pivot = r;
    }
    if (std::fabs(at(pivot, col)) < 1e-300) return std::nullopt;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (int r = col + 1; r < n; ++r) {
      const double factor = at(r, col) / at(col, col);
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) at(r, c) -= factor * at(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[r];
    for (int c = r + 1; c < n; ++c) acc -= at(r, c) * x[c];
    x[r] = acc / at(r, r);
  }
  return x;
}

}  // namespace serdes::util
