// Small numerical helpers shared by the analog solver and link analysis.
#pragma once

#include <functional>
#include <optional>
#include <vector>

namespace serdes::util {

/// Linear interpolation between (x0,y0) and (x1,y1) at x.
double lerp(double x0, double y0, double x1, double y1, double x);

/// Piecewise-linear interpolation over sorted sample points.
/// Outside the table the end values are held (no extrapolation).
double interp_table(const std::vector<double>& xs,
                    const std::vector<double>& ys, double x);

/// Robust bisection root finder for f(x)=0 on [lo, hi].
/// Requires sign(f(lo)) != sign(f(hi)); returns nullopt otherwise.
std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double tol = 1e-12,
                             int max_iter = 200);

/// Newton-Raphson with bisection fallback bracket [lo, hi].
std::optional<double> newton_bisect(const std::function<double(double)>& f,
                                    const std::function<double(double)>& dfdx,
                                    double x0, double lo, double hi,
                                    double tol = 1e-12, int max_iter = 100);

/// Gaussian tail probability Q(x) = P(N(0,1) > x).
double q_function(double x);

/// Inverse of the Q function (via Newton on erfc); valid for p in (0, 0.5).
double q_inverse(double p);

/// Clamps x into [lo, hi].  Inline: the restoring inverter's VTC lookup
/// clamps every waveform sample.
inline double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Mean of a vector (0 for empty input).
double mean(const std::vector<double>& xs);

/// Population standard deviation (0 for fewer than 2 samples).
double stddev(const std::vector<double>& xs);

/// Dense real-valued convolution: out[n] = sum_k a[k] * b[n-k].
std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Solves a small dense linear system A·x = b by partial-pivot Gaussian
/// elimination.  A is row-major n×n and is destroyed.  Returns nullopt for
/// (numerically) singular systems.
std::optional<std::vector<double>> solve_linear(std::vector<double> a,
                                                std::vector<double> b, int n);

}  // namespace serdes::util
