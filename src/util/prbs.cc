#include "util/prbs.h"

#include <stdexcept>

namespace serdes::util {

namespace {
/// Recurrence a[i] = a[i-p] XOR a[i-q] for the ITU-T primitive polynomials.
struct Taps {
  int p;
  int q;
};

Taps taps_for(PrbsOrder order) {
  switch (order) {
    case PrbsOrder::kPrbs7:
      return {7, 6};
    case PrbsOrder::kPrbs9:
      return {9, 5};
    case PrbsOrder::kPrbs15:
      return {15, 14};
    case PrbsOrder::kPrbs23:
      return {23, 18};
    case PrbsOrder::kPrbs31:
      return {31, 28};
  }
  throw std::invalid_argument("unknown PRBS order");
}
}  // namespace

PrbsGenerator::PrbsGenerator(PrbsOrder order, std::uint32_t seed)
    : order_(order) {
  const Taps t = taps_for(order);
  tap_a_ = t.p;
  tap_b_ = t.q;
  mask_ = (t.p == 31) ? 0x7fffffffu : ((1u << t.p) - 1u);
  state_ = seed & mask_;
  if (state_ == 0) state_ = mask_;  // avoid the all-zero lock-up state
}

bool PrbsGenerator::next() {
  // state_ bit k (0-based) holds a[i-1-k]: bit 0 is the newest emitted bit.
  const bool a_p = (state_ >> (tap_a_ - 1)) & 1u;
  const bool a_q = (state_ >> (tap_b_ - 1)) & 1u;
  const bool out = a_p ^ a_q;
  state_ = ((state_ << 1) | static_cast<std::uint32_t>(out)) & mask_;
  return out;
}

std::vector<std::uint8_t> PrbsGenerator::next_bits(std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = next() ? 1 : 0;
  return bits;
}

std::uint64_t PrbsGenerator::period() const {
  return (1ull << static_cast<int>(order_)) - 1ull;
}

PrbsChecker::PrbsChecker(PrbsOrder order)
    : order_(order), n_(static_cast<int>(order)) {
  const Taps t = taps_for(order);
  tap_a_ = t.p;
  tap_b_ = t.q;
}

bool PrbsChecker::feed(bool bit) {
  if (filled_ >= n_) {
    // Predict from the received history using the same recurrence the
    // transmitter used; any mismatch is a channel bit error.
    const bool a_p = (history_ >> (tap_a_ - 1)) & 1ull;
    const bool a_q = (history_ >> (tap_b_ - 1)) & 1ull;
    const bool predicted = a_p ^ a_q;
    locked_ = true;
    ++bits_checked_;
    if (predicted != bit) ++errors_;
  } else {
    ++filled_;
  }
  history_ = (history_ << 1) | static_cast<std::uint64_t>(bit);
  return locked_;
}

double PrbsChecker::ber() const {
  if (bits_checked_ == 0) return 0.0;
  return static_cast<double>(errors_) / static_cast<double>(bits_checked_);
}

std::vector<std::uint32_t> pack_bits_to_words(
    const std::vector<std::uint8_t>& bits) {
  std::vector<std::uint32_t> words((bits.size() + 31) / 32, 0u);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) words[i / 32] |= (1u << (i % 32));
  }
  return words;
}

std::vector<std::uint8_t> unpack_words_to_bits(
    const std::vector<std::uint32_t>& words) {
  std::vector<std::uint8_t> bits(words.size() * 32);
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (int b = 0; b < 32; ++b) {
      bits[w * 32 + b] = (words[w] >> b) & 1u;
    }
  }
  return bits;
}

}  // namespace serdes::util
