// Pseudo-random binary sequence generators.
//
// The paper evaluates the link with a PRBS-31 pattern (Fig 8).  This module
// provides the standard ITU-T PRBS polynomials as Fibonacci LFSRs, bit-exact
// with hardware pattern generators, plus helpers for packing sequences into
// the 8x32-bit parallel words the serializer consumes.
#pragma once

#include <cstdint>
#include <vector>

namespace serdes::util {

/// Standard PRBS polynomial selection (ITU-T O.150 family).
enum class PrbsOrder : int {
  kPrbs7 = 7,    // x^7 + x^6 + 1
  kPrbs9 = 9,    // x^9 + x^5 + 1
  kPrbs15 = 15,  // x^15 + x^14 + 1
  kPrbs23 = 23,  // x^23 + x^18 + 1
  kPrbs31 = 31,  // x^31 + x^28 + 1
};

/// Fibonacci LFSR producing the selected PRBS sequence, one bit per call.
class PrbsGenerator {
 public:
  /// A zero seed is invalid for an LFSR (all-zero lock-up) and is replaced
  /// by the canonical all-ones state.
  explicit PrbsGenerator(PrbsOrder order, std::uint32_t seed = 0xffffffffu);

  /// Next bit of the sequence.
  bool next();

  /// Next `n` bits, MSB-first packed into a vector<bool>-free container.
  std::vector<std::uint8_t> next_bits(std::size_t n);

  /// Sequence period: 2^order - 1.
  [[nodiscard]] std::uint64_t period() const;

  [[nodiscard]] PrbsOrder order() const { return order_; }

  /// Current LFSR state (for checkpointing / tests).
  [[nodiscard]] std::uint32_t state() const { return state_; }

 private:
  PrbsOrder order_;
  std::uint32_t state_;
  std::uint32_t mask_;
  int tap_a_;  // feedback taps (1-based bit positions)
  int tap_b_;
};

/// Self-synchronising PRBS checker: locks onto an incoming PRBS stream and
/// counts bit errors thereafter.  Mirrors how BERT instruments verify links.
class PrbsChecker {
 public:
  explicit PrbsChecker(PrbsOrder order);

  /// Feed one received bit. Returns true once the checker is locked.
  bool feed(bool bit);

  [[nodiscard]] bool locked() const { return locked_; }
  [[nodiscard]] std::uint64_t bits_checked() const { return bits_checked_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }

  /// Bit error ratio over the checked (post-lock) bits; 0 if none checked.
  [[nodiscard]] double ber() const;

 private:
  PrbsOrder order_;
  int n_;
  std::uint64_t history_ = 0;  // last n_ received bits (LSB = newest)
  int filled_ = 0;
  bool locked_ = false;
  std::uint64_t bits_checked_ = 0;
  std::uint64_t errors_ = 0;
  int tap_a_;
  int tap_b_;
};

/// Packs a bit stream into `words_per_frame` 32-bit words (the serializer's
/// 8x32 input format). Bits fill each word LSB-first.
std::vector<std::uint32_t> pack_bits_to_words(
    const std::vector<std::uint8_t>& bits);

/// Unpacks 32-bit words back into a bit stream (LSB-first per word).
std::vector<std::uint8_t> unpack_words_to_bits(
    const std::vector<std::uint32_t>& words);

}  // namespace serdes::util
