#include "util/random.h"

#include <cmath>
#include <numbers>

namespace serdes::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // A zero state would be a fixed point; splitmix64 cannot produce four
  // zeros from any seed, so no further check is needed.
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation (rejection for bias).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: two uniforms → two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double sigma) {
  return mean + sigma * gaussian();
}

bool Rng::chance(double probability) { return uniform() < probability; }

}  // namespace serdes::util
