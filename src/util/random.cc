#include "util/random.h"

#include <cmath>

namespace serdes::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // A zero state would be a fixed point; splitmix64 cannot produce four
  // zeros from any seed, so no further check is needed.
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation (rejection for bias).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

bool Rng::gaussian_edge(std::size_t layer, double x, bool negative,
                        double* out) {
  if (layer == 0) {
    // Marsaglia tail: exact N(0,1) conditioned on |x| > kR.
    double xx;
    double yy;
    do {
      double u1 = uniform();
      while (u1 <= 0.0) u1 = uniform();
      double u2 = uniform();
      while (u2 <= 0.0) u2 = uniform();
      xx = -std::log(u1) / zig::kR;
      yy = -std::log(u2);
    } while (yy + yy < xx * xx);
    const double tail = zig::kR + xx;
    *out = negative ? -tail : tail;
    return true;
  }
  // Wedge between the layer edge and the density: accept y < f(x) with y
  // uniform over the layer's vertical span.
  const double y =
      zig::kF[layer] + uniform() * (zig::kF[layer + 1] - zig::kF[layer]);
  if (y < std::exp(-0.5 * x * x)) {
    *out = negative ? -x : x;
    return true;
  }
  return false;
}

}  // namespace serdes::util
