// Deterministic, fast random number generation for simulations.
//
// All stochastic pieces of the simulator (noise injection, jitter, random
// payloads) draw from an explicitly seeded Rng so that every experiment is
// reproducible run-to-run.  The generator is xoshiro256**, which is far
// faster than std::mt19937_64 and has excellent statistical quality for
// Monte-Carlo style workloads.
//
// Everything on the hot path is defined inline here: the AWGN stage burns
// one gaussian per waveform sample and the sampler/jitter chain several
// per UI, so these must fold into their calling loops.  gaussian() is a
// 256-layer ziggurat — one u64 draw, a table compare and a multiply on
// ~98% of calls, with the wedge/tail rejection (the only transcendental
// math) out of line.  It replaces the seed repo's Box-Muller: the stream
// of deviates for a given seed differs, but it is exactly standard-normal
// and deterministic, and it costs ~6x less than log+sqrt+sincos per pair.
#pragma once

#include <cstdint>

#include "util/ziggurat_tables.h"

namespace serdes::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    // 53 high bits → double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via the 256-layer ziggurat.  The fast path spends a
  /// single u64: bits 0-7 pick the layer, bit 8 the sign, bits 11-63 the
  /// position — disjoint, so they are independent.
  double gaussian() {
    for (;;) {
      const std::uint64_t u = next_u64();
      const std::size_t layer = static_cast<std::size_t>(u & 255u);
      const double x =
          static_cast<double>(u >> 11) * 0x1.0p-53 * zig::kX[layer];
      if (x < zig::kX[layer + 1]) return (u & 256u) ? -x : x;
      double out;
      if (gaussian_edge(layer, x, (u & 256u) != 0, &out)) return out;
    }
  }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double sigma) {
    return mean + sigma * gaussian();
  }

  /// Bernoulli trial.
  bool chance(double probability) { return uniform() < probability; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Ziggurat slow path: layer-0 tail beyond kR, or the wedge between a
  /// layer's edge and the density.  Returns false to redraw.
  bool gaussian_edge(std::size_t layer, double x, bool negative, double* out);

  std::uint64_t state_[4];
};

}  // namespace serdes::util
