// Deterministic, fast random number generation for simulations.
//
// All stochastic pieces of the simulator (noise injection, jitter, random
// payloads) draw from an explicitly seeded Rng so that every experiment is
// reproducible run-to-run.  The generator is xoshiro256**, which is far
// faster than std::mt19937_64 and has excellent statistical quality for
// Monte-Carlo style workloads.
#pragma once

#include <cstdint>

namespace serdes::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double gaussian();

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Bernoulli trial.
  bool chance(double probability);

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace serdes::util
