#include "util/simd.h"

namespace serdes::util {

bool cpu_has_avx2() {
#if SERDES_X86_DISPATCH
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

}  // namespace serdes::util
