// Runtime SIMD capability dispatch for the lane-batched kernels.
//
// The library is built for the baseline target (no -mavx2), so the AVX2
// variants of the hot lane kernels are compiled per-function via the
// `target("avx2")` attribute and selected at runtime with
// __builtin_cpu_supports.  Every explicit path uses separate multiply and
// add only (never FMA): the baseline scalar loops compile without
// contraction, so an FMA variant would round differently and break the
// lane path's bit-identity contract.  On non-x86 targets (aarch64 NEON is
// baseline) the portable lane loops auto-vectorize as-is and
// cpu_has_avx2() is constant false, leaving the guarded paths dead.
#pragma once

namespace serdes::util {

#if defined(__x86_64__) || defined(__i386__)
#define SERDES_X86_DISPATCH 1
#else
#define SERDES_X86_DISPATCH 0
#endif

/// True when the running CPU supports AVX2 (always false off x86).
/// Cheap after the first call: the probe result is cached.
[[nodiscard]] bool cpu_has_avx2();

}  // namespace serdes::util
