#include "util/strings.h"

#include <algorithm>

namespace serdes::util {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

std::string closest_match(std::string_view word,
                          const std::vector<std::string>& candidates) {
  std::string hint;
  std::size_t best = std::max<std::size_t>(2, word.size() / 3);
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(word, candidate);
    if (d <= best) {
      best = d;
      hint = candidate;
    }
  }
  return hint;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += separator;
    out += item;
  }
  return out;
}

}  // namespace serdes::util
