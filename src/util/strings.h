// Small string utilities shared by error-reporting paths: edit distance
// and "did you mean" suggestion selection, used by ChannelFactory for
// unknown channel kinds and by the JSON spec reader for unknown fields.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace serdes::util {

/// Levenshtein distance between `a` and `b`.
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `word` when the typo is plausible (within a
/// third of the word's length, minimum 2 edits); empty string otherwise.
[[nodiscard]] std::string closest_match(
    std::string_view word, const std::vector<std::string>& candidates);

/// Joins `items` with ", " (for "registered: a, b, c" style messages).
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view separator = ", ");

}  // namespace serdes::util
