#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace serdes::util {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string num_fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(num(v));
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  // Column widths from header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      out << cell << std::string(width[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TextTable::print() const { std::cout << render() << std::flush; }

void TextTable::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open CSV output: " + path);
  f << render_csv();
  if (!f) throw std::runtime_error("failed writing CSV output: " + path);
}

}  // namespace serdes::util
