// Plain-text table and CSV emission for benchmark harnesses.
//
// Every bench binary reproduces one of the paper's figures as rows of a
// table printed to stdout (and optionally a CSV for plotting).  This tiny
// formatter keeps that output consistent across benches.
#pragma once

#include <string>
#include <vector>

namespace serdes::util {

/// Column-aligned text table with a title, header row and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with %.4g.
  void add_row_numeric(const std::vector<double>& row);

  /// Renders the aligned table.
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (header + rows, comma-separated, no alignment).
  [[nodiscard]] std::string render_csv() const;

  /// Renders to stdout.
  void print() const;

  /// Writes CSV to a file; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with %.4g (the table default).
std::string num(double v);

/// Formats a double with fixed decimals.
std::string num_fixed(double v, int decimals);

}  // namespace serdes::util
