#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace serdes::util {

SiScaled si_scale(double value) {
  struct Band {
    double threshold;
    double divisor;
    const char* prefix;
  };
  static constexpr std::array<Band, 10> kBands{{
      {1e12, 1e12, "T"},
      {1e9, 1e9, "G"},
      {1e6, 1e6, "M"},
      {1e3, 1e3, "k"},
      {1.0, 1.0, ""},
      {1e-3, 1e-3, "m"},
      {1e-6, 1e-6, "u"},
      {1e-9, 1e-9, "n"},
      {1e-12, 1e-12, "p"},
      {1e-15, 1e-15, "f"},
  }};
  const double mag = std::fabs(value);
  if (mag == 0.0) return {0.0, ""};
  for (const Band& b : kBands) {
    if (mag >= b.threshold) return {value / b.divisor, b.prefix};
  }
  return {value / 1e-15, "f"};
}

namespace {
std::string format(double value, const char* unit) {
  const SiScaled s = si_scale(value);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g %s%s", s.mantissa, s.prefix, unit);
  return buf;
}
}  // namespace

std::string to_string(Volt v) { return format(v.value(), "V"); }
std::string to_string(Second t) { return format(t.value(), "s"); }
std::string to_string(Hertz f) { return format(f.value(), "Hz"); }
std::string to_string(Farad c) { return format(c.value(), "F"); }
std::string to_string(Watt p) { return format(p.value(), "W"); }
std::string to_string(Joule e) { return format(e.value(), "J"); }

}  // namespace serdes::util
