// Strong unit types for electrical quantities.
//
// The simulator mixes voltages, times, frequencies, capacitances and power
// numbers in nearly every API.  Raw doubles invite unit bugs (ns vs s,
// mV vs V), so every public interface uses these thin strong types.  They
// carry a single double in SI base units and compile away entirely.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace serdes::util {

/// CRTP-free strong typedef over double. `Tag` makes each unit distinct.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

 private:
  double value_ = 0.0;
};

struct VoltTag {};
struct SecondTag {};
struct HertzTag {};
struct FaradTag {};
struct OhmTag {};
struct AmpereTag {};
struct WattTag {};
struct JouleTag {};
struct AreaTag {};      // square micrometres
struct DecibelTag {};   // power/amplitude ratio in dB (context-dependent)

using Volt = Quantity<VoltTag>;
using Second = Quantity<SecondTag>;
using Hertz = Quantity<HertzTag>;
using Farad = Quantity<FaradTag>;
using Ohm = Quantity<OhmTag>;
using Ampere = Quantity<AmpereTag>;
using Watt = Quantity<WattTag>;
using Joule = Quantity<JouleTag>;
using AreaUm2 = Quantity<AreaTag>;
using Decibel = Quantity<DecibelTag>;

// ---- Construction helpers (SI prefixes) ------------------------------------

constexpr Volt volts(double v) { return Volt{v}; }
constexpr Volt millivolts(double v) { return Volt{v * 1e-3}; }
constexpr Volt microvolts(double v) { return Volt{v * 1e-6}; }

constexpr Second seconds(double v) { return Second{v}; }
constexpr Second milliseconds(double v) { return Second{v * 1e-3}; }
constexpr Second microseconds(double v) { return Second{v * 1e-6}; }
constexpr Second nanoseconds(double v) { return Second{v * 1e-9}; }
constexpr Second picoseconds(double v) { return Second{v * 1e-12}; }
constexpr Second femtoseconds(double v) { return Second{v * 1e-15}; }

constexpr Hertz hertz(double v) { return Hertz{v}; }
constexpr Hertz kilohertz(double v) { return Hertz{v * 1e3}; }
constexpr Hertz megahertz(double v) { return Hertz{v * 1e6}; }
constexpr Hertz gigahertz(double v) { return Hertz{v * 1e9}; }

constexpr Farad farads(double v) { return Farad{v}; }
constexpr Farad picofarads(double v) { return Farad{v * 1e-12}; }
constexpr Farad femtofarads(double v) { return Farad{v * 1e-15}; }

constexpr Ohm ohms(double v) { return Ohm{v}; }
constexpr Ohm kiloohms(double v) { return Ohm{v * 1e3}; }
constexpr Ohm megaohms(double v) { return Ohm{v * 1e6}; }

constexpr Ampere amperes(double v) { return Ampere{v}; }
constexpr Ampere milliamperes(double v) { return Ampere{v * 1e-3}; }
constexpr Ampere microamperes(double v) { return Ampere{v * 1e-6}; }

constexpr Watt watts(double v) { return Watt{v}; }
constexpr Watt milliwatts(double v) { return Watt{v * 1e-3}; }
constexpr Watt microwatts(double v) { return Watt{v * 1e-6}; }
constexpr Watt nanowatts(double v) { return Watt{v * 1e-9}; }

constexpr Joule joules(double v) { return Joule{v}; }
constexpr Joule picojoules(double v) { return Joule{v * 1e-12}; }

constexpr AreaUm2 square_microns(double v) { return AreaUm2{v}; }
constexpr Decibel decibels(double v) { return Decibel{v}; }

// ---- Cross-unit relations ---------------------------------------------------

/// Period of a frequency. f must be > 0.
constexpr Second period(Hertz f) { return Second{1.0 / f.value()}; }
/// Frequency of a period. t must be > 0.
constexpr Hertz frequency(Second t) { return Hertz{1.0 / t.value()}; }

constexpr Volt operator*(Ampere i, Ohm r) { return Volt{i.value() * r.value()}; }
constexpr Volt operator*(Ohm r, Ampere i) { return i * r; }
constexpr Ampere operator/(Volt v, Ohm r) { return Ampere{v.value() / r.value()}; }
constexpr Ohm operator/(Volt v, Ampere i) { return Ohm{v.value() / i.value()}; }
constexpr Watt operator*(Volt v, Ampere i) { return Watt{v.value() * i.value()}; }
constexpr Watt operator*(Ampere i, Volt v) { return v * i; }
constexpr Joule operator*(Watt p, Second t) { return Joule{p.value() * t.value()}; }
constexpr Joule operator*(Second t, Watt p) { return p * t; }
constexpr Watt operator/(Joule e, Second t) { return Watt{e.value() / t.value()}; }

/// RC time constant.
constexpr Second operator*(Ohm r, Farad c) { return Second{r.value() * c.value()}; }
constexpr Second operator*(Farad c, Ohm r) { return r * c; }

// ---- Decibel helpers --------------------------------------------------------

/// Amplitude (20·log10) dB from a linear voltage gain.
inline Decibel amplitude_db(double linear_gain) {
  return Decibel{20.0 * std::log10(linear_gain)};
}
/// Linear voltage gain from amplitude dB.
inline double db_to_amplitude(Decibel db) {
  return std::pow(10.0, db.value() / 20.0);
}
/// Power (10·log10) dB from a linear power ratio.
inline Decibel power_db(double linear_ratio) {
  return Decibel{10.0 * std::log10(linear_ratio)};
}
/// Linear power ratio from power dB.
inline double db_to_power(Decibel db) {
  return std::pow(10.0, db.value() / 10.0);
}

// ---- Formatting -------------------------------------------------------------

/// Pretty-print with an auto-selected SI prefix, e.g. "2.00 GHz", "32.1 mV".
std::string to_string(Volt v);
std::string to_string(Second t);
std::string to_string(Hertz f);
std::string to_string(Farad c);
std::string to_string(Watt p);
std::string to_string(Joule e);

/// Scale a raw double by the best SI prefix: returns e.g. {2.0, "G"}.
struct SiScaled {
  double mantissa;
  const char* prefix;
};
SiScaled si_scale(double value);

}  // namespace serdes::util
