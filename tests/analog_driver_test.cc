#include "analog/driver.h"

#include <gtest/gtest.h>

namespace serdes::analog {
namespace {

TEST(Driver, DefaultDesignIsThreeStages) {
  const InverterChainDriver driver;
  EXPECT_EQ(driver.chain().size(), 3u);
  // Tapered: each stage wider than the last.
  EXPECT_GT(driver.chain()[1].nmos().width_um(),
            driver.chain()[0].nmos().width_um());
  EXPECT_GT(driver.chain()[2].nmos().width_um(),
            driver.chain()[1].nmos().width_um());
}

TEST(Driver, InvalidDesignsThrow) {
  DriverDesign zero_stages;
  zero_stages.stages = 0;
  EXPECT_THROW(InverterChainDriver{zero_stages}, std::invalid_argument);
  DriverDesign flat_taper;
  flat_taper.taper = 1.0;
  EXPECT_THROW(InverterChainDriver{flat_taper}, std::invalid_argument);
}

TEST(Driver, RiseTimeFastEnoughFor2Gbps) {
  const InverterChainDriver driver;
  const double tr = driver.output_rise_time().value();
  EXPECT_GT(tr, 10e-12);
  EXPECT_LT(tr, 250e-12);  // < half the 500 ps UI
}

TEST(Driver, MoreTaperMeansFasterOutput) {
  DriverDesign slow;
  slow.taper = 2.0;
  DriverDesign fast;
  fast.taper = 5.0;
  EXPECT_GT(InverterChainDriver(slow).output_rise_time().value(),
            InverterChainDriver(fast).output_rise_time().value());
}

TEST(Driver, PowerScalesWithRateAndActivity) {
  const InverterChainDriver driver;
  const double p1 = driver.dynamic_power(util::gigahertz(1.0)).value();
  const double p2 = driver.dynamic_power(util::gigahertz(2.0)).value();
  EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
  const double p_half =
      driver.dynamic_power(util::gigahertz(2.0), 0.25).value();
  EXPECT_NEAR(p_half / p2, 0.5, 1e-9);
}

TEST(Driver, PaperPowerBallpark) {
  // Paper Fig 10: CMOS driver ~4.5 mW at 2 Gbps into 2 pF.
  const InverterChainDriver driver;
  const double p = driver.dynamic_power(util::gigahertz(2.0), 0.25).value();
  EXPECT_GT(p, 1e-3);
  EXPECT_LT(p, 10e-3);
}

TEST(Driver, DelayPositiveAndOrdered) {
  const InverterChainDriver driver;
  EXPECT_GT(driver.total_delay().value(), 0.0);
  EXPECT_LT(driver.total_delay().value(), 2e-9);
}

TEST(Driver, BehavioralWaveformSwingsRailToRail) {
  const InverterChainDriver driver;
  const std::vector<std::uint8_t> bits = {0, 1, 1, 0, 1, 0, 0, 1};
  const auto w = driver.drive(bits, util::gigahertz(2.0), 16);
  EXPECT_NEAR(w.max_value(), 1.8, 0.01);
  EXPECT_NEAR(w.min_value(), 0.0, 0.01);
  EXPECT_EQ(w.size(), bits.size() * 16u);
}

TEST(Driver, TransientDrives2pFRailToRail) {
  // Fig 4b: the transistor-level chain drives the 2 pF load rail to rail at
  // 2 Gbps.  (Coarser time step keeps the test fast.)
  const InverterChainDriver driver;
  const std::vector<std::uint8_t> bits = {0, 1, 1, 0};
  auto in = Waveform::nrz(bits, util::nanoseconds(0.5), 32, 0.0, 1.8,
                          util::picoseconds(50.0));
  const auto out = driver.transient(in, util::picoseconds(5.0));
  EXPECT_GT(out.max_value(), 1.6);
  EXPECT_LT(out.min_value(), 0.2);
}

TEST(Driver, TransientPolarityMatchesStageCount) {
  // Three inverting stages: output is the logical complement of the input.
  const InverterChainDriver driver;
  const std::vector<std::uint8_t> bits = {0, 0, 1, 1};
  auto in = Waveform::nrz(bits, util::nanoseconds(1.0), 32, 0.0, 1.8,
                          util::picoseconds(50.0));
  const auto out = driver.transient(in, util::picoseconds(5.0));
  // Sample late in each bit (chain delay ~100 ps).
  EXPECT_GT(out.value_at(util::nanoseconds(1.8)), 1.5);  // in=0 -> out high
  EXPECT_LT(out.value_at(util::nanoseconds(3.8)), 0.3);  // in=1 -> out low
}

TEST(Driver, TotalWidthGrowsWithStages) {
  DriverDesign two;
  two.stages = 2;
  DriverDesign four;
  four.stages = 4;
  EXPECT_GT(InverterChainDriver(four).total_width_um(),
            InverterChainDriver(two).total_width_um());
}

// Property sweep: across stage counts the behavioural model stays
// rail-to-rail and the delay grows with the chain length at fixed taper.
class DriverStagesTest : public ::testing::TestWithParam<int> {};

TEST_P(DriverStagesTest, BehavioralRailToRail) {
  DriverDesign d;
  d.stages = GetParam();
  const InverterChainDriver driver(d);
  const auto w = driver.drive({0, 1, 0, 1, 1, 0}, util::gigahertz(1.0), 16);
  EXPECT_NEAR(w.max_value(), 1.8, 0.05);
  EXPECT_NEAR(w.min_value(), 0.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Stages, DriverStagesTest, ::testing::Values(1, 2, 3,
                                                                     4, 5));

}  // namespace
}  // namespace serdes::analog
