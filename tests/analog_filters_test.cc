#include "analog/filters.h"

#include <gtest/gtest.h>

#include <cmath>

namespace serdes::analog {
namespace {

constexpr util::Second kDt = util::Second{25e-12};  // 40 GS/s

TEST(OnePoleLowPass, PassesDc) {
  OnePoleLowPass lpf(util::gigahertz(1.0), kDt);
  double y = 0.0;
  for (int i = 0; i < 1000; ++i) y = lpf.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(OnePoleLowPass, Minus3dbAtCutoff) {
  OnePoleLowPass lpf(util::gigahertz(1.0), kDt);
  const double g = measure_gain(lpf, util::gigahertz(1.0), kDt);
  EXPECT_NEAR(g, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(OnePoleLowPass, RollsOffAtHighFrequency) {
  OnePoleLowPass lpf(util::megahertz(100.0), kDt);
  const double g_pass = measure_gain(lpf, util::megahertz(10.0), kDt);
  const double g_stop = measure_gain(lpf, util::gigahertz(1.0), kDt);
  EXPECT_GT(g_pass, 0.95);
  EXPECT_LT(g_stop, 0.15);  // one decade above: ~ -20 dB
  EXPECT_NEAR(g_stop, 0.0995, 0.02);
}

TEST(OnePoleLowPass, ResetClearsState) {
  OnePoleLowPass lpf(util::gigahertz(1.0), kDt);
  for (int i = 0; i < 100; ++i) lpf.step(1.0);
  lpf.reset();
  EXPECT_NEAR(lpf.step(0.0), 0.0, 1e-12);
}

TEST(OnePoleLowPass, CutoffClampedBelowNyquist) {
  // Requesting a pole beyond Nyquist must not throw; it becomes a
  // pass-through-ish filter.
  OnePoleLowPass lpf(util::gigahertz(100.0), kDt);
  const double g = measure_gain(lpf, util::megahertz(500.0), kDt);
  EXPECT_GT(g, 0.9);
}

TEST(OnePoleLowPass, InvalidParamsThrow) {
  EXPECT_THROW(OnePoleLowPass(util::hertz(0.0), kDt), std::invalid_argument);
  EXPECT_THROW(OnePoleLowPass(util::gigahertz(1.0), util::seconds(0.0)),
               std::invalid_argument);
}

TEST(OnePoleHighPass, BlocksDc) {
  OnePoleHighPass hpf(util::megahertz(10.0), kDt);
  double y = 1.0;
  for (int i = 0; i < 200000; ++i) y = hpf.step(1.0);
  EXPECT_NEAR(y, 0.0, 1e-3);
}

TEST(OnePoleHighPass, PassesHighFrequency) {
  OnePoleHighPass hpf(util::megahertz(10.0), kDt);
  const double g = measure_gain(hpf, util::gigahertz(1.0), kDt);
  EXPECT_NEAR(g, 1.0, 0.02);
}

TEST(BiquadLowPass, DcGainUnity) {
  BiquadLowPass lpf(util::gigahertz(1.0), 0.707, kDt);
  double y = 0.0;
  for (int i = 0; i < 2000; ++i) y = lpf.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-4);
}

TEST(BiquadLowPass, SteeperRolloffThanOnePole) {
  BiquadLowPass biquad(util::megahertz(100.0), 0.707, kDt);
  OnePoleLowPass onepole(util::megahertz(100.0), kDt);
  const double g2 = measure_gain(biquad, util::gigahertz(1.0), kDt);
  const double g1 = measure_gain(onepole, util::gigahertz(1.0), kDt);
  EXPECT_LT(g2, g1 * 0.5);  // ~-40 dB/dec vs -20 dB/dec
}

TEST(BiquadLowPass, InvalidQThrows) {
  EXPECT_THROW(BiquadLowPass(util::gigahertz(1.0), 0.0, kDt),
               std::invalid_argument);
}

TEST(FirFilter, ImpulseResponseIsTaps) {
  FirFilter fir({0.5, 0.3, 0.2});
  EXPECT_DOUBLE_EQ(fir.step(1.0), 0.5);
  EXPECT_DOUBLE_EQ(fir.step(0.0), 0.3);
  EXPECT_DOUBLE_EQ(fir.step(0.0), 0.2);
  EXPECT_DOUBLE_EQ(fir.step(0.0), 0.0);
}

TEST(FirFilter, DcGainIsTapSum) {
  FirFilter fir({0.25, 0.25, 0.25, 0.25});
  double y = 0.0;
  for (int i = 0; i < 10; ++i) y = fir.step(2.0);
  EXPECT_DOUBLE_EQ(y, 2.0);
}

TEST(FirFilter, EmptyTapsThrow) {
  EXPECT_THROW(FirFilter({}), std::invalid_argument);
}

TEST(Filter, ProcessAppliesToWholeWaveform) {
  FirFilter fir({2.0});
  Waveform w(util::seconds(0.0), kDt, {1.0, 2.0, 3.0});
  fir.process(w);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 4.0);
  EXPECT_DOUBLE_EQ(w[2], 6.0);
}

// Property: |H| never exceeds 1 (passive filters) across the band.
class LpfGainBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(LpfGainBoundTest, GainBounded) {
  OnePoleLowPass lpf(util::megahertz(GetParam()), kDt);
  for (double f_mhz : {10.0, 50.0, 200.0, 1000.0, 5000.0}) {
    const double g = measure_gain(lpf, util::megahertz(f_mhz), kDt);
    EXPECT_LE(g, 1.02) << "fc=" << GetParam() << " f=" << f_mhz;
  }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, LpfGainBoundTest,
                         ::testing::Values(50.0, 200.0, 800.0, 3000.0));

}  // namespace
}  // namespace serdes::analog
