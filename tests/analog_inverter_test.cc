#include "analog/inverter.h"

#include <gtest/gtest.h>

namespace serdes::analog {
namespace {

InverterCell make_cell(double wn = 4.0, double wp = 6.0) {
  return InverterCell(wn, wp, util::volts(1.8));
}

TEST(Inverter, VtcEndpointsAreRails) {
  const auto inv = make_cell();
  EXPECT_GT(inv.vtc(0.0), 1.75);   // output high for input low
  EXPECT_LT(inv.vtc(1.8), 0.05);   // output low for input high
}

TEST(Inverter, VtcIsMonotoneDecreasing) {
  const auto inv = make_cell();
  double prev = inv.vtc(0.0);
  for (double vin = 0.02; vin <= 1.8; vin += 0.02) {
    const double vout = inv.vtc(vin);
    EXPECT_LE(vout, prev + 1e-9) << "VTC rose at vin=" << vin;
    prev = vout;
  }
}

TEST(Inverter, SwitchingThresholdIsFixedPoint) {
  const auto inv = make_cell();
  const double vm = inv.switching_threshold();
  EXPECT_GT(vm, 0.5);
  EXPECT_LT(vm, 1.1);
  EXPECT_NEAR(inv.vtc(vm), vm, 1e-6);
}

TEST(Inverter, ThresholdShiftsWithSizing) {
  // Stronger PMOS pulls the threshold up.
  const auto weak_p = make_cell(4.0, 4.0);
  const auto strong_p = make_cell(4.0, 12.0);
  EXPECT_LT(weak_p.switching_threshold(), strong_p.switching_threshold());
}

TEST(Inverter, GainIsNegativeAndPeaksNearThreshold) {
  const auto inv = make_cell();
  const double vm = inv.switching_threshold();
  const double gain_at_vm = inv.small_signal_gain(vm);
  EXPECT_LT(gain_at_vm, -5.0);  // strongly inverting at the bias point
  EXPECT_GT(std::abs(gain_at_vm), std::abs(inv.small_signal_gain(0.3)));
  EXPECT_GT(std::abs(gain_at_vm), std::abs(inv.small_signal_gain(1.6)));
}

TEST(Inverter, StaticCurrentPeaksNearThreshold) {
  const auto inv = make_cell();
  const double vm = inv.switching_threshold();
  const double i_vm = inv.static_current(vm).value();
  EXPECT_GT(i_vm, inv.static_current(0.1).value());
  EXPECT_GT(i_vm, inv.static_current(1.7).value());
  EXPECT_GT(i_vm, 1e-5);  // hundreds of uA scale for these widths
}

TEST(Inverter, OutputResistanceFiniteAtBias) {
  const auto inv = make_cell();
  const double vm = inv.switching_threshold();
  const double rout = inv.output_resistance(vm).value();
  EXPECT_GT(rout, 100.0);
  EXPECT_LT(rout, 1e6);
}

TEST(Inverter, CapsScaleWithWidths) {
  const auto small = make_cell(2.0, 3.0);
  const auto big = make_cell(4.0, 6.0);
  EXPECT_NEAR(big.input_cap().value() / small.input_cap().value(), 2.0, 1e-9);
  EXPECT_GT(big.output_cap().value(), small.output_cap().value());
}

TEST(Inverter, DelayIncreasesWithLoad) {
  const auto inv = make_cell();
  const double d1 = inv.propagation_delay(util::femtofarads(10.0)).value();
  const double d2 = inv.propagation_delay(util::femtofarads(100.0)).value();
  EXPECT_GT(d2, d1);
  EXPECT_GT(d1, 0.0);
}

TEST(Inverter, DelayDecreasesWithDrive) {
  const auto weak = make_cell(2.0, 3.0);
  const auto strong = make_cell(8.0, 12.0);
  const util::Farad load = util::femtofarads(50.0);
  EXPECT_GT(weak.propagation_delay(load).value(),
            strong.propagation_delay(load).value());
}

TEST(Inverter, SwitchingEnergyScalesWithLoad) {
  const auto inv = make_cell();
  const double e1 = inv.switching_energy(util::femtofarads(10.0)).value();
  const double e2 = inv.switching_energy(util::femtofarads(110.0)).value();
  // Adding 100 fF at 1.8 V adds C*V^2 = 324 fJ.
  EXPECT_NEAR(e2 - e1, 100e-15 * 1.8 * 1.8, 1e-17);
}

TEST(Inverter, DriveResistancesReasonable) {
  const auto inv = make_cell();
  EXPECT_GT(inv.drive_resistance_n().value(), 50.0);
  EXPECT_LT(inv.drive_resistance_n().value(), 20e3);
  // PMOS weaker per um but wider here; still same order.
  EXPECT_GT(inv.drive_resistance_p().value(), 50.0);
  EXPECT_LT(inv.drive_resistance_p().value(), 30e3);
}

TEST(Inverter, ConstructionValidation) {
  EXPECT_THROW(InverterCell(4.0, 6.0, util::volts(0.0)),
               std::invalid_argument);
  EXPECT_THROW(InverterCell(4.0, 6.0, util::volts(1.8), sky130_pfet(),
                            sky130_nfet()),
               std::invalid_argument);
}

// Property: for any sizing, the threshold stays strictly inside the rails
// and the VTC passes through it.
class InverterSizingTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(InverterSizingTest, ThresholdInsideRails) {
  const auto [wn, wp] = GetParam();
  const InverterCell inv(wn, wp, util::volts(1.8));
  const double vm = inv.switching_threshold();
  EXPECT_GT(vm, 0.2);
  EXPECT_LT(vm, 1.6);
  EXPECT_NEAR(inv.vtc(vm), vm, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sizings, InverterSizingTest,
    ::testing::Values(std::pair{1.0, 1.0}, std::pair{1.0, 4.0},
                      std::pair{4.0, 1.0}, std::pair{8.0, 12.0},
                      std::pair{24.0, 36.0}, std::pair{0.5, 0.8}));

}  // namespace
}  // namespace serdes::analog
