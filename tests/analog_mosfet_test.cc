#include "analog/mosfet.h"

#include <gtest/gtest.h>

namespace serdes::analog {
namespace {

TEST(Mosfet, CutoffRegionLeaksOnly) {
  const Mosfet n(sky130_nfet(), 1.0);
  const double id = n.drain_current(0.0, 1.8);
  EXPECT_GT(id, 0.0);         // subthreshold floor exists
  EXPECT_LT(id, 1e-7);        // but it is nanoamp-scale
}

TEST(Mosfet, SaturationCurrentMagnitude) {
  // sky130-like NFET: hundreds of uA per um at full drive.
  const Mosfet n(sky130_nfet(), 1.0);
  const double id = n.drain_current(1.8, 1.8);
  EXPECT_GT(id, 3e-4);
  EXPECT_LT(id, 1.5e-3);
}

TEST(Mosfet, CurrentScalesWithWidth) {
  const Mosfet w1(sky130_nfet(), 1.0);
  const Mosfet w4(sky130_nfet(), 4.0);
  EXPECT_NEAR(w4.drain_current(1.8, 1.8) / w1.drain_current(1.8, 1.8), 4.0,
              1e-9);
}

TEST(Mosfet, MonotoneInVgs) {
  const Mosfet n(sky130_nfet(), 2.0);
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.8; vgs += 0.05) {
    const double id = n.drain_current(vgs, 1.2);
    EXPECT_GE(id, prev);
    prev = id;
  }
}

TEST(Mosfet, MonotoneInVds) {
  const Mosfet n(sky130_nfet(), 2.0);
  double prev = -1.0;
  for (double vds = 0.0; vds <= 1.8; vds += 0.05) {
    const double id = n.drain_current(1.2, vds);
    EXPECT_GE(id, prev);
    prev = id;
  }
}

TEST(Mosfet, ZeroVdsZeroCurrent) {
  const Mosfet n(sky130_nfet(), 2.0);
  EXPECT_DOUBLE_EQ(n.drain_current(1.8, 0.0), 0.0);
}

TEST(Mosfet, ReverseVdsSymmetry) {
  // Swapping source and drain mirrors the current.
  const Mosfet n(sky130_nfet(), 2.0);
  const double fwd = n.drain_current(1.8, 0.3);
  const double rev = n.drain_current(1.8 - 0.3 * 0 - 0.3 + 1.8 * 0, -0.3);
  (void)rev;
  // Exact relation: I(vgs, -vds) = -I(vgs + vds, vds).
  EXPECT_NEAR(n.drain_current(1.5, -0.3), -n.drain_current(1.8, 0.3), 1e-12);
  EXPECT_GT(fwd, 0.0);
}

TEST(Mosfet, PmosMirrorsNmosConventions) {
  const Mosfet p(sky130_pfet(), 2.0);
  // PMOS on: gate below source.
  const double id_on = p.drain_current(-1.8, -1.8);
  EXPECT_LT(id_on, 0.0);  // conventional current flows out of the drain
  // PMOS off.
  EXPECT_GT(std::abs(p.drain_current(0.0, -1.8)), 0.0);
  EXPECT_LT(std::abs(p.drain_current(0.0, -1.8)), 1e-7);
}

TEST(Mosfet, PmosWeakerThanNmos) {
  const Mosfet n(sky130_nfet(), 1.0);
  const Mosfet p(sky130_pfet(), 1.0);
  EXPECT_GT(n.drain_current(1.8, 1.8),
            std::abs(p.drain_current(-1.8, -1.8)));
}

TEST(Mosfet, TransconductancePositiveInSaturation) {
  const Mosfet n(sky130_nfet(), 2.0);
  EXPECT_GT(n.gm(1.0, 1.5), 0.0);
  EXPECT_GT(n.gm(0.9, 1.5), 0.0);
}

TEST(Mosfet, OutputConductanceSmallInSaturation) {
  const Mosfet n(sky130_nfet(), 2.0);
  const double gds_sat = n.gds(1.0, 1.5);
  const double gds_lin = n.gds(1.8, 0.05);
  EXPECT_GT(gds_sat, 0.0);
  EXPECT_GT(gds_lin, gds_sat);  // triode slope is much steeper
}

TEST(Mosfet, CapacitancesScaleWithWidth) {
  const Mosfet n(sky130_nfet(), 3.0);
  EXPECT_NEAR(n.gate_cap().value(), 3.0 * 1.3e-15, 1e-20);
  EXPECT_NEAR(n.drain_cap().value(), 3.0 * 0.8e-15, 1e-20);
}

TEST(Mosfet, InvalidWidthThrows) {
  EXPECT_THROW(Mosfet(sky130_nfet(), 0.0), std::invalid_argument);
  EXPECT_THROW(Mosfet(sky130_nfet(), -1.0), std::invalid_argument);
}

// Continuity sweep: current must be continuous across the
// subthreshold/saturation and linear/saturation boundaries.
class MosfetContinuityTest : public ::testing::TestWithParam<double> {};

TEST_P(MosfetContinuityTest, CurrentIsContinuousInVgs) {
  const Mosfet n(sky130_nfet(), 2.0);
  const double vds = GetParam();
  double prev = n.drain_current(0.0, vds);
  for (double vgs = 0.001; vgs <= 1.8; vgs += 0.001) {
    const double id = n.drain_current(vgs, vds);
    EXPECT_LT(std::abs(id - prev), 2e-5) << "jump at vgs=" << vgs;
    prev = id;
  }
}

TEST_P(MosfetContinuityTest, CurrentIsContinuousInVds) {
  const Mosfet n(sky130_nfet(), 2.0);
  const double vgs = GetParam();
  double prev = n.drain_current(vgs, 0.0);
  for (double vds = 0.001; vds <= 1.8; vds += 0.001) {
    const double id = n.drain_current(vgs, vds);
    EXPECT_LT(std::abs(id - prev), 2e-5) << "jump at vds=" << vds;
    prev = id;
  }
}

INSTANTIATE_TEST_SUITE_P(BiasSweep, MosfetContinuityTest,
                         ::testing::Values(0.2, 0.5, 0.9, 1.2, 1.8));

}  // namespace
}  // namespace serdes::analog
