#include "analog/rfi.h"

#include <gtest/gtest.h>

namespace serdes::analog {
namespace {

TEST(Rfi, SelfBiasNearPaperValue) {
  // Paper Fig 6: the RFI biases around 0.83 V (slightly below Vdd/2 + Vth
  // asymmetry).  Our calibrated devices land within a few tens of mV.
  const RfiCircuit rfi;
  EXPECT_GT(rfi.self_bias(), 0.76);
  EXPECT_LT(rfi.self_bias(), 0.90);
}

TEST(Rfi, GainAndBandwidthInDesignRange) {
  const RfiCircuit rfi;
  EXPECT_GT(rfi.gain_at_bias(), 5.0);    // paper's 32 mV -> ~300 mV => ~10x
  EXPECT_LT(rfi.gain_at_bias(), 40.0);
  EXPECT_GT(rfi.bandwidth().value(), 0.3e9);
  EXPECT_LT(rfi.bandwidth().value(), 20e9);
}

TEST(Rfi, PseudoResistorIsVeryLarge) {
  const RfiCircuit rfi;
  EXPECT_GT(rfi.pseudo_resistance().value(), 1e6);  // megohms and up
}

TEST(Rfi, StaticCurrentIsClassA) {
  // Both devices saturated at the bias point: milliamp-scale static draw —
  // the reason the paper's RX front end burns 6.7 mW.
  const RfiCircuit rfi;
  const double i = rfi.static_current().value();
  EXPECT_GT(i, 1e-4);
  EXPECT_LT(i, 2e-2);
}

TEST(Rfi, DcTransferInverts) {
  const RfiCircuit rfi;
  EXPECT_GT(rfi.dc_transfer(0.2), 1.6);
  EXPECT_LT(rfi.dc_transfer(1.6), 0.2);
}

TEST(RfiTransient, SmallSignalRidesOnBias) {
  // Fig 6b: a 32 mV input is re-centred around the self-bias voltage.
  const RfiCircuit rfi;
  const std::vector<std::uint8_t> bits = {0, 1, 0, 1, 1, 0, 1, 0};
  auto input = Waveform::nrz(bits, util::nanoseconds(1.0), 32, -0.016, 0.016,
                             util::picoseconds(100.0));
  const auto waves = rfi.transient(input, util::picoseconds(10.0));
  // Biased input: mean near the self-bias, excursion ~ +/-16 mV.
  const double bias = rfi.self_bias();
  // Skip the settling prefix before measuring.
  double vmin = 1e9;
  double vmax = -1e9;
  for (std::size_t i = waves.biased_input.size() / 4;
       i < waves.biased_input.size(); ++i) {
    vmin = std::min(vmin, waves.biased_input[i]);
    vmax = std::max(vmax, waves.biased_input[i]);
  }
  EXPECT_NEAR(0.5 * (vmin + vmax), bias, 0.05);
  EXPECT_NEAR(vmax - vmin, 0.032, 0.012);
  // Output swings around the bias with gain.
  EXPECT_GT(waves.output.peak_to_peak(), 0.10);  // ~ gain * 32 mV
}

TEST(RfiStage, BehavioralMatchesCircuitAtDc) {
  const RfiCircuit circuit;
  const RfiStage stage(circuit, util::picoseconds(31.25));
  EXPECT_DOUBLE_EQ(stage.bias(), circuit.self_bias());
  EXPECT_DOUBLE_EQ(stage.gain(), circuit.gain_at_bias());
  EXPECT_DOUBLE_EQ(stage.bandwidth().value(), circuit.bandwidth().value());
}

TEST(RfiStage, AmplifiesAndInverts) {
  const RfiCircuit circuit;
  const util::Second dt = util::picoseconds(31.25);
  const RfiStage stage(circuit, dt);
  // Slow square wave well within bandwidth.
  const std::vector<std::uint8_t> bits = {0, 0, 1, 1, 0, 0, 1, 1};
  auto in = Waveform::nrz(bits, util::nanoseconds(4.0), 128, -0.01, 0.01,
                          util::picoseconds(200.0));
  const auto out = stage.process(in);
  // Gain ~ >5x on a 20 mV swing.
  EXPECT_GT(out.peak_to_peak(), 0.1);
  // Inversion: input high (bit 1) -> output below bias.
  const double v_high_in = out.value_at(util::nanoseconds(10.0));  // bit=1
  const double v_low_in = out.value_at(util::nanoseconds(18.0));   // bit=0
  EXPECT_LT(v_high_in, v_low_in);
}

TEST(RfiStage, SaturatesInsideRails) {
  const RfiCircuit circuit;
  const RfiStage stage(circuit, util::picoseconds(31.25));
  auto in = Waveform::nrz({0, 1, 0, 1}, util::nanoseconds(2.0), 64, -0.5, 0.5,
                          util::picoseconds(100.0));
  const auto out = stage.process(in);
  EXPECT_GE(out.min_value(), 0.0);
  EXPECT_LE(out.max_value(), 1.8);
  EXPECT_GT(out.peak_to_peak(), 1.0);  // hard-driven: near rail-to-rail
}

TEST(RfiStage, RemovesInputDc) {
  // The AC coupling makes the output independent of the input's DC level.
  const RfiCircuit circuit;
  const RfiStage stage(circuit, util::picoseconds(31.25));
  auto in_a = Waveform::nrz({0, 1, 0, 1, 0, 1}, util::nanoseconds(2.0), 64,
                            0.0, 0.02, util::picoseconds(100.0));
  auto in_b = in_a;
  in_b.offset(0.7);  // large common-mode shift
  const auto out_a = stage.process(in_a);
  const auto out_b = stage.process(in_b);
  for (std::size_t i = 0; i < out_a.size(); i += 37) {
    EXPECT_NEAR(out_a[i], out_b[i], 1e-9);
  }
}

}  // namespace
}  // namespace serdes::analog
