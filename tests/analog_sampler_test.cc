#include "analog/sampler.h"

#include <gtest/gtest.h>

namespace serdes::analog {
namespace {

constexpr util::Second kDt = util::Second{31.25e-12};

TEST(RestoringInverter, RestoresRails) {
  const RestoringInverter inv(8.0, 12.0, util::volts(1.8), kDt);
  // Small swing around the threshold...
  const double vm = inv.threshold();
  auto in = Waveform::nrz({0, 1, 0, 1}, util::nanoseconds(2.0), 64, vm - 0.2,
                          vm + 0.2, util::picoseconds(100.0));
  const auto out = inv.process(in);
  // ...comes out (nearly) rail to rail and inverted.
  EXPECT_GT(out.peak_to_peak(), 1.4);
  EXPECT_LT(out.value_at(util::nanoseconds(3.0)), vm);   // input high
  EXPECT_GT(out.value_at(util::nanoseconds(5.0)), vm);   // input low
}

TEST(RestoringInverter, ThresholdIsSwitchingPoint) {
  const RestoringInverter inv(8.0, 12.0, util::volts(1.8), kDt);
  EXPECT_NEAR(inv.threshold(), inv.cell().switching_threshold(), 1e-9);
}

TEST(RestoringInverter, LutMatchesVtc) {
  const RestoringInverter inv(8.0, 12.0, util::volts(1.8), kDt);
  // A DC (constant) waveform must map through the VTC (pole passes DC).
  for (double vin : {0.2, 0.7, 0.9, 1.3, 1.7}) {
    auto w = Waveform::constant(util::seconds(0.0), kDt, 400, vin);
    const auto out = inv.process(w);
    EXPECT_NEAR(out.samples().back(), inv.cell().vtc(vin), 0.02)
        << "vin=" << vin;
  }
}

TEST(DffSampler, SlicesCleanLevels) {
  DffSampler::Config cfg;
  cfg.threshold = 0.9;
  cfg.input_noise_rms = 0.001;
  DffSampler sampler(cfg);
  auto w = Waveform::nrz({1, 0, 1, 0}, util::nanoseconds(1.0), 32, 0.0, 1.8,
                         util::picoseconds(50.0));
  EXPECT_TRUE(sampler.sample(w, util::nanoseconds(0.5)));
  EXPECT_FALSE(sampler.sample(w, util::nanoseconds(1.5)));
  EXPECT_TRUE(sampler.sample(w, util::nanoseconds(2.5)));
  EXPECT_EQ(sampler.metastable_count(), 0u);
}

TEST(DffSampler, NoiseFlipsMarginalSamples) {
  DffSampler::Config cfg;
  cfg.threshold = 0.9;
  cfg.input_noise_rms = 0.05;
  DffSampler sampler(cfg);
  // Input sits 10 mV above threshold: with 50 mV noise, many samples flip.
  auto w = Waveform::constant(util::seconds(0.0), kDt, 4000, 0.91);
  int ones = 0;
  for (int i = 0; i < 4000; ++i) {
    if (sampler.sample(w, kDt * static_cast<double>(i))) ++ones;
  }
  EXPECT_GT(ones, 1800);   // biased high...
  EXPECT_LT(ones, 3600);   // ...but far from deterministic
}

TEST(DffSampler, MetastabilityOnThresholdCrossings) {
  DffSampler::Config cfg;
  cfg.threshold = 0.9;
  cfg.aperture = util::picoseconds(100.0);
  cfg.input_noise_rms = 0.02;
  DffSampler sampler(cfg);
  // Sample right on an edge: v crosses the threshold inside the aperture.
  auto w = Waveform::nrz({0, 1}, util::nanoseconds(1.0), 64, 0.0, 1.8,
                         util::picoseconds(300.0));
  for (int i = 0; i < 50; ++i) {
    sampler.sample(w, util::nanoseconds(1.0));  // the transition instant
  }
  EXPECT_GT(sampler.metastable_count(), 0u);
}

TEST(DffSampler, DeterministicPerSeed) {
  DffSampler::Config cfg;
  cfg.seed = 99;
  cfg.input_noise_rms = 0.05;
  DffSampler a(cfg);
  DffSampler b(cfg);
  auto w = Waveform::constant(util::seconds(0.0), kDt, 1000, 0.9);
  for (int i = 0; i < 1000; ++i) {
    const auto t = kDt * static_cast<double>(i);
    EXPECT_EQ(a.sample(w, t), b.sample(w, t));
  }
}

}  // namespace
}  // namespace serdes::analog
