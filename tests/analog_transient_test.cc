#include "analog/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analog/inverter.h"

namespace serdes::analog {
namespace {

TEST(Dc, ResistiveDividerSolvesExactly) {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId mid = ckt.add_node("mid");
  ckt.drive_dc(vdd, util::volts(1.8));
  ckt.add_resistor(vdd, mid, util::kiloohms(1.0));
  ckt.add_resistor(mid, Circuit::kGround, util::kiloohms(3.0));
  const auto v = solve_dc(ckt);
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], 1.35, 1e-9);
}

TEST(Dc, InverterOutputMatchesCellVtc) {
  // The nodal solver and the InverterCell bisection must agree.
  const InverterCell cell(4.0, 6.0, util::volts(1.8));
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.drive_dc(vdd, util::volts(1.8));
  ckt.drive_dc(in, util::volts(0.7));
  ckt.add_mosfet(cell.nmos(), out, in, Circuit::kGround);
  ckt.add_mosfet(cell.pmos(), out, in, vdd);
  const auto v = solve_dc(ckt);
  EXPECT_NEAR(v[static_cast<std::size_t>(out)], cell.vtc(0.7), 1e-5);
}

TEST(Dc, SelfBiasedInverterSitsAtThreshold) {
  // Resistive feedback forces Vin = Vout = the switching threshold.
  const InverterCell cell(24.0, 36.0, util::volts(1.8));
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId io = ckt.add_node("io");
  const NodeId out = ckt.add_node("out");
  ckt.drive_dc(vdd, util::volts(1.8));
  ckt.add_mosfet(cell.nmos(), out, io, Circuit::kGround);
  ckt.add_mosfet(cell.pmos(), out, io, vdd);
  ckt.add_resistor(out, io, util::megaohms(80.0));
  const auto v = solve_dc(ckt);
  EXPECT_NEAR(v[static_cast<std::size_t>(io)], cell.switching_threshold(),
              5e-3);
  EXPECT_NEAR(v[static_cast<std::size_t>(out)],
              v[static_cast<std::size_t>(io)], 5e-3);
}

TEST(Transient, RcChargeMatchesAnalytic) {
  Circuit ckt;
  const NodeId src = ckt.add_node("src");
  const NodeId cap = ckt.add_node("cap");
  ckt.drive(src, [](double t) { return t > 0.0 ? 1.0 : 0.0; });
  ckt.add_resistor(src, cap, util::kiloohms(1.0));
  ckt.add_capacitor(cap, Circuit::kGround, util::picofarads(1.0));
  // tau = 1 ns; run 5 ns at 5 ps steps.
  const auto result = solve_transient(ckt, util::nanoseconds(5.0),
                                      util::picoseconds(5.0));
  const auto w = result.node_waveform(cap);
  // Compare against 1 - exp(-t/tau) at a few points (backward Euler is
  // first order; 5 ps steps on a 1 ns tau are plenty accurate).
  for (double t_ns : {0.5, 1.0, 2.0, 4.0}) {
    const double expected = 1.0 - std::exp(-t_ns);
    EXPECT_NEAR(w.value_at(util::nanoseconds(t_ns)), expected, 0.01)
        << "at t=" << t_ns;
  }
}

TEST(Transient, CapacitorDividerSteadyState) {
  Circuit ckt;
  const NodeId src = ckt.add_node("src");
  const NodeId mid = ckt.add_node("mid");
  ckt.drive(src, [](double) { return 1.0; });
  ckt.add_resistor(src, mid, util::kiloohms(10.0));
  ckt.add_resistor(mid, Circuit::kGround, util::kiloohms(10.0));
  ckt.add_capacitor(mid, Circuit::kGround, util::femtofarads(100.0));
  const auto result = solve_transient(ckt, util::nanoseconds(20.0),
                                      util::picoseconds(20.0));
  const auto w = result.node_waveform(mid);
  EXPECT_NEAR(w.samples().back(), 0.5, 1e-3);
}

TEST(Transient, InverterSwitchesRailToRail) {
  const InverterCell cell(4.0, 6.0, util::volts(1.8));
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.drive_dc(vdd, util::volts(1.8));
  // 1 GHz square wave input.
  ckt.drive(in, [](double t) {
    return std::fmod(t, 1e-9) < 0.5e-9 ? 0.0 : 1.8;
  });
  ckt.add_mosfet(cell.nmos(), out, in, Circuit::kGround);
  ckt.add_mosfet(cell.pmos(), out, in, vdd);
  ckt.add_capacitor(out, Circuit::kGround, util::femtofarads(20.0));
  const auto result = solve_transient(ckt, util::nanoseconds(4.0),
                                      util::picoseconds(2.0));
  const auto w = result.node_waveform(out);
  EXPECT_GT(w.max_value(), 1.7);
  EXPECT_LT(w.min_value(), 0.1);
  // Output must be inverted relative to input at bit centres.
  EXPECT_GT(w.value_at(util::picoseconds(250.0)), 1.5);   // in low -> out high
  EXPECT_LT(w.value_at(util::picoseconds(750.0)), 0.3);   // in high -> out low
}

TEST(Transient, InvalidArgumentsThrow) {
  Circuit ckt;
  const NodeId n = ckt.add_node("n");
  ckt.drive_dc(n, util::volts(1.0));
  EXPECT_THROW(solve_transient(ckt, util::seconds(0.0), util::picoseconds(1.0)),
               std::invalid_argument);
  EXPECT_THROW(
      solve_transient(ckt, util::nanoseconds(1.0), util::seconds(0.0)),
      std::invalid_argument);
  EXPECT_THROW(ckt.add_resistor(n, Circuit::kGround, util::ohms(0.0)),
               std::invalid_argument);
  EXPECT_THROW(ckt.add_capacitor(n, Circuit::kGround, util::farads(0.0)),
               std::invalid_argument);
}

TEST(Circuit, NodeBookkeeping) {
  Circuit ckt;
  EXPECT_EQ(ckt.node_count(), 1);  // ground pre-exists
  const NodeId a = ckt.add_node("a");
  EXPECT_EQ(ckt.node_count(), 2);
  EXPECT_EQ(ckt.node_name(a), "a");
  EXPECT_TRUE(ckt.is_driven(Circuit::kGround));
  EXPECT_FALSE(ckt.is_driven(a));
  ckt.drive_dc(a, util::volts(1.0));
  EXPECT_TRUE(ckt.is_driven(a));
}

}  // namespace
}  // namespace serdes::analog
