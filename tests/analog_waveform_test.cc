#include "analog/waveform.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace serdes::analog {
namespace {

using util::nanoseconds;
using util::picoseconds;
using util::seconds;

TEST(Waveform, ConstantLevels) {
  const auto w = Waveform::constant(seconds(0.0), picoseconds(10.0), 100, 0.9);
  EXPECT_EQ(w.size(), 100u);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.9);
  EXPECT_DOUBLE_EQ(w.max_value(), 0.9);
  EXPECT_DOUBLE_EQ(w.peak_to_peak(), 0.0);
  EXPECT_NEAR(w.mean_value(), 0.9, 1e-12);
  EXPECT_NEAR(w.ac_rms(), 0.0, 1e-9);
}

TEST(Waveform, InvalidSamplePeriodThrows) {
  EXPECT_THROW(Waveform(seconds(0.0), seconds(0.0), {1.0}),
               std::invalid_argument);
}

TEST(Waveform, NrzLevelsMatchBits) {
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0};
  const auto w = Waveform::nrz(bits, nanoseconds(1.0), 8, 0.0, 1.8,
                               picoseconds(0.0));
  EXPECT_EQ(w.size(), 40u);
  // Sample each bit centre.
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double v = w.value_at(nanoseconds(static_cast<double>(i) + 0.5));
    EXPECT_NEAR(v, bits[i] ? 1.8 : 0.0, 1e-9) << "bit " << i;
  }
}

TEST(Waveform, NrzEdgesRamp) {
  const std::vector<std::uint8_t> bits = {0, 1};
  const auto w = Waveform::nrz(bits, nanoseconds(1.0), 64, 0.0, 1.0,
                               picoseconds(400.0));
  // Mid-transition (at the bit boundary) should be near half swing.
  EXPECT_NEAR(w.value_at(nanoseconds(1.0)), 0.5, 0.15);
}

TEST(Waveform, NrzNeedsTwoSamplesPerUi) {
  EXPECT_THROW(Waveform::nrz({1, 0}, nanoseconds(1.0), 1, 0.0, 1.0,
                             picoseconds(0.0)),
               std::invalid_argument);
}

TEST(Waveform, ValueAtInterpolatesAndClamps) {
  Waveform w(seconds(0.0), nanoseconds(1.0), {0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(w.value_at(nanoseconds(0.5)), 0.5);
  EXPECT_DOUBLE_EQ(w.value_at(nanoseconds(-5.0)), 0.0);   // clamp front
  EXPECT_DOUBLE_EQ(w.value_at(nanoseconds(99.0)), 2.0);   // clamp back
}

TEST(Waveform, ScaleOffsetClampMap) {
  Waveform w(seconds(0.0), nanoseconds(1.0), {1.0, -1.0, 3.0});
  w.scale(2.0).offset(1.0);
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], -1.0);
  EXPECT_DOUBLE_EQ(w[2], 7.0);
  w.clamp(0.0, 5.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 5.0);
  w.map([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(w[0], 9.0);
}

TEST(Waveform, DelayShiftsTimeAxis) {
  Waveform w(seconds(0.0), nanoseconds(1.0), {0.0, 1.0});
  w.delay(nanoseconds(5.0));
  EXPECT_DOUBLE_EQ(w.start_time().value(), 5e-9);
  EXPECT_DOUBLE_EQ(w.value_at(nanoseconds(5.5)), 0.5);
}

TEST(Waveform, NoiseHasRequestedRms) {
  util::Rng rng(3);
  auto w = Waveform::constant(seconds(0.0), picoseconds(10.0), 50000, 0.0);
  w.add_noise(rng, 0.01);
  EXPECT_NEAR(w.ac_rms(), 0.01, 0.0005);
  EXPECT_NEAR(w.mean_value(), 0.0, 0.001);
}

TEST(Waveform, CrossingsFound) {
  const std::vector<std::uint8_t> bits = {0, 1, 0, 1};
  const auto w = Waveform::nrz(bits, nanoseconds(1.0), 32, 0.0, 1.0,
                               picoseconds(100.0));
  const auto crossings = w.crossings(0.5);
  EXPECT_EQ(crossings.size(), 3u);  // 0->1, 1->0, 0->1
  EXPECT_NEAR(crossings[0].value(), 1e-9, 0.1e-9);
  EXPECT_NEAR(crossings[1].value(), 2e-9, 0.1e-9);
}

TEST(Waveform, RiseTimeOfLinearRamp) {
  // Linear 0->1 ramp over 1 ns: 20-80% spans 0.6 ns.
  std::vector<double> samples(101);
  for (int i = 0; i <= 100; ++i) samples[static_cast<std::size_t>(i)] = i / 100.0;
  Waveform w(seconds(0.0), picoseconds(10.0), samples);
  const double tr = w.rise_time_20_80(seconds(0.0)).value();
  EXPECT_NEAR(tr, 0.6e-9, 0.05e-9);
}

TEST(Waveform, RiseTimeZeroWhenNoEdge) {
  const auto w = Waveform::constant(seconds(0.0), picoseconds(10.0), 100, 1.0);
  EXPECT_DOUBLE_EQ(w.rise_time_20_80(seconds(0.0)).value(), 0.0);
}

TEST(Waveform, TimeBookkeeping) {
  Waveform w(nanoseconds(2.0), picoseconds(500.0), std::vector<double>(10, 0.0));
  EXPECT_DOUBLE_EQ(w.start_time().value(), 2e-9);
  EXPECT_DOUBLE_EQ(w.end_time().value(), 7e-9);
  EXPECT_DOUBLE_EQ(w.time_at(4).value(), 4e-9);
}

}  // namespace
}  // namespace serdes::analog
