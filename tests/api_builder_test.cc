#include "api/link_builder.h"

#include <gtest/gtest.h>

#include "api/channel_factory.h"

namespace serdes::api {
namespace {

TEST(LinkSpec, PaperDefaultIsValid) {
  const LinkSpec spec = LinkSpec::paper_default();
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
  EXPECT_DOUBLE_EQ(spec.bit_rate_hz, 2e9);
  EXPECT_EQ(spec.channel.kind, "flat");
  EXPECT_DOUBLE_EQ(spec.channel.loss_db, 34.0);
}

TEST(LinkSpec, ValidationCatchesBadFields) {
  LinkSpec spec;
  spec.bit_rate_hz = -1.0;
  EXPECT_FALSE(spec.validate().empty());

  spec = LinkSpec{};
  spec.cdr_oversampling = 1;
  EXPECT_FALSE(spec.validate().empty());

  spec = LinkSpec{};
  spec.channel = ChannelSpec::fir({}, 4);
  EXPECT_FALSE(spec.validate().empty());

  spec = LinkSpec{};
  spec.channel = ChannelSpec::cascade({});
  EXPECT_FALSE(spec.validate().empty());

  spec = LinkSpec{};
  spec.tx_ffe_deemphasis = 1.5;
  EXPECT_FALSE(spec.validate().empty());

  spec = LinkSpec{};
  spec.payload_bits = 0;
  EXPECT_THROW((void)spec.to_link_config(), std::invalid_argument);
}

TEST(LinkBuilder, RoundTripSpecToConfig) {
  // Spec -> link -> config: every knob the builder sets must land in the
  // lowered LinkConfig (and in the link built from it).
  const auto spec = LinkBuilder()
                        .name("roundtrip")
                        .bit_rate(util::gigahertz(1.5))
                        .samples_per_ui(20)
                        .flat_channel(util::decibels(22.0))
                        .noise_rms(0.002)
                        .random_jitter(util::picoseconds(3.0))
                        .sinusoidal_jitter(util::picoseconds(10.0), 0.02)
                        .ppm_offset(50.0)
                        .rx_phase_offset_ui(0.25)
                        .cdr_oversampling(7)
                        .cdr_window(16)
                        .cdr_glitch_filter(2)
                        .cdr_jitter_hysteresis(3)
                        .tx_ffe_deemphasis(0.2)
                        .rx_ctle(util::decibels(4.0), util::megahertz(600.0))
                        .preamble_bits(128)
                        .payload_bits(2000)
                        .seed(99)
                        .capture_waveforms(true)
                        .build_spec();

  const core::LinkConfig cfg = spec.to_link_config();
  EXPECT_DOUBLE_EQ(cfg.bit_rate.value(), 1.5e9);
  EXPECT_EQ(cfg.samples_per_ui, 20);
  EXPECT_DOUBLE_EQ(cfg.channel_noise_rms, 0.002);
  EXPECT_DOUBLE_EQ(cfg.rx_random_jitter.value(), 3e-12);
  EXPECT_DOUBLE_EQ(cfg.rx_sinusoidal_jitter.value(), 10e-12);
  EXPECT_DOUBLE_EQ(cfg.sj_freq_ratio, 0.02);
  EXPECT_DOUBLE_EQ(cfg.ppm_offset, 50.0);
  EXPECT_DOUBLE_EQ(cfg.rx_phase_offset_ui, 0.25);
  EXPECT_EQ(cfg.cdr.oversampling, 7);
  EXPECT_EQ(cfg.cdr.window_uis, 16);
  EXPECT_EQ(cfg.cdr.glitch_filter_radius, 2);
  EXPECT_EQ(cfg.cdr.jitter_hysteresis, 3);
  EXPECT_DOUBLE_EQ(cfg.tx_ffe_deemphasis, 0.2);
  EXPECT_DOUBLE_EQ(cfg.rx_ctle_boost.value(), 4.0);
  EXPECT_DOUBLE_EQ(cfg.rx_ctle_pole.value(), 600e6);
  EXPECT_EQ(cfg.framing.preamble_bits, 128);
  EXPECT_EQ(cfg.noise_seed, 99u);
  EXPECT_TRUE(cfg.capture_waveforms);

  const core::SerDesLink link = LinkBuilder(spec).build_link();
  EXPECT_DOUBLE_EQ(link.config().bit_rate.value(), 1.5e9);
  EXPECT_EQ(link.config().cdr.oversampling, 7);
  // The factory-built channel matches the spec: 22 dB flat loss.
  EXPECT_NEAR(link.channel().loss_at(util::gigahertz(1.0)).value(), 22.0,
              1e-9);
}

TEST(LinkBuilder, PrbsOrderReachesDirectLinks) {
  // .prbs() must be honored on both execution paths: Simulator::run and a
  // directly-driven build_link() (run_prbs defaults to the config order).
  core::SerDesLink link = LinkBuilder()
                              .prbs(util::PrbsOrder::kPrbs7)
                              .flat_channel(util::decibels(10.0))
                              .build_link();
  EXPECT_EQ(link.config().prbs_order, util::PrbsOrder::kPrbs7);
  const auto with_cfg_order = link.run_prbs(512);
  const auto with_explicit = link.run_prbs(512, util::PrbsOrder::kPrbs7);
  // Error-free at 10 dB, so the recovered payloads show the pattern: both
  // runs carry the same PRBS-7 stream (period 127), which PRBS-31 lacks.
  ASSERT_TRUE(with_cfg_order.error_free());
  EXPECT_EQ(with_cfg_order.rx.payload, with_explicit.rx.payload);
  ASSERT_GE(with_cfg_order.rx.payload.size(), 254u);
  for (int i = 0; i < 127; ++i) {
    EXPECT_EQ(with_cfg_order.rx.payload[i],
              with_cfg_order.rx.payload[i + 127]);
  }
}

TEST(LinkBuilder, DefaultsAreThePaperOperatingPoint) {
  const core::LinkConfig from_builder = LinkBuilder().build_config();
  const core::LinkConfig paper = core::LinkConfig::paper_default();
  EXPECT_DOUBLE_EQ(from_builder.bit_rate.value(), paper.bit_rate.value());
  EXPECT_EQ(from_builder.samples_per_ui, paper.samples_per_ui);
  EXPECT_EQ(from_builder.cdr.oversampling, paper.cdr.oversampling);
  EXPECT_DOUBLE_EQ(from_builder.channel_noise_rms, paper.channel_noise_rms);
  EXPECT_EQ(from_builder.framing.preamble_bits, paper.framing.preamble_bits);
}

TEST(LinkBuilder, InvalidSpecThrowsOnBuild) {
  EXPECT_THROW((void)LinkBuilder().cdr_oversampling(0).build_spec(),
               std::invalid_argument);
  EXPECT_THROW((void)LinkBuilder().samples_per_ui(1).build_link(),
               std::invalid_argument);
}

TEST(ChannelFactory, BuildsAllFiveKinds) {
  const core::LinkConfig cfg = core::LinkConfig::paper_default();
  auto& factory = ChannelFactory::instance();

  const auto flat = factory.create(ChannelSpec::flat(20.0), cfg);
  EXPECT_NEAR(flat->loss_at(util::gigahertz(1.0)).value(), 20.0, 1e-9);

  const auto rc = factory.create(ChannelSpec::rc(2.5e9, 3.0), cfg);
  EXPECT_GT(rc->loss_at(util::gigahertz(2.0)).value(), 3.0);

  const auto line =
      factory.create(ChannelSpec::lossy_line(2.0, 6.0, 3.0), cfg);
  EXPECT_NEAR(line->loss_at(util::gigahertz(1.0)).value(), 11.0, 0.5);

  const auto fir = factory.create(ChannelSpec::fir({0.08, 0.56, 0.16}), cfg);
  EXPECT_NEAR(fir->attenuation_at(util::Hertz{0.0}), 0.8, 1e-12);

  const auto cascade = factory.create(
      ChannelSpec::cascade({ChannelSpec::flat(10.0), ChannelSpec::flat(5.0)}),
      cfg);
  EXPECT_NEAR(cascade->loss_at(util::gigahertz(1.0)).value(), 15.0, 1e-9);
}

TEST(ChannelFactory, UnknownKindThrowsWithRegisteredKindsListed) {
  const core::LinkConfig cfg = core::LinkConfig::paper_default();
  ChannelSpec bogus;
  bogus.kind = "s_parameter";
  try {
    (void)ChannelFactory::instance().create(bogus, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("s_parameter"), std::string::npos) << what;
    EXPECT_NE(what.find("flat"), std::string::npos) << what;
    EXPECT_NE(what.find("lossy_line"), std::string::npos) << what;
  }
}

TEST(ChannelFactory, UnknownKindMessageListsEveryRegisteredKind) {
  const core::LinkConfig cfg = core::LinkConfig::paper_default();
  ChannelSpec bogus;
  bogus.kind = "definitely_not_a_channel";
  try {
    (void)ChannelFactory::instance().create(bogus, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // Every registered kind must appear, sorted, so callers can self-serve.
    for (const auto& kind : ChannelFactory::instance().kinds()) {
      EXPECT_NE(what.find(kind), std::string::npos)
          << "'" << kind << "' missing from: " << what;
    }
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
  }
}

TEST(ChannelFactory, UnknownKindSuggestsNearestMatch) {
  const core::LinkConfig cfg = core::LinkConfig::paper_default();
  ChannelSpec typo;
  typo.kind = "lossy_lien";
  try {
    (void)ChannelFactory::instance().create(typo, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean 'lossy_line'?"), std::string::npos)
        << what;
  }
}

TEST(ChannelFactory, CustomKindRegistersAndResolves) {
  auto& factory = ChannelFactory::instance();
  // A custom kind can delegate to existing kinds (or construct its own
  // channel::Channel subclass).
  factory.register_kind(
      "test_double_flat",
      [&factory](const ChannelSpec& spec, const core::LinkConfig& cfg) {
        return factory.create(ChannelSpec::flat(2.0 * spec.loss_db), cfg);
      });
  EXPECT_TRUE(factory.knows("test_double_flat"));
  ChannelSpec spec;
  spec.kind = "test_double_flat";
  spec.loss_db = 7.0;
  const auto ch =
      factory.create(spec, core::LinkConfig::paper_default());
  EXPECT_NEAR(ch->loss_at(util::gigahertz(1.0)).value(), 14.0, 1e-9);
}

}  // namespace
}  // namespace serdes::api
