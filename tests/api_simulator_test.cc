#include "api/simulator.h"

#include <gtest/gtest.h>

#include <set>

#include "api/link_builder.h"

namespace serdes::api {
namespace {

TEST(Simulator, PaperOperatingPointIsErrorFree) {
  const Simulator sim;
  const auto report = sim.run(LinkSpec::paper_default());
  EXPECT_TRUE(report.aligned);
  EXPECT_TRUE(report.error_free());
  EXPECT_GT(report.bits, 4000u);
  EXPECT_GT(report.ber_upper_bound, 0.0);
  EXPECT_LT(report.ber_upper_bound, 1e-2);
  // Lock and eye diagnostics ride along even without waveform capture.
  EXPECT_TRUE(report.eye.open());
  EXPECT_GT(report.rx_swing_pp, 0.01);
  EXPECT_LT(report.rx_swing_pp, 0.08);  // ~36 mV at 34 dB
  EXPECT_GT(report.decision_threshold, 0.0);
}

TEST(Simulator, WaveformCaptureIsOptIn) {
  const Simulator sim;
  const auto spec =
      LinkBuilder().payload_bits(1024).chunk_bits(1024).build_spec();
  const auto lean = sim.run(spec);
  EXPECT_TRUE(lean.tx_out.empty());
  EXPECT_TRUE(lean.channel_out.empty());
  EXPECT_TRUE(lean.restored.empty());

  const auto rich = sim.run(LinkBuilder(spec).capture_waveforms().build_spec());
  EXPECT_FALSE(rich.tx_out.empty());
  EXPECT_FALSE(rich.channel_out.empty());
  EXPECT_FALSE(rich.restored.empty());
  // Same traffic either way.
  EXPECT_EQ(rich.bits, lean.bits);
  EXPECT_EQ(rich.errors, lean.errors);
}

TEST(Simulator, ChunkedRunMatchesTotalBits) {
  const Simulator sim;
  const auto report = sim.run(
      LinkBuilder().payload_bits(10000).chunk_bits(3000).build_spec());
  EXPECT_GE(report.bits, 10000u - 64u);  // CDR pipeline tail allowance
  EXPECT_TRUE(report.aligned);
}

TEST(Simulator, HighLossLaneReportsErrors) {
  const Simulator sim;
  const auto report = sim.run(LinkBuilder()
                                  .flat_channel(util::decibels(75.0))
                                  .payload_bits(2048)
                                  .build_spec());
  EXPECT_FALSE(report.error_free());
  EXPECT_GT(report.ber, 0.0);
}

TEST(Simulator, LaneSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    seeds.insert(Simulator::derive_lane_seed(1234, lane));
  }
  EXPECT_EQ(seeds.size(), 64u);
  // Pinned: the derivation is part of the reproducibility contract.
  EXPECT_EQ(Simulator::derive_lane_seed(1234, 0),
            Simulator::derive_lane_seed(1234, 0));
  EXPECT_NE(Simulator::derive_lane_seed(1234, 0),
            Simulator::derive_lane_seed(4321, 0));
}

TEST(Simulator, RunBatchDeterministicAcrossThreadCounts) {
  // The acceptance criterion: same specs + seeds => identical BERs
  // whatever the thread count.
  std::vector<LinkSpec> specs;
  for (double loss : {20.0, 34.0, 40.0, 46.0, 52.0}) {
    specs.push_back(LinkBuilder()
                        .name("loss_" + std::to_string(loss))
                        .flat_channel(util::decibels(loss))
                        .payload_bits(3000)
                        .chunk_bits(1500)
                        .build_spec());
  }

  const Simulator sim;
  const auto serial = sim.run_batch(specs, 1);
  const auto parallel = sim.run_batch(specs, 4);

  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].name(), specs[i].name);
    EXPECT_EQ(parallel[i].name(), serial[i].name());
    EXPECT_EQ(parallel[i].bits, serial[i].bits) << i;
    EXPECT_EQ(parallel[i].errors, serial[i].errors) << i;
    EXPECT_DOUBLE_EQ(parallel[i].ber, serial[i].ber) << i;
    EXPECT_DOUBLE_EQ(parallel[i].ber_upper_bound, serial[i].ber_upper_bound)
        << i;
    EXPECT_EQ(parallel[i].aligned, serial[i].aligned) << i;
    EXPECT_EQ(parallel[i].cdr_decision_phase, serial[i].cdr_decision_phase)
        << i;
    EXPECT_DOUBLE_EQ(parallel[i].eye.eye_height, serial[i].eye.eye_height)
        << i;
    EXPECT_DOUBLE_EQ(parallel[i].rx_swing_pp, serial[i].rx_swing_pp) << i;
  }
  // Default-thread-count run agrees too.
  const auto auto_threads = sim.run_batch(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(auto_threads[i].errors, serial[i].errors) << i;
    EXPECT_DOUBLE_EQ(auto_threads[i].ber, serial[i].ber) << i;
  }
}

TEST(Simulator, LanesWithSameBaseSeedStayIndependent) {
  // Two identical specs in one batch get different derived seeds, so their
  // noise is uncorrelated — but each lane is itself reproducible.
  std::vector<LinkSpec> specs(2, LinkBuilder()
                                     .flat_channel(util::decibels(34.0))
                                     .payload_bits(2048)
                                     .build_spec());
  const Simulator sim;
  const auto a = sim.run_batch(specs, 2);
  const auto b = sim.run_batch(specs, 1);
  EXPECT_EQ(a[0].spec.seed, b[0].spec.seed);
  EXPECT_EQ(a[1].spec.seed, b[1].spec.seed);
  EXPECT_NE(a[0].spec.seed, a[1].spec.seed);
}

TEST(Simulator, PairedSeedsForAblationComparisons) {
  // With derive_lane_seeds off, identical specs face the identical noise
  // realization — the paired-comparison mode the ablation benches use.
  Simulator::Options opts;
  opts.derive_lane_seeds = false;
  std::vector<LinkSpec> specs(2, LinkBuilder()
                                     .flat_channel(util::decibels(50.0))
                                     .payload_bits(2048)
                                     .build_spec());
  const auto r = Simulator(opts).run_batch(specs, 2);
  EXPECT_EQ(r[0].spec.seed, r[1].spec.seed);
  EXPECT_EQ(r[0].errors, r[1].errors);
  EXPECT_DOUBLE_EQ(r[0].ber, r[1].ber);
}

TEST(Simulator, RunBatchValidatesBeforeRunning) {
  std::vector<LinkSpec> specs = {LinkSpec::paper_default()};
  specs.push_back(LinkSpec::paper_default());
  specs[1].channel.kind = "wormhole";
  EXPECT_THROW((void)Simulator().run_batch(specs, 2), std::invalid_argument);

  specs[1] = LinkSpec::paper_default();
  specs[1].samples_per_ui = 0;
  EXPECT_THROW((void)Simulator().run_batch(specs, 2), std::invalid_argument);

  // An unknown kind hiding inside a composite stage must also fail fast.
  specs[1] = LinkSpec::paper_default();
  specs[1].channel = ChannelSpec::cascade({ChannelSpec::flat(10.0)});
  specs[1].channel.stages[0].kind = "wormhole";
  EXPECT_THROW((void)Simulator().run_batch(specs, 2), std::invalid_argument);
}

TEST(Simulator, EqualizationKnobsReachTheLink) {
  // A dispersive line that defeats the raw link but passes with TX FFE +
  // RX CTLE — the bench_ablation_eq story through the declarative API.
  const auto base = LinkBuilder()
                        .channel(ChannelSpec::cascade(
                            {ChannelSpec::lossy_line(4.0, 14.4, 9.6)}))
                        .payload_bits(2000)
                        .build_spec();
  const Simulator sim;
  const auto raw = sim.run(base);
  const auto equalized = sim.run(LinkBuilder(base)
                                     .tx_ffe_deemphasis(0.33)
                                     .rx_ctle(util::decibels(6.0))
                                     .build_spec());
  EXPECT_LE(equalized.errors, raw.errors);
}

}  // namespace
}  // namespace serdes::api
