// Bus subsystem contracts (tier1):
//
//  1. Zero-coupling byte-identity — a BusSpec with no (or all-zero)
//     coupling matrices must produce per-lane RunReports BYTE-identical
//     to N independently stamped LinkSpecs run through run_batch, for
//     every built-in channel kind, at lane counts {1, 3, 8} and thread
//     counts {1, 8}.  Identity is compared on to_json(report).dump(), so
//     every field participates.
//  2. Coupled buses are deterministic across thread counts and keep the
//     run_batch seed derivation (toggling coupling never reshuffles lane
//     noise), and a 4-lane PAM4 + FEXT bus in "both" mode keeps the
//     MC-vs-stat cross-check band per lane.
//  3. PAM4 with both extra thresholds disabled degrades to NRZ behavior:
//     only the middle slicer decides, so an outer-symbols-only stream is
//     sliced exactly like NRZ — error-free at a clean point, and at a
//     noisy point the per-decision error rate statistically matches the
//     NRZ link at the same operating point.
//  4. modulation / BusSpec JSON round-trips, validation diagnostics
//     (did-you-mean included), and the schema_version absent-means-1
//     contract for RunReport / BusReport / LintReport.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "channel/channel.h"

#include "api/bus_spec.h"
#include "api/channel_factory.h"
#include "api/link_builder.h"
#include "api/link_spec.h"
#include "api/simulator.h"
#include "api/spec_json.h"
#include "core/config.h"
#include "core/link.h"
#include "lint/lint.h"
#include "util/json.h"
#include "util/units.h"

namespace serdes::api {
namespace {

/// Compact but complete NRZ lane: two chunks, FFE + CTLE + both jitter
/// terms + ppm offset + lane_batch, so the zero-coupling identity pin
/// also covers the lane-tiled grouping inside run_bus.
LinkSpec bus_base(const ChannelSpec& channel) {
  return LinkBuilder()
      .name("ignored")  // run_bus derives lane names from the bus name
      .channel(channel)
      .payload_bits(512)
      .chunk_bits(256)
      .preamble_bits(128)
      .cdr_window(16)
      .tx_ffe_deemphasis(0.2)
      .rx_ctle(util::decibels(3.0))
      .sinusoidal_jitter(util::seconds(2e-12))
      .ppm_offset(50.0)
      .lane_batch(8)
      .build_spec();
}

std::vector<ChannelSpec> builtin_channels() {
  return {
      ChannelSpec::flat(34.0),
      ChannelSpec::rc(2.5e9, 6.0),
      ChannelSpec::lossy_line(6.0, 18.0, 14.0),
      ChannelSpec::fir({0.6, 0.25, 0.1}),
      ChannelSpec::cascade(
          {ChannelSpec::flat(20.0), ChannelSpec::fir({0.7, 0.2})}),
  };
}

/// Stamps the independent-lane reference by hand — NOT via expand() —
/// so the pin compares run_bus against the documented contract ("lane i
/// runs as <name>/lane<i> with the base spec") rather than against the
/// implementation's own helper.
std::vector<LinkSpec> manual_lanes(const BusSpec& bus) {
  std::vector<LinkSpec> specs;
  specs.reserve(static_cast<std::size_t>(bus.lanes));
  for (int i = 0; i < bus.lanes; ++i) {
    LinkSpec spec = bus.base;
    spec.name = bus.name + "/lane" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<std::vector<double>> zero_matrix(int n) {
  return std::vector<std::vector<double>>(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
}

TEST(Bus, ZeroCouplingByteIdenticalToIndependentLanes) {
  const Simulator sim;
  for (const ChannelSpec& channel : builtin_channels()) {
    for (const int lanes : {1, 3, 8}) {
      BusSpec bus;
      bus.name = "zbus";
      bus.lanes = lanes;
      bus.base = bus_base(channel);
      ASSERT_EQ(bus.validate(), "");
      ASSERT_FALSE(bus.has_coupling());

      std::vector<std::string> reference;
      for (const RunReport& report : sim.run_batch(manual_lanes(bus), 1)) {
        reference.push_back(to_json(report).dump());
      }

      for (const int threads : {1, 8}) {
        const BusReport report = sim.run_bus(bus, threads);
        EXPECT_EQ(report.name, "zbus");
        ASSERT_EQ(report.lanes.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
          EXPECT_EQ(to_json(report.lanes[i]).dump(), reference[i])
              << "channel " << channel.kind << ", " << lanes << " lanes, "
              << threads << " threads, lane " << i;
        }
      }
    }
  }
}

TEST(Bus, ExplicitZeroMatricesStayOnTheBatchedPath) {
  // All-zero matrices are the same contract as absent ones: the bus
  // routes through run_batch and the reports stay byte-identical.
  const Simulator sim;
  BusSpec bus;
  bus.name = "zbus";
  bus.lanes = 3;
  bus.base = bus_base(ChannelSpec::flat(34.0));

  const BusReport absent = sim.run_bus(bus, 1);

  bus.coupling = zero_matrix(3);
  bus.next_coupling = zero_matrix(3);
  ASSERT_EQ(bus.validate(), "");
  EXPECT_FALSE(bus.has_coupling());
  const BusReport zeroed = sim.run_bus(bus, 8);

  ASSERT_EQ(zeroed.lanes.size(), absent.lanes.size());
  for (std::size_t i = 0; i < absent.lanes.size(); ++i) {
    EXPECT_EQ(to_json(zeroed.lanes[i]).dump(), to_json(absent.lanes[i]).dump())
        << "lane " << i;
  }
}

/// 4-lane PAM4 bus with tri-diagonal FEXT at a clean operating point
/// (flat 4 dB, 5 mV noise) — verified aligned and cross-check-consistent.
BusSpec pam4_fext_bus(std::uint64_t payload_bits = 32768) {
  BusSpec bus;
  bus.name = "xbus";
  bus.lanes = 4;
  bus.base = LinkBuilder()
                 .name("ignored")
                 .channel(ChannelSpec::flat(4.0))
                 .modulation("pam4")
                 .payload_bits(payload_bits)
                 .chunk_bits(payload_bits)
                 .preamble_bits(256)
                 .noise_rms(0.005)
                 .analysis("both")
                 .build_spec();
  bus.coupling = zero_matrix(4);
  for (int v = 0; v < 4; ++v) {
    for (const int a : {v - 1, v + 1}) {
      if (a >= 0 && a < 4) {
        bus.coupling[static_cast<std::size_t>(v)][static_cast<std::size_t>(a)] =
            0.03;
      }
    }
  }
  return bus;
}

TEST(Bus, CoupledPam4BusDeterministicAcrossThreadCounts) {
  const Simulator sim;
  const BusSpec bus = pam4_fext_bus();
  ASSERT_EQ(bus.validate(), "");
  ASSERT_TRUE(bus.has_coupling());

  const BusReport one = sim.run_bus(bus, 1);
  const BusReport eight = sim.run_bus(bus, 8);
  EXPECT_EQ(to_json(one).dump(), to_json(eight).dump());

  ASSERT_EQ(one.lanes.size(), 4u);
  for (std::size_t i = 0; i < one.lanes.size(); ++i) {
    const RunReport& lane = one.lanes[i];
    EXPECT_EQ(lane.spec.name, "xbus/lane" + std::to_string(i));
    EXPECT_TRUE(lane.aligned) << "lane " << i;
    ASSERT_TRUE(lane.stat.has_value()) << "lane " << i;
    EXPECT_TRUE(lane.stat->cross_checked) << "lane " << i;
    EXPECT_TRUE(lane.stat->consistent)
        << "lane " << i << ": mc_ber " << lane.stat->mc_ber << " outside ["
        << lane.stat->band_low << ", " << lane.stat->band_high << "]";
  }
  // Two aggressors beat one: the middle lanes' analytical BER floor sits
  // above the edge lanes'.
  EXPECT_GT(one.lanes[1].stat->min_ber, one.lanes[0].stat->min_ber);
  EXPECT_GT(one.lanes[2].stat->min_ber, one.lanes[3].stat->min_ber);
}

TEST(Bus, CouplingToggleKeepsLaneSeedDerivation) {
  // Crosstalk changes what a victim sees, never which noise stream a
  // lane draws: the derived per-lane seeds must match the zero-coupling
  // run exactly.
  const Simulator sim;
  BusSpec coupled = pam4_fext_bus(4096);
  BusSpec uncoupled = coupled;
  uncoupled.coupling.clear();

  const BusReport with = sim.run_bus(coupled, 1);
  const BusReport without = sim.run_bus(uncoupled, 1);
  ASSERT_EQ(with.lanes.size(), without.lanes.size());
  for (std::size_t i = 0; i < with.lanes.size(); ++i) {
    EXPECT_EQ(with.lanes[i].spec.seed, without.lanes[i].spec.seed)
        << "lane " << i;
    EXPECT_EQ(with.lanes[i].spec.seed,
              Simulator::derive_lane_seed(coupled.base.seed, i));
  }
}

// ---- PAM4 degrade-to-NRZ ---------------------------------------------------

/// Payload whose odd bits are zero: gray pairs (b,0) map to symbols
/// {0, 3} only — the two outer rails, i.e. NRZ signaling on the MSB.
std::vector<std::uint8_t> outer_symbol_payload(std::size_t nbits) {
  std::vector<std::uint8_t> bits(nbits, 0);
  std::uint64_t x = 0x243f6a8885a308d3ull;  // deterministic xorshift
  for (std::size_t i = 0; i < nbits; i += 2) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    bits[i] = static_cast<std::uint8_t>(x & 1);
  }
  return bits;
}

core::LinkConfig degrade_config(double noise_rms) {
  core::LinkConfig cfg = core::LinkConfig::paper_default();
  // Sync word with zeros at odd bit positions (emitted LSB-first right
  // after the even-length preamble), so the whole wire stream keeps the
  // outer-symbols-only property.
  cfg.framing.sync_word = 0x44110505u;
  cfg.channel_noise_rms = noise_rms;
  // Pin the per-sample noise density scale to 1 for both modulations:
  // NRZ and PAM4 run at different sample rates, and the degrade claim is
  // about identical per-decision statistics.
  cfg.noise_reference_bandwidth = util::hertz(1e12);
  return cfg;
}

std::unique_ptr<channel::Channel> make_channel(const core::LinkConfig& cfg) {
  return ChannelFactory::instance().create(ChannelSpec::flat(4.0), cfg);
}

TEST(Pam4Degrade, ExtraThresholdsOffIsErrorFreeAtACleanPoint) {
  const std::vector<std::uint8_t> payload = outer_symbol_payload(4096);

  core::LinkConfig nrz = degrade_config(0.0);
  core::SerDesLink nrz_link(nrz, make_channel(nrz));
  const core::LinkResult nrz_result = nrz_link.run(payload);
  EXPECT_TRUE(nrz_result.error_free());

  core::LinkConfig pam4 = degrade_config(0.0);
  pam4.modulation = core::LinkConfig::Modulation::kPam4;
  pam4.pam4_extra_thresholds = false;
  core::SerDesLink pam4_link(pam4, make_channel(pam4));
  const core::LinkResult pam4_result = pam4_link.run(payload);
  EXPECT_TRUE(pam4_result.error_free())
      << "aligned " << pam4_result.aligned << ", errors "
      << pam4_result.bit_errors;
}

TEST(Pam4Degrade, ExtraThresholdsOffTracksTheFullNrzEye) {
  // "Degrades to NRZ BER behavior" means the slicer stops paying the
  // PAM4 sub-eye penalty: with both extra thresholds disabled only the
  // middle slicer decides, so an outer-symbols-only stream faces the
  // full-swing eye — three times the inner-threshold distance.  At a
  // noise level that closes the third-swing sub-eyes but leaves the
  // full-swing eye open, a full four-level PAM4 link shows heavy errors
  // while the degraded link and a true NRZ link at the same operating
  // point both stay orders of magnitude below.
  const std::size_t nbits = 40000;
  const double noise = 0.15;

  std::vector<std::uint8_t> full_payload(nbits, 0);
  std::uint64_t x = 0x13198a2e03707344ull;
  for (std::size_t i = 0; i < nbits; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    full_payload[i] = static_cast<std::uint8_t>(x & 1);
  }

  core::LinkConfig four_level = degrade_config(noise);
  four_level.modulation = core::LinkConfig::Modulation::kPam4;
  core::SerDesLink four_level_link(four_level, make_channel(four_level));
  const core::LinkResult four = four_level_link.run(full_payload);
  ASSERT_TRUE(four.aligned);
  const double rate_full = static_cast<double>(four.bit_errors) /
                           static_cast<double>(four.payload_bits_compared);

  const std::vector<std::uint8_t> outer_payload = outer_symbol_payload(nbits);
  core::LinkConfig degraded = degrade_config(noise);
  degraded.modulation = core::LinkConfig::Modulation::kPam4;
  degraded.pam4_extra_thresholds = false;
  core::SerDesLink degraded_link(degraded, make_channel(degraded));
  const core::LinkResult deg = degraded_link.run(outer_payload);
  ASSERT_TRUE(deg.aligned);
  const double rate_degraded =
      static_cast<double>(deg.bit_errors) /
      static_cast<double>(deg.payload_bits_compared);

  core::LinkConfig nrz = degrade_config(noise);
  core::SerDesLink nrz_link(nrz, make_channel(nrz));
  const core::LinkResult nrz_result = nrz_link.run(outer_payload);
  ASSERT_TRUE(nrz_result.aligned);
  const double rate_nrz =
      static_cast<double>(nrz_result.bit_errors) /
      static_cast<double>(nrz_result.payload_bits_compared);

  EXPECT_GT(rate_full, 1e-3) << "sub-eyes unexpectedly open";
  EXPECT_LT(rate_degraded, rate_full / 50.0)
      << "degraded " << rate_degraded << " vs full pam4 " << rate_full;
  EXPECT_LT(rate_nrz, rate_full / 50.0)
      << "nrz " << rate_nrz << " vs full pam4 " << rate_full;
  // NRZ-class absolute rate for the degraded link.
  EXPECT_LT(rate_degraded, 5e-4);
}

// ---- modulation field ------------------------------------------------------

TEST(ModulationField, DefaultsToNrzAndRoundTrips) {
  const LinkSpec nrz = LinkBuilder().name("m").build_spec();
  EXPECT_EQ(nrz.modulation, "nrz");
  const util::Json j = to_json(nrz);
  ASSERT_NE(j.find("modulation"), nullptr);
  EXPECT_EQ(j.find("modulation")->as_string(), "nrz");

  const LinkSpec pam4 =
      LinkBuilder().name("m").modulation("pam4").build_spec();
  EXPECT_EQ(pam4.first_issue().field, "");
  const LinkSpec reparsed = link_spec_from_json(to_json(pam4));
  EXPECT_EQ(reparsed.modulation, "pam4");
  EXPECT_EQ(to_json(reparsed).dump(), to_json(pam4).dump());
}

TEST(ModulationField, ValidationDiagnostics) {
  LinkSpec spec = LinkBuilder().name("m").build_spec();
  spec.modulation = "qam16";
  EXPECT_EQ(spec.first_issue().field, "modulation");
  EXPECT_NE(spec.first_issue().message.find("must be one of 'nrz', 'pam4'"),
            std::string::npos)
      << spec.first_issue().message;

  LinkSpec ffe = LinkBuilder().name("m").modulation("pam4").build_spec();
  ffe.tx_ffe_deemphasis = 0.2;
  EXPECT_EQ(ffe.first_issue().field, "tx_ffe_deemphasis");
  EXPECT_NE(ffe.first_issue().message.find("incompatible with pam4"),
            std::string::npos)
      << ffe.first_issue().message;

  LinkSpec odd = LinkBuilder().name("m").modulation("pam4").build_spec();
  odd.preamble_bits = 255;
  EXPECT_EQ(odd.first_issue().field, "preamble_bits");

  LinkSpec batch = LinkBuilder().name("m").modulation("pam4").build_spec();
  batch.streaming = false;
  EXPECT_EQ(batch.first_issue().field, "streaming");
}

TEST(ModulationField, MisspelledKeyGetsDidYouMean) {
  util::Json j = to_json(LinkBuilder().name("m").build_spec());
  j.set("modulaton", "pam4");
  try {
    (void)link_spec_from_json(j);
    FAIL() << "expected util::JsonError";
  } catch (const util::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'modulation'"),
              std::string::npos)
        << e.what();
  }
}

// ---- BusSpec JSON ----------------------------------------------------------

TEST(BusSpecJson, RoundTripIsAFixedPoint) {
  BusSpec bus;
  bus.name = "rt";
  bus.lanes = 3;
  bus.base = bus_base(ChannelSpec::rc(2.5e9, 6.0));
  bus.overrides = {
      util::Json::object({{"seed", util::Json(std::uint64_t{11})}}),
      util::Json::object({{"noise_rms_v", util::Json(0.002)}}),
      util::Json::object({}),
  };
  bus.coupling = zero_matrix(3);
  bus.coupling[0][1] = 0.05;
  bus.coupling[1][0] = 0.05;
  bus.next_coupling = zero_matrix(3);
  bus.next_coupling[2][1] = 0.01;
  ASSERT_EQ(bus.validate(), "");

  const util::Json j = to_json(bus);
  EXPECT_TRUE(looks_like_bus_spec(j));
  EXPECT_FALSE(looks_like_bus_spec(to_json(bus.base)));
  const BusSpec reparsed = bus_spec_from_json(j);
  EXPECT_EQ(to_json(reparsed).dump(), j.dump());

  const std::vector<LinkSpec> lanes = reparsed.expand();
  ASSERT_EQ(lanes.size(), 3u);
  EXPECT_EQ(lanes[0].name, "rt/lane0");
  EXPECT_EQ(lanes[0].seed, 11u);
  EXPECT_EQ(lanes[1].noise_rms_v, 0.002);
  EXPECT_EQ(lanes[2].noise_rms_v, bus.base.noise_rms_v);
}

TEST(BusSpecJson, ValidationDiagnostics) {
  BusSpec bus;
  bus.base = bus_base(ChannelSpec::flat(10.0));

  bus.lanes = 0;
  EXPECT_EQ(bus.validate(), "$.lanes: must be between 1 and 64");
  bus.lanes = 65;
  EXPECT_EQ(bus.validate(), "$.lanes: must be between 1 and 64");

  bus.lanes = 3;
  bus.coupling = zero_matrix(2);
  EXPECT_NE(bus.validate().find("$.coupling"), std::string::npos)
      << bus.validate();
  EXPECT_NE(bus.validate().find("3x3"), std::string::npos) << bus.validate();
  bus.coupling.clear();

  bus.overrides = {util::Json::object({})};
  EXPECT_NE(bus.validate().find("$.overrides"), std::string::npos)
      << bus.validate();
  bus.overrides = {
      util::Json::object({}),
      util::Json::object({{"name", util::Json("hijack")}}),
      util::Json::object({}),
  };
  EXPECT_NE(bus.validate().find("may not be overridden"), std::string::npos)
      << bus.validate();
}

TEST(BusSpecJson, MisspelledKeyGetsDidYouMean) {
  BusSpec bus;
  bus.name = "rt";
  bus.lanes = 2;
  bus.base = bus_base(ChannelSpec::flat(10.0));
  util::Json j = to_json(bus);
  j.set("couplng", util::Json::array());
  try {
    (void)bus_spec_from_json(j);
    FAIL() << "expected util::JsonError";
  } catch (const util::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'coupling'"),
              std::string::npos)
        << e.what();
  }
}

// ---- schema_version --------------------------------------------------------

/// Reserializes `j` without its `key` member — the "report written by a
/// version-1 build" fixture.
util::Json without_key(const util::Json& j, const std::string& key) {
  util::Json out = util::Json::object();
  for (const auto& [k, v] : j.as_object()) {
    if (k != key) out.set(k, v);
  }
  return out;
}

TEST(SchemaVersion, AbsentMeansVersionOne) {
  const Simulator sim;
  LinkSpec spec = bus_base(ChannelSpec::flat(10.0));
  spec.name = "sv";
  spec.payload_bits = 256;
  spec.chunk_bits = 256;

  const RunReport run = sim.run(spec);
  // RunReport moved to version 3 (DFE / link-training surface); the
  // bus and lint envelopes themselves are still version 2.
  EXPECT_EQ(run.schema_version, 3);
  const util::Json run_json = to_json(run);
  ASSERT_NE(run_json.find("schema_version"), nullptr);
  EXPECT_EQ(run_json.find("schema_version")->as_int(), 3);
  EXPECT_EQ(run_report_from_json(run_json).schema_version, 3);
  EXPECT_EQ(run_report_from_json(without_key(run_json, "schema_version"))
                .schema_version,
            1);

  BusSpec bus;
  bus.name = "sv";
  bus.lanes = 1;
  bus.base = spec;
  const util::Json bus_json = to_json(sim.run_bus(bus, 1));
  EXPECT_EQ(bus_report_from_json(bus_json).schema_version, 2);
  EXPECT_EQ(bus_report_from_json(without_key(bus_json, "schema_version"))
                .schema_version,
            1);

  const util::Json lint_json = to_json(lint::Linter().lint(spec));
  EXPECT_EQ(lint::lint_report_from_json(lint_json).schema_version, 2);
  EXPECT_EQ(lint::lint_report_from_json(without_key(lint_json,
                                                    "schema_version"))
                .schema_version,
            1);
}

}  // namespace
}  // namespace serdes::api
